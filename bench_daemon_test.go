package repro

// Benchmarks of psspd's job dispatch: how fast the daemon turns a request
// into a running job against its warm machine pool, versus the cold
// compile+boot every one-shot CLI invocation pays. The warm sub-benchmarks
// go through the full stack — client, unix socket, JSON-RPC, admission,
// pool checkout — so jobs/sec is an end-to-end serving number, at 1 vs 4
// concurrent tenants.

import (
	"context"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/daemon/client"
)

// benchDaemon serves a daemon on a unix socket for the benchmark's
// lifetime and returns a connected client.
func benchDaemon(b *testing.B, cfg daemon.Config) *client.Client {
	b.Helper()
	sock := filepath.Join(b.TempDir(), "psspd.sock")
	lis, err := net.Listen("unix", sock)
	if err != nil {
		b.Fatal(err)
	}
	d := daemon.New(cfg)
	go d.Serve(lis)
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	})
	c, err := client.Dial("unix:" + sock)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

// bootJob dispatches one boot job — pure job-start cost: admission, pool
// checkout of the parked (app, scheme, seed) machine, check-in.
func bootJob(b *testing.B, c *client.Client, tenant string, seed uint64) {
	err := c.Call(context.Background(), "boot",
		daemon.BootParams{App: "nginx-vuln", Scheme: "ssp", Seed: seed},
		nil, client.WithTenant(tenant))
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDaemonRequest measures job dispatch. warm1tenant/warm4tenants
// are end-to-end: one op is a full client→daemon boot job over a unix
// socket, served from the warm pool. dispatchwarm/dispatchcold isolate
// job-start latency at the job engine (in-process Do, no wire):
// dispatchwarm checks a parked machine out of the pool, dispatchcold pays
// the compile+boot a one-shot CLI invocation pays. The acceptance bar is
// dispatchwarm ≥10× cheaper than dispatchcold.
func BenchmarkDaemonRequest(b *testing.B) {
	// Sub-benchmark names stay dash-free: benchjson strips a trailing
	// -N as the GOMAXPROCS suffix.
	b.Run("warm1tenant", func(b *testing.B) {
		c := benchDaemon(b, daemon.Config{MaxJobs: 4, PoolSize: 8})
		bootJob(b, c, "t0", 2018) // pre-warm the pool entry
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bootJob(b, c, "t0", 2018)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
	})

	b.Run("warm4tenants", func(b *testing.B) {
		const tenants = 4
		c := benchDaemon(b, daemon.Config{MaxJobs: tenants, PoolSize: 8})
		for i := 0; i < tenants; i++ {
			bootJob(b, c, tenantName(i), uint64(2018+i)) // one warm entry per tenant
		}
		b.ReportAllocs()
		b.ResetTimer()
		var wg sync.WaitGroup
		for i := 0; i < tenants; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for n := i; n < b.N; n += tenants {
					bootJob(b, c, tenantName(i), uint64(2018+i))
				}
			}(i)
		}
		wg.Wait()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
	})

	boot := daemon.BootParams{App: "nginx-vuln", Scheme: "ssp", Seed: 2018}

	b.Run("dispatchwarm", func(b *testing.B) {
		ctx := context.Background()
		d := daemon.New(daemon.Config{})
		b.Cleanup(func() { d.Shutdown(ctx) })
		if _, err := d.Do(ctx, "t0", "boot", boot, nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.Do(ctx, "t0", "boot", boot, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
	})

	b.Run("dispatchcold", func(b *testing.B) {
		// A fresh daemon per op: empty image cache, empty pool — the full
		// compile+boot job-start cost of a one-shot CLI run.
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := daemon.New(daemon.Config{})
			if _, err := d.Do(ctx, "t0", "boot", boot, nil); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			d.Shutdown(ctx)
			b.StartTimer()
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
	})
}

func tenantName(i int) string { return string(rune('a' + i)) }
