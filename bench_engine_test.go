package repro

// Micro-benchmarks of the execution engine (decode-once refactor), the
// Monte-Carlo campaign engine, the load generator and the fuzzer. Run them
// with
//
//	go test -run '^$' -bench 'ForkClone|StepLoop|ForkServerRequest|Campaign|Loadgen|Fuzz' -benchmem .
//
// or via scripts/bench_engine.sh, which records the results in
// BENCH_engine.json so the perf trajectory is tracked across PRs. The
// "deep" / "interpreter" sub-benchmarks measure the pre-refactor execution
// model (eager fork copies, decode-each-step) on today's code, so every run
// re-derives the speedup the engine is expected to hold.

import (
	"context"
	"testing"
	"time"

	"repro/internal/abi"
	"repro/internal/apps"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/pssp"
)

var benchEngines = []struct {
	name   string
	engine pssp.Engine
}{
	{"predecoded", pssp.EnginePredecoded},
	{"interpreter", pssp.EngineInterpreter},
	{"compiled", pssp.EngineCompiled},
}

// parkedServerSpace builds the nginx analog's parent process, boots it to
// accept, and returns its address space — the exact space the fork-per-
// request oracle clones for every attack probe.
func parkedServerSpace(b *testing.B) *mem.Space {
	b.Helper()
	var app apps.App
	for _, a := range apps.WebServers() {
		if a.Name == "nginx" {
			app = a
		}
	}
	if app.Prog == nil {
		b.Fatal("no nginx app")
	}
	bin, err := cc.Compile(app.Prog, cc.Options{Scheme: core.SchemePSSP, Linkage: abi.LinkStatic})
	if err != nil {
		b.Fatal(err)
	}
	k := kernel.New(1)
	srv, err := kernel.NewForkServer(k, bin, kernel.SpawnOpts{})
	if err != nil {
		b.Fatal(err)
	}
	return srv.Parent().Space
}

// BenchmarkForkClone measures the memory half of fork(2): copy-on-write
// (the engine's path) against the pre-refactor eager deep copy.
func BenchmarkForkClone(b *testing.B) {
	sp := parkedServerSpace(b)
	b.Run("cow", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if sp.Clone() == nil {
				b.Fatal("nil clone")
			}
		}
	})
	b.Run("deep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if sp.CloneDeep() == nil {
				b.Fatal("nil clone")
			}
		}
	})
}

// BenchmarkStepLoop measures the raw dispatch loop: one op is a full run of
// the 403.gcc SPEC analog (compile hoisted out), so ns/op divided by the
// guest-insts metric is the per-instruction cost of each engine.
func BenchmarkStepLoop(b *testing.B) {
	ctx := context.Background()
	img, err := pssp.NewMachine(pssp.WithScheme(pssp.SchemePSSP)).CompileApp("403.gcc")
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			b.ReportAllocs()
			var insts uint64
			for i := 0; i < b.N; i++ {
				res, err := pssp.NewMachine(pssp.WithSeed(1), pssp.WithEngine(e.engine)).Run(ctx, img)
				if err != nil {
					b.Fatal(err)
				}
				insts = res.Insts
			}
			b.ReportMetric(float64(insts), "guest-insts/op")
		})
	}
}

// BenchmarkForkServerRequest measures the fork-per-request oracle end to
// end — COW fork, shared code cache, request execution, teardown — the loop
// the byte-by-byte attack multiplies by thousands of probes.
func BenchmarkForkServerRequest(b *testing.B) {
	ctx := context.Background()
	app, ok := pssp.App("nginx")
	if !ok {
		b.Fatal("no nginx app")
	}
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			m := pssp.NewMachine(pssp.WithSeed(1), pssp.WithScheme(pssp.SchemePSSP), pssp.WithEngine(e.engine))
			srv, err := m.Pipeline().CompileApp("nginx").Serve(ctx)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := srv.Handle(ctx, app.Request)
				if err != nil {
					b.Fatal(err)
				}
				if out.Crashed() {
					b.Fatal(out.Err)
				}
			}
		})
	}
}

// BenchmarkLoadgen measures the virtual-time load-generation engine's
// request throughput at 1 vs 4 shard executors: one op is a full open-loop
// Poisson workload of 64 benign requests against P-SSP-compiled nginx
// replicas (4 shards; compile hoisted out). The requests/sec metric is the
// headline, and a fixed seed keeps the reports bit-identical across both
// sub-benchmarks.
func BenchmarkLoadgen(b *testing.B) {
	ctx := context.Background()
	img, err := pssp.NewMachine(pssp.WithScheme(pssp.SchemePSSP)).CompileApp("nginx")
	if err != nil {
		b.Fatal(err)
	}
	// Sub-benchmark names stay dash-free: benchjson strips a trailing
	// -N as the GOMAXPROCS suffix.
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"workers4", 4}} {
		workers := cfg.workers
		b.Run(cfg.name, func(b *testing.B) {
			m := pssp.NewMachine(pssp.WithSeed(2018), pssp.WithScheme(pssp.SchemePSSP))
			b.ReportAllocs()
			b.ResetTimer()
			var requests int
			start := time.Now()
			for i := 0; i < b.N; i++ {
				rep, err := m.LoadTest(ctx, img, pssp.WorkloadConfig{
					Arrivals:      pssp.ArrivalsOpenPoisson,
					RatePerMcycle: 100,
					Requests:      64,
					Shards:        4,
					Workers:       workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Requests != 64 {
					b.Fatalf("served %d/64", rep.Requests)
				}
				requests += rep.Requests
			}
			b.ReportMetric(float64(requests)/time.Since(start).Seconds(), "requests/sec")
		})
	}
}

// BenchmarkFuzz measures the coverage-guided fuzzer's execution throughput
// at 1 vs 4 shard executors: one op is a full fuzzing run of 256 mutations
// against SSP-compiled nginx-vuln victims (4 shards, compile hoisted out) —
// fork, coverage-instrumented request, per-request map scan, triage. The
// execs/sec metric is the headline, and a fixed seed keeps the reports
// bit-identical across both sub-benchmarks.
func BenchmarkFuzz(b *testing.B) {
	ctx := context.Background()
	img, err := pssp.NewMachine(pssp.WithScheme(pssp.SchemeSSP)).CompileApp("nginx-vuln")
	if err != nil {
		b.Fatal(err)
	}
	// Sub-benchmark names stay dash-free: benchjson strips a trailing
	// -N as the GOMAXPROCS suffix. The compiled variant runs the same
	// fixed-seed workload under the block-lowered engine; engine
	// invariance keeps its report bit-identical too.
	for _, cfg := range []struct {
		name    string
		workers int
		engine  pssp.Engine
	}{
		{"sequential", 1, pssp.EnginePredecoded},
		{"workers4", 4, pssp.EnginePredecoded},
		{"compiledworkers4", 4, pssp.EngineCompiled},
	} {
		workers := cfg.workers
		b.Run(cfg.name, func(b *testing.B) {
			m := pssp.NewMachine(pssp.WithSeed(2018), pssp.WithScheme(pssp.SchemeSSP), pssp.WithEngine(cfg.engine))
			b.ReportAllocs()
			b.ResetTimer()
			var execs int
			start := time.Now()
			for i := 0; i < b.N; i++ {
				rep, err := m.Fuzz(ctx, img, pssp.FuzzConfig{
					Execs:   256,
					Shards:  4,
					Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Findings) == 0 {
					b.Fatal("fuzzer found nothing")
				}
				execs += rep.Execs
			}
			b.ReportMetric(float64(execs)/time.Since(start).Seconds(), "execs/sec")
		})
	}
}

// BenchmarkCampaign measures the Monte-Carlo campaign engine's trial
// throughput at 1 vs N worker shards: one op is a full campaign of
// byte-by-byte replications against P-SSP-compiled nginx victims (one
// derived machine per replication). The trials/sec metric is the headline:
// on multi-core hosts it scales with the worker count, and a fixed seed
// keeps the aggregates bit-identical across all sub-benchmarks.
func BenchmarkCampaign(b *testing.B) {
	ctx := context.Background()
	img, err := pssp.NewMachine(pssp.WithScheme(pssp.SchemePSSP)).CompileApp("nginx-vuln")
	if err != nil {
		b.Fatal(err)
	}
	// Sub-benchmark names stay dash-free: benchjson strips a trailing
	// -N as the GOMAXPROCS suffix. The compiled variant runs the same
	// fixed-seed campaign under the block-lowered engine; engine
	// invariance keeps its aggregates bit-identical too.
	for _, cfg := range []struct {
		name    string
		workers int
		engine  pssp.Engine
	}{
		{"sequential", 1, pssp.EnginePredecoded},
		{"workers4", 4, pssp.EnginePredecoded},
		{"compiledworkers4", 4, pssp.EngineCompiled},
	} {
		workers := cfg.workers
		b.Run(cfg.name, func(b *testing.B) {
			m := pssp.NewMachine(pssp.WithSeed(2018), pssp.WithScheme(pssp.SchemePSSP), pssp.WithEngine(cfg.engine))
			b.ReportAllocs()
			b.ResetTimer()
			var trials int
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res, err := m.Campaign(ctx, img, pssp.CampaignConfig{
					Replications: 8,
					Workers:      workers,
					Attack:       pssp.AttackConfig{MaxTrials: 64},
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed != 8 {
					b.Fatalf("completed %d/8", res.Completed)
				}
				trials += res.Trials
			}
			b.ReportMetric(float64(trials)/time.Since(start).Seconds(), "trials/sec")
		})
	}
}
