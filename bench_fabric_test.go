package repro

// Benchmarks of the distributed fabric's dispatch overhead: the same
// fixed-seed attack campaign run three ways — directly on the engine, via
// a coordinator leasing to two in-process psspd workers over unix sockets,
// and via two real psspd subprocesses. The aggregates are bit-identical
// across all three by the fabric's merge contract, so the trials/sec gap
// is pure orchestration cost (JSON-RPC hops, lease scheduling, partial
// merging) and the subprocess variant adds real process isolation.

import (
	"context"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/fabric"
	"repro/pssp"
)

// benchAttack is the per-op campaign: explicit seed (leases require one),
// byte-by-byte against P-SSP, small enough for a 400x benchtime.
var benchAttack = daemon.AttackParams{
	Target: "nginx-vuln", Scheme: "p-ssp", Strategy: "byte-by-byte",
	Budget: 64, Repeats: 8, Seed: 2018,
}

// benchWorker starts one in-process psspd on a unix socket.
func benchWorker(b *testing.B, dir string, i int) string {
	b.Helper()
	sock := filepath.Join(dir, "w"+string(rune('0'+i))+".sock")
	lis, err := net.Listen("unix", sock)
	if err != nil {
		b.Fatal(err)
	}
	d := daemon.New(daemon.Config{Seed: 99, MaxJobs: 4, MaxQueue: 16, PoolSize: 8})
	go d.Serve(lis)
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	})
	return "unix:" + sock
}

// runFabricCampaigns drives b.N campaigns through coord and reports
// trials/sec.
func runFabricCampaigns(b *testing.B, coord *fabric.Coordinator) {
	b.Helper()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var trials int
	start := time.Now()
	for i := 0; i < b.N; i++ {
		rep, err := coord.Campaign(ctx, benchAttack)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed != benchAttack.Repeats {
			b.Fatalf("completed %d/%d", rep.Completed, benchAttack.Repeats)
		}
		trials += rep.Trials
	}
	b.ReportMetric(float64(trials)/time.Since(start).Seconds(), "trials/sec")
}

// BenchmarkFabricCampaign measures the fabric against the bare engine.
// Sub-benchmark names stay dash-free (benchjson strips a trailing -N as
// the GOMAXPROCS suffix).
func BenchmarkFabricCampaign(b *testing.B) {
	b.Run("local1", func(b *testing.B) {
		ctx := context.Background()
		s, err := pssp.ParseScheme(benchAttack.Scheme)
		if err != nil {
			b.Fatal(err)
		}
		m := pssp.NewMachine(pssp.WithSeed(benchAttack.Seed), pssp.WithScheme(s))
		img, err := m.CompileApp(benchAttack.Target)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		var trials int
		start := time.Now()
		for i := 0; i < b.N; i++ {
			res, err := m.Campaign(ctx, img, pssp.CampaignConfig{
				Strategy:     benchAttack.Strategy,
				Replications: benchAttack.Repeats,
				Seed:         benchAttack.Seed,
				Attack:       pssp.AttackConfig{MaxTrials: benchAttack.Budget},
			})
			if err != nil {
				b.Fatal(err)
			}
			trials += res.Trials
		}
		b.ReportMetric(float64(trials)/time.Since(start).Seconds(), "trials/sec")
	})

	b.Run("inproc2", func(b *testing.B) {
		coord := fabric.New(fabric.Config{})
		defer coord.Close()
		dir := b.TempDir()
		for i := 0; i < 2; i++ {
			if err := coord.Connect(benchWorker(b, dir, i)); err != nil {
				b.Fatal(err)
			}
		}
		runFabricCampaigns(b, coord)
	})

	b.Run("subproc2", func(b *testing.B) {
		dir := b.TempDir()
		bin := filepath.Join(dir, "psspd")
		if out, err := exec.Command("go", "build", "-o", bin, "./cmd/psspd").CombinedOutput(); err != nil {
			b.Fatalf("build psspd: %v\n%s", err, out)
		}
		coord := fabric.New(fabric.Config{})
		defer coord.Close()
		for i := 0; i < 2; i++ {
			sock := filepath.Join(dir, "s"+string(rune('0'+i))+".sock")
			cmd := exec.Command(bin, "-listen", "unix:"+sock, "-seed", "99")
			if err := cmd.Start(); err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() {
				cmd.Process.Signal(os.Interrupt)
				cmd.Wait()
			})
			// Connect's dial retry absorbs the subprocess's startup.
			if err := coord.Connect("unix:" + sock); err != nil {
				b.Fatal(err)
			}
		}
		runFabricCampaigns(b, coord)
	})
}
