package repro

// Benchmarks and allocation guards for the observability core. The obs
// contract is "one nil check when disabled, one atomic when enabled,
// allocation-free either way"; these pin it at the hot paths the registry
// instruments — the fork-server request loop and the daemon's job
// dispatch — not just at the primitives.

import (
	"context"
	"testing"

	"repro/internal/daemon"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/workpool"
	"repro/pssp"
)

// BenchmarkObs measures the metric primitives themselves: the enabled
// (atomic) and disabled (nil-handle) forms of the counter, histogram, and
// flight-recorder event. All must report 0 allocs/op.
func BenchmarkObs(b *testing.B) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(4, 64)

	b.Run("counterinc", func(b *testing.B) {
		c := reg.Counter("bench_counter_total")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histrecord", func(b *testing.B) {
		h := reg.Hist("bench_hist_ns")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Record(uint64(i))
		}
	})
	b.Run("traceevent", func(b *testing.B) {
		tr := rec.Begin(1, "bench")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Event("tick", uint64(i), "")
		}
	})
	b.Run("disablednil", func(b *testing.B) {
		var c *obs.Counter
		var h *obs.Hist
		var tr *obs.Trace
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
			h.Record(uint64(i))
			tr.Event("tick", 0, "")
		}
	})
}

// BenchmarkObsOverhead measures the instrumented hot paths with the
// observability stack absent vs installed — the numbers behind the
// EXPERIMENTS.md overhead table. requestoff/requeston wrap the
// fork-server request loop (the kernel metrics site, BenchmarkStepLoop's
// serving half); dispatchoff/dispatchon wrap warm in-process daemon
// dispatch (BenchmarkDaemonRequest's dispatchwarm, with explicit registry
// + recorder vs the defaults).
func BenchmarkObsOverhead(b *testing.B) {
	ctx := context.Background()
	app, ok := pssp.App("nginx")
	if !ok {
		b.Fatal("no nginx app")
	}
	m := pssp.NewMachine(pssp.WithSeed(1), pssp.WithScheme(pssp.SchemePSSP))
	srv, err := m.Pipeline().CompileApp("nginx").Serve(ctx)
	if err != nil {
		b.Fatal(err)
	}
	request := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := srv.Handle(ctx, app.Request); err != nil {
				b.Fatal(err)
			}
		}
	}
	boot := daemon.BootParams{App: "nginx-vuln", Scheme: "ssp", Seed: 2018}
	dispatch := func(b *testing.B, cfg daemon.Config) {
		d := daemon.New(cfg)
		b.Cleanup(func() { d.Shutdown(context.Background()) })
		if _, err := d.Do(ctx, "t0", "boot", boot, nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.Do(ctx, "t0", "boot", boot, nil); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("requestoff", func(b *testing.B) {
		kernel.SetMetrics(nil)
		workpool.SetMetrics(nil)
		request(b)
	})
	b.Run("requeston", func(b *testing.B) {
		reg := obs.NewRegistry()
		kernel.SetMetrics(reg)
		workpool.SetMetrics(reg)
		defer kernel.SetMetrics(nil)
		defer workpool.SetMetrics(nil)
		request(b)
	})
	b.Run("dispatchoff", func(b *testing.B) {
		dispatch(b, daemon.Config{})
	})
	b.Run("dispatchon", func(b *testing.B) {
		reg := obs.NewRegistry()
		kernel.SetMetrics(reg)
		workpool.SetMetrics(reg)
		defer kernel.SetMetrics(nil)
		defer workpool.SetMetrics(nil)
		// Default-sized recorder: the daemon always flight-records, so
		// the off/on delta isolates the explicit registry + package
		// metrics, not a ring-size change.
		dispatch(b, daemon.Config{Metrics: reg, Recorder: obs.NewRecorder(0, 0)})
	})
}

// TestObsAddsZeroAllocations is the overhead guard on the instrumented hot
// paths: installing the full observability stack (package metrics in
// kernel and workpool, registry + recorder in the daemon) must not add a
// single allocation to the fork-server request loop (BenchmarkStepLoop's
// serving half) or to warm daemon job dispatch (BenchmarkDaemonRequest's
// dispatchwarm). The disabled path is likewise pinned: uninstalling
// returns both loops to the same baseline.
func TestObsAddsZeroAllocations(t *testing.T) {
	ctx := context.Background()

	// Fork-server request loop (the kernel instrumentation site).
	app, ok := pssp.App("nginx")
	if !ok {
		t.Fatal("no nginx app")
	}
	m := pssp.NewMachine(pssp.WithSeed(1), pssp.WithScheme(pssp.SchemePSSP))
	srv, err := m.Pipeline().CompileApp("nginx").Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	handle := func() {
		if _, err := srv.Handle(ctx, app.Request); err != nil {
			t.Fatal(err)
		}
	}

	// Warm daemon dispatch (registry + recorder always on; explicit
	// Config.Metrics must cost the same as the private default).
	boot := daemon.BootParams{App: "nginx-vuln", Scheme: "ssp", Seed: 2018}
	newDaemon := func(cfg daemon.Config) func() {
		d := daemon.New(cfg)
		t.Cleanup(func() { d.Shutdown(context.Background()) })
		if _, err := d.Do(ctx, "t0", "boot", boot, nil); err != nil {
			t.Fatal(err)
		}
		return func() {
			if _, err := d.Do(ctx, "t0", "boot", boot, nil); err != nil {
				t.Fatal(err)
			}
		}
	}

	kernel.SetMetrics(nil)
	workpool.SetMetrics(nil)
	handleBase := testing.AllocsPerRun(100, handle)
	dispatchBase := testing.AllocsPerRun(100, newDaemon(daemon.Config{}))

	reg := obs.NewRegistry()
	kernel.SetMetrics(reg)
	workpool.SetMetrics(reg)
	defer kernel.SetMetrics(nil)
	defer workpool.SetMetrics(nil)
	handleWith := testing.AllocsPerRun(100, handle)
	dispatchWith := testing.AllocsPerRun(100, newDaemon(daemon.Config{
		Metrics:  reg,
		Recorder: obs.NewRecorder(8, 64),
	}))

	if handleWith > handleBase {
		t.Errorf("fork-server request: %.1f allocs with metrics, %.1f without", handleWith, handleBase)
	}
	if dispatchWith > dispatchBase {
		t.Errorf("warm dispatch: %.1f allocs with metrics, %.1f without", dispatchWith, dispatchBase)
	}
}
