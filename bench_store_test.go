package repro

// Micro-benchmark of the content-addressed artifact store (internal/store):
// the cost of producing a bootable image cold (full compile from IR), from a
// warm store's in-process tier, and from an mmap'd on-disk blob through a
// fresh store handle — the daemon-restart / second-process path. Run via
// scripts/bench_engine.sh, which records the results in BENCH_engine.json.

import (
	"testing"

	"repro/pssp"
)

// BenchmarkStoreBoot measures image acquisition for the nginx analog under
// P-SSP — the phase the store exists to eliminate; the fork-server boot that
// follows it is byte-identical work on every path and is benchmarked
// separately (BenchmarkForkServerRequest). Sub-benchmarks:
//
//	coldcompile  no store: every iteration compiles from IR
//	storehit     warm store handle: the in-process LRU serves the image
//	mmaphit      fresh store handle per iteration: the blob is mapped,
//	             checksum-verified, and parsed zero-copy from disk
func BenchmarkStoreBoot(b *testing.B) {
	image := func(b *testing.B, st *pssp.Store) {
		b.Helper()
		m := pssp.NewMachine(pssp.WithSeed(7), pssp.WithScheme(pssp.SchemePSSP), pssp.WithStore(st))
		if _, err := m.Pipeline().CompileApp("nginx").Image(); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("coldcompile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			image(b, nil)
		}
	})

	b.Run("storehit", func(b *testing.B) {
		st, err := pssp.OpenStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		image(b, st) // populate
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			image(b, st)
		}
	})

	b.Run("mmaphit", func(b *testing.B) {
		dir := b.TempDir()
		st, err := pssp.OpenStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		image(b, st) // populate the blob
		st.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := pssp.OpenStore(dir)
			if err != nil {
				b.Fatal(err)
			}
			image(b, st)
			b.StopTimer()
			// Nothing booted from this handle is live once image returns,
			// so unmapping is safe; teardown stays off the clock.
			st.Close()
			b.StartTimer()
		}
	})
}
