// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (run `go test -bench=. -benchmem`):
//
//	BenchmarkTable1DefenceComparison  — Table I
//	BenchmarkTable2CodeExpansion      — Table II
//	BenchmarkTable3WebServers         — Table III
//	BenchmarkTable4Databases          — Table IV
//	BenchmarkTable5PrologueCycles     — Table V
//	BenchmarkFigure5RuntimeOverhead   — Figure 5
//	BenchmarkEffectivenessByteByByte  — §VI-C attack experiment
//	BenchmarkCompatibilityMixed       — §VI-C compatibility experiment
//	BenchmarkGlobalBufferVariant      — Figure 6 discussion variant
//
// Key scalar results are attached as custom benchmark metrics so they appear
// in the -bench output; the psspbench CLI prints the full tables.
// Micro-benchmarks for the core primitives follow.
package repro

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/rng"
	"repro/pssp"
)

var benchCfg = harness.Config{Seed: 2018, WebRequests: 16, DBQueries: 8, AttackBudget: 3000}

func BenchmarkTable1DefenceComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := harness.Table1(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Values["p-ssp/overhead/compiler"]*100, "p-ssp-compiler-%")
		b.ReportMetric(t.Values["dynaguard/overhead/compiler"]*100, "dynaguard-compiler-%")
		b.ReportMetric(t.Values["dcr/overhead/compiler"]*100, "dcr-compiler-%")
	}
}

func BenchmarkTable2CodeExpansion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := harness.Table2(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Values["compilation"]*100, "compile-%")
		b.ReportMetric(t.Values["instrumentation/static"]*100, "instr-static-%")
	}
}

func BenchmarkTable3WebServers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := harness.Table3(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Values["nginx/native"], "nginx-cycles/req")
		b.ReportMetric(t.Values["apache2/native"], "apache2-cycles/req")
	}
}

func BenchmarkTable4Databases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := harness.Table4(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Values["mysql/native"], "mysql-cycles/query")
		b.ReportMetric(t.Values["sqlite/native"], "sqlite-cycles/query")
	}
}

func BenchmarkTable5PrologueCycles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := harness.Table5(benchCfg, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Values["p-ssp"], "p-ssp-cycles")
		b.ReportMetric(t.Values["p-ssp-nt"], "nt-cycles")
		b.ReportMetric(t.Values["p-ssp-lv (4 vars)"], "lv4-cycles")
		b.ReportMetric(t.Values["p-ssp-owf"], "owf-cycles")
	}
}

func BenchmarkFigure5RuntimeOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := harness.Figure5(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Values["average/compiler"]*100, "avg-compiler-%")
		b.ReportMetric(t.Values["average/instrumented"]*100, "avg-instr-%")
	}
}

func BenchmarkEffectivenessByteByByte(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := harness.Effectiveness(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Values["nginx-vuln/ssp/trials"], "ssp-trials")
		b.ReportMetric(t.Values["nginx-vuln/p-ssp/success"], "p-ssp-success")
	}
}

func BenchmarkCompatibilityMixed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Compatibility(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGlobalBufferVariant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.GlobalBuffer(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the core primitives ---

func BenchmarkReRandomize(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		c0, c1 := core.ReRandomize(0xdeadbeef, r)
		if c0^c1 != 0xdeadbeef {
			b.Fatal("bad pair")
		}
	}
}

func BenchmarkOWFCanary(b *testing.B) {
	key := core.NewOWFKey(rng.New(2))
	for i := 0; i < b.N; i++ {
		core.OWFCanary(key, 0x400123, uint64(i))
	}
}

func BenchmarkSplitPacked(b *testing.B) {
	r := rng.New(3)
	for i := 0; i < b.N; i++ {
		if !core.CheckPacked(core.SplitPacked(0xabcdef, r), 0xabcdef) {
			b.Fatal("bad packed pair")
		}
	}
}

func BenchmarkVMSpecProgram(b *testing.B) {
	ctx := context.Background()
	img, err := pssp.NewMachine(pssp.WithScheme(pssp.SchemePSSP)).CompileApp("403.gcc")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		res, err := pssp.NewMachine(pssp.WithSeed(1)).Run(ctx, img)
		if err != nil {
			b.Fatal(err)
		}
		insts = res.Insts
	}
	b.ReportMetric(float64(insts), "guest-insts/op")
}

func BenchmarkByteByByteAttackSSP(b *testing.B) {
	ctx := context.Background()
	img, err := pssp.NewMachine(pssp.WithScheme(pssp.SchemeSSP)).CompileApp("nginx-vuln")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		m := pssp.NewMachine(pssp.WithSeed(uint64(i)+1), pssp.WithAttackBudget(16*256*8))
		srv, err := m.Serve(ctx, img)
		if err != nil {
			b.Fatal(err)
		}
		res, err := srv.Attack(ctx, pssp.AttackConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Success {
			b.Fatal("attack failed on SSP")
		}
		b.ReportMetric(float64(res.Trials), "trials")
	}
}

func BenchmarkEntropyAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := harness.EntropyAblation(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Values["16/bbb"], "bbb16-trials")
		b.ReportMetric(t.Values["16/poly/measured"], "poly16-trials")
	}
}

func BenchmarkDetectionLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := harness.DetectionLatency(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Values["onwrite/cycles"]-t.Values["epilogue/cycles"], "write-check-extra-cycles")
	}
}
