// Command psspattack runs attack campaigns against the vulnerable server
// analogs and reports the outcome — the CLI face of the paper's §VI-C
// effectiveness experiment, built on the public pssp facade.
//
// A campaign is -repeats independent replications of the selected adversary
// strategy, each against a freshly derived victim machine, sharded over
// -workers concurrent oracles. For a fixed -seed the aggregates are
// bit-identical at any worker count.
//
// Usage:
//
//	psspattack -target nginx-vuln -scheme ssp
//	psspattack -target ali-vuln -scheme p-ssp -budget 8192
//	psspattack -scheme ssp -strategy chunk -repeats 16 -workers 8
//	psspattack -scheme p-ssp -strategy adaptive -repeats 32 -json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/pssp"
)

func strategyHelp() string {
	var b strings.Builder
	b.WriteString("adversary strategy:")
	for _, s := range pssp.AttackStrategies() {
		fmt.Fprintf(&b, "\n    %-12s %s", s.Name, s.Description)
	}
	return b.String()
}

// jsonReport is the machine-readable campaign output (-json).
type jsonReport struct {
	Target          string  `json:"target"`
	Scheme          string  `json:"scheme"`
	Strategy        string  `json:"strategy"`
	Seed            uint64  `json:"seed"`
	Budget          int     `json:"budget"`
	Replications    int     `json:"replications"`
	Workers         int     `json:"workers"`
	Completed       int     `json:"completed"`
	Successes       int     `json:"successes"`
	Verified        int     `json:"verified_successes"`
	SuccessRate     float64 `json:"success_rate"`
	Trials          int     `json:"trials"`
	OracleCalls     int     `json:"oracle_calls"`
	OracleErrors    int     `json:"oracle_errors"`
	OracleError     string  `json:"oracle_error,omitempty"`
	Detections      int     `json:"detections"`
	DetectRate      float64 `json:"detection_rate"`
	Cycles          uint64  `json:"victim_cycles"`
	TrialsToSuccess struct {
		N      int     `json:"n"`
		Min    float64 `json:"min"`
		Median float64 `json:"median"`
		P95    float64 `json:"p95"`
		Max    float64 `json:"max"`
	} `json:"trials_to_success"`
	Outcomes []jsonOutcome `json:"outcomes"`
}

type jsonOutcome struct {
	Rep      int  `json:"rep"`
	Success  bool `json:"success"`
	Verified bool `json:"verified,omitempty"`
	Trials   int  `json:"trials"`
	FailedAt int  `json:"failed_at"`
	Restarts int  `json:"restarts,omitempty"`
}

func main() {
	var (
		target   = flag.String("target", "nginx-vuln", "nginx-vuln | ali-vuln")
		scheme   = flag.String("scheme", "ssp", "protection scheme of the victim")
		strategy = flag.String("strategy", "byte-by-byte", strategyHelp())
		budget   = flag.Int("budget", 4096, "maximum trials per replication")
		repeats  = flag.Int("repeats", 1, "independent campaign replications")
		workers  = flag.Int("workers", 0, "concurrent oracle shards (0 = GOMAXPROCS)")
		jsonOut  = flag.Bool("json", false, "emit one machine-readable JSON object")
		seed     = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()
	fail := func(err error) { cliutil.Fail("psspattack", err) }

	s, err := pssp.ParseScheme(*scheme)
	if err != nil {
		fail(err)
	}
	m := pssp.NewMachine(
		pssp.WithSeed(*seed),
		pssp.WithScheme(s),
		pssp.WithAttackBudget(*budget),
	)
	ctx := context.Background()
	img, err := m.Pipeline().CompileApp(*target).Image()
	if err != nil {
		fail(err)
	}

	if !*jsonOut {
		fmt.Printf("attacking %s (scheme %s) with %s: %d replication(s), budget %d trials each...\n",
			*target, s, *strategy, *repeats, *budget)
	}
	res, err := m.Campaign(ctx, img, pssp.CampaignConfig{
		Strategy:     *strategy,
		Replications: *repeats,
		Workers:      *workers,
	})
	if err != nil {
		fail(err)
	}

	if *jsonOut {
		rep := jsonReport{
			Target: *target, Scheme: s.String(), Strategy: res.Label,
			Seed: *seed, Budget: *budget,
			Replications: *repeats, Workers: *workers,
			Completed: res.Completed, Successes: res.Successes,
			Verified:    res.VerifiedSuccesses,
			SuccessRate: res.SuccessRate(),
			Trials:      res.Trials, OracleCalls: res.OracleCalls,
			OracleErrors: res.OracleErrors,
			Detections:   res.Detections, DetectRate: res.DetectionRate(),
			Cycles: res.Cycles,
		}
		if res.OracleErr != nil {
			rep.OracleError = res.OracleErr.Error()
		}
		rep.TrialsToSuccess.N = res.TrialsToSuccess.N
		rep.TrialsToSuccess.Min = res.TrialsToSuccess.Min
		rep.TrialsToSuccess.Median = res.TrialsToSuccess.Median
		rep.TrialsToSuccess.P95 = res.TrialsToSuccess.P95
		rep.TrialsToSuccess.Max = res.TrialsToSuccess.Max
		for _, out := range res.Outcomes {
			rep.Outcomes = append(rep.Outcomes, jsonOutcome{
				Rep: out.Rep, Success: out.Success, Verified: out.Verified, Trials: out.Trials,
				FailedAt: out.FailedAt, Restarts: out.Restarts,
			})
		}
		if err := cliutil.EmitJSON(os.Stdout, rep); err != nil {
			fail(err)
		}
		return
	}

	if res.Successes > 0 {
		ts := res.TrialsToSuccess
		fmt.Printf("SUCCESS in %d/%d replications (rate %.2f, %d verified against the real canary)\n",
			res.Successes, res.Completed, res.SuccessRate(), res.VerifiedSuccesses)
		fmt.Printf("trials to success: min %.0f / median %.0f / p95 %.0f\n",
			ts.Min, ts.Median, ts.P95)
	} else {
		fmt.Printf("FAILED in all %d replications within the %d-trial budget\n", res.Completed, *budget)
	}
	fmt.Printf("oracle calls %d, detection rate %.3f, victim cycles %d\n",
		res.OracleCalls, res.DetectionRate(), res.Cycles)
	if res.OracleErrors > 0 {
		fmt.Printf("WARNING: %d replication(s) lost to oracle failures (first: %v)\n",
			res.OracleErrors, res.OracleErr)
	}
	for _, out := range res.Outcomes {
		state := "failed"
		switch {
		case out.Success && out.Verified:
			state = "success"
		case out.Success:
			state = "UNVERIFIED" // survived, but the recovered word is not the canary
		}
		fmt.Printf("  rep %2d: %-10s trials %-5d", out.Rep, state, out.Trials)
		if out.Restarts > 0 {
			fmt.Printf(" restarts %d", out.Restarts)
		}
		if !out.Success && out.FailedAt >= 0 {
			fmt.Printf(" stalled at byte %d", out.FailedAt)
		}
		fmt.Println()
	}
}
