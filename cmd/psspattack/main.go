// Command psspattack runs the byte-by-byte canary brute-force against one of
// the vulnerable server analogs and reports the outcome — the CLI face of
// the paper's §VI-C effectiveness experiment, built on the public pssp
// facade.
//
// Usage:
//
//	psspattack -target nginx-vuln -scheme ssp
//	psspattack -target ali-vuln -scheme p-ssp -budget 8192
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/pssp"
)

func main() {
	var (
		target = flag.String("target", "nginx-vuln", "nginx-vuln | ali-vuln")
		scheme = flag.String("scheme", "ssp", "protection scheme of the victim")
		budget = flag.Int("budget", 4096, "maximum trials")
		seed   = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "psspattack: %v\n", err)
		os.Exit(1)
	}

	s, err := pssp.ParseScheme(*scheme)
	if err != nil {
		fail(err)
	}
	m := pssp.NewMachine(
		pssp.WithSeed(*seed),
		pssp.WithScheme(s),
		pssp.WithAttackBudget(*budget),
	)
	ctx := context.Background()
	srv, err := m.Pipeline().CompileApp(*target).Serve(ctx)
	if err != nil {
		fail(err)
	}

	fmt.Printf("attacking %s (scheme %s), budget %d trials...\n", *target, s, *budget)
	res, err := srv.Attack(ctx, pssp.AttackConfig{})
	if err != nil {
		fail(err)
	}

	if res.Success {
		real, err := srv.Canary()
		if err != nil {
			fail(err)
		}
		fmt.Printf("SUCCESS in %d trials: canary 0x%016x (per-byte trials %v)\n",
			res.Trials, res.RecoveredWord(), res.PerByte)
		if res.RecoveredWord() == real {
			fmt.Println("verified: recovered canary matches the victim's TLS canary")
		} else {
			fmt.Println("warning: recovered value does NOT match (lucky survivals)")
		}
	} else {
		fmt.Printf("FAILED after %d trials (stalled at byte %d) — polymorphic canaries resisted\n",
			res.Trials, res.FailedAt)
	}
	fmt.Printf("children crashed during attack: %d\n", srv.Crashes())
}
