// Command psspattack runs attack campaigns against the vulnerable server
// analogs and reports the outcome — the CLI face of the paper's §VI-C
// effectiveness experiment, built on the public pssp facade.
//
// A campaign is -repeats independent replications of the selected adversary
// strategy, each against a freshly derived victim machine, sharded over
// -workers concurrent oracles. For a fixed -seed the aggregates are
// bit-identical at any worker count.
//
// With -remote the campaign runs as a job on a psspd daemon instead of
// in-process; for a fixed explicit -seed the output (including -json) is
// byte-identical to the local run.
//
// Usage:
//
//	psspattack -target nginx-vuln -scheme ssp
//	psspattack -target ali-vuln -scheme p-ssp -budget 8192
//	psspattack -scheme ssp -strategy chunk -repeats 16 -workers 8
//	psspattack -scheme p-ssp -strategy adaptive -repeats 32 -json
//	psspattack -remote unix:/tmp/psspd.sock -tenant ci -repeats 8 -json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/daemon"
	"repro/internal/daemon/client"
	"repro/pssp"
)

func strategyHelp() string {
	var b strings.Builder
	b.WriteString("adversary strategy:")
	for _, s := range pssp.AttackStrategies() {
		fmt.Fprintf(&b, "\n    %-12s %s", s.Name, s.Description)
	}
	return b.String()
}

func main() {
	var (
		target   = flag.String("target", "nginx-vuln", "nginx-vuln | ali-vuln")
		scheme   = flag.String("scheme", "ssp", "protection scheme of the victim")
		strategy = flag.String("strategy", "byte-by-byte", strategyHelp())
		budget   = flag.Int("budget", 4096, "maximum trials per replication")
		repeats  = flag.Int("repeats", 1, "independent campaign replications")
		workers  = flag.Int("workers", 0, "concurrent oracle shards (0 = GOMAXPROCS)")
		jsonOut  = flag.Bool("json", false, "emit one machine-readable JSON object")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		storeDir = flag.String("store", "", "content-addressed artifact store directory (local runs; empty = compile in-process)")
		remote   = flag.String("remote", "", "run on a psspd daemon at this address (unix:/path or host:port)")
		tenant   = flag.String("tenant", "", "tenant name for -remote (default \"default\")")
	)
	flag.Parse()
	fail := func(err error) { cliutil.Fail("psspattack", err) }

	s, err := pssp.ParseScheme(*scheme)
	if err != nil {
		fail(err)
	}
	if *remote != "" && *storeDir != "" {
		fail(fmt.Errorf("-store applies to local runs; a psspd daemon manages its own store (psspd -store)"))
	}

	var rep daemon.AttackReport
	if *remote != "" {
		c, err := client.Dial(*remote)
		if err != nil {
			fail(err)
		}
		defer c.Close()
		if !*jsonOut {
			fmt.Printf("attacking %s (scheme %s) with %s on %s: %d replication(s), budget %d trials each...\n",
				*target, s, *strategy, *remote, *repeats, *budget)
		}
		err = c.Call(context.Background(), "attack", daemon.AttackParams{
			Target: *target, Scheme: s.String(), Strategy: *strategy,
			Budget: *budget, Repeats: *repeats, Workers: *workers, Seed: *seed,
		}, &rep, client.WithTenant(*tenant))
		if err != nil {
			fail(err)
		}
	} else {
		opts := []pssp.Option{
			pssp.WithSeed(*seed),
			pssp.WithScheme(s),
			pssp.WithAttackBudget(*budget),
		}
		if *storeDir != "" {
			st, err := pssp.OpenStore(*storeDir)
			if err != nil {
				fail(err)
			}
			opts = append(opts, pssp.WithStore(st))
		}
		m := pssp.NewMachine(opts...)
		ctx := context.Background()
		img, err := m.Pipeline().CompileApp(*target).Image()
		if err != nil {
			fail(err)
		}
		if !*jsonOut {
			fmt.Printf("attacking %s (scheme %s) with %s: %d replication(s), budget %d trials each...\n",
				*target, s, *strategy, *repeats, *budget)
		}
		res, err := m.Campaign(ctx, img, pssp.CampaignConfig{
			Strategy:     *strategy,
			Replications: *repeats,
			Workers:      *workers,
		})
		if err != nil {
			fail(err)
		}
		rep = daemon.BuildAttackReport(*target, s, *seed, *budget, *repeats, *workers, res)
	}

	if *jsonOut {
		if err := cliutil.EmitJSON(os.Stdout, rep); err != nil {
			fail(err)
		}
		return
	}
	printReport(rep)
}

// printReport renders the human output from the report shape shared with
// the daemon, so local and remote campaigns print identically.
func printReport(rep daemon.AttackReport) {
	if rep.Canceled {
		fmt.Printf("CANCELED after %d/%d replications; partial aggregate follows\n",
			rep.Completed, rep.Replications)
	}
	if rep.Successes > 0 {
		ts := rep.TrialsToSuccess
		fmt.Printf("SUCCESS in %d/%d replications (rate %.2f, %d verified against the real canary)\n",
			rep.Successes, rep.Completed, rep.SuccessRate, rep.Verified)
		fmt.Printf("trials to success: min %.0f / median %.0f / p95 %.0f\n",
			ts.Min, ts.Median, ts.P95)
	} else {
		fmt.Printf("FAILED in all %d replications within the %d-trial budget\n", rep.Completed, rep.Budget)
	}
	fmt.Printf("oracle calls %d, detection rate %.3f, victim cycles %d\n",
		rep.OracleCalls, rep.DetectRate, rep.Cycles)
	if rep.OracleErrors > 0 {
		fmt.Printf("WARNING: %d replication(s) lost to oracle failures (first: %s)\n",
			rep.OracleErrors, rep.OracleError)
	}
	for _, out := range rep.Outcomes {
		state := "failed"
		switch {
		case out.Success && out.Verified:
			state = "success"
		case out.Success:
			state = "UNVERIFIED" // survived, but the recovered word is not the canary
		}
		fmt.Printf("  rep %2d: %-10s trials %-5d", out.Rep, state, out.Trials)
		if out.Restarts > 0 {
			fmt.Printf(" restarts %d", out.Restarts)
		}
		if !out.Success && out.FailedAt >= 0 {
			fmt.Printf(" stalled at byte %d", out.FailedAt)
		}
		fmt.Println()
	}
}
