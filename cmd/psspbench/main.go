// Command psspbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	psspbench -all                       # every experiment
//	psspbench -table 1|2|3|4|5           # one table
//	psspbench -table 5 -sweep            # Table V plus the LV ablation sweep
//	psspbench -figure 5                  # Figure 5
//	psspbench -experiment effectiveness  # §VI-C attack experiment
//	psspbench -experiment compat         # §VI-C compatibility experiment
//	psspbench -experiment globalbuffer   # Figure 6 discussion variant
//	psspbench -experiment underload      # tail latency under closed-loop load
//	psspbench -all -json                 # machine-readable: JSON array of tables
//
// Scaling flags: -seed, -requests (web), -queries (db), -budget (attack
// trials per replication), -attack-reps (campaign replications per security
// cell), -workers (campaign shards; wall-clock only, results are
// worker-count invariant), -load-requests/-load-clients (under-load
// experiment).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/harness"
	"repro/pssp"
)

func main() {
	var (
		table        = flag.Int("table", 0, "regenerate Table N (1-5)")
		figure       = flag.Int("figure", 0, "regenerate Figure N (5)")
		experiment   = flag.String("experiment", "", "effectiveness | compat | globalbuffer | entropy | latency | underload | fuzzdiscovery")
		all          = flag.Bool("all", false, "run every experiment")
		sweep        = flag.Bool("sweep", false, "with -table 5: sweep P-SSP-LV over 1..8 criticals")
		jsonOut      = flag.Bool("json", false, "emit the selected experiments as one JSON array")
		seed         = flag.Uint64("seed", 2018, "experiment seed")
		requests     = flag.Int("requests", 64, "web-server requests (Table III)")
		queries      = flag.Int("queries", 16, "database queries (Table IV)")
		budget       = flag.Int("budget", 4096, "attack trial budget per replication")
		reps         = flag.Int("attack-reps", 2, "attack-campaign replications per security cell")
		workers      = flag.Int("workers", 0, "campaign worker shards (0 = GOMAXPROCS; results are worker-count invariant)")
		loadRequests = flag.Int("load-requests", 96, "under-load experiment request budget")
		loadClients  = flag.Int("load-clients", 8, "under-load experiment closed-loop clients")
		engine       = flag.String("engine", "predecoded", "execution engine: interpreter, predecoded, or compiled (results are engine-invariant)")
		storeDir     = flag.String("store", "", "content-addressed artifact store directory (results are store-hit-invariant)")
	)
	flag.Parse()

	eng, err := pssp.ParseEngine(*engine)
	if err != nil {
		cliutil.Fail("psspbench", err)
	}
	var st *pssp.Store
	if *storeDir != "" {
		if st, err = pssp.OpenStore(*storeDir); err != nil {
			cliutil.Fail("psspbench", err)
		}
	}

	cfg := harness.Config{
		Seed:         *seed,
		WebRequests:  *requests,
		DBQueries:    *queries,
		AttackBudget: *budget,
		AttackReps:   *reps,
		Workers:      *workers,
		LoadRequests: *loadRequests,
		LoadClients:  *loadClients,
		Engine:       eng,
		Store:        st,
	}

	type driver struct {
		name string
		run  func(harness.Config) (*harness.Table, error)
	}
	drivers := map[string]driver{
		"table1":        {"Table I", harness.Table1},
		"table2":        {"Table II", harness.Table2},
		"table3":        {"Table III", harness.Table3},
		"table4":        {"Table IV", harness.Table4},
		"table5":        {"Table V", func(c harness.Config) (*harness.Table, error) { return harness.Table5(c, *sweep) }},
		"figure5":       {"Figure 5", harness.Figure5},
		"effectiveness": {"Effectiveness", harness.Effectiveness},
		"compat":        {"Compatibility", harness.Compatibility},
		"globalbuffer":  {"Global buffer", harness.GlobalBuffer},
		"entropy":       {"Entropy ablation", harness.EntropyAblation},
		"latency":       {"Detection latency", harness.DetectionLatency},
		"underload":     {"Overhead under load", harness.UnderLoad},
		"fuzzdiscovery": {"Fuzz discovery", harness.FuzzDiscovery},
	}

	var selected []string
	switch {
	case *all:
		selected = []string{
			"table1", "table2", "table3", "table4", "table5",
			"figure5", "effectiveness", "compat", "globalbuffer",
			"entropy", "latency", "underload", "fuzzdiscovery",
		}
	case *table >= 1 && *table <= 5:
		selected = []string{fmt.Sprintf("table%d", *table)}
	case *figure == 5:
		selected = []string{"figure5"}
	case *experiment != "":
		if _, ok := drivers[*experiment]; !ok {
			// List every valid name so the fix is discoverable from the
			// message alone, mirroring core.ParseScheme's error.
			names := make([]string, 0, len(drivers))
			for name := range drivers {
				names = append(names, name)
			}
			sort.Strings(names)
			fmt.Fprintf(os.Stderr, "psspbench: unknown experiment %q (have %s)\n",
				*experiment, strings.Join(names, ", "))
			os.Exit(2)
		}
		selected = []string{*experiment}
	default:
		flag.Usage()
		os.Exit(2)
	}

	var tables []*harness.Table
	for _, name := range selected {
		d := drivers[name]
		t, err := d.run(cfg)
		if err != nil {
			cliutil.Fail("psspbench", fmt.Errorf("%s: %w", d.name, err))
		}
		if *jsonOut {
			tables = append(tables, t)
			continue
		}
		fmt.Println(t.Render())
	}
	if *jsonOut {
		if err := cliutil.EmitJSON(os.Stdout, tables); err != nil {
			cliutil.Fail("psspbench", err)
		}
	}
}
