// Command psspcc compiles a program from the built-in application suite
// under a chosen protection scheme and writes the loadable binary image —
// the CLI face of the compiler plugin, built on the public pssp facade.
//
// Usage:
//
//	psspcc -list
//	psspcc -app nginx -scheme p-ssp -o nginx.bin
//	psspcc -app 400.perlbench -scheme ssp -linkage static -o perl.bin
//	psspcc -libc p-ssp -o libc.bin      # build a shared libc image
//
// Dynamic linkage requires an existing libc image via -libc-in.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/pssp"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available programs")
		appName  = flag.String("app", "", "program to compile (see -list)")
		scheme   = flag.String("scheme", "p-ssp", "protection scheme")
		linkage  = flag.String("linkage", "static", "static | dynamic")
		out      = flag.String("o", "", "output binary path")
		libcOnly = flag.String("libc", "", "build a libc image with this scheme instead of an app")
		libcIn   = flag.String("libc-in", "", "existing libc image (dynamic linkage)")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "psspcc: %v\n", err)
		os.Exit(1)
	}

	if *list {
		for _, app := range pssp.Apps() {
			kind := "batch"
			if app.Server {
				kind = "server"
			}
			fmt.Printf("%-18s %s\n", app.Name, kind)
		}
		return
	}
	if *out == "" {
		fail(fmt.Errorf("missing -o output path"))
	}

	if *libcOnly != "" {
		s, err := pssp.ParseScheme(*libcOnly)
		if err != nil {
			fail(err)
		}
		libc, err := pssp.NewMachine().CompileLibc(s)
		if err != nil {
			fail(err)
		}
		if err := libc.WriteFile(*out); err != nil {
			fail(err)
		}
		fmt.Printf("wrote libc image %s (%d bytes, scheme %s)\n", *out, libc.TotalSize(), s)
		return
	}

	s, err := pssp.ParseScheme(*scheme)
	if err != nil {
		fail(err)
	}
	m := pssp.NewMachine(pssp.WithScheme(s))

	var opts []pssp.CompileOption
	switch *linkage {
	case "static":
	case "dynamic":
		if *libcIn == "" {
			fail(fmt.Errorf("dynamic linkage needs -libc-in (build one with -libc)"))
		}
		libc, err := pssp.OpenImage(*libcIn)
		if err != nil {
			fail(err)
		}
		opts = append(opts, pssp.CompileDynamic(libc))
	default:
		fail(fmt.Errorf("unknown linkage %q", *linkage))
	}

	bin, err := m.CompileApp(*appName, opts...)
	if err != nil {
		fail(fmt.Errorf("%w (try -list)", err))
	}
	if err := bin.WriteFile(*out); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s: %s, scheme %s, %s linkage, code %d bytes\n",
		*out, bin.Name(), s, bin.Linkage(), bin.CodeSize())
}
