// Command psspcc compiles a program from the built-in application suite
// under a chosen protection scheme and writes the loadable binary image —
// the CLI face of the compiler plugin.
//
// Usage:
//
//	psspcc -list
//	psspcc -app nginx -scheme p-ssp -o nginx.bin
//	psspcc -app 400.perlbench -scheme ssp -linkage static -o perl.bin
//	psspcc -libc p-ssp -o libc.bin      # build a shared libc image
//
// Dynamic linkage (the default) also requires -libc-out to emit the matching
// libc image, or an existing one via -libc-in.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/abi"
	"repro/internal/apps"
	"repro/internal/binfmt"
	"repro/internal/cc"
	"repro/internal/core"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available programs")
		appName  = flag.String("app", "", "program to compile (see -list)")
		scheme   = flag.String("scheme", "p-ssp", "protection scheme")
		linkage  = flag.String("linkage", abi.LinkStatic, "static | dynamic")
		out      = flag.String("o", "", "output binary path")
		libcOnly = flag.String("libc", "", "build a libc image with this scheme instead of an app")
		libcIn   = flag.String("libc-in", "", "existing libc image (dynamic linkage)")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "psspcc: %v\n", err)
		os.Exit(1)
	}

	if *list {
		for _, app := range apps.All() {
			kind := "batch"
			if app.Kind == apps.KindServer {
				kind = "server"
			}
			fmt.Printf("%-18s %s\n", app.Name, kind)
		}
		return
	}
	if *out == "" {
		fail(fmt.Errorf("missing -o output path"))
	}

	if *libcOnly != "" {
		s, err := core.ParseScheme(*libcOnly)
		if err != nil {
			fail(err)
		}
		libc, err := cc.BuildLibc(s)
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*out, binfmt.Marshal(libc), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote libc image %s (%d bytes, scheme %s)\n", *out, libc.TotalSize(), s)
		return
	}

	var prog *apps.App
	for _, a := range apps.All() {
		if a.Name == *appName {
			prog = &a
			break
		}
	}
	if prog == nil {
		fail(fmt.Errorf("unknown app %q (try -list)", *appName))
	}
	s, err := core.ParseScheme(*scheme)
	if err != nil {
		fail(err)
	}

	opts := cc.Options{Scheme: s, Linkage: *linkage}
	if *linkage == abi.LinkDynamic {
		if *libcIn == "" {
			fail(fmt.Errorf("dynamic linkage needs -libc-in (build one with -libc)"))
		}
		raw, err := os.ReadFile(*libcIn)
		if err != nil {
			fail(err)
		}
		libc, err := binfmt.Unmarshal(raw)
		if err != nil {
			fail(err)
		}
		opts.Libc = libc
	}

	bin, err := cc.Compile(prog.Prog, opts)
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, binfmt.Marshal(bin), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s: %s, scheme %s, %s linkage, code %d bytes\n",
		*out, prog.Name, s, *linkage, bin.CodeSize())
}
