// Command psspctl drives the distributed evaluation fabric: a coordinator
// that fans attack campaigns, load sweeps, and fuzzing out across psspd
// worker processes (and machines) as shard leases, and merges the returned
// partial aggregates in shard order — so every report it emits is
// byte-identical to the single-process psspattack/psspload/psspfuzz run at
// the same explicit -seed, at any worker count, including runs where a
// worker died mid-lease and its shards were re-issued.
//
// Three modes:
//
// One-shot — attach workers, run one job, print its report, exit:
//
//	psspctl -workers unix:/tmp/w0.sock,unix:/tmp/w1.sock -job campaign -target nginx-vuln -json
//	psspctl -listen unix:/tmp/ctl.sock -min-workers 2 -job fuzz -execs 8192 -json
//	psspctl -workers unix:/tmp/w0.sock -job loadtest -sweep 0.5,1,2,4 -json
//
// Serve — a long-lived coordinator: workers register on -listen
// (`psspd -worker -join`), and control clients submit jobs over the same
// listener:
//
//	psspctl -serve -listen unix:/tmp/ctl.sock
//
// Remote — drive a serving coordinator's control API:
//
//	psspctl -remote unix:/tmp/ctl.sock -submit -job fuzz -until-stall 3 -json
//	psspctl -remote unix:/tmp/ctl.sock -status
//	psspctl -remote unix:/tmp/ctl.sock -aggregate -id 1 -json
//	psspctl -remote unix:/tmp/ctl.sock -cancel -id 1
//	psspctl -remote unix:/tmp/ctl.sock -stats -json
//	psspctl -remote unix:/tmp/ctl.sock -watch
//
// -watch replaces -stats polling with a live dashboard: it redraws worker
// health, job states, and the coordinator's metrics snapshot (lease
// counters, latency quantiles) about once a second until interrupted.
// -metrics (serve and one-shot modes) exposes the same registry over HTTP
// — Prometheus text on /metrics, flight-recorder traces on /traces, pprof
// under /debug/pprof/. Observability is pure read-side: reports stay
// byte-identical with it on or off. -log-level picks stderr verbosity
// (error, info, debug); -v is shorthand for -log-level debug.
//
// Workers attach either way around: -workers dials out to ordinary psspd
// listeners, -listen accepts `psspd -worker -join` registrations; both may
// be combined. Jobs require an explicit non-zero -seed — a lease must be
// re-executable bit-identically on any worker, which a derived per-job
// seed is not. -aggregate re-emits the stored report verbatim, so remote
// job output is byte-identical to the one-shot (and single-process) run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/cliutil"
	"repro/internal/daemon"
	"repro/internal/daemon/client"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/pssp"
)

func main() {
	var (
		// Fabric topology.
		workers    = flag.String("workers", "", "comma-separated psspd worker addresses to dial (unix:/path or host:port)")
		listen     = flag.String("listen", "", "accept `psspd -worker -join` registrations (and, with -serve, control clients) on this address")
		minWorkers = flag.Int("min-workers", 0, "wait for at least this many workers before running (0 = the -workers list length, min 1)")
		serve      = flag.Bool("serve", false, "run as a long-lived coordinator serving the control API on -listen")
		tenant     = flag.String("tenant", "", "tenant name presented to the workers (default \"default\")")
		verbose    = flag.Bool("v", false, "log worker joins/deaths and lease reassignments to stderr (alias for -log-level debug)")
		metricsOn  = flag.String("metrics", "", "serve /metrics, /traces and /debug/pprof over HTTP on this address (empty = off)")
		logLevel   = flag.String("log-level", "info", "stderr verbosity: error, info or debug")

		// Lease engine tuning.
		leaseShards  = flag.Int("lease-shards", 0, "shards per lease (0 = auto: a quarter of a worker's share)")
		leaseTimeout = flag.Duration("lease-timeout", 0, "evict a worker whose lease streams no progress for this long (0 = 60s)")
		retries      = flag.Int("retries", 0, "re-issues allowed per lease after worker loss before the job fails (0 = 3)")

		// Remote control verbs.
		remote    = flag.String("remote", "", "drive a serving coordinator at this address")
		submit    = flag.Bool("submit", false, "submit the -job to the remote coordinator and print its id")
		status    = flag.Bool("status", false, "list the remote coordinator's jobs (-id selects one)")
		cancelJob = flag.Bool("cancel", false, "cancel the remote job named by -id")
		aggregate = flag.Bool("aggregate", false, "fetch the merged report of the finished remote job named by -id")
		stats     = flag.Bool("stats", false, "print coordinator stats (leases, worker health and throughput, frontier size)")
		watch     = flag.Bool("watch", false, "live dashboard: redraw remote stats and metrics about once a second")
		id        = flag.Uint64("id", 0, "job id for -status/-cancel/-aggregate")

		// Job selection and the per-kind knobs, mirroring the original CLIs.
		job     = flag.String("job", "", "campaign | loadtest | fuzz")
		scheme  = flag.String("scheme", "", "protection scheme (default: ssp for campaign/fuzz, p-ssp for loadtest)")
		seed    = flag.Uint64("seed", 1, "simulation seed (must be explicit and non-zero: leases re-execute under it)")
		jsonOut = flag.Bool("json", false, "emit one machine-readable JSON object")

		target     = flag.String("target", "nginx-vuln", "campaign: victim app")
		strategy   = flag.String("strategy", "byte-by-byte", "campaign: adversary strategy")
		budget     = flag.Int("budget", 4096, "campaign: maximum trials per replication")
		repeats    = flag.Int("repeats", 1, "campaign: independent replications")
		jobWorkers = flag.Int("job-workers", 0, "concurrent shard executors inside each worker process (0 = GOMAXPROCS; wall-clock only)")

		app      = flag.String("app", "", "loadtest/fuzz: built-in server app (default: nginx for loadtest, nginx-vuln for fuzz)")
		mixSpec  = flag.String("mix", "benign:1", "loadtest: traffic mix, e.g. 'benign:3,probe=adaptive:1'")
		arrivals = flag.String("arrivals", "poisson", "loadtest: arrival model: poisson | uniform | closed")
		rate     = flag.Float64("rate", 10, "loadtest: open-loop offered rate (requests per million victim cycles)")
		clients  = flag.Int("clients", 8, "loadtest: closed-loop client population")
		think    = flag.Float64("think", 0, "loadtest: closed-loop mean think time (cycles)")
		requests = flag.Int("requests", 256, "loadtest: total request budget (0 = duration-bounded)")
		duration = flag.Uint64("duration", 0, "loadtest: virtual-time horizon in cycles (0 = request-bounded)")
		shards   = flag.Int("shards", 4, "loadtest/fuzz: shards of the scenario")
		probes   = flag.Int("probe-budget", 64, "loadtest: probe trials per attack replication")
		sweep    = flag.String("sweep", "", "loadtest: offered-load multipliers, e.g. '0.5,1,2,4'")

		seedSpec = flag.String("seeds", "", "fuzz: seed corpus spec, e.g. 'GET /:2,PING'")
		dict     = flag.String("dict", "", "fuzz: mutation dictionary spec")
		execs    = flag.Int("execs", 4096, "fuzz: total mutation budget across shards")
		maxIn    = flag.Int("max-input", 1024, "fuzz: generated input length cap in bytes")
		corpus   = flag.String("corpus", "", "fuzz: shared persistent corpus directory (workers fold discoveries in; rounds reseed from it)")
		stall    = flag.Int("until-stall", 0, "fuzz: continuous mode — rounds until the coverage frontier is unchanged this many consecutive rounds")
	)
	flag.Parse()
	fail := func(err error) { cliutil.Fail("psspctl", err) }

	level, err := cliutil.ParseLevel(*logLevel)
	if err != nil {
		fail(err)
	}
	if *verbose {
		level = cliutil.LevelDebug
	}
	logger := cliutil.NewLogger("psspctl", level)
	client.SetDebugf(logger.Logf(cliutil.LevelDebug))

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *remote != "" {
		if err := runRemote(ctx, *remote, remoteArgs{
			submit: *submit, status: *status, cancel: *cancelJob,
			aggregate: *aggregate, stats: *stats, watch: *watch, id: *id, jsonOut: *jsonOut,
			params: func() (fabric.SubmitParams, error) {
				return submitParams(*job, *corpus, *stall, jobFlags{
					scheme: *scheme, seed: *seed, target: *target, strategy: *strategy,
					budget: *budget, repeats: *repeats, jobWorkers: *jobWorkers,
					app: *app, mixSpec: *mixSpec, arrivals: *arrivals, rate: *rate,
					clients: *clients, think: *think, requests: *requests,
					duration: *duration, shards: *shards, probes: *probes, sweep: *sweep,
					seedSpec: *seedSpec, dict: *dict, execs: *execs, maxIn: *maxIn,
				})
			},
		}); err != nil {
			fail(err)
		}
		return
	}

	// Fabric lifecycle lines (worker joins/deaths, lease reassignment) are
	// operational detail in serve mode but chatter in a quiet one-shot:
	// info there, debug here — so plain one-shot stderr stays empty and
	// -v restores the lines the fault-injection smoke greps for.
	fabricLevel := cliutil.LevelDebug
	if *serve {
		fabricLevel = cliutil.LevelInfo
	}
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(0, 0)
	coord := fabric.New(fabric.Config{
		Tenant:       *tenant,
		LeaseShards:  *leaseShards,
		LeaseTimeout: *leaseTimeout,
		Retries:      *retries,
		Logf:         logger.Logf(fabricLevel),
		Metrics:      reg,
		Recorder:     rec,
	})
	if *metricsOn != "" {
		maddr, stop, err := obs.ListenAndServe(*metricsOn, reg, rec)
		if err != nil {
			fail(fmt.Errorf("metrics: %w", err))
		}
		defer stop()
		logger.Infof("metrics on http://%s/metrics", maddr)
	}
	defer coord.Close()
	addrs := splitList(*workers)
	for _, a := range addrs {
		if err := coord.Connect(a); err != nil {
			fail(err)
		}
	}

	var lis net.Listener
	if *listen != "" {
		network, addr := daemon.SplitAddr(*listen)
		if network == "unix" {
			os.Remove(addr)
		}
		var err error
		if lis, err = net.Listen(network, addr); err != nil {
			fail(err)
		}
		if network == "unix" {
			defer os.Remove(addr)
		}
	}

	if *serve {
		if lis == nil {
			fail(fmt.Errorf("-serve requires -listen: workers and control clients attach there"))
		}
		logger.Infof("coordinating on %s (%d dialed worker(s))", *listen, len(addrs))
		if err := coord.Serve(ctx, lis); err != nil {
			fail(err)
		}
		return
	}

	// One-shot mode.
	if *job == "" {
		fail(fmt.Errorf("nothing to do: give -job campaign|loadtest|fuzz (or -serve, or a -remote verb)"))
	}
	if lis != nil {
		go coord.Serve(ctx, lis)
	}
	min := *minWorkers
	if min <= 0 {
		min = len(addrs)
	}
	if min < 1 {
		min = 1
	}
	if err := coord.WaitWorkers(ctx, min); err != nil {
		fail(err)
	}

	p, err := submitParams(*job, *corpus, *stall, jobFlags{
		scheme: *scheme, seed: *seed, target: *target, strategy: *strategy,
		budget: *budget, repeats: *repeats, jobWorkers: *jobWorkers,
		app: *app, mixSpec: *mixSpec, arrivals: *arrivals, rate: *rate,
		clients: *clients, think: *think, requests: *requests,
		duration: *duration, shards: *shards, probes: *probes, sweep: *sweep,
		seedSpec: *seedSpec, dict: *dict, execs: *execs, maxIn: *maxIn,
	})
	if err != nil {
		fail(err)
	}
	if err := runOneShot(ctx, coord, p, *jsonOut); err != nil {
		fail(err)
	}
	if logger.Enabled(cliutil.LevelDebug) {
		st := coord.Stats()
		logger.Debugf("%d lease(s) issued, %d reassigned", st.LeasesIssued, st.LeasesReassigned)
		for _, w := range st.Workers {
			logger.Debugf("worker %s: alive=%v leases=%d shards=%d (%.1f shards/s)",
				w.Name, w.Alive, w.Leases, w.ShardsDone, w.ShardsPerSec)
		}
	}
}

// jobFlags carries the parsed per-job flag values into the params builder,
// so the one-shot and -submit paths build byte-identical wire params.
type jobFlags struct {
	scheme     string
	seed       uint64
	target     string
	strategy   string
	budget     int
	repeats    int
	jobWorkers int
	app        string
	mixSpec    string
	arrivals   string
	rate       float64
	clients    int
	think      float64
	requests   int
	duration   uint64
	shards     int
	probes     int
	sweep      string
	seedSpec   string
	dict       string
	execs      int
	maxIn      int
}

// submitParams maps the flag surface onto the fabric's submit shape — the
// same daemon wire params the original CLIs send, so normalization (and
// therefore the resolved scenario) is shared with them.
func submitParams(job, corpus string, stall int, f jobFlags) (fabric.SubmitParams, error) {
	p := fabric.SubmitParams{Kind: job, CorpusDir: corpus, UntilStall: stall}
	switch job {
	case "campaign":
		p.Attack = &daemon.AttackParams{
			Target: f.target, Scheme: f.scheme, Strategy: f.strategy,
			Budget: f.budget, Repeats: f.repeats, Workers: f.jobWorkers, Seed: f.seed,
		}
	case "loadtest":
		mix, err := cliutil.ParseMix(f.mixSpec)
		if err != nil {
			return p, err
		}
		classes := make([]daemon.LoadClass, len(mix))
		for i, rc := range mix {
			classes[i] = daemon.LoadClass{Name: rc.Name, Weight: rc.Weight, Payload: rc.Payload, Probe: rc.Probe}
		}
		multipliers, err := parseSweep(f.sweep)
		if err != nil {
			return p, err
		}
		p.Load = &daemon.LoadParams{
			App: f.app, Scheme: f.scheme, Mix: classes, Arrivals: f.arrivals,
			Rate: f.rate, Clients: f.clients, ThinkCycles: f.think,
			Requests: f.requests, DurationCycles: f.duration,
			Shards: f.shards, Workers: f.jobWorkers, Budget: f.probes,
			Sweep: multipliers, Seed: f.seed,
		}
	case "fuzz":
		seeds, err := cliutil.ParseByteItems(f.seedSpec)
		if err != nil {
			return p, fmt.Errorf("seeds %w", err)
		}
		tokens, err := cliutil.ParseByteItems(f.dict)
		if err != nil {
			return p, fmt.Errorf("dict %w", err)
		}
		p.Fuzz = &daemon.FuzzParams{
			App: f.app, Scheme: f.scheme, Seeds: seeds, Dict: tokens,
			Execs: f.execs, Shards: f.shards, Workers: f.jobWorkers,
			MaxInput: f.maxIn, Seed: f.seed,
		}
	default:
		return p, fmt.Errorf("unknown -job %q (want campaign, loadtest or fuzz)", job)
	}
	return p, nil
}

// runOneShot executes one fabric job on coord and emits its report in the
// exact shape the matching original CLI emits.
func runOneShot(ctx context.Context, coord *fabric.Coordinator, p fabric.SubmitParams, jsonOut bool) error {
	switch p.Kind {
	case "campaign":
		rep, err := coord.Campaign(ctx, *p.Attack)
		if err != nil {
			return err
		}
		if jsonOut {
			return cliutil.EmitJSON(os.Stdout, rep)
		}
		fmt.Printf("campaign %s: %d/%d successes (rate %.2f), %d oracle calls, detection rate %.3f\n",
			rep.Target, rep.Successes, rep.Completed, rep.SuccessRate, rep.OracleCalls, rep.DetectRate)
		return nil
	case "loadtest":
		if len(p.Load.Sweep) > 0 {
			sw, err := coord.LoadSweep(ctx, *p.Load)
			if err != nil {
				return err
			}
			if jsonOut {
				return cliutil.EmitJSON(os.Stdout, sw)
			}
			for _, pt := range sw.Points {
				fmt.Printf("sweep x%-5g offered %.3f achieved %.3f goodput %.3f/Mcycle\n",
					pt.Multiplier, pt.Report.OfferedPerMcycle, pt.Report.AchievedPerMcycle, pt.Report.GoodputPerMcycle)
			}
			fmt.Printf("knee multiplier: x%g\n", sw.KneeMultiplier)
			return nil
		}
		rep, err := coord.LoadTest(ctx, *p.Load)
		if err != nil {
			return err
		}
		if jsonOut {
			return cliutil.EmitJSON(os.Stdout, rep)
		}
		fmt.Printf("loadtest %s: %d ok / %d requests, achieved %.3f/Mcycle, goodput %.3f/Mcycle\n",
			rep.Label, rep.OK, rep.Requests, rep.AchievedPerMcycle, rep.GoodputPerMcycle)
		return nil
	case "fuzz":
		var rep *pssp.FuzzReport
		var sum *pssp.FuzzStallSummary
		var err error
		if p.UntilStall > 0 {
			rep, sum, err = coord.FuzzUntilStall(ctx, *p.Fuzz, p.CorpusDir, p.UntilStall)
		} else {
			rep, err = coord.Fuzz(ctx, *p.Fuzz, p.CorpusDir)
		}
		if err != nil {
			return err
		}
		if jsonOut {
			// psspfuzz's exact shape: timed_out never set (fabric rounds are
			// exec-bounded), until_stall only in continuous mode.
			out := struct {
				*pssp.FuzzReport
				TimedOut   bool                   `json:"timed_out,omitempty"`
				UntilStall *pssp.FuzzStallSummary `json:"until_stall,omitempty"`
			}{rep, false, sum}
			return cliutil.EmitJSON(os.Stdout, out)
		}
		fmt.Printf("fuzz %s: %d execs, %d edges (frontier %016x), corpus %d, %d finding(s)\n",
			rep.Label, rep.Execs, rep.Edges, rep.CoverageHash, rep.CorpusSize, len(rep.Findings))
		if sum != nil {
			fmt.Printf("  continuous: frontier stalled after %d round(s), %d total execs\n",
				sum.Rounds, sum.TotalExecs)
		}
		return nil
	}
	return fmt.Errorf("unknown job kind %q", p.Kind)
}

// remoteArgs bundles the remote-mode verbs.
type remoteArgs struct {
	submit, status, cancel, aggregate, stats, watch bool

	id      uint64
	jsonOut bool
	params  func() (fabric.SubmitParams, error)
}

// runRemote drives a serving coordinator's control API.
func runRemote(ctx context.Context, addr string, a remoteArgs) error {
	c, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()

	switch {
	case a.watch:
		return runWatch(ctx, c, addr)
	case a.submit:
		p, err := a.params()
		if err != nil {
			return err
		}
		var res fabric.SubmitResult
		if err := c.Call(ctx, "submit", p, &res); err != nil {
			return err
		}
		if a.jsonOut {
			return cliutil.EmitJSON(os.Stdout, res)
		}
		fmt.Printf("job %d submitted\n", res.ID)
		return nil
	case a.status:
		var res fabric.StatusResult
		if err := c.Call(ctx, "status", fabric.StatusParams{ID: a.id}, &res); err != nil {
			return err
		}
		if a.jsonOut {
			return cliutil.EmitJSON(os.Stdout, res)
		}
		if len(res.Jobs) == 0 {
			fmt.Println("no jobs")
			return nil
		}
		for _, j := range res.Jobs {
			fmt.Printf("job %d %-9s %s", j.ID, j.Kind, j.State)
			if j.Error != "" {
				fmt.Printf(": %s", j.Error)
			}
			fmt.Println()
		}
		return nil
	case a.cancel:
		if a.id == 0 {
			return fmt.Errorf("-cancel requires -id")
		}
		var res daemon.CancelResult
		if err := c.Call(ctx, "cancel", daemon.CancelParams{ID: a.id}, &res); err != nil {
			return err
		}
		if a.jsonOut {
			return cliutil.EmitJSON(os.Stdout, res)
		}
		fmt.Printf("job %d canceled: %v\n", a.id, res.Canceled)
		return nil
	case a.aggregate:
		if a.id == 0 {
			return fmt.Errorf("-aggregate requires -id")
		}
		// Fetch the stored report verbatim: re-indenting the raw message
		// reproduces the one-shot emission byte for byte.
		var raw json.RawMessage
		if err := c.Call(ctx, "aggregate", fabric.AggregateParams{ID: a.id}, &raw); err != nil {
			return err
		}
		return cliutil.EmitJSON(os.Stdout, raw)
	case a.stats:
		var st fabric.Stats
		if err := c.Call(ctx, "stats", nil, &st); err != nil {
			return err
		}
		if a.jsonOut {
			return cliutil.EmitJSON(os.Stdout, st)
		}
		fmt.Printf("%d lease(s) issued, %d reassigned", st.LeasesIssued, st.LeasesReassigned)
		if st.FrontierEdges > 0 {
			fmt.Printf(", frontier %d edges", st.FrontierEdges)
		}
		fmt.Println()
		for _, w := range st.Workers {
			state := "dead"
			if w.Alive {
				state = "idle"
				if w.Busy {
					state = "busy"
				}
			}
			fmt.Printf("worker %s: %-4s leases=%d shards=%d (%.1f shards/s)\n",
				w.Name, state, w.Leases, w.ShardsDone, w.ShardsPerSec)
		}
		for _, j := range st.Jobs {
			fmt.Printf("job %d %-9s %s\n", j.ID, j.Kind, j.State)
		}
		return nil
	}
	return fmt.Errorf("-remote needs a verb: -submit, -status, -cancel, -aggregate or -stats")
}

// splitList splits a comma-separated address list, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// parseSweep parses the -sweep multiplier list (psspload's grammar).
func parseSweep(spec string) ([]float64, error) {
	if spec == "" {
		return nil, nil
	}
	var out []float64
	for _, s := range strings.Split(spec, ",") {
		m, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || !(m > 0) {
			return nil, fmt.Errorf("sweep multiplier %q: want a positive number", s)
		}
		out = append(out, m)
	}
	return out, nil
}
