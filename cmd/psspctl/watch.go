package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/daemon/client"
	"repro/internal/fabric"
	"repro/internal/obs"
)

// watchInterval is the dashboard redraw period. One second keeps the
// control connection chatter negligible next to lease traffic while still
// reading as "live".
const watchInterval = time.Second

// runWatch is the -watch verb: a live dashboard over the coordinator's
// stats and metrics RPCs, redrawn once a second until ctx is interrupted.
// It supersedes polling `psspctl -stats` in a shell loop — one connection,
// one screen, quantiles included.
func runWatch(ctx context.Context, c *client.Client, addr string) error {
	tick := time.NewTicker(watchInterval)
	defer tick.Stop()
	for {
		frame, err := watchFrame(ctx, c, addr)
		if err != nil {
			if ctx.Err() != nil {
				fmt.Println()
				return nil
			}
			return err
		}
		// Home the cursor and clear below: repainting in place flickers
		// less than a full-screen erase.
		fmt.Fprint(os.Stdout, "\x1b[H\x1b[2J"+frame)
		select {
		case <-ctx.Done():
			fmt.Println()
			return nil
		case <-tick.C:
		}
	}
}

// watchFrame renders one dashboard screen.
func watchFrame(ctx context.Context, c *client.Client, addr string) (string, error) {
	var st fabric.Stats
	if err := c.Call(ctx, "stats", nil, &st); err != nil {
		return "", err
	}
	var series []obs.Series
	if err := c.Call(ctx, "metrics", nil, &series); err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "psspctl watch — %s — %s (refresh %s, ^C to quit)\n\n",
		addr, time.Now().Format("15:04:05"), watchInterval)

	fmt.Fprintf(&b, "leases: %d issued, %d reassigned", st.LeasesIssued, st.LeasesReassigned)
	if st.FrontierEdges > 0 {
		fmt.Fprintf(&b, " — frontier %d edges", st.FrontierEdges)
	}
	b.WriteString("\n\nworkers:\n")
	if len(st.Workers) == 0 {
		b.WriteString("  (none attached)\n")
	}
	for _, w := range st.Workers {
		state := "dead"
		if w.Alive {
			state = "idle"
			if w.Busy {
				state = "busy"
			}
		}
		fmt.Fprintf(&b, "  %-24s %-4s leases=%-5d shards=%-7d %8.1f shards/s\n",
			w.Name, state, w.Leases, w.ShardsDone, w.ShardsPerSec)
	}
	if len(st.Jobs) > 0 {
		b.WriteString("\njobs:\n")
		for _, j := range st.Jobs {
			fmt.Fprintf(&b, "  %4d %-9s %s", j.ID, j.Kind, j.State)
			if j.Error != "" {
				fmt.Fprintf(&b, ": %s", j.Error)
			}
			b.WriteByte('\n')
		}
	}
	if len(series) > 0 {
		b.WriteString("\nmetrics:\n")
		for _, s := range series {
			if s.Hist != nil {
				fmt.Fprintf(&b, "  %-42s n=%-7d p50=%-11s p99=%-11s max=%s\n",
					s.Name, s.Hist.Count, watchDur(s.Hist.P50), watchDur(s.Hist.P99), watchDur(s.Hist.Max))
				continue
			}
			fmt.Fprintf(&b, "  %-42s %g\n", s.Name, s.Value)
		}
	}
	return b.String(), nil
}

// watchDur renders a nanosecond quantile human-readably.
func watchDur(ns uint64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
