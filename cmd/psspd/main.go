// Command psspd is the multi-tenant serving daemon of the simulation stack:
// it keeps a warm pool of parked fork-server machines and executes
// compile/boot/attack/loadtest/fuzz jobs submitted over a newline-delimited
// JSON-RPC connection (see internal/daemon for the protocol), under
// per-tenant admission control and deterministic seed derivation.
//
// Jobs that name an explicit seed produce byte-identical reports to the
// equivalent CLI invocation (psspattack/psspload/psspfuzz with -remote
// re-emit them verbatim); jobs without one draw unique per-job seeds from
// their tenant's stream.
//
// Usage:
//
//	psspd -listen unix:/tmp/psspd.sock
//	psspd -listen 127.0.0.1:7077 -max-jobs 8 -pool 16
//	psspd -listen unix:/tmp/psspd.sock -quota 500000000 -tenant-jobs 2
//	psspd -listen unix:/tmp/psspd.sock -store /var/cache/pssp
//	psspd -worker -join unix:/tmp/psspctl.sock -name w0 -store /var/cache/pssp
//	psspd -listen unix:/tmp/psspd.sock -metrics 127.0.0.1:9090
//
// -metrics serves the observability surface over HTTP: Prometheus text on
// /metrics, per-job flight-recorder traces on /traces, and the standard
// pprof profiles under /debug/pprof/. Metrics are pure read-side: every
// report is byte-identical with or without them. -log-level picks the
// stderr verbosity (error, info, debug).
//
// -worker runs the daemon as a fabric worker instead of a listener: it
// dials the coordinator at -join (a psspctl -listen address), registers
// under -name, and serves shard-lease requests over that one connection,
// rejoining with capped backoff whenever it drops. Everything else —
// warm pool, engine, store, drain — behaves identically.
//
// -store attaches a content-addressed artifact store: cold pool misses
// become store lookups (reported as store_hits/store_misses in `stats` and
// the shutdown log line), and compiled images persist across restarts.
//
// SIGINT/SIGTERM drain the daemon: listeners close, running jobs are
// canceled, the warm pool releases its machines, and psspd exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/daemon"
	"repro/internal/daemon/client"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/workpool"
	"repro/pssp"
)

func main() {
	var (
		listen     = flag.String("listen", "unix:/tmp/psspd.sock", "listen address: unix:/path or host:port")
		seed       = flag.Uint64("seed", 1, "daemon master seed (tenant seed streams derive from it)")
		maxJobs    = flag.Int("max-jobs", 4, "concurrently running jobs")
		maxQueue   = flag.Int("max-queue", 16, "jobs waiting for a slot before admission fails busy")
		tenantJobs = flag.Int("tenant-jobs", 0, "per-tenant concurrent job bound (0 = max-jobs)")
		quota      = flag.Uint64("quota", 0, "per-tenant victim-cycle quota (0 = unlimited)")
		poolSize   = flag.Int("pool", 8, "warm machine pool capacity")
		engine     = flag.String("engine", "predecoded", "execution engine: interpreter, predecoded, or compiled")
		storeDir   = flag.String("store", "", "content-addressed artifact store directory (empty = compile in-process only)")
		drain      = flag.Duration("drain", 10*time.Second, "shutdown drain timeout")
		workerMode = flag.Bool("worker", false, "run as a fabric worker: dial -join and serve shard leases instead of listening")
		join       = flag.String("join", "", "coordinator address to register with (-worker mode): unix:/path or host:port")
		name       = flag.String("name", "", "worker name in coordinator stats (-worker mode; default pid-based)")
		metrics    = flag.String("metrics", "", "serve /metrics, /traces and /debug/pprof over HTTP on this address (empty = off)")
		logLevel   = flag.String("log-level", "info", "stderr verbosity: error, info or debug")
	)
	flag.Parse()
	fail := func(err error) { cliutil.Fail("psspd", err) }

	level, err := cliutil.ParseLevel(*logLevel)
	if err != nil {
		fail(err)
	}
	logger := cliutil.NewLogger("psspd", level)
	client.SetDebugf(logger.Logf(cliutil.LevelDebug))

	eng, err := pssp.ParseEngine(*engine)
	if err != nil {
		fail(err)
	}
	if *workerMode {
		if *join == "" {
			fail(fmt.Errorf("-worker requires -join: the coordinator address to register with"))
		}
		runWorker(*join, *name, *storeDir, *metrics, *drain, logger, daemon.Config{
			Seed:        *seed,
			MaxJobs:     *maxJobs,
			MaxQueue:    *maxQueue,
			TenantJobs:  *tenantJobs,
			QuotaCycles: *quota,
			PoolSize:    *poolSize,
			Engine:      eng,
		}, fail)
		return
	}
	if *join != "" {
		fail(fmt.Errorf("-join requires -worker"))
	}

	network, target := "tcp", *listen
	if strings.HasPrefix(*listen, "unix:") {
		network, target = "unix", strings.TrimPrefix(*listen, "unix:")
		// A stale socket file from a previous run would fail the bind.
		os.Remove(target)
	} else {
		target = strings.TrimPrefix(target, "tcp:")
	}
	lis, err := net.Listen(network, target)
	if err != nil {
		fail(err)
	}

	var st *pssp.Store
	if *storeDir != "" {
		if st, err = pssp.OpenStore(*storeDir); err != nil {
			fail(err)
		}
	}

	d := daemon.New(daemon.Config{
		Seed:        *seed,
		MaxJobs:     *maxJobs,
		MaxQueue:    *maxQueue,
		TenantJobs:  *tenantJobs,
		QuotaCycles: *quota,
		PoolSize:    *poolSize,
		Engine:      eng,
		Store:       st,
	})
	// The kernel and workpool sites are package-wide installs; psspd owns
	// the process, so they feed the daemon's registry.
	kernel.SetMetrics(d.Metrics())
	workpool.SetMetrics(d.Metrics())
	if *metrics != "" {
		addr, stop, err := obs.ListenAndServe(*metrics, d.Metrics(), d.Recorder())
		if err != nil {
			fail(fmt.Errorf("metrics: %w", err))
		}
		defer stop()
		logger.Infof("metrics on http://%s/metrics", addr)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- d.Serve(lis) }()
	logger.Infof("serving on %s (seed %d, %d job slots, pool %d)",
		*listen, *seed, *maxJobs, *poolSize)

	select {
	case sig := <-sigs:
		logger.Infof("%s, draining...", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := d.Shutdown(ctx)
		cancel()
		if st != nil {
			ss := st.Stats()
			logger.Infof("store %s: store_hits=%d store_misses=%d (mem %d, disk %d, corrupt %d)",
				*storeDir, ss.Hits, ss.Misses, ss.MemHits, ss.DiskHits, ss.Corrupt)
			// The pool's machines are all closed once Shutdown returns, so no
			// live address space aliases the store's mappings.
			st.Close()
		}
		if network == "unix" {
			os.Remove(target)
		}
		if err != nil {
			fail(fmt.Errorf("drain: %w", err))
		}
	case err := <-errc:
		if err != nil {
			fail(err)
		}
	}
}

// runWorker is the -worker mode body: one daemon, no listener, a join loop
// against the coordinator, and the same signal-drain exit as serve mode.
func runWorker(join, name, storeDir, metrics string, drain time.Duration, logger *cliutil.Logger, cfg daemon.Config, fail func(error)) {
	var st *pssp.Store
	var err error
	if storeDir != "" {
		if st, err = pssp.OpenStore(storeDir); err != nil {
			fail(err)
		}
		cfg.Store = st
	}
	d := daemon.New(cfg)
	kernel.SetMetrics(d.Metrics())
	workpool.SetMetrics(d.Metrics())
	if metrics != "" {
		addr, stop, err := obs.ListenAndServe(metrics, d.Metrics(), d.Recorder())
		if err != nil {
			fail(fmt.Errorf("metrics: %w", err))
		}
		defer stop()
		logger.Infof("metrics on http://%s/metrics", addr)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- d.Worker(ctx, join, name) }()
	logger.Infof("worker joining %s (seed %d, %d job slots, pool %d)",
		join, cfg.Seed, cfg.MaxJobs, cfg.PoolSize)

	select {
	case sig := <-sigs:
		logger.Infof("%s, draining...", sig)
		cancel()
		dctx, dcancel := context.WithTimeout(context.Background(), drain)
		err := d.Shutdown(dctx)
		dcancel()
		if st != nil {
			ss := st.Stats()
			logger.Infof("store %s: store_hits=%d store_misses=%d (mem %d, disk %d, corrupt %d)",
				storeDir, ss.Hits, ss.Misses, ss.MemHits, ss.DiskHits, ss.Corrupt)
			st.Close()
		}
		if err != nil {
			fail(fmt.Errorf("drain: %w", err))
		}
	case err := <-errc:
		if err != nil && err != context.Canceled {
			fail(err)
		}
	}
}
