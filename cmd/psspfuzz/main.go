// Command psspfuzz drives the coverage-guided fuzzing subsystem: it boots
// replica fork-servers for a built-in app with the VM's edge-coverage map
// enabled, mutates a seed corpus over sharded deterministic streams, and
// reports the coverage frontier, the admitted corpus, and the deduplicated,
// minimized crash findings — including the buffer length each overflow
// finding hands to the attack layer (psspattack/Machine.Campaign).
//
// Usage:
//
//	psspfuzz -app nginx-vuln -scheme ssp -execs 4096
//	psspfuzz -app ali-vuln -scheme ssp -seed 7 -workers 8 -json
//	psspfuzz -app nginx-vuln -seeds 'GET /:2,PING' -dict 'Host:,HTTP/1.1'
//	psspfuzz -app nginx-vuln -duration 10s
//	psspfuzz -app nginx-vuln -store /var/cache/pssp -corpus ./corpus
//	psspfuzz -remote unix:/tmp/psspd.sock -tenant ci -execs 4096 -json
//
// -seeds and -dict use the shared weighted-spec grammar of psspload's -mix
// ("item" or "item:weight" entries, comma-separated); a seeds/dict weight
// replicates the entry, biasing uniform draws toward it. For a fixed -seed
// an exec-bounded run's report is bit-identical at any -workers count;
// -duration time-boxes the run in wall-clock time instead, trading that
// determinism for a budget in seconds.
//
// -store names a content-addressed artifact store: the victim image is
// compiled at most once per (app, scheme, toolchain) across every run and
// process sharing the directory, served from mmap'd blobs afterwards.
// -corpus names a persistent corpus directory, deduplicated by input
// content hash and carrying the merged coverage frontier: a rerun loads the
// saved inputs as extra seeds and resumes from the recorded frontier
// instead of rediscovering it, then folds its own discoveries back in.
// Store and corpus status go to stderr; the -json report shape never
// changes, so fixed-seed runs stay byte-comparable.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/daemon"
	"repro/internal/daemon/client"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/pssp"
)

func main() {
	var (
		app      = flag.String("app", "nginx-vuln", "built-in server app to fuzz (see pssp.Apps)")
		scheme   = flag.String("scheme", "ssp", "protection scheme of the victim servers")
		seedSpec = flag.String("seeds", "", "seed corpus spec, e.g. 'GET /:2,PING' (empty = the app's built-in request)")
		corpus   = flag.String("corpus", "", "persistent corpus directory: saved inputs seed the run, discoveries and the coverage frontier are folded back (local runs only)")
		storeDir = flag.String("store", "", "content-addressed artifact store directory (empty = compile in-process)")
		dict     = flag.String("dict", "", "mutation dictionary spec, e.g. 'Host:,HTTP/1.1:2'")
		execs    = flag.Int("execs", 4096, "total mutation budget across shards")
		duration = flag.Duration("duration", 0, "wall-clock time box (0 = exec-bounded only; a timed run's report is partial, not worker-invariant)")
		shards   = flag.Int("shards", 4, "self-contained fuzzing shards, one replica victim each (part of the scenario)")
		workers  = flag.Int("workers", 0, "concurrent shard executors (0 = GOMAXPROCS; wall-clock only)")
		maxIn    = flag.Int("max-input", 1024, "generated input length cap in bytes")
		stall    = flag.Int("until-stall", 0, "continuous mode: rerun exec-bounded rounds, reseeded from the growing corpus, until the coverage frontier is unchanged for this many consecutive rounds (0 = single run)")
		jsonOut  = flag.Bool("json", false, "emit one machine-readable JSON object")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		remote   = flag.String("remote", "", "run on a psspd daemon at this address (unix:/path or host:port)")
		tenant   = flag.String("tenant", "", "tenant name for -remote (default \"default\")")
	)
	flag.Parse()
	fail := func(err error) { cliutil.Fail("psspfuzz", err) }

	s, err := pssp.ParseScheme(*scheme)
	if err != nil {
		fail(err)
	}
	seeds, err := cliutil.ParseByteItems(*seedSpec)
	if err != nil {
		fail(fmt.Errorf("seeds %w", err))
	}
	tokens, err := cliutil.ParseByteItems(*dict)
	if err != nil {
		fail(fmt.Errorf("dict %w", err))
	}
	if *remote != "" && (*corpus != "" || *storeDir != "") {
		fail(errors.New("-corpus and -store apply to local runs; a psspd daemon manages its own store (psspd -store)"))
	}
	if *stall > 0 && *remote != "" {
		fail(errors.New("-until-stall is a local loop; for distributed continuous fuzzing use psspctl -job fuzz -until-stall"))
	}
	if *stall > 0 && *duration > 0 {
		fail(errors.New("-until-stall rounds are exec-bounded; combine with -execs, not -duration"))
	}

	ctx := context.Background()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}
	// A time-boxed run prints a live ticker on stderr: the engine's Progress
	// stream, throttled to ~1 Hz here (callbacks are serialized by the
	// engine, so the plain `last` is race-free). Exec-bounded runs stay
	// silent — their report is the whole story.
	var progress func(pssp.FuzzProgress)
	if *duration > 0 {
		var last time.Time
		progress = func(p pssp.FuzzProgress) {
			now := time.Now()
			if now.Sub(last) < time.Second {
				return
			}
			last = now
			fmt.Fprintf(os.Stderr, "psspfuzz: shard %d/%d, %d execs, %d crashes, %d finding(s), corpus %d\n",
				p.ShardsDone, p.Shards, p.Execs, p.Crashes, p.Findings, p.CorpusSize)
		}
	}

	var rep *pssp.FuzzReport
	var stallSum *pssp.FuzzStallSummary
	timedOut := false
	if *remote != "" {
		c, err := client.Dial(*remote)
		if err != nil {
			fail(err)
		}
		defer c.Close()
		opts := []client.Option{client.WithTenant(*tenant)}
		if progress != nil {
			opts = append(opts, client.WithEvents(func(ev daemon.ProgressEvent) {
				if ev.Fuzz != nil {
					progress(*ev.Fuzz)
				}
			}))
		}
		var fr daemon.FuzzResult
		err = c.Call(ctx, "fuzz", daemon.FuzzParams{
			App: *app, Scheme: s.String(), Seeds: seeds, Dict: tokens,
			Execs: *execs, Shards: *shards, Workers: *workers,
			MaxInput: *maxIn, Seed: *seed,
		}, &fr, opts...)
		if err != nil {
			fail(err)
		}
		rep = fr.FuzzReport
		// A canceled partial under -duration is the requested time box.
		timedOut = fr.TimedOut || (*duration > 0 && fr.Canceled)
	} else {
		machineOpts := []pssp.Option{pssp.WithSeed(*seed), pssp.WithScheme(s)}
		var st *pssp.Store
		if *storeDir != "" {
			if st, err = pssp.OpenStore(*storeDir); err != nil {
				fail(err)
			}
			machineOpts = append(machineOpts, pssp.WithStore(st))
		}
		baseSeeds := seeds
		var corp *store.Corpus
		var baseVirgin []byte
		if *corpus != "" {
			if corp, err = store.OpenCorpus(*corpus); err != nil {
				fail(err)
			}
			saved, frontier, err := corp.Load()
			if err != nil {
				fail(err)
			}
			// Saved inputs ride along as extra seeds (sorted by content hash,
			// so the scenario is a function of the corpus set alone), and the
			// saved frontier marks their coverage as already charted.
			seeds = append(seeds, saved...)
			baseVirgin = frontier
			resumed := "fresh"
			if frontier != nil {
				resumed = "resumed"
			}
			fmt.Fprintf(os.Stderr, "psspfuzz: corpus %s: %d saved input(s), frontier %s\n",
				*corpus, len(saved), resumed)
		}
		m := pssp.NewMachine(machineOpts...)
		img, err := m.Pipeline().CompileApp(*app).Image()
		if err != nil {
			fail(err)
		}
		if *stall > 0 {
			// Continuous mode reseeds itself each round, so the base seed
			// corpus (pre-corpus-append) and the corpus handle go in raw; the
			// loop folds and reloads the corpus between rounds itself.
			cfg := pssp.FuzzConfig{
				Seeds: baseSeeds, Dict: tokens, Execs: *execs, Shards: *shards,
				Workers: *workers, Seed: *seed, MaxInput: *maxIn,
			}
			rep, stallSum, err = fuzzUntilStall(ctx, m, img, cfg, corp, *stall)
			if err != nil {
				fail(err)
			}
			if st != nil {
				ss := st.Stats()
				fmt.Fprintf(os.Stderr, "psspfuzz: store: hits=%d misses=%d\n", ss.Hits, ss.Misses)
			}
			emit(*jsonOut, rep, s, 0, false, stallSum, fail)
			return
		}
		rep, err = m.Fuzz(ctx, img, pssp.FuzzConfig{
			Seeds:      seeds,
			Dict:       tokens,
			Execs:      *execs,
			Shards:     *shards,
			Workers:    *workers,
			Seed:       *seed,
			MaxInput:   *maxIn,
			Progress:   progress,
			BaseVirgin: baseVirgin,
		})
		if rep != nil && corp != nil {
			// Persist even a partial run's discoveries: content-hash dedup
			// makes re-adding idempotent and the frontier only accumulates.
			added, aerr := corp.Add(rep.CorpusInputs())
			if aerr == nil {
				aerr = corp.SaveFrontier(rep.Frontier())
			}
			if aerr != nil {
				fail(aerr)
			}
			fmt.Fprintf(os.Stderr, "psspfuzz: corpus %s: +%d new input(s), frontier merged\n", *corpus, added)
		}
		if st != nil {
			ss := st.Stats()
			fmt.Fprintf(os.Stderr, "psspfuzz: store: hits=%d misses=%d\n", ss.Hits, ss.Misses)
		}
		if err != nil {
			// A -duration deadline is the requested time box, not a failure:
			// report the partial result like a stopped fuzzing session. The
			// check is on the returned error, not ctx.Err() — a genuine fatal
			// error that lands after the deadline must still fail loudly.
			if *duration > 0 && errors.Is(err, context.DeadlineExceeded) && rep != nil {
				timedOut = true
			} else {
				fail(err)
			}
		}
	}

	emit(*jsonOut, rep, s, *duration, timedOut, stallSum, fail)
}

// emit renders the report — the one output path of every psspfuzz mode, so
// local, remote, single-run, and continuous runs stay byte-comparable.
func emit(jsonOut bool, rep *pssp.FuzzReport, s pssp.Scheme, duration time.Duration, timedOut bool, stallSum *pssp.FuzzStallSummary, fail func(error)) {
	if jsonOut {
		// A completed run keeps the bare FuzzReport shape; a time-boxed
		// partial adds "timed_out": true so scripts cannot mistake a
		// truncated frontier for a full one, and a continuous run adds its
		// "until_stall" convergence summary.
		out := struct {
			*pssp.FuzzReport
			TimedOut   bool                   `json:"timed_out,omitempty"`
			UntilStall *pssp.FuzzStallSummary `json:"until_stall,omitempty"`
		}{rep, timedOut, stallSum}
		if err := cliutil.EmitJSON(os.Stdout, out); err != nil {
			fail(err)
		}
		return
	}
	fmt.Printf("%s (scheme %s): %d execs over %d shard(s)", rep.Label, s, rep.Execs, rep.Shards)
	if timedOut {
		fmt.Printf(" [time box %v hit]", duration)
	}
	fmt.Println()
	if stallSum != nil {
		fmt.Printf("  continuous: frontier stalled after %d round(s), %d total execs\n",
			stallSum.Rounds, stallSum.TotalExecs)
	}
	fmt.Printf("  coverage: %d edges (frontier %016x), corpus %d entries\n",
		rep.Edges, rep.CoverageHash, rep.CorpusSize)
	fmt.Printf("  crashes: %d executions, %d unique site(s)", rep.Crashes, len(rep.Findings))
	if rep.ExecsToFirstCrash > 0 {
		fmt.Printf(", first at exec %d", rep.ExecsToFirstCrash)
	}
	fmt.Println()
	for i, f := range rep.Findings {
		kind := f.Kind
		if f.Detected {
			kind = "canary-detected: " + kind
		}
		fmt.Printf("  finding %d: rip=0x%x %s\n", i, f.CrashPC, kind)
		fmt.Printf("    shard %d exec %d, input %d bytes, minimized %d bytes -> overflow after %d bytes\n",
			f.Shard, f.Exec, len(f.Input), len(f.Minimized), f.OverflowLen())
	}
}

// fuzzUntilStall is -until-stall's round loop — the local twin of the
// fabric coordinator's continuous mode, with identical round semantics so
// the two stay byte-comparable: round r>0 re-derives its mutation seed as
// rng.Mix(seed, r) and seeds itself with every input discovered so far
// (reloaded through the persistent corpus when -corpus is set, in memory
// otherwise), with the accumulated frontier as the round's base virgin map.
// The frontier is monotone and bounded, so the loop terminates.
func fuzzUntilStall(ctx context.Context, m *pssp.Machine, img *pssp.Image, cfg pssp.FuzzConfig, corp *store.Corpus, stall int) (*pssp.FuzzReport, *pssp.FuzzStallSummary, error) {
	baseSeeds := cfg.Seeds
	seeds := baseSeeds
	var baseVirgin []byte
	sum := &pssp.FuzzStallSummary{StallRounds: stall}
	var rep *pssp.FuzzReport
	var lastHash uint64
	same, started := 0, false
	for {
		rc := cfg
		if sum.Rounds > 0 {
			rc.Seed = rng.Mix(cfg.Seed, uint64(sum.Rounds))
		}
		if corp != nil {
			// Reload between rounds: concurrent runs sharing the corpus
			// contribute seeds and frontier too.
			saved, frontier, err := corp.Load()
			if err != nil {
				return rep, sum, err
			}
			seeds = append(append([][]byte{}, baseSeeds...), saved...)
			baseVirgin = frontier
		}
		rc.Seeds = seeds
		rc.BaseVirgin = baseVirgin
		r, err := m.Fuzz(ctx, img, rc)
		if err != nil {
			return rep, sum, err
		}
		rep = r
		sum.Rounds++
		sum.TotalExecs += r.Execs
		if corp != nil {
			if _, err := corp.Add(r.CorpusInputs()); err != nil {
				return rep, sum, err
			}
			if err := corp.SaveFrontier(r.Frontier()); err != nil {
				return rep, sum, err
			}
		} else {
			seeds = append(append([][]byte{}, baseSeeds...), r.CorpusInputs()...)
			baseVirgin = r.Frontier()
		}
		if started && r.CoverageHash == lastHash {
			same++
		} else {
			same = 0
		}
		started = true
		lastHash = r.CoverageHash
		fmt.Fprintf(os.Stderr, "psspfuzz: round %d: %d edges, frontier %016x (%d/%d stalled)\n",
			sum.Rounds, r.Edges, r.CoverageHash, same, stall)
		if same >= stall {
			return rep, sum, nil
		}
	}
}
