// Command psspinstr is the binary instrumentation tool: it upgrades an
// SSP-compiled binary image to P-SSP in place, preserving code and stack
// layout (paper Section V-C). Built on the public pssp facade.
//
// Usage:
//
//	psspinstr -in app.bin -o app-pssp.bin                       # static app
//	psspinstr -in app.bin -libc libc.bin -o app-pssp.bin \
//	          -libc-o libc-pssp.bin                             # dynamic app
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/pssp"
)

func main() {
	var (
		in     = flag.String("in", "", "input SSP binary")
		out    = flag.String("o", "", "output instrumented binary")
		libcIn = flag.String("libc", "", "libc image (dynamic apps)")
		libcO  = flag.String("libc-o", "", "output instrumented libc (dynamic apps)")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "psspinstr: %v\n", err)
		os.Exit(1)
	}
	if *in == "" || *out == "" {
		fail(fmt.Errorf("need -in and -o"))
	}

	app, err := pssp.OpenImage(*in)
	if err != nil {
		fail(err)
	}
	var libc *pssp.Image
	if *libcIn != "" {
		if libc, err = pssp.OpenImage(*libcIn); err != nil {
			fail(err)
		}
	}
	newApp, newLibc, err := pssp.Rewrite(app, libc)
	if err != nil {
		fail(err)
	}
	if err := newApp.WriteFile(*out); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s: code %d -> %d bytes (%+.2f%%)\n",
		*out, app.CodeSize(), newApp.CodeSize(),
		100*(float64(newApp.CodeSize())/float64(app.CodeSize())-1))
	if newLibc != nil {
		if *libcO == "" {
			fail(fmt.Errorf("dynamic app: need -libc-o for the rewritten libc"))
		}
		if err := newLibc.WriteFile(*libcO); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (rewritten libc)\n", *libcO)
	}
}
