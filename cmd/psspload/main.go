// Command psspload drives the virtual-time load-generation subsystem: it
// boots replica fork-servers for a built-in app and pushes a traffic mix —
// benign request classes, optionally interleaved with live attack-strategy
// probes — through an open- or closed-loop arrival model, reporting
// tail-latency histograms, offered-vs-achieved throughput, and per-class
// crash/detection counters. All in victim cycles: for a fixed -seed the
// report is bit-identical at any -workers count.
//
// Usage:
//
//	psspload -app nginx -arrivals poisson -rate 20 -requests 512
//	psspload -app mysql -arrivals closed -clients 16 -think 5000
//	psspload -app nginx-vuln -scheme p-ssp -mix 'benign:3,probe=adaptive:1'
//	psspload -app nginx -arrivals uniform -rate 10 -sweep 0.5,1,2,4,8 -json
//	psspload -remote unix:/tmp/psspd.sock -tenant ci -requests 256 -json
//	psspload -remote unix:/tmp/psspd.sock -smoke 64 -conns 4
//
// The -mix grammar is comma-separated class:weight items, where a class is
// either "benign" (the app's built-in request payload) or "probe=NAME" with
// NAME a registered attack strategy (see psspattack's -strategy help). It is
// parsed by the shared cliutil.ParseMix, the same weighted-spec grammar
// psspfuzz's -seeds/-dict flags use.
//
// -smoke N load-tests the daemon itself rather than a simulated victim: it
// opens -conns real client connections and pushes N boot jobs for one
// (app, scheme, seed) triple through them, so after the first cold build
// every job should be a warm pool hit. It reports wall-clock job latency
// (p50/p99/max — real time, not virtual cycles, so the numbers are
// machine-dependent) and the daemon's pool and store hit counters from
// `stats`.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
	"repro/internal/daemon"
	"repro/internal/daemon/client"
	"repro/pssp"
)

// parseSweep parses the -sweep multiplier list.
func parseSweep(spec string) ([]float64, error) {
	if spec == "" {
		return nil, nil
	}
	var out []float64
	for _, s := range strings.Split(spec, ",") {
		m, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || !(m > 0) {
			return nil, fmt.Errorf("sweep multiplier %q: want a positive number", s)
		}
		out = append(out, m)
	}
	return out, nil
}

func us(cycles uint64) string {
	return fmt.Sprintf("%.3f", float64(cycles)/pssp.CyclesPerMicrosecond)
}

func printReport(rep *pssp.LoadReport) {
	fmt.Printf("%s: %s over %d shard(s)\n", rep.Label, rep.Arrivals, rep.Shards)
	fmt.Printf("  requests %d (ok %d, crashes %d, detections %d), virtual duration %d cycles\n",
		rep.Requests, rep.OK, rep.Crashes, rep.Detections, rep.DurationCycles)
	fmt.Printf("  throughput: offered %.3f/Mcycle, achieved %.3f/Mcycle (efficiency %.3f), goodput %.3f/Mcycle\n",
		rep.OfferedPerMcycle, rep.AchievedPerMcycle, rep.Efficiency(), rep.GoodputPerMcycle)
	l := rep.Latency
	fmt.Printf("  latency µs @3.5GHz: mean %.3f  p50 %s  p90 %s  p99 %s  p99.9 %s  max %s\n",
		l.MeanCycles/pssp.CyclesPerMicrosecond, us(l.P50), us(l.P90), us(l.P99), us(l.P999), us(l.Max))
	if rep.ProbeReplications > 0 {
		fmt.Printf("  probes: %d attack replications completed, %d recovered the canary\n",
			rep.ProbeReplications, rep.ProbeSuccesses)
	}
	for _, c := range rep.Classes {
		fmt.Printf("  class %-12s %5d req, %4d crashes, %4d detections, p50 %s µs, p99 %s µs\n",
			c.Name, c.Requests, c.Crashes, c.Detections, us(c.Latency.P50), us(c.Latency.P99))
	}
}

func printSweep(sw *pssp.LoadSweepReport, app, arrivals string, s pssp.Scheme) {
	fmt.Printf("sweep %s (%s, scheme %s): %d points\n", app, arrivals, s, len(sw.Points))
	for _, pt := range sw.Points {
		rep := pt.Report
		fmt.Printf("  x%-5g offered %8.3f/Mcycle  achieved %8.3f/Mcycle  eff %.3f  p99 %s µs\n",
			pt.Multiplier, rep.OfferedPerMcycle, rep.AchievedPerMcycle,
			rep.Efficiency(), us(rep.Latency.P99))
	}
	if sw.KneeMultiplier > 0 {
		fmt.Printf("saturation knee: x%g (largest multiplier with efficiency >= %.2f)\n",
			sw.KneeMultiplier, pssp.KneeEfficiency)
	} else {
		fmt.Println("saturation knee: not located (closed loop, or all points past the knee)")
	}
}

// smokeReport is the -smoke output: wall-clock job latency over real client
// connections plus the daemon's pool/store effectiveness counters. Unlike
// every other report in the stack it measures the serving daemon itself, in
// real time, so the numbers are machine-dependent by design.
type smokeReport struct {
	App    string `json:"app"`
	Scheme string `json:"scheme"`
	Seed   uint64 `json:"seed"`
	Jobs   int    `json:"jobs"`
	Conns  int    `json:"conns"`
	// Wall-clock job latency in microseconds, measured Call-to-return at
	// the client (transport + queueing + job execution).
	P50Micros float64 `json:"p50_micros"`
	P99Micros float64 `json:"p99_micros"`
	MaxMicros float64 `json:"max_micros"`
	// ElapsedMicros is the whole smoke run; JobsPerSec the achieved rate.
	ElapsedMicros float64 `json:"elapsed_micros"`
	JobsPerSec    float64 `json:"jobs_per_sec"`
	// PoolHitRate is warm checkouts / total checkouts over the daemon's
	// lifetime (from `stats`, so prior traffic counts too).
	PoolHitRate float64      `json:"pool_hit_rate"`
	Stats       daemon.Stats `json:"stats"`
}

// runSmoke pushes jobs boot jobs for one (app, scheme, seed) triple through
// nconns real client connections: the first checkout builds the machine
// cold, every later one should be a warm pool hit, so the p99 approximates
// the daemon's warm dispatch floor over a real transport.
func runSmoke(remote, tenant, app string, s pssp.Scheme, seed uint64, jobs, nconns int, jsonOut bool) error {
	if nconns <= 0 {
		nconns = 1
	}
	if nconns > jobs {
		nconns = jobs
	}
	clients := make([]*client.Client, nconns)
	for i := range clients {
		c, err := client.Dial(remote)
		if err != nil {
			return err
		}
		defer c.Close()
		clients[i] = c
	}

	ctx := context.Background()
	durations := make([]time.Duration, jobs)
	var next atomic.Int64
	var wg sync.WaitGroup
	var firstErr atomic.Value
	start := time.Now()
	for _, c := range clients {
		wg.Add(1)
		go func(c *client.Client) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= jobs || firstErr.Load() != nil {
					return
				}
				t0 := time.Now()
				err := c.Call(ctx, "boot", daemon.BootParams{App: app, Scheme: s.String(), Seed: seed},
					nil, client.WithTenant(tenant))
				durations[i] = time.Since(t0)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return err
	}

	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	quantile := func(q float64) time.Duration {
		i := int(q * float64(jobs-1))
		return durations[i]
	}
	stats, err := clients[0].Stats(ctx)
	if err != nil {
		return err
	}
	rep := smokeReport{
		App: app, Scheme: s.String(), Seed: seed, Jobs: jobs, Conns: nconns,
		P50Micros:     float64(quantile(0.50)) / float64(time.Microsecond),
		P99Micros:     float64(quantile(0.99)) / float64(time.Microsecond),
		MaxMicros:     float64(durations[jobs-1]) / float64(time.Microsecond),
		ElapsedMicros: float64(elapsed) / float64(time.Microsecond),
		JobsPerSec:    float64(jobs) / elapsed.Seconds(),
		Stats:         stats,
	}
	if total := stats.Pool.Hits + stats.Pool.Misses; total > 0 {
		rep.PoolHitRate = float64(stats.Pool.Hits) / float64(total)
	}
	if jsonOut {
		return cliutil.EmitJSON(os.Stdout, rep)
	}
	fmt.Printf("smoke %s (scheme %s, seed %d): %d boot jobs over %d connection(s) in %.1f ms (%.0f jobs/s)\n",
		app, s, seed, jobs, nconns, rep.ElapsedMicros/1000, rep.JobsPerSec)
	fmt.Printf("  wall-clock job latency: p50 %.0f µs  p99 %.0f µs  max %.0f µs\n",
		rep.P50Micros, rep.P99Micros, rep.MaxMicros)
	fmt.Printf("  pool: %d hits / %d misses (hit rate %.3f), %d parked, %d images\n",
		stats.Pool.Hits, stats.Pool.Misses, rep.PoolHitRate, stats.Pool.Entries, stats.Pool.Images)
	if stats.Pool.StoreHits+stats.Pool.StoreMisses > 0 {
		fmt.Printf("  store: %d hits / %d misses\n", stats.Pool.StoreHits, stats.Pool.StoreMisses)
	}
	return nil
}

func main() {
	var (
		app      = flag.String("app", "nginx", "built-in server app to load (see pssp.Apps)")
		scheme   = flag.String("scheme", "p-ssp", "protection scheme of the servers")
		mixSpec  = flag.String("mix", "benign:1", "traffic mix, e.g. 'benign:3,probe=adaptive:1'")
		arrivals = flag.String("arrivals", "poisson", "arrival model: poisson | uniform | closed")
		rate     = flag.Float64("rate", 10, "open-loop offered rate (requests per million victim cycles)")
		clients  = flag.Int("clients", 8, "closed-loop client population")
		think    = flag.Float64("think", 0, "closed-loop mean think time (cycles)")
		requests = flag.Int("requests", 256, "total request budget (0 = duration-bounded)")
		duration = flag.Uint64("duration", 0, "virtual-time horizon in cycles (0 = request-bounded)")
		shards   = flag.Int("shards", 4, "replica servers the clients shard over (part of the scenario)")
		workers  = flag.Int("workers", 0, "concurrent shard executors (0 = GOMAXPROCS; wall-clock only)")
		budget   = flag.Int("budget", 64, "probe trials per attack replication")
		sweep    = flag.String("sweep", "", "offered-load multipliers, e.g. '0.5,1,2,4' (locates the saturation knee)")
		jsonOut  = flag.Bool("json", false, "emit one machine-readable JSON object")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		storeDir = flag.String("store", "", "content-addressed artifact store directory (local runs; empty = compile in-process)")
		remote   = flag.String("remote", "", "run on a psspd daemon at this address (unix:/path or host:port)")
		tenant   = flag.String("tenant", "", "tenant name for -remote (default \"default\")")
		smoke    = flag.Int("smoke", 0, "daemon smoke mode: push this many boot jobs over real connections and report wall-clock latency + pool hit rate (requires -remote)")
		conns    = flag.Int("conns", 4, "client connections for -smoke")
	)
	flag.Parse()
	fail := func(err error) { cliutil.Fail("psspload", err) }

	s, err := pssp.ParseScheme(*scheme)
	if err != nil {
		fail(err)
	}
	mix, err := cliutil.ParseMix(*mixSpec)
	if err != nil {
		fail(err)
	}
	var kind pssp.ArrivalKind
	switch *arrivals {
	case "poisson":
		kind = pssp.ArrivalsOpenPoisson
	case "uniform":
		kind = pssp.ArrivalsOpenUniform
	case "closed":
		kind = pssp.ArrivalsClosedLoop
	default:
		fail(fmt.Errorf("unknown arrival model %q (want poisson, uniform or closed)", *arrivals))
	}
	multipliers, err := parseSweep(*sweep)
	if err != nil {
		fail(err)
	}
	if *remote != "" && *storeDir != "" {
		fail(fmt.Errorf("-store applies to local runs; a psspd daemon manages its own store (psspd -store)"))
	}

	if *smoke > 0 {
		if *remote == "" {
			fail(fmt.Errorf("-smoke requires -remote: it measures a live daemon over real connections"))
		}
		if err := runSmoke(*remote, *tenant, *app, s, *seed, *smoke, *conns, *jsonOut); err != nil {
			fail(err)
		}
		return
	}

	if *remote != "" {
		c, err := client.Dial(*remote)
		if err != nil {
			fail(err)
		}
		defer c.Close()
		classes := make([]daemon.LoadClass, len(mix))
		for i, rc := range mix {
			classes[i] = daemon.LoadClass{Name: rc.Name, Weight: rc.Weight, Payload: rc.Payload, Probe: rc.Probe}
		}
		var res daemon.LoadResult
		err = c.Call(context.Background(), "loadtest", daemon.LoadParams{
			App: *app, Scheme: s.String(), Mix: classes, Arrivals: *arrivals,
			Rate: *rate, Clients: *clients, ThinkCycles: *think,
			Requests: *requests, DurationCycles: *duration,
			Shards: *shards, Workers: *workers, Budget: *budget,
			Sweep: multipliers, Seed: *seed,
		}, &res, client.WithTenant(*tenant))
		if err != nil {
			fail(err)
		}
		if res.Canceled {
			fmt.Fprintln(os.Stderr, "psspload: job canceled; partial report follows")
		}
		// The inner report is emitted bare, so remote -json output matches
		// the local run byte for byte at a fixed seed.
		if res.Sweep != nil {
			if *jsonOut {
				if err := cliutil.EmitJSON(os.Stdout, res.Sweep); err != nil {
					fail(err)
				}
				return
			}
			printSweep(res.Sweep, *app, *arrivals, s)
			return
		}
		if *jsonOut {
			if err := cliutil.EmitJSON(os.Stdout, res.Report); err != nil {
				fail(err)
			}
			return
		}
		printReport(res.Report)
		return
	}

	opts := []pssp.Option{
		pssp.WithSeed(*seed),
		pssp.WithScheme(s),
		pssp.WithAttackBudget(*budget),
	}
	if *storeDir != "" {
		st, err := pssp.OpenStore(*storeDir)
		if err != nil {
			fail(err)
		}
		opts = append(opts, pssp.WithStore(st))
	}
	m := pssp.NewMachine(opts...)
	ctx := context.Background()
	img, err := m.Pipeline().CompileApp(*app).Image()
	if err != nil {
		fail(err)
	}
	cfg := pssp.WorkloadConfig{
		Label:          *app,
		Mix:            mix,
		Arrivals:       kind,
		RatePerMcycle:  *rate,
		Clients:        *clients,
		ThinkCycles:    *think,
		Requests:       *requests,
		DurationCycles: *duration,
		Shards:         *shards,
		Workers:        *workers,
		Seed:           *seed,
	}

	if len(multipliers) > 0 {
		sw, err := m.LoadSweep(ctx, img, cfg, multipliers)
		if err != nil {
			fail(err)
		}
		if *jsonOut {
			if err := cliutil.EmitJSON(os.Stdout, sw); err != nil {
				fail(err)
			}
			return
		}
		printSweep(sw, *app, *arrivals, s)
		return
	}

	rep, err := m.LoadTest(ctx, img, cfg)
	if err != nil {
		fail(err)
	}
	if *jsonOut {
		if err := cliutil.EmitJSON(os.Stdout, rep); err != nil {
			fail(err)
		}
		return
	}
	printReport(rep)
}
