// Command psspload drives the virtual-time load-generation subsystem: it
// boots replica fork-servers for a built-in app and pushes a traffic mix —
// benign request classes, optionally interleaved with live attack-strategy
// probes — through an open- or closed-loop arrival model, reporting
// tail-latency histograms, offered-vs-achieved throughput, and per-class
// crash/detection counters. All in victim cycles: for a fixed -seed the
// report is bit-identical at any -workers count.
//
// Usage:
//
//	psspload -app nginx -arrivals poisson -rate 20 -requests 512
//	psspload -app mysql -arrivals closed -clients 16 -think 5000
//	psspload -app nginx-vuln -scheme p-ssp -mix 'benign:3,probe=adaptive:1'
//	psspload -app nginx -arrivals uniform -rate 10 -sweep 0.5,1,2,4,8 -json
//	psspload -remote unix:/tmp/psspd.sock -tenant ci -requests 256 -json
//
// The -mix grammar is comma-separated class:weight items, where a class is
// either "benign" (the app's built-in request payload) or "probe=NAME" with
// NAME a registered attack strategy (see psspattack's -strategy help). It is
// parsed by the shared cliutil.ParseMix, the same weighted-spec grammar
// psspfuzz's -corpus/-dict flags use.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/daemon"
	"repro/internal/daemon/client"
	"repro/pssp"
)

// parseSweep parses the -sweep multiplier list.
func parseSweep(spec string) ([]float64, error) {
	if spec == "" {
		return nil, nil
	}
	var out []float64
	for _, s := range strings.Split(spec, ",") {
		m, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || !(m > 0) {
			return nil, fmt.Errorf("sweep multiplier %q: want a positive number", s)
		}
		out = append(out, m)
	}
	return out, nil
}

func us(cycles uint64) string {
	return fmt.Sprintf("%.3f", float64(cycles)/pssp.CyclesPerMicrosecond)
}

func printReport(rep *pssp.LoadReport) {
	fmt.Printf("%s: %s over %d shard(s)\n", rep.Label, rep.Arrivals, rep.Shards)
	fmt.Printf("  requests %d (ok %d, crashes %d, detections %d), virtual duration %d cycles\n",
		rep.Requests, rep.OK, rep.Crashes, rep.Detections, rep.DurationCycles)
	fmt.Printf("  throughput: offered %.3f/Mcycle, achieved %.3f/Mcycle (efficiency %.3f), goodput %.3f/Mcycle\n",
		rep.OfferedPerMcycle, rep.AchievedPerMcycle, rep.Efficiency(), rep.GoodputPerMcycle)
	l := rep.Latency
	fmt.Printf("  latency µs @3.5GHz: mean %.3f  p50 %s  p90 %s  p99 %s  p99.9 %s  max %s\n",
		l.MeanCycles/pssp.CyclesPerMicrosecond, us(l.P50), us(l.P90), us(l.P99), us(l.P999), us(l.Max))
	if rep.ProbeReplications > 0 {
		fmt.Printf("  probes: %d attack replications completed, %d recovered the canary\n",
			rep.ProbeReplications, rep.ProbeSuccesses)
	}
	for _, c := range rep.Classes {
		fmt.Printf("  class %-12s %5d req, %4d crashes, %4d detections, p50 %s µs, p99 %s µs\n",
			c.Name, c.Requests, c.Crashes, c.Detections, us(c.Latency.P50), us(c.Latency.P99))
	}
}

func printSweep(sw *pssp.LoadSweepReport, app, arrivals string, s pssp.Scheme) {
	fmt.Printf("sweep %s (%s, scheme %s): %d points\n", app, arrivals, s, len(sw.Points))
	for _, pt := range sw.Points {
		rep := pt.Report
		fmt.Printf("  x%-5g offered %8.3f/Mcycle  achieved %8.3f/Mcycle  eff %.3f  p99 %s µs\n",
			pt.Multiplier, rep.OfferedPerMcycle, rep.AchievedPerMcycle,
			rep.Efficiency(), us(rep.Latency.P99))
	}
	if sw.KneeMultiplier > 0 {
		fmt.Printf("saturation knee: x%g (largest multiplier with efficiency >= %.2f)\n",
			sw.KneeMultiplier, pssp.KneeEfficiency)
	} else {
		fmt.Println("saturation knee: not located (closed loop, or all points past the knee)")
	}
}

func main() {
	var (
		app      = flag.String("app", "nginx", "built-in server app to load (see pssp.Apps)")
		scheme   = flag.String("scheme", "p-ssp", "protection scheme of the servers")
		mixSpec  = flag.String("mix", "benign:1", "traffic mix, e.g. 'benign:3,probe=adaptive:1'")
		arrivals = flag.String("arrivals", "poisson", "arrival model: poisson | uniform | closed")
		rate     = flag.Float64("rate", 10, "open-loop offered rate (requests per million victim cycles)")
		clients  = flag.Int("clients", 8, "closed-loop client population")
		think    = flag.Float64("think", 0, "closed-loop mean think time (cycles)")
		requests = flag.Int("requests", 256, "total request budget (0 = duration-bounded)")
		duration = flag.Uint64("duration", 0, "virtual-time horizon in cycles (0 = request-bounded)")
		shards   = flag.Int("shards", 4, "replica servers the clients shard over (part of the scenario)")
		workers  = flag.Int("workers", 0, "concurrent shard executors (0 = GOMAXPROCS; wall-clock only)")
		budget   = flag.Int("budget", 64, "probe trials per attack replication")
		sweep    = flag.String("sweep", "", "offered-load multipliers, e.g. '0.5,1,2,4' (locates the saturation knee)")
		jsonOut  = flag.Bool("json", false, "emit one machine-readable JSON object")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		remote   = flag.String("remote", "", "run on a psspd daemon at this address (unix:/path or host:port)")
		tenant   = flag.String("tenant", "", "tenant name for -remote (default \"default\")")
	)
	flag.Parse()
	fail := func(err error) { cliutil.Fail("psspload", err) }

	s, err := pssp.ParseScheme(*scheme)
	if err != nil {
		fail(err)
	}
	mix, err := cliutil.ParseMix(*mixSpec)
	if err != nil {
		fail(err)
	}
	var kind pssp.ArrivalKind
	switch *arrivals {
	case "poisson":
		kind = pssp.ArrivalsOpenPoisson
	case "uniform":
		kind = pssp.ArrivalsOpenUniform
	case "closed":
		kind = pssp.ArrivalsClosedLoop
	default:
		fail(fmt.Errorf("unknown arrival model %q (want poisson, uniform or closed)", *arrivals))
	}
	multipliers, err := parseSweep(*sweep)
	if err != nil {
		fail(err)
	}

	if *remote != "" {
		c, err := client.Dial(*remote)
		if err != nil {
			fail(err)
		}
		defer c.Close()
		classes := make([]daemon.LoadClass, len(mix))
		for i, rc := range mix {
			classes[i] = daemon.LoadClass{Name: rc.Name, Weight: rc.Weight, Payload: rc.Payload, Probe: rc.Probe}
		}
		var res daemon.LoadResult
		err = c.Call(context.Background(), "loadtest", daemon.LoadParams{
			App: *app, Scheme: s.String(), Mix: classes, Arrivals: *arrivals,
			Rate: *rate, Clients: *clients, ThinkCycles: *think,
			Requests: *requests, DurationCycles: *duration,
			Shards: *shards, Workers: *workers, Budget: *budget,
			Sweep: multipliers, Seed: *seed,
		}, &res, client.WithTenant(*tenant))
		if err != nil {
			fail(err)
		}
		if res.Canceled {
			fmt.Fprintln(os.Stderr, "psspload: job canceled; partial report follows")
		}
		// The inner report is emitted bare, so remote -json output matches
		// the local run byte for byte at a fixed seed.
		if res.Sweep != nil {
			if *jsonOut {
				if err := cliutil.EmitJSON(os.Stdout, res.Sweep); err != nil {
					fail(err)
				}
				return
			}
			printSweep(res.Sweep, *app, *arrivals, s)
			return
		}
		if *jsonOut {
			if err := cliutil.EmitJSON(os.Stdout, res.Report); err != nil {
				fail(err)
			}
			return
		}
		printReport(res.Report)
		return
	}

	m := pssp.NewMachine(
		pssp.WithSeed(*seed),
		pssp.WithScheme(s),
		pssp.WithAttackBudget(*budget),
	)
	ctx := context.Background()
	img, err := m.Pipeline().CompileApp(*app).Image()
	if err != nil {
		fail(err)
	}
	cfg := pssp.WorkloadConfig{
		Label:          *app,
		Mix:            mix,
		Arrivals:       kind,
		RatePerMcycle:  *rate,
		Clients:        *clients,
		ThinkCycles:    *think,
		Requests:       *requests,
		DurationCycles: *duration,
		Shards:         *shards,
		Workers:        *workers,
		Seed:           *seed,
	}

	if len(multipliers) > 0 {
		sw, err := m.LoadSweep(ctx, img, cfg, multipliers)
		if err != nil {
			fail(err)
		}
		if *jsonOut {
			if err := cliutil.EmitJSON(os.Stdout, sw); err != nil {
				fail(err)
			}
			return
		}
		printSweep(sw, *app, *arrivals, s)
		return
	}

	rep, err := m.LoadTest(ctx, img, cfg)
	if err != nil {
		fail(err)
	}
	if *jsonOut {
		if err := cliutil.EmitJSON(os.Stdout, rep); err != nil {
			fail(err)
		}
		return
	}
	printReport(rep)
}
