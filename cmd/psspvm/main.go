// Command psspvm loads and runs a binary image in the simulated machine —
// batch programs to completion, servers for a number of requests — and can
// disassemble images. Built entirely on the public pssp facade.
//
// Usage:
//
//	psspvm -bin app.bin                         # run a batch program
//	psspvm -bin srv.bin -request "GET /" -n 10  # serve 10 requests
//	psspvm -bin app.bin -libc libc.bin          # dynamically linked app
//	psspvm -bin app.bin -disas                  # disassemble .text
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/pssp"
)

func main() {
	var (
		binPath  = flag.String("bin", "", "binary image to run")
		libcPath = flag.String("libc", "", "libc image (dynamic apps)")
		request  = flag.String("request", "", "serve requests with this payload")
		n        = flag.Int("n", 1, "number of requests")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		engine   = flag.String("engine", "predecoded", "execution engine: interpreter, predecoded, or compiled")
		disas    = flag.Bool("disas", false, "disassemble executable sections and exit")
		trace    = flag.Int("trace", 0, "print the first N executed instructions")
		stats    = flag.Bool("stats", false, "print per-opcode execution statistics")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "psspvm: %v\n", err)
		os.Exit(1)
	}
	if *binPath == "" {
		fail(fmt.Errorf("need -bin"))
	}

	app, err := pssp.OpenImage(*binPath)
	if err != nil {
		fail(err)
	}
	if *disas {
		fmt.Print(app.Disassembly())
		return
	}

	if *stats && *trace > 0 {
		fail(fmt.Errorf("-stats and -trace are mutually exclusive"))
	}
	opStats := pssp.NewStats()
	mOpts := []pssp.Option{pssp.WithSeed(*seed), pssp.WithMaxInstructions(1 << 30)}
	eng, err := pssp.ParseEngine(*engine)
	if err != nil {
		fail(err)
	}
	mOpts = append(mOpts, pssp.WithEngine(eng))
	switch {
	case *stats:
		mOpts = append(mOpts, pssp.WithStats(opStats))
	case *trace > 0:
		mOpts = append(mOpts, pssp.WithTrace(os.Stdout, uint64(*trace)))
	}
	m := pssp.NewMachine(mOpts...)

	var loadOpts []pssp.LoadOption
	if *libcPath != "" {
		libc, err := pssp.OpenImage(*libcPath)
		if err != nil {
			fail(err)
		}
		loadOpts = append(loadOpts, pssp.LoadLibc(libc))
	}
	ctx := context.Background()

	if *request == "" {
		proc, err := m.Load(app, loadOpts...)
		if err != nil {
			fail(err)
		}
		res, err := proc.Run(ctx)
		var crash *pssp.CrashError
		switch {
		case err == nil:
			fmt.Printf("state=exited exit=%d cycles=%d insts=%d\n",
				res.ExitCode, res.Cycles, res.Insts)
			if len(res.Output) > 0 {
				fmt.Printf("stdout (%d bytes): %q\n", len(res.Output), res.Output)
			}
			if *stats {
				opStats.Report(os.Stdout)
			}
		case errors.As(err, &crash):
			fmt.Printf("state=crashed cycles=%d insts=%d\n", proc.Cycles(), proc.Insts())
			fmt.Printf("crash: %s\n", crash.Reason)
			os.Exit(1)
		default:
			fail(err)
		}
		return
	}

	srv, err := m.Serve(ctx, app, loadOpts...)
	if err != nil {
		fail(err)
	}
	for i := 0; i < *n; i++ {
		out, err := srv.Handle(ctx, []byte(*request))
		if err != nil {
			fail(err)
		}
		if out.Crashed() {
			var crash *pssp.CrashError
			errors.As(out.Err, &crash)
			fmt.Printf("request %d: CRASH (%s)\n", i, crash.Reason)
		} else {
			fmt.Printf("request %d: %q (%d cycles)\n", i, out.Body, out.Cycles)
		}
	}
	fmt.Printf("served %d requests, %d crashes, avg %.0f cycles/request\n",
		srv.Requests(), srv.Crashes(), srv.AvgCycles())
	if *stats {
		opStats.Report(os.Stdout)
	}
}
