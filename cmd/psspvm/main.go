// Command psspvm loads and runs a binary image in the simulated machine —
// batch programs to completion, servers for a number of requests — and can
// disassemble images.
//
// Usage:
//
//	psspvm -bin app.bin                         # run a batch program
//	psspvm -bin srv.bin -request "GET /" -n 10  # serve 10 requests
//	psspvm -bin app.bin -libc libc.bin          # dynamically linked app
//	psspvm -bin app.bin -disas                  # disassemble .text
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/binfmt"
	"repro/internal/kernel"
	"repro/internal/vm"
)

func main() {
	var (
		binPath  = flag.String("bin", "", "binary image to run")
		libcPath = flag.String("libc", "", "libc image (dynamic apps)")
		request  = flag.String("request", "", "serve requests with this payload")
		n        = flag.Int("n", 1, "number of requests")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		disas    = flag.Bool("disas", false, "disassemble executable sections and exit")
		trace    = flag.Int("trace", 0, "print the first N executed instructions")
		stats    = flag.Bool("stats", false, "print per-opcode execution statistics")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "psspvm: %v\n", err)
		os.Exit(1)
	}
	if *binPath == "" {
		fail(fmt.Errorf("need -bin"))
	}

	load := func(path string) *binfmt.Binary {
		raw, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		b, err := binfmt.Unmarshal(raw)
		if err != nil {
			fail(fmt.Errorf("%s: %w", path, err))
		}
		return b
	}
	app := load(*binPath)

	if *disas {
		for _, sec := range app.Sections {
			if sec.Perm&0b100 == 0 || len(sec.Data) == 0 {
				continue
			}
			fmt.Printf("section %s at 0x%x (%d bytes):\n", sec.Name, sec.Addr, len(sec.Data))
			fmt.Print(asm.Disassemble(sec.Data))
		}
		return
	}

	opts := kernel.SpawnOpts{}
	if *libcPath != "" {
		opts.Libc = load(*libcPath)
	}
	k := kernel.New(*seed)
	k.MaxInsts = 1 << 30

	if *request == "" {
		p, err := k.Spawn(app, opts)
		if err != nil {
			fail(err)
		}
		opStats := &vm.OpStats{}
		switch {
		case *trace > 0:
			p.CPU.SetTracer(&vm.WriterTracer{W: os.Stdout, Limit: uint64(*trace)})
		case *stats:
			p.CPU.SetTracer(opStats)
		}
		st := k.Run(p)
		fmt.Printf("state=%s exit=%d cycles=%d insts=%d\n", st, p.ExitCode, p.CPU.Cycles, p.CPU.Insts)
		if st == kernel.StateCrashed {
			fmt.Printf("crash: %s\n", p.CrashReason)
			os.Exit(1)
		}
		if len(p.Stdout) > 0 {
			fmt.Printf("stdout (%d bytes): %q\n", len(p.Stdout), p.Stdout)
		}
		if *stats {
			opStats.Report(os.Stdout)
		}
		return
	}

	srv, err := kernel.NewForkServer(k, app, opts)
	if err != nil {
		fail(err)
	}
	for i := 0; i < *n; i++ {
		out, err := srv.Handle([]byte(*request))
		if err != nil {
			fail(err)
		}
		if out.Crashed {
			fmt.Printf("request %d: CRASH (%s)\n", i, out.CrashReason)
		} else {
			fmt.Printf("request %d: %q (%d cycles)\n", i, out.Response, out.Cycles)
		}
	}
	fmt.Printf("served %d requests, %d crashes, avg %d cycles/request\n",
		srv.Requests, srv.Crashes, srv.TotalCycles/uint64(srv.Requests))
}
