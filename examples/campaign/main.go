// Campaign: the paper's evaluation methodology as a demo — Monte-Carlo
// attack campaigns over pluggable adversary strategies, driven entirely
// through the public pssp facade.
//
// Every registered strategy (byte-by-byte §II-B, chunk-wise, exhaustive
// word search §III-C, uniform random, adaptive restart-on-detection) is
// replicated 8 times against SSP- and P-SSP-compiled victims. Each
// replication attacks a fresh victim machine derived from (seed,
// replication), sharded across all cores; the printed aggregates are
// bit-identical for a fixed seed at any worker count.
//
// Run: go run ./examples/campaign
package main

import (
	"context"
	"fmt"
	"os"

	"repro/pssp"
)

func main() {
	ctx := context.Background()
	const reps = 8
	for _, scheme := range []pssp.Scheme{pssp.SchemeSSP, pssp.SchemePSSP} {
		fmt.Printf("=== victim: nginx-vuln compiled with %s, %d replications per strategy ===\n", scheme, reps)
		m := pssp.NewMachine(pssp.WithSeed(2018), pssp.WithScheme(scheme))
		img, err := m.CompileApp("nginx-vuln")
		if err != nil {
			fail(err)
		}
		for _, info := range pssp.AttackStrategies() {
			res, err := m.Campaign(ctx, img, pssp.CampaignConfig{
				Strategy:     info.Name,
				Replications: reps,
				Attack:       pssp.AttackConfig{MaxTrials: 2048},
			})
			if err != nil {
				fail(err)
			}
			line := fmt.Sprintf("%-12s success %d/%d, %6d trials, detection %.3f",
				info.Name, res.Successes, res.Completed, res.Trials, res.DetectionRate())
			if res.Successes > 0 {
				ts := res.TrialsToSuccess
				line += fmt.Sprintf(", trials-to-success min/med/p95 %.0f/%.0f/%.0f", ts.Min, ts.Median, ts.P95)
			}
			fmt.Println(line)
		}
		fmt.Println()
	}
	fmt.Println("note: only the accumulating positional strategies beat SSP within budget;")
	fmt.Println("      P-SSP re-randomizes per fork, so no strategy accumulates advantage.")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "campaign:", err)
	os.Exit(1)
}
