// Daemon: the multi-tenant serving stack as a demo — a psspd daemon on a
// Unix socket, two tenants submitting attack and fuzz jobs through the
// client library, streamed progress events, the determinism contract
// (explicit seed ⇒ byte-identical to the local CLI run), per-tenant
// quota enforcement, and a stats snapshot of the warm pool.
//
// Run: go run ./examples/daemon
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"repro/internal/daemon"
	"repro/internal/daemon/client"
	"repro/pssp"
)

func main() {
	ctx := context.Background()

	// Serve a daemon on a private Unix socket, as `psspd -listen unix:...`
	// would. A tight victim-cycle quota makes the admission demo concrete.
	dir, err := os.MkdirTemp("", "psspd-example")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "psspd.sock")
	lis, err := net.Listen("unix", sock)
	if err != nil {
		fail(err)
	}
	d := daemon.New(daemon.Config{Seed: 1, MaxJobs: 2, QuotaCycles: 400_000})
	go d.Serve(lis)
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		d.Shutdown(sctx)
	}()

	c, err := client.Dial("unix:" + sock)
	if err != nil {
		fail(err)
	}
	defer c.Close()

	// Tenant "alice": an attack campaign with an explicit seed. The report
	// is byte-identical to what `psspattack -seed 7 -json` prints locally —
	// verify it on the spot.
	fmt.Println("=== alice: attack campaign via the daemon (seed 7) ===")
	var rep daemon.AttackReport
	err = c.Call(ctx, "attack", daemon.AttackParams{
		Scheme: "ssp", Budget: 2048, Repeats: 2, Workers: 2, Seed: 7,
	}, &rep, client.WithTenant("alice"))
	if err != nil {
		fail(err)
	}
	fmt.Printf("  %d/%d replications recovered the canary (%d verified), %d oracle calls\n",
		rep.Successes, rep.Completed, rep.Verified, rep.OracleCalls)

	m := pssp.NewMachine(pssp.WithSeed(7), pssp.WithScheme(pssp.SchemeSSP), pssp.WithAttackBudget(2048))
	img, err := m.CompileApp("nginx-vuln")
	if err != nil {
		fail(err)
	}
	res, err := m.Campaign(ctx, img, pssp.CampaignConfig{Replications: 2, Workers: 2})
	if err != nil {
		fail(err)
	}
	local, _ := json.Marshal(daemon.BuildAttackReport("nginx-vuln", pssp.SchemeSSP, 7, 2048, 2, 2, res))
	remote, _ := json.Marshal(rep)
	fmt.Printf("  byte-identical to the local run: %v\n", bytes.Equal(local, remote))

	// Tenant "bob": a fuzz job with streamed progress events.
	fmt.Println("=== bob: fuzz job with progress events ===")
	events := 0
	var fz daemon.FuzzResult
	err = c.Call(ctx, "fuzz", daemon.FuzzParams{Execs: 2048, Seed: 11}, &fz,
		client.WithTenant("bob"),
		client.WithEvents(func(ev daemon.ProgressEvent) { events++ }))
	if err != nil {
		fail(err)
	}
	fmt.Printf("  %d execs, %d finding(s), %d edges; %d progress event(s) streamed\n",
		fz.Execs, len(fz.Findings), fz.Edges, events)

	// Alice's campaign spent past the daemon's victim-cycle quota; her next
	// job bounces with a typed error while bob still runs.
	fmt.Println("=== quota enforcement ===")
	err = c.Call(ctx, "attack", daemon.AttackParams{Scheme: "ssp", Seed: 8}, nil,
		client.WithTenant("alice"))
	fmt.Printf("  alice again: rejected=%v (%v)\n", errors.Is(err, client.ErrQuota), err)

	st, err := c.Stats(ctx)
	if err != nil {
		fail(err)
	}
	fmt.Printf("=== stats: %d completed, pool %d/%d warm (hits %d, misses %d) ===\n",
		st.Completed, st.Pool.Entries, st.Pool.Capacity, st.Pool.Hits, st.Pool.Misses)
	for _, t := range st.Tenants {
		fmt.Printf("  tenant %-6s jobs %d, cycles %d/%d\n", t.Name, t.Jobs, t.CyclesUsed, t.CyclesQuota)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "daemon example:", err)
	os.Exit(1)
}
