// Forkserver: the paper's headline experiment as a demo, driven entirely
// through the public pssp facade.
//
// A vulnerable fork-per-request server (nginx analog with a 16-byte stack
// buffer and an attacker-controlled read length) is compiled twice — with
// classic SSP and with P-SSP — and the byte-by-byte attack of Bittau et
// al.'s BROP is run against both. Under SSP every forked worker inherits the
// same canary, so the attacker confirms one byte at a time (~1024 trials);
// under P-SSP every fork re-randomizes the stack pair and the attack stalls.
//
// Run: go run ./examples/forkserver
package main

import (
	"context"
	"fmt"
	"os"

	"repro/pssp"
)

func main() {
	ctx := context.Background()
	target, _ := pssp.App("nginx-vuln")
	for _, scheme := range []pssp.Scheme{pssp.SchemeSSP, pssp.SchemePSSP} {
		fmt.Printf("=== victim: %s compiled with %s ===\n", target.Name, scheme)

		m := pssp.NewMachine(pssp.WithSeed(7), pssp.WithScheme(scheme), pssp.WithAttackBudget(4096))
		pl := m.Pipeline().CompileApp(target.Name)
		srv, err := pl.Serve(ctx)
		if err != nil {
			fail(err)
		}

		// Sanity: the server actually serves.
		out, err := srv.Handle(ctx, target.Request)
		if err != nil {
			fail(err)
		}
		fmt.Printf("benign request: crashed=%v response=%q\n", out.Crashed(), out.Body)

		res, err := srv.Attack(ctx, pssp.AttackConfig{})
		if err != nil {
			fail(err)
		}
		if res.Success {
			real, _ := srv.Canary()
			fmt.Printf("attack SUCCEEDED in %d trials (paper expects ~1024)\n", res.Trials)
			fmt.Printf("recovered canary %016x, real canary %016x, match=%v\n",
				res.RecoveredWord(), real, res.RecoveredWord() == real)

			// Phase 2: with the canary in hand, hijack control flow into the
			// never-called backdoor function and exit cleanly.
			img, err := pl.Image()
			if err != nil {
				fail(err)
			}
			backdoor, _ := img.Symbol("backdoor")
			exitStub, _ := img.Symbol("__thread_exit")
			payload := pssp.HijackPayload(
				pssp.VulnServerBufSize, 'A', res.Canary,
				pssp.ScratchAddr, backdoor.Addr, exitStub.Addr)
			hout, err := srv.Handle(ctx, payload)
			if err != nil {
				fail(err)
			}
			hijacked := !hout.Crashed() && len(hout.Body) > 0 &&
				hout.Body[len(hout.Body)-1] == pssp.BackdoorMarker
			fmt.Printf("control-flow hijack into backdoor(): success=%v response=%x\n",
				hijacked, hout.Body)
		} else {
			fmt.Printf("attack FAILED after %d trials, stalled at byte %d — ", res.Trials, res.FailedAt)
			fmt.Println("each fork faced a fresh canary pair")
		}
		fmt.Printf("workers crashed during attack: %d\n\n", srv.Crashes())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "forkserver:", err)
	os.Exit(1)
}
