// Forkserver: the paper's headline experiment as a demo.
//
// A vulnerable fork-per-request server (nginx analog with a 16-byte stack
// buffer and an attacker-controlled read length) is compiled twice — with
// classic SSP and with P-SSP — and the byte-by-byte attack of Bittau et
// al.'s BROP is run against both. Under SSP every forked worker inherits the
// same canary, so the attacker confirms one byte at a time (~1024 trials);
// under P-SSP every fork re-randomizes the stack pair and the attack stalls.
//
// Run: go run ./examples/forkserver
package main

import (
	"fmt"
	"os"

	"repro/internal/abi"
	"repro/internal/apps"
	"repro/internal/attack"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mem"
)

func main() {
	target := apps.VulnServers()[0] // nginx-vuln
	for _, scheme := range []core.Scheme{core.SchemeSSP, core.SchemePSSP} {
		fmt.Printf("=== victim: %s compiled with %s ===\n", target.Name, scheme)

		bin, err := cc.Compile(target.Prog, cc.Options{Scheme: scheme, Linkage: abi.LinkStatic})
		if err != nil {
			fail(err)
		}
		k := kernel.New(7)
		srv, err := kernel.NewForkServer(k, bin, kernel.SpawnOpts{})
		if err != nil {
			fail(err)
		}

		// Sanity: the server actually serves.
		out, err := srv.Handle(target.Request)
		if err != nil {
			fail(err)
		}
		fmt.Printf("benign request: crashed=%v response=%q\n", out.Crashed, out.Response)

		res, err := attack.ByteByByte(&attack.ServerOracle{Srv: srv}, attack.Config{
			BufLen:    apps.VulnServerBufSize,
			MaxTrials: 4096,
		})
		if err != nil {
			fail(err)
		}
		if res.Success {
			real, _ := srv.Parent().TLS().Canary()
			fmt.Printf("attack SUCCEEDED in %d trials (paper expects ~1024)\n", res.Trials)
			fmt.Printf("recovered canary %016x, real canary %016x, match=%v\n",
				res.RecoveredWord(), real, res.RecoveredWord() == real)

			// Phase 2: with the canary in hand, hijack control flow into the
			// never-called backdoor function and exit cleanly.
			backdoor, _ := bin.Symbol("backdoor")
			exitStub, _ := bin.Symbol("__thread_exit")
			payload := attack.HijackPayload(
				apps.VulnServerBufSize, 'A', res.Canary,
				mem.DataBase+0x2000, backdoor.Addr, exitStub.Addr)
			hout, err := srv.Handle(payload)
			if err != nil {
				fail(err)
			}
			hijacked := !hout.Crashed && len(hout.Response) > 0 &&
				hout.Response[len(hout.Response)-1] == apps.BackdoorMarker
			fmt.Printf("control-flow hijack into backdoor(): success=%v response=%x\n",
				hijacked, hout.Response)
		} else {
			fmt.Printf("attack FAILED after %d trials, stalled at byte %d — ", res.Trials, res.FailedAt)
			fmt.Println("each fork faced a fresh canary pair")
		}
		fmt.Printf("workers crashed during attack: %d\n\n", srv.Crashes)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "forkserver:", err)
	os.Exit(1)
}
