// Fuzz: the closed loop from discovery to attack, driven entirely through
// the public pssp facade.
//
// Phase 1 fuzzes the nginx-vuln server (compiled with classic SSP so the
// canary classifies crashes): sharded deterministic mutation of the benign
// "GET /" request, edge coverage recorded by the VM, crashes deduplicated
// and minimized. The fuzzer discovers the read(fd, buf, attacker_len)
// overflow and recovers the buffer-to-canary distance from the minimized
// crashing input — knowledge every other experiment in this repo assumes a
// priori.
//
// Phase 2 hands the finding to the attack layer: the same discovered frame
// is campaigned byte-by-byte against the server compiled under each Table-I
// scheme, reproducing the paper's security matrix — the attack succeeds on
// the fork-stable canaries (none/ssp) and stalls on the polymorphic ones —
// with no human in the loop between finding the bug and exploiting it.
//
// Run: go run ./examples/fuzz
package main

import (
	"context"
	"fmt"
	"os"

	"repro/pssp"
)

func main() {
	ctx := context.Background()
	const seed = 2018

	// Phase 1: discover the overflow.
	fuzzer := pssp.NewMachine(pssp.WithSeed(seed), pssp.WithScheme(pssp.SchemeSSP))
	img, err := fuzzer.CompileApp("nginx-vuln")
	if err != nil {
		fail(err)
	}
	rep, err := fuzzer.Fuzz(ctx, img, pssp.FuzzConfig{Execs: 2048})
	if err != nil {
		fail(err)
	}
	fmt.Printf("fuzzed nginx-vuln (ssp): %d execs, %d edges, corpus %d, %d crashing execs, %d unique site(s)\n",
		rep.Execs, rep.Edges, rep.CorpusSize, rep.Crashes, len(rep.Findings))
	var overflow *pssp.FuzzFinding
	for i := range rep.Findings {
		if rep.Findings[i].Detected {
			overflow = &rep.Findings[i]
			break
		}
	}
	if overflow == nil {
		fail(fmt.Errorf("no canary-detected overflow among %d findings", len(rep.Findings)))
	}
	fmt.Printf("overflow found at exec %d: rip=0x%x, minimized to %d bytes -> buffer holds %d\n\n",
		overflow.Exec, overflow.CrashPC, len(overflow.Minimized), overflow.OverflowLen())

	// Phase 2: campaign the discovered frame against every Table-I scheme.
	attack := pssp.FindingAttack(*overflow)
	fmt.Printf("byte-by-byte campaigns seeded by the finding (BufLen %d), 4 replications each:\n", attack.BufLen)
	for _, scheme := range []pssp.Scheme{
		pssp.SchemeNone, pssp.SchemeSSP, pssp.SchemePSSP,
		pssp.SchemeDynaGuard, pssp.SchemeDCR,
	} {
		m := pssp.NewMachine(
			pssp.WithSeed(seed),
			pssp.WithScheme(scheme),
			pssp.WithAttackBudget(2048),
			// Workers wandering off a corrupted unprotected frame die on a
			// tight watchdog instead of burning the default 256Mi budget.
			pssp.WithMaxInstructions(4<<20),
		)
		victim, err := m.CompileApp("nginx-vuln")
		if err != nil {
			fail(err)
		}
		res, err := m.Campaign(ctx, victim, pssp.CampaignConfig{
			Replications: 4,
			Attack:       attack,
		})
		if err != nil {
			fail(err)
		}
		verdict := "resists"
		if res.Successes > 0 {
			verdict = fmt.Sprintf("broken (median %.0f trials)", res.TrialsToSuccess.Median)
		}
		fmt.Printf("  %-10s success %d/%d  detection %.3f  %s\n",
			scheme, res.Successes, res.Completed, res.DetectionRate(), verdict)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fuzz example:", err)
	os.Exit(1)
}
