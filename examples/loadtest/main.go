// Loadtest: the virtual-time load-generation subsystem as a demo.
//
// Three scenarios against P-SSP-compiled servers, all in victim cycles and
// bit-identical for a fixed seed at any worker count:
//
//  1. an open-loop Poisson sweep over nginx that steps the offered rate
//     until the replica fleet saturates, locating the knee;
//  2. a closed-loop client population over mysql showing queueing delay
//     entering the tail quantiles as clients are added;
//  3. attack-under-load: benign traffic and adaptive BROP probes
//     interleaved on the same vulnerable fork-servers, with per-class
//     latency and crash/detection counters.
//
// Run: go run ./examples/loadtest
package main

import (
	"context"
	"fmt"
	"os"

	"repro/pssp"
)

const mcPerUs = pssp.CyclesPerMicrosecond // cycles per µs at the paper's 3.5 GHz clock

func main() {
	ctx := context.Background()
	m := pssp.NewMachine(pssp.WithSeed(2018), pssp.WithScheme(pssp.SchemePSSP))

	fmt.Println("=== 1. open-loop sweep: nginx, Poisson arrivals, rate x0.5..x64 ===")
	nginx, err := m.CompileApp("nginx")
	if err != nil {
		fail(err)
	}
	sw, err := m.LoadSweep(ctx, nginx, pssp.WorkloadConfig{
		Arrivals:      pssp.ArrivalsOpenPoisson,
		RatePerMcycle: 50,
		Requests:      256,
		Shards:        4,
	}, []float64{0.5, 1, 4, 16, 64})
	if err != nil {
		fail(err)
	}
	for _, pt := range sw.Points {
		r := pt.Report
		fmt.Printf("  x%-4g offered %8.1f/Mcycle  achieved %8.1f/Mcycle  p99 %6.3f µs\n",
			pt.Multiplier, r.OfferedPerMcycle, r.AchievedPerMcycle, float64(r.Latency.P99)/mcPerUs)
	}
	fmt.Printf("  saturation knee at x%g\n\n", sw.KneeMultiplier)

	fmt.Println("=== 2. closed loop: mysql, growing client population ===")
	mysql, err := m.CompileApp("mysql")
	if err != nil {
		fail(err)
	}
	for _, clients := range []int{2, 8, 32} {
		rep, err := m.LoadTest(ctx, mysql, pssp.WorkloadConfig{
			Arrivals: pssp.ArrivalsClosedLoop,
			Clients:  clients,
			Requests: 96,
			Shards:   2,
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("  %2d clients: goodput %7.1f/Mcycle, p50 %6.3f µs, p99 %6.3f µs\n",
			clients, rep.GoodputPerMcycle,
			float64(rep.Latency.P50)/mcPerUs, float64(rep.Latency.P99)/mcPerUs)
	}
	fmt.Println()

	fmt.Println("=== 3. attack under load: nginx-vuln, benign 3 : adaptive probes 1 ===")
	vuln, err := m.CompileApp("nginx-vuln")
	if err != nil {
		fail(err)
	}
	rep, err := m.LoadTest(ctx, vuln, pssp.WorkloadConfig{
		Mix: []pssp.RequestClass{
			{Name: "benign", Weight: 3, Payload: []byte("GET /")},
			{Weight: 1, Probe: "adaptive"},
		},
		Arrivals:      pssp.ArrivalsOpenPoisson,
		RatePerMcycle: 100,
		Requests:      256,
		Shards:        4,
		Attack:        pssp.AttackConfig{MaxTrials: 8},
	})
	if err != nil {
		fail(err)
	}
	for _, c := range rep.Classes {
		fmt.Printf("  class %-10s %4d req, %4d crashes, %4d detections, p99 %6.3f µs\n",
			c.Name, c.Requests, c.Crashes, c.Detections, float64(c.Latency.P99)/mcPerUs)
	}
	fmt.Printf("  %d adaptive replications completed under load, %d recovered the canary\n",
		rep.ProbeReplications, rep.ProbeSuccesses)
	fmt.Println("  (P-SSP re-randomizes per fork: probes crash, benign traffic is unharmed)")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "loadtest:", err)
	os.Exit(1)
}
