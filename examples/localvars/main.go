// Localvars: what P-SSP-LV catches that classic SSP cannot.
//
// The victim's request handler keeps a critical value ("is_admin") in a
// stack slot that sits between a vulnerable buffer and the frame canary. A
// careful attacker overflows just far enough to flip the value and stops
// before the canary: SSP's epilogue sees an intact canary and the corruption
// goes undetected, the hijacked value visible in the response. Under
// P-SSP-LV a randomly drawn guard canary sits directly below the critical
// variable, so the same payload dies in the epilogue.
//
// Run: go run ./examples/localvars
package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/cc"
	"repro/pssp"
)

// victim builds the demo server. Under SSP the critical value is a plain
// 8-byte buffer placed between buf and the canary; under LV it is marked
// Critical and earns its own guard word.
func victim() *cc.Program {
	return &cc.Program{
		Name:    "localvars",
		Globals: []cc.Global{{Name: "reqlen", Size: 8}},
		Funcs: []*cc.Func{
			{Name: "main", Body: []cc.Stmt{cc.Call{Callee: "serve"}}},
			{
				Name: "serve",
				Locals: []cc.Local{
					{Name: "conn", Size: 16, IsBuffer: true},
					{Name: "n", Size: 8},
				},
				Body: []cc.Stmt{
					cc.Accept{Dst: "n"},
					cc.While{Var: "n", Body: []cc.Stmt{
						cc.StoreGlobal{Global: "reqlen", Src: "n"},
						cc.Call{Callee: "handle"},
						cc.Accept{Dst: "n"},
					}},
				},
			},
			{
				Name: "handle",
				Locals: []cc.Local{
					// Declared first => placed closest to the canary; the
					// Critical+IsBuffer marking gives it an LV guard.
					{Name: "is_admin", Size: 8, IsBuffer: true, Critical: true},
					{Name: "buf", Size: 16, IsBuffer: true},
					{Name: "len", Size: 8},
				},
				Body: []cc.Stmt{
					cc.SetConst{Dst: "is_admin", Value: 0},
					cc.LoadGlobal{Dst: "len", Global: "reqlen"},
					cc.ReadInput{Buf: "buf", LenVar: "len"}, // vulnerable
					cc.WriteOutput{Src: "is_admin", Len: 1}, // leaks the decision
				},
			},
		},
	}
}

func main() {
	// Payload: fill the 16-byte buffer, then write one more word to flip
	// is_admin — stopping short of the frame canary.
	payload := make([]byte, 24)
	for i := 0; i < 16; i++ {
		payload[i] = 'A'
	}
	payload[16] = 1 // is_admin = 1 under SSP's layout

	ctx := context.Background()
	for _, scheme := range []pssp.Scheme{pssp.SchemeSSP, pssp.SchemePSSPLV} {
		fmt.Printf("=== handler compiled with %s ===\n", scheme)
		m := pssp.NewMachine(pssp.WithSeed(5), pssp.WithScheme(scheme))
		srv, err := m.Pipeline().Compile(victim()).Serve(ctx)
		if err != nil {
			fail(err)
		}

		out, err := srv.Handle(ctx, []byte("hi"))
		if err != nil {
			fail(err)
		}
		fmt.Printf("benign request:  crashed=%v is_admin=%d\n", out.Crashed(), first(out.Body))

		out, err = srv.Handle(ctx, payload)
		if err != nil {
			fail(err)
		}
		if out.Crashed() {
			fmt.Printf("attack request:  DETECTED (%v)\n\n", out.Err)
		} else {
			fmt.Printf("attack request:  crashed=false is_admin=%d  <-- silent corruption!\n\n",
				first(out.Body))
		}
	}
	fmt.Println("SSP misses the overwrite (canary untouched); P-SSP-LV's guard word catches it.")
}

func first(b []byte) byte {
	if len(b) == 0 {
		return 0
	}
	return b[0]
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "localvars:", err)
	os.Exit(1)
}
