// Quickstart: the polymorphic-canary primitives as a plain Go library,
// then the same design running in the full simulated stack via the public
// pssp facade.
//
// The first part walks the paper's algorithms directly — no simulator
// involved: Algorithm 1 (Re-Randomize), the packed 32-bit variant the
// binary rewriter uses, Algorithm 2 (per-local-variable canary chains),
// Algorithm 3 (the AES one-way-function canary), and the Figure 6
// global-buffer variant. The closing section boots a protected server
// through the facade's compile→load→boot→serve pipeline.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/pssp"
)

func main() {
	r := rng.New(42)

	// The TLS canary C: fixed for the process lifetime, never exposed.
	c := r.Uint64()
	fmt.Printf("TLS canary C                %016x (stays fixed)\n\n", c)

	// Algorithm 1: every fork re-randomizes the stack canary pair.
	fmt.Println("P-SSP: three forks, three independent stack canary pairs:")
	for i := 0; i < 3; i++ {
		c0, c1 := core.ReRandomize(c, r)
		fmt.Printf("  fork %d: C0=%016x C1=%016x  C0^C1==C: %v\n", i, c0, c1, core.Check(c0, c1, c))
	}

	// A leaked pair from one fork is useless in the next.
	c0, c1 := core.ReRandomize(c, r)
	d0, _ := core.ReRandomize(c, r)
	fmt.Printf("\nreplaying fork A's pair against fork B's C0: %v (attack fails)\n",
		core.Check(d0, c1, c) && d0 == c0)

	// The rewriter's packed 32-bit variant preserves SSP's stack layout.
	packed := core.SplitPacked(c, r)
	fmt.Printf("\npacked 32-bit pair          %016x  verifies: %v (entropy %d bits)\n",
		packed, core.CheckPacked(packed, c), core.PackedEntropyBits)

	// Algorithm 2: one canary per critical local variable; all XOR to C.
	chain := core.LVCanaries(c, 3, r)
	fmt.Printf("\nP-SSP-LV chain for 3 critical variables: %d canaries, XOR==C: %v\n",
		len(chain), core.LVCheck(chain, c))
	chain[1] ^= 0xff // a buffer overflow crosses one guard
	fmt.Printf("after corrupting one guard: detected: %v\n", !core.LVCheck(chain, c))

	// Algorithm 3: the OWF canary binds return address + nonce under an AES
	// key that never leaves the reserved registers.
	key := core.NewOWFKey(r)
	lo, hi := core.OWFCanary(key, 0x400123, 77)
	fmt.Printf("\nP-SSP-OWF canary for ret=0x400123 nonce=77: %016x%016x\n", hi, lo)
	fmt.Printf("  valid in its own frame:        %v\n", core.OWFCheck(key, 0x400123, 77, lo, hi))
	fmt.Printf("  replayed in another frame:     %v (exposure resilience)\n",
		core.OWFCheck(key, 0x400999, 77, lo, hi))

	// Figure 6: keep the one-word stack canary; C1 halves live in a global
	// buffer that fork clones.
	gb := &core.GlobalBuffer{}
	slot := gb.Push(c, r)
	child := gb.Clone() // fork
	fmt.Printf("\nglobal-buffer variant: inherited frame verifies in child: %v\n",
		child.Pop(slot, c))

	// The same design, end to end: the pssp facade compiles the nginx
	// analog under P-SSP, boots it in the simulated machine, and serves a
	// request from a freshly forked worker — every fork refreshing its
	// canary pair exactly as above.
	ctx := context.Background()
	m := pssp.NewMachine(pssp.WithSeed(42), pssp.WithScheme(pssp.SchemePSSP))
	srv, err := m.Pipeline().CompileApp("nginx").Serve(ctx)
	if err != nil {
		panic(err)
	}
	app, _ := pssp.App("nginx")
	resp, err := srv.Handle(ctx, app.Request)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nfacade pipeline: served %q in %d cycles (crashed=%v)\n",
		resp.Body, resp.Cycles, resp.Crashed())
}
