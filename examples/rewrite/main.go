// Rewrite: upgrading a legacy SSP binary to P-SSP without recompilation,
// driven entirely through the public pssp facade.
//
// The demo compiles the nginx analog with plain SSP (a "legacy binary"),
// runs the binary rewriter on it, and shows the paper's Section V-C
// properties: code size and function entry points unchanged, packed 32-bit
// canary pair in the TLS, overflow still detected, and no false positives —
// then prints the instrumented epilogue so the same-length replacement is
// visible.
//
// Run: go run ./examples/rewrite
package main

import (
	"bytes"
	"context"
	"fmt"
	"os"

	"repro/pssp"
)

func main() {
	ctx := context.Background()
	target, _ := pssp.App("nginx-vuln")
	m := pssp.NewMachine(pssp.WithSeed(11), pssp.WithScheme(pssp.SchemeSSP))
	legacy, err := m.CompileApp(target.Name)
	if err != nil {
		fail(err)
	}
	instr, _, err := pssp.Rewrite(legacy, nil)
	if err != nil {
		fail(err)
	}

	fmt.Printf("legacy .text: %d bytes, instrumented .text: %d bytes (unchanged: %v)\n",
		legacy.TextSize(), instr.TextSize(), legacy.TextSize() == instr.TextSize())
	fmt.Printf("total code: %d -> %d bytes (%+.2f%%, appended checker + refresh helper)\n",
		legacy.CodeSize(), instr.CodeSize(),
		100*(float64(instr.CodeSize())/float64(legacy.CodeSize())-1))

	// Show the rewritten handler epilogue next to the original. 40 bytes of
	// tail is enough to cover the epilogue check.
	const tail = 40
	before, err := legacy.DisassembleFunc("handle", tail)
	if err != nil {
		fail(err)
	}
	after, err := instr.DisassembleFunc("handle", tail)
	if err != nil {
		fail(err)
	}
	fmt.Println("\nhandle() before instrumentation (tail):")
	fmt.Print(before)
	fmt.Println("handle() after instrumentation (same length, check moved into a call):")
	fmt.Print(after)

	// Behaviour: benign requests fine, overflow detected.
	srv, err := m.Serve(ctx, instr)
	if err != nil {
		fail(err)
	}
	out, err := srv.Handle(ctx, target.Request)
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nbenign request: crashed=%v response=%q\n", out.Crashed(), out.Body)

	payload := bytes.Repeat([]byte{0xfe}, pssp.VulnServerBufSize+8)
	out, err = srv.Handle(ctx, payload)
	if err != nil {
		fail(err)
	}
	fmt.Printf("overflow request: crashed=%v (%v)\n", out.Crashed(), out.Err)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rewrite:", err)
	os.Exit(1)
}
