// Rewrite: upgrading a legacy SSP binary to P-SSP without recompilation.
//
// The demo compiles the nginx analog with plain SSP (a "legacy binary"),
// runs the binary rewriter on it, and shows the paper's Section V-C
// properties: code size and function entry points unchanged, packed 32-bit
// canary pair in the TLS, overflow still detected, and no false positives —
// then prints the instrumented epilogue so the same-length replacement is
// visible.
//
// Run: go run ./examples/rewrite
package main

import (
	"bytes"
	"fmt"
	"os"

	"repro/internal/abi"
	"repro/internal/apps"
	"repro/internal/asm"
	"repro/internal/binfmt"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/rewrite"
)

func main() {
	target := apps.VulnServers()[0]
	legacy, err := cc.Compile(target.Prog, cc.Options{Scheme: core.SchemeSSP, Linkage: abi.LinkStatic})
	if err != nil {
		fail(err)
	}
	instr, _, err := rewrite.Rewrite(legacy, nil)
	if err != nil {
		fail(err)
	}

	fmt.Printf("legacy .text: %d bytes, instrumented .text: %d bytes (unchanged: %v)\n",
		len(legacy.Text().Data), len(instr.Text().Data),
		len(legacy.Text().Data) == len(instr.Text().Data))
	fmt.Printf("total code: %d -> %d bytes (%+.2f%%, appended checker + refresh helper)\n",
		legacy.CodeSize(), instr.CodeSize(),
		100*(float64(instr.CodeSize())/float64(legacy.CodeSize())-1))

	// Show the rewritten handler epilogue next to the original.
	sym, ok := legacy.Symbol("handle")
	if !ok {
		fail(fmt.Errorf("no handle symbol"))
	}
	fmt.Println("\nhandle() before instrumentation (tail):")
	printTail(legacy.Text(), sym)
	fmt.Println("handle() after instrumentation (same length, check moved into a call):")
	printTail(instr.Text(), sym)

	// Behaviour: benign requests fine, overflow detected.
	k := kernel.New(11)
	srv, err := kernel.NewForkServer(k, instr, kernel.SpawnOpts{})
	if err != nil {
		fail(err)
	}
	out, err := srv.Handle(target.Request)
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nbenign request: crashed=%v response=%q\n", out.Crashed, out.Response)

	payload := bytes.Repeat([]byte{0xfe}, apps.VulnServerBufSize+8)
	out, err = srv.Handle(payload)
	if err != nil {
		fail(err)
	}
	fmt.Printf("overflow request: crashed=%v (%s)\n", out.Crashed, out.CrashReason)
}

// printTail disassembles the last few instructions of the function — enough
// to show the epilogue check.
func printTail(sec *binfmt.Section, sym binfmt.Symbol) {
	start := int(sym.Addr - sec.Addr)
	end := start + int(sym.Size)
	const tail = 40
	from := end - tail
	if from < start {
		from = start
	}
	// Align to an instruction boundary by decoding forward from the start.
	off := start
	for off < from {
		_, n, err := isa.Decode(sec.Data, off)
		if err != nil {
			break
		}
		off += n
	}
	fmt.Print(asm.Disassemble(sec.Data[off:end]))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rewrite:", err)
	os.Exit(1)
}
