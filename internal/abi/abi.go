// Package abi pins the conventions shared between the simulated kernel
// (internal/kernel), the toy compiler (internal/cc), and the binary rewriter
// (internal/rewrite): system-call numbers, the reserved runtime area inside
// the data section, and the load addresses of the app image and the shared
// C library image.
//
// Keeping these in one leaf package mirrors how a real platform ABI document
// binds the kernel, libc and compiler together, and avoids import cycles.
package abi

import "repro/internal/mem"

// System-call numbers (in RAX at the SYSCALL instruction). Read/write/exit
// reuse the Linux x86-64 numbers; accept and abort are simplified analogs.
const (
	// SysRead reads up to RDX bytes from fd RDI into the buffer at RSI and
	// returns the byte count. fd 0 is the request payload delivered by the
	// fork server — reading more than a stack buffer's size is exactly the
	// overflow vector of the paper's threat model.
	SysRead = 0
	// SysWrite writes RDX bytes from RSI to fd RDI (fd 1 = response stream).
	SysWrite = 1
	// SysGetPID returns the process id.
	SysGetPID = 39
	// SysFork clones the calling process (Linux x86-64 number). The child
	// resumes after the syscall with RAX=0; the parent receives the child's
	// pid. The kernel applies the preload scheme's fork hooks to the child,
	// modelling the wrapped fork() of the paper's shared library.
	SysFork = 57
	// SysExit terminates the process with status RDI.
	SysExit = 60
	// SysAbort terminates the process abnormally — the tail of
	// __stack_chk_fail (the paper's __GI__fortify_fail). The fork server
	// reports it as a crash, which is the attacker's oracle signal.
	SysAbort = 101
	// SysAccept blocks until a request arrives and returns its length, or 0
	// when the server should shut down. The fork server forks the child at
	// this blocking point, so frames live at accept time are inherited.
	SysAccept = 200
)

// Reserved offsets inside the data section (relative to mem.DataBase). The
// compiler's runtime support and the kernel's fork hooks both address them.
const (
	// DynaGuardCountOff holds the number of live entries in the canary
	// address buffer (CAB); entries follow at DynaGuardBufOff.
	DynaGuardCountOff = 0x000
	// DynaGuardBufOff is the first CAB entry; each entry is the absolute
	// address of one stack canary slot.
	DynaGuardBufOff = 0x008
	// DynaGuardMaxEntries bounds the CAB.
	DynaGuardMaxEntries = 254

	// DCRHeadOff holds the absolute address of the newest DCR canary slot,
	// the head of the in-stack linked list. Initialized to DCRListEnd.
	DCRHeadOff = 0x800

	// GlobalsOff is where compiler-visible program globals start (see below
	// for the TLS-relative P-SSP-GB offsets).

	GlobalsOff = 0x1000

	// DataSize is the size of the data section the compiler emits.
	DataSize = 0x3000
)

// P-SSP-GB buffer offsets, relative to the FS base (inside each thread's
// TLS block). The paper's Figure 6 allocates the buffer "for each thread",
// so it must be thread-local: fork clones it with the TLS, and concurrent
// threads keep independent LIFO stacks of C1 halves (a shared buffer breaks
// under interleaving — caught by TestInterleavedThreadsNoFalsePositives).
const (
	// GBCountOff holds the number of live entries.
	GBCountOff = 0x400
	// GBBufOff is the first entry; each entry is one C1 word.
	GBBufOff = 0x408
	// GBMaxEntries bounds the buffer within the TLS block.
	GBMaxEntries = 200
)

// DCRListEnd is the sentinel value of the DCR list head when no canaries are
// live: the initial stack top, above every possible canary slot.
const DCRListEnd = mem.StackTop

// DCR canary encoding: the low DCRDeltaBits bits of the canary word embed
// (prev_slot - this_slot) >> 3; the remaining high bits must match the TLS
// canary's high bits. This is the entropy-for-traceability trade the DCR
// baseline makes.
const (
	DCRDeltaBits = 16
	DCRDeltaMask = 1<<DCRDeltaBits - 1
	DCRHighMask  = ^uint64(DCRDeltaMask)
)

// LibcBase is where the shared C-library image is mapped for dynamically
// linked binaries. Statically linked binaries embed the same functions in
// their own text section instead.
const LibcBase uint64 = 0x0050_0000

// Image/linkage metadata keys used in binfmt.Binary.Meta.
const (
	MetaScheme  = "scheme"  // which protection pass built the image
	MetaLinkage = "linkage" // "dynamic" or "static"
	MetaKind    = "kind"    // "app" or "libc"
)

// Linkage values.
const (
	LinkDynamic = "dynamic"
	LinkStatic  = "static"
)
