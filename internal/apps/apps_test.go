package apps

import (
	"bytes"
	"testing"

	"repro/internal/abi"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/kernel"
)

func TestAllProgramsValidate(t *testing.T) {
	for _, app := range All() {
		if err := app.Prog.Validate(); err != nil {
			t.Errorf("%s: %v", app.Name, err)
		}
	}
}

func TestSpecSuiteSize(t *testing.T) {
	if got := len(Spec()); got != 28 {
		t.Fatalf("SPEC suite has %d programs, want 28 (12 int + 16 fp)", got)
	}
}

func TestSpecByName(t *testing.T) {
	if _, err := SpecByName("400.perlbench"); err != nil {
		t.Fatal(err)
	}
	if _, err := SpecByName("999.nope"); err == nil {
		t.Fatal("unknown SPEC name accepted")
	}
}

func TestSpecProgramsRunToCompletion(t *testing.T) {
	for _, app := range Spec()[:6] { // subset for speed; all compile below
		t.Run(app.Name, func(t *testing.T) {
			bin, err := cc.Compile(app.Prog, cc.Options{Scheme: core.SchemeSSP, Linkage: abi.LinkStatic})
			if err != nil {
				t.Fatal(err)
			}
			k := kernel.New(1)
			k.MaxInsts = 64 << 20
			p, err := k.Spawn(bin, kernel.SpawnOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if st := k.Run(p); st != kernel.StateExited {
				t.Fatalf("state %s (%s)", st, p.CrashReason)
			}
			if p.CPU.Insts < 10_000 {
				t.Fatalf("only %d instructions executed — workload too small to measure", p.CPU.Insts)
			}
		})
	}
}

func TestAllProgramsCompileUnderEveryScheme(t *testing.T) {
	schemes := []core.Scheme{core.SchemeNone, core.SchemeSSP, core.SchemePSSP, core.SchemePSSPOWF}
	for _, app := range All() {
		for _, s := range schemes {
			if _, err := cc.Compile(app.Prog, cc.Options{Scheme: s, Linkage: abi.LinkStatic}); err != nil {
				t.Errorf("%s under %v: %v", app.Name, s, err)
			}
		}
	}
}

func TestSpecDeterministicCycles(t *testing.T) {
	app, err := SpecByName("403.gcc")
	if err != nil {
		t.Fatal(err)
	}
	run := func() uint64 {
		bin, err := cc.Compile(app.Prog, cc.Options{Scheme: core.SchemeSSP, Linkage: abi.LinkStatic})
		if err != nil {
			t.Fatal(err)
		}
		k := kernel.New(7)
		k.MaxInsts = 64 << 20
		p, err := k.Spawn(bin, kernel.SpawnOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if st := k.Run(p); st != kernel.StateExited {
			t.Fatalf("state %s", st)
		}
		return p.CPU.Cycles
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("cycles not deterministic: %d vs %d", a, b)
	}
}

func TestWebServersServeRequests(t *testing.T) {
	for _, app := range WebServers() {
		t.Run(app.Name, func(t *testing.T) {
			bin, err := cc.Compile(app.Prog, cc.Options{Scheme: core.SchemePSSP, Linkage: abi.LinkStatic})
			if err != nil {
				t.Fatal(err)
			}
			k := kernel.New(2)
			srv, err := kernel.NewForkServer(k, bin, kernel.SpawnOpts{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				out, err := srv.Handle(app.Request)
				if err != nil {
					t.Fatal(err)
				}
				if out.Crashed {
					t.Fatalf("request crashed: %s", out.CrashReason)
				}
				if len(out.Response) == 0 {
					t.Fatal("no response")
				}
			}
		})
	}
}

func TestWebServerNotVulnerableToOverflow(t *testing.T) {
	// Table III servers use bounded reads; oversized requests are truncated,
	// not overflowed.
	app := WebServers()[1] // nginx
	bin, err := cc.Compile(app.Prog, cc.Options{Scheme: core.SchemeSSP, Linkage: abi.LinkStatic})
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(3)
	srv, err := kernel.NewForkServer(k, bin, kernel.SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := srv.Handle(bytes.Repeat([]byte{0xee}, 500))
	if err != nil {
		t.Fatal(err)
	}
	if out.Crashed {
		t.Fatalf("bounded server crashed on big request: %s", out.CrashReason)
	}
}

func TestVulnServersAreVulnerable(t *testing.T) {
	for _, app := range VulnServers() {
		t.Run(app.Name, func(t *testing.T) {
			bin, err := cc.Compile(app.Prog, cc.Options{Scheme: core.SchemeSSP, Linkage: abi.LinkStatic})
			if err != nil {
				t.Fatal(err)
			}
			k := kernel.New(4)
			srv, err := kernel.NewForkServer(k, bin, kernel.SpawnOpts{})
			if err != nil {
				t.Fatal(err)
			}
			// Benign request fine.
			out, err := srv.Handle(app.Request)
			if err != nil {
				t.Fatal(err)
			}
			if out.Crashed {
				t.Fatalf("benign request crashed: %s", out.CrashReason)
			}
			// Overflow detected by SSP.
			crashed := false
			for _, fill := range []byte{0x00, 0xff} {
				out, err := srv.Handle(bytes.Repeat([]byte{fill}, VulnServerBufSize+8))
				if err != nil {
					t.Fatal(err)
				}
				crashed = crashed || out.Crashed
			}
			if !crashed {
				t.Fatal("overflow not detected — server not actually vulnerable?")
			}
		})
	}
}

func TestDatabasesAnswerQueries(t *testing.T) {
	for _, app := range Databases() {
		t.Run(app.Name, func(t *testing.T) {
			bin, err := cc.Compile(app.Prog, cc.Options{Scheme: core.SchemeSSP, Linkage: abi.LinkStatic})
			if err != nil {
				t.Fatal(err)
			}
			k := kernel.New(5)
			k.MaxInsts = 64 << 20
			srv, err := kernel.NewForkServer(k, bin, kernel.SpawnOpts{})
			if err != nil {
				t.Fatal(err)
			}
			out, err := srv.Handle(app.Request)
			if err != nil {
				t.Fatal(err)
			}
			if out.Crashed {
				t.Fatalf("query crashed: %s", out.CrashReason)
			}
			if out.Cycles == 0 {
				t.Fatal("no cycle accounting")
			}
		})
	}
}

func TestSQLiteHeavierThanMySQLPerQuery(t *testing.T) {
	// Table IV shape: the sqlite analog spends far more per query (167ms vs
	// 3.3ms in the paper).
	var cycles [2]uint64
	for i, app := range Databases() {
		bin, err := cc.Compile(app.Prog, cc.Options{Scheme: core.SchemeSSP, Linkage: abi.LinkStatic})
		if err != nil {
			t.Fatal(err)
		}
		k := kernel.New(6)
		k.MaxInsts = 64 << 20
		srv, err := kernel.NewForkServer(k, bin, kernel.SpawnOpts{})
		if err != nil {
			t.Fatal(err)
		}
		out, err := srv.Handle(app.Request)
		if err != nil {
			t.Fatal(err)
		}
		cycles[i] = out.Cycles
	}
	if cycles[1] < 10*cycles[0] {
		t.Fatalf("sqlite/mysql cycle ratio %d/%d too small for Table IV shape", cycles[1], cycles[0])
	}
}
