package apps

import (
	"slices"
	"sync"

	"repro/internal/cc"
)

// serverProgram builds a fork-per-request server in the canonical shape of
// the paper's threat model:
//
//	main -> serve: accept loop, one call to handle per request
//	handle: copies the request into a stack buffer, does work, responds
//
// handle's read uses the attacker-controlled request length when vulnerable
// is true (the classic read(fd, buf, n) overflow) and the buffer size when
// false. parseOps/respondOps size the per-request work, modelling heavier
// (Apache-like) or lighter (Nginx-like) request processing.
func serverProgram(name string, bufSize, parseOps, respondOps int, vulnerable bool) *cc.Program {
	read := cc.ReadInput{Buf: "buf", MaxLen: bufSize}
	if vulnerable {
		read = cc.ReadInput{Buf: "buf", LenVar: "len"}
	}
	return &cc.Program{
		Name:    name,
		Globals: []cc.Global{{Name: "reqlen", Size: 8}},
		Funcs: []*cc.Func{
			{Name: "main", Body: []cc.Stmt{cc.Call{Callee: "serve"}}},
			{
				Name: "serve",
				Locals: []cc.Local{
					{Name: "conn", Size: 16, IsBuffer: true},
					{Name: "n", Size: 8},
				},
				Body: []cc.Stmt{
					cc.Accept{Dst: "n"},
					cc.While{Var: "n", Body: []cc.Stmt{
						cc.StoreGlobal{Global: "reqlen", Src: "n"},
						cc.Call{Callee: "handle"},
						cc.Accept{Dst: "n"},
					}},
				},
			},
			{
				Name: "handle",
				Locals: []cc.Local{
					{Name: "buf", Size: bufSize, IsBuffer: true},
					{Name: "len", Size: 8},
				},
				Body: []cc.Stmt{
					cc.LoadGlobal{Dst: "len", Global: "reqlen"},
					read,
					cc.Compute{Ops: parseOps},
					cc.Call{Callee: "respond"},
				},
			},
			{
				Name: "respond",
				Locals: []cc.Local{
					{Name: "out", Size: 16, IsBuffer: true},
				},
				Body: []cc.Stmt{
					cc.Compute{Ops: respondOps},
					cc.WriteOutput{Src: "out", Len: 8},
				},
			},
			{
				// backdoor is never called by the program — it exists so the
				// attack experiments can demonstrate a full control-flow
				// hijack: after recovering the canary, the attacker points
				// the smashed return address here and observes the marker.
				Name:   "backdoor",
				Locals: []cc.Local{{Name: "mark", Size: 8}},
				Body: []cc.Stmt{
					cc.SetConst{Dst: "mark", Value: int64(BackdoorMarker)},
					cc.WriteOutput{Src: "mark", Len: 1},
				},
			},
		},
	}
}

// BackdoorMarker is the byte the backdoor function emits when reached.
const BackdoorMarker = 0x5A

// dbProgram builds a database-server analog: each "query" walks a global
// btree-like region and accumulates, then materializes a result row in a
// stack buffer. queryOps models per-query CPU work.
func dbProgram(name string, queryOps, rowBuf int) *cc.Program {
	return &cc.Program{
		Name: name,
		Globals: []cc.Global{
			{Name: "reqlen", Size: 8},
			{Name: "rows", Size: 256},
		},
		Funcs: []*cc.Func{
			{Name: "main", Body: []cc.Stmt{cc.Call{Callee: "serve"}}},
			{
				Name: "serve",
				Locals: []cc.Local{
					{Name: "conn", Size: 16, IsBuffer: true},
					{Name: "n", Size: 8},
				},
				Body: []cc.Stmt{
					cc.Accept{Dst: "n"},
					cc.While{Var: "n", Body: []cc.Stmt{
						cc.StoreGlobal{Global: "reqlen", Src: "n"},
						cc.Call{Callee: "query"},
						cc.Accept{Dst: "n"},
					}},
				},
			},
			{
				Name: "query",
				Locals: []cc.Local{
					{Name: "row", Size: rowBuf, IsBuffer: true},
					{Name: "len", Size: 8},
					{Name: "acc", Size: 8},
				},
				Body: []cc.Stmt{
					cc.LoadGlobal{Dst: "len", Global: "reqlen"},
					cc.ReadInput{Buf: "row", MaxLen: rowBuf},
					// "Plan" + "execute": btree-walk-ish accumulate loop.
					cc.Loop{Count: 6, Body: []cc.Stmt{
						cc.LoadGlobal{Dst: "acc", Global: "rows"},
						cc.BinOp{Dst: "acc", Src: "len", Op: cc.OpAdd},
						cc.StoreGlobal{Global: "rows", Src: "acc"},
						cc.Compute{Ops: queryOps / 6},
					}},
					cc.WriteOutput{Src: "row", Len: 8},
				},
			},
		},
	}
}

// The registry builders below construct each IR program exactly once
// (sync.OnceValue): resolving an app by name used to rebuild the entire
// suite, which dominated warm boots once the artifact store made the compile
// itself nearly free. The public functions return a fresh slice each call,
// but the *cc.Program values are shared, immutable singletons — compile
// them, never mutate them. (Nothing in the tree mutates a registry program;
// the canonical derivation encoding would silently shift if anything did.)

// WebServers returns the Apache2 and Nginx analogs of Table III (benign
// request handling; not vulnerable).
func WebServers() []App { return slices.Clone(webServers()) }

var webServers = sync.OnceValue(func() []App {
	return []App{
		{
			Name:    "apache2",
			Kind:    KindServer,
			Prog:    serverProgram("apache2", 64, 8000, 2600, false),
			Request: []byte("GET / HTTP/1.1\r\nHost: a\r\n\r\n"),
		},
		{
			Name:    "nginx",
			Kind:    KindServer,
			Prog:    serverProgram("nginx", 64, 1400, 500, false),
			Request: []byte("GET / HTTP/1.1\r\nHost: n\r\n\r\n"),
		},
	}
})

// Databases returns the MySQL and SQLite analogs of Table IV.
func Databases() []App { return slices.Clone(databases()) }

var databases = sync.OnceValue(func() []App {
	return []App{
		{
			Name:    "mysql",
			Kind:    KindServer,
			Prog:    dbProgram("mysql", 1200, 64),
			Request: []byte("SELECT c FROM t WHERE k=1"),
		},
		{
			Name:    "sqlite",
			Kind:    KindServer,
			Prog:    dbProgram("sqlite", 60000, 64),
			Request: []byte("SELECT c FROM t WHERE k=1"),
		},
	}
})

// VulnServerBufSize is the stack buffer size of the vulnerable handler; the
// canary sits VulnServerBufSize bytes past the buffer start.
const VulnServerBufSize = 16

// VulnServers returns the attack targets of the effectiveness experiment
// (§VI-C): nginx and "Ali", both with the read(fd, buf, attacker_len)
// vulnerability in their request handlers.
func VulnServers() []App { return slices.Clone(vulnServers()) }

var vulnServers = sync.OnceValue(func() []App {
	return []App{
		{
			Name:    "nginx-vuln",
			Kind:    KindServer,
			Prog:    serverProgram("nginx-vuln", VulnServerBufSize, 60, 30, true),
			Request: []byte("GET /"),
		},
		{
			Name:    "ali-vuln",
			Kind:    KindServer,
			Prog:    serverProgram("ali-vuln", VulnServerBufSize, 120, 40, true),
			Request: []byte("PING"),
		},
	}
})

// All returns every application in the suite.
func All() []App {
	var out []App
	out = append(out, Spec()...)
	out = append(out, WebServers()...)
	out = append(out, Databases()...)
	out = append(out, VulnServers()...)
	return out
}
