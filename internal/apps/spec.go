// Package apps provides the synthetic application suite of the evaluation:
// 28 SPEC CPU2006-analog batch workloads, web-server and database analogs
// (Apache2/Nginx/MySQL/SQLite), and the canonical vulnerable fork server the
// attack experiments target.
//
// Each analog is written in the compiler IR and parameterized by a
// call-frequency profile: the runtime overhead of canary schemes is a pure
// function of how often protected prologues/epilogues execute relative to
// useful work, which is exactly the property the SPEC suite exercises in the
// paper's Figure 5. Call-heavy programs (perlbench-like) show the largest
// overhead, loop-heavy ones (libquantum-like) the smallest.
package apps

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/cc"
)

// Kind classifies an application.
type Kind uint8

// Application kinds.
const (
	// KindBatch runs to completion (SPEC-style).
	KindBatch Kind = iota + 1
	// KindServer blocks in accept and serves requests (fork-per-request).
	KindServer
)

// App is one benchmarkable application.
type App struct {
	Name string
	Kind Kind
	Prog *cc.Program
	// Request is a benign request payload for servers.
	Request []byte
}

// profile parameterizes a SPEC analog. The overhead a canary scheme shows on
// the program is ~deltaCycles / (bufEvery*(hotOps+callCost) + bufOps), so
// hotOps and bufEvery control where the program lands on Figure 5.
type profile struct {
	name string
	// hotOps is ALU work per unprotected call (no stack buffer, so the
	// protection pass skips it — the -fstack-protector behaviour).
	hotOps int
	// bufOps is ALU work per protected call (has a stack buffer).
	bufOps int
	// bufEvery is how many hot calls happen per protected call.
	bufEvery int
}

// specProfiles lists all 28 SPEC CPU2006 programs (12 SPECint + 16 SPECfp)
// with call-density profiles chosen from their qualitative reputations:
// perlbench/gcc/xalancbmk are call-dense, libquantum/lbm/bwaves are tight
// loops over arrays.
var specProfiles = []profile{
	// SPECint
	{"400.perlbench", 80, 240, 2},
	{"401.bzip2", 700, 500, 4},
	{"403.gcc", 150, 300, 2},
	{"429.mcf", 1200, 400, 6},
	{"445.gobmk", 300, 350, 3},
	{"456.hmmer", 1500, 600, 6},
	{"458.sjeng", 400, 300, 3},
	{"462.libquantum", 3000, 800, 10},
	{"464.h264ref", 2000, 700, 8},
	{"471.omnetpp", 200, 260, 2},
	{"473.astar", 800, 400, 4},
	{"483.xalancbmk", 120, 280, 2},
	// SPECfp
	{"410.bwaves", 2800, 900, 10},
	{"416.gamess", 900, 500, 5},
	{"433.milc", 1600, 700, 7},
	{"434.zeusmp", 2200, 800, 9},
	{"435.gromacs", 1100, 600, 5},
	{"436.cactusADM", 2400, 900, 9},
	{"437.leslie3d", 2000, 800, 8},
	{"444.namd", 1800, 700, 8},
	{"447.dealII", 500, 400, 3},
	{"450.soplex", 700, 450, 4},
	{"453.povray", 350, 320, 3},
	{"454.calculix", 1300, 650, 6},
	{"459.GemsFDTD", 2100, 850, 9},
	{"465.tonto", 1000, 550, 5},
	{"470.lbm", 3200, 1000, 12},
	{"482.sphinx3", 600, 420, 4},
}

// specTargetInsts sizes each program's main loop so a full run executes
// roughly this many instructions — enough for stable ratios, small enough
// that the whole Figure 5 sweep stays fast.
const specTargetInsts = 120_000

// buildSpec constructs one SPEC analog:
//
//	main: outerIters × { call work_buf ; bufEvery × { call work_hot } }
//
// work_hot has no stack buffer (unprotected under every pass); work_buf has
// one (protected under every pass).
func buildSpec(p profile) *cc.Program {
	perOuter := p.bufOps + p.bufEvery*(p.hotOps+8) + 30
	outer := specTargetInsts / perOuter
	if outer < 8 {
		outer = 8
	}
	return &cc.Program{
		Name: p.name,
		Funcs: []*cc.Func{
			{
				Name: "main",
				Body: []cc.Stmt{
					cc.Loop{Count: outer, Body: []cc.Stmt{
						cc.Call{Callee: "work_buf"},
						cc.Loop{Count: p.bufEvery, Body: []cc.Stmt{
							cc.Call{Callee: "work_hot"},
						}},
					}},
				},
			},
			{
				Name: "work_hot",
				Locals: []cc.Local{
					{Name: "x", Size: 8},
				},
				Body: []cc.Stmt{cc.Compute{Ops: p.hotOps}},
			},
			{
				Name: "work_buf",
				Locals: []cc.Local{
					{Name: "buf", Size: 32, IsBuffer: true},
					{Name: "x", Size: 8},
				},
				Body: []cc.Stmt{cc.Compute{Ops: p.bufOps}},
			},
		},
	}
}

// Spec returns the 28 SPEC CPU2006 analogs. As with the server registries,
// the slice is fresh per call but the programs are shared immutable
// singletons (see servers.go).
func Spec() []App { return slices.Clone(spec()) }

var spec = sync.OnceValue(func() []App {
	out := make([]App, 0, len(specProfiles))
	for _, p := range specProfiles {
		out = append(out, App{Name: p.name, Kind: KindBatch, Prog: buildSpec(p)})
	}
	return out
})

// SpecByName returns one SPEC analog.
func SpecByName(name string) (App, error) {
	for _, a := range spec() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("apps: unknown SPEC program %q", name)
}
