// Package asm provides a two-pass textual assembler and a disassembler for
// the ISA in internal/isa.
//
// The surface syntax matches isa.Inst.String(): AT&T-flavoured operands with
// %-prefixed registers, $-prefixed immediates, disp(%base) memory operands
// and %fs:disp TLS operands. Labels are identifiers followed by ':'; branch
// and call targets may be labels or raw signed displacements. '#' starts a
// comment.
//
// Example:
//
//	prologue:
//	    push %rbp
//	    mov %rsp, %rbp
//	    subi $16, %rsp
//	    ldfs %fs:40, %rax
//	    store -8(%rbp), %rax
//	    call body
//	    leave
//	    ret
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Program is the result of assembling a source unit.
type Program struct {
	Insts []isa.Inst
	// Labels maps label name to byte offset within the encoded program.
	Labels map[string]int
	// Code is the encoded machine code.
	Code []byte
}

// SyntaxError reports an assembly failure with its line number.
type SyntaxError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *SyntaxError) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

var regByName = func() map[string]isa.Reg {
	m := make(map[string]isa.Reg, isa.NumGPR)
	for r := isa.Reg(0); r < isa.NumGPR; r++ {
		m[r.String()] = r
	}
	return m
}()

var opByName = func() map[string]isa.Op {
	m := make(map[string]isa.Op, isa.NumOps)
	for op := isa.Op(0); op < isa.NumOps; op++ {
		m[op.Name()] = op
	}
	return m
}()

// line is one parsed source line pending label resolution.
type line struct {
	num    int
	inst   isa.Inst
	target string // unresolved branch target label, if any
	offset int    // byte offset of this instruction
}

// Assemble translates source text into machine code.
func Assemble(src string) (*Program, error) {
	labels := make(map[string]int)
	var lines []line
	offset := 0

	for num, raw := range strings.Split(src, "\n") {
		text := raw
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		// Labels, possibly followed by an instruction on the same line.
		for {
			i := strings.IndexByte(text, ':')
			if i < 0 {
				break
			}
			name := strings.TrimSpace(text[:i])
			if !isIdent(name) {
				// Not a label (e.g. the ':' inside a %fs:disp operand);
				// leave the text for the instruction parser.
				break
			}
			if _, dup := labels[name]; dup {
				return nil, &SyntaxError{num + 1, fmt.Sprintf("duplicate label %q", name)}
			}
			labels[name] = offset
			text = strings.TrimSpace(text[i+1:])
		}
		if text == "" {
			continue
		}
		ln, err := parseLine(num+1, text)
		if err != nil {
			return nil, err
		}
		ln.offset = offset
		offset += ln.inst.Len()
		lines = append(lines, ln)
	}

	// Second pass: resolve label targets to rel32 displacements.
	prog := &Program{Labels: labels}
	for _, ln := range lines {
		in := ln.inst
		if ln.target != "" {
			dst, ok := labels[ln.target]
			if !ok {
				return nil, &SyntaxError{ln.num, fmt.Sprintf("undefined label %q", ln.target)}
			}
			in.Disp = int32(dst - (ln.offset + in.Len()))
		}
		prog.Insts = append(prog.Insts, in)
	}
	prog.Code = isa.EncodeAll(prog.Insts)
	return prog, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_' || c == '.':
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseLine parses one instruction.
func parseLine(num int, text string) (line, error) {
	mnemonic, rest, _ := strings.Cut(text, " ")
	op, ok := opByName[mnemonic]
	if !ok {
		return line{}, &SyntaxError{num, fmt.Sprintf("unknown mnemonic %q", mnemonic)}
	}
	var args []string
	rest = strings.TrimSpace(rest)
	if rest != "" {
		for _, a := range strings.Split(rest, ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	in := isa.Inst{Op: op}
	fail := func(format string, v ...any) (line, error) {
		return line{}, &SyntaxError{num, fmt.Sprintf("%s: ", mnemonic) + fmt.Sprintf(format, v...)}
	}

	need := func(n int) bool { return len(args) == n }
	switch op.Shape() {
	case isa.ShapeNone:
		if !need(0) {
			return fail("takes no operands")
		}
	case isa.ShapeR:
		if !need(1) {
			return fail("want 1 operand, have %d", len(args))
		}
		r, err := parseReg(args[0])
		if err != nil {
			return fail("%v", err)
		}
		in.R1 = r
	case isa.ShapeRR:
		if !need(2) {
			return fail("want 2 operands, have %d", len(args))
		}
		src, err := parseReg(args[0])
		if err != nil {
			return fail("%v", err)
		}
		dst, err := parseReg(args[1])
		if err != nil {
			return fail("%v", err)
		}
		in.R1, in.R2 = dst, src
	case isa.ShapeRI64, isa.ShapeRI8:
		if !need(2) {
			return fail("want 2 operands, have %d", len(args))
		}
		imm, err := parseImm(args[0])
		if err != nil {
			return fail("%v", err)
		}
		r, err := parseReg(args[1])
		if err != nil {
			return fail("%v", err)
		}
		in.Imm, in.R1 = imm, r
	case isa.ShapeRM:
		if !need(2) {
			return fail("want 2 operands, have %d", len(args))
		}
		base, disp, err := parseMem(args[0])
		if err != nil {
			return fail("%v", err)
		}
		r, err := parseReg(args[1])
		if err != nil {
			return fail("%v", err)
		}
		in.Base, in.Disp, in.R1 = base, disp, r
	case isa.ShapeRFS:
		if !need(2) {
			return fail("want 2 operands, have %d", len(args))
		}
		disp, err := parseFS(args[0])
		if err != nil {
			return fail("%v", err)
		}
		r, err := parseReg(args[1])
		if err != nil {
			return fail("%v", err)
		}
		in.Disp, in.R1 = disp, r
	case isa.ShapeRel32:
		if !need(1) {
			return fail("want 1 operand, have %d", len(args))
		}
		if v, err := strconv.ParseInt(args[0], 0, 32); err == nil {
			in.Disp = int32(v)
		} else if isIdent(args[0]) {
			return line{num: num, inst: in, target: args[0]}, nil
		} else {
			return fail("bad branch target %q", args[0])
		}
	case isa.ShapeXR:
		if !need(2) {
			return fail("want 2 operands, have %d", len(args))
		}
		r, err := parseReg(args[0])
		if err != nil {
			return fail("%v", err)
		}
		x, err := parseXmm(args[1])
		if err != nil {
			return fail("%v", err)
		}
		in.R1, in.X1 = r, x
	case isa.ShapeXM:
		if !need(2) {
			return fail("want 2 operands, have %d", len(args))
		}
		base, disp, err := parseMem(args[0])
		if err != nil {
			return fail("%v", err)
		}
		x, err := parseXmm(args[1])
		if err != nil {
			return fail("%v", err)
		}
		in.Base, in.Disp, in.X1 = base, disp, x
	}
	return line{num: num, inst: in}, nil
}

func parseReg(s string) (isa.Reg, error) {
	name, ok := strings.CutPrefix(s, "%")
	if !ok {
		return 0, fmt.Errorf("register %q missing %% prefix", s)
	}
	r, ok := regByName[name]
	if !ok {
		return 0, fmt.Errorf("unknown register %q", s)
	}
	return r, nil
}

func parseXmm(s string) (isa.Xmm, error) {
	name, ok := strings.CutPrefix(s, "%xmm")
	if !ok {
		return 0, fmt.Errorf("xmm register %q missing %%xmm prefix", s)
	}
	n, err := strconv.Atoi(name)
	if err != nil || n < 0 || n >= isa.NumXMM {
		return 0, fmt.Errorf("bad xmm register %q", s)
	}
	return isa.Xmm(n), nil
}

func parseImm(s string) (int64, error) {
	body, ok := strings.CutPrefix(s, "$")
	if !ok {
		return 0, fmt.Errorf("immediate %q missing $ prefix", s)
	}
	v, err := strconv.ParseInt(body, 0, 64)
	if err != nil {
		// Allow the full uint64 range for canary constants.
		u, uerr := strconv.ParseUint(body, 0, 64)
		if uerr != nil {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		return int64(u), nil
	}
	return v, nil
}

// parseMem parses "disp(%base)".
func parseMem(s string) (isa.Reg, int32, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	var disp int64
	if open > 0 {
		v, err := strconv.ParseInt(s[:open], 0, 32)
		if err != nil {
			return 0, 0, fmt.Errorf("bad displacement in %q", s)
		}
		disp = v
	}
	base, err := parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return base, int32(disp), nil
}

// parseFS parses "%fs:disp".
func parseFS(s string) (int32, error) {
	body, ok := strings.CutPrefix(s, "%fs:")
	if !ok {
		return 0, fmt.Errorf("fs operand %q missing %%fs: prefix", s)
	}
	v, err := strconv.ParseInt(body, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad fs displacement %q", s)
	}
	return int32(v), nil
}

// Disassemble renders machine code as one instruction per line, prefixed
// with its byte offset. Undecodable tails are rendered as .byte directives
// so the output is always complete.
func Disassemble(code []byte) string {
	var b strings.Builder
	for off := 0; off < len(code); {
		in, n, err := isa.Decode(code, off)
		if err != nil {
			fmt.Fprintf(&b, "%6d:\t.byte 0x%02x\n", off, code[off])
			off++
			continue
		}
		fmt.Fprintf(&b, "%6d:\t%s\n", off, in)
		off += n
	}
	return b.String()
}
