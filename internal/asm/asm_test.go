package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestAssembleSSPPrologue(t *testing.T) {
	// The paper's Code 1 in our syntax.
	p := mustAssemble(t, `
		push %rbp
		mov %rsp, %rbp
		subi $16, %rsp
		ldfs %fs:0x28, %rax
		store -8(%rbp), %rax
	`)
	want := []isa.Inst{
		{Op: isa.PUSH, R1: isa.RBP},
		{Op: isa.MOVRR, R1: isa.RBP, R2: isa.RSP},
		{Op: isa.SUBRI, R1: isa.RSP, Imm: 16},
		{Op: isa.LDFS, R1: isa.RAX, Disp: 0x28},
		{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: -8},
	}
	if len(p.Insts) != len(want) {
		t.Fatalf("got %d instructions, want %d", len(p.Insts), len(want))
	}
	for i := range want {
		if p.Insts[i] != want[i] {
			t.Errorf("inst %d: got %+v, want %+v", i, p.Insts[i], want[i])
		}
	}
}

func TestLabelsResolveForwardAndBackward(t *testing.T) {
	p := mustAssemble(t, `
	top:
		cmpi $0, %rax
		je done
		subi $1, %rax
		jmp top
	done:
		ret
	`)
	// Verify by executing the control flow statically: decode and follow.
	if len(p.Insts) != 5 {
		t.Fatalf("got %d instructions", len(p.Insts))
	}
	je := p.Insts[1]
	jmp := p.Insts[3]
	if je.Disp <= 0 {
		t.Errorf("forward branch displacement %d, want positive", je.Disp)
	}
	if jmp.Disp >= 0 {
		t.Errorf("backward branch displacement %d, want negative", jmp.Disp)
	}
	// je target: offset of 'done' label.
	off := 0
	for _, in := range p.Insts[:2] {
		off += in.Len()
	}
	if got := off + int(je.Disp); got != p.Labels["done"] {
		t.Errorf("je resolves to %d, label at %d", got, p.Labels["done"])
	}
}

func TestLabelOnSameLineAsInstruction(t *testing.T) {
	p := mustAssemble(t, "start: nop\n jmp start")
	if p.Labels["start"] != 0 {
		t.Fatalf("label offset %d, want 0", p.Labels["start"])
	}
}

func TestCommentsIgnored(t *testing.T) {
	p := mustAssemble(t, `
		# full-line comment
		nop # trailing comment
	`)
	if len(p.Insts) != 1 || p.Insts[0].Op != isa.NOP {
		t.Fatalf("got %v", p.Insts)
	}
}

func TestNumericBranchTarget(t *testing.T) {
	p := mustAssemble(t, "jmp -5")
	if p.Insts[0].Disp != -5 {
		t.Fatalf("disp = %d", p.Insts[0].Disp)
	}
}

func TestHexAndNegativeImmediates(t *testing.T) {
	p := mustAssemble(t, "movi $0xdeadbeef, %rax\nmovi $-7, %rbx")
	if p.Insts[0].Imm != 0xdeadbeef || p.Insts[1].Imm != -7 {
		t.Fatalf("imms: %d, %d", p.Insts[0].Imm, p.Insts[1].Imm)
	}
}

func TestUint64Immediate(t *testing.T) {
	p := mustAssemble(t, "movi $0xffffffffffffffff, %rax")
	if uint64(p.Insts[0].Imm) != 0xffffffffffffffff {
		t.Fatalf("imm = %x", uint64(p.Insts[0].Imm))
	}
}

func TestXmmOperands(t *testing.T) {
	p := mustAssemble(t, `
		movqx %rax, %xmm15
		movhx 8(%rbp), %xmm15
		punpckx %r12, %xmm1
		aesenc128
		stx -24(%rbp), %xmm15
	`)
	if p.Insts[0].X1 != isa.XMM15 || p.Insts[0].R1 != isa.RAX {
		t.Fatalf("movqx parsed as %+v", p.Insts[0])
	}
	if p.Insts[2].X1 != isa.XMM1 || p.Insts[2].R1 != isa.R12 {
		t.Fatalf("punpckx parsed as %+v", p.Insts[2])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown mnemonic", "frobnicate %rax"},
		{"bad register", "push %rzz"},
		{"missing percent", "push rax"},
		{"wrong arity", "push %rax, %rbx"},
		{"undefined label", "jmp nowhere"},
		{"duplicate label", "a: nop\na: nop"},
		{"bad label", "9lives: nop"},
		{"bad immediate", "movi $zz, %rax"},
		{"bad memory operand", "load 8%rbp, %rax"},
		{"bad fs operand", "ldfs 40, %rax"},
		{"bad xmm", "movqx %rax, %xmm99"},
		{"no operands wanted", "ret %rax"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Assemble(c.src); err == nil {
				t.Fatalf("assembling %q succeeded, want error", c.src)
			}
		})
	}
}

func TestSyntaxErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("nop\nnop\nbadop")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 3 {
		t.Fatalf("line = %d, want 3", se.Line)
	}
	if !strings.Contains(se.Error(), "line 3") {
		t.Fatalf("message %q lacks line number", se.Error())
	}
}

func TestRoundTripThroughDisassembler(t *testing.T) {
	src := `
		push %rbp
		mov %rsp, %rbp
		subi $16, %rsp
		ldfs %fs:40, %rax
		store -8(%rbp), %rax
		load -8(%rbp), %rdx
		xorfs %fs:40, %rdx
		je 4
		rdrand %rcx
		leave
		ret
	`
	p1 := mustAssemble(t, src)
	dis := Disassemble(p1.Code)
	// Strip offsets and reassemble.
	var b strings.Builder
	for _, line := range strings.Split(dis, "\n") {
		if _, body, ok := strings.Cut(line, "\t"); ok {
			b.WriteString(body + "\n")
		}
	}
	p2 := mustAssemble(t, b.String())
	if string(p1.Code) != string(p2.Code) {
		t.Fatalf("disassemble/reassemble changed code:\n%s\nvs\n%s",
			Disassemble(p1.Code), Disassemble(p2.Code))
	}
}

func TestDisassembleBadBytes(t *testing.T) {
	out := Disassemble([]byte{0xff, byte(isa.NOP)})
	if !strings.Contains(out, ".byte 0xff") {
		t.Fatalf("output %q lacks .byte for invalid opcode", out)
	}
	if !strings.Contains(out, "nop") {
		t.Fatalf("output %q lost the valid instruction after bad byte", out)
	}
}

func TestEmptySource(t *testing.T) {
	p := mustAssemble(t, "\n\n# only comments\n")
	if len(p.Insts) != 0 || len(p.Code) != 0 {
		t.Fatalf("empty source produced %d insts", len(p.Insts))
	}
}
