// Package attack implements the adversaries of the paper's threat model:
// the byte-by-byte (BROP-style) canary brute-forcer of Section II-B and the
// exhaustive-search attacker of Section III-C, both driven against a live
// crash oracle (a fork-per-request server running real compiled code in the
// VM).
//
// The attacker fits the paper's adversary model: it chooses inputs and
// observes crash/no-crash behaviour, but has no direct memory read or write.
package attack

import (
	"encoding/binary"
	"fmt"

	"repro/internal/kernel"
)

// Oracle answers one attack trial: did the worker survive the payload?
type Oracle interface {
	Try(payload []byte) (survived bool, err error)
}

// ServerOracle adapts a fork server into an Oracle.
type ServerOracle struct {
	Srv *kernel.ForkServer
}

// Try implements Oracle.
func (o *ServerOracle) Try(payload []byte) (bool, error) {
	out, err := o.Srv.Handle(payload)
	if err != nil {
		return false, err
	}
	return !out.Crashed, nil
}

// Config describes the victim's frame as known to the attacker (the paper
// assumes no secrecy of the binary or layout).
type Config struct {
	// BufLen is the distance in bytes from the buffer start to the canary.
	BufLen int
	// CanaryLen is the canary size in bytes (8 on 64-bit SSP).
	CanaryLen int
	// Filler is the byte used to fill the buffer.
	Filler byte
	// MaxTrials bounds the attack; 0 means 16*256*CanaryLen.
	MaxTrials int
}

func (c *Config) setDefaults() {
	if c.CanaryLen == 0 {
		c.CanaryLen = 8
	}
	if c.Filler == 0 {
		c.Filler = 'A'
	}
	if c.MaxTrials == 0 {
		c.MaxTrials = 16 * 256 * c.CanaryLen
	}
}

// Result reports an attack run.
type Result struct {
	// Success is true when every canary byte was confirmed.
	Success bool
	// Canary is the recovered canary (complete only on success).
	Canary []byte
	// Trials is the total number of oracle queries.
	Trials int
	// PerByte is the number of trials spent on each recovered byte.
	PerByte []int
	// FailedAt is the byte position the attack gave up on (-1 on success).
	FailedAt int
}

// RecoveredWord returns the canary as a little-endian word (zero-extended).
func (r Result) RecoveredWord() uint64 {
	var b [8]byte
	copy(b[:], r.Canary)
	return binary.LittleEndian.Uint64(b[:])
}

// ByteByByte runs the attack of Section II-B: guess the canary one byte at a
// time from the lowest address, using worker survival as confirmation. On a
// shared static canary (SSP over fork) the attacker's knowledge accumulates
// and the expected cost is 8 × 2^7 = 1024 trials; against polymorphic
// canaries each fork invalidates previous confirmations and the attack stalls.
func ByteByByte(o Oracle, cfg Config) (Result, error) {
	cfg.setDefaults()
	res := Result{FailedAt: -1, PerByte: make([]int, 0, cfg.CanaryLen)}
	known := make([]byte, 0, cfg.CanaryLen)

	for pos := 0; pos < cfg.CanaryLen; pos++ {
		tried := 0
		found := false
		for guess := 0; guess < 256; guess++ {
			if res.Trials >= cfg.MaxTrials {
				res.FailedAt = pos
				res.PerByte = append(res.PerByte, tried)
				return res, nil
			}
			payload := make([]byte, 0, cfg.BufLen+pos+1)
			for i := 0; i < cfg.BufLen; i++ {
				payload = append(payload, cfg.Filler)
			}
			payload = append(payload, known...)
			payload = append(payload, byte(guess))

			res.Trials++
			tried++
			survived, err := o.Try(payload)
			if err != nil {
				return res, fmt.Errorf("attack: trial %d: %w", res.Trials, err)
			}
			if survived {
				known = append(known, byte(guess))
				found = true
				break
			}
		}
		res.PerByte = append(res.PerByte, tried)
		if !found {
			// All 256 values crashed: the canary changed under us —
			// polymorphic defence. Restart this byte from scratch would be
			// the attacker's only option; we account it as a failure of the
			// position (the paper's "advantage is not accumulated").
			res.FailedAt = pos
			res.Canary = known
			return res, nil
		}
	}
	res.Success = true
	res.Canary = known
	return res, nil
}

// Exhaustive runs the primitive attack of Section III-C-1: independent
// uniformly random guesses of the full canary word. nextGuess supplies the
// guesses (letting experiments seed it deterministically).
func Exhaustive(o Oracle, cfg Config, nextGuess func() uint64) (Result, error) {
	cfg.setDefaults()
	var res Result
	res.FailedAt = 0
	for res.Trials < cfg.MaxTrials {
		guess := nextGuess()
		payload := make([]byte, cfg.BufLen+cfg.CanaryLen)
		for i := 0; i < cfg.BufLen; i++ {
			payload[i] = cfg.Filler
		}
		binary.LittleEndian.PutUint64(payload[cfg.BufLen:], guess)

		res.Trials++
		survived, err := o.Try(payload)
		if err != nil {
			return res, fmt.Errorf("attack: trial %d: %w", res.Trials, err)
		}
		if survived {
			res.Success = true
			res.FailedAt = -1
			res.Canary = payload[cfg.BufLen:]
			return res, nil
		}
	}
	return res, nil
}

// PairPayload builds the informed P-SSP overwrite of Section III-C-1: an
// attacker who somehow knows the TLS canary c forges a valid-looking pair
// (C0', C1' = C0' XOR c). It demonstrates that P-SSP's security reduces to
// the secrecy of c, exactly like SSP — no better, no worse — under
// exhaustive search.
func PairPayload(bufLen int, filler byte, c0, c1 uint64) []byte {
	payload := make([]byte, bufLen+16)
	for i := 0; i < bufLen; i++ {
		payload[i] = filler
	}
	// Stack order: the pair's second word (C1, slot -16) sits below the
	// first (C0, slot -8), so the overflow writes C1 first.
	binary.LittleEndian.PutUint64(payload[bufLen:], c1)
	binary.LittleEndian.PutUint64(payload[bufLen+8:], c0)
	return payload
}
