// Package attack implements the adversaries of the paper's threat model:
// the byte-by-byte (BROP-style) canary brute-forcer of Section II-B, the
// exhaustive-search attacker of Section III-C, and a family of variant
// adversaries (chunk-wise guessing, uniform random sampling, an adaptive
// restart-on-detection attacker), all driven against a live crash oracle (a
// fork-per-request server running real compiled code in the VM).
//
// The attacker fits the paper's adversary model: it chooses inputs and
// observes crash/no-crash behaviour, but has no direct memory read or write.
// Each adversary is a Strategy; see the registry in strategy.go and the
// campaign engine in internal/campaign that replicates strategies at scale.
package attack

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/kernel"
)

// Oracle answers one attack trial: did the worker survive the payload?
//
// Implementations must report their own infrastructure failures (transport,
// fork, kernel errors) wrapped as an *OracleError — see WrapOracleErr — so
// callers can distinguish "the trial ran and the worker died" (survived ==
// false, err == nil) from "the trial never ran" (err != nil). Context
// cancellation is returned unwrapped.
type Oracle interface {
	Try(payload []byte) (survived bool, err error)
}

// OracleError marks an infrastructure failure of the crash oracle itself —
// the trial never reached the victim, so it carries no information about
// the canary and must not be accounted as an attack trial. Campaigns count
// these separately instead of folding them into trial statistics.
type OracleError struct {
	// Err is the underlying transport/kernel failure.
	Err error
}

// Error implements error.
func (e *OracleError) Error() string { return "attack: oracle failure: " + e.Err.Error() }

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *OracleError) Unwrap() error { return e.Err }

// WrapOracleErr classifies an error for Oracle implementations: nil and
// context cancellation pass through untouched (a cancelled trial is the
// caller's doing, not an oracle fault); everything else is wrapped as an
// *OracleError. Already-wrapped errors are returned as-is.
func WrapOracleErr(err error) error {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	var oe *OracleError
	if errors.As(err, &oe) {
		return err
	}
	return &OracleError{Err: err}
}

// IsOracleErr reports whether err stems from oracle infrastructure rather
// than from the attack logic or its cancellation.
func IsOracleErr(err error) bool {
	var oe *OracleError
	return errors.As(err, &oe)
}

// ServerOracle adapts a fork server into an Oracle.
type ServerOracle struct {
	Srv *kernel.ForkServer
}

// Try implements Oracle. Transport errors are classified as *OracleError,
// distinct from attack outcomes.
func (o *ServerOracle) Try(payload []byte) (bool, error) {
	out, err := o.Srv.Handle(payload)
	if err != nil {
		return false, WrapOracleErr(err)
	}
	return !out.Crashed, nil
}

// Config describes the victim's frame as known to the attacker (the paper
// assumes no secrecy of the binary or layout).
type Config struct {
	// BufLen is the distance in bytes from the buffer start to the canary.
	BufLen int
	// CanaryLen is the canary size in bytes (8 on 64-bit SSP).
	CanaryLen int
	// Filler is the byte used to fill the buffer.
	Filler byte
	// MaxTrials bounds the attack; 0 means 16*256*CanaryLen.
	MaxTrials int
}

func (c *Config) setDefaults() {
	if c.CanaryLen == 0 {
		c.CanaryLen = 8
	}
	if c.Filler == 0 {
		c.Filler = 'A'
	}
	if c.MaxTrials == 0 {
		c.MaxTrials = 16 * 256 * c.CanaryLen
	}
}

// Result reports an attack run.
type Result struct {
	// Strategy names the adversary model that produced the result.
	Strategy string
	// Success is true when every canary byte was confirmed.
	Success bool
	// Canary is the recovered canary (complete only on success).
	Canary []byte
	// Trials is the total number of oracle queries.
	Trials int
	// PerByte is the number of trials spent on each recovered position
	// (one entry per chunk for chunk-wise strategies).
	PerByte []int
	// FailedAt is the byte position a positional attack gave up on; -1 on
	// success and for non-positional (full-word) strategies, where no byte
	// position applies.
	FailedAt int
	// Restarts counts full from-scratch restarts taken by adaptive
	// strategies after a detected re-randomization.
	Restarts int
}

// RecoveredWord returns the canary as a little-endian word (zero-extended).
func (r Result) RecoveredWord() uint64 {
	var b [8]byte
	copy(b[:], r.Canary)
	return binary.LittleEndian.Uint64(b[:])
}

// positionalSearch is the shared engine behind the positional strategies:
// recover the canary chunk by chunk of chunk bytes (1 = the paper's
// byte-by-byte), enumerating each chunk's value space in a cyclic order
// from start(pos), using worker survival as confirmation. On a position
// where every value crashes — the signature of a polymorphic canary that
// re-randomized under the attacker — restart selects the response: give up
// (the paper's "advantage is not accumulated" analysis) or drop all
// accumulated knowledge and start over (the adaptive attacker), bounded by
// MaxTrials either way.
func positionalSearch(ctx context.Context, o Oracle, cfg Config, chunk int, start func(pos int) uint64, restart bool) (Result, error) {
	cfg.setDefaults()
	if chunk < 1 {
		chunk = 1
	}
	res := Result{FailedAt: -1, PerByte: make([]int, 0, (cfg.CanaryLen+chunk-1)/chunk)}
	known := make([]byte, 0, cfg.CanaryLen)

	for pos := 0; len(known) < cfg.CanaryLen; pos++ {
		width := chunk
		if rem := cfg.CanaryLen - len(known); width > rem {
			width = rem
		}
		// space is the chunk's value count; 0 encodes the full 2^64 space
		// of an 8-byte chunk (the shift wraps), where modular arithmetic
		// is the native uint64 wraparound.
		var space uint64
		if width < 8 {
			space = uint64(1) << (8 * width)
		}
		first := uint64(0)
		if start != nil {
			first = start(pos)
			if space != 0 {
				first %= space
			}
		}
		tried := 0
		found := false
		for i := uint64(0); i < space || space == 0; i++ {
			if res.Trials >= cfg.MaxTrials {
				res.FailedAt = len(known)
				res.PerByte = append(res.PerByte, tried)
				res.Canary = known
				return res, nil
			}
			if err := ctx.Err(); err != nil {
				res.Canary = known
				return res, err
			}
			guess := first + i
			if space != 0 {
				guess %= space
			}
			payload := make([]byte, 0, cfg.BufLen+len(known)+width)
			for j := 0; j < cfg.BufLen; j++ {
				payload = append(payload, cfg.Filler)
			}
			payload = append(payload, known...)
			for j := 0; j < width; j++ {
				payload = append(payload, byte(guess>>(8*j)))
			}

			res.Trials++
			tried++
			survived, err := o.Try(payload)
			if err != nil {
				return res, fmt.Errorf("attack: trial %d: %w", res.Trials, err)
			}
			if survived {
				for j := 0; j < width; j++ {
					known = append(known, byte(guess>>(8*j)))
				}
				found = true
				break
			}
		}
		res.PerByte = append(res.PerByte, tried)
		if !found {
			// All values of the position crashed: the canary changed under
			// us — polymorphic defence detected.
			if restart && res.Trials < cfg.MaxTrials {
				res.Restarts++
				known = known[:0]
				res.PerByte = res.PerByte[:0]
				pos = -1
				continue
			}
			res.FailedAt = len(known)
			res.Canary = known
			return res, nil
		}
	}
	res.Success = true
	res.Canary = known
	return res, nil
}

// ByteByByte runs the attack of Section II-B: guess the canary one byte at a
// time from the lowest address, using worker survival as confirmation. On a
// shared static canary (SSP over fork) the attacker's knowledge accumulates
// and the expected cost is 8 × 2^7 = 1024 trials; against polymorphic
// canaries each fork invalidates previous confirmations and the attack stalls.
func ByteByByte(o Oracle, cfg Config) (Result, error) {
	res, err := positionalSearch(context.Background(), o, cfg, 1, nil, false)
	res.Strategy = "byte-by-byte"
	return res, err
}

// wordSearch guesses full canary words supplied by next until one survives
// or the budget runs out. The guess covers min(CanaryLen, 8) bytes — one
// machine word — so a narrow canary is searched over its own value space;
// a canary wider than a word leaves the upper bytes untouched on the stack
// (physically a shorter overflow), which is the best a single-word guesser
// can do.
func wordSearch(ctx context.Context, o Oracle, cfg Config, next func() uint64) (Result, error) {
	cfg.setDefaults()
	width := cfg.CanaryLen
	if width > 8 {
		width = 8
	}
	res := Result{FailedAt: -1} // no byte position applies to full-word search
	for res.Trials < cfg.MaxTrials {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		guess := next()
		payload := make([]byte, cfg.BufLen+width)
		for i := 0; i < cfg.BufLen; i++ {
			payload[i] = cfg.Filler
		}
		for j := 0; j < width; j++ {
			payload[cfg.BufLen+j] = byte(guess >> (8 * j))
		}

		res.Trials++
		survived, err := o.Try(payload)
		if err != nil {
			return res, fmt.Errorf("attack: trial %d: %w", res.Trials, err)
		}
		if survived {
			res.Success = true
			res.Canary = payload[cfg.BufLen:]
			return res, nil
		}
	}
	return res, nil
}

// Exhaustive runs the primitive attack of Section III-C-1: independent
// guesses of the full canary word. nextGuess supplies the guesses (letting
// experiments seed it deterministically).
func Exhaustive(o Oracle, cfg Config, nextGuess func() uint64) (Result, error) {
	res, err := wordSearch(context.Background(), o, cfg, nextGuess)
	res.Strategy = "exhaustive"
	return res, err
}

// PairPayload builds the informed P-SSP overwrite of Section III-C-1: an
// attacker who somehow knows the TLS canary c forges a valid-looking pair
// (C0', C1' = C0' XOR c). It demonstrates that P-SSP's security reduces to
// the secrecy of c, exactly like SSP — no better, no worse — under
// exhaustive search.
func PairPayload(bufLen int, filler byte, c0, c1 uint64) []byte {
	payload := make([]byte, bufLen+16)
	for i := 0; i < bufLen; i++ {
		payload[i] = filler
	}
	// Stack order: the pair's second word (C1, slot -16) sits below the
	// first (C0, slot -8), so the overflow writes C1 first.
	binary.LittleEndian.PutUint64(payload[bufLen:], c1)
	binary.LittleEndian.PutUint64(payload[bufLen+8:], c0)
	return payload
}
