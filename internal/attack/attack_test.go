package attack

import (
	"encoding/binary"
	"testing"

	"repro/internal/abi"
	"repro/internal/binfmt"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/rng"
)

// victim builds the standard vulnerable fork server under the given scheme
// and returns its oracle plus the parent's TLS view.
func victim(t *testing.T, seed uint64, scheme core.Scheme) (*ServerOracle, *kernel.ForkServer) {
	t.Helper()
	// The canonical victim of the paper's threat model: the accept loop
	// lives in serve, but each request is processed by a fresh call to
	// handle — so handle's prologue (and any per-call canary) runs in the
	// forked child, while serve's frame is inherited from the parent.
	prog := &cc.Program{
		Name:    "victim",
		Globals: []cc.Global{{Name: "reqlen", Size: 8}},
		Funcs: []*cc.Func{
			{Name: "main", Body: []cc.Stmt{cc.Call{Callee: "serve"}}},
			{
				Name: "serve",
				Locals: []cc.Local{
					{Name: "pad", Size: 16, IsBuffer: true},
					{Name: "n", Size: 8},
				},
				Body: []cc.Stmt{
					cc.Accept{Dst: "n"},
					cc.While{Var: "n", Body: []cc.Stmt{
						cc.StoreGlobal{Global: "reqlen", Src: "n"},
						cc.Call{Callee: "handle"},
						cc.Accept{Dst: "n"},
					}},
				},
			},
			{
				Name: "handle",
				Locals: []cc.Local{
					{Name: "buf", Size: 16, IsBuffer: true},
					{Name: "len", Size: 8},
				},
				Body: []cc.Stmt{
					cc.LoadGlobal{Dst: "len", Global: "reqlen"},
					cc.ReadInput{Buf: "buf", LenVar: "len"},
					cc.WriteOutput{Src: "buf", Len: 4},
				},
			},
		},
	}
	bin, err := cc.Compile(prog, cc.Options{Scheme: scheme, Linkage: abi.LinkStatic})
	if err != nil {
		t.Fatal(err)
	}
	return victimFromBinary(t, seed, bin)
}

func victimFromBinary(t *testing.T, seed uint64, bin *binfmt.Binary) (*ServerOracle, *kernel.ForkServer) {
	t.Helper()
	k := kernel.New(seed)
	srv, err := kernel.NewForkServer(k, bin, kernel.SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return &ServerOracle{Srv: srv}, srv
}

// sspDistance is the byte distance from buffer start to the canary under
// SSP's layout for the victim above (16-byte buffer adjacent to the canary).
const sspDistance = 16

func TestByteByByteRecoversSSPCanary(t *testing.T) {
	oracle, srv := victim(t, 100, core.SchemeSSP)
	res, err := ByteByByte(oracle, Config{BufLen: sspDistance})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("attack failed at byte %d after %d trials", res.FailedAt, res.Trials)
	}
	want, err := srv.Parent().TLS().Canary()
	if err != nil {
		t.Fatal(err)
	}
	if res.RecoveredWord() != want {
		t.Fatalf("recovered %x, real canary %x", res.RecoveredWord(), want)
	}
	// The paper's headline number: ~8 * 2^7 = 1024 expected trials, hard
	// bound 8 * 256 = 2048.
	if res.Trials < 8 || res.Trials > 2048 {
		t.Fatalf("trials = %d, expected within (8, 2048]", res.Trials)
	}
	if len(res.PerByte) != 8 {
		t.Fatalf("per-byte stats %v", res.PerByte)
	}
}

func TestByteByByteTrialsNearPaperExpectation(t *testing.T) {
	// Across several seeds the mean should be near 1024 (each byte ~128.5).
	total := 0
	const runs = 6
	for seed := uint64(0); seed < runs; seed++ {
		oracle, _ := victim(t, 200+seed, core.SchemeSSP)
		res, err := ByteByByte(oracle, Config{BufLen: sspDistance})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			t.Fatalf("seed %d: attack failed", seed)
		}
		total += res.Trials
	}
	mean := float64(total) / runs
	if mean < 512 || mean > 1600 {
		t.Fatalf("mean trials %.0f, paper expects ~1024", mean)
	}
}

func TestByteByByteFailsAgainstPSSP(t *testing.T) {
	for _, scheme := range []core.Scheme{core.SchemePSSP, core.SchemePSSPNT} {
		t.Run(scheme.String(), func(t *testing.T) {
			oracle, _ := victim(t, 300, scheme)
			res, err := ByteByByte(oracle, Config{BufLen: sspDistance, MaxTrials: 4096})
			if err != nil {
				t.Fatal(err)
			}
			if res.Success {
				t.Fatalf("byte-by-byte succeeded against %v in %d trials", scheme, res.Trials)
			}
		})
	}
}

func TestByteByByteFailsAgainstOWF(t *testing.T) {
	oracle, _ := victim(t, 301, core.SchemePSSPOWF)
	res, err := ByteByByte(oracle, Config{BufLen: sspDistance, MaxTrials: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Fatal("byte-by-byte succeeded against OWF canaries")
	}
}

func TestByteByByteSucceedsAgainstRAFOnlyPerFork(t *testing.T) {
	// RAF-SSP renews the canary per fork, so accumulation fails — but RAF
	// also breaks correctness; both facts belong to Table I.
	oracle, _ := victim(t, 302, core.SchemeRAFSSP)
	res, err := ByteByByte(oracle, Config{BufLen: sspDistance, MaxTrials: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Fatal("byte-by-byte succeeded against RAF-SSP")
	}
}

func TestExhaustiveFailsWithinBudget(t *testing.T) {
	oracle, _ := victim(t, 303, core.SchemeSSP)
	r := rng.New(1)
	res, err := Exhaustive(oracle, Config{BufLen: sspDistance, MaxTrials: 200}, r.Uint64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Fatal("exhaustive 64-bit search succeeded in 200 trials (astronomically unlikely)")
	}
	if res.Trials != 200 {
		t.Fatalf("trials %d, want 200", res.Trials)
	}
}

func TestExhaustiveSucceedsWhenGuessCorrect(t *testing.T) {
	// Feed the oracle the true canary: one trial should do it — validates
	// the payload layout.
	oracle, srv := victim(t, 304, core.SchemeSSP)
	c, err := srv.Parent().TLS().Canary()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exhaustive(oracle, Config{BufLen: sspDistance, MaxTrials: 3}, func() uint64 { return c })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success || res.Trials != 1 {
		t.Fatalf("success=%v trials=%d", res.Success, res.Trials)
	}
}

func TestPairPayloadForgesPSSPWithKnownC(t *testing.T) {
	// Section III-C-1: with knowledge of C, exhaustive-style forging works
	// against P-SSP — its security equals SSP's under exhaustive search.
	oracle, srv := victim(t, 305, core.SchemePSSP)
	c, err := srv.Parent().TLS().Canary()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	c0 := r.Uint64()
	payload := PairPayload(sspDistance, 'A', c0, c0^c)
	survived, err := oracle.Try(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !survived {
		t.Fatal("forged pair with known C was rejected")
	}
	// And a random pair (unknown C) fails.
	bad := PairPayload(sspDistance, 'A', r.Uint64(), r.Uint64())
	survived, err = oracle.Try(bad)
	if err != nil {
		t.Fatal(err)
	}
	if survived {
		t.Fatal("random pair accepted")
	}
}

func TestResultRecoveredWordPartial(t *testing.T) {
	r := Result{Canary: []byte{0x11, 0x22}}
	if r.RecoveredWord() != 0x2211 {
		t.Fatalf("got %x", r.RecoveredWord())
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{BufLen: 16}
	c.setDefaults()
	if c.CanaryLen != 8 || c.Filler != 'A' || c.MaxTrials != 16*256*8 {
		t.Fatalf("defaults %+v", c)
	}
}

func TestByteByByteHonoursMaxTrials(t *testing.T) {
	oracle, _ := victim(t, 306, core.SchemePSSP)
	res, err := ByteByByte(oracle, Config{BufLen: sspDistance, MaxTrials: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials > 50 {
		t.Fatalf("trials %d exceeded cap 50", res.Trials)
	}
	if res.Success {
		t.Fatal("cannot succeed within 50 trials against P-SSP")
	}
}

func TestLittleEndianPayloadLayout(t *testing.T) {
	p := PairPayload(2, 'B', 0x0102030405060708, 0x1112131415161718)
	if p[0] != 'B' || p[1] != 'B' {
		t.Fatal("filler missing")
	}
	if binary.LittleEndian.Uint64(p[2:]) != 0x1112131415161718 {
		t.Fatal("C1 not first (lower address)")
	}
	if binary.LittleEndian.Uint64(p[10:]) != 0x0102030405060708 {
		t.Fatal("C0 not second")
	}
}
