package attack

import "encoding/binary"

// HijackPayload builds the full exploitation payload used once the canary is
// known: fill the buffer, restore the (recovered) canary bytes so the
// epilogue check passes, plant a benign saved-rbp value pointing at writable
// memory, overwrite the return address with the gadget/function the attacker
// wants to run, and leave a continuation address on the stack for that
// function to return into.
//
// Layout written upward from the buffer start:
//
//	[ filler × bufLen ][ canary ][ savedRBP ][ target ][ continuation ]
//
// This is the paper's threat-model endgame: SSP only stands between the
// overflow and this payload via the canary's secrecy.
func HijackPayload(bufLen int, filler byte, canary []byte, savedRBP, target, continuation uint64) []byte {
	p := make([]byte, 0, bufLen+len(canary)+24)
	for i := 0; i < bufLen; i++ {
		p = append(p, filler)
	}
	p = append(p, canary...)
	p = binary.LittleEndian.AppendUint64(p, savedRBP)
	p = binary.LittleEndian.AppendUint64(p, target)
	p = binary.LittleEndian.AppendUint64(p, continuation)
	return p
}
