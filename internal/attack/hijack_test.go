package attack

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/abi"
	"repro/internal/apps"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// TestFullExploitChainAgainstSSP runs the complete BROP-style kill chain the
// paper defends against: byte-by-byte canary recovery, then a return-address
// hijack into the never-called backdoor function, with a continuation into
// __thread_exit so the worker even exits cleanly.
func TestFullExploitChainAgainstSSP(t *testing.T) {
	target := apps.VulnServers()[0]
	bin, err := cc.Compile(target.Prog, cc.Options{Scheme: core.SchemeSSP, Linkage: abi.LinkStatic})
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(404)
	srv, err := kernel.NewForkServer(k, bin, kernel.SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := &ServerOracle{Srv: srv}

	// Phase 1: recover the canary byte by byte.
	res, err := ByteByByte(oracle, Config{BufLen: apps.VulnServerBufSize})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("recovery failed at byte %d", res.FailedAt)
	}

	// Phase 2: hijack. The attacker knows the binary (no layout secrecy).
	backdoor, ok := bin.Symbol("backdoor")
	if !ok {
		t.Fatal("no backdoor symbol")
	}
	exit, ok := bin.Symbol("__thread_exit")
	if !ok {
		t.Fatal("no __thread_exit symbol")
	}
	payload := HijackPayload(
		apps.VulnServerBufSize, 'A', res.Canary,
		mem.DataBase+0x2000, // benign writable saved-rbp
		backdoor.Addr,
		exit.Addr,
	)
	out, err := srv.Handle(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Crashed {
		t.Fatalf("hijack crashed: %s", out.CrashReason)
	}
	if !bytes.Contains(out.Response, []byte{apps.BackdoorMarker}) {
		t.Fatalf("backdoor marker missing from response %v — control flow not hijacked", out.Response)
	}
}

// TestExploitChainFailsAgainstPSSP repeats the chain against P-SSP: even
// granting the attacker phase 1's byte budget, no canary survives long
// enough to build phase 2.
func TestExploitChainFailsAgainstPSSP(t *testing.T) {
	target := apps.VulnServers()[0]
	bin, err := cc.Compile(target.Prog, cc.Options{Scheme: core.SchemePSSP, Linkage: abi.LinkStatic})
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(405)
	srv, err := kernel.NewForkServer(k, bin, kernel.SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ByteByByte(&ServerOracle{Srv: srv}, Config{
		BufLen:    apps.VulnServerBufSize,
		MaxTrials: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Fatal("canary recovery succeeded against P-SSP")
	}

	// Even a hijack armed with the *true* TLS canary written as a flat
	// 16-byte "pair" fails: the pair must XOR to C, not equal it.
	c, err := srv.Parent().TLS().Canary()
	if err != nil {
		t.Fatal(err)
	}
	var flat [16]byte
	binary.LittleEndian.PutUint64(flat[:8], c)
	binary.LittleEndian.PutUint64(flat[8:], c)
	backdoor, _ := bin.Symbol("backdoor")
	exit, _ := bin.Symbol("__thread_exit")
	payload := HijackPayload(apps.VulnServerBufSize, 'A', flat[:],
		mem.DataBase+0x2000, backdoor.Addr, exit.Addr)
	out, err := srv.Handle(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Crashed {
		t.Fatal("flat-canary hijack survived against P-SSP")
	}
	if bytes.Contains(out.Response, []byte{apps.BackdoorMarker}) {
		t.Fatal("backdoor reached despite P-SSP")
	}
}

// TestHijackWithForgedPairAgainstPSSP shows the boundary of P-SSP's
// guarantee (paper §III-C): an attacker who already knows C — outside the
// threat model — can forge a valid pair and hijack. P-SSP equals SSP under
// full canary disclosure; its advantage is only against *incremental*
// disclosure.
func TestHijackWithForgedPairAgainstPSSP(t *testing.T) {
	target := apps.VulnServers()[0]
	bin, err := cc.Compile(target.Prog, cc.Options{Scheme: core.SchemePSSP, Linkage: abi.LinkStatic})
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(406)
	srv, err := kernel.NewForkServer(k, bin, kernel.SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := srv.Parent().TLS().Canary()
	if err != nil {
		t.Fatal(err)
	}
	// Forge (C0', C1') with C0'^C1' = C; stack order is C1 (lower) then C0.
	const c0 = 0x1122334455667788
	var pair [16]byte
	binary.LittleEndian.PutUint64(pair[:8], c0^c)
	binary.LittleEndian.PutUint64(pair[8:], c0)
	backdoor, _ := bin.Symbol("backdoor")
	exit, _ := bin.Symbol("__thread_exit")
	payload := HijackPayload(apps.VulnServerBufSize, 'A', pair[:],
		mem.DataBase+0x2000, backdoor.Addr, exit.Addr)
	out, err := srv.Handle(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Crashed {
		t.Fatalf("forged-pair hijack crashed: %s", out.CrashReason)
	}
	if !bytes.Contains(out.Response, []byte{apps.BackdoorMarker}) {
		t.Fatal("forged-pair hijack did not reach the backdoor")
	}
}
