package attack

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/rng"
)

// Strategy is a pluggable adversary model: one way of choosing payloads
// against a crash oracle. Strategies are stateless values — all per-run
// state lives in the Attack call — so one Strategy may drive any number of
// concurrent campaign replications.
type Strategy interface {
	// Name is the registry key (the CLI's -strategy value).
	Name() string
	// Description is a one-line summary for CLI listings.
	Description() string
	// Attack runs one full attack replication against the oracle. r seeds
	// the strategy's randomized choices; deterministic strategies ignore
	// it, and a nil r behaves like rng.New(0). Cancellation of ctx is
	// checked between trials and returned as ctx.Err().
	Attack(ctx context.Context, o Oracle, cfg Config, r *rng.Source) (Result, error)
}

// src guards against nil randomness so deterministic callers can pass nil.
func src(r *rng.Source) *rng.Source {
	if r == nil {
		return rng.New(0)
	}
	return r
}

// ByteByByteStrategy is the paper's §II-B adversary: recover the canary one
// byte at a time, lowest address first, enumerating values 0..255.
type ByteByByteStrategy struct{}

// Name implements Strategy.
func (ByteByByteStrategy) Name() string { return "byte-by-byte" }

// Description implements Strategy.
func (ByteByByteStrategy) Description() string {
	return "§II-B BROP-style brute force: confirm one canary byte at a time"
}

// Attack implements Strategy.
func (s ByteByByteStrategy) Attack(ctx context.Context, o Oracle, cfg Config, _ *rng.Source) (Result, error) {
	res, err := positionalSearch(ctx, o, cfg, 1, nil, false)
	res.Strategy = s.Name()
	return res, err
}

// ChunkStrategy generalizes byte-by-byte to Size-byte chunks: each position
// enumerates its 2^(8·Size) values in a cyclic stride from a random start,
// so one confirmation reveals Size bytes at once at exponentially higher
// per-position cost — the scenario-diversity point between byte-by-byte
// (Size 1) and the full-word exhaustive search (Size 8).
type ChunkStrategy struct {
	// Size is the chunk width in bytes (default 2).
	Size int
}

// Name implements Strategy.
func (s ChunkStrategy) Name() string {
	if s.Size > 0 && s.Size != 2 {
		return fmt.Sprintf("chunk%d", s.Size)
	}
	return "chunk"
}

// Description implements Strategy.
func (s ChunkStrategy) Description() string {
	n := s.Size
	if n == 0 {
		n = 2
	}
	return fmt.Sprintf("chunk-wise guessing: confirm %d canary bytes per position, random stride", n)
}

// Attack implements Strategy.
func (s ChunkStrategy) Attack(ctx context.Context, o Oracle, cfg Config, r *rng.Source) (Result, error) {
	size := s.Size
	if size == 0 {
		size = 2
	}
	r = src(r)
	res, err := positionalSearch(ctx, o, cfg, size, func(int) uint64 { return r.Uint64() }, false)
	res.Strategy = s.Name()
	return res, err
}

// AdaptiveStrategy is the restart-on-detection attacker: byte-by-byte
// recovery that, on the polymorphic-canary signature (every value of a
// position crashing), drops its accumulated knowledge and restarts from
// byte zero instead of giving up. Against a static canary it is identical
// to byte-by-byte; against polymorphic canaries it keeps burning budget in
// restarts — quantifying that adaptivity buys the attacker nothing once
// advantage cannot accumulate.
type AdaptiveStrategy struct{}

// Name implements Strategy.
func (AdaptiveStrategy) Name() string { return "adaptive" }

// Description implements Strategy.
func (AdaptiveStrategy) Description() string {
	return "byte-by-byte with full restart when a re-randomization is detected"
}

// Attack implements Strategy.
func (s AdaptiveStrategy) Attack(ctx context.Context, o Oracle, cfg Config, _ *rng.Source) (Result, error) {
	res, err := positionalSearch(ctx, o, cfg, 1, nil, true)
	res.Strategy = s.Name()
	return res, err
}

// ExhaustiveStrategy is the §III-C-1 word search: enumerate full canary
// words sequentially from a random starting point.
type ExhaustiveStrategy struct{}

// Name implements Strategy.
func (ExhaustiveStrategy) Name() string { return "exhaustive" }

// Description implements Strategy.
func (ExhaustiveStrategy) Description() string {
	return "§III-C sequential full-word search from a random start"
}

// Attack implements Strategy.
func (s ExhaustiveStrategy) Attack(ctx context.Context, o Oracle, cfg Config, r *rng.Source) (Result, error) {
	next := src(r).Uint64()
	res, err := wordSearch(ctx, o, cfg, func() uint64 {
		v := next
		next++
		return v
	})
	res.Strategy = s.Name()
	return res, err
}

// RandomStrategy guesses independent uniformly random full canary words —
// the memoryless sampler whose cost against a w-bit canary is geometric
// with mean 2^w, polymorphic or not.
type RandomStrategy struct{}

// Name implements Strategy.
func (RandomStrategy) Name() string { return "random" }

// Description implements Strategy.
func (RandomStrategy) Description() string {
	return "independent uniform random full-word guesses"
}

// Attack implements Strategy.
func (s RandomStrategy) Attack(ctx context.Context, o Oracle, cfg Config, r *rng.Source) (Result, error) {
	res, err := wordSearch(ctx, o, cfg, src(r).Uint64)
	res.Strategy = s.Name()
	return res, err
}

// Strategies returns every registered adversary model, ordered by name.
func Strategies() []Strategy {
	out := []Strategy{
		AdaptiveStrategy{},
		ByteByByteStrategy{},
		ChunkStrategy{Size: 2},
		ExhaustiveStrategy{},
		RandomStrategy{},
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// StrategyNames returns the registry keys, ordered.
func StrategyNames() []string {
	ss := Strategies()
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.Name()
	}
	return names
}

// StrategyByName resolves a registry key or alias ("bbb" for byte-by-byte,
// "chunkN" for an N-byte ChunkStrategy). The empty name resolves to
// byte-by-byte, the paper's default adversary.
func StrategyByName(name string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "byte-by-byte", "bytebybyte", "bbb", "brop":
		return ByteByByteStrategy{}, nil
	case "chunk", "chunk2":
		return ChunkStrategy{Size: 2}, nil
	case "chunk1":
		return ChunkStrategy{Size: 1}, nil
	case "chunk3":
		return ChunkStrategy{Size: 3}, nil
	case "chunk4":
		return ChunkStrategy{Size: 4}, nil
	case "adaptive", "restart":
		return AdaptiveStrategy{}, nil
	case "exhaustive", "word":
		return ExhaustiveStrategy{}, nil
	case "random", "uniform":
		return RandomStrategy{}, nil
	default:
		return nil, fmt.Errorf("attack: unknown strategy %q (have %s)",
			name, strings.Join(StrategyNames(), ", "))
	}
}
