package attack

import (
	"context"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/rng"
)

// memOracle is a VM-free crash oracle over a fixed or polymorphic canary,
// fast enough for millions of trials: a payload survives iff the bytes it
// writes over the canary slot match the canary's prefix.
type memOracle struct {
	r      *rng.Source
	poly   bool
	bufLen int
	canary uint64
	calls  int
}

func newMemOracle(seed uint64, poly bool, bufLen int) *memOracle {
	r := rng.New(seed)
	return &memOracle{r: r, poly: poly, bufLen: bufLen, canary: r.Uint64()}
}

func (o *memOracle) Try(payload []byte) (bool, error) {
	o.calls++
	if o.poly {
		o.canary = o.r.Uint64()
	}
	if len(payload) <= o.bufLen {
		return true, nil
	}
	var slot [8]byte
	binary.LittleEndian.PutUint64(slot[:], o.canary)
	copy(slot[:], payload[o.bufLen:])
	return binary.LittleEndian.Uint64(slot[:]) == o.canary, nil
}

func TestStrategyRegistry(t *testing.T) {
	names := StrategyNames()
	want := []string{"adaptive", "byte-by-byte", "chunk", "exhaustive", "random"}
	if len(names) != len(want) {
		t.Fatalf("registry %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("registry %v, want %v", names, want)
		}
	}
	for _, n := range names {
		s, err := StrategyByName(n)
		if err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if s.Name() != n {
			t.Fatalf("ByName(%q).Name() = %q", n, s.Name())
		}
		if s.Description() == "" {
			t.Fatalf("%s has no description", n)
		}
	}
	if _, err := StrategyByName("no-such"); err == nil {
		t.Fatal("unknown strategy did not error")
	}
	if s, err := StrategyByName(""); err != nil || s.Name() != "byte-by-byte" {
		t.Fatalf("empty name resolved to %v, %v", s, err)
	}
	if s, _ := StrategyByName("chunk4"); s.(ChunkStrategy).Size != 4 {
		t.Fatal("chunk4 alias did not set size")
	}
}

func TestChunkStrategyRecoversStaticCanary(t *testing.T) {
	o := newMemOracle(11, false, 4)
	res, err := ChunkStrategy{Size: 2}.Attack(context.Background(), o,
		Config{BufLen: 4, MaxTrials: 1 << 20}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("chunk attack failed at byte %d after %d trials", res.FailedAt, res.Trials)
	}
	if res.RecoveredWord() != o.canary {
		t.Fatalf("recovered %x, want %x", res.RecoveredWord(), o.canary)
	}
	if len(res.PerByte) != 4 {
		t.Fatalf("expected 4 chunk positions, got %v", res.PerByte)
	}
	if res.Strategy != "chunk" {
		t.Fatalf("strategy label %q", res.Strategy)
	}
}

func TestChunkStrategyDeterministicPerSeed(t *testing.T) {
	run := func() Result {
		o := newMemOracle(12, false, 4)
		res, err := ChunkStrategy{Size: 2}.Attack(context.Background(), o,
			Config{BufLen: 4, MaxTrials: 1 << 20}, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Trials != b.Trials || a.RecoveredWord() != b.RecoveredWord() {
		t.Fatalf("same seed diverged: %d/%x vs %d/%x",
			a.Trials, a.RecoveredWord(), b.Trials, b.RecoveredWord())
	}
}

func TestAdaptiveEqualsByteByByteOnStaticCanary(t *testing.T) {
	oa := newMemOracle(13, false, 4)
	ob := newMemOracle(13, false, 4)
	ra, err := AdaptiveStrategy{}.Attack(context.Background(), oa, Config{BufLen: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ByteByByteStrategy{}.Attack(context.Background(), ob, Config{BufLen: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ra.Success || !rb.Success || ra.Trials != rb.Trials || ra.Restarts != 0 {
		t.Fatalf("adaptive %+v vs byte-by-byte %+v", ra, rb)
	}
}

func TestAdaptiveRestartsOnPolymorphicCanary(t *testing.T) {
	o := newMemOracle(14, true, 4)
	res, err := AdaptiveStrategy{}.Attack(context.Background(), o,
		Config{BufLen: 4, MaxTrials: 3000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Fatal("adaptive attack succeeded against a 64-bit polymorphic canary")
	}
	if res.Restarts == 0 {
		t.Fatal("adaptive attacker never restarted despite re-randomization")
	}
	if res.Trials > 3000 {
		t.Fatalf("budget exceeded: %d", res.Trials)
	}
}

func TestExhaustiveStrategySequentialFromStart(t *testing.T) {
	// An oracle whose canary is start+3 must fall on exactly the 4th trial.
	r := rng.New(21)
	start := r.Uint64()
	o := newMemOracle(0, false, 4)
	o.canary = start + 3
	res, err := ExhaustiveStrategy{}.Attack(context.Background(), o,
		Config{BufLen: 4, MaxTrials: 10}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success || res.Trials != 4 {
		t.Fatalf("success=%v trials=%d, want success in exactly 4", res.Success, res.Trials)
	}
}

func TestRandomStrategyFailsWithinBudget(t *testing.T) {
	o := newMemOracle(15, true, 4)
	res, err := RandomStrategy{}.Attack(context.Background(), o,
		Config{BufLen: 4, MaxTrials: 500}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Fatal("random 64-bit guess succeeded in 500 trials (astronomically unlikely)")
	}
	if res.Trials != 500 {
		t.Fatalf("trials %d, want 500", res.Trials)
	}
}

func TestStrategyCancellation(t *testing.T) {
	for _, s := range Strategies() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		o := newMemOracle(16, true, 4)
		res, err := s.Attack(ctx, o, Config{BufLen: 4, MaxTrials: 1 << 20}, rng.New(1))
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: cancelled attack returned %v", s.Name(), err)
		}
		if res.Trials != 0 {
			t.Errorf("%s: %d trials ran after cancellation", s.Name(), res.Trials)
		}
	}
}

// failingOracle always reports an infrastructure failure.
type failingOracle struct{ err error }

func (o *failingOracle) Try([]byte) (bool, error) { return false, WrapOracleErr(o.err) }

func TestOracleErrClassification(t *testing.T) {
	base := errors.New("fork bomb")
	wrapped := WrapOracleErr(base)
	if !IsOracleErr(wrapped) {
		t.Fatal("wrapped infra error not classified as oracle error")
	}
	if !errors.Is(wrapped, base) {
		t.Fatal("wrapping lost the underlying error")
	}
	if WrapOracleErr(wrapped) != wrapped {
		t.Fatal("double wrap")
	}
	// Cancellation passes through untouched.
	if IsOracleErr(WrapOracleErr(context.Canceled)) {
		t.Fatal("cancellation misclassified as oracle failure")
	}
	if WrapOracleErr(nil) != nil {
		t.Fatal("nil wrapped")
	}
	// Strategies propagate the classification through their own wrapping.
	_, err := ByteByByteStrategy{}.Attack(context.Background(),
		&failingOracle{err: base}, Config{BufLen: 4}, nil)
	if !IsOracleErr(err) {
		t.Fatalf("strategy lost oracle classification: %v", err)
	}
	if !errors.Is(err, base) {
		t.Fatalf("strategy lost the cause: %v", err)
	}
}

func TestChunkStrategyFullWordNoPanic(t *testing.T) {
	// Size 8 makes the chunk's value space the full 2^64, which must be
	// handled as uint64 wraparound, not a divide-by-zero. Plant the canary
	// three guesses past the strategy's random starting point so the run
	// also terminates quickly.
	r := rng.New(33)
	start := r.Uint64()
	o := newMemOracle(0, false, 4)
	o.canary = start + 2
	res, err := ChunkStrategy{Size: 8}.Attack(context.Background(), o,
		Config{BufLen: 4, MaxTrials: 100}, rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success || res.Trials != 3 {
		t.Fatalf("success=%v trials=%d, want success on trial 3", res.Success, res.Trials)
	}
	// And a miss within budget terminates at MaxTrials instead of looping.
	miss := newMemOracle(44, false, 4)
	res, err = ChunkStrategy{Size: 8}.Attack(context.Background(), miss,
		Config{BufLen: 4, MaxTrials: 50}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Success || res.Trials != 50 {
		t.Fatalf("success=%v trials=%d, want budget-bounded failure", res.Success, res.Trials)
	}
}

func TestWordStrategiesReportNoBytePosition(t *testing.T) {
	for _, name := range []string{"random", "exhaustive"} {
		s, err := StrategyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		o := newMemOracle(17, true, 4)
		res, err := s.Attack(context.Background(), o, Config{BufLen: 4, MaxTrials: 20}, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		if res.Success {
			t.Fatalf("%s: 64-bit guess succeeded in 20 trials", name)
		}
		if res.FailedAt != -1 {
			t.Errorf("%s: FailedAt = %d, want -1 (no byte position applies)", name, res.FailedAt)
		}
	}
}

func TestWordStrategiesNarrowCanary(t *testing.T) {
	// CanaryLen below a word must search the narrow space, not panic on an
	// 8-byte write into a short payload. Plant the canary's low 4 bytes
	// two guesses past the exhaustive start so the run succeeds quickly.
	r := rng.New(51)
	start := r.Uint64()
	o := newMemOracle(52, false, 4)
	o.canary = o.canary&^0xffffffff | uint64(uint32(start+2))
	res, err := ExhaustiveStrategy{}.Attack(context.Background(), o,
		Config{BufLen: 4, CanaryLen: 4, MaxTrials: 100}, rng.New(51))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success || res.Trials != 3 {
		t.Fatalf("success=%v trials=%d, want success on trial 3", res.Success, res.Trials)
	}
	if len(res.Canary) != 4 {
		t.Fatalf("recovered %d canary bytes, want 4", len(res.Canary))
	}
	// And a canary wider than a word is guessed on its low word only — a
	// shorter physical overflow — still without panicking.
	wide := newMemOracle(53, false, 4)
	res, err = RandomStrategy{}.Attack(context.Background(), wide,
		Config{BufLen: 4, CanaryLen: 16, MaxTrials: 10}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 10 {
		t.Fatalf("trials %d, want 10", res.Trials)
	}
}
