// Package binfmt defines the executable container used by the simulated
// toolchain — a deliberately simplified ELF analog with sections, a symbol
// table, an entry point, and free-form metadata.
//
// The binary rewriter in internal/rewrite consumes and produces this format,
// and the kernel's loader maps it into a process address space. A compact
// serialized form (Marshal/Unmarshal) lets the CLI tools pass binaries
// through files, mirroring the paper's workflow of instrumenting on-disk
// executables.
package binfmt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/mem"
)

// SymKind classifies a symbol.
type SymKind uint8

// Symbol kinds.
const (
	SymFunc SymKind = iota + 1
	SymObject
)

// Symbol names one address in the binary. Function symbols carry the size of
// the function body so the rewriter can scan exactly its instructions.
type Symbol struct {
	Name string
	Addr uint64
	Size uint64
	Kind SymKind
}

// Section is one loadable region.
type Section struct {
	Name string
	Addr uint64
	Perm mem.Perm
	Data []byte
}

// Binary is a loadable executable image.
type Binary struct {
	// Entry is the address execution starts at.
	Entry uint64
	// Sections are the loadable regions, non-overlapping.
	Sections []*Section
	// Symbols is the symbol table, sorted by address.
	Symbols []Symbol
	// Meta carries toolchain annotations, e.g. "scheme" (which protection
	// pass produced the binary) and "linkage" ("dynamic" or "static").
	Meta map[string]string

	// shared marks section Data as aliasing caller-owned read-only bytes
	// (UnmarshalShared over an artifact-store mmap). Load maps such
	// binaries zero-copy via mem.MapShared, and no holder may mutate the
	// section bytes.
	shared bool
}

// SharedBacking reports whether the binary's section data aliases external
// read-only bytes (see UnmarshalShared); Load maps such binaries zero-copy.
func (b *Binary) SharedBacking() bool { return b.shared }

// New returns an empty binary.
func New() *Binary {
	return &Binary{Meta: make(map[string]string)}
}

// AddSection appends a section.
func (b *Binary) AddSection(name string, addr uint64, perm mem.Perm, data []byte) *Section {
	s := &Section{Name: name, Addr: addr, Perm: perm, Data: data}
	b.Sections = append(b.Sections, s)
	return s
}

// Section returns the section with the given name, or nil.
func (b *Binary) Section(name string) *Section {
	for _, s := range b.Sections {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Text returns the ".text" section, or nil.
func (b *Binary) Text() *Section { return b.Section(".text") }

// AddSymbol appends a symbol and keeps the table address-sorted.
func (b *Binary) AddSymbol(sym Symbol) {
	b.Symbols = append(b.Symbols, sym)
	sort.Slice(b.Symbols, func(i, j int) bool { return b.Symbols[i].Addr < b.Symbols[j].Addr })
}

// Symbol returns the symbol with the given name.
func (b *Binary) Symbol(name string) (Symbol, bool) {
	for _, s := range b.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// Funcs returns all function symbols in address order.
func (b *Binary) Funcs() []Symbol {
	var out []Symbol
	for _, s := range b.Symbols {
		if s.Kind == SymFunc {
			out = append(out, s)
		}
	}
	return out
}

// FuncAt returns the function symbol covering addr.
func (b *Binary) FuncAt(addr uint64) (Symbol, bool) {
	for _, s := range b.Symbols {
		if s.Kind == SymFunc && addr >= s.Addr && addr < s.Addr+s.Size {
			return s, true
		}
	}
	return Symbol{}, false
}

// CodeSize returns the total bytes of executable sections — the measure used
// by the Table II code-expansion experiment.
func (b *Binary) CodeSize() int {
	total := 0
	for _, s := range b.Sections {
		if s.Perm&mem.PermExec != 0 {
			total += len(s.Data)
		}
	}
	return total
}

// TotalSize returns the total bytes across all sections.
func (b *Binary) TotalSize() int {
	total := 0
	for _, s := range b.Sections {
		total += len(s.Data)
	}
	return total
}

// Clone returns a deep copy, used by the rewriter so the input image is
// never mutated.
func (b *Binary) Clone() *Binary {
	out := &Binary{Entry: b.Entry, Meta: make(map[string]string, len(b.Meta))}
	for k, v := range b.Meta {
		out.Meta[k] = v
	}
	for _, s := range b.Sections {
		d := make([]byte, len(s.Data))
		copy(d, s.Data)
		out.Sections = append(out.Sections, &Section{Name: s.Name, Addr: s.Addr, Perm: s.Perm, Data: d})
	}
	out.Symbols = append(out.Symbols, b.Symbols...)
	return out
}

// Load maps every section of the binary into the address space. A binary
// with shared backing (UnmarshalShared) is mapped zero-copy: each segment
// aliases the section bytes copy-on-write, so N processes booted from one
// store blob share one physical copy of every read-only segment.
func Load(b *Binary, sp *mem.Space) error {
	for _, s := range b.Sections {
		if b.shared {
			if _, err := sp.MapShared(s.Name, s.Addr, s.Data, s.Perm); err != nil {
				return fmt.Errorf("binfmt: load: %w", err)
			}
			continue
		}
		seg, err := sp.Map(s.Name, s.Addr, len(s.Data), s.Perm)
		if err != nil {
			return fmt.Errorf("binfmt: load: %w", err)
		}
		if err := seg.CopyIn(0, s.Data); err != nil {
			return fmt.Errorf("binfmt: load: %w", err)
		}
	}
	return nil
}

// Serialized format:
//
//	magic "PSSP" | u16 version | u64 entry
//	u32 nMeta    | nMeta × (str key, str value)
//	u32 nSection | nSection × (str name, u64 addr, u8 perm, u32 len, bytes)
//	u32 nSymbol  | nSymbol × (str name, u64 addr, u64 size, u8 kind)
//
// where str is u32 length + bytes, all little-endian.
var magic = [4]byte{'P', 'S', 'S', 'P'}

const version = 1

// Version is the serialized container format's version — part of the
// artifact store's derivation key, so bumping the format invalidates every
// cached blob cleanly.
const Version = version

// ErrBadImage is returned by Unmarshal for malformed input.
var ErrBadImage = errors.New("binfmt: malformed image")

type writer struct{ buf bytes.Buffer }

func (w *writer) u8(v uint8)   { w.buf.WriteByte(v) }
func (w *writer) u16(v uint16) { w.buf.Write(binary.LittleEndian.AppendUint16(nil, v)) }
func (w *writer) u32(v uint32) { w.buf.Write(binary.LittleEndian.AppendUint32(nil, v)) }
func (w *writer) u64(v uint64) { w.buf.Write(binary.LittleEndian.AppendUint64(nil, v)) }
func (w *writer) str(s string) { w.u32(uint32(len(s))); w.buf.WriteString(s) }
func (w *writer) bytes(p []byte) {
	w.u32(uint32(len(p)))
	w.buf.Write(p)
}

// Marshal serializes the binary.
func Marshal(b *Binary) []byte {
	var w writer
	w.buf.Write(magic[:])
	w.u16(version)
	w.u64(b.Entry)

	// Deterministic meta order.
	keys := make([]string, 0, len(b.Meta))
	for k := range b.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.u32(uint32(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.str(b.Meta[k])
	}

	w.u32(uint32(len(b.Sections)))
	for _, s := range b.Sections {
		w.str(s.Name)
		w.u64(s.Addr)
		w.u8(uint8(s.Perm))
		w.bytes(s.Data)
	}

	w.u32(uint32(len(b.Symbols)))
	for _, s := range b.Symbols {
		w.str(s.Name)
		w.u64(s.Addr)
		w.u64(s.Size)
		w.u8(uint8(s.Kind))
	}
	return w.buf.Bytes()
}

type reader struct {
	p   []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.p) || n < 0 {
		r.err = ErrBadImage
		return nil
	}
	b := r.p[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) str() string { return string(r.take(int(r.u32()))) }

// Unmarshal parses a serialized binary. Section data is copied out of p, so
// the caller may reuse the input buffer.
func Unmarshal(p []byte) (*Binary, error) {
	return unmarshal(p, true)
}

// UnmarshalShared parses a serialized binary without copying section data:
// every Section.Data aliases p directly, and the result is marked
// SharedBacking so Load maps it zero-copy. p must stay valid, unmodified and
// effectively read-only (an artifact-store mmap) for the life of the binary
// and every process loaded from it.
func UnmarshalShared(p []byte) (*Binary, error) {
	b, err := unmarshal(p, false)
	if err != nil {
		return nil, err
	}
	b.shared = true
	return b, nil
}

func unmarshal(p []byte, copyData bool) (*Binary, error) {
	r := &reader{p: p}
	if m := r.take(4); m == nil || !bytes.Equal(m, magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrBadImage)
	}
	if v := r.u16(); v != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadImage, v)
	}
	b := New()
	b.Entry = r.u64()

	nMeta := int(r.u32())
	if r.err != nil || nMeta > 1<<16 {
		return nil, ErrBadImage
	}
	for i := 0; i < nMeta; i++ {
		k := r.str()
		v := r.str()
		if r.err != nil {
			return nil, r.err
		}
		b.Meta[k] = v
	}

	nSec := int(r.u32())
	if r.err != nil || nSec > 1<<16 {
		return nil, ErrBadImage
	}
	for i := 0; i < nSec; i++ {
		name := r.str()
		addr := r.u64()
		perm := mem.Perm(r.u8())
		data := r.take(int(r.u32()))
		if r.err != nil {
			return nil, r.err
		}
		d := data
		if copyData {
			d = make([]byte, len(data))
			copy(d, data)
		}
		b.AddSection(name, addr, perm, d)
	}

	nSym := int(r.u32())
	if r.err != nil || nSym > 1<<20 {
		return nil, ErrBadImage
	}
	for i := 0; i < nSym; i++ {
		sym := Symbol{Name: r.str(), Addr: r.u64(), Size: r.u64(), Kind: SymKind(r.u8())}
		if r.err != nil {
			return nil, r.err
		}
		b.AddSymbol(sym)
	}
	if r.off != len(p) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadImage, len(p)-r.off)
	}
	return b, nil
}
