package binfmt

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func sampleBinary() *Binary {
	b := New()
	b.Entry = mem.TextBase + 8
	b.Meta["scheme"] = "ssp"
	b.Meta["linkage"] = "dynamic"
	b.AddSection(".text", mem.TextBase, mem.PermRead|mem.PermExec, []byte{1, 2, 3, 4, 5})
	b.AddSection(".data", mem.DataBase, mem.PermRead|mem.PermWrite, []byte{9, 9})
	b.AddSymbol(Symbol{Name: "main", Addr: mem.TextBase + 8, Size: 32, Kind: SymFunc})
	b.AddSymbol(Symbol{Name: "__stack_chk_fail", Addr: mem.TextBase, Size: 8, Kind: SymFunc})
	b.AddSymbol(Symbol{Name: "gbuf", Addr: mem.DataBase, Size: 2, Kind: SymObject})
	return b
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	b := sampleBinary()
	got, err := Unmarshal(Marshal(b))
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != b.Entry {
		t.Errorf("entry 0x%x, want 0x%x", got.Entry, b.Entry)
	}
	if len(got.Sections) != 2 || len(got.Symbols) != 3 {
		t.Fatalf("sections %d symbols %d", len(got.Sections), len(got.Symbols))
	}
	if got.Meta["scheme"] != "ssp" || got.Meta["linkage"] != "dynamic" {
		t.Errorf("meta %v", got.Meta)
	}
	if !bytes.Equal(got.Text().Data, []byte{1, 2, 3, 4, 5}) {
		t.Errorf("text data %v", got.Text().Data)
	}
	sym, ok := got.Symbol("main")
	if !ok || sym.Size != 32 || sym.Kind != SymFunc {
		t.Errorf("main symbol %+v, ok=%v", sym, ok)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	a := Marshal(sampleBinary())
	b := Marshal(sampleBinary())
	if !bytes.Equal(a, b) {
		t.Fatal("two marshals of the same binary differ")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{'P', 'S', 'S'},
		{'X', 'X', 'X', 'X', 1, 0},
		append([]byte{'P', 'S', 'S', 'P', 99, 0}, make([]byte, 20)...), // bad version
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: unmarshal succeeded on garbage", i)
		}
	}
}

func TestUnmarshalRejectsTruncation(t *testing.T) {
	full := Marshal(sampleBinary())
	for cut := 1; cut < len(full); cut += 7 {
		if _, err := Unmarshal(full[:cut]); err == nil {
			t.Errorf("unmarshal of %d/%d bytes succeeded", cut, len(full))
		}
	}
}

func TestUnmarshalRejectsTrailingBytes(t *testing.T) {
	p := append(Marshal(sampleBinary()), 0xff)
	if _, err := Unmarshal(p); err == nil {
		t.Fatal("unmarshal with trailing byte succeeded")
	}
}

func TestFuzzUnmarshalNeverPanics(t *testing.T) {
	f := func(p []byte) bool {
		_, _ = Unmarshal(p) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLoad(t *testing.T) {
	b := sampleBinary()
	sp := mem.NewSpace()
	if err := Load(b, sp); err != nil {
		t.Fatal(err)
	}
	got, err := sp.Read(mem.TextBase, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4, 5}) {
		t.Fatalf("loaded text %v", got)
	}
	if err := sp.Write(mem.TextBase, []byte{0}); err == nil {
		t.Fatal("text writable after load")
	}
}

func TestLoadOverlapFails(t *testing.T) {
	b := sampleBinary()
	b.AddSection(".dup", mem.TextBase, mem.PermRead, []byte{1})
	if err := Load(b, mem.NewSpace()); err == nil {
		t.Fatal("load of overlapping sections succeeded")
	}
}

func TestSymbolsSortedByAddr(t *testing.T) {
	b := sampleBinary()
	for i := 1; i < len(b.Symbols); i++ {
		if b.Symbols[i-1].Addr > b.Symbols[i].Addr {
			t.Fatal("symbols not sorted")
		}
	}
}

func TestFuncAt(t *testing.T) {
	b := sampleBinary()
	sym, ok := b.FuncAt(mem.TextBase + 10)
	if !ok || sym.Name != "main" {
		t.Fatalf("FuncAt = %+v, ok=%v", sym, ok)
	}
	if _, ok := b.FuncAt(mem.DataBase); ok {
		t.Fatal("FuncAt matched an object symbol")
	}
	if _, ok := b.FuncAt(mem.TextBase + 1000); ok {
		t.Fatal("FuncAt matched unmapped address")
	}
}

func TestFuncs(t *testing.T) {
	fs := sampleBinary().Funcs()
	if len(fs) != 2 {
		t.Fatalf("Funcs() = %d, want 2", len(fs))
	}
}

func TestCodeAndTotalSize(t *testing.T) {
	b := sampleBinary()
	if b.CodeSize() != 5 {
		t.Fatalf("CodeSize() = %d", b.CodeSize())
	}
	if b.TotalSize() != 7 {
		t.Fatalf("TotalSize() = %d", b.TotalSize())
	}
}

func TestCloneDeep(t *testing.T) {
	b := sampleBinary()
	c := b.Clone()
	c.Text().Data[0] = 0xAA
	c.Meta["scheme"] = "pssp"
	if b.Text().Data[0] == 0xAA {
		t.Fatal("clone shares section data")
	}
	if b.Meta["scheme"] == "pssp" {
		t.Fatal("clone shares meta map")
	}
}

func TestMissingLookups(t *testing.T) {
	b := sampleBinary()
	if b.Section("nope") != nil {
		t.Fatal("Section(nope) != nil")
	}
	if _, ok := b.Symbol("nope"); ok {
		t.Fatal("Symbol(nope) found")
	}
}
