// Package campaign is the Monte-Carlo replication engine behind the paper's
// evaluation: it runs N independent replications of a trial — typically one
// full attack.Strategy run against a fresh fork-server oracle — sharded
// across a pool of workers, and folds the outcomes into deterministic
// aggregates (success rate, trials-to-success quantiles, detection rate,
// total oracle calls).
//
// Determinism is the design center. Each replication is a self-contained
// work unit: replication i always draws from rng.NewStream(seed, i) and
// builds its own oracle, no matter which worker executes it, so a fixed
// seed yields bit-identical aggregates at any worker count. Workers are
// pure concurrency — they never own state a replication depends on.
//
// Infrastructure failures of the oracle (attack.OracleError) are surfaced
// separately from trial statistics: a replication that never reached its
// victim is counted in OracleErrors, not folded into the aggregates.
// Cancellation returns the partial, well-formed aggregate of the
// replications that completed, alongside ctx.Err().
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/attack"
	"repro/internal/rng"
	"repro/internal/workpool"
)

// Config sizes a campaign.
type Config struct {
	// Label names the campaign in its Aggregate (e.g. the strategy name).
	Label string
	// Replications is the number of independent trial replications
	// (default 1).
	Replications int
	// Workers bounds the number of replications in flight (default
	// GOMAXPROCS, clamped to Replications). Workers affects wall-clock
	// time only, never results.
	Workers int
	// Seed drives all randomness: replication i draws from
	// rng.NewStream(Seed, i).
	Seed uint64
	// Progress, when non-nil, receives a running tally after every
	// completed replication, serialized by the engine (never two calls at
	// once). It observes wall-clock completion order, so the sequence of
	// snapshots varies with scheduling — only the final aggregate is
	// deterministic. The nil path costs one pointer check per replication.
	Progress func(Progress)
}

// Progress is a campaign's running tally, cumulative over the replications
// completed so far in wall-clock order.
type Progress struct {
	// Requested echoes Config.Replications; Completed counts replications
	// finished so far (infrastructure failures included — they are
	// completed units whose loss the final aggregate accounts).
	Requested, Completed int
	// Successes, Trials, Detections and OracleCalls accumulate the
	// corresponding Outcome fields of the completed replications.
	Successes, Trials, Detections, OracleCalls int
	// Cycles totals the victim-side cost so far.
	Cycles uint64
}

func (c Config) withDefaults() Config {
	if c.Replications <= 0 {
		c.Replications = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > c.Replications {
		c.Workers = c.Replications
	}
	return c
}

// Runner executes one replication. rep is the replication index and r its
// private derived randomness; the Runner must take all replication-varying
// state (oracle, victim machine, guesses) from these two values so the
// outcome is independent of scheduling. Infrastructure failures must be
// classified per attack.WrapOracleErr.
type Runner func(ctx context.Context, rep int, r *rng.Source) (Outcome, error)

// Outcome reports one completed replication. The JSON tags are its wire
// form inside a Partial; campaign reports rendered for humans or CLIs use
// their own shapes.
type Outcome struct {
	// Rep is the replication index (set by the engine).
	Rep int `json:"rep"`
	// Success reports whether the replication's trial succeeded.
	Success bool `json:"success"`
	// Verified reports that the success was confirmed against ground truth
	// (e.g. the recovered canary matches the victim's TLS canary, ruling
	// out a lucky-survival false success). Always false when !Success.
	Verified bool `json:"verified"`
	// Trials is the number of attack trials the replication spent.
	Trials int `json:"trials"`
	// FailedAt is the byte position a positional attack gave up on
	// (-1 when not applicable: success, or a non-positional trial).
	FailedAt int `json:"failed_at"`
	// Restarts counts adaptive from-scratch restarts.
	Restarts int `json:"restarts"`
	// Detections counts trials the defence detected (worker crashes).
	Detections int `json:"detections"`
	// OracleCalls is the number of oracle requests issued (>= Trials when
	// the runner issues extra non-trial requests).
	OracleCalls int `json:"oracle_calls"`
	// Cycles and Insts are the victim-side execution cost.
	Cycles uint64 `json:"cycles"`
	Insts  uint64 `json:"insts"`
	// Mem is the victim's memory footprint in bytes (0 if not measured).
	Mem int `json:"mem"`
}

// Summary is an order-statistics digest of one per-replication metric.
type Summary struct {
	// N is the number of samples folded in.
	N int
	// Min, Median, P95 and Max are the usual order statistics (nearest-rank
	// P95; mean-of-middles median).
	Min, Median, P95, Max float64
}

// summarize digests vals (consumed: sorted in place).
func summarize(vals []float64) Summary {
	n := len(vals)
	if n == 0 {
		return Summary{}
	}
	sort.Float64s(vals)
	med := vals[n/2]
	if n%2 == 0 {
		med = (vals[n/2-1] + vals[n/2]) / 2
	}
	rank := (95*n + 99) / 100 // ceil(0.95n), nearest-rank
	if rank < 1 {
		rank = 1
	}
	return Summary{N: n, Min: vals[0], Median: med, P95: vals[rank-1], Max: vals[n-1]}
}

// Aggregate folds a campaign's outcomes. All fields are deterministic
// functions of (seed, replication set): they are computed in replication
// order after the workers drain, so scheduling cannot leak in.
type Aggregate struct {
	// Label echoes Config.Label.
	Label string
	// Requested and Completed count replications asked for and finished.
	Requested, Completed int
	// Successes counts successful replications; VerifiedSuccesses counts
	// those additionally confirmed against ground truth (see
	// Outcome.Verified) — a gap between the two flags lucky-survival
	// false successes.
	Successes         int
	VerifiedSuccesses int
	// Trials, Detections and OracleCalls are totals across replications.
	Trials, Detections, OracleCalls int
	// Cycles and Insts total the victim-side execution cost.
	Cycles, Insts uint64
	// MaxMem is the largest per-replication memory footprint seen.
	MaxMem int
	// TrialsToSuccess digests the trial counts of successful replications.
	TrialsToSuccess Summary
	// OracleErrors counts replications lost to oracle infrastructure
	// failures (not folded into any other statistic); OracleErr is the
	// first such error by replication order.
	OracleErrors int
	OracleErr    error
	// Outcomes holds every completed replication, ascending by Rep.
	Outcomes []Outcome
}

// SuccessRate is Successes/Completed (0 when nothing completed).
func (a *Aggregate) SuccessRate() float64 {
	if a.Completed == 0 {
		return 0
	}
	return float64(a.Successes) / float64(a.Completed)
}

// DetectionRate is Detections/OracleCalls — the fraction of oracle requests
// the defence converted into a worker crash.
func (a *Aggregate) DetectionRate() float64 {
	if a.OracleCalls == 0 {
		return 0
	}
	return float64(a.Detections) / float64(a.OracleCalls)
}

// AvgCycles is the mean victim-side cost per oracle call.
func (a *Aggregate) AvgCycles() float64 {
	if a.OracleCalls == 0 {
		return 0
	}
	return float64(a.Cycles) / float64(a.OracleCalls)
}

// Run executes the campaign: cfg.Replications runs of run sharded over
// cfg.Workers goroutines. The returned aggregate is bit-identical for a
// fixed seed at any worker count.
//
// On cancellation Run returns the partial aggregate of the completed
// replications together with ctx.Err(). A runner error that is neither a
// cancellation nor an oracle infrastructure failure aborts the campaign
// and is returned with the partial aggregate.
func Run(ctx context.Context, cfg Config, run Runner) (*Aggregate, error) {
	cfg = cfg.withDefaults()
	outcomes := make([]*Outcome, cfg.Replications)
	infra := make([]error, cfg.Replications)
	poolErr := runRange(ctx, cfg, 0, cfg.Replications, cfg.Workers, run, outcomes, infra)
	return fold(cfg, outcomes, infra), poolErr
}

// runRange executes replications [lo, hi) into the outcome/infra slot
// arrays (indexed by global replication number) — the shared core of Run
// and RunShards.
func runRange(ctx context.Context, cfg Config, lo, hi, workers int, run Runner, outcomes []*Outcome, infra []error) error {
	// The running tally behind Config.Progress. Snapshots accumulate in
	// wall-clock completion order under their own lock; the deterministic
	// aggregate folded afterwards never reads from it.
	var (
		progMu sync.Mutex
		prog   Progress
	)
	tick := func(out *Outcome) {
		if cfg.Progress == nil {
			return
		}
		progMu.Lock()
		prog.Requested = hi - lo
		prog.Completed++
		if out != nil {
			if out.Success {
				prog.Successes++
			}
			prog.Trials += out.Trials
			prog.Detections += out.Detections
			prog.OracleCalls += out.OracleCalls
			prog.Cycles += out.Cycles
		}
		cfg.Progress(prog)
		progMu.Unlock()
	}

	// The pool handles cancellation and fatal-error semantics (see
	// workpool.Run); this runner only classifies: an oracle infrastructure
	// failure is accounted in its replication's infra slot — a completed
	// unit from the pool's point of view — never a fatal error.
	return workpool.RunRange(ctx, lo, hi, workers, func(ctx context.Context, rep int) error {
		out, err := run(ctx, rep, rng.NewStream(cfg.Seed, uint64(rep)))
		switch {
		case err == nil:
			out.Rep = rep
			outcomes[rep] = &out
			tick(&out)
		case attack.IsOracleErr(err):
			infra[rep] = err
			tick(nil)
		default:
			return err
		}
		return nil
	})
}

// fold collapses outcome/infra slots into the aggregate, in replication
// order. It is the single merge path: Run folds its own slots, and
// MergePartials folds slots reassembled from wire partials, so the two are
// bit-identical by construction.
func fold(cfg Config, outcomes []*Outcome, infra []error) *Aggregate {
	agg := &Aggregate{Label: cfg.Label, Requested: cfg.Replications}
	var toSuccess []float64
	for rep := 0; rep < cfg.Replications; rep++ {
		if err := infra[rep]; err != nil {
			agg.OracleErrors++
			if agg.OracleErr == nil {
				agg.OracleErr = err
			}
			continue
		}
		out := outcomes[rep]
		if out == nil {
			continue
		}
		agg.Completed++
		agg.Trials += out.Trials
		agg.Detections += out.Detections
		agg.OracleCalls += out.OracleCalls
		agg.Cycles += out.Cycles
		agg.Insts += out.Insts
		if out.Mem > agg.MaxMem {
			agg.MaxMem = out.Mem
		}
		if out.Success {
			agg.Successes++
			toSuccess = append(toSuccess, float64(out.Trials))
			if out.Verified {
				agg.VerifiedSuccesses++
			}
		}
		agg.Outcomes = append(agg.Outcomes, *out)
	}
	agg.TrialsToSuccess = summarize(toSuccess)
	return agg
}

// InfraError is the wire form of an oracle infrastructure failure: the
// replication it cost and the error text. Reconstructed errors compare
// equal by message, which is all report rendering uses.
type InfraError struct {
	Rep int    `json:"rep"`
	Err string `json:"err"`
}

// Partial carries the raw results of a replication range [Lo, Hi) — the
// per-shard aggregate a fabric worker ships back to its coordinator. It is
// deliberately unfolded: outcomes and infra errors keep their replication
// tags so MergePartials can reassemble the exact slot array Run would have
// filled, making the distributed merge bit-identical to the local one.
type Partial struct {
	Lo       int          `json:"lo"`
	Hi       int          `json:"hi"`
	Outcomes []Outcome    `json:"outcomes,omitempty"`
	Infra    []InfraError `json:"infra,omitempty"`
}

// RunShards executes only replications [lo, hi) of the campaign and
// returns their partial. cfg must be the full campaign configuration —
// replication indices keep their global meaning, so rng streams are
// identical to the single-process run. On error the partial holds
// whatever completed.
func RunShards(ctx context.Context, cfg Config, lo, hi int, run Runner) (*Partial, error) {
	cfg = cfg.withDefaults()
	if lo < 0 || hi > cfg.Replications || lo >= hi {
		return nil, fmt.Errorf("campaign: shard range [%d,%d) outside replications [0,%d)", lo, hi, cfg.Replications)
	}
	workers := cfg.Workers
	if workers > hi-lo {
		workers = hi - lo
	}
	outcomes := make([]*Outcome, cfg.Replications)
	infra := make([]error, cfg.Replications)
	poolErr := runRange(ctx, cfg, lo, hi, workers, run, outcomes, infra)

	p := &Partial{Lo: lo, Hi: hi}
	for rep := lo; rep < hi; rep++ {
		if out := outcomes[rep]; out != nil {
			p.Outcomes = append(p.Outcomes, *out)
		}
		if err := infra[rep]; err != nil {
			p.Infra = append(p.Infra, InfraError{Rep: rep, Err: err.Error()})
		}
	}
	return p, poolErr
}

// MergePartials reassembles partials into the aggregate Run would have
// produced for the same cfg. Partials may arrive in any order and may
// overlap (a lease that was reassigned after a worker loss delivers the
// same replications twice) — slots are keyed by replication index, so a
// duplicate overwrites with identical data and the merge stays
// bit-identical. Missing replications are simply absent from the
// aggregate, mirroring Run under cancellation.
func MergePartials(cfg Config, parts []*Partial) *Aggregate {
	cfg = cfg.withDefaults()
	outcomes := make([]*Outcome, cfg.Replications)
	infra := make([]error, cfg.Replications)
	for _, p := range parts {
		if p == nil {
			continue
		}
		for i := range p.Outcomes {
			out := p.Outcomes[i]
			if out.Rep >= 0 && out.Rep < cfg.Replications {
				outcomes[out.Rep] = &out
			}
		}
		for _, ie := range p.Infra {
			if ie.Rep >= 0 && ie.Rep < cfg.Replications {
				infra[ie.Rep] = errors.New(ie.Err)
			}
		}
	}
	return fold(cfg, outcomes, infra)
}
