package campaign

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/rng"
)

// statRunner is a deterministic synthetic replication: every field of the
// outcome derives from the replication's private rng stream only.
func statRunner(_ context.Context, _ int, r *rng.Source) (Outcome, error) {
	trials := 1 + int(r.Uint64()%200)
	success := r.Uint64()%4 == 0
	out := Outcome{
		Success:     success,
		Trials:      trials,
		FailedAt:    -1,
		Detections:  trials - 1,
		OracleCalls: trials,
		Cycles:      uint64(trials) * 17,
		Insts:       uint64(trials) * 5,
		Mem:         int(r.Uint64()%1000) + 100,
	}
	if !success {
		out.FailedAt = int(r.Uint64() % 8)
	}
	return out, nil
}

func TestAggregatesBitIdenticalAcrossWorkerCounts(t *testing.T) {
	var aggs []*Aggregate
	for _, workers := range []int{1, 4, 16} {
		agg, err := Run(context.Background(), Config{
			Label:        "det",
			Replications: 64,
			Workers:      workers,
			Seed:         2018,
		}, statRunner)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if agg.Completed != 64 || agg.Requested != 64 {
			t.Fatalf("workers=%d: completed %d/%d", workers, agg.Completed, agg.Requested)
		}
		aggs = append(aggs, agg)
	}
	for i := 1; i < len(aggs); i++ {
		if !reflect.DeepEqual(aggs[0], aggs[i]) {
			t.Fatalf("aggregates diverged between worker counts:\n%+v\nvs\n%+v", aggs[0], aggs[i])
		}
	}
	// Sanity on the folded statistics themselves.
	a := aggs[0]
	if a.Successes == 0 || a.Successes == a.Completed {
		t.Fatalf("degenerate success count %d/%d", a.Successes, a.Completed)
	}
	if a.TrialsToSuccess.N != a.Successes {
		t.Fatalf("summary over %d samples, want %d", a.TrialsToSuccess.N, a.Successes)
	}
	s := a.TrialsToSuccess
	if !(s.Min <= s.Median && s.Median <= s.P95 && s.P95 <= s.Max) {
		t.Fatalf("order statistics out of order: %+v", s)
	}
	if rate := a.SuccessRate(); rate <= 0 || rate >= 1 {
		t.Fatalf("success rate %f", rate)
	}
	if dr := a.DetectionRate(); dr <= 0 || dr >= 1 {
		t.Fatalf("detection rate %f", dr)
	}
	if len(a.Outcomes) != 64 {
		t.Fatalf("%d outcomes", len(a.Outcomes))
	}
	for i, out := range a.Outcomes {
		if out.Rep != i {
			t.Fatalf("outcome %d carries rep %d — not in replication order", i, out.Rep)
		}
	}
}

func TestCancellationReturnsPartialAggregates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var completed int32
	agg, err := Run(ctx, Config{Replications: 8, Workers: 4, Seed: 7},
		func(ctx context.Context, rep int, r *rng.Source) (Outcome, error) {
			if rep < 3 {
				out, _ := statRunner(ctx, rep, r)
				if atomic.AddInt32(&completed, 1) == 3 {
					cancel()
				}
				return out, nil
			}
			<-ctx.Done()
			return Outcome{}, ctx.Err()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if agg == nil {
		t.Fatal("cancellation returned no aggregate")
	}
	if agg.Completed != 3 || agg.Requested != 8 {
		t.Fatalf("partial aggregate %d/%d, want 3/8", agg.Completed, agg.Requested)
	}
	if len(agg.Outcomes) != 3 {
		t.Fatalf("%d outcomes", len(agg.Outcomes))
	}
	if agg.Trials == 0 || agg.OracleCalls == 0 {
		t.Fatal("partial aggregate lost its totals")
	}
}

func TestOracleErrorsSurfacedNotCounted(t *testing.T) {
	boom := errors.New("transport down")
	agg, err := Run(context.Background(), Config{Replications: 6, Workers: 3, Seed: 5},
		func(ctx context.Context, rep int, r *rng.Source) (Outcome, error) {
			if rep == 2 || rep == 4 {
				return Outcome{}, attack.WrapOracleErr(boom)
			}
			return statRunner(ctx, rep, r)
		})
	if err != nil {
		t.Fatal(err)
	}
	if agg.OracleErrors != 2 {
		t.Fatalf("OracleErrors = %d, want 2", agg.OracleErrors)
	}
	if !errors.Is(agg.OracleErr, boom) {
		t.Fatalf("OracleErr = %v", agg.OracleErr)
	}
	if agg.Completed != 4 {
		t.Fatalf("completed %d, want 4 (infra losses must not count)", agg.Completed)
	}
	for _, out := range agg.Outcomes {
		if out.Rep == 2 || out.Rep == 4 {
			t.Fatal("failed replication leaked into outcomes")
		}
	}
}

func TestFatalRunnerErrorAbortsCampaign(t *testing.T) {
	boom := errors.New("logic bug")
	agg, err := Run(context.Background(), Config{Replications: 32, Workers: 4, Seed: 3},
		func(ctx context.Context, rep int, r *rng.Source) (Outcome, error) {
			if rep == 1 {
				return Outcome{}, boom
			}
			return statRunner(ctx, rep, r)
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the fatal runner error", err)
	}
	if agg == nil || agg.Completed >= 32 {
		t.Fatal("fatal error did not abort the campaign")
	}
}

func TestConfigDefaultsAndSummaryEdge(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Replications != 1 || c.Workers != 1 {
		t.Fatalf("defaults %+v", c)
	}
	if s := summarize(nil); s.N != 0 || s.Max != 0 {
		t.Fatalf("empty summary %+v", s)
	}
	s := summarize([]float64{5})
	if s.N != 1 || s.Min != 5 || s.Median != 5 || s.P95 != 5 || s.Max != 5 {
		t.Fatalf("singleton summary %+v", s)
	}
	s = summarize([]float64{4, 1, 3, 2})
	if s.Min != 1 || s.Median != 2.5 || s.Max != 4 || s.P95 != 4 {
		t.Fatalf("even summary %+v", s)
	}
}

func TestRunnerInternalTimeoutDoesNotDeadlock(t *testing.T) {
	// A runner leaking its own per-trial deadline while the campaign
	// context is live must abort the campaign as a fatal error — not be
	// mistaken for campaign cancellation (which would silently drop the
	// replication and starve the feed loop).
	done := make(chan struct{})
	var agg *Aggregate
	var err error
	go func() {
		defer close(done)
		agg, err = Run(context.Background(), Config{Replications: 8, Workers: 2, Seed: 1},
			func(ctx context.Context, rep int, r *rng.Source) (Outcome, error) {
				if rep == 0 {
					return Outcome{}, context.DeadlineExceeded
				}
				return statRunner(ctx, rep, r)
			})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("campaign deadlocked on a runner-internal timeout")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the runner's leaked deadline surfaced as fatal", err)
	}
	if agg == nil || agg.Completed >= 8 {
		t.Fatalf("aggregate %+v", agg)
	}
}

func TestProgressObservesEveryReplication(t *testing.T) {
	// The progress stream is wall-clock observability: every completed
	// replication ticks it exactly once, Completed is monotone, and the
	// final snapshot agrees with the deterministic aggregate — which must
	// be bit-identical to a run without a callback.
	var snaps []Progress
	agg, err := Run(context.Background(), Config{
		Replications: 32,
		Workers:      4,
		Seed:         2018,
		Progress:     func(p Progress) { snaps = append(snaps, p) },
	}, statRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 32 {
		t.Fatalf("%d progress snapshots, want one per replication (32)", len(snaps))
	}
	for i, p := range snaps {
		if p.Completed != i+1 || p.Requested != 32 {
			t.Fatalf("snapshot %d: %+v — Completed must be monotone", i, p)
		}
	}
	last := snaps[len(snaps)-1]
	if last.Successes != agg.Successes || last.Trials != agg.Trials ||
		last.Detections != agg.Detections || last.OracleCalls != agg.OracleCalls ||
		last.Cycles != agg.Cycles {
		t.Fatalf("final snapshot %+v disagrees with aggregate %+v", last, agg)
	}
	silent, err := Run(context.Background(), Config{Replications: 32, Workers: 4, Seed: 2018}, statRunner)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(agg, silent) {
		t.Fatal("attaching a progress callback changed the deterministic aggregate")
	}
}
