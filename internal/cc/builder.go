package cc

import (
	"fmt"

	"repro/internal/isa"
)

// Builder accumulates one function's instructions with intra-function label
// patching and inter-function call fixups. Passes and the statement lowerer
// both emit through it.
type Builder struct {
	insts  []isa.Inst
	fixups []Fixup

	labels    map[int]int // label id -> instruction index
	labelRefs []labelRef
	nextLabel int
}

// Fixup records a call whose displacement must be resolved at link time.
type Fixup struct {
	// InstIndex is the index of the CALL instruction within the function.
	InstIndex int
	// Symbol is the callee name.
	Symbol string
}

type labelRef struct {
	instIndex int
	label     int
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[int]int)}
}

// Emit appends an instruction.
func (b *Builder) Emit(in isa.Inst) { b.insts = append(b.insts, in) }

// Call appends a CALL with a symbolic target recorded as a fixup.
func (b *Builder) Call(symbol string) {
	b.fixups = append(b.fixups, Fixup{InstIndex: len(b.insts), Symbol: symbol})
	b.Emit(isa.Inst{Op: isa.CALL})
}

// Label allocates a fresh unbound label.
func (b *Builder) Label() int {
	id := b.nextLabel
	b.nextLabel++
	return id
}

// Bind attaches the label to the next emitted instruction.
func (b *Builder) Bind(label int) {
	if _, dup := b.labels[label]; dup {
		panic(fmt.Sprintf("cc: label %d bound twice", label))
	}
	b.labels[label] = len(b.insts)
}

// Jump appends a branch (JMP/JE/JNE) to the label.
func (b *Builder) Jump(op isa.Op, label int) {
	b.labelRefs = append(b.labelRefs, labelRef{instIndex: len(b.insts), label: label})
	b.Emit(isa.Inst{Op: op})
}

// Finalize patches label displacements and returns the function fragment.
func (b *Builder) Finalize() (*Fragment, error) {
	offsets := make([]int, len(b.insts)+1)
	for i, in := range b.insts {
		offsets[i+1] = offsets[i] + in.Len()
	}
	for _, ref := range b.labelRefs {
		idx, ok := b.labels[ref.label]
		if !ok {
			return nil, fmt.Errorf("cc: unbound label %d", ref.label)
		}
		// Branch displacement is relative to the next instruction.
		b.insts[ref.instIndex].Disp = int32(offsets[idx] - offsets[ref.instIndex+1])
	}
	return &Fragment{Insts: b.insts, Fixups: b.fixups, Size: offsets[len(b.insts)]}, nil
}

// Fragment is one compiled function before linking.
type Fragment struct {
	Name   string
	Insts  []isa.Inst
	Fixups []Fixup
	Size   int
}
