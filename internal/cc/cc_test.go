package cc

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/binfmt"
	"repro/internal/core"
	"repro/internal/kernel"
)

// trivialProg is a main that does a little arithmetic and returns.
func trivialProg() *Program {
	return &Program{
		Name: "trivial",
		Funcs: []*Func{{
			Name:   "main",
			Locals: []Local{{Name: "x", Size: 8}},
			Body: []Stmt{
				SetConst{Dst: "x", Value: 5},
				Loop{Count: 3, Body: []Stmt{
					Compute{Ops: 4},
				}},
				Return{},
			},
		}},
	}
}

// vulnServer is the canonical vulnerable fork server: main -> outer -> serve,
// where serve loops on accept and reads the request into a 16-byte stack
// buffer using the request length as the read size (the overflow).
// outer also has a protected buffer, so the child returns through two
// inherited protected frames.
func vulnServer() *Program {
	return &Program{
		Name: "vulnserver",
		Funcs: []*Func{
			{
				Name:   "main",
				Locals: []Local{{Name: "r", Size: 8}},
				Body:   []Stmt{Call{Callee: "outer"}, Return{}},
			},
			{
				Name:   "outer",
				Locals: []Local{{Name: "pad", Size: 16, IsBuffer: true}},
				Body:   []Stmt{Call{Callee: "serve"}},
			},
			{
				Name: "serve",
				Locals: []Local{
					{Name: "buf", Size: 16, IsBuffer: true},
					{Name: "n", Size: 8},
				},
				Body: []Stmt{
					Accept{Dst: "n"},
					While{Var: "n", Body: []Stmt{
						ReadInput{Buf: "buf", LenVar: "n"},
						WriteOutput{Src: "buf", Len: 4},
						Accept{Dst: "n"},
					}},
				},
			},
		},
	}
}

// buildServer compiles vulnServer statically under the scheme.
func buildServer(t *testing.T, scheme core.Scheme) *binfmt.Binary {
	t.Helper()
	bin, err := Compile(vulnServer(), Options{Scheme: scheme, Linkage: abi.LinkStatic})
	if err != nil {
		t.Fatalf("compile %v: %v", scheme, err)
	}
	return bin
}

func startServer(t *testing.T, seed uint64, scheme core.Scheme) (*kernel.Kernel, *kernel.ForkServer) {
	t.Helper()
	k := kernel.New(seed)
	srv, err := kernel.NewForkServer(k, buildServer(t, scheme), kernel.SpawnOpts{})
	if err != nil {
		t.Fatalf("server %v: %v", scheme, err)
	}
	return k, srv
}

// protectedSchemes are the schemes expected to detect the stock overflow.
var protectedSchemes = []core.Scheme{
	core.SchemeSSP, core.SchemeDynaGuard, core.SchemeDCR,
	core.SchemePSSP, core.SchemePSSPNT, core.SchemePSSPLV,
	core.SchemePSSPOWF, core.SchemePSSPGB,
}

func TestTrivialProgramRunsUnderEveryScheme(t *testing.T) {
	for _, s := range core.Schemes() {
		t.Run(s.String(), func(t *testing.T) {
			bin, err := Compile(trivialProg(), Options{Scheme: s, Linkage: abi.LinkStatic})
			if err != nil {
				t.Fatal(err)
			}
			k := kernel.New(42)
			p, err := k.Spawn(bin, kernel.SpawnOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if st := k.Run(p); st != kernel.StateExited {
				t.Fatalf("state %s (%s)", st, p.CrashReason)
			}
		})
	}
}

func TestBenignRequestAcrossForkEveryScheme(t *testing.T) {
	// Correctness: the child must return through frames created by the
	// parent (outer, serve) without false positives — for every scheme
	// except RAF-SSP, whose failure is asserted separately.
	for _, s := range protectedSchemes {
		t.Run(s.String(), func(t *testing.T) {
			_, srv := startServer(t, 7, s)
			for i := 0; i < 5; i++ {
				out, err := srv.Handle([]byte("ping"))
				if err != nil {
					t.Fatal(err)
				}
				if out.Crashed {
					t.Fatalf("request %d: false positive: %s", i, out.CrashReason)
				}
				if !bytes.Equal(out.Response, []byte("ping")) {
					t.Fatalf("response %q", out.Response)
				}
			}
		})
	}
}

func TestRAFSSPFalsePositiveAcrossFork(t *testing.T) {
	_, srv := startServer(t, 8, core.SchemeRAFSSP)
	out, err := srv.Handle([]byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Crashed {
		t.Fatal("RAF-SSP did not break on inherited frames (Table I expects it to)")
	}
}

func TestOverflowDetectedEveryProtectedScheme(t *testing.T) {
	for _, s := range protectedSchemes {
		t.Run(s.String(), func(t *testing.T) {
			_, srv := startServer(t, 9, s)
			// 24 bytes: fills the 16-byte buffer and fully overwrites the
			// adjacent canary word. Two fills so at least one mismatches any
			// canary value.
			crashed := false
			for _, fill := range []byte{0x00, 0xff} {
				out, err := srv.Handle(bytes.Repeat([]byte{fill}, 24))
				if err != nil {
					t.Fatal(err)
				}
				crashed = crashed || out.Crashed
			}
			if !crashed {
				t.Fatal("overflow went undetected")
			}
		})
	}
}

func TestDCRLowBitsUndetected(t *testing.T) {
	// The DCR baseline trades canary entropy for traceability: the low 16
	// bits embed the list offset and are not covered by the epilogue check.
	// A one-byte overflow therefore goes undetected — part of why the paper
	// prefers P-SSP's approach.
	_, srv := startServer(t, 9, core.SchemeDCR)
	payload := bytes.Repeat([]byte{0x5a}, 17) // corrupts only delta byte 0
	out, err := srv.Handle(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Crashed && strings.Contains(out.CrashReason, "stack smashing") {
		t.Fatal("DCR detected low-bit corruption; the modeled entropy drop should hide it")
	}
}

func TestOverflowUndetectedWithoutProtection(t *testing.T) {
	_, srv := startServer(t, 10, core.SchemeNone)
	payload := bytes.Repeat([]byte{'A'}, 17)
	out, err := srv.Handle(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Crashed && strings.Contains(out.CrashReason, "stack smashing") {
		t.Fatal("unprotected binary reported a canary abort")
	}
}

func TestFullCanaryOverwriteDefeatsSSPButNotPSSP(t *testing.T) {
	// An attacker knowing the TLS canary C can beat SSP (stack canary == C)
	// but not P-SSP: the stack pair is (C0, C1) with fresh C0 per fork, so
	// writing C||C at the pair's slots fails the XOR check.
	_, sspSrv := startServer(t, 11, core.SchemeSSP)
	c, err := sspSrv.Parent().TLS().Canary()
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 24)
	for i := 0; i < 16; i++ {
		payload[i] = 'A'
	}
	for i := 0; i < 8; i++ {
		payload[16+i] = byte(c >> (8 * i))
	}
	out, err := sspSrv.Handle(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Crashed {
		t.Fatalf("SSP: correct canary overwrite crashed: %s", out.CrashReason)
	}

	_, psspSrv := startServer(t, 11, core.SchemePSSP)
	c2, err := psspSrv.Parent().TLS().Canary()
	if err != nil {
		t.Fatal(err)
	}
	// Write C2 into both pair slots: C2^C2 = 0 != C2 (C2 != 0 here).
	payload2 := make([]byte, 32)
	for i := 0; i < 16; i++ {
		payload2[i] = 'A'
	}
	for i := 0; i < 8; i++ {
		payload2[16+i] = byte(c2 >> (8 * i))
		payload2[24+i] = byte(c2 >> (8 * i))
	}
	out2, err := psspSrv.Handle(payload2)
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Crashed {
		t.Fatal("P-SSP: knowing C alone sufficed to beat the pair check")
	}
}

func TestPSSPStackPairChangesPerFork(t *testing.T) {
	// The polymorphism itself: two children of the same parent see different
	// shadow pairs while C stays fixed.
	k, srv := startServer(t, 12, core.SchemePSSP)
	a, err := k.Fork(srv.Parent())
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.Fork(srv.Parent())
	if err != nil {
		t.Fatal(err)
	}
	ca, _ := a.TLS().Canary()
	cb, _ := b.TLS().Canary()
	a0, a1, _ := a.TLS().Shadow()
	b0, b1, _ := b.TLS().Shadow()
	if ca != cb {
		t.Fatal("TLS canary differs between siblings")
	}
	if a0 == b0 && a1 == b1 {
		t.Fatal("shadow pair identical between siblings — not polymorphic")
	}
	if !core.Check(a0, a1, ca) || !core.Check(b0, b1, cb) {
		t.Fatal("sibling shadow pair inconsistent")
	}
}

func TestDynamicLinkageAndCompatibilityMatrix(t *testing.T) {
	// §VI-C: app and libc compiled with different schemes must interoperate
	// with no false positives across fork. The app's serve calls libc_echo,
	// which has its own protected frame in the libc image.
	prog := vulnServer()
	prog.Funcs[2].Body = []Stmt{
		Accept{Dst: "n"},
		While{Var: "n", Body: []Stmt{
			Call{Callee: "libc_echo"},
			Accept{Dst: "n"},
		}},
	}
	schemes := []core.Scheme{core.SchemeSSP, core.SchemePSSP}
	for _, appS := range schemes {
		for _, libcS := range schemes {
			t.Run(appS.String()+"+libc_"+libcS.String(), func(t *testing.T) {
				libc, err := BuildLibc(libcS)
				if err != nil {
					t.Fatal(err)
				}
				bin, err := Compile(prog, Options{Scheme: appS, Libc: libc})
				if err != nil {
					t.Fatal(err)
				}
				k := kernel.New(13)
				// Preload follows the app's scheme, as LD_PRELOAD would.
				srv, err := kernel.NewForkServer(k, bin, kernel.SpawnOpts{Libc: libc, Preload: appS})
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 5; i++ {
					out, err := srv.Handle([]byte("compat!!"))
					if err != nil {
						t.Fatal(err)
					}
					if out.Crashed {
						t.Fatalf("request %d: false positive: %s", i, out.CrashReason)
					}
					if !bytes.Equal(out.Response, []byte("compat!!")) {
						t.Fatalf("response %q", out.Response)
					}
				}
			})
		}
	}
}

func TestLVGuardsCriticalVariable(t *testing.T) {
	// A 24-byte overflow (buffer + one word) corrupts the guard canary that
	// sits between the buffer and the critical variable — LV detects what
	// plain SSP would miss until the frame canary is reached.
	prog := &Program{
		Name: "lvserver",
		Funcs: []*Func{
			{Name: "main", Body: []Stmt{Call{Callee: "serve"}}},
			{
				Name: "serve",
				Locals: []Local{
					{Name: "secret", Size: 8, Critical: true},
					{Name: "buf", Size: 16, IsBuffer: true},
					{Name: "n", Size: 8},
				},
				Body: []Stmt{
					Accept{Dst: "n"},
					While{Var: "n", Body: []Stmt{
						ReadInput{Buf: "buf", LenVar: "n"},
						WriteOutput{Src: "buf", Len: 4},
						Accept{Dst: "n"},
					}},
				},
			},
		},
	}
	lvBin, err := Compile(prog, Options{Scheme: core.SchemePSSPLV, Linkage: abi.LinkStatic})
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(14)
	srv, err := kernel.NewForkServer(k, lvBin, kernel.SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Benign first.
	out, err := srv.Handle([]byte("ok"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Crashed {
		t.Fatalf("benign LV request crashed: %s", out.CrashReason)
	}
	// Guard-corrupting overflow: 16 buffer bytes + 8 bytes over the guard.
	crashed := false
	for _, tail := range []byte{0x00, 0xff} {
		payload := bytes.Repeat([]byte{tail}, 24)
		out, err := srv.Handle(payload)
		if err != nil {
			t.Fatal(err)
		}
		crashed = crashed || out.Crashed
	}
	if !crashed {
		t.Fatal("LV did not detect guard corruption")
	}

	// Control: the same layout under plain SSP lets the overflow reach the
	// critical variable without touching the frame canary... but SSP does
	// not place a guard, so a 17-byte overflow immediately hits data the
	// attacker wants (undetectable if they stop short of the canary). We
	// assert the LV frame is larger, i.e. the guard really exists.
	lvPassI, err := PassFor(core.SchemePSSPLV)
	if err != nil {
		t.Fatal(err)
	}
	sspPassI, err := PassFor(core.SchemeSSP)
	if err != nil {
		t.Fatal(err)
	}
	lvFI, err := layoutFrame(prog.Funcs[1], lvPassI)
	if err != nil {
		t.Fatal(err)
	}
	sspFI, err := layoutFrame(prog.Funcs[1], sspPassI)
	if err != nil {
		t.Fatal(err)
	}
	if len(lvFI.GuardSlots) != 1 {
		t.Fatalf("LV guard slots = %d, want 1", len(lvFI.GuardSlots))
	}
	if len(sspFI.GuardSlots) != 0 {
		t.Fatal("SSP layout placed guard slots")
	}
	// The guard must sit strictly between the buffer (below) and the
	// critical variable (above) so an overflow crosses it first.
	guard := lvFI.GuardSlots[0]
	if !(lvFI.LocalOff["buf"] < guard && guard < lvFI.LocalOff["secret"]) {
		t.Fatalf("guard at %d not between buf %d and secret %d",
			guard, lvFI.LocalOff["buf"], lvFI.LocalOff["secret"])
	}
}

func TestStaticVsDynamicCodeSize(t *testing.T) {
	// Table II precondition: a static binary embeds libc and is bigger.
	dynLibc, err := BuildLibc(core.SchemeSSP)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Compile(vulnServer(), Options{Scheme: core.SchemeSSP, Libc: dynLibc})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Compile(vulnServer(), Options{Scheme: core.SchemeSSP, Linkage: abi.LinkStatic})
	if err != nil {
		t.Fatal(err)
	}
	if st.CodeSize() <= dyn.CodeSize() {
		t.Fatalf("static %d <= dynamic %d", st.CodeSize(), dyn.CodeSize())
	}
}

func TestPSSPBinaryLargerThanSSP(t *testing.T) {
	// Table II: compiler-based P-SSP expands code slightly (~0.27%).
	ssp := buildServer(t, core.SchemeSSP)
	pssp := buildServer(t, core.SchemePSSP)
	if pssp.CodeSize() <= ssp.CodeSize() {
		t.Fatalf("p-ssp code %d <= ssp code %d", pssp.CodeSize(), ssp.CodeSize())
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		prog *Program
	}{
		{"no main", &Program{Name: "x", Funcs: []*Func{{Name: "f"}}}},
		{"no name", &Program{Funcs: []*Func{{Name: "main"}}}},
		{"dup func", &Program{Name: "x", Funcs: []*Func{{Name: "main"}, {Name: "main"}}}},
		{"reserved name", &Program{Name: "x", Funcs: []*Func{{Name: "main"}, {Name: "_start"}}}},
		{"unknown callee", &Program{Name: "x", Funcs: []*Func{{Name: "main", Body: []Stmt{Call{Callee: "ghost"}}}}}},
		{"unknown local", &Program{Name: "x", Funcs: []*Func{{Name: "main", Body: []Stmt{SetConst{Dst: "nope"}}}}}},
		{"dup local", &Program{Name: "x", Funcs: []*Func{{Name: "main", Locals: []Local{{Name: "a", Size: 8}, {Name: "a", Size: 8}}}}}},
		{"bad global", &Program{Name: "x", Globals: []Global{{Name: "", Size: 8}}, Funcs: []*Func{{Name: "main"}}}},
		{"neg loop", &Program{Name: "x", Funcs: []*Func{{Name: "main", Body: []Stmt{Loop{Count: -1}}}}}},
		{"read no len", &Program{Name: "x", Funcs: []*Func{{Name: "main",
			Locals: []Local{{Name: "b", Size: 8, IsBuffer: true}},
			Body:   []Stmt{ReadInput{Buf: "b"}}}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Compile(c.prog, Options{Scheme: core.SchemeSSP, Linkage: abi.LinkStatic}); err == nil {
				t.Fatal("compile succeeded, want error")
			}
		})
	}
}

func TestDynamicWithoutLibcFails(t *testing.T) {
	if _, err := Compile(trivialProg(), Options{Scheme: core.SchemeSSP}); err == nil {
		t.Fatal("dynamic compile without libc succeeded")
	}
}

func TestGlobalsRoundTrip(t *testing.T) {
	prog := &Program{
		Name:    "globals",
		Globals: []Global{{Name: "g", Size: 8}},
		Funcs: []*Func{{
			Name:   "main",
			Locals: []Local{{Name: "x", Size: 8}, {Name: "y", Size: 8}},
			Body: []Stmt{
				SetConst{Dst: "x", Value: 1234},
				StoreGlobal{Global: "g", Src: "x"},
				LoadGlobal{Dst: "y", Global: "g"},
				// Exit code = y via a write so we can observe it:
				WriteOutput{Src: "y", Len: 8},
			},
		}},
	}
	bin, err := Compile(prog, Options{Scheme: core.SchemeNone, Linkage: abi.LinkStatic})
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(15)
	p, err := k.Spawn(bin, kernel.SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if st := k.Run(p); st != kernel.StateExited {
		t.Fatalf("state %s (%s)", st, p.CrashReason)
	}
	if len(p.Stdout) != 8 || p.Stdout[0] != 0xd2 || p.Stdout[1] != 0x04 {
		t.Fatalf("stdout %v, want little-endian 1234", p.Stdout)
	}
}

func TestNestedControlFlow(t *testing.T) {
	prog := &Program{
		Name: "nest",
		Funcs: []*Func{{
			Name:   "main",
			Locals: []Local{{Name: "acc", Size: 8}, {Name: "one", Size: 8}, {Name: "i", Size: 8}},
			Body: []Stmt{
				SetConst{Dst: "acc", Value: 0},
				SetConst{Dst: "one", Value: 1},
				Loop{Count: 4, Body: []Stmt{
					Loop{Count: 3, Body: []Stmt{
						BinOp{Dst: "acc", Src: "one", Op: OpAdd},
					}},
				}},
				If{Var: "acc", Body: []Stmt{
					BinOp{Dst: "acc", Src: "one", Op: OpAdd},
				}},
				WriteOutput{Src: "acc", Len: 1},
			},
		}},
	}
	bin, err := Compile(prog, Options{Scheme: core.SchemeNone, Linkage: abi.LinkStatic})
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(16)
	p, err := k.Spawn(bin, kernel.SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if st := k.Run(p); st != kernel.StateExited {
		t.Fatalf("state %s (%s)", st, p.CrashReason)
	}
	// 4*3 additions + 1 from the If = 13.
	if len(p.Stdout) != 1 || p.Stdout[0] != 13 {
		t.Fatalf("stdout %v, want [13]", p.Stdout)
	}
}

func TestSchemeMetadataStamped(t *testing.T) {
	bin := buildServer(t, core.SchemePSSPNT)
	if bin.Meta[abi.MetaScheme] != "p-ssp-nt" {
		t.Fatalf("meta scheme %q", bin.Meta[abi.MetaScheme])
	}
	if bin.Meta[abi.MetaLinkage] != abi.LinkStatic {
		t.Fatalf("meta linkage %q", bin.Meta[abi.MetaLinkage])
	}
}
