package cc

import (
	"fmt"

	"repro/internal/abi"
	"repro/internal/isa"
	"repro/internal/mem"
)

// fnCtx carries per-function lowering state.
type fnCtx struct {
	fi       *FrameInfo
	b        *Builder
	globals  map[string]uint64 // global name -> absolute address
	epilogue int               // label of the common function exit
	nextTemp int

	// writeCheck, when non-nil, is emitted after every buffer-writing
	// statement (the §V-E2 check-on-write option).
	writeCheck func()
}

// localDisp returns the rbp displacement of a local.
func (c *fnCtx) localDisp(name string) int32 {
	off, ok := c.fi.LocalOff[name]
	if !ok {
		panic(fmt.Sprintf("cc: unresolved local %q (validator should have caught this)", name))
	}
	return int32(off)
}

// takeTemp allocates the next loop-temporary slot.
func (c *fnCtx) takeTemp() int32 {
	if c.nextTemp >= len(c.fi.TempOff) {
		panic("cc: loop temp underallocated (countLoops mismatch)")
	}
	off := c.fi.TempOff[c.nextTemp]
	c.nextTemp++
	return int32(off)
}

// compileFunc lowers one function under the pass. checkOnWrite additionally
// emits the pass's canary inspection after every buffer-writing statement,
// for passes that support it.
func compileFunc(f *Func, pass Pass, globals map[string]uint64, checkOnWrite bool) (*Fragment, error) {
	fi, err := layoutFrame(f, pass)
	if err != nil {
		return nil, err
	}
	b := NewBuilder()
	ctx := &fnCtx{fi: fi, b: b, globals: globals, epilogue: b.Label()}
	if wc, ok := pass.(WriteChecker); ok && checkOnWrite && fi.Protected {
		ctx.writeCheck = func() { wc.WriteCheck(fi, b) }
	}

	// Frame setup: push %rbp ; mov %rsp, %rbp ; sub $frame, %rsp.
	b.Emit(isa.Inst{Op: isa.PUSH, R1: isa.RBP})
	b.Emit(isa.Inst{Op: isa.MOVRR, R1: isa.RBP, R2: isa.RSP})
	if fi.FrameSize > 0 {
		b.Emit(isa.Inst{Op: isa.SUBRI, R1: isa.RSP, Imm: int64(fi.FrameSize)})
	}
	if fi.Protected {
		pass.Prologue(fi, b)
	}

	if err := ctx.lowerStmts(f.Body); err != nil {
		return nil, fmt.Errorf("cc: %s: %w", f.Name, err)
	}

	b.Bind(ctx.epilogue)
	if fi.Protected {
		pass.Epilogue(fi, b)
	}
	b.Emit(isa.Inst{Op: isa.LEAVE})
	b.Emit(isa.Inst{Op: isa.RET})

	frag, err := b.Finalize()
	if err != nil {
		return nil, fmt.Errorf("cc: %s: %w", f.Name, err)
	}
	frag.Name = f.Name
	return frag, nil
}

func (c *fnCtx) lowerStmts(body []Stmt) error {
	for _, s := range body {
		if err := c.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *fnCtx) lowerStmt(s Stmt) error {
	b := c.b
	switch s := s.(type) {
	case SetConst:
		b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.RAX, Imm: s.Value})
		b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: c.localDisp(s.Dst)})

	case Copy:
		b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RAX, Base: isa.RBP, Disp: c.localDisp(s.Src)})
		b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: c.localDisp(s.Dst)})

	case BinOp:
		b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RAX, Base: isa.RBP, Disp: c.localDisp(s.Dst)})
		b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.R10, Base: isa.RBP, Disp: c.localDisp(s.Src)})
		var op isa.Op
		switch s.Op {
		case OpAdd:
			op = isa.ADDRR
		case OpSub:
			op = isa.SUBRR
		case OpXor:
			op = isa.XORRR
		case OpAnd:
			op = isa.ANDRR
		case OpOr:
			op = isa.ORRR
		default:
			return fmt.Errorf("bad arith op %d", s.Op)
		}
		b.Emit(isa.Inst{Op: op, R1: isa.RAX, R2: isa.R10})
		b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: c.localDisp(s.Dst)})

	case Compute:
		// A dependent ALU chain on rax — cheap, realistic filler work.
		for i := 0; i < s.Ops; i++ {
			switch i % 3 {
			case 0:
				b.Emit(isa.Inst{Op: isa.ADDRI, R1: isa.RAX, Imm: int64(i + 1)})
			case 1:
				b.Emit(isa.Inst{Op: isa.SHLRI, R1: isa.RAX, Imm: 1})
			default:
				b.Emit(isa.Inst{Op: isa.XORRR, R1: isa.RAX, R2: isa.RAX})
			}
		}

	case Loop:
		tmp := c.takeTemp()
		top, end := b.Label(), b.Label()
		b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.RAX, Imm: int64(s.Count)})
		b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: tmp})
		b.Bind(top)
		b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RAX, Base: isa.RBP, Disp: tmp})
		b.Emit(isa.Inst{Op: isa.CMPRI, R1: isa.RAX, Imm: 0})
		b.Jump(isa.JE, end)
		b.Emit(isa.Inst{Op: isa.SUBRI, R1: isa.RAX, Imm: 1})
		b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: tmp})
		if err := c.lowerStmts(s.Body); err != nil {
			return err
		}
		b.Jump(isa.JMP, top)
		b.Bind(end)

	case While:
		top, end := b.Label(), b.Label()
		b.Bind(top)
		b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RAX, Base: isa.RBP, Disp: c.localDisp(s.Var)})
		b.Emit(isa.Inst{Op: isa.CMPRI, R1: isa.RAX, Imm: 0})
		b.Jump(isa.JE, end)
		if err := c.lowerStmts(s.Body); err != nil {
			return err
		}
		b.Jump(isa.JMP, top)
		b.Bind(end)

	case If:
		end := b.Label()
		b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RAX, Base: isa.RBP, Disp: c.localDisp(s.Var)})
		b.Emit(isa.Inst{Op: isa.CMPRI, R1: isa.RAX, Imm: 0})
		b.Jump(isa.JE, end)
		if err := c.lowerStmts(s.Body); err != nil {
			return err
		}
		b.Bind(end)

	case Call:
		b.Call(s.Callee)

	case Accept:
		b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.RAX, Imm: abi.SysAccept})
		b.Emit(isa.Inst{Op: isa.SYSCALL})
		b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: c.localDisp(s.Dst)})

	case ReadInput:
		if s.LenVar != "" {
			b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RDX, Base: isa.RBP, Disp: c.localDisp(s.LenVar)})
		} else {
			b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.RDX, Imm: int64(s.MaxLen)})
		}
		b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.RDI, Imm: 0})
		b.Emit(isa.Inst{Op: isa.LEA, R1: isa.RSI, Base: isa.RBP, Disp: c.localDisp(s.Buf)})
		b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.RAX, Imm: abi.SysRead})
		b.Emit(isa.Inst{Op: isa.SYSCALL})
		if c.writeCheck != nil {
			c.writeCheck()
		}

	case WriteOutput:
		b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.RDX, Imm: int64(s.Len)})
		b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.RDI, Imm: 1})
		b.Emit(isa.Inst{Op: isa.LEA, R1: isa.RSI, Base: isa.RBP, Disp: c.localDisp(s.Src)})
		b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.RAX, Imm: abi.SysWrite})
		b.Emit(isa.Inst{Op: isa.SYSCALL})

	case LoadGlobal:
		addr, ok := c.globals[s.Global]
		if !ok {
			return fmt.Errorf("unresolved global %q", s.Global)
		}
		b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.R10, Imm: int64(addr)})
		b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RAX, Base: isa.R10, Disp: 0})
		b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: c.localDisp(s.Dst)})

	case StoreGlobal:
		addr, ok := c.globals[s.Global]
		if !ok {
			return fmt.Errorf("unresolved global %q", s.Global)
		}
		b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RAX, Base: isa.RBP, Disp: c.localDisp(s.Src)})
		b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.R10, Imm: int64(addr)})
		b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RAX, Base: isa.R10, Disp: 0})

	case Return:
		b.Jump(isa.JMP, c.epilogue)

	default:
		return fmt.Errorf("unknown statement type %T", s)
	}
	return nil
}

// startFragment builds the crt0-style _start: call main, then exit(rax).
func startFragment() *Fragment {
	b := NewBuilder()
	b.Call("main")
	b.Emit(isa.Inst{Op: isa.MOVRR, R1: isa.RDI, R2: isa.RAX})
	b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.RAX, Imm: abi.SysExit})
	b.Emit(isa.Inst{Op: isa.SYSCALL})
	frag, err := b.Finalize()
	if err != nil {
		panic("cc: _start fragment: " + err.Error())
	}
	frag.Name = "_start"
	return frag
}

// threadExitFragment builds __thread_exit, the trampoline a spawned thread
// returns into when its entry function finishes — the pthread_exit analog.
// The kernel pushes its address as the thread's initial return address.
func threadExitFragment() *Fragment {
	b := NewBuilder()
	b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.RDI, Imm: 0})
	b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.RAX, Imm: abi.SysExit})
	b.Emit(isa.Inst{Op: isa.SYSCALL})
	frag, err := b.Finalize()
	if err != nil {
		panic("cc: __thread_exit fragment: " + err.Error())
	}
	frag.Name = "__thread_exit"
	return frag
}

// assignGlobals lays out program globals after the reserved runtime area.
func assignGlobals(prog *Program) map[string]uint64 {
	out := make(map[string]uint64, len(prog.Globals))
	addr := mem.DataBase + abi.GlobalsOff
	for _, g := range prog.Globals {
		out[g.Name] = addr
		addr += uint64(roundUp8(g.Size))
	}
	return out
}
