package cc

import (
	"fmt"

	"repro/internal/abi"
	"repro/internal/binfmt"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Options configures a compilation.
type Options struct {
	// Scheme selects the protection pass.
	Scheme core.Scheme
	// Linkage is abi.LinkDynamic (default) or abi.LinkStatic.
	Linkage string
	// Libc is the shared-library image externs are resolved against for
	// dynamic linkage (build one with BuildLibc).
	Libc *binfmt.Binary
	// LibcScheme selects the pass for the embedded libc under static
	// linkage; zero means "same as Scheme".
	LibcScheme core.Scheme
	// CheckOnWrite makes write-checking passes (P-SSP-LV) inspect their
	// canaries right after each buffer-writing statement, in addition to the
	// epilogue — the paper's §V-E2 early-detection option.
	CheckOnWrite bool
}

// Compile lowers the program under the selected protection pass and links it
// into a loadable binary.
func Compile(prog *Program, opts Options) (*binfmt.Binary, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	pass, err := PassFor(opts.Scheme)
	if err != nil {
		return nil, err
	}
	linkage := opts.Linkage
	if linkage == "" {
		linkage = abi.LinkDynamic
	}

	globals := assignGlobals(prog)
	frags := make([]*Fragment, 0, len(prog.Funcs)+4)
	for _, f := range prog.Funcs {
		frag, err := compileFunc(f, pass, globals, opts.CheckOnWrite)
		if err != nil {
			return nil, err
		}
		frags = append(frags, frag)
	}
	frags = append(frags, startFragment(), threadExitFragment())

	externs := map[string]uint64{}
	switch linkage {
	case abi.LinkDynamic:
		if opts.Libc == nil {
			return nil, fmt.Errorf("cc: dynamic linkage needs a libc image")
		}
		for _, sym := range opts.Libc.Funcs() {
			externs[sym.Name] = sym.Addr
		}
	case abi.LinkStatic:
		libcScheme := opts.LibcScheme
		if libcScheme == 0 {
			libcScheme = opts.Scheme
		}
		libcFrags, err := libcFragments(libcScheme)
		if err != nil {
			return nil, err
		}
		frags = append(frags, libcFrags...)
	default:
		return nil, fmt.Errorf("cc: unknown linkage %q", linkage)
	}

	code, syms, err := link(frags, mem.TextBase, externs)
	if err != nil {
		return nil, err
	}

	b := binfmt.New()
	b.AddSection(".text", mem.TextBase, mem.PermRead|mem.PermExec, code)
	b.AddSection(".data", mem.DataBase, mem.PermRead|mem.PermWrite, make([]byte, abi.DataSize))
	for _, s := range syms {
		b.AddSymbol(s)
	}
	for name, addr := range globals {
		b.AddSymbol(binfmt.Symbol{Name: name, Addr: addr, Size: 8, Kind: binfmt.SymObject})
	}
	start, ok := b.Symbol("_start")
	if !ok {
		return nil, fmt.Errorf("cc: linked binary has no _start")
	}
	b.Entry = start.Addr
	b.Meta[abi.MetaScheme] = opts.Scheme.String()
	b.Meta[abi.MetaLinkage] = linkage
	b.Meta[abi.MetaKind] = "app"
	b.Meta["name"] = prog.Name
	return b, nil
}

// link places fragments sequentially from base, resolves call fixups against
// the fragments themselves plus externs, and encodes the final code bytes.
func link(frags []*Fragment, base uint64, externs map[string]uint64) ([]byte, []binfmt.Symbol, error) {
	addrs := make(map[string]uint64, len(frags)+len(externs))
	for name, a := range externs {
		addrs[name] = a
	}
	var syms []binfmt.Symbol
	addr := base
	for _, f := range frags {
		if _, dup := addrs[f.Name]; dup {
			return nil, nil, fmt.Errorf("cc: link: duplicate symbol %q", f.Name)
		}
		addrs[f.Name] = addr
		syms = append(syms, binfmt.Symbol{Name: f.Name, Addr: addr, Size: uint64(f.Size), Kind: binfmt.SymFunc})
		addr += uint64(f.Size)
	}

	code := make([]byte, 0, int(addr-base))
	for _, f := range frags {
		fragBase := addrs[f.Name]
		// Per-instruction offsets for fixup patching.
		off := 0
		fixupAt := make(map[int]string, len(f.Fixups))
		for _, fx := range f.Fixups {
			fixupAt[fx.InstIndex] = fx.Symbol
		}
		for i := range f.Insts {
			in := f.Insts[i]
			if sym, ok := fixupAt[i]; ok {
				target, found := addrs[sym]
				if !found {
					return nil, nil, fmt.Errorf("cc: link: undefined symbol %q called from %s", sym, f.Name)
				}
				next := fragBase + uint64(off) + uint64(in.Len())
				in.Disp = int32(int64(target) - int64(next))
			}
			code = isa.Encode(code, in)
			off += in.Len()
		}
	}
	return code, syms, nil
}
