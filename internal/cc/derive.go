package cc

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/abi"
	"repro/internal/binfmt"
	"repro/internal/isa"
	"repro/internal/store"
)

// PassVersion identifies the compiler's codegen + protection-pass pipeline.
// It is part of the artifact store's derivation key: any change that alters
// emitted code for the same (program, options) — a new lowering, a changed
// prologue sequence, a different frame layout — must bump it so stale cached
// images miss cleanly.
const PassVersion = 1

// ToolchainVersion names every code-affecting component version in one
// string — the "ISA/encoder version" field of the store's derivation key.
func ToolchainVersion() string {
	return fmt.Sprintf("cc=%d isa=%d binfmt=%d", PassVersion, isa.EncodingVersion, binfmt.Version)
}

// deriveWriter builds the canonical byte encodings below. Every variable-
// length field is length-prefixed and every list is emitted in declaration
// order, so the encoding is injective over the IR: two programs serialize
// identically iff they compile identically.
type deriveWriter struct{ b []byte }

func (w *deriveWriter) u8(v uint8)   { w.b = append(w.b, v) }
func (w *deriveWriter) i64(v int64)  { w.b = binary.LittleEndian.AppendUint64(w.b, uint64(v)) }
func (w *deriveWriter) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *deriveWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.b = append(w.b, s...)
}
func (w *deriveWriter) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

// Statement type tags for the canonical encoding. The values are part of the
// derivation key; append, never renumber.
const (
	tagSetConst uint8 = iota + 1
	tagCopy
	tagBinOp
	tagCompute
	tagLoop
	tagWhile
	tagIf
	tagCall
	tagAccept
	tagReadInput
	tagWriteOutput
	tagLoadGlobal
	tagStoreGlobal
	tagReturn
)

func (w *deriveWriter) stmts(body []Stmt) {
	w.u64(uint64(len(body)))
	for _, s := range body {
		switch s := s.(type) {
		case SetConst:
			w.u8(tagSetConst)
			w.str(s.Dst)
			w.i64(s.Value)
		case Copy:
			w.u8(tagCopy)
			w.str(s.Dst)
			w.str(s.Src)
		case BinOp:
			w.u8(tagBinOp)
			w.str(s.Dst)
			w.str(s.Src)
			w.u8(uint8(s.Op))
		case Compute:
			w.u8(tagCompute)
			w.i64(int64(s.Ops))
		case Loop:
			w.u8(tagLoop)
			w.i64(int64(s.Count))
			w.stmts(s.Body)
		case While:
			w.u8(tagWhile)
			w.str(s.Var)
			w.stmts(s.Body)
		case If:
			w.u8(tagIf)
			w.str(s.Var)
			w.stmts(s.Body)
		case Call:
			w.u8(tagCall)
			w.str(s.Callee)
		case Accept:
			w.u8(tagAccept)
			w.str(s.Dst)
		case ReadInput:
			w.u8(tagReadInput)
			w.str(s.Buf)
			w.i64(int64(s.MaxLen))
			w.str(s.LenVar)
		case WriteOutput:
			w.u8(tagWriteOutput)
			w.str(s.Src)
			w.i64(int64(s.Len))
		case LoadGlobal:
			w.u8(tagLoadGlobal)
			w.str(s.Dst)
			w.str(s.Global)
		case StoreGlobal:
			w.u8(tagStoreGlobal)
			w.str(s.Global)
			w.str(s.Src)
		case Return:
			w.u8(tagReturn)
		default:
			// The Stmt set is closed; an unknown type means a new statement
			// was added without a tag. Poison the encoding so the key never
			// collides with a well-formed program.
			w.u8(0xff)
			w.str(fmt.Sprintf("%T", s))
		}
	}
}

// SourceBytes returns the canonical binary encoding of prog — the "source
// bytes" field of the artifact store's derivation key. The encoding covers
// every IR field the compiler reads (names, sizes, buffer/critical marks,
// full statement trees), so any semantic change to the program changes the
// key, while re-deriving the same program yields the same bytes.
func SourceBytes(prog *Program) []byte {
	w := &deriveWriter{}
	w.str(prog.Name)
	w.u64(uint64(len(prog.Globals)))
	for _, g := range prog.Globals {
		w.str(g.Name)
		w.i64(int64(g.Size))
	}
	w.u64(uint64(len(prog.Funcs)))
	for _, f := range prog.Funcs {
		w.str(f.Name)
		w.u64(uint64(len(f.Locals)))
		for _, l := range f.Locals {
			w.str(l.Name)
			w.i64(int64(l.Size))
			w.bool(l.IsBuffer)
			w.bool(l.Critical)
		}
		w.stmts(f.Body)
	}
	return w.b
}

// ConfigBytes returns the canonical encoding of every compile option that
// affects emitted code — the "compiler pass config" field of the derivation
// key. Defaults are resolved exactly as Compile resolves them, so an
// explicit option and its default never split the cache. The scheme itself
// is NOT included here: it is the derivation's own field.
func ConfigBytes(opts Options) []byte {
	w := &deriveWriter{}
	linkage := opts.Linkage
	if linkage == "" {
		linkage = abi.LinkDynamic
	}
	w.str(linkage)
	libcScheme := opts.LibcScheme
	if libcScheme == 0 {
		libcScheme = opts.Scheme
	}
	w.str(libcScheme.String())
	w.bool(opts.CheckOnWrite)
	// Dynamic linkage resolves externs against the libc image: its content
	// is an input to the emitted code, so fold its hash in.
	if opts.Libc != nil {
		sum := sha256.Sum256(binfmt.Marshal(opts.Libc))
		w.b = append(w.b, sum[:]...)
	}
	return w.b
}

// Derivation builds the artifact-store derivation identifying one
// compilation: source bytes, scheme, pass config, toolchain version. Its
// Key() is SHA-256 over the four fields, so flipping any one misses cleanly.
func Derivation(prog *Program, opts Options) store.Derivation {
	return store.Derivation{
		Source:  SourceBytes(prog),
		Scheme:  opts.Scheme.String(),
		Config:  ConfigBytes(opts),
		Version: ToolchainVersion(),
	}
}

// CachedCompile is Compile behind the artifact store: it derives the key
// for (prog, opts), serves a cached image on hit — from the store's
// in-process cache or an mmap'd on-disk blob, zero-copy — and compiles,
// stores and returns the image on miss. hit reports whether a build was
// avoided. A nil store degrades to a plain Compile.
func CachedCompile(prog *Program, opts Options, st *store.Store) (bin *binfmt.Binary, hit bool, err error) {
	if st == nil {
		bin, err = Compile(prog, opts)
		return bin, false, err
	}
	// Validate before hashing: a cached blob must never mask a program the
	// compiler would reject.
	if err := prog.Validate(); err != nil {
		return nil, false, err
	}
	return st.GetOrBuild(Derivation(prog, opts).Key(), prog.Name, opts.Scheme.String(),
		func() (*binfmt.Binary, error) { return Compile(prog, opts) })
}
