package cc

import (
	"bytes"
	"testing"

	"repro/internal/abi"
	"repro/internal/core"
)

// TestSourceBytesStable asserts the canonical encoding is a pure function of
// the IR: re-deriving the same program yields the same bytes, and an
// independently constructed equal program encodes identically.
func TestSourceBytesStable(t *testing.T) {
	a := SourceBytes(trivialProg())
	b := SourceBytes(trivialProg())
	if !bytes.Equal(a, b) {
		t.Fatal("SourceBytes is not deterministic over equal programs")
	}
	if len(a) == 0 {
		t.Fatal("SourceBytes returned no bytes")
	}
}

// TestDerivationKeySensitivity flips one input at a time and asserts every
// flip changes the key — the property that makes serving a cached artifact
// safe: stale blobs can only be addressed by inputs that no longer exist.
func TestDerivationKeySensitivity(t *testing.T) {
	base := func() (*Program, Options) {
		return trivialProg(), Options{Scheme: core.SchemeSSP, Linkage: abi.LinkStatic}
	}
	prog, opts := base()
	baseKey := Derivation(prog, opts).Key()

	mutations := map[string]func(*Program, *Options){
		"program name":  func(p *Program, _ *Options) { p.Name = "trivial2" },
		"local size":    func(p *Program, _ *Options) { p.Funcs[0].Locals[0].Size = 16 },
		"local buffer":  func(p *Program, _ *Options) { p.Funcs[0].Locals[0].IsBuffer = true },
		"critical mark": func(p *Program, _ *Options) { p.Funcs[0].Locals[0].Critical = true },
		"stmt constant": func(p *Program, _ *Options) { p.Funcs[0].Body[0] = SetConst{Dst: "x", Value: 6} },
		"stmt dropped":  func(p *Program, _ *Options) { p.Funcs[0].Body = p.Funcs[0].Body[1:] },
		"scheme":        func(_ *Program, o *Options) { o.Scheme = core.SchemePSSP },
		"check-on-write": func(_ *Program, o *Options) {
			o.CheckOnWrite = true
		},
		"libc scheme": func(_ *Program, o *Options) { o.LibcScheme = core.SchemeNone },
	}
	for name, mutate := range mutations {
		p, o := base()
		mutate(p, &o)
		if Derivation(p, o).Key() == baseKey {
			t.Errorf("mutating %s did not change the derivation key", name)
		}
	}

	// Defaults resolve before hashing: an explicit default must not split the
	// cache from the implicit one.
	p, o := base()
	o.LibcScheme = o.Scheme
	if Derivation(p, o).Key() != baseKey {
		t.Error("explicit default LibcScheme changed the key")
	}
}

// TestCachedCompileNilStore asserts the nil-store degradation compiles
// without touching any store machinery.
func TestCachedCompileNilStore(t *testing.T) {
	bin, hit, err := CachedCompile(trivialProg(), Options{Scheme: core.SchemeSSP, Linkage: abi.LinkStatic}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("nil store reported a hit")
	}
	if bin == nil {
		t.Fatal("nil store returned nil binary")
	}
}
