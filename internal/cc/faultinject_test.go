package cc

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/rng"
)

// canaryRegion returns the frame-canary region size the scheme places above
// the 16-byte buffer in the fuzz victim.
func canaryRegion(t *testing.T, scheme core.Scheme) int {
	t.Helper()
	pass, err := PassFor(scheme)
	if err != nil {
		t.Fatal(err)
	}
	return pass.CanaryBytes(&Func{Locals: []Local{{Name: "b", Size: 16, IsBuffer: true}}})
}

// TestFaultInjectionRandomOverflows drives every protected scheme with
// random-length, random-content overflows and asserts the detection
// contract:
//
//   - payloads confined to the buffer never crash (no false positives);
//   - payloads overwriting the entire canary region with random bytes are
//     detected with overwhelming probability (no false negatives);
//   - partial canary corruption is detected too, except for DCR's
//     unprotected low offset bits (asserted separately in cc_test.go).
func TestFaultInjectionRandomOverflows(t *testing.T) {
	const bufLen = 16
	r := rng.New(0xFA17)
	for _, scheme := range protectedSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			region := canaryRegion(t, scheme)
			bin, err := Compile(vulnServer(), Options{Scheme: scheme, Linkage: abi.LinkStatic})
			if err != nil {
				t.Fatal(err)
			}
			k := kernel.New(0xFA17)
			srv, err := kernel.NewForkServer(k, bin, kernel.SpawnOpts{})
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 40; trial++ {
				var length int
				switch trial % 3 {
				case 0: // inside the buffer
					length = 1 + r.Intn(bufLen)
				case 1: // full canary-region overwrite
					length = bufLen + region + r.Intn(4)
				default: // partial canary corruption (3+ bytes past buffer
					// so even DCR's checked bits are hit)
					length = bufLen + 3 + r.Intn(region-3+1)
				}
				payload := make([]byte, length)
				r.Bytes(payload)
				out, err := srv.Handle(payload)
				if err != nil {
					t.Fatal(err)
				}
				switch {
				case length <= bufLen && out.Crashed:
					t.Fatalf("trial %d: false positive at length %d: %s", trial, length, out.CrashReason)
				case length > bufLen+2 && !out.Crashed:
					// Survival requires guessing >= 1 random canary byte;
					// with random content a miss is ~(1-2^-8)^k. Tolerate a
					// lucky single-byte match only when exactly one canary
					// byte was touched — which case 'default' and case 1
					// exclude by construction (>= 3 bytes touched).
					t.Fatalf("trial %d: false negative at length %d", trial, length)
				}
			}
		})
	}
}

// TestFaultInjectionDirectCanaryTamper flips one random bit in a child's
// live canary slot (simulating an arbitrary-write primitive that misses the
// buffer path) and asserts the epilogue still catches it for every scheme
// whose check covers that bit.
func TestFaultInjectionDirectCanaryTamper(t *testing.T) {
	for _, scheme := range []core.Scheme{core.SchemeSSP, core.SchemePSSP, core.SchemePSSPNT, core.SchemePSSPOWF} {
		t.Run(scheme.String(), func(t *testing.T) {
			bin, err := Compile(vulnServer(), Options{Scheme: scheme, Linkage: abi.LinkStatic})
			if err != nil {
				t.Fatal(err)
			}
			k := kernel.New(seedFor(scheme))
			srv, err := kernel.NewForkServer(k, bin, kernel.SpawnOpts{})
			if err != nil {
				t.Fatal(err)
			}
			child, err := k.Fork(srv.Parent())
			if err != nil {
				t.Fatal(err)
			}
			// serve's frame canary lives just below its rbp; the parent is
			// parked inside serve's accept, so rbp points at serve's frame.
			rbp := child.CPU.GPR[5]
			v, err := child.Space.ReadU64(rbp - 8)
			if err != nil {
				t.Fatal(err)
			}
			if err := child.Space.WriteU64(rbp-8, v^(1<<17)); err != nil {
				t.Fatal(err)
			}
			if err := child.Deliver([]byte("x")); err != nil {
				t.Fatal(err)
			}
			if st := k.Run(child); st != kernel.StateCrashed {
				t.Fatalf("single-bit canary tamper went undetected (state %s)", st)
			}
		})
	}
}

func seedFor(s core.Scheme) uint64 { return uint64(s) + 4000 }
