package cc

import (
	"fmt"
	"testing"

	"repro/internal/abi"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/rng"
)

// genProgram builds a random, always-terminating IR program: a handful of
// functions with random locals (some buffers, some critical), random
// straight-line bodies with bounded loops and a random acyclic call graph.
// It is the property-based workout for the whole pipeline: every generated
// program must compile under every pass and run to a clean exit with no
// canary false positives.
func genProgram(r *rng.Source, id int) *Program {
	nFuncs := 2 + r.Intn(4) // main + 1..4 workers
	prog := &Program{
		Name:    fmt.Sprintf("fuzz%d", id),
		Globals: []Global{{Name: "g0", Size: 8}, {Name: "g1", Size: 16}},
	}

	names := make([]string, nFuncs)
	for i := range names {
		if i == 0 {
			names[i] = "main"
		} else {
			names[i] = fmt.Sprintf("f%d", i)
		}
	}

	for i := 0; i < nFuncs; i++ {
		f := &Func{Name: names[i]}
		nLocals := 1 + r.Intn(4)
		for l := 0; l < nLocals; l++ {
			loc := Local{Name: fmt.Sprintf("v%d", l), Size: 8 * (1 + r.Intn(4))}
			switch r.Intn(4) {
			case 0:
				loc.IsBuffer = true
			case 1:
				loc.Critical = true
			case 2:
				loc.IsBuffer = true
				loc.Critical = true
			}
			f.Locals = append(f.Locals, loc)
		}
		// Callees: only higher-numbered functions — guarantees acyclicity.
		var callees []string
		for j := i + 1; j < nFuncs; j++ {
			if r.Intn(2) == 0 {
				callees = append(callees, names[j])
			}
		}
		f.Body = genBody(r, f, callees, 2)
		prog.Funcs = append(prog.Funcs, f)
	}
	return prog
}

func genBody(r *rng.Source, f *Func, callees []string, depth int) []Stmt {
	n := 1 + r.Intn(5)
	body := make([]Stmt, 0, n)
	local := func() string { return f.Locals[r.Intn(len(f.Locals))].Name }
	for i := 0; i < n; i++ {
		switch r.Intn(8) {
		case 0:
			body = append(body, SetConst{Dst: local(), Value: int64(r.Intn(1000))})
		case 1:
			body = append(body, Copy{Dst: local(), Src: local()})
		case 2:
			ops := []ArithOp{OpAdd, OpSub, OpXor, OpAnd, OpOr}
			body = append(body, BinOp{Dst: local(), Src: local(), Op: ops[r.Intn(len(ops))]})
		case 3:
			body = append(body, Compute{Ops: r.Intn(20)})
		case 4:
			if depth > 0 {
				body = append(body, Loop{Count: r.Intn(4), Body: genBody(r, f, callees, depth-1)})
			}
		case 5:
			if len(callees) > 0 {
				body = append(body, Call{Callee: callees[r.Intn(len(callees))]})
			}
		case 6:
			g := "g0"
			if r.Intn(2) == 0 {
				g = "g1"
			}
			if r.Intn(2) == 0 {
				body = append(body, StoreGlobal{Global: g, Src: local()})
			} else {
				body = append(body, LoadGlobal{Dst: local(), Global: g})
			}
		case 7:
			if depth > 0 {
				// If on a freshly zeroed or set local — either branch is fine.
				v := local()
				body = append(body, SetConst{Dst: v, Value: int64(r.Intn(2))})
				body = append(body, If{Var: v, Body: genBody(r, f, callees, depth-1)})
			}
		}
	}
	return body
}

// TestFuzzCompileRunEverySchemeNoFalsePositives is the pipeline property
// test: N random programs × all 10 passes, each must compile, link, load,
// run to StateExited, and trip no canary check.
func TestFuzzCompileRunEverySchemeNoFalsePositives(t *testing.T) {
	const programs = 25
	r := rng.New(0xF022)
	for i := 0; i < programs; i++ {
		prog := genProgram(r, i)
		if err := prog.Validate(); err != nil {
			t.Fatalf("generated invalid program %d: %v", i, err)
		}
		for _, scheme := range core.Schemes() {
			bin, err := Compile(prog, Options{Scheme: scheme, Linkage: abi.LinkStatic})
			if err != nil {
				t.Fatalf("program %d scheme %v: compile: %v", i, scheme, err)
			}
			k := kernel.New(uint64(i) + 1)
			p, err := k.Spawn(bin, kernel.SpawnOpts{})
			if err != nil {
				t.Fatalf("program %d scheme %v: spawn: %v", i, scheme, err)
			}
			if st := k.Run(p); st != kernel.StateExited {
				t.Fatalf("program %d scheme %v: state %s: %s", i, scheme, st, p.CrashReason)
			}
		}
	}
}

// TestFuzzCheckOnWriteNoFalsePositives repeats the fuzz run for the LV
// check-on-write variant, which inserts checks mid-body.
func TestFuzzCheckOnWriteNoFalsePositives(t *testing.T) {
	const programs = 15
	r := rng.New(777)
	for i := 0; i < programs; i++ {
		prog := genProgram(r, i)
		bin, err := Compile(prog, Options{
			Scheme: core.SchemePSSPLV, Linkage: abi.LinkStatic, CheckOnWrite: true,
		})
		if err != nil {
			t.Fatalf("program %d: compile: %v", i, err)
		}
		k := kernel.New(uint64(i) + 50)
		p, err := k.Spawn(bin, kernel.SpawnOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if st := k.Run(p); st != kernel.StateExited {
			t.Fatalf("program %d: state %s: %s", i, st, p.CrashReason)
		}
	}
}

// TestFuzzDeterministicCodegen asserts compilation is a pure function of
// (program, options): byte-identical output across invocations.
func TestFuzzDeterministicCodegen(t *testing.T) {
	r := rng.New(31337)
	prog := genProgram(r, 0)
	a, err := Compile(prog, Options{Scheme: core.SchemePSSPOWF, Linkage: abi.LinkStatic})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(prog, Options{Scheme: core.SchemePSSPOWF, Linkage: abi.LinkStatic})
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Text().Data) != string(b.Text().Data) {
		t.Fatal("codegen not deterministic")
	}
}
