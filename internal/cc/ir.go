// Package cc is the toy compiler of the reproduction — the stand-in for the
// paper's LLVM plugin. It lowers a small function-level IR (locals, buffers,
// loops, calls, request I/O) to the simulated ISA and runs one protection
// pass over every function, mirroring the paper's P-SSP-Pass FunctionPass:
// the pass decides per function whether to protect it (a local buffer is
// present), reserves canary space in the frame, and emits the prologue and
// epilogue instruction sequences of Codes 1–9.
//
// Supported passes: none, ssp, raf-ssp, dynaguard, dcr, p-ssp, p-ssp-nt,
// p-ssp-lv, p-ssp-owf, p-ssp-gb (see internal/core for the scheme
// semantics).
package cc

import (
	"fmt"
	"strings"
)

// Program is a compilation unit.
type Program struct {
	// Name labels the program (used for binary metadata and experiments).
	Name string
	// Funcs are the program's functions; one must be named "main".
	Funcs []*Func
	// Globals are 8-byte-aligned data objects addressable by name.
	Globals []Global
}

// Global is a named data object in the data section.
type Global struct {
	Name string
	Size int // bytes, rounded up to 8
}

// Func is one function.
type Func struct {
	Name   string
	Locals []Local
	Body   []Stmt
}

// Local declares a stack variable.
type Local struct {
	Name string
	// Size in bytes; rounded up to a multiple of 8.
	Size int
	// IsBuffer marks arrays — the presence of one makes the protection pass
	// instrument the function (the -fstack-protector heuristic), and buffers
	// are placed closest to the canary so an overflow hits it first.
	IsBuffer bool
	// Critical marks variables P-SSP-LV guards with their own canary.
	Critical bool
}

// Stmt is one IR statement. The concrete types below form a closed set.
type Stmt interface{ stmt() }

// SetConst assigns an immediate to a local: dst = value.
type SetConst struct {
	Dst   string
	Value int64
}

// Copy assigns between locals: dst = src.
type Copy struct {
	Dst, Src string
}

// ArithOp selects a BinOp operation.
type ArithOp uint8

// Arithmetic operations.
const (
	OpAdd ArithOp = iota + 1
	OpSub
	OpXor
	OpAnd
	OpOr
)

// BinOp applies dst = dst <op> src for locals dst and src.
type BinOp struct {
	Dst, Src string
	Op       ArithOp
}

// Compute emits n dependent ALU instructions — synthetic work for the
// SPEC-analog benchmark bodies.
type Compute struct {
	Ops int
}

// Loop repeats Body a compile-time-constant number of times.
type Loop struct {
	Count int
	Body  []Stmt
}

// While repeats Body while the local Var is non-zero.
type While struct {
	Var  string
	Body []Stmt
}

// If runs Body when the local Var is non-zero.
type If struct {
	Var  string
	Body []Stmt
}

// Call invokes another function by name (no arguments; communication is via
// globals, as in the paper's benchmark kernels).
type Call struct {
	Callee string
}

// Accept blocks for the next request and stores its length into Dst
// (0 means shut down). It is the fork point of the server model.
type Accept struct {
	Dst string
}

// ReadInput performs read(0, &Buf, n): the kernel copies up to n request
// bytes into the buffer with no bounds awareness. If LenVar is set, n comes
// from that local (the attacker-controlled length — the paper's overflow
// vector); otherwise n is MaxLen.
type ReadInput struct {
	Buf    string
	MaxLen int
	LenVar string
}

// WriteOutput performs write(1, &Src, Len): the response visible to the
// oracle.
type WriteOutput struct {
	Src string
	Len int
}

// LoadGlobal reads a global into a local: dst = global.
type LoadGlobal struct {
	Dst    string
	Global string
}

// StoreGlobal writes a local into a global: global = src.
type StoreGlobal struct {
	Global string
	Src    string
}

// Return exits the function immediately (falling off the end of Body returns
// implicitly).
type Return struct{}

func (SetConst) stmt()    {}
func (Copy) stmt()        {}
func (BinOp) stmt()       {}
func (Compute) stmt()     {}
func (Loop) stmt()        {}
func (While) stmt()       {}
func (If) stmt()          {}
func (Call) stmt()        {}
func (Accept) stmt()      {}
func (ReadInput) stmt()   {}
func (WriteOutput) stmt() {}
func (LoadGlobal) stmt()  {}
func (StoreGlobal) stmt() {}
func (Return) stmt()      {}

// Validate checks program well-formedness: unique names, resolvable
// references, and a main function.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("cc: program has no name")
	}
	funcs := make(map[string]bool, len(p.Funcs))
	for _, f := range p.Funcs {
		if f.Name == "" {
			return fmt.Errorf("cc: %s: function with empty name", p.Name)
		}
		if funcs[f.Name] {
			return fmt.Errorf("cc: %s: duplicate function %q", p.Name, f.Name)
		}
		if strings.HasPrefix(f.Name, "__") || f.Name == "_start" {
			return fmt.Errorf("cc: %s: function name %q is reserved for the runtime", p.Name, f.Name)
		}
		funcs[f.Name] = true
	}
	if !funcs["main"] {
		return fmt.Errorf("cc: %s: no main function", p.Name)
	}
	globals := make(map[string]bool, len(p.Globals))
	for _, g := range p.Globals {
		if g.Name == "" || g.Size <= 0 {
			return fmt.Errorf("cc: %s: bad global %+v", p.Name, g)
		}
		if globals[g.Name] {
			return fmt.Errorf("cc: %s: duplicate global %q", p.Name, g.Name)
		}
		globals[g.Name] = true
	}
	for _, f := range p.Funcs {
		if err := f.validate(funcs, globals); err != nil {
			return fmt.Errorf("cc: %s: %w", p.Name, err)
		}
	}
	return nil
}

func (f *Func) validate(funcs, globals map[string]bool) error {
	locals := make(map[string]bool, len(f.Locals))
	for _, l := range f.Locals {
		if l.Name == "" || l.Size <= 0 {
			return fmt.Errorf("%s: bad local %+v", f.Name, l)
		}
		if locals[l.Name] {
			return fmt.Errorf("%s: duplicate local %q", f.Name, l.Name)
		}
		locals[l.Name] = true
	}
	return f.validateStmts(f.Body, locals, funcs, globals)
}

func (f *Func) validateStmts(body []Stmt, locals, funcs, globals map[string]bool) error {
	needLocal := func(n string) error {
		if !locals[n] {
			return fmt.Errorf("%s: unknown local %q", f.Name, n)
		}
		return nil
	}
	for _, s := range body {
		var err error
		switch s := s.(type) {
		case SetConst:
			err = needLocal(s.Dst)
		case Copy:
			if err = needLocal(s.Dst); err == nil {
				err = needLocal(s.Src)
			}
		case BinOp:
			if s.Op < OpAdd || s.Op > OpOr {
				err = fmt.Errorf("%s: bad arith op %d", f.Name, s.Op)
			} else if err = needLocal(s.Dst); err == nil {
				err = needLocal(s.Src)
			}
		case Compute:
			if s.Ops < 0 {
				err = fmt.Errorf("%s: negative Compute.Ops", f.Name)
			}
		case Loop:
			if s.Count < 0 {
				err = fmt.Errorf("%s: negative loop count", f.Name)
			} else {
				err = f.validateStmts(s.Body, locals, funcs, globals)
			}
		case While:
			if err = needLocal(s.Var); err == nil {
				err = f.validateStmts(s.Body, locals, funcs, globals)
			}
		case If:
			if err = needLocal(s.Var); err == nil {
				err = f.validateStmts(s.Body, locals, funcs, globals)
			}
		case Call:
			if !funcs[s.Callee] && !isRuntimeCallee(s.Callee) {
				err = fmt.Errorf("%s: unknown callee %q", f.Name, s.Callee)
			}
		case Accept:
			err = needLocal(s.Dst)
		case ReadInput:
			if err = needLocal(s.Buf); err == nil && s.LenVar != "" {
				err = needLocal(s.LenVar)
			}
			if err == nil && s.LenVar == "" && s.MaxLen <= 0 {
				err = fmt.Errorf("%s: ReadInput needs MaxLen or LenVar", f.Name)
			}
		case WriteOutput:
			if err = needLocal(s.Src); err == nil && s.Len <= 0 {
				err = fmt.Errorf("%s: WriteOutput needs positive Len", f.Name)
			}
		case LoadGlobal:
			if err = needLocal(s.Dst); err == nil && !globals[s.Global] {
				err = fmt.Errorf("%s: unknown global %q", f.Name, s.Global)
			}
		case StoreGlobal:
			if err = needLocal(s.Src); err == nil && !globals[s.Global] {
				err = fmt.Errorf("%s: unknown global %q", f.Name, s.Global)
			}
		case Return:
		default:
			err = fmt.Errorf("%s: unknown statement type %T", f.Name, s)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// isRuntimeCallee reports whether name is provided by the runtime/libc
// rather than the program itself.
func isRuntimeCallee(name string) bool {
	switch name {
	case "libc_echo":
		return true
	default:
		return false
	}
}

// HasBuffer reports whether the function declares at least one buffer — the
// pass's "should I protect this function" heuristic.
func (f *Func) HasBuffer() bool {
	for _, l := range f.Locals {
		if l.IsBuffer {
			return true
		}
	}
	return false
}

// CriticalCount returns |V|, the number of critical locals.
func (f *Func) CriticalCount() int {
	n := 0
	for _, l := range f.Locals {
		if l.Critical {
			n++
		}
	}
	return n
}
