package cc

import "fmt"

// FrameInfo is the computed stack-frame layout of one function under a given
// protection pass. All offsets are rbp-relative and negative (the frame
// lives below the saved base pointer; the return address is at rbp+8).
//
// Layout, descending from rbp:
//
//	[ frame canary region ]          (pass-dependent: 0–3 words)
//	[ critical local + its guard ]*  (P-SSP-LV only: guard word directly
//	                                  below each critical variable)
//	[ buffers ]                      (closest to the canary, so an overflow
//	                                  reaches it before the return address)
//	[ scalars ]
//	[ loop temporaries ]
type FrameInfo struct {
	Func *Func
	// FrameSize is the rsp adjustment in the prologue (16-byte aligned).
	FrameSize int
	// LocalOff maps local name to its (negative) rbp offset — the offset of
	// the variable's lowest-addressed byte.
	LocalOff map[string]int
	// CanarySlots are the rbp offsets of frame-canary words, in the order
	// the pass's prologue fills them.
	CanarySlots []int
	// GuardSlots are the rbp offsets of per-critical-variable guard words
	// (P-SSP-LV), in variable placement order.
	GuardSlots []int
	// TempOff are slots for loop counters, in discovery order.
	TempOff []int
	// Protected reports whether the pass instruments this function.
	Protected bool
}

// GuardCount returns the number of per-variable guard canaries.
func (fi *FrameInfo) GuardCount() int { return len(fi.GuardSlots) }

// AllCanarySlots returns frame canary slots followed by guard slots — the
// order the LV epilogue XORs them in.
func (fi *FrameInfo) AllCanarySlots() []int {
	out := make([]int, 0, len(fi.CanarySlots)+len(fi.GuardSlots))
	out = append(out, fi.CanarySlots...)
	out = append(out, fi.GuardSlots...)
	return out
}

// countLoops returns the maximum number of simultaneously live loop
// temporaries needed by body (loops at the same nesting depth share slots
// would be an optimization; we allocate one per loop for simplicity).
func countLoops(body []Stmt) int {
	n := 0
	for _, s := range body {
		switch s := s.(type) {
		case Loop:
			n += 1 + countLoops(s.Body)
		case While:
			n += countLoops(s.Body)
		case If:
			n += countLoops(s.Body)
		}
	}
	return n
}

// roundUp8 rounds n up to a multiple of 8.
func roundUp8(n int) int { return (n + 7) &^ 7 }

// layoutFrame computes the frame for f under the pass.
func layoutFrame(f *Func, pass Pass) (*FrameInfo, error) {
	fi := &FrameInfo{
		Func:      f,
		LocalOff:  make(map[string]int, len(f.Locals)),
		Protected: pass.NeedsProtection(f),
	}

	off := 0
	place := func(size int) int {
		off += roundUp8(size)
		return -off
	}

	if fi.Protected {
		canaryBytes := pass.CanaryBytes(f)
		if canaryBytes%8 != 0 {
			return nil, fmt.Errorf("cc: pass %s: canary bytes %d not word-aligned", pass.Scheme(), canaryBytes)
		}
		// Frame canary words, highest first: slot -8, then -16, ...
		for b := 8; b <= canaryBytes; b += 8 {
			fi.CanarySlots = append(fi.CanarySlots, -b)
		}
		off = canaryBytes

		if pass.GuardsCriticals() {
			// Each critical variable sits directly above its guard word:
			// [... guard][critical ...] ascending — i.e. place the critical
			// first (higher address), then its guard below it.
			for _, l := range f.Locals {
				if !l.Critical {
					continue
				}
				fi.LocalOff[l.Name] = place(l.Size)
				fi.GuardSlots = append(fi.GuardSlots, place(8))
			}
		}
	}

	// Buffers next (closest to the canary region), then scalars.
	for _, l := range f.Locals {
		if _, done := fi.LocalOff[l.Name]; done {
			continue
		}
		if l.IsBuffer {
			fi.LocalOff[l.Name] = place(l.Size)
		}
	}
	for _, l := range f.Locals {
		if _, done := fi.LocalOff[l.Name]; done {
			continue
		}
		fi.LocalOff[l.Name] = place(l.Size)
	}

	for i := 0; i < countLoops(f.Body); i++ {
		fi.TempOff = append(fi.TempOff, place(8))
	}

	// 16-byte align the frame, x86-64 style.
	fi.FrameSize = (off + 15) &^ 15
	return fi, nil
}
