package cc

import (
	"fmt"

	"repro/internal/abi"
	"repro/internal/binfmt"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
)

// This file builds the simulated C library. It contains:
//
//   - __stack_chk_fail: the abort path every epilogue check calls — the
//     paper's Figure 3 target (the binary rewriter later injects the P-SSP
//     packed-canary check in front of its abort tail).
//   - libc_echo: a canary-protected utility function with its own stack
//     buffer. Applications call it across the module boundary, which is what
//     the paper's §VI-C compatibility experiment exercises (P-SSP app + SSP
//     libc and vice versa must coexist because both validate against the
//     same unchanged TLS canary C).
//
// For dynamic linkage the libc is a separate image mapped at abi.LibcBase;
// for static linkage the same fragments are appended to the app's text.

// libcEchoFunc is the IR for libc_echo: copy up to 16 request bytes into a
// local buffer and echo 8 back.
func libcEchoFunc() *Func {
	return &Func{
		Name: "libc_echo",
		Locals: []Local{
			{Name: "buf", Size: 16, IsBuffer: true},
		},
		Body: []Stmt{
			ReadInput{Buf: "buf", MaxLen: 16},
			WriteOutput{Src: "buf", Len: 8},
		},
	}
}

// stackChkFailFragment emits the stock __stack_chk_fail: abort(2), which the
// kernel reports as "stack smashing detected".
func stackChkFailFragment() *Fragment {
	b := NewBuilder()
	b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.RAX, Imm: abi.SysAbort})
	b.Emit(isa.Inst{Op: isa.SYSCALL})
	// Unreachable: abort never returns. RET keeps the symbol well-formed for
	// the disassembler and gives the rewriter a stable function extent.
	b.Emit(isa.Inst{Op: isa.RET})
	frag, err := b.Finalize()
	if err != nil {
		panic("cc: __stack_chk_fail fragment: " + err.Error())
	}
	frag.Name = StackChkFail
	return frag
}

// libcFragments compiles the library functions under the given scheme.
func libcFragments(scheme core.Scheme) ([]*Fragment, error) {
	pass, err := PassFor(scheme)
	if err != nil {
		return nil, err
	}
	echo, err := compileFunc(libcEchoFunc(), pass, nil, false)
	if err != nil {
		return nil, fmt.Errorf("cc: libc_echo: %w", err)
	}
	return []*Fragment{stackChkFailFragment(), echo}, nil
}

// BuildLibc compiles the shared C-library image, protected by the given
// scheme, for mapping at abi.LibcBase.
func BuildLibc(scheme core.Scheme) (*binfmt.Binary, error) {
	frags, err := libcFragments(scheme)
	if err != nil {
		return nil, err
	}
	code, syms, err := link(frags, abi.LibcBase, nil)
	if err != nil {
		return nil, err
	}
	b := binfmt.New()
	b.AddSection(".text.libc", abi.LibcBase, mem.PermRead|mem.PermExec, code)
	for _, s := range syms {
		b.AddSymbol(s)
	}
	b.Meta[abi.MetaScheme] = scheme.String()
	b.Meta[abi.MetaKind] = "libc"
	return b, nil
}
