package cc

import (
	"fmt"

	"repro/internal/abi"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
)

// StackChkFail is the runtime symbol every epilogue check calls on mismatch.
const StackChkFail = "__stack_chk_fail"

// Pass is one protection pass — the analog of the paper's P-SSP-Pass
// subclass of llvm::FunctionPass. The compiler asks it whether a function
// needs instrumentation, how much frame-canary space to reserve, and has it
// emit the prologue and epilogue sequences.
type Pass interface {
	// Scheme identifies the pass.
	Scheme() core.Scheme
	// NeedsProtection is the runOnFunction decision: instrument only
	// functions with a stack buffer (plus critical locals for LV).
	NeedsProtection(f *Func) bool
	// CanaryBytes is the size of the frame-canary region below saved rbp.
	CanaryBytes(f *Func) int
	// GuardsCriticals reports whether critical locals get guard words.
	GuardsCriticals() bool
	// Prologue emits the canary-install sequence (frame setup is already
	// done: rbp pushed, rsp adjusted).
	Prologue(fi *FrameInfo, b *Builder)
	// Epilogue emits the canary check ending in a conditional call to
	// __stack_chk_fail (frame teardown follows).
	Epilogue(fi *FrameInfo, b *Builder)
}

// WriteChecker is implemented by passes that can also inspect their canaries
// immediately after a buffer-writing statement — the paper's §V-E2 design
// option for P-SSP-LV ("add canary inspection code after executing functions
// like strcpy(), read(), ..."), which detects local-variable corruption
// before the tainted values are ever used instead of waiting for the
// function epilogue.
type WriteChecker interface {
	// WriteCheck emits the same consistency check as the epilogue, at the
	// current body position.
	WriteCheck(fi *FrameInfo, b *Builder)
}

// PassFor returns the pass implementing the scheme.
func PassFor(s core.Scheme) (Pass, error) {
	switch s {
	case core.SchemeNone:
		return nonePass{}, nil
	case core.SchemeSSP:
		return sspPass{scheme: core.SchemeSSP}, nil
	case core.SchemeRAFSSP:
		// RAF-SSP compiles identically to SSP; only the fork hook differs.
		return sspPass{scheme: core.SchemeRAFSSP}, nil
	case core.SchemePSSP:
		return psspPass{}, nil
	case core.SchemePSSPNT:
		return ntPass{}, nil
	case core.SchemePSSPLV:
		return lvPass{}, nil
	case core.SchemePSSPOWF:
		return owfPass{}, nil
	case core.SchemePSSPGB:
		return gbPass{}, nil
	case core.SchemeDynaGuard:
		return dynaGuardPass{}, nil
	case core.SchemeDCR:
		return dcrPass{}, nil
	default:
		return nil, fmt.Errorf("cc: no pass for scheme %v", s)
	}
}

// immU64 reinterprets a uint64 bit pattern as the int64 immediate field.
// (A constant conversion would overflow at compile time for high-bit masks.)
func immU64(v uint64) int64 { return int64(v) }

// failCheck emits "je ok; call __stack_chk_fail; ok:" — shared by every
// epilogue. The preceding instructions must have set ZF on success.
func failCheck(b *Builder) {
	ok := b.Label()
	b.Jump(isa.JE, ok)
	b.Call(StackChkFail)
	b.Bind(ok)
}

// --- none ---

type nonePass struct{}

func (nonePass) Scheme() core.Scheme           { return core.SchemeNone }
func (nonePass) NeedsProtection(*Func) bool    { return false }
func (nonePass) CanaryBytes(*Func) int         { return 0 }
func (nonePass) GuardsCriticals() bool         { return false }
func (nonePass) Prologue(*FrameInfo, *Builder) {}
func (nonePass) Epilogue(*FrameInfo, *Builder) {}

// --- ssp (paper Codes 1 and 2) ---

type sspPass struct{ scheme core.Scheme }

func (p sspPass) Scheme() core.Scheme        { return p.scheme }
func (sspPass) NeedsProtection(f *Func) bool { return f.HasBuffer() }
func (sspPass) CanaryBytes(*Func) int        { return 8 }
func (sspPass) GuardsCriticals() bool        { return false }

func (sspPass) Prologue(fi *FrameInfo, b *Builder) {
	// mov %fs:0x28, %rax ; mov %rax, -8(%rbp)
	b.Emit(isa.Inst{Op: isa.LDFS, R1: isa.RAX, Disp: core.TLSCanaryOff})
	b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: int32(fi.CanarySlots[0])})
}

func (sspPass) Epilogue(fi *FrameInfo, b *Builder) {
	// mov -8(%rbp), %rdx ; xor %fs:0x28, %rdx ; je ok ; call fail
	b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RDX, Base: isa.RBP, Disp: int32(fi.CanarySlots[0])})
	b.Emit(isa.Inst{Op: isa.XORFS, R1: isa.RDX, Disp: core.TLSCanaryOff})
	failCheck(b)
}

// --- p-ssp (paper Codes 3 and 4) ---

type psspPass struct{}

func (psspPass) Scheme() core.Scheme          { return core.SchemePSSP }
func (psspPass) NeedsProtection(f *Func) bool { return f.HasBuffer() }
func (psspPass) CanaryBytes(*Func) int        { return 16 }
func (psspPass) GuardsCriticals() bool        { return false }

func (psspPass) Prologue(fi *FrameInfo, b *Builder) {
	// mov %fs:0x2a8, %rax ; mov %rax, -8(%rbp)
	// mov %fs:0x2b0, %rax ; mov %rax, -16(%rbp)
	b.Emit(isa.Inst{Op: isa.LDFS, R1: isa.RAX, Disp: core.TLSShadow0Off})
	b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: int32(fi.CanarySlots[0])})
	b.Emit(isa.Inst{Op: isa.LDFS, R1: isa.RAX, Disp: core.TLSShadow1Off})
	b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: int32(fi.CanarySlots[1])})
}

// psspEpilogue is shared by P-SSP, P-SSP-NT, and LV's no-critical case:
// mov -8(%rbp), %rdx ; mov -16(%rbp), %rdi ; xor %rdi, %rdx ;
// xor %fs:0x28, %rdx ; je ok ; call fail.
func psspEpilogue(fi *FrameInfo, b *Builder) {
	b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RDX, Base: isa.RBP, Disp: int32(fi.CanarySlots[0])})
	b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RDI, Base: isa.RBP, Disp: int32(fi.CanarySlots[1])})
	b.Emit(isa.Inst{Op: isa.XORRR, R1: isa.RDX, R2: isa.RDI})
	b.Emit(isa.Inst{Op: isa.XORFS, R1: isa.RDX, Disp: core.TLSCanaryOff})
	failCheck(b)
}

func (psspPass) Epilogue(fi *FrameInfo, b *Builder) { psspEpilogue(fi, b) }

// --- p-ssp-nt (paper Code 7) ---

type ntPass struct{}

func (ntPass) Scheme() core.Scheme          { return core.SchemePSSPNT }
func (ntPass) NeedsProtection(f *Func) bool { return f.HasBuffer() }
func (ntPass) CanaryBytes(*Func) int        { return 16 }
func (ntPass) GuardsCriticals() bool        { return false }

// ntPrologue emits the per-call re-randomization:
// rdrand %rax ; mov %rax, -8(%rbp) ;
// mov %fs:0x28, %rcx ; xor %rax, %rcx ; mov %rcx, -16(%rbp)
func ntPrologue(fi *FrameInfo, b *Builder) {
	b.Emit(isa.Inst{Op: isa.RDRAND, R1: isa.RAX})
	b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: int32(fi.CanarySlots[0])})
	b.Emit(isa.Inst{Op: isa.LDFS, R1: isa.RCX, Disp: core.TLSCanaryOff})
	b.Emit(isa.Inst{Op: isa.XORRR, R1: isa.RCX, R2: isa.RAX})
	b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RCX, Base: isa.RBP, Disp: int32(fi.CanarySlots[1])})
}

func (ntPass) Prologue(fi *FrameInfo, b *Builder) { ntPrologue(fi, b) }
func (ntPass) Epilogue(fi *FrameInfo, b *Builder) { psspEpilogue(fi, b) }

// --- p-ssp-lv (paper Algorithm 2) ---

type lvPass struct{}

func (lvPass) Scheme() core.Scheme { return core.SchemePSSPLV }
func (lvPass) NeedsProtection(f *Func) bool {
	return f.HasBuffer() || f.CriticalCount() > 0
}

func (lvPass) CanaryBytes(f *Func) int {
	if f.CriticalCount() == 0 {
		return 16 // degenerates to NT's pair
	}
	return 8 // frame canary C0; guards are placed per critical variable
}

func (lvPass) GuardsCriticals() bool { return true }

func (lvPass) Prologue(fi *FrameInfo, b *Builder) {
	if fi.GuardCount() == 0 {
		ntPrologue(fi, b)
		return
	}
	// C0 <- rdrand; acc <- C ^ C0
	b.Emit(isa.Inst{Op: isa.RDRAND, R1: isa.RAX})
	b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: int32(fi.CanarySlots[0])})
	b.Emit(isa.Inst{Op: isa.LDFS, R1: isa.RCX, Disp: core.TLSCanaryOff})
	b.Emit(isa.Inst{Op: isa.XORRR, R1: isa.RCX, R2: isa.RAX})
	// Guards G1..G(n-1) random, folded into acc; the last guard is acc
	// itself so that the XOR of all canaries equals C (Algorithm 2 line 14).
	for i, slot := range fi.GuardSlots {
		if i < len(fi.GuardSlots)-1 {
			b.Emit(isa.Inst{Op: isa.RDRAND, R1: isa.RAX})
			b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: int32(slot)})
			b.Emit(isa.Inst{Op: isa.XORRR, R1: isa.RCX, R2: isa.RAX})
		} else {
			b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RCX, Base: isa.RBP, Disp: int32(slot)})
		}
	}
}

// WriteCheck implements WriteChecker: the LV consistency check can run at
// any body point, since it only reads the canary slots and the TLS canary.
func (p lvPass) WriteCheck(fi *FrameInfo, b *Builder) { p.Epilogue(fi, b) }

func (lvPass) Epilogue(fi *FrameInfo, b *Builder) {
	if fi.GuardCount() == 0 {
		psspEpilogue(fi, b)
		return
	}
	slots := fi.AllCanarySlots()
	b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RDX, Base: isa.RBP, Disp: int32(slots[0])})
	for _, slot := range slots[1:] {
		b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RDI, Base: isa.RBP, Disp: int32(slot)})
		b.Emit(isa.Inst{Op: isa.XORRR, R1: isa.RDX, R2: isa.RDI})
	}
	b.Emit(isa.Inst{Op: isa.XORFS, R1: isa.RDX, Disp: core.TLSCanaryOff})
	failCheck(b)
}

// --- p-ssp-owf (paper Codes 8 and 9, Algorithm 3) ---

type owfPass struct{}

func (owfPass) Scheme() core.Scheme          { return core.SchemePSSPOWF }
func (owfPass) NeedsProtection(f *Func) bool { return f.HasBuffer() }

// CanaryBytes: nonce word at -8, AES ciphertext (16 bytes) at -24..-9.
func (owfPass) CanaryBytes(*Func) int { return 24 }
func (owfPass) GuardsCriticals() bool { return false }

// owfLoadInputs emits the shared core of Code 8/9: xmm15 <- nonce || retaddr,
// xmm1 <- key from r13/r12, then AES-encrypt. nonceSrc selects where the
// nonce comes from: fresh rdtsc (prologue) or the saved stack word
// (epilogue).
func owfAES(b *Builder) {
	b.Emit(isa.Inst{Op: isa.MOVQX, X1: isa.XMM15, R1: isa.RAX})
	b.Emit(isa.Inst{Op: isa.MOVHX, X1: isa.XMM15, Base: isa.RBP, Disp: 8}) // return address
	b.Emit(isa.Inst{Op: isa.MOVQX, X1: isa.XMM1, R1: isa.R13})
	b.Emit(isa.Inst{Op: isa.PUNPCKX, X1: isa.XMM1, R1: isa.R12})
	b.Emit(isa.Inst{Op: isa.AESENC})
}

func (owfPass) Prologue(fi *FrameInfo, b *Builder) {
	nonceSlot := int32(fi.CanarySlots[0])
	ctSlot := int32(fi.CanarySlots[2])
	// rdtsc ; shl $32, %rdx ; or %rdx, %rax  — reassemble the 64-bit TSC.
	b.Emit(isa.Inst{Op: isa.RDTSC})
	b.Emit(isa.Inst{Op: isa.SHLRI, R1: isa.RDX, Imm: 32})
	b.Emit(isa.Inst{Op: isa.ORRR, R1: isa.RAX, R2: isa.RDX})
	b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: nonceSlot})
	owfAES(b)
	b.Emit(isa.Inst{Op: isa.STX, X1: isa.XMM15, Base: isa.RBP, Disp: ctSlot})
}

func (owfPass) Epilogue(fi *FrameInfo, b *Builder) {
	nonceSlot := int32(fi.CanarySlots[0])
	ctSlot := int32(fi.CanarySlots[2])
	b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RAX, Base: isa.RBP, Disp: nonceSlot})
	owfAES(b)
	b.Emit(isa.Inst{Op: isa.CMPX, X1: isa.XMM15, Base: isa.RBP, Disp: ctSlot})
	failCheck(b)
}

// --- p-ssp-gb (paper Figure 6) ---

type gbPass struct{}

func (gbPass) Scheme() core.Scheme          { return core.SchemePSSPGB }
func (gbPass) NeedsProtection(f *Func) bool { return f.HasBuffer() }

// CanaryBytes is one word — the whole point of the variant: the stack layout
// stays identical to SSP while C1 lives in the global buffer.
func (gbPass) CanaryBytes(*Func) int { return 8 }
func (gbPass) GuardsCriticals() bool { return false }

func (gbPass) Prologue(fi *FrameInfo, b *Builder) {
	slot := int32(fi.CanarySlots[0])
	// C0 <- rdrand, stored in the frame; C1 = C ^ C0 appended to the global
	// buffer (fork clones the buffer with the data segment).
	b.Emit(isa.Inst{Op: isa.RDRAND, R1: isa.RAX})
	b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: slot})
	b.Emit(isa.Inst{Op: isa.LDFS, R1: isa.RCX, Disp: core.TLSCanaryOff})
	b.Emit(isa.Inst{Op: isa.XORRR, R1: isa.RCX, R2: isa.RAX})
	// tls.buf[tls.count] = C1 ; tls.count++ — the buffer is thread-local
	// (paper Figure 6: one buffer per thread), addressed off the FS base.
	b.Emit(isa.Inst{Op: isa.RDFSBASE, R1: isa.RBX})
	b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RDX, Base: isa.RBX, Disp: abi.GBCountOff})
	b.Emit(isa.Inst{Op: isa.MOVRR, R1: isa.R10, R2: isa.RDX})
	b.Emit(isa.Inst{Op: isa.SHLRI, R1: isa.R10, Imm: 3})
	b.Emit(isa.Inst{Op: isa.MOVRR, R1: isa.R11, R2: isa.RBX})
	b.Emit(isa.Inst{Op: isa.ADDRR, R1: isa.R11, R2: isa.R10})
	b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RCX, Base: isa.R11, Disp: abi.GBBufOff})
	b.Emit(isa.Inst{Op: isa.ADDRI, R1: isa.RDX, Imm: 1})
	b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RDX, Base: isa.RBX, Disp: abi.GBCountOff})
}

func (gbPass) Epilogue(fi *FrameInfo, b *Builder) {
	slot := int32(fi.CanarySlots[0])
	// tls.count-- ; C1 = tls.buf[tls.count]
	b.Emit(isa.Inst{Op: isa.RDFSBASE, R1: isa.RBX})
	b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RDX, Base: isa.RBX, Disp: abi.GBCountOff})
	b.Emit(isa.Inst{Op: isa.SUBRI, R1: isa.RDX, Imm: 1})
	b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RDX, Base: isa.RBX, Disp: abi.GBCountOff})
	b.Emit(isa.Inst{Op: isa.MOVRR, R1: isa.R10, R2: isa.RDX})
	b.Emit(isa.Inst{Op: isa.SHLRI, R1: isa.R10, Imm: 3})
	b.Emit(isa.Inst{Op: isa.MOVRR, R1: isa.R11, R2: isa.RBX})
	b.Emit(isa.Inst{Op: isa.ADDRR, R1: isa.R11, R2: isa.R10})
	b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RDI, Base: isa.R11, Disp: abi.GBBufOff})
	// check C0 ^ C1 ^ C == 0
	b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RDX, Base: isa.RBP, Disp: slot})
	b.Emit(isa.Inst{Op: isa.XORRR, R1: isa.RDX, R2: isa.RDI})
	b.Emit(isa.Inst{Op: isa.XORFS, R1: isa.RDX, Disp: core.TLSCanaryOff})
	failCheck(b)
}

// --- dynaguard (Petsios et al.) ---

type dynaGuardPass struct{}

func (dynaGuardPass) Scheme() core.Scheme          { return core.SchemeDynaGuard }
func (dynaGuardPass) NeedsProtection(f *Func) bool { return f.HasBuffer() }
func (dynaGuardPass) CanaryBytes(*Func) int        { return 8 }
func (dynaGuardPass) GuardsCriticals() bool        { return false }

func (dynaGuardPass) Prologue(fi *FrameInfo, b *Builder) {
	slot := int32(fi.CanarySlots[0])
	// Classic SSP canary install...
	b.Emit(isa.Inst{Op: isa.LDFS, R1: isa.RAX, Disp: core.TLSCanaryOff})
	b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: slot})
	// ...plus the canary-address-buffer bookkeeping: CAB[count++] = &slot.
	b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.RBX, Imm: int64(mem.DataBase + abi.DynaGuardCountOff)})
	b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RCX, Base: isa.RBX, Disp: 0})
	b.Emit(isa.Inst{Op: isa.MOVRR, R1: isa.R10, R2: isa.RCX})
	b.Emit(isa.Inst{Op: isa.SHLRI, R1: isa.R10, Imm: 3})
	b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.R11, Imm: int64(mem.DataBase + abi.DynaGuardBufOff)})
	b.Emit(isa.Inst{Op: isa.ADDRR, R1: isa.R11, R2: isa.R10})
	b.Emit(isa.Inst{Op: isa.LEA, R1: isa.RDX, Base: isa.RBP, Disp: slot})
	b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RDX, Base: isa.R11, Disp: 0})
	b.Emit(isa.Inst{Op: isa.ADDRI, R1: isa.RCX, Imm: 1})
	b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RCX, Base: isa.RBX, Disp: 0})
}

func (dynaGuardPass) Epilogue(fi *FrameInfo, b *Builder) {
	// Pop the CAB entry, then the classic check.
	b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.RBX, Imm: int64(mem.DataBase + abi.DynaGuardCountOff)})
	b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RCX, Base: isa.RBX, Disp: 0})
	b.Emit(isa.Inst{Op: isa.SUBRI, R1: isa.RCX, Imm: 1})
	b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RCX, Base: isa.RBX, Disp: 0})
	b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RDX, Base: isa.RBP, Disp: int32(fi.CanarySlots[0])})
	b.Emit(isa.Inst{Op: isa.XORFS, R1: isa.RDX, Disp: core.TLSCanaryOff})
	failCheck(b)
}

// --- dcr (Hawkins et al.) ---

type dcrPass struct{}

func (dcrPass) Scheme() core.Scheme          { return core.SchemeDCR }
func (dcrPass) NeedsProtection(f *Func) bool { return f.HasBuffer() }
func (dcrPass) CanaryBytes(*Func) int        { return 8 }
func (dcrPass) GuardsCriticals() bool        { return false }

func (dcrPass) Prologue(fi *FrameInfo, b *Builder) {
	slot := int32(fi.CanarySlots[0])
	// canary = (C & high) | ((prevHead - &slot) >> 3); head = &slot.
	b.Emit(isa.Inst{Op: isa.LDFS, R1: isa.RAX, Disp: core.TLSCanaryOff})
	b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.RCX, Imm: immU64(abi.DCRHighMask)})
	b.Emit(isa.Inst{Op: isa.ANDRR, R1: isa.RAX, R2: isa.RCX})
	b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.RBX, Imm: int64(mem.DataBase + abi.DCRHeadOff)})
	b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RDX, Base: isa.RBX, Disp: 0})
	b.Emit(isa.Inst{Op: isa.LEA, R1: isa.R10, Base: isa.RBP, Disp: slot})
	b.Emit(isa.Inst{Op: isa.STORE, R1: isa.R10, Base: isa.RBX, Disp: 0})
	b.Emit(isa.Inst{Op: isa.SUBRR, R1: isa.RDX, R2: isa.R10})
	b.Emit(isa.Inst{Op: isa.SHRRI, R1: isa.RDX, Imm: 3})
	b.Emit(isa.Inst{Op: isa.ORRR, R1: isa.RAX, R2: isa.RDX})
	b.Emit(isa.Inst{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: slot})
}

func (dcrPass) Epilogue(fi *FrameInfo, b *Builder) {
	slot := int32(fi.CanarySlots[0])
	// Recover prev = &slot + (delta << 3), restore head, then compare the
	// canary's high bits with C's.
	b.Emit(isa.Inst{Op: isa.LOAD, R1: isa.RDX, Base: isa.RBP, Disp: slot})
	b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.R10, Imm: int64(abi.DCRDeltaMask)})
	b.Emit(isa.Inst{Op: isa.MOVRR, R1: isa.R11, R2: isa.RDX})
	b.Emit(isa.Inst{Op: isa.ANDRR, R1: isa.R11, R2: isa.R10})
	b.Emit(isa.Inst{Op: isa.SHLRI, R1: isa.R11, Imm: 3})
	b.Emit(isa.Inst{Op: isa.LEA, R1: isa.R10, Base: isa.RBP, Disp: slot})
	b.Emit(isa.Inst{Op: isa.ADDRR, R1: isa.R11, R2: isa.R10})
	b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.RBX, Imm: int64(mem.DataBase + abi.DCRHeadOff)})
	b.Emit(isa.Inst{Op: isa.STORE, R1: isa.R11, Base: isa.RBX, Disp: 0})
	b.Emit(isa.Inst{Op: isa.MOVRI, R1: isa.R10, Imm: immU64(abi.DCRHighMask)})
	b.Emit(isa.Inst{Op: isa.ANDRR, R1: isa.RDX, R2: isa.R10})
	b.Emit(isa.Inst{Op: isa.LDFS, R1: isa.RAX, Disp: core.TLSCanaryOff})
	b.Emit(isa.Inst{Op: isa.ANDRR, R1: isa.RAX, R2: isa.R10})
	b.Emit(isa.Inst{Op: isa.CMPRR, R1: isa.RAX, R2: isa.RDX})
	failCheck(b)
}
