package cc

import (
	"bytes"
	"testing"

	"repro/internal/abi"
	"repro/internal/core"
	"repro/internal/kernel"
)

// lvVictim is a handler whose critical variable feeds the response: if
// corruption is detected only at function return, the poisoned response has
// already been written.
func lvVictim() *Program {
	return &Program{
		Name:    "lvvictim",
		Globals: []Global{{Name: "reqlen", Size: 8}},
		Funcs: []*Func{
			{Name: "main", Body: []Stmt{Call{Callee: "serve"}}},
			{
				Name: "serve",
				Locals: []Local{
					{Name: "pad", Size: 16, IsBuffer: true},
					{Name: "n", Size: 8},
				},
				Body: []Stmt{
					Accept{Dst: "n"},
					While{Var: "n", Body: []Stmt{
						StoreGlobal{Global: "reqlen", Src: "n"},
						Call{Callee: "handle"},
						Accept{Dst: "n"},
					}},
				},
			},
			{
				Name: "handle",
				Locals: []Local{
					{Name: "secret", Size: 8, IsBuffer: true, Critical: true},
					{Name: "buf", Size: 16, IsBuffer: true},
					{Name: "len", Size: 8},
				},
				Body: []Stmt{
					SetConst{Dst: "secret", Value: 7},
					LoadGlobal{Dst: "len", Global: "reqlen"},
					ReadInput{Buf: "buf", LenVar: "len"},
					WriteOutput{Src: "secret", Len: 1}, // uses the critical value
				},
			},
		},
	}
}

// attackPayload overflows buf across the guard into secret, stopping short
// of the frame canary: 16 buffer bytes + 8 over the guard + 1 into secret.
func attackPayload() []byte {
	p := bytes.Repeat([]byte{0x42}, 25)
	p[24] = 9 // secret = 9
	return p
}

func runLVVictim(t *testing.T, checkOnWrite bool) kernel.Outcome {
	t.Helper()
	bin, err := Compile(lvVictim(), Options{
		Scheme:       core.SchemePSSPLV,
		Linkage:      abi.LinkStatic,
		CheckOnWrite: checkOnWrite,
	})
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(41)
	srv, err := kernel.NewForkServer(k, bin, kernel.SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Benign request must pass in both modes.
	out, err := srv.Handle([]byte("ok"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Crashed {
		t.Fatalf("benign request crashed (checkOnWrite=%v): %s", checkOnWrite, out.CrashReason)
	}
	if len(out.Response) != 1 || out.Response[0] != 7 {
		t.Fatalf("benign response %v", out.Response)
	}
	out, err = srv.Handle(attackPayload())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestLVEpilogueCheckDetectsButLeaksResponse(t *testing.T) {
	out := runLVVictim(t, false)
	if !out.Crashed {
		t.Fatal("epilogue check missed the guard corruption")
	}
	// The poisoned response escaped before the epilogue ran — the detection
	// latency problem §V-E2 describes.
	if len(out.Response) != 1 || out.Response[0] != 9 {
		t.Fatalf("expected leaked poisoned response [9], got %v", out.Response)
	}
}

func TestLVCheckOnWriteDetectsBeforeUse(t *testing.T) {
	out := runLVVictim(t, true)
	if !out.Crashed {
		t.Fatal("write-time check missed the guard corruption")
	}
	if len(out.Response) != 0 {
		t.Fatalf("write-time check still leaked a response: %v", out.Response)
	}
}

func TestCheckOnWriteIgnoredByNonLVPasses(t *testing.T) {
	// Other passes don't implement WriteChecker; the option must be a no-op
	// (identical code) rather than an error.
	prog := lvVictim()
	plain, err := Compile(prog, Options{Scheme: core.SchemePSSP, Linkage: abi.LinkStatic})
	if err != nil {
		t.Fatal(err)
	}
	withFlag, err := Compile(prog, Options{Scheme: core.SchemePSSP, Linkage: abi.LinkStatic, CheckOnWrite: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Text().Data, withFlag.Text().Data) {
		t.Fatal("CheckOnWrite changed code for a pass without WriteChecker")
	}
}

func TestCheckOnWriteAddsCode(t *testing.T) {
	prog := lvVictim()
	plain, err := Compile(prog, Options{Scheme: core.SchemePSSPLV, Linkage: abi.LinkStatic})
	if err != nil {
		t.Fatal(err)
	}
	withFlag, err := Compile(prog, Options{Scheme: core.SchemePSSPLV, Linkage: abi.LinkStatic, CheckOnWrite: true})
	if err != nil {
		t.Fatal(err)
	}
	if withFlag.CodeSize() <= plain.CodeSize() {
		t.Fatal("CheckOnWrite emitted no extra inspection code")
	}
}
