// Package cliutil holds the small shared conventions of the cmd/ CLIs, so
// they do not drift: one JSON report encoder (psspattack, psspbench and
// psspload all emit machine-readable reports through it) and the common
// fail-fast error exit.
package cliutil

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// EmitJSON writes v to w as one indented JSON document — the single
// report-encoding path of every -json CLI flag.
func EmitJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// Fail prints "prog: err" to stderr and exits 1.
func Fail(prog string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	os.Exit(1)
}
