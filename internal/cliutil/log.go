package cliutil

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
)

// Level orders the CLI log severities. Higher levels are chattier; a
// logger emits every line at or below its configured level.
type Level int

const (
	LevelError Level = iota
	LevelInfo
	LevelDebug
)

// ParseLevel maps a -log-level flag value onto a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "error":
		return LevelError, nil
	case "info", "":
		return LevelInfo, nil
	case "debug":
		return LevelDebug, nil
	}
	return LevelInfo, fmt.Errorf("unknown log level %q (want error, info or debug)", s)
}

// Logger is the CLIs' shared stderr logger. Every line keeps the
// long-standing "prog: msg" shape the CI smokes grep for; levels only
// decide whether a line is emitted at all.
type Logger struct {
	prog  string
	level Level

	mu sync.Mutex
	w  io.Writer
}

// NewLogger builds a logger writing "prog: msg" lines to stderr.
func NewLogger(prog string, level Level) *Logger {
	return &Logger{prog: prog, level: level, w: os.Stderr}
}

// SetOutput redirects the logger (tests).
func (l *Logger) SetOutput(w io.Writer) {
	l.mu.Lock()
	l.w = w
	l.mu.Unlock()
}

// Enabled reports whether lines at lv would be emitted.
func (l *Logger) Enabled(lv Level) bool { return l != nil && lv <= l.level }

func (l *Logger) emit(lv Level, format string, args ...any) {
	if !l.Enabled(lv) {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, l.prog+": "+format+"\n", args...)
}

// Errorf logs at error level (always emitted).
func (l *Logger) Errorf(format string, args ...any) { l.emit(LevelError, format, args...) }

// Infof logs operational lifecycle lines (startup, drain, store counters).
func (l *Logger) Infof(format string, args ...any) { l.emit(LevelInfo, format, args...) }

// Debugf logs per-event chatter (worker joins/deaths, lease reassignment,
// RPC traces).
func (l *Logger) Debugf(format string, args ...any) { l.emit(LevelDebug, format, args...) }

// Logf adapts the logger to the func(format, args...) hook shape used by
// fabric.Config.Logf and client.SetDebugf, pinned at lv. Returns nil when
// lv is disabled so hook owners can skip formatting entirely.
func (l *Logger) Logf(lv Level) func(format string, args ...any) {
	if !l.Enabled(lv) {
		return nil
	}
	return func(format string, args ...any) { l.emit(lv, format, args...) }
}
