package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/attack"
	"repro/pssp"
)

// The weighted-spec grammar shared by the traffic-shaping CLI flags:
// comma-separated "item" or "item:weight" entries, weights positive
// integers defaulting to 1. psspload's -mix lowers items to request
// classes; psspfuzz's -corpus and -dict lower them to seed inputs and
// dictionary tokens.

// WeightedItem is one parsed "name:weight" entry.
type WeightedItem struct {
	// Name is the item text with any ":weight" suffix stripped.
	Name string
	// Weight is the parsed weight (1 when omitted).
	Weight int
}

// ParseWeighted parses the "a:2,b" grammar strictly: anything after a colon
// must be a positive integer weight. This is the mix form, where class names
// never contain colons and a malformed weight should fail loudly.
func ParseWeighted(spec string) ([]WeightedItem, error) {
	return parseWeighted(spec, false)
}

// parseWeighted implements both grammar flavours. Loose mode cuts at the
// LAST colon and treats the suffix as a weight only when it is entirely
// digits, so payload tokens may themselves contain colons ("Host:",
// "HTTP/1.1:2" = token "HTTP/1.1" twice); a digits-but-zero suffix is still
// a weight error, never a silent literal.
func parseWeighted(spec string, loose bool) ([]WeightedItem, error) {
	var out []WeightedItem
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		cut := strings.Cut
		if loose {
			cut = cutLast
		}
		name, weightStr, hasWeight := cut(item, ":")
		weight := 1
		if hasWeight {
			weightStr = strings.TrimSpace(weightStr)
			if loose && !allDigits(weightStr) {
				name, weight = item, 1 // the colon belongs to the payload
			} else {
				w, err := strconv.Atoi(weightStr)
				if err != nil || w <= 0 {
					return nil, fmt.Errorf("item %q: weight must be a positive integer", item)
				}
				weight = w
			}
		}
		out = append(out, WeightedItem{Name: strings.TrimSpace(name), Weight: weight})
	}
	return out, nil
}

// cutLast is strings.Cut around the last occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	if i := strings.LastIndex(s, sep); i >= 0 {
		return s[:i], s[i+len(sep):], true
	}
	return s, "", false
}

// allDigits reports whether s is one or more ASCII digits.
func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// ParseMix parses psspload's -mix grammar into facade request classes: each
// item is either "benign" (the app's built-in request payload) or
// "probe=NAME" with NAME a registered attack strategy. Strategy names are
// validated here, at parse time, so a typo fails with the registry's
// name listing instead of surfacing later from the load engine.
func ParseMix(spec string) ([]pssp.RequestClass, error) {
	items, err := ParseWeighted(spec)
	if err != nil {
		return nil, fmt.Errorf("mix %s", err)
	}
	var mix []pssp.RequestClass
	for _, it := range items {
		switch {
		case it.Name == "benign":
			mix = append(mix, pssp.RequestClass{Name: "benign", Weight: it.Weight})
		case strings.HasPrefix(it.Name, "probe="):
			strat := strings.TrimPrefix(it.Name, "probe=")
			if strat == "" {
				return nil, fmt.Errorf("mix item %q: empty probe strategy", it.Name)
			}
			if _, err := attack.StrategyByName(strat); err != nil {
				return nil, fmt.Errorf("mix item %q: %w", it.Name, err)
			}
			mix = append(mix, pssp.RequestClass{Weight: it.Weight, Probe: strat})
		default:
			return nil, fmt.Errorf("mix item %q: class must be \"benign\" or \"probe=STRATEGY\"", it.Name)
		}
	}
	return mix, nil
}

// ParseByteItems lowers a weighted spec into byte strings replicated by
// weight — the corpus/dictionary flags of psspfuzz, where weight means "this
// many copies" (a heavier dictionary token is picked proportionally more
// often by the uniform mutation draw). It uses the loose grammar flavour:
// only a trailing ":digits" is a weight, so tokens may contain colons
// ("Host:", "HTTP/1.1:2"). Commas remain the item separator and cannot
// appear inside a token.
func ParseByteItems(spec string) ([][]byte, error) {
	items, err := parseWeighted(spec, true)
	if err != nil {
		return nil, err
	}
	var out [][]byte
	for _, it := range items {
		if it.Name == "" {
			return nil, fmt.Errorf("item %q: empty payload", it.Name)
		}
		for i := 0; i < it.Weight; i++ {
			out = append(out, []byte(it.Name))
		}
	}
	return out, nil
}
