package cliutil

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseWeighted(t *testing.T) {
	got, err := ParseWeighted(" a:2 , b ,, c : 3 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []WeightedItem{{"a", 2}, {"b", 1}, {"c", 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if got, err := ParseWeighted(""); err != nil || got != nil {
		t.Fatalf("empty spec: got %+v, %v", got, err)
	}
	for _, bad := range []string{"a:0", "a:-1", "a:x", "a:1.5", "a:"} {
		if _, err := ParseWeighted(bad); err == nil {
			t.Errorf("malformed weight %q accepted", bad)
		}
	}
}

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("benign:3,probe=adaptive:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0].Name != "benign" || mix[0].Weight != 3 ||
		mix[1].Probe != "adaptive" || mix[1].Weight != 1 {
		t.Fatalf("got %+v", mix)
	}
	// Aliases resolve like the attack registry.
	if _, err := ParseMix("probe=bbb"); err != nil {
		t.Fatalf("alias rejected: %v", err)
	}
	if mix, err := ParseMix(""); err != nil || mix != nil {
		t.Fatalf("empty spec: got %+v, %v", mix, err)
	}
}

func TestParseMixErrors(t *testing.T) {
	cases := map[string]string{
		"benign:0":           "weight",           // malformed weight
		"benign:notanumber":  "weight",           // malformed weight
		"probe=nosuchattack": "unknown strategy", // unknown strategy name
		"probe=":             "empty probe",      // empty probe class
		"gibberish":          "class must be",    // unknown class
		":2":                 "class must be",    // empty class name
	}
	for spec, wantSub := range cases {
		_, err := ParseMix(spec)
		if err == nil {
			t.Errorf("spec %q accepted", spec)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("spec %q: error %q does not mention %q", spec, err, wantSub)
		}
	}
	// The unknown-strategy error must list the registry so the fix is
	// discoverable from the message alone.
	_, err := ParseMix("probe=nosuchattack")
	if err == nil || !strings.Contains(err.Error(), "byte-by-byte") {
		t.Fatalf("unknown-strategy error does not list registry names: %v", err)
	}
}

func TestParseByteItems(t *testing.T) {
	got, err := ParseByteItems("GET /:2,PING")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got[0]) != "GET /" || string(got[1]) != "GET /" || string(got[2]) != "PING" {
		t.Fatalf("got %q", got)
	}
	if _, err := ParseByteItems(":2"); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := ParseByteItems("x:0"); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestParseByteItemsLooseGrammar(t *testing.T) {
	// Tokens may contain colons: only a trailing ":digits" is a weight.
	// These are the documented psspfuzz -dict examples.
	got, err := ParseByteItems("Host:,HTTP/1.1:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got[0]) != "Host:" ||
		string(got[1]) != "HTTP/1.1" || string(got[2]) != "HTTP/1.1" {
		t.Fatalf("got %q", got)
	}
	// A non-numeric suffix is part of the payload, not a weight error.
	got, err = ParseByteItems("x:bad")
	if err != nil || len(got) != 1 || string(got[0]) != "x:bad" {
		t.Fatalf("got %q, %v", got, err)
	}
}
