// Package core implements the paper's primary contribution: polymorphic
// stack canaries (P-SSP) and its three extensions, as a pure-Go library
// independent of the simulated machine.
//
// The building block is Algorithm 1, Re-Randomize: split the fixed TLS
// canary C into a fresh random pair (C0, C1) with C0 XOR C1 = C. Because C0
// is uniformly random, exposing either half (or any number of past pairs)
// reveals nothing about C — the property Theorem 1 proves and the tests in
// this package validate statistically.
//
// On top of the split, the package provides:
//
//   - the packed 32-bit variant the binary rewriter uses to preserve SSP's
//     stack layout (Section V-C of the paper),
//   - Algorithm 2, the per-critical-local-variable canary chain (P-SSP-LV),
//   - Algorithm 3, the AES-based one-way-function canary (P-SSP-OWF), and
//   - the global-buffer variant from the paper's discussion (Figure 6).
//
// Layout constants for the simulated TLS block live in tls.go; the scheme
// registry used by the compiler, kernel and experiment harness lives in
// scheme.go.
package core

import (
	"crypto/aes"
	"encoding/binary"

	"repro/internal/rng"
)

// ReRandomize is Algorithm 1: given the TLS canary c, return a fresh pair
// (c0, c1) with c0 XOR c1 == c. c0 is uniformly random, so each output pair
// is independent of every other pair derived from the same c.
func ReRandomize(c uint64, r *rng.Source) (c0, c1 uint64) {
	c0 = r.Uint64()
	return c0, c0 ^ c
}

// Check verifies a stack canary pair against the TLS canary. It is the
// function-epilogue test: C0 XOR C1 must reproduce C.
func Check(c0, c1, c uint64) bool { return c0^c1 == c }

// SplitPacked is the binary-instrumentation variant (paper Section V-C):
// the pair is downgraded to two 32-bit halves packed into a single 64-bit
// word, so the rewritten prologue still pushes exactly one word and the SSP
// stack layout is preserved. The low 32 bits hold C0, the high 32 bits C1,
// and C0 XOR C1 equals the low 32 bits of the TLS canary.
func SplitPacked(c uint64, r *rng.Source) uint64 {
	c0 := uint64(r.Uint32())
	c1 := (c0 ^ c) & 0xffffffff
	return c0 | c1<<32
}

// CheckPacked verifies a packed 32-bit pair against the TLS canary.
func CheckPacked(packed, c uint64) bool {
	return (packed^(packed>>32))&0xffffffff == c&0xffffffff
}

// PackedEntropyBits is the effective entropy of the packed variant: the
// paper acknowledges the drop from 64 to 32 bits and argues it is still 64×
// the byte-by-byte cost on 32-bit platforms.
const PackedEntropyBits = 32

// LVCanaries is Algorithm 2's canary chain for P-SSP-LV: one canary per
// critical local variable plus the frame canary C0, generated so that the
// XOR of all of them equals the TLS canary c.
//
// numCritical is |V|, the number of critical variables. The returned slice
// has numCritical+1 entries: index 0 is the frame canary C0 guarding the
// return address, and entries 1..numCritical guard the critical variables in
// stack order. All but the last are independently random; the last is
// computed as c XOR (all previous), mirroring line 14 of Algorithm 2.
func LVCanaries(c uint64, numCritical int, r *rng.Source) []uint64 {
	if numCritical < 0 {
		numCritical = 0
	}
	out := make([]uint64, numCritical+1)
	acc := c
	for i := 0; i < numCritical; i++ {
		out[i] = r.Uint64()
		acc ^= out[i]
	}
	out[numCritical] = acc
	return out
}

// LVCheck is the P-SSP-LV epilogue test: all frame canaries must XOR to the
// TLS canary.
func LVCheck(canaries []uint64, c uint64) bool {
	acc := uint64(0)
	for _, v := range canaries {
		acc ^= v
	}
	return acc == c
}

// OWFKey is the 128-bit AES key P-SSP-OWF keeps in the reserved callee-save
// registers r12/r13. It is generated once per process and never written to
// memory the attacker can overflow.
type OWFKey struct {
	Lo, Hi uint64 // r13, r12 in the paper's prologue
}

// NewOWFKey draws a fresh 128-bit key.
func NewOWFKey(r *rng.Source) OWFKey {
	return OWFKey{Lo: r.Uint64(), Hi: r.Uint64()}
}

// OWFCanary is Algorithm 3's canary: AES-128-encrypt the block
// (nonce || returnAddress) under the process key. The nonce (the paper uses
// the time-stamp counter) makes the canary differ across invocations of the
// same call site; binding the return address makes a canary leaked from one
// frame useless in any other frame.
//
// The result is the 128-bit ciphertext as (lo, hi) words, matching the
// xmm15 layout of the paper's Code 8.
func OWFCanary(key OWFKey, returnAddress, nonce uint64) (lo, hi uint64) {
	var k, block [16]byte
	binary.LittleEndian.PutUint64(k[:8], key.Lo)
	binary.LittleEndian.PutUint64(k[8:], key.Hi)
	binary.LittleEndian.PutUint64(block[:8], nonce)
	binary.LittleEndian.PutUint64(block[8:], returnAddress)
	cipher, err := aes.NewCipher(k[:])
	if err != nil {
		// aes.NewCipher only fails on invalid key sizes; 16 is always valid.
		panic("core: impossible AES key-size error: " + err.Error())
	}
	cipher.Encrypt(block[:], block[:])
	return binary.LittleEndian.Uint64(block[:8]), binary.LittleEndian.Uint64(block[8:])
}

// OWFCheck re-evaluates the one-way function and compares, as the P-SSP-OWF
// epilogue does (Code 9): the nonce is read back from the stack, the return
// address from the frame, and any modification of either — or of the stored
// ciphertext — fails the comparison.
func OWFCheck(key OWFKey, returnAddress, nonce, lo, hi uint64) bool {
	wantLo, wantHi := OWFCanary(key, returnAddress, nonce)
	return lo == wantLo && hi == wantHi
}

// GlobalBuffer is the discussion-section variant (Figure 6): the stack keeps
// only C0 (one word, preserving the 64-bit SSP layout) while the matching C1
// values live in a per-process buffer that fork clones along with the rest
// of the address space. Push/Pop follow frame creation and teardown.
type GlobalBuffer struct {
	c1s []uint64
}

// Push re-randomizes c and records C1 in the buffer, returning the C0 that
// goes into the new stack frame.
func (g *GlobalBuffer) Push(c uint64, r *rng.Source) uint64 {
	c0, c1 := ReRandomize(c, r)
	g.c1s = append(g.c1s, c1)
	return c0
}

// Pop verifies the topmost frame's C0 against its recorded C1 and removes
// the record. It reports whether the canary checks out; popping an empty
// buffer fails.
func (g *GlobalBuffer) Pop(c0, c uint64) bool {
	if len(g.c1s) == 0 {
		return false
	}
	c1 := g.c1s[len(g.c1s)-1]
	g.c1s = g.c1s[:len(g.c1s)-1]
	return Check(c0, c1, c)
}

// Depth returns the number of live frames recorded.
func (g *GlobalBuffer) Depth() int { return len(g.c1s) }

// Clone deep-copies the buffer — the fork(2) step in Figure 6 where the
// child inherits its parent's C1 records so frames created before the fork
// still verify.
func (g *GlobalBuffer) Clone() *GlobalBuffer {
	out := &GlobalBuffer{c1s: make([]uint64, len(g.c1s))}
	copy(out.c1s, g.c1s)
	return out
}
