package core

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestReRandomizeInvariant(t *testing.T) {
	r := rng.New(1)
	f := func(c uint64) bool {
		c0, c1 := ReRandomize(c, r)
		return Check(c0, c1, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReRandomizePairsDiffer(t *testing.T) {
	r := rng.New(2)
	const c = 0xdeadbeefcafebabe
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		c0, _ := ReRandomize(c, r)
		if seen[c0] {
			t.Fatalf("repeated C0 after %d draws", i)
		}
		seen[c0] = true
	}
}

func TestCheckRejectsCorruption(t *testing.T) {
	r := rng.New(3)
	const c = 0x1122334455667788
	c0, c1 := ReRandomize(c, r)
	// Flipping any single byte of either half must fail the check, the
	// overwhelming-probability detection property of SSP-style canaries.
	for byteIdx := 0; byteIdx < 8; byteIdx++ {
		mask := uint64(0xff) << (8 * byteIdx)
		if Check(c0^mask, c1, c) {
			t.Errorf("corrupting C0 byte %d passed", byteIdx)
		}
		if Check(c0, c1^mask, c) {
			t.Errorf("corrupting C1 byte %d passed", byteIdx)
		}
	}
}

// TestTheorem1Independence validates the paper's Theorem 1 empirically:
// observing many C1 values from re-randomizations of the same C must give no
// information about C. We fix two very different C values, collect the C1
// streams, and check both streams are byte-wise uniform (chi-square), i.e.
// the observable distribution does not depend on C.
func TestTheorem1Independence(t *testing.T) {
	for _, c := range []uint64{0, 0xffffffffffffffff, 0x0123456789abcdef} {
		r := rng.New(42) // same entropy stream for every C
		const draws = 40000
		var counts [8][16]int // per byte position, nibble histogram
		for i := 0; i < draws; i++ {
			_, c1 := ReRandomize(c, r)
			for b := 0; b < 8; b++ {
				counts[b][(c1>>(8*b))&0xf]++
			}
		}
		expected := float64(draws) / 16
		for b := 0; b < 8; b++ {
			var chi2 float64
			for _, n := range counts[b] {
				d := float64(n) - expected
				chi2 += d * d / expected
			}
			// 15 dof, alpha=0.001 critical value ~ 37.7
			if chi2 > 37.7 {
				t.Errorf("C=%x byte %d: chi-square %.1f — C1 leaks information about C", c, b, chi2)
			}
		}
	}
}

func TestSplitPackedInvariant(t *testing.T) {
	r := rng.New(4)
	f := func(c uint64) bool {
		return CheckPacked(SplitPacked(c, r), c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckPackedRejectsCorruption(t *testing.T) {
	r := rng.New(5)
	const c = 0xfeedface12345678
	packed := SplitPacked(c, r)
	for byteIdx := 0; byteIdx < 8; byteIdx++ {
		if CheckPacked(packed^(uint64(0xff)<<(8*byteIdx)), c) {
			t.Errorf("corrupting packed byte %d passed", byteIdx)
		}
	}
}

func TestLVCanariesInvariant(t *testing.T) {
	r := rng.New(6)
	for _, nCrit := range []int{0, 1, 2, 3, 4, 8, 16} {
		const c = 0xabcdef
		cs := LVCanaries(c, nCrit, r)
		if len(cs) != nCrit+1 {
			t.Fatalf("numCritical=%d: got %d canaries", nCrit, len(cs))
		}
		if !LVCheck(cs, c) {
			t.Fatalf("numCritical=%d: chain does not XOR to C", nCrit)
		}
	}
}

func TestLVCanariesNegativeClamped(t *testing.T) {
	cs := LVCanaries(7, -3, rng.New(1))
	if len(cs) != 1 || cs[0] != 7 {
		t.Fatalf("got %v", cs)
	}
}

func TestLVCheckDetectsAnySingleCorruption(t *testing.T) {
	r := rng.New(7)
	const c = 0x5555aaaa5555aaaa
	cs := LVCanaries(c, 4, r)
	for i := range cs {
		for bit := 0; bit < 64; bit += 7 {
			mut := make([]uint64, len(cs))
			copy(mut, cs)
			mut[i] ^= 1 << uint(bit)
			if LVCheck(mut, c) {
				t.Fatalf("flipping canary %d bit %d passed", i, bit)
			}
		}
	}
}

func TestLVCanariesIndependentAcrossCalls(t *testing.T) {
	// Two invocations for the same C must produce unrelated chains
	// (StackFences, by contrast, reuses one canary everywhere).
	r := rng.New(8)
	a := LVCanaries(0x42, 3, r)
	b := LVCanaries(0x42, 3, r)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("two LV chains identical")
	}
}

func TestOWFCanaryDeterministicPerInputs(t *testing.T) {
	key := OWFKey{Lo: 1, Hi: 2}
	l1, h1 := OWFCanary(key, 0x400123, 77)
	l2, h2 := OWFCanary(key, 0x400123, 77)
	if l1 != l2 || h1 != h2 {
		t.Fatal("OWF not deterministic for fixed inputs")
	}
	if !OWFCheck(key, 0x400123, 77, l1, h1) {
		t.Fatal("OWFCheck rejects its own canary")
	}
}

func TestOWFCanaryBindsEveryInput(t *testing.T) {
	key := OWFKey{Lo: 0xa, Hi: 0xb}
	lo, hi := OWFCanary(key, 0x400123, 77)
	if OWFCheck(key, 0x400124, 77, lo, hi) {
		t.Error("canary valid for different return address")
	}
	if OWFCheck(key, 0x400123, 78, lo, hi) {
		t.Error("canary valid for different nonce")
	}
	if OWFCheck(OWFKey{Lo: 0xa, Hi: 0xc}, 0x400123, 77, lo, hi) {
		t.Error("canary valid under different key")
	}
	if OWFCheck(key, 0x400123, 77, lo^1, hi) {
		t.Error("corrupted ciphertext accepted")
	}
}

func TestOWFNonceMakesCanariesPolymorphic(t *testing.T) {
	// Same call site, different nonces: canaries must differ (this is why
	// Algorithm 3 includes the nonce — without it the canary is fixed per
	// site and the byte-by-byte attack returns).
	key := NewOWFKey(rng.New(9))
	seen := make(map[uint64]bool)
	for nonce := uint64(0); nonce < 256; nonce++ {
		lo, _ := OWFCanary(key, 0x400123, nonce)
		if seen[lo] {
			t.Fatal("OWF canary repeated across nonces")
		}
		seen[lo] = true
	}
}

func TestOWFLeakDoesNotForgeOtherFrame(t *testing.T) {
	// Exposure resilience: knowing frame A's (nonce, canary) gives no valid
	// canary for frame B with a different return address.
	key := NewOWFKey(rng.New(10))
	loA, hiA := OWFCanary(key, 0xAAAA, 1)
	if OWFCheck(key, 0xBBBB, 1, loA, hiA) {
		t.Fatal("frame A canary verified in frame B")
	}
}

func TestGlobalBufferPushPop(t *testing.T) {
	r := rng.New(11)
	const c = 0x1234
	g := &GlobalBuffer{}
	var c0s []uint64
	for i := 0; i < 5; i++ {
		c0s = append(c0s, g.Push(c, r))
	}
	if g.Depth() != 5 {
		t.Fatalf("depth = %d", g.Depth())
	}
	for i := 4; i >= 0; i-- {
		if !g.Pop(c0s[i], c) {
			t.Fatalf("pop %d failed for valid canary", i)
		}
	}
	if g.Depth() != 0 {
		t.Fatalf("depth after pops = %d", g.Depth())
	}
}

func TestGlobalBufferDetectsCorruption(t *testing.T) {
	r := rng.New(12)
	g := &GlobalBuffer{}
	c0 := g.Push(99, r)
	if g.Pop(c0^0xff, 99) {
		t.Fatal("corrupted C0 accepted")
	}
}

func TestGlobalBufferPopEmptyFails(t *testing.T) {
	g := &GlobalBuffer{}
	if g.Pop(0, 0) {
		t.Fatal("pop of empty buffer succeeded")
	}
}

func TestGlobalBufferCloneForkSemantics(t *testing.T) {
	// Frames created before the fork must verify in both parent and child;
	// frames created after are independent.
	r := rng.New(13)
	const c = 0x77
	parent := &GlobalBuffer{}
	preFork := parent.Push(c, r)
	child := parent.Clone()

	childC0 := child.Push(c, r)
	if !child.Pop(childC0, c) {
		t.Fatal("child's own frame failed")
	}
	if !child.Pop(preFork, c) {
		t.Fatal("inherited frame failed in child")
	}
	if !parent.Pop(preFork, c) {
		t.Fatal("pre-fork frame failed in parent after child ran")
	}
}
