package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rng"
)

// The basic P-SSP flow: split the fixed TLS canary into a fresh pair at
// fork time, verify at function return.
func ExampleReRandomize() {
	r := rng.New(1)
	c := r.Uint64() // the TLS canary, fixed for the process lifetime

	// fork(): the shared library re-randomizes the shadow pair.
	c0, c1 := core.ReRandomize(c, r)

	// Function epilogue: the pair must XOR back to C.
	fmt.Println("canary intact:", core.Check(c0, c1, c))
	// An overflow that rewrites C1 fails the check.
	fmt.Println("after corruption:", core.Check(c0, c1^0xff, c))
	// Output:
	// canary intact: true
	// after corruption: false
}

// Algorithm 2: one guard canary per critical local variable; the whole
// chain XORs to the TLS canary.
func ExampleLVCanaries() {
	r := rng.New(2)
	const c = 0xfeedface
	chain := core.LVCanaries(c, 3, r)
	fmt.Println("canaries:", len(chain))
	fmt.Println("consistent:", core.LVCheck(chain, c))
	chain[2] ^= 1 // overflow crosses one guard
	fmt.Println("after corruption:", core.LVCheck(chain, c))
	// Output:
	// canaries: 4
	// consistent: true
	// after corruption: false
}

// Algorithm 3: the one-way-function canary binds the return address and a
// nonce under a key that never touches overflowable memory.
func ExampleOWFCanary() {
	key := core.NewOWFKey(rng.New(3))
	lo, hi := core.OWFCanary(key, 0x400123, 42)
	fmt.Println("own frame:", core.OWFCheck(key, 0x400123, 42, lo, hi))
	fmt.Println("replayed elsewhere:", core.OWFCheck(key, 0x400999, 42, lo, hi))
	// Output:
	// own frame: true
	// replayed elsewhere: false
}

// The Figure 6 variant: one-word stack canary, C1 halves in a per-thread
// buffer that fork clones.
func ExampleGlobalBuffer() {
	r := rng.New(4)
	const c = 0xabcd
	parent := &core.GlobalBuffer{}
	c0 := parent.Push(c, r) // prologue of a frame created before fork

	child := parent.Clone() // fork(2)
	fmt.Println("inherited frame verifies in child:", child.Pop(c0, c))
	fmt.Println("and in parent:", parent.Pop(c0, c))
	// Output:
	// inherited frame verifies in child: true
	// and in parent: true
}
