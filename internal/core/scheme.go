package core

import (
	"fmt"
	"sort"
	"strings"
)

// Scheme identifies a stack-protection scheme. The set covers the paper's
// contribution (PSSP and its three extensions), the baselines it compares
// against in Table I (SSP, RAF-SSP, DynaGuard, DCR), the unprotected
// baseline, and the discussion-section global-buffer variant.
type Scheme uint8

// Protection schemes.
const (
	// SchemeNone compiles with no stack protection.
	SchemeNone Scheme = iota + 1
	// SchemeSSP is classic stack smashing protection: one TLS canary cloned
	// into every frame.
	SchemeSSP
	// SchemeRAFSSP is renew-after-fork SSP (Marco-Gisbert & Ripoll): the TLS
	// canary itself is refreshed in the child, which breaks frames inherited
	// from the parent.
	SchemeRAFSSP
	// SchemeDynaGuard tracks every canary address in a per-thread buffer and
	// rewrites them all after fork (Petsios et al.).
	SchemeDynaGuard
	// SchemeDCR embeds offsets in canaries to form an in-stack linked list
	// and re-randomizes by walking it (Hawkins et al.).
	SchemeDCR
	// SchemePSSP is the paper's basic scheme: shadow pair (C0,C1) refreshed
	// on fork, TLS canary unchanged.
	SchemePSSP
	// SchemePSSPNT re-randomizes per function call via rdrand; no TLS or
	// fork changes.
	SchemePSSPNT
	// SchemePSSPLV extends NT with per-critical-local-variable canaries.
	SchemePSSPLV
	// SchemePSSPOWF derives the canary with AES over (nonce, return address).
	SchemePSSPOWF
	// SchemePSSPGB is the discussion-section variant keeping C1 halves in a
	// fork-cloned global buffer, preserving the one-word stack canary.
	SchemePSSPGB
)

var schemeNames = map[Scheme]string{
	SchemeNone:      "none",
	SchemeSSP:       "ssp",
	SchemeRAFSSP:    "raf-ssp",
	SchemeDynaGuard: "dynaguard",
	SchemeDCR:       "dcr",
	SchemePSSP:      "p-ssp",
	SchemePSSPNT:    "p-ssp-nt",
	SchemePSSPLV:    "p-ssp-lv",
	SchemePSSPOWF:   "p-ssp-owf",
	SchemePSSPGB:    "p-ssp-gb",
}

// schemeAliases maps accepted spellings to canonical names. The paper and
// its artifacts write the scheme family both with and without the leading
// dash ("pssp" vs "p-ssp"); command lines tend to drop punctuation entirely.
var schemeAliases = map[string]string{
	"pssp":        "p-ssp",
	"pssp-nt":     "p-ssp-nt",
	"psspnt":      "p-ssp-nt",
	"pssp-lv":     "p-ssp-lv",
	"pssplv":      "p-ssp-lv",
	"pssp-owf":    "p-ssp-owf",
	"psspowf":     "p-ssp-owf",
	"pssp-gb":     "p-ssp-gb",
	"psspgb":      "p-ssp-gb",
	"rafssp":      "raf-ssp",
	"unprotected": "none",
}

// String returns the scheme's canonical lower-case name.
func (s Scheme) String() string {
	if n, ok := schemeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("scheme?%d", uint8(s))
}

// Valid reports whether s is one of the defined schemes. The zero value is
// deliberately invalid (schemes start at iota+1) so that "unset" is
// distinguishable from SchemeNone.
func (s Scheme) Valid() bool {
	_, ok := schemeNames[s]
	return ok
}

// ParseScheme resolves a name to a Scheme. Matching is case-insensitive,
// ignores surrounding whitespace, and accepts the paper's undashed aliases
// ("pssp" for "p-ssp", "psspowf" for "p-ssp-owf", ...). Candidates are
// checked in declaration order, so resolution is deterministic. The error
// for an unknown name enumerates every accepted spelling, so a CLI typo is
// self-correcting instead of a dead end.
func ParseScheme(name string) (Scheme, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	if canon, ok := schemeAliases[n]; ok {
		n = canon
	}
	for _, s := range Schemes() {
		if schemeNames[s] == n {
			return s, nil
		}
	}
	return 0, fmt.Errorf("core: unknown scheme %q (schemes: %s; aliases: %s)",
		name, strings.Join(SchemeNames(), ", "), strings.Join(schemeAliasNames(), ", "))
}

// SchemeNames returns the canonical scheme names in declaration order.
func SchemeNames() []string {
	ss := Schemes()
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = schemeNames[s]
	}
	return names
}

// schemeAliasNames returns the accepted alias spellings, sorted.
func schemeAliasNames() []string {
	names := make([]string, 0, len(schemeAliases))
	for a := range schemeAliases {
		names = append(names, a)
	}
	sort.Strings(names)
	return names
}

// Schemes returns all defined schemes in declaration order.
func Schemes() []Scheme {
	return []Scheme{
		SchemeNone, SchemeSSP, SchemeRAFSSP, SchemeDynaGuard, SchemeDCR,
		SchemePSSP, SchemePSSPNT, SchemePSSPLV, SchemePSSPOWF, SchemePSSPGB,
	}
}

// Properties describes a scheme's security and deployment profile — the
// rows of the paper's Table I plus the axes discussed in Sections III–IV.
type Properties struct {
	// BROPResistant reports whether the byte-by-byte attack gains no
	// cumulative advantage (each trial faces fresh entropy).
	BROPResistant bool
	// CorrectAcrossFork reports whether a child returning into frames
	// created by its parent passes canary checks.
	CorrectAcrossFork bool
	// ProtectsLocalVariables reports whether overflows that stop short of
	// the return address are detectable.
	ProtectsLocalVariables bool
	// ExposureResilient reports whether leaking one frame's stack canary
	// keeps other frames safe.
	ExposureResilient bool
	// NeedsTLSUpdate reports whether deployment changes the TLS layout or
	// fork-like functions.
	NeedsTLSUpdate bool
	// NeedsFrameTracking reports whether the scheme must track canary
	// locations at runtime (the DynaGuard/DCR complexity P-SSP avoids).
	NeedsFrameTracking bool
	// Detects reports whether the scheme detects a plain stack smash at all.
	Detects bool
}

// Props returns the scheme's profile.
func (s Scheme) Props() Properties {
	switch s {
	case SchemeNone:
		return Properties{}
	case SchemeSSP:
		return Properties{Detects: true, CorrectAcrossFork: true}
	case SchemeRAFSSP:
		return Properties{Detects: true, BROPResistant: true}
	case SchemeDynaGuard:
		return Properties{Detects: true, BROPResistant: true, CorrectAcrossFork: true,
			NeedsTLSUpdate: true, NeedsFrameTracking: true}
	case SchemeDCR:
		return Properties{Detects: true, BROPResistant: true, CorrectAcrossFork: true,
			NeedsFrameTracking: true}
	case SchemePSSP:
		return Properties{Detects: true, BROPResistant: true, CorrectAcrossFork: true,
			NeedsTLSUpdate: true}
	case SchemePSSPNT:
		return Properties{Detects: true, BROPResistant: true, CorrectAcrossFork: true}
	case SchemePSSPLV:
		return Properties{Detects: true, BROPResistant: true, CorrectAcrossFork: true,
			ProtectsLocalVariables: true}
	case SchemePSSPOWF:
		return Properties{Detects: true, BROPResistant: true, CorrectAcrossFork: true,
			ExposureResilient: true}
	case SchemePSSPGB:
		return Properties{Detects: true, BROPResistant: true, CorrectAcrossFork: true,
			NeedsTLSUpdate: true, NeedsFrameTracking: true}
	default:
		return Properties{}
	}
}
