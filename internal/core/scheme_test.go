package core

import (
	"strings"
	"testing"
)

func TestSchemeNamesRoundTrip(t *testing.T) {
	for _, s := range Schemes() {
		got, err := ParseScheme(s.String())
		if err != nil {
			t.Errorf("ParseScheme(%q): %v", s.String(), err)
			continue
		}
		if got != s {
			t.Errorf("round trip %v -> %q -> %v", s, s.String(), got)
		}
	}
}

func TestParseSchemeUnknown(t *testing.T) {
	if _, err := ParseScheme("stackguard-9000"); err == nil {
		t.Fatal("unknown scheme parsed")
	}
	if _, err := ParseScheme(""); err == nil {
		t.Fatal("empty scheme parsed")
	}
}

func TestParseSchemeErrorEnumeratesCandidates(t *testing.T) {
	_, err := ParseScheme("stackguard-9000")
	if err == nil {
		t.Fatal("unknown scheme parsed")
	}
	msg := err.Error()
	for _, want := range append(SchemeNames(), "pssp", "rafssp", "unprotected") {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not name candidate %q", msg, want)
		}
	}
}

func TestSchemeNamesMatchDeclarationOrder(t *testing.T) {
	names := SchemeNames()
	schemes := Schemes()
	if len(names) != len(schemes) {
		t.Fatalf("got %d names for %d schemes", len(names), len(schemes))
	}
	for i, s := range schemes {
		if names[i] != s.String() {
			t.Errorf("name %d = %q, want %q", i, names[i], s.String())
		}
	}
}

func TestParseSchemeAliasesAndCase(t *testing.T) {
	cases := map[string]Scheme{
		"pssp":        SchemePSSP,
		"PSSP":        SchemePSSP,
		"P-SSP":       SchemePSSP,
		"  p-ssp  ":   SchemePSSP,
		"psspowf":     SchemePSSPOWF,
		"PSSP-LV":     SchemePSSPLV,
		"psspnt":      SchemePSSPNT,
		"psspgb":      SchemePSSPGB,
		"RAFSSP":      SchemeRAFSSP,
		"Raf-SSP":     SchemeRAFSSP,
		"DynaGuard":   SchemeDynaGuard,
		"unprotected": SchemeNone,
		"NONE":        SchemeNone,
	}
	for name, want := range cases {
		got, err := ParseScheme(name)
		if err != nil {
			t.Errorf("ParseScheme(%q): %v", name, err)
			continue
		}
		if got != want {
			t.Errorf("ParseScheme(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestParseSchemeDeterministic(t *testing.T) {
	for i := 0; i < 100; i++ {
		got, err := ParseScheme("ssp")
		if err != nil || got != SchemeSSP {
			t.Fatalf("iteration %d: ParseScheme(ssp) = %v, %v", i, got, err)
		}
	}
}

func TestSchemeValid(t *testing.T) {
	if Scheme(0).Valid() {
		t.Error("zero scheme must be invalid (schemes start at iota+1)")
	}
	for _, s := range Schemes() {
		if !s.Valid() {
			t.Errorf("%v must be valid", s)
		}
	}
	if Scheme(99).Valid() {
		t.Error("out-of-range scheme must be invalid")
	}
}

func TestPropsMatchTableI(t *testing.T) {
	// Table I: SSP does not prevent BROP but is correct; RAF-SSP prevents
	// BROP but is incorrect; DynaGuard/DCR both; P-SSP both without frame
	// tracking.
	cases := []struct {
		s            Scheme
		brop         bool
		correct      bool
		frameTracked bool
	}{
		{SchemeSSP, false, true, false},
		{SchemeRAFSSP, true, false, false},
		{SchemeDynaGuard, true, true, true},
		{SchemeDCR, true, true, true},
		{SchemePSSP, true, true, false},
		{SchemePSSPNT, true, true, false},
	}
	for _, c := range cases {
		p := c.s.Props()
		if p.BROPResistant != c.brop {
			t.Errorf("%v: BROPResistant = %v, want %v", c.s, p.BROPResistant, c.brop)
		}
		if p.CorrectAcrossFork != c.correct {
			t.Errorf("%v: CorrectAcrossFork = %v, want %v", c.s, p.CorrectAcrossFork, c.correct)
		}
		if p.NeedsFrameTracking != c.frameTracked {
			t.Errorf("%v: NeedsFrameTracking = %v, want %v", c.s, p.NeedsFrameTracking, c.frameTracked)
		}
	}
}

func TestExtensionProps(t *testing.T) {
	if !SchemePSSPLV.Props().ProtectsLocalVariables {
		t.Error("P-SSP-LV must protect local variables")
	}
	if SchemePSSP.Props().ProtectsLocalVariables {
		t.Error("basic P-SSP does not protect local variables")
	}
	if !SchemePSSPOWF.Props().ExposureResilient {
		t.Error("P-SSP-OWF must be exposure resilient")
	}
	if SchemePSSP.Props().ExposureResilient {
		t.Error("basic P-SSP is not exposure resilient (single point of failure)")
	}
	if SchemePSSPNT.Props().NeedsTLSUpdate {
		t.Error("P-SSP-NT must not need TLS updates (its selling point)")
	}
	if !SchemePSSP.Props().NeedsTLSUpdate {
		t.Error("basic P-SSP updates the TLS shadow on fork")
	}
}

func TestNoneDetectsNothing(t *testing.T) {
	if SchemeNone.Props().Detects {
		t.Error("none must not detect")
	}
	for _, s := range Schemes()[1:] {
		if !s.Props().Detects {
			t.Errorf("%v must detect stack smash", s)
		}
	}
}

func TestUnknownSchemeString(t *testing.T) {
	if Scheme(99).String() == "" {
		t.Fatal("empty string for unknown scheme")
	}
	if Scheme(99).Props().Detects {
		t.Fatal("unknown scheme claims detection")
	}
}
