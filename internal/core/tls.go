package core

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/rng"
)

// TLS layout offsets, relative to the FS base. They mirror the paper's
// Section V-A: the classic canary C at fs:0x28, and the P-SSP shadow canary
// pair (C0, C1) at fs:0x2a8..0x2b7.
const (
	// TLSCanaryOff is the classic SSP canary slot (fs:0x28). P-SSP never
	// changes this value after process start — that is the design point that
	// keeps inherited frames valid across fork.
	TLSCanaryOff = 0x28
	// TLSShadow0Off holds C0 of the shadow pair (fs:0x2a8).
	TLSShadow0Off = 0x2a8
	// TLSShadow1Off holds C1 of the shadow pair (fs:0x2b0).
	TLSShadow1Off = 0x2b0
	// TLSPackedOff holds the packed 32-bit pair used by instrumentation-based
	// P-SSP. The paper stores its packed pair at fs:0x2a8 in that deployment;
	// we give it a distinct slot so one TLS image serves both deployments
	// (documented as a deviation in DESIGN.md §6).
	TLSPackedOff = 0x2b8
)

// TLS wraps a process's thread-local-storage block in an address space and
// provides the canary operations the shared library performs: seeding at
// startup and refreshing the shadow pair after fork.
type TLS struct {
	space *mem.Space
	base  uint64
}

// NewTLS wraps the TLS block at base within sp. The block must already be
// mapped (the kernel maps it when building a process).
func NewTLS(sp *mem.Space, base uint64) *TLS {
	return &TLS{space: sp, base: base}
}

// Base returns the FS base address.
func (t *TLS) Base() uint64 { return t.base }

// Seed installs a fresh TLS canary C and a first shadow pair. It is the
// setup_p-ssp constructor from the paper's shared library, run before
// main().
func (t *TLS) Seed(r *rng.Source) error {
	c := r.Uint64()
	// Terminator-style canaries keep a zero byte in practice; we use the raw
	// random word, as the paper's analysis does.
	if err := t.space.WriteU64(t.base+TLSCanaryOff, c); err != nil {
		return fmt.Errorf("core: seed TLS canary: %w", err)
	}
	return t.RefreshShadow(r)
}

// Canary returns the TLS canary C.
func (t *TLS) Canary() (uint64, error) {
	return t.space.ReadU64(t.base + TLSCanaryOff)
}

// Shadow returns the current shadow pair (C0, C1).
func (t *TLS) Shadow() (c0, c1 uint64, err error) {
	if c0, err = t.space.ReadU64(t.base + TLSShadow0Off); err != nil {
		return 0, 0, err
	}
	if c1, err = t.space.ReadU64(t.base + TLSShadow1Off); err != nil {
		return 0, 0, err
	}
	return c0, c1, nil
}

// RefreshShadow re-randomizes the shadow canary pair (both the 64-bit pair
// and the packed 32-bit variant) without touching the TLS canary C. It is
// the operation the wrapped fork()/pthread_create() perform in the child.
func (t *TLS) RefreshShadow(r *rng.Source) error {
	c, err := t.Canary()
	if err != nil {
		return fmt.Errorf("core: refresh shadow: %w", err)
	}
	c0, c1 := ReRandomize(c, r)
	if err := t.space.WriteU64(t.base+TLSShadow0Off, c0); err != nil {
		return err
	}
	if err := t.space.WriteU64(t.base+TLSShadow1Off, c1); err != nil {
		return err
	}
	return t.space.WriteU64(t.base+TLSPackedOff, SplitPacked(c, r))
}

// Verify checks the invariant the whole design rests on: the shadow pair
// must XOR to the TLS canary, and the packed pair's halves must XOR to its
// low 32 bits.
func (t *TLS) Verify() error {
	c, err := t.Canary()
	if err != nil {
		return err
	}
	c0, c1, err := t.Shadow()
	if err != nil {
		return err
	}
	if !Check(c0, c1, c) {
		return fmt.Errorf("core: TLS shadow pair inconsistent: %x^%x != %x", c0, c1, c)
	}
	packed, err := t.space.ReadU64(t.base + TLSPackedOff)
	if err != nil {
		return err
	}
	if !CheckPacked(packed, c) {
		return fmt.Errorf("core: TLS packed pair inconsistent: %x vs %x", packed, c)
	}
	return nil
}

// SetCanary overwrites the TLS canary C itself. P-SSP never does this; it
// exists to model the RAF-SSP baseline, whose renew-after-fork update is
// exactly what breaks correctness for inherited frames.
func (t *TLS) SetCanary(c uint64) error {
	return t.space.WriteU64(t.base+TLSCanaryOff, c)
}
