package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/rng"
)

func newTLS(t *testing.T) *TLS {
	t.Helper()
	sp := mem.NewSpace()
	if _, err := sp.Map("tls", mem.TLSBase, mem.TLSSize, mem.PermRead|mem.PermWrite); err != nil {
		t.Fatal(err)
	}
	return NewTLS(sp, mem.TLSBase)
}

func TestSeedEstablishesInvariant(t *testing.T) {
	tls := newTLS(t)
	if err := tls.Seed(rng.New(1)); err != nil {
		t.Fatal(err)
	}
	if err := tls.Verify(); err != nil {
		t.Fatal(err)
	}
	c, err := tls.Canary()
	if err != nil {
		t.Fatal(err)
	}
	if c == 0 {
		t.Fatal("seeded canary is zero")
	}
}

func TestRefreshShadowKeepsCanary(t *testing.T) {
	tls := newTLS(t)
	r := rng.New(2)
	if err := tls.Seed(r); err != nil {
		t.Fatal(err)
	}
	before, _ := tls.Canary()
	c0a, c1a, _ := tls.Shadow()

	if err := tls.RefreshShadow(r); err != nil {
		t.Fatal(err)
	}
	after, _ := tls.Canary()
	c0b, c1b, _ := tls.Shadow()

	if before != after {
		t.Fatalf("TLS canary changed by refresh: %x -> %x", before, after)
	}
	if c0a == c0b && c1a == c1b {
		t.Fatal("shadow pair did not change on refresh")
	}
	if err := tls.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRefreshShadowManyTimesStaysConsistent(t *testing.T) {
	tls := newTLS(t)
	r := rng.New(3)
	if err := tls.Seed(r); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tls.RefreshShadow(r); err != nil {
			t.Fatal(err)
		}
		if err := tls.Verify(); err != nil {
			t.Fatalf("refresh %d: %v", i, err)
		}
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	tls := newTLS(t)
	r := rng.New(4)
	if err := tls.Seed(r); err != nil {
		t.Fatal(err)
	}
	// Corrupt C0 directly.
	c0, _, _ := tls.Shadow()
	if err := tls.space.WriteU64(tls.base+TLSShadow0Off, c0^0xff); err != nil {
		t.Fatal(err)
	}
	if err := tls.Verify(); err == nil {
		t.Fatal("verify passed with corrupted shadow")
	}
}

func TestSetCanaryModelsRAFSSP(t *testing.T) {
	tls := newTLS(t)
	r := rng.New(5)
	if err := tls.Seed(r); err != nil {
		t.Fatal(err)
	}
	c0, c1, _ := tls.Shadow()
	if err := tls.SetCanary(0x1111); err != nil {
		t.Fatal(err)
	}
	// The old shadow pair no longer matches — the RAF-SSP correctness bug.
	if Check(c0, c1, 0x1111) {
		t.Fatal("old shadow still valid after canary renewal (should break)")
	}
}

func TestTLSOffsetsMatchPaper(t *testing.T) {
	if TLSCanaryOff != 0x28 {
		t.Errorf("canary offset 0x%x, paper uses 0x28", TLSCanaryOff)
	}
	if TLSShadow0Off != 0x2a8 || TLSShadow1Off != 0x2b0 {
		t.Errorf("shadow offsets 0x%x/0x%x, paper uses 0x2a8/0x2b0", TLSShadow0Off, TLSShadow1Off)
	}
}

func TestSeedOnUnmappedTLSFails(t *testing.T) {
	sp := mem.NewSpace()
	tls := NewTLS(sp, mem.TLSBase)
	if err := tls.Seed(rng.New(1)); err == nil {
		t.Fatal("seed on unmapped TLS succeeded")
	}
}
