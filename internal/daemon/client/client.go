// Package client is the Go client for psspd's newline-delimited JSON-RPC
// protocol (see package daemon). It backs the -remote mode of psspattack,
// psspload and psspfuzz: the CLI builds the same params it would run
// locally, ships them to the daemon, and re-emits the returned report —
// byte-identical for a fixed seed.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"syscall"
	"time"

	"repro/internal/daemon"
)

// Sentinel errors mapped from the daemon's stable wire codes; match with
// errors.Is.
var (
	// ErrQuota: the tenant exhausted its resource quota.
	ErrQuota = errors.New("client: tenant quota exceeded")
	// ErrBusy: the daemon's admission queue is full.
	ErrBusy = errors.New("client: daemon busy")
	// ErrCanceled: the job was canceled before producing a report.
	ErrCanceled = errors.New("client: job canceled")
	// ErrShutdown: the daemon is shutting down.
	ErrShutdown = errors.New("client: daemon shutting down")
	// ErrBadRequest: the daemon rejected the request as malformed.
	ErrBadRequest = errors.New("client: bad request")
)

// RPCError is a daemon-reported failure: the stable code plus its message.
// errors.Is maps the known codes onto the package sentinels.
type RPCError struct {
	Code    string
	Message string
}

// Error implements error.
func (e *RPCError) Error() string { return fmt.Sprintf("psspd: %s: %s", e.Code, e.Message) }

// Is wires the code taxonomy into errors.Is.
func (e *RPCError) Is(target error) bool {
	switch target {
	case ErrQuota:
		return e.Code == daemon.CodeQuota
	case ErrBusy:
		return e.Code == daemon.CodeBusy
	case ErrCanceled:
		return e.Code == daemon.CodeCanceled
	case ErrShutdown:
		return e.Code == daemon.CodeShutdown
	case ErrBadRequest:
		return e.Code == daemon.CodeBadRequest
	case context.Canceled:
		// A canceled job surfaces as context.Canceled too, so remote and
		// local cancellation classify the same way.
		return e.Code == daemon.CodeCanceled
	}
	return false
}

// Client is one connection to a psspd daemon. It is safe for concurrent
// Call use: a single reader goroutine demultiplexes interleaved response
// lines by request id.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex
	enc     *json.Encoder

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*call
	readErr error
	done    chan struct{}
}

// call is one in-flight request.
type call struct {
	events func(daemon.ProgressEvent)
	final  chan daemon.Response
}

// Dial tuning: a daemon that is still binding its socket (or restarting
// under a supervisor) refuses connections transiently, so Dial absorbs
// refusals with capped backoff for a bounded window instead of failing the
// first CLI invocation of a fresh deployment.
const (
	dialRetryWindow = 2 * time.Second
	dialBackoffMin  = 10 * time.Millisecond
	dialBackoffMax  = 250 * time.Millisecond
)

// Dial connects to a daemon address: "unix:/path/to.sock" or
// "tcp:host:port" (a bare "host:port" defaults to TCP). Transient refusals
// — connection refused, or a unix socket path not created yet — are retried
// with capped backoff for a bounded window; other errors fail immediately.
func Dial(addr string) (*Client, error) {
	network, target := daemon.SplitAddr(addr)
	deadline := time.Now().Add(dialRetryWindow)
	backoff := dialBackoffMin
	for {
		conn, err := net.Dial(network, target)
		if err == nil {
			return NewConn(conn), nil
		}
		transient := errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, os.ErrNotExist)
		if !transient || time.Now().Add(backoff).After(deadline) {
			return nil, err
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > dialBackoffMax {
			backoff = dialBackoffMax
		}
	}
}

// NewConn wraps an established connection as a Client and starts its reader
// goroutine. The fabric coordinator uses it to speak the protocol over
// worker connections that dialed in (role-flipped `psspd -worker` joins);
// everything else should use Dial.
func NewConn(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		enc:     json.NewEncoder(conn),
		pending: make(map[uint64]*call),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Close tears the connection down; in-flight calls fail.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.done
	return err
}

// readLoop demultiplexes daemon lines onto pending calls.
func (c *Client) readLoop() {
	defer close(c.done)
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 64<<10), 8<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var resp daemon.Response
		if err := json.Unmarshal(line, &resp); err != nil {
			continue // tolerate junk lines; the final response re-syncs us
		}
		c.mu.Lock()
		p := c.pending[resp.ID]
		if p != nil && resp.Event == "" {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if p == nil {
			continue
		}
		if resp.Event != "" {
			if p.events != nil {
				var ev daemon.ProgressEvent
				if json.Unmarshal(resp.Result, &ev) == nil {
					p.events(ev)
				}
			}
			continue
		}
		p.final <- resp
	}
	err := sc.Err()
	if err == nil {
		err = errors.New("client: connection closed")
	}
	c.mu.Lock()
	c.readErr = err
	pending := c.pending
	c.pending = make(map[uint64]*call)
	c.mu.Unlock()
	for _, p := range pending {
		close(p.final)
	}
}

// Option configures one Call.
type Option func(*callOpts)

type callOpts struct {
	tenant string
	events func(daemon.ProgressEvent)
}

// WithTenant names the calling tenant (daemon default: "default").
func WithTenant(name string) Option { return func(o *callOpts) { o.tenant = name } }

// WithEvents streams the job's progress events to fn (called from the
// client's reader goroutine — keep it quick).
func WithEvents(fn func(daemon.ProgressEvent)) Option {
	return func(o *callOpts) { o.events = fn }
}

// Call runs one method and decodes its result into result (which may be
// nil to discard). On ctx cancellation it asks the daemon to cancel the
// job and waits for the (typically canceled) terminal response, so the
// remote job never outlives the caller silently. Daemon-reported failures
// return *RPCError values matching the package sentinels.
func (c *Client) Call(ctx context.Context, method string, params any, result any, opts ...Option) error {
	var o callOpts
	for _, opt := range opts {
		opt(&o)
	}
	var raw json.RawMessage
	if params != nil {
		b, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("client: encoding params: %w", err)
		}
		raw = b
	}

	p := &call{events: o.events, final: make(chan daemon.Response, 1)}
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = p
	c.mu.Unlock()

	debugLog("client: call %d %s", id, method)
	if err := c.send(daemon.Request{ID: id, Method: method, Tenant: o.tenant, Params: raw}); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return err
	}

	canceled := false
	for {
		select {
		case resp, ok := <-p.final:
			if !ok {
				c.mu.Lock()
				err := c.readErr
				c.mu.Unlock()
				return err
			}
			if resp.Error != nil {
				debugLog("client: call %d %s failed: %s %s", id, method, resp.Error.Code, resp.Error.Message)
				return &RPCError{Code: resp.Error.Code, Message: resp.Error.Message}
			}
			debugLog("client: call %d %s ok", id, method)
			if result == nil || len(resp.Result) == 0 {
				return nil
			}
			if err := json.Unmarshal(resp.Result, result); err != nil {
				return fmt.Errorf("client: decoding %s result: %w", method, err)
			}
			return nil
		case <-ctx.Done():
			if canceled {
				// Second cancellation signal cannot happen (Done is
				// sticky); this branch is unreachable once disarmed.
				continue
			}
			canceled = true
			// Best-effort remote cancel, then keep waiting for the
			// terminal response so the result (possibly a flagged partial
			// report) is not lost.
			c.cancel(id)
		}
	}
}

// cancel asks the daemon to cancel request id; failures are ignored (the
// connection teardown path also cancels server-side).
func (c *Client) cancel(id uint64) {
	raw, _ := json.Marshal(daemon.CancelParams{ID: id})
	c.mu.Lock()
	c.nextID++
	cid := c.nextID
	c.mu.Unlock()
	c.send(daemon.Request{ID: cid, Method: "cancel", Params: raw})
}

// send writes one request line.
func (c *Client) send(req daemon.Request) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return c.enc.Encode(req)
}

// Stats fetches the daemon's stats snapshot.
func (c *Client) Stats(ctx context.Context) (daemon.Stats, error) {
	var st daemon.Stats
	err := c.Call(ctx, "stats", nil, &st)
	return st, err
}

// Ping round-trips the connection.
func (c *Client) Ping(ctx context.Context) error {
	return c.Call(ctx, "ping", nil, nil)
}
