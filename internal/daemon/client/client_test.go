package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/pssp"
)

// startDaemon serves a daemon on a per-test unix socket and returns a
// connected client. Both are torn down with the test.
func startDaemon(t *testing.T, cfg daemon.Config) (*Client, *daemon.Daemon) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "psspd.sock")
	lis, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	d := daemon.New(cfg)
	go d.Serve(lis)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := d.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	c, err := Dial("unix:" + sock)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c, d
}

// TestRemoteAttackMatchesLocalJSON is the e2e determinism contract: for a
// fixed explicit seed, an attack job through daemon+client produces the
// same JSON bytes psspattack would emit locally.
func TestRemoteAttackMatchesLocalJSON(t *testing.T) {
	const (
		target = "nginx-vuln"
		seed   = uint64(41)
		budget = 2048
	)
	s := pssp.SchemeSSP

	// Local path: exactly what cmd/psspattack does without -remote.
	m := pssp.NewMachine(pssp.WithSeed(seed), pssp.WithScheme(s), pssp.WithAttackBudget(budget))
	img, err := m.Pipeline().CompileApp(target).Image()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := m.Campaign(context.Background(), img, pssp.CampaignConfig{
		Replications: 2, Workers: 2,
	})
	if err != nil {
		t.Fatalf("local campaign: %v", err)
	}
	local, err := json.Marshal(daemon.BuildAttackReport(target, s, seed, budget, 2, 2, res))
	if err != nil {
		t.Fatalf("marshal local: %v", err)
	}

	c, _ := startDaemon(t, daemon.Config{})
	var rep daemon.AttackReport
	err = c.Call(context.Background(), "attack", daemon.AttackParams{
		Target: target, Scheme: "ssp", Budget: budget, Repeats: 2, Workers: 2, Seed: seed,
	}, &rep, WithTenant("e2e"))
	if err != nil {
		t.Fatalf("remote attack: %v", err)
	}
	remote, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal remote: %v", err)
	}
	if !bytes.Equal(local, remote) {
		t.Fatalf("local and remote reports differ:\nlocal:  %s\nremote: %s", local, remote)
	}
}

func TestOverQuotaTenantRejectedTyped(t *testing.T) {
	c, _ := startDaemon(t, daemon.Config{QuotaCycles: 1})
	ctx := context.Background()
	p := daemon.AttackParams{Scheme: "ssp", Budget: 64, Repeats: 1, Seed: 5}

	// First job is admitted at zero usage and spends past the 1-cycle quota.
	if err := c.Call(ctx, "attack", p, nil, WithTenant("greedy")); err != nil {
		t.Fatalf("first job: %v", err)
	}
	err := c.Call(ctx, "attack", p, nil, WithTenant("greedy"))
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("over-quota job: got %v, want ErrQuota", err)
	}
	var rpcErr *RPCError
	if !errors.As(err, &rpcErr) || rpcErr.Code != daemon.CodeQuota {
		t.Fatalf("wire error %v, want code %q", err, daemon.CodeQuota)
	}
	// The quota is per tenant: another tenant still runs.
	if err := c.Call(ctx, "attack", p, nil, WithTenant("frugal")); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
}

func TestProgressEventsStreamed(t *testing.T) {
	c, _ := startDaemon(t, daemon.Config{})
	var events []daemon.ProgressEvent
	err := c.Call(context.Background(), "attack", daemon.AttackParams{
		Scheme: "ssp", Budget: 1536, Repeats: 3, Workers: 1, Seed: 8,
	}, nil, WithEvents(func(ev daemon.ProgressEvent) { events = append(events, ev) }))
	if err != nil {
		t.Fatalf("attack: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events streamed")
	}
	for _, ev := range events {
		if ev.Kind != "attack" || ev.Campaign == nil {
			t.Fatalf("event kind=%q campaign=%v", ev.Kind, ev.Campaign)
		}
	}
}

// TestClientCancelReturnsFlaggedPartial cancels the Call's context on the
// first progress event: the client sends a cancel request and the daemon
// answers with the partial report, flagged.
func TestClientCancelReturnsFlaggedPartial(t *testing.T) {
	c, _ := startDaemon(t, daemon.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The replication count is far beyond what the daemon can run before
	// the first progress event round-trips the cancel, so cancellation
	// lands mid-campaign; the bound only keeps a broken cancel path from
	// hanging the test.
	const repeats = 1 << 16
	var rep daemon.AttackReport
	err := c.Call(ctx, "attack", daemon.AttackParams{
		Scheme: "p-ssp", Budget: 64, Repeats: repeats, Workers: 1, Seed: 13,
	}, &rep, WithEvents(func(daemon.ProgressEvent) { cancel() }))
	if err != nil {
		t.Fatalf("canceled call should deliver the partial report, got %v", err)
	}
	if !rep.Canceled {
		t.Fatal("partial report not flagged canceled")
	}
	if rep.Completed == 0 || rep.Completed >= repeats {
		t.Fatalf("completed = %d, want mid-campaign partial", rep.Completed)
	}
}

func TestStatsAndPing(t *testing.T) {
	c, _ := startDaemon(t, daemon.Config{Seed: 3, MaxJobs: 2})
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if err := c.Call(ctx, "boot", daemon.BootParams{Seed: 6}, nil, WithTenant("obs")); err != nil {
		t.Fatalf("boot: %v", err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Completed != 1 || st.Running != 0 {
		t.Fatalf("completed/running = %d/%d, want 1/0", st.Completed, st.Running)
	}
	if st.Pool.Entries != 1 || st.Pool.Images != 1 {
		t.Fatalf("pool entries/images = %d/%d, want 1/1", st.Pool.Entries, st.Pool.Images)
	}
	if len(st.Tenants) != 1 || st.Tenants[0].Name != "obs" || st.Tenants[0].Jobs != 1 {
		t.Fatalf("tenant stats %+v", st.Tenants)
	}
}

func TestBadRequestsTyped(t *testing.T) {
	c, _ := startDaemon(t, daemon.Config{})
	ctx := context.Background()
	if err := c.Call(ctx, "frobnicate", nil, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown method: got %v, want ErrBadRequest", err)
	}
	err := c.Call(ctx, "attack", daemon.AttackParams{Scheme: "rot13"}, nil)
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown scheme: got %v, want ErrBadRequest", err)
	}
}

// TestShutdownLeaksNoGoroutines runs jobs, tears everything down, and
// verifies the goroutine count returns to its baseline.
func TestShutdownLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	sock := filepath.Join(t.TempDir(), "psspd.sock")
	lis, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	d := daemon.New(daemon.Config{})
	go d.Serve(lis)
	c, err := Dial("unix:" + sock)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := c.Call(context.Background(), "attack", daemon.AttackParams{
		Scheme: "ssp", Budget: 256, Repeats: 1, Seed: 2,
	}, nil); err != nil {
		t.Fatalf("job: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("client close: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Campaign worker goroutines unwind asynchronously after Shutdown
	// returns; poll briefly before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d before, %d after shutdown\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDialRetriesTransientRefusal pins Dial's startup-race absorption: a
// worker (or coordinator) dialing before its peer listens must succeed once
// the listener appears within the retry window, instead of failing on the
// first connection refusal.
func TestDialRetriesTransientRefusal(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "late.sock")
	d := daemon.New(daemon.Config{MaxJobs: 1, MaxQueue: 1, PoolSize: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	})

	// Bind the socket only after Dial has started (and failed) at least
	// once: the file does not exist yet, so the first attempts see
	// ENOENT/ECONNREFUSED — the transient class Dial must absorb.
	go func() {
		time.Sleep(150 * time.Millisecond)
		lis, err := net.Listen("unix", sock)
		if err != nil {
			return
		}
		d.Serve(lis)
	}()

	c, err := Dial("unix:" + sock)
	if err != nil {
		t.Fatalf("dial did not absorb the startup race: %v", err)
	}
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping after late bind: %v", err)
	}
}

// TestDialFailsFastOnNonTransientError pins the other side: an address that
// can never succeed (an out-of-range port) fails immediately, not after the
// full retry window. (Connection refusal, by contrast, is deliberately
// retried: a stale or not-yet-bound socket looks exactly like one about to
// come up.)
func TestDialFailsFastOnNonTransientError(t *testing.T) {
	start := time.Now()
	if _, err := Dial("tcp:127.0.0.1:99999"); err == nil {
		t.Fatal("dial of an invalid port succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("non-transient dial error burned %v in retries", elapsed)
	}
}
