package client

import "sync/atomic"

// debugf is the package's optional debug logger: when installed it traces
// every Call's dispatch and outcome. The indirection keeps the default
// path at one atomic load, and a nil hook means no formatting happens.
var debugf atomic.Pointer[func(format string, args ...any)]

// SetDebugf installs fn as the package debug logger (nil uninstalls).
// CLIs wire their cliutil.Logger's debug level here.
func SetDebugf(fn func(format string, args ...any)) {
	if fn == nil {
		debugf.Store(nil)
		return
	}
	debugf.Store(&fn)
}

func debugLog(format string, args ...any) {
	if fn := debugf.Load(); fn != nil {
		(*fn)(format, args...)
	}
}
