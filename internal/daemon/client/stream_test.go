package client

import (
	"context"
	"net"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/daemon"
)

// TestProgressEventThrottleBound pins the wire throttle: however fast the
// engine ticks, a job may stream at most one progress event per 100ms
// (daemon.eventInterval), and the events it does stream arrive in order.
func TestProgressEventThrottleBound(t *testing.T) {
	c, _ := startDaemon(t, daemon.Config{})
	var events []daemon.ProgressEvent
	start := time.Now()
	err := c.Call(context.Background(), "attack", daemon.AttackParams{
		Scheme: "p-ssp", Budget: 64, Repeats: 4096, Workers: 1, Seed: 8,
	}, nil, WithEvents(func(ev daemon.ProgressEvent) { events = append(events, ev) }))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("attack: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events streamed")
	}
	// The 100ms send-side throttle admits at most elapsed/100ms events
	// (plus the unthrottled first one, plus one for interval straddle).
	limit := int(elapsed/(100*time.Millisecond)) + 2
	if len(events) > limit {
		t.Fatalf("%d events in %v exceeds the throttle bound %d", len(events), elapsed, limit)
	}
	// In order: completed-replication counts never go backwards, because
	// events are emitted and written under one serialized stream.
	last := 0
	for i, ev := range events {
		if ev.Campaign == nil {
			t.Fatalf("event %d has no campaign payload: %+v", i, ev)
		}
		if ev.Campaign.Completed < last {
			t.Fatalf("event %d went backwards: completed %d after %d", i, ev.Campaign.Completed, last)
		}
		last = ev.Campaign.Completed
	}
}

// TestCancelMidStreamNoGoroutineLeak cancels a job from inside its own
// event callback — the nastiest re-entrant moment — and verifies the
// flagged partial is delivered, no further events arrive after the final
// response, and teardown returns the process to its goroutine baseline.
func TestCancelMidStreamNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	sock := filepath.Join(t.TempDir(), "psspd.sock")
	lis, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	d := daemon.New(daemon.Config{})
	go d.Serve(lis)
	c, err := Dial("unix:" + sock)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var events atomic.Int64
	var rep daemon.AttackReport
	err = c.Call(ctx, "attack", daemon.AttackParams{
		Scheme: "p-ssp", Budget: 64, Repeats: 1 << 16, Workers: 1, Seed: 13,
	}, &rep, WithEvents(func(daemon.ProgressEvent) {
		events.Add(1)
		cancel()
	}))
	if err != nil {
		t.Fatalf("canceled call should deliver the partial report, got %v", err)
	}
	if !rep.Canceled {
		t.Fatal("partial report not flagged canceled")
	}
	// The terminal response retires the call; the stream must be dead.
	after := events.Load()
	time.Sleep(200 * time.Millisecond)
	if n := events.Load(); n != after {
		t.Fatalf("%d event(s) arrived after the final response", n-after)
	}

	if err := c.Close(); err != nil {
		t.Fatalf("client close: %v", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := d.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The canceled campaign's workers unwind asynchronously; poll briefly
	// before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d before, %d after cancel+shutdown\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
