package daemon

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/pssp"
)

// Typed admission errors; the wire maps them to stable codes and the
// client library maps those codes back, so errors.Is works end to end.
var (
	// ErrQuotaExceeded rejects a job whose tenant exhausted its
	// victim-cycle quota.
	ErrQuotaExceeded = errors.New("daemon: tenant quota exceeded")
	// ErrBusy rejects a job the admission queue cannot hold.
	ErrBusy = errors.New("daemon: admission queue full")
	// ErrShutdown rejects work arriving while the daemon drains.
	ErrShutdown = errors.New("daemon: shutting down")
)

// Config parameterizes the daemon. The zero value serves with the defaults
// noted per field.
type Config struct {
	// Seed is the daemon's master seed (default 1). Tenant seed streams
	// derive from it: tenantSeed = Mix(Seed, fnv64a(name)), and a job that
	// does not name a seed draws Mix(tenantSeed, jobID).
	Seed uint64
	// MaxJobs bounds concurrently running jobs (default 4).
	MaxJobs int
	// MaxQueue bounds jobs waiting for a slot; beyond it admission fails
	// with ErrBusy (default 16).
	MaxQueue int
	// TenantJobs bounds one tenant's concurrently running jobs
	// (default: MaxJobs).
	TenantJobs int
	// QuotaCycles is each tenant's victim-cycle budget; a tenant at or
	// past it is rejected with ErrQuotaExceeded (0 = unlimited).
	QuotaCycles uint64
	// PoolSize bounds the warm machine pool (default 8).
	PoolSize int
	// Engine selects the execution engine for every machine the daemon
	// boots (default pssp.EnginePredecoded, the zero value). All engines
	// produce bit-identical results, so this is purely a throughput knob;
	// pssp.EngineCompiled is the fast block-lowered tier.
	Engine pssp.Engine
	// Store, when non-nil, is the content-addressed artifact store behind
	// every compile: cold pool misses become store lookups, and compiled
	// images persist across daemon restarts. The caller owns the store and
	// closes it after Shutdown returns.
	Store *pssp.Store
	// Metrics, when non-nil, is the registry the daemon publishes its
	// series on (job lifecycle, queue depth, pool and store traffic,
	// per-tenant quota burn). When nil the daemon creates a private
	// registry: its accounting is registry-backed either way, so Stats
	// never takes the job-table lock. Metrics are pure read-side — results
	// are byte-identical with or without a caller registry.
	Metrics *obs.Registry
	// Recorder, when non-nil, is the flight recorder receiving per-job
	// span traces. When nil the daemon creates a private bounded one.
	Recorder *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	if c.TenantJobs <= 0 {
		c.TenantJobs = c.MaxJobs
	}
	return c
}

// tenant is one caller's admission and accounting state. Admission
// decisions read and write the atomics under d.mu (so a decision is based
// on a consistent view); Stats and the metrics collector read them lock-free.
type tenant struct {
	name    string
	seed    uint64
	running atomic.Int64
	jobs    atomic.Uint64
	used    atomic.Uint64 // victim cycles charged
}

// Daemon is the serving front end: it owns the warm pool, the tenant
// table, and the admission queue, and serves any number of concurrent
// connections until Shutdown.
type Daemon struct {
	cfg  Config
	pool *pool

	ctx    context.Context // canceled on Shutdown; parent of every job
	cancel context.CancelFunc

	// reg/rec/met are always non-nil: the daemon's own accounting lives in
	// registry-backed atomics, so Stats is lock-free with respect to the
	// admission mutex below.
	reg *obs.Registry
	rec *obs.Recorder
	met *daemonMetrics

	// mu is the admission (job-table) lock: it serializes slot decisions
	// and the wake channel. Stats deliberately never takes it.
	mu      sync.Mutex
	wake    chan struct{} // closed+replaced whenever a slot frees
	nextJob uint64
	start   time.Time
	closed  bool

	// tenantsMu guards only the tenant map; per-tenant tallies are atomics
	// on the tenant itself.
	tenantsMu sync.RWMutex
	tenants   map[string]*tenant

	lisMu     sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup
}

// New builds a daemon; call Serve to start accepting.
func New(cfg Config) *Daemon {
	ctx, cancel := context.WithCancel(context.Background())
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = obs.NewRecorder(0, 0)
	}
	d := &Daemon{
		cfg:       cfg.withDefaults(),
		pool:      newPool(cfg.PoolSize, cfg.Engine, cfg.Store),
		ctx:       ctx,
		cancel:    cancel,
		reg:       reg,
		rec:       rec,
		met:       newDaemonMetrics(reg),
		wake:      make(chan struct{}),
		tenants:   make(map[string]*tenant),
		start:     time.Now(),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	d.registerCollectors(reg)
	return d
}

// Serve accepts connections on lis until Shutdown (which returns it nil)
// or a listener error. Multiple Serve calls on different listeners are
// fine.
func (d *Daemon) Serve(lis net.Listener) error {
	d.lisMu.Lock()
	if d.isClosed() {
		d.lisMu.Unlock()
		return ErrShutdown
	}
	d.listeners[lis] = struct{}{}
	d.lisMu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if d.isClosed() {
				return nil
			}
			return err
		}
		d.lisMu.Lock()
		if d.isClosed() {
			d.lisMu.Unlock()
			conn.Close()
			return nil
		}
		d.conns[conn] = struct{}{}
		d.wg.Add(1)
		d.lisMu.Unlock()
		go d.serveConn(conn)
	}
}

func (d *Daemon) isClosed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.closed
}

// Shutdown drains the daemon: stop accepting, cancel every running job and
// connection, wait for the handlers to unwind (bounded by ctx), then
// retire the warm pool so its parked parents release their buffers.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.wakeAll()
	d.mu.Unlock()

	d.cancel()
	d.lisMu.Lock()
	for lis := range d.listeners {
		lis.Close()
	}
	for conn := range d.conns {
		conn.Close()
	}
	d.lisMu.Unlock()

	done := make(chan struct{})
	go func() { d.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	d.pool.close()
	return nil
}

// wakeAll releases every admission waiter (caller holds d.mu).
func (d *Daemon) wakeAll() {
	close(d.wake)
	d.wake = make(chan struct{})
}

// tenantFor returns (creating on first use) the named tenant. It takes
// only the tenant-map lock, never the admission mutex.
func (d *Daemon) tenantFor(name string) *tenant {
	if name == "" {
		name = "default"
	}
	d.tenantsMu.RLock()
	t, ok := d.tenants[name]
	d.tenantsMu.RUnlock()
	if ok {
		return t
	}
	d.tenantsMu.Lock()
	defer d.tenantsMu.Unlock()
	if t, ok := d.tenants[name]; ok {
		return t
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	t = &tenant{name: name, seed: rng.Mix(d.cfg.Seed, h.Sum64())}
	d.tenants[name] = t
	return t
}

// admit blocks until the job may run (a global slot and a tenant slot are
// both free), or fails fast: ErrQuotaExceeded for an exhausted tenant,
// ErrBusy when the wait queue is full, ErrShutdown while draining, or
// ctx.Err on cancellation. On success the caller owns one slot and must
// release() it.
func (d *Daemon) admit(ctx context.Context, t *tenant) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.closed {
			return ErrShutdown
		}
		if used := t.used.Load(); d.cfg.QuotaCycles > 0 && used >= d.cfg.QuotaCycles {
			return fmt.Errorf("%w: tenant %q spent %d of %d victim cycles",
				ErrQuotaExceeded, t.name, used, d.cfg.QuotaCycles)
		}
		if int(d.met.running.Load()) < d.cfg.MaxJobs && int(t.running.Load()) < d.cfg.TenantJobs {
			d.met.running.Add(1)
			t.running.Add(1)
			t.jobs.Add(1)
			d.met.admitted.Inc()
			return nil
		}
		if int(d.met.queued.Load()) >= d.cfg.MaxQueue {
			return fmt.Errorf("%w: %d jobs queued", ErrBusy, d.met.queued.Load())
		}
		d.met.queued.Add(1)
		ch := d.wake
		d.mu.Unlock()
		var err error
		select {
		case <-ch:
		case <-ctx.Done():
			err = ctx.Err()
		}
		d.mu.Lock()
		d.met.queued.Add(-1)
		if err != nil {
			return err
		}
	}
}

// release returns the job's slot and charges its victim-cycle cost.
func (d *Daemon) release(t *tenant, cost uint64) {
	d.mu.Lock()
	d.met.running.Add(-1)
	t.running.Add(-1)
	t.used.Add(cost)
	d.wakeAll()
	d.mu.Unlock()
}

// jobSeed resolves a job's seed: an explicit seed passes through verbatim
// (the byte-identical-to-CLI contract); 0 draws a fresh derived seed from
// the tenant's stream.
func (d *Daemon) jobSeed(t *tenant, explicit uint64) uint64 {
	if explicit != 0 {
		return explicit
	}
	d.mu.Lock()
	d.nextJob++
	id := d.nextJob
	d.mu.Unlock()
	return rng.Mix(t.seed, id)
}

// Stats snapshots the daemon for the stats method (and tests). Every
// field reads registry-backed atomics or the tenant map's own lock — the
// admission mutex is never taken, so a stats poll cannot stall (or be
// stalled by) job traffic.
func (d *Daemon) Stats() Stats {
	st := Stats{
		UptimeSeconds: time.Since(d.start).Seconds(),
		Running:       int(d.met.running.Load()),
		Queued:        int(d.met.queued.Load()),
		Completed:     d.met.completed.Load(),
		Failed:        d.met.failed.Load(),
		Canceled:      d.met.canceled.Load(),
	}
	d.tenantsMu.RLock()
	names := make([]string, 0, len(d.tenants))
	for name := range d.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := d.tenants[name]
		st.Tenants = append(st.Tenants, TenantStats{
			Name: t.name, Running: int(t.running.Load()), Jobs: t.jobs.Load(),
			CyclesUsed: t.used.Load(), CyclesQuota: d.cfg.QuotaCycles,
		})
	}
	d.tenantsMu.RUnlock()
	st.Pool = d.pool.stats()
	return st
}

// countFinish tallies a finished job for stats.
func (d *Daemon) countFinish(err error) {
	switch {
	case err == nil:
		d.met.completed.Inc()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		d.met.canceled.Inc()
	default:
		d.met.failed.Inc()
	}
}

// Do executes one job in-process — the embedded-daemon entry point (used
// by examples and benchmarks): the same validation, admission, accounting
// and warm pool as the wire path, without a connection. progress may be
// nil; params may be nil for methods whose defaults suffice.
func (d *Daemon) Do(ctx context.Context, tenantName, method string, params any, progress func(ProgressEvent)) (any, error) {
	var raw json.RawMessage
	if params != nil {
		b, err := json.Marshal(params)
		if err != nil {
			return nil, badRequest("parameters: %v", err)
		}
		raw = b
	}
	t := d.tenantFor(tenantName)
	run, err := d.jobFor(Request{Method: method, Params: raw}, t)
	if err != nil {
		return nil, err
	}
	ctx, tr := d.beginTrace(ctx, method)
	if err := d.admit(ctx, t); err != nil {
		tr.Event("rejected", 0, err.Error())
		d.countFinish(err)
		return nil, err
	}
	tr.Event("admitted", 0, "")
	result, cost, err := run(ctx, callbackEvents(progress))
	d.release(t, cost)
	d.countFinish(err)
	tr.Event("finish", cost, finishDetail(err))
	return result, err
}

// finishDetail renders a job's terminal state for its trace span.
func finishDetail(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}

// connWriter serializes response/event lines onto one connection.
type connWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func (w *connWriter) send(r Response) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.enc.Encode(r)
}

func (w *connWriter) result(id uint64, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return w.fail(id, fmt.Errorf("daemon: encoding result: %w", err))
	}
	return w.send(Response{ID: id, Result: raw})
}

func (w *connWriter) fail(id uint64, err error) error {
	return w.send(Response{ID: id, Error: wireError(err)})
}

// wireError maps an error onto its stable wire code.
func wireError(err error) *Error {
	code := CodeInternal
	switch {
	case errors.Is(err, ErrQuotaExceeded):
		code = CodeQuota
	case errors.Is(err, ErrBusy):
		code = CodeBusy
	case errors.Is(err, ErrShutdown):
		code = CodeShutdown
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		code = CodeCanceled
	case errors.Is(err, errBadRequest):
		code = CodeBadRequest
	}
	return &Error{Code: code, Message: err.Error()}
}

// errBadRequest classifies parameter validation failures.
var errBadRequest = errors.New("bad request")

// badRequest wraps err as a bad-request wire error.
func badRequest(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errBadRequest, fmt.Sprintf(format, args...))
}

// maxLine bounds one request line (fuzz corpora ride in requests).
const maxLine = 8 << 20

// serveConn runs one connection: a read loop dispatching each request into
// its own goroutine, a per-connection cancel registry for the cancel
// method, and connection teardown canceling everything it started.
func (d *Daemon) serveConn(conn net.Conn) {
	d.serveStream(conn, conn)
}

// serveStream is serveConn reading requests from r — which is conn itself
// on accepted connections, and the join handshake's buffered reader on a
// worker's outbound connection (so no bytes the handshake read ahead are
// lost).
func (d *Daemon) serveStream(conn net.Conn, r io.Reader) {
	defer d.wg.Done()
	defer func() {
		d.lisMu.Lock()
		delete(d.conns, conn)
		d.lisMu.Unlock()
		conn.Close()
	}()

	ctx, cancel := context.WithCancel(d.ctx)
	defer cancel()
	w := &connWriter{enc: json.NewEncoder(conn)}

	// jobs maps in-flight request ids to their cancel functions, for the
	// cancel method and for duplicate-id rejection.
	var (
		jobsMu sync.Mutex
		jobs   = make(map[uint64]context.CancelFunc)
		reqWG  sync.WaitGroup
	)
	defer reqWG.Wait()

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			w.fail(0, badRequest("malformed request line: %v", err))
			continue
		}
		switch req.Method {
		case "ping":
			w.result(req.ID, map[string]bool{"ok": true})
			continue
		case "stats":
			w.result(req.ID, d.Stats())
			continue
		case "metrics":
			w.result(req.ID, d.reg.Snapshot())
			continue
		case "cancel":
			var p CancelParams
			if err := unmarshalParams(req.Params, &p); err != nil {
				w.fail(req.ID, err)
				continue
			}
			jobsMu.Lock()
			jcancel, ok := jobs[p.ID]
			jobsMu.Unlock()
			if ok {
				jcancel()
			}
			w.result(req.ID, CancelResult{Canceled: ok})
			continue
		}

		jobsMu.Lock()
		if _, dup := jobs[req.ID]; dup {
			jobsMu.Unlock()
			w.fail(req.ID, badRequest("request id %d already in flight", req.ID))
			continue
		}
		jctx, jcancel := context.WithCancel(ctx)
		jobs[req.ID] = jcancel
		jobsMu.Unlock()

		reqWG.Add(1)
		go func(req Request) {
			defer reqWG.Done()
			defer func() {
				jobsMu.Lock()
				delete(jobs, req.ID)
				jobsMu.Unlock()
				jcancel()
			}()
			d.dispatch(jctx, w, req)
		}(req)
	}
}

// unmarshalParams decodes params strictly; a nil raw decodes to the zero
// value (every method has usable defaults).
func unmarshalParams(raw json.RawMessage, v any) error {
	if len(raw) == 0 {
		return nil
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return badRequest("parameters: %v", err)
	}
	return nil
}

// dispatch runs one job request end to end: admission, execution with
// progress streaming, the terminal response, slot release with cost
// accounting.
func (d *Daemon) dispatch(ctx context.Context, w *connWriter, req Request) {
	t := d.tenantFor(req.Tenant)

	run, err := d.jobFor(req, t)
	if err != nil {
		w.fail(req.ID, err)
		return
	}
	ctx, tr := d.beginTrace(ctx, req.Method)
	if err := d.admit(ctx, t); err != nil {
		tr.Event("rejected", 0, err.Error())
		d.countFinish(err)
		w.fail(req.ID, err)
		return
	}
	tr.Event("admitted", 0, "")
	result, cost, err := run(ctx, newEventStream(w, req.ID))
	d.release(t, cost)
	d.countFinish(err)
	tr.Event("finish", cost, finishDetail(err))
	if err != nil {
		w.fail(req.ID, err)
		return
	}
	w.result(req.ID, result)
}

// eventStream throttles and serializes one job's progress events, onto a
// connection (wire path) or into a callback (in-process path).
type eventStream struct {
	w  *connWriter
	id uint64
	fn func(ProgressEvent)

	mu   sync.Mutex
	last time.Time
}

// eventInterval is the minimum spacing between progress lines per job —
// progress is wall-clock observability, so a fixed wall-clock throttle is
// the right tool.
const eventInterval = 100 * time.Millisecond

func newEventStream(w *connWriter, id uint64) *eventStream {
	return &eventStream{w: w, id: id}
}

// callbackEvents is the in-process eventStream (fn may be nil: discard).
func callbackEvents(fn func(ProgressEvent)) *eventStream {
	return &eventStream{fn: fn}
}

// progress emits ev unless the previous event was under eventInterval ago.
func (s *eventStream) progress(ev ProgressEvent) {
	s.mu.Lock()
	now := time.Now()
	if now.Sub(s.last) < eventInterval {
		s.mu.Unlock()
		return
	}
	s.last = now
	s.mu.Unlock()
	if s.w == nil {
		if s.fn != nil {
			s.fn(ev)
		}
		return
	}
	raw, err := json.Marshal(ev)
	if err != nil {
		return
	}
	s.w.send(Response{ID: s.id, Event: "progress", Result: raw})
}
