package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/pssp"
)

// discardEvents is an eventStream that drops progress lines.
func discardEvents(id uint64) *eventStream {
	return newEventStream(&connWriter{enc: json.NewEncoder(io.Discard)}, id)
}

// runJob validates and runs one request synchronously, bypassing the wire.
func runJob(t *testing.T, d *Daemon, tenantName string, method string, params any) (any, uint64, error) {
	t.Helper()
	raw, err := json.Marshal(params)
	if err != nil {
		t.Fatalf("marshal params: %v", err)
	}
	d.mu.Lock()
	ten := d.tenantFor(tenantName)
	d.mu.Unlock()
	run, err := d.jobFor(Request{Method: method, Params: raw}, ten)
	if err != nil {
		t.Fatalf("jobFor(%s): %v", method, err)
	}
	return run(context.Background(), discardEvents(1))
}

func TestJobSeedDerivation(t *testing.T) {
	d := New(Config{Seed: 2018})
	defer d.Shutdown(context.Background())
	d.mu.Lock()
	a, b := d.tenantFor("alice"), d.tenantFor("bob")
	d.mu.Unlock()

	if got := d.jobSeed(a, 77); got != 77 {
		t.Fatalf("explicit seed not verbatim: got %d", got)
	}
	// Auto-derived seeds come from the tenant's stream: Mix(tenantSeed, jobID).
	s1, s2 := d.jobSeed(a, 0), d.jobSeed(a, 0)
	if s1 != rng.Mix(a.seed, 1) || s2 != rng.Mix(a.seed, 2) {
		t.Fatalf("derived seeds %d,%d want Mix(tenant,1..2)", s1, s2)
	}
	if s1 == s2 {
		t.Fatal("successive derived seeds collide")
	}
	if a.seed == b.seed {
		t.Fatal("distinct tenants share a seed stream")
	}
	// Same daemon seed + tenant name => same stream, across daemon instances.
	d2 := New(Config{Seed: 2018})
	defer d2.Shutdown(context.Background())
	d2.mu.Lock()
	a2 := d2.tenantFor("alice")
	d2.mu.Unlock()
	if a2.seed != a.seed {
		t.Fatalf("tenant stream not reproducible: %d vs %d", a2.seed, a.seed)
	}
}

func TestAdmitQuotaTypedError(t *testing.T) {
	d := New(Config{QuotaCycles: 1000})
	defer d.Shutdown(context.Background())
	d.mu.Lock()
	ten := d.tenantFor("greedy")
	other := d.tenantFor("frugal")
	d.mu.Unlock()

	ctx := context.Background()
	if err := d.admit(ctx, ten); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	d.release(ten, 1000) // spends the whole quota
	err := d.admit(ctx, ten)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota admit: got %v, want ErrQuotaExceeded", err)
	}
	// The quota is per tenant: another tenant still runs.
	if err := d.admit(ctx, other); err != nil {
		t.Fatalf("other tenant blocked by greedy's quota: %v", err)
	}
	d.release(other, 0)
}

func TestAdmitQueueBackpressure(t *testing.T) {
	d := New(Config{MaxJobs: 1, MaxQueue: 1})
	defer d.Shutdown(context.Background())
	ten := d.tenantFor("t")
	ctx := context.Background()

	if err := d.admit(ctx, ten); err != nil {
		t.Fatalf("admit: %v", err)
	}
	// One waiter fits the queue...
	waited := make(chan error, 1)
	go func() { waited <- d.admit(ctx, ten) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		w := d.met.queued.Load()
		if w == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// ...the next one bounces with the typed busy error.
	if err := d.admit(ctx, ten); !errors.Is(err, ErrBusy) {
		t.Fatalf("overfull queue: got %v, want ErrBusy", err)
	}
	// Releasing the slot wakes the waiter.
	d.release(ten, 0)
	if err := <-waited; err != nil {
		t.Fatalf("waiter: %v", err)
	}
	d.release(ten, 0)

	// A waiter whose context dies leaves cleanly.
	if err := d.admit(ctx, ten); err != nil {
		t.Fatalf("re-admit: %v", err)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := d.admit(cctx, ten); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: got %v", err)
	}
	d.release(ten, 0)
}

func TestPoolWarmHitAndKilledEntryRespawn(t *testing.T) {
	d := New(Config{})
	defer d.Shutdown(context.Background())
	ctx := context.Background()
	key := poolKey{imageKey{app: "nginx-vuln", scheme: pssp.SchemeSSP}, 7}

	e, err := d.pool.checkout(ctx, key)
	if err != nil {
		t.Fatalf("cold checkout: %v", err)
	}
	d.pool.checkin(ctx, e)
	e2, err := d.pool.checkout(ctx, key)
	if err != nil {
		t.Fatalf("warm checkout: %v", err)
	}
	if e2 != e {
		t.Fatal("clean checkin did not park the same entry")
	}
	if st := d.pool.stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
	d.pool.checkin(ctx, e2)

	// Kill the parked machine under the pool (a crashed parent fails the
	// Parked health check the same way); the next checkout must respawn.
	d.pool.mu.Lock()
	parked := d.pool.entries[key]
	d.pool.mu.Unlock()
	parked.srv.Close()
	e3, err := d.pool.checkout(ctx, key)
	if err != nil {
		t.Fatalf("respawn checkout: %v", err)
	}
	if e3 == parked {
		t.Fatal("killed entry handed out instead of respawned")
	}
	if !e3.srv.Parked() {
		t.Fatal("respawned entry not parked")
	}
	if st := d.pool.stats(); st.Respawns != 1 {
		t.Fatalf("respawns = %d, want 1", st.Respawns)
	}
	d.pool.checkin(ctx, e3)
}

func TestPoolDirtyCheckinRebuilds(t *testing.T) {
	d := New(Config{})
	defer d.Shutdown(context.Background())
	ctx := context.Background()
	key := poolKey{imageKey{app: "nginx-vuln", scheme: pssp.SchemeSSP}, 3}

	e, err := d.pool.checkout(ctx, key)
	if err != nil {
		t.Fatalf("checkout: %v", err)
	}
	if _, err := e.srv.Handle(ctx, []byte("GET /\n")); err != nil {
		t.Fatalf("handle: %v", err)
	}
	d.pool.checkin(ctx, e) // dirty: served a request
	e2, err := d.pool.checkout(ctx, key)
	if err != nil {
		t.Fatalf("re-checkout: %v", err)
	}
	if e2 == e || e2.srv.Requests() != 0 {
		t.Fatal("dirty entry was parked instead of rebuilt")
	}
	d.pool.checkin(ctx, e2)
}

func TestPoolLRUEviction(t *testing.T) {
	d := New(Config{PoolSize: 1})
	defer d.Shutdown(context.Background())
	ctx := context.Background()
	k1 := poolKey{imageKey{app: "nginx-vuln", scheme: pssp.SchemeSSP}, 1}
	k2 := poolKey{imageKey{app: "nginx-vuln", scheme: pssp.SchemeSSP}, 2}

	e1, err := d.pool.checkout(ctx, k1)
	if err != nil {
		t.Fatalf("checkout k1: %v", err)
	}
	e2, err := d.pool.checkout(ctx, k2)
	if err != nil {
		t.Fatalf("checkout k2: %v", err)
	}
	d.pool.checkin(ctx, e1)
	d.pool.checkin(ctx, e2) // evicts e1 (cap 1, oldest first)
	st := d.pool.stats()
	if st.Entries != 1 || st.Evictions != 1 {
		t.Fatalf("entries/evictions = %d/%d, want 1/1", st.Entries, st.Evictions)
	}
	if e1.srv.Parked() {
		t.Fatal("evicted entry's machine was not closed")
	}
	d.pool.mu.Lock()
	_, k2parked := d.pool.entries[k2]
	d.pool.mu.Unlock()
	if !k2parked {
		t.Fatal("most-recent entry missing from pool")
	}
}

// cancelOnFirstWrite cancels a context the first time a progress line is
// emitted, so cancellation lands deterministically mid-campaign.
type cancelOnFirstWrite struct {
	cancel context.CancelFunc
}

func (w *cancelOnFirstWrite) Write(p []byte) (int, error) {
	w.cancel()
	return len(p), nil
}

func TestCancelMidCampaignReturnsPartialAndPoolStaysHealthy(t *testing.T) {
	d := New(Config{})
	defer d.Shutdown(context.Background())
	d.mu.Lock()
	ten := d.tenantFor("t")
	d.mu.Unlock()

	params, _ := json.Marshal(AttackParams{
		Scheme: "p-ssp", Budget: 64, Repeats: 64, Workers: 1, Seed: 9,
	})
	run, err := d.jobFor(Request{Method: "attack", Params: params}, ten)
	if err != nil {
		t.Fatalf("jobFor: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The campaign emits its first progress event after replication 1; the
	// event write cancels the job, so it stops mid-campaign by construction.
	ev := newEventStream(&connWriter{enc: json.NewEncoder(&cancelOnFirstWrite{cancel: cancel})}, 1)
	result, cost, err := run(ctx, ev)
	if err != nil {
		t.Fatalf("canceled campaign should return a partial result, got error %v", err)
	}
	rep, ok := result.(AttackReport)
	if !ok {
		t.Fatalf("result type %T", result)
	}
	if !rep.Canceled {
		t.Fatal("partial report not flagged canceled")
	}
	if rep.Completed == 0 || rep.Completed >= 64 {
		t.Fatalf("completed = %d, want mid-campaign partial", rep.Completed)
	}
	if rep.Completed != len(rep.Outcomes) {
		t.Fatalf("malformed partial: %d outcomes for %d completed", len(rep.Outcomes), rep.Completed)
	}
	if cost == 0 {
		t.Fatal("partial campaign charged no cycles")
	}

	// The pool survived: the entry is parked again and the next job for the
	// same key is a warm hit that runs to completion.
	if st := d.pool.stats(); st.Entries != 1 {
		t.Fatalf("pool entries after cancel = %d, want 1", st.Entries)
	}
	params2, _ := json.Marshal(AttackParams{Scheme: "p-ssp", Budget: 64, Repeats: 2, Workers: 1, Seed: 9})
	run2, err := d.jobFor(Request{Method: "attack", Params: params2}, ten)
	if err != nil {
		t.Fatalf("jobFor 2: %v", err)
	}
	result2, _, err := run2(context.Background(), discardEvents(2))
	if err != nil {
		t.Fatalf("follow-up job on recovered pool: %v", err)
	}
	if rep2 := result2.(AttackReport); rep2.Completed != 2 || rep2.Canceled {
		t.Fatalf("follow-up report completed=%d canceled=%v", rep2.Completed, rep2.Canceled)
	}
	if st := d.pool.stats(); st.Hits == 0 {
		t.Fatal("follow-up job missed the warm pool")
	}
}

// TestKilledMachineRespawnIsolation kills one tenant's parked machine while
// another tenant's job is mid-flight: the victim tenant's next job respawns
// and still produces the seed-determined report, and the bystander's result
// is byte-identical to an undisturbed run.
func TestKilledMachineRespawnIsolation(t *testing.T) {
	attackJSON := func(d *Daemon, tenant string, p AttackParams) []byte {
		res, _, err := runJob(t, d, tenant, "attack", p)
		if err != nil {
			t.Fatalf("attack job: %v", err)
		}
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal report: %v", err)
		}
		return raw
	}
	pa := AttackParams{Scheme: "ssp", Budget: 2048, Repeats: 1, Workers: 1, Seed: 11}
	pb := AttackParams{Scheme: "p-ssp", Budget: 256, Repeats: 4, Workers: 1, Seed: 22}

	// Baseline reports from an undisturbed daemon.
	base := New(Config{})
	defer base.Shutdown(context.Background())
	wantA := attackJSON(base, "a", pa)
	wantB := attackJSON(base, "b", pb)

	d := New(Config{})
	defer d.Shutdown(context.Background())
	if got := attackJSON(d, "a", pa); string(got) != string(wantA) {
		t.Fatal("tenant a's first report diverges from baseline")
	}

	// Start tenant b's job, then kill tenant a's parked machine while it runs.
	bDone := make(chan []byte, 1)
	go func() { bDone <- attackJSON(d, "b", pb) }()
	keyA := poolKey{imageKey{app: "nginx-vuln", scheme: pssp.SchemeSSP}, 11}
	d.pool.mu.Lock()
	parked := d.pool.entries[keyA]
	d.pool.mu.Unlock()
	if parked == nil {
		t.Fatal("tenant a's machine not parked after its job")
	}
	parked.srv.Close()

	// Tenant a's next job respawns the machine and reproduces the report.
	if got := attackJSON(d, "a", pa); string(got) != string(wantA) {
		t.Fatal("respawned machine changed tenant a's report")
	}
	if st := d.pool.stats(); st.Respawns == 0 {
		t.Fatal("killed machine was not respawned")
	}
	// The bystander tenant's concurrent job is untouched.
	if got := <-bDone; string(got) != string(wantB) {
		t.Fatal("tenant b's report diverged while tenant a's machine was killed")
	}
}
