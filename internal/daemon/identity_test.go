package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/workpool"
	"repro/pssp"
)

// TestReportsByteIdenticalWithMetrics is the observability layer's core
// contract: metrics and flight recording are pure read-side, so at a fixed
// explicit seed every engine's campaign, loadtest, and fuzz reports are
// byte-identical whether the full observability stack (daemon registry +
// recorder, kernel and workpool package metrics) is installed or absent.
func TestReportsByteIdenticalWithMetrics(t *testing.T) {
	jobs := []struct {
		method string
		params any
	}{
		{"attack", AttackParams{Scheme: "ssp", Budget: 1024, Repeats: 2, Workers: 2, Seed: 77}},
		{"loadtest", LoadParams{App: "nginx", Scheme: "p-ssp", Arrivals: "poisson",
			Rate: 10, Requests: 64, Shards: 4, Workers: 2, Seed: 77}},
		{"fuzz", FuzzParams{App: "nginx-vuln", Scheme: "ssp", Execs: 512, Shards: 4, Workers: 2, Seed: 77}},
	}

	// run executes every job on a fresh daemon and returns the marshaled
	// reports keyed by method.
	run := func(t *testing.T, eng pssp.Engine, withMetrics bool) map[string][]byte {
		t.Helper()
		cfg := Config{Engine: eng}
		if withMetrics {
			cfg.Metrics = obs.NewRegistry()
			cfg.Recorder = obs.NewRecorder(8, 64)
			kernel.SetMetrics(cfg.Metrics)
			workpool.SetMetrics(cfg.Metrics)
			t.Cleanup(func() {
				kernel.SetMetrics(nil)
				workpool.SetMetrics(nil)
			})
		}
		d := New(cfg)
		defer d.Shutdown(context.Background())
		out := make(map[string][]byte, len(jobs))
		for _, j := range jobs {
			// Exercise the trace spans too: a progress callback records
			// events into the job's trace when the recorder is installed.
			res, err := d.Do(context.Background(), "ident", j.method, j.params, func(ProgressEvent) {})
			if err != nil {
				t.Fatalf("%s (%v, metrics=%v): %v", j.method, eng, withMetrics, err)
			}
			raw, err := json.Marshal(res)
			if err != nil {
				t.Fatalf("marshal %s: %v", j.method, err)
			}
			out[j.method] = raw
		}
		if withMetrics {
			// The registry must actually have observed the jobs, or the
			// comparison proves nothing.
			text := cfg.Metrics.Text()
			for _, series := range []string{"daemon_jobs_admitted_total 3", "kernel_forkserver_requests_total"} {
				if !bytes.Contains([]byte(text), []byte(series)) {
					t.Fatalf("metrics text missing %q:\n%s", series, text)
				}
			}
		}
		return out
	}

	for _, eng := range pssp.Engines() {
		t.Run(fmt.Sprint(eng), func(t *testing.T) {
			plain := run(t, eng, false)
			metered := run(t, eng, true)
			for _, j := range jobs {
				if !bytes.Equal(plain[j.method], metered[j.method]) {
					t.Errorf("%s report changed under metrics:\noff: %s\non:  %s",
						j.method, plain[j.method], metered[j.method])
				}
			}
		})
	}
}
