package daemon

import (
	"context"
	"errors"

	"repro/internal/obs"
	"repro/pssp"
)

// jobRun executes one admitted job: it returns the result object for the
// terminal response, the victim-cycle cost to charge the tenant, and an
// error. A canceled job that still produced a partial report returns it as
// a result (flagged Canceled) rather than an error — partial data is the
// point of graceful cancellation.
type jobRun func(ctx context.Context, ev *eventStream) (result any, cost uint64, err error)

// jobFor validates a request into a runnable job. Validation errors (bad
// method, unknown scheme/arrivals) surface before admission, so they never
// consume a queue slot.
func (d *Daemon) jobFor(req Request, t *tenant) (jobRun, error) {
	switch req.Method {
	case "compile":
		var p CompileParams
		if err := unmarshalParams(req.Params, &p); err != nil {
			return nil, err
		}
		return d.compileJob(p)
	case "boot":
		var p BootParams
		if err := unmarshalParams(req.Params, &p); err != nil {
			return nil, err
		}
		return d.bootJob(p, t)
	case "attack":
		var p AttackParams
		if err := unmarshalParams(req.Params, &p); err != nil {
			return nil, err
		}
		return d.attackJob(p, t)
	case "loadtest":
		var p LoadParams
		if err := unmarshalParams(req.Params, &p); err != nil {
			return nil, err
		}
		return d.loadJob(p, t)
	case "fuzz":
		var p FuzzParams
		if err := unmarshalParams(req.Params, &p); err != nil {
			return nil, err
		}
		return d.fuzzJob(p, t)
	case "campaignshard":
		var p CampaignShardParams
		if err := unmarshalParams(req.Params, &p); err != nil {
			return nil, err
		}
		return d.campaignShardJob(p, t)
	case "loadshard":
		var p LoadShardParams
		if err := unmarshalParams(req.Params, &p); err != nil {
			return nil, err
		}
		return d.loadShardJob(p, t)
	case "fuzzshard":
		var p FuzzShardParams
		if err := unmarshalParams(req.Params, &p); err != nil {
			return nil, err
		}
		return d.fuzzShardJob(p, t)
	default:
		return nil, badRequest("unknown method %q", req.Method)
	}
}

// parseScheme maps a wire scheme name (with a per-method default for "")
// onto pssp.Scheme as a bad-request on failure.
func parseScheme(name, dflt string) (pssp.Scheme, error) {
	if name == "" {
		name = dflt
	}
	s, err := pssp.ParseScheme(name)
	if err != nil {
		return 0, badRequest("%v", err)
	}
	return s, nil
}

// canceledPartial reports whether err is a cancellation that still left a
// usable partial report.
func canceledPartial(err error, hasReport bool) bool {
	return hasReport &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

func (d *Daemon) compileJob(p CompileParams) (jobRun, error) {
	if p.App == "" {
		p.App = "nginx-vuln"
	}
	s, err := parseScheme(p.Scheme, "ssp")
	if err != nil {
		return nil, err
	}
	return func(ctx context.Context, _ *eventStream) (any, uint64, error) {
		_, cached, err := d.pool.image(ctx, imageKey{app: p.App, scheme: s})
		if err != nil {
			return nil, 0, err
		}
		return CompileResult{App: p.App, Scheme: s.String(), Cached: cached}, 0, nil
	}, nil
}

func (d *Daemon) bootJob(p BootParams, t *tenant) (jobRun, error) {
	if p.App == "" {
		p.App = "nginx-vuln"
	}
	s, err := parseScheme(p.Scheme, "ssp")
	if err != nil {
		return nil, err
	}
	return func(ctx context.Context, _ *eventStream) (any, uint64, error) {
		seed := d.jobSeed(t, p.Seed)
		e, err := d.pool.checkout(ctx, poolKey{imageKey{app: p.App, scheme: s}, seed})
		if err != nil {
			return nil, 0, err
		}
		res := BootResult{
			App: p.App, Scheme: s.String(), Seed: seed,
			FootprintBytes: e.srv.Footprint(),
		}
		d.pool.checkin(d.ctx, e)
		return res, 0, nil
	}, nil
}

// attackJob is psspattack's campaign as a daemon job. The campaign's
// victims are replicas derived purely from the job seed, so running it on
// a pooled machine is byte-identical to the CLI building a fresh one.
func (d *Daemon) attackJob(p AttackParams, t *tenant) (jobRun, error) {
	p = NormalizeAttackParams(p)
	s, err := parseScheme(p.Scheme, "ssp")
	if err != nil {
		return nil, err
	}
	return func(ctx context.Context, ev *eventStream) (any, uint64, error) {
		seed := d.jobSeed(t, p.Seed)
		tr := obs.TraceFrom(ctx)
		e, err := d.pool.checkout(ctx, poolKey{imageKey{app: p.Target, scheme: s}, seed})
		if err != nil {
			return nil, 0, err
		}
		defer d.pool.checkin(d.ctx, e)
		res, err := e.m.Campaign(ctx, e.img, pssp.CampaignConfig{
			Strategy:     p.Strategy,
			Replications: p.Repeats,
			Workers:      p.Workers,
			Seed:         seed,
			Attack:       pssp.AttackConfig{MaxTrials: p.Budget},
			Progress: func(cp pssp.CampaignProgress) {
				tr.Event("campaign progress", cp.Cycles, "")
				ev.progress(ProgressEvent{Kind: "attack", Campaign: &cp})
			},
		})
		var cost uint64
		if res != nil {
			cost = res.Cycles
		}
		if err != nil {
			if canceledPartial(err, res != nil && res.Completed > 0) {
				rep := BuildAttackReport(p.Target, s, seed, p.Budget, p.Repeats, p.Workers, res)
				rep.Canceled = true
				return rep, cost, nil
			}
			return nil, cost, err
		}
		return BuildAttackReport(p.Target, s, seed, p.Budget, p.Repeats, p.Workers, res), cost, nil
	}, nil
}

func (d *Daemon) loadJob(p LoadParams, t *tenant) (jobRun, error) {
	// Zero-value params take psspload's flag defaults, so an API job and a
	// CLI invocation agree on the scenario.
	p = NormalizeLoadParams(p)
	s, err := parseScheme(p.Scheme, "p-ssp")
	if err != nil {
		return nil, err
	}
	// Validate arrivals before admission, so the error never costs a slot.
	if _, err := ParseArrivals(p.Arrivals); err != nil {
		return nil, err
	}
	return func(ctx context.Context, ev *eventStream) (any, uint64, error) {
		seed := d.jobSeed(t, p.Seed)
		e, err := d.pool.checkout(ctx, poolKey{imageKey{app: p.App, scheme: s}, seed})
		if err != nil {
			return nil, 0, err
		}
		defer d.pool.checkin(d.ctx, e)
		cfg, err := LoadWorkload(p, p.App, seed)
		if err != nil {
			return nil, 0, err
		}
		tr := obs.TraceFrom(ctx)
		cfg.Progress = func(lp pssp.LoadProgress) {
			tr.Event("load progress", lp.P99Cycles, "")
			ev.progress(ProgressEvent{Kind: "loadtest", Load: &lp})
		}
		if len(p.Sweep) > 0 {
			sw, err := e.m.LoadSweep(ctx, e.img, cfg, p.Sweep)
			var cost uint64
			if sw != nil {
				for _, pt := range sw.Points {
					cost += loadCost(pt.Report)
				}
			}
			if err != nil {
				if canceledPartial(err, sw != nil && len(sw.Points) > 0) {
					return LoadResult{Sweep: sw, Canceled: true}, cost, nil
				}
				return nil, cost, err
			}
			return LoadResult{Sweep: sw}, cost, nil
		}
		rep, err := e.m.LoadTest(ctx, e.img, cfg)
		var cost uint64
		if rep != nil {
			cost = loadCost(rep)
		}
		if err != nil {
			if canceledPartial(err, rep != nil && rep.Requests > 0) {
				return LoadResult{Report: rep, Canceled: true}, cost, nil
			}
			return nil, cost, err
		}
		return LoadResult{Report: rep}, cost, nil
	}, nil
}

// loadCost approximates a workload's victim-cycle cost: the virtual-time
// horizon times the shard count (each shard is one victim machine running
// for the horizon). Loadgen reports don't carry per-request victim totals,
// so machine-time is the honest upper bound to charge.
func loadCost(rep *pssp.LoadReport) uint64 {
	if rep == nil {
		return 0
	}
	return rep.DurationCycles * uint64(rep.Shards)
}

func (d *Daemon) fuzzJob(p FuzzParams, t *tenant) (jobRun, error) {
	p = NormalizeFuzzParams(p)
	s, err := parseScheme(p.Scheme, "ssp")
	if err != nil {
		return nil, err
	}
	return func(ctx context.Context, ev *eventStream) (any, uint64, error) {
		seed := d.jobSeed(t, p.Seed)
		tr := obs.TraceFrom(ctx)
		e, err := d.pool.checkout(ctx, poolKey{imageKey{app: p.App, scheme: s}, seed})
		if err != nil {
			return nil, 0, err
		}
		defer d.pool.checkin(d.ctx, e)
		rep, err := e.m.Fuzz(ctx, e.img, pssp.FuzzConfig{
			Seeds:    p.Seeds,
			Dict:     p.Dict,
			Execs:    p.Execs,
			Shards:   p.Shards,
			Workers:  p.Workers,
			Seed:     seed,
			MaxInput: p.MaxInput,
			Progress: func(fp pssp.FuzzProgress) {
				tr.Event("fuzz round", 0, "")
				ev.progress(ProgressEvent{Kind: "fuzz", Fuzz: &fp})
			},
		})
		var cost uint64
		if rep != nil {
			cost = rep.Cycles
		}
		if err != nil {
			if canceledPartial(err, rep != nil && rep.Execs > 0) {
				return FuzzResult{FuzzReport: rep, Canceled: true}, cost, nil
			}
			return nil, cost, err
		}
		return FuzzResult{FuzzReport: rep}, cost, nil
	}, nil
}
