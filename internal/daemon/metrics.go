package daemon

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// daemonMetrics is the daemon's registry slice: fixed handles for the
// admission path (resolved once at construction, so the hot path never
// touches the registry's map) plus the trace sequence. The gauges are the
// authoritative storage for the running/queued counts — admission reads
// them back under d.mu, so there is no second copy to drift.
type daemonMetrics struct {
	running                     *obs.Gauge // daemon_jobs_running
	queued                      *obs.Gauge // daemon_queue_depth
	admitted                    *obs.Counter
	completed, failed, canceled *obs.Counter
	jobSeq                      atomic.Uint64 // flight-recorder trace ids
}

func newDaemonMetrics(reg *obs.Registry) *daemonMetrics {
	return &daemonMetrics{
		running:   reg.Gauge("daemon_jobs_running"),
		queued:    reg.Gauge("daemon_queue_depth"),
		admitted:  reg.Counter("daemon_jobs_admitted_total"),
		completed: reg.Counter(obs.Label("daemon_jobs_finished_total", "outcome", "completed")),
		failed:    reg.Counter(obs.Label("daemon_jobs_finished_total", "outcome", "failed")),
		canceled:  reg.Counter(obs.Label("daemon_jobs_finished_total", "outcome", "canceled")),
	}
}

// registerCollectors exposes the slow-moving state — pool occupancy, store
// traffic, per-tenant quota burn, uptime — as scrape-time series, leaving
// every per-operation path untouched.
func (d *Daemon) registerCollectors(reg *obs.Registry) {
	reg.Collect(func(emit func(name string, value float64)) {
		emit("daemon_uptime_seconds", time.Since(d.start).Seconds())
		ps := d.pool.stats()
		emit("daemon_pool_entries", float64(ps.Entries))
		emit("daemon_pool_capacity", float64(ps.Capacity))
		emit("daemon_pool_images", float64(ps.Images))
		emit("daemon_pool_hits_total", float64(ps.Hits))
		emit("daemon_pool_misses_total", float64(ps.Misses))
		emit("daemon_pool_evictions_total", float64(ps.Evictions))
		emit("daemon_pool_respawns_total", float64(ps.Respawns))
		d.tenantsMu.RLock()
		ts := make([]*tenant, 0, len(d.tenants))
		for _, t := range d.tenants {
			ts = append(ts, t)
		}
		d.tenantsMu.RUnlock()
		for _, t := range ts {
			emit(obs.Label("daemon_tenant_jobs_total", "tenant", t.name), float64(t.jobs.Load()))
			emit(obs.Label("daemon_tenant_running", "tenant", t.name), float64(t.running.Load()))
			emit(obs.Label("daemon_tenant_cycles_used_total", "tenant", t.name), float64(t.used.Load()))
		}
	})
	if d.cfg.Store != nil {
		d.cfg.Store.RegisterMetrics(reg)
	}
}

// Metrics returns the daemon's registry (the caller-provided one, or the
// private registry the daemon created so its stats are always
// registry-backed). Serve it with obs.Handler for /metrics.
func (d *Daemon) Metrics() *obs.Registry { return d.reg }

// Recorder returns the daemon's flight recorder (always present, bounded).
func (d *Daemon) Recorder() *obs.Recorder { return d.rec }

// beginTrace opens a flight-recorder trace for one job and attaches it to
// ctx so lower layers (pool checkout, image compile) can add spans without
// new parameters. The trace id is the daemon's own job sequence — stable
// across connections, unlike per-connection request ids.
func (d *Daemon) beginTrace(ctx context.Context, method string) (context.Context, *obs.Trace) {
	id := d.met.jobSeq.Add(1)
	tr := d.rec.Begin(id, method)
	tr.Event("dispatch", 0, method)
	return obs.ContextWithTrace(ctx, tr), tr
}
