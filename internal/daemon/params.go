package daemon

import "repro/pssp"

// Wire-param normalization shared by the whole-job handlers (attackJob,
// loadJob, fuzzJob), the shard-lease handlers, and the fabric coordinator.
// A coordinator plans a job from the same normalized params a worker
// executes a lease from, so the two resolve the same scenario by
// construction — the defaults here are psspattack/psspload/psspfuzz's flag
// defaults, which is what keeps daemon jobs byte-identical to CLI runs.

// NormalizeAttackParams applies psspattack's flag defaults (Seed excepted:
// 0 keeps meaning "derive from the tenant stream" for whole jobs, and is
// rejected by shard jobs).
func NormalizeAttackParams(p AttackParams) AttackParams {
	if p.Target == "" {
		p.Target = "nginx-vuln"
	}
	if p.Scheme == "" {
		p.Scheme = "ssp"
	}
	if p.Budget <= 0 {
		p.Budget = 4096
	}
	if p.Repeats <= 0 {
		p.Repeats = 1
	}
	return p
}

// NormalizeLoadParams applies psspload's flag defaults.
func NormalizeLoadParams(p LoadParams) LoadParams {
	if p.App == "" {
		p.App = "nginx"
	}
	if p.Scheme == "" {
		p.Scheme = "p-ssp"
	}
	if p.Rate == 0 {
		p.Rate = 10
	}
	if p.Clients == 0 {
		p.Clients = 8
	}
	if p.Requests == 0 && p.DurationCycles == 0 {
		p.Requests = 256
	}
	if p.Budget <= 0 {
		p.Budget = 64
	}
	return p
}

// NormalizeFuzzParams applies psspfuzz's flag defaults (the engine itself
// defaults execs/shards/max-input).
func NormalizeFuzzParams(p FuzzParams) FuzzParams {
	if p.App == "" {
		p.App = "nginx-vuln"
	}
	if p.Scheme == "" {
		p.Scheme = "ssp"
	}
	return p
}

// ParseArrivals maps the wire arrival-model name ("" defaults to poisson)
// onto the facade kind, as a bad-request on failure.
func ParseArrivals(name string) (pssp.ArrivalKind, error) {
	switch name {
	case "", "poisson":
		return pssp.ArrivalsOpenPoisson, nil
	case "uniform":
		return pssp.ArrivalsOpenUniform, nil
	case "closed":
		return pssp.ArrivalsClosedLoop, nil
	default:
		return 0, badRequest("unknown arrival model %q (want poisson, uniform or closed)", name)
	}
}

// LoadWorkload builds the facade workload scenario from normalized load
// params — the single params→WorkloadConfig mapping, shared so a lease
// executes exactly the scenario the coordinator planned. label "" takes the
// app name (psspload's local behaviour); Progress is the caller's to attach.
func LoadWorkload(p LoadParams, label string, seed uint64) (pssp.WorkloadConfig, error) {
	kind, err := ParseArrivals(p.Arrivals)
	if err != nil {
		return pssp.WorkloadConfig{}, err
	}
	if label == "" {
		label = p.App
	}
	mix := make([]pssp.RequestClass, len(p.Mix))
	for i, c := range p.Mix {
		mix[i] = pssp.RequestClass{Name: c.Name, Weight: c.Weight, Payload: c.Payload, Probe: c.Probe}
	}
	return pssp.WorkloadConfig{
		Label:          label,
		Mix:            mix,
		Arrivals:       kind,
		RatePerMcycle:  p.Rate,
		Clients:        p.Clients,
		ThinkCycles:    p.ThinkCycles,
		Requests:       p.Requests,
		DurationCycles: p.DurationCycles,
		Shards:         p.Shards,
		Workers:        p.Workers,
		Seed:           seed,
		Attack:         pssp.AttackConfig{MaxTrials: p.Budget},
	}, nil
}
