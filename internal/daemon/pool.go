package daemon

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/pssp"
)

// imageKey identifies a compiled image: compilation is deterministic in
// (app, scheme), so one cache entry serves every seed.
type imageKey struct {
	app    string
	scheme pssp.Scheme
}

// poolKey identifies a warm machine: the image plus the machine seed. Jobs
// with the same key are interchangeable — a parked entry serves any of
// them with CLI-identical results.
type poolKey struct {
	imageKey
	seed uint64
}

// entry is one parked machine: a fresh-booted fork server (zero requests
// served) on a machine seeded with key.seed, plus the image it serves.
// Campaign/loadtest/fuzz jobs run on the machine (their victims are
// replicas derived purely from the job seed, so they leave the entry
// pristine); boot jobs read the parked server. An entry whose server has
// served requests is dirty: its kernel state has diverged from a fresh
// boot, so check-in replaces it to keep the determinism contract.
type entry struct {
	key poolKey
	m   *pssp.Machine
	img *pssp.Image
	srv *pssp.Server
}

// pool is the warm machine pool: parked entries keyed by (app, scheme,
// seed) with LRU eviction, over a compiled-image cache keyed by (app,
// scheme). Checkout is exclusive — an entry is either parked here or owned
// by exactly one job.
type pool struct {
	mu     sync.Mutex
	cap    int
	engine pssp.Engine
	// store, when non-nil, backs every compile: an in-process image-cache
	// miss becomes a store lookup before it becomes a compile, so images
	// survive daemon restarts and are shared with other processes via the
	// store's mmap'd blobs.
	store *pssp.Store

	entries map[poolKey]*entry
	order   []poolKey // LRU, oldest first

	images map[imageKey]*pssp.Image

	hits, misses, evictions, respawns uint64
}

func newPool(capacity int, engine pssp.Engine, store *pssp.Store) *pool {
	if capacity <= 0 {
		capacity = 8
	}
	return &pool{
		cap:     capacity,
		engine:  engine,
		store:   store,
		entries: make(map[poolKey]*entry),
		images:  make(map[imageKey]*pssp.Image),
	}
}

// machine builds a machine wired to the pool's engine and artifact store.
func (p *pool) machine(opts ...pssp.Option) *pssp.Machine {
	opts = append(opts, pssp.WithEngine(p.engine))
	if p.store != nil {
		opts = append(opts, pssp.WithStore(p.store))
	}
	return pssp.NewMachine(opts...)
}

// image returns the cached compiled image for key, compiling on miss. The
// compile runs outside the lock (it dominates cold-job latency); two
// concurrent misses may both compile, but compilation is deterministic so
// either result is the same image and the second simply wins the store.
// ctx carries the job's flight-recorder trace; compile and store spans
// land there.
func (p *pool) image(ctx context.Context, key imageKey) (*pssp.Image, bool, error) {
	tr := obs.TraceFrom(ctx)
	p.mu.Lock()
	if img, ok := p.images[key]; ok {
		p.mu.Unlock()
		tr.Event("image cached", 0, key.app)
		return img, true, nil
	}
	p.mu.Unlock()

	// With a store attached the compile pipeline is a store lookup first;
	// the hit/miss delta around the compile attributes it. Concurrent
	// compiles can skew the delta — the trace is diagnostic, the counters
	// (store collector) are the ground truth.
	var before pssp.StoreStats
	if p.store != nil && tr != nil {
		before = p.store.Stats()
	}
	m := p.machine(pssp.WithScheme(key.scheme))
	img, err := m.Pipeline().CompileApp(key.app).Image()
	if err != nil {
		return nil, false, err
	}
	if p.store != nil && tr != nil {
		after := p.store.Stats()
		if after.Hits > before.Hits {
			tr.Event("store hit", 0, key.app)
		} else if after.Misses > before.Misses {
			tr.Event("store miss", 0, key.app)
		}
	}
	tr.Event("compile", 0, key.app)
	p.mu.Lock()
	if cached, ok := p.images[key]; ok {
		img = cached
	} else {
		p.images[key] = img
	}
	p.mu.Unlock()
	return img, false, nil
}

// build boots a fresh entry for key: a new machine seeded with key.seed
// serving the (cached) image, parked at its accept point.
func (p *pool) build(ctx context.Context, key poolKey) (*entry, error) {
	img, _, err := p.image(ctx, key.imageKey)
	if err != nil {
		return nil, err
	}
	m := p.machine(pssp.WithSeed(key.seed), pssp.WithScheme(key.scheme))
	srv, err := m.Serve(ctx, img)
	if err != nil {
		return nil, fmt.Errorf("daemon: booting %s/%s seed %d: %w", key.app, key.scheme, key.seed, err)
	}
	obs.TraceFrom(ctx).Event("boot", 0, key.app)
	return &entry{key: key, m: m, img: img, srv: srv}, nil
}

// checkout hands the caller exclusive ownership of a warm entry for key,
// building one on miss. A parked entry that fails its health check — the
// parent no longer alive and waiting in accept — is respawned from the
// image instead of handed out.
func (p *pool) checkout(ctx context.Context, key poolKey) (*entry, error) {
	tr := obs.TraceFrom(ctx)
	p.mu.Lock()
	e, ok := p.entries[key]
	if ok {
		delete(p.entries, key)
		p.removeOrder(key)
		if e.srv.Parked() {
			p.hits++
			p.mu.Unlock()
			tr.Event("pool checkout", 0, "hit")
			return e, nil
		}
		// Crashed or otherwise un-parked entry: retire it and fall through
		// to a fresh build.
		p.respawns++
		p.mu.Unlock()
		kernel.CountRespawn()
		tr.Event("pool respawn", 0, key.app)
		e.m.Close()
		p.mu.Lock()
	}
	p.misses++
	p.mu.Unlock()
	tr.Event("pool checkout", 0, "miss")
	return p.build(ctx, key)
}

// checkin returns an entry to the pool. A dirty entry — its parked server
// has handled requests or was closed, so its kernel state no longer
// matches a fresh boot — is replaced by a rebuilt one (the old machine's
// buffers are released on Close). Inserting may LRU-evict the
// least-recently-used entry, whose machine is closed too.
func (p *pool) checkin(ctx context.Context, e *entry) {
	if e == nil {
		return
	}
	if e.srv.Closed() || e.srv.Requests() > 0 || !e.srv.Parked() {
		e.m.Close()
		fresh, err := p.build(ctx, e.key)
		if err != nil {
			// Cancellation mid-rebuild (or a boot failure): drop the slot;
			// the next checkout for this key rebuilds.
			return
		}
		p.mu.Lock()
		p.respawns++
		p.mu.Unlock()
		e = fresh
	}
	p.mu.Lock()
	if _, dup := p.entries[e.key]; dup {
		// Another job already parked an equivalent entry (possible after a
		// concurrent rebuild). Keep the parked one, retire this one.
		p.mu.Unlock()
		e.m.Close()
		return
	}
	p.entries[e.key] = e
	p.order = append(p.order, e.key)
	var evicted []*entry
	for len(p.order) > p.cap {
		victim := p.order[0]
		p.order = p.order[1:]
		if ev, ok := p.entries[victim]; ok {
			delete(p.entries, victim)
			evicted = append(evicted, ev)
			p.evictions++
		}
	}
	p.mu.Unlock()
	for _, ev := range evicted {
		ev.m.Close()
	}
}

// removeOrder drops key from the LRU order (caller holds p.mu).
func (p *pool) removeOrder(key poolKey) {
	for i, k := range p.order {
		if k == key {
			p.order = append(p.order[:i], p.order[i+1:]...)
			return
		}
	}
}

// close retires every parked entry, releasing their buffers.
func (p *pool) close() {
	p.mu.Lock()
	entries := p.entries
	p.entries = make(map[poolKey]*entry)
	p.order = nil
	p.mu.Unlock()
	for _, e := range entries {
		e.m.Close()
	}
}

// stats snapshots the pool's counters, including the artifact store's hit
// and miss tallies when one is attached — these split a cold pool miss that
// compiled from one the store served.
func (p *pool) stats() PoolStats {
	p.mu.Lock()
	st := PoolStats{
		Entries:   len(p.entries),
		Capacity:  p.cap,
		Images:    len(p.images),
		Hits:      p.hits,
		Misses:    p.misses,
		Evictions: p.evictions,
		Respawns:  p.respawns,
	}
	store := p.store
	p.mu.Unlock()
	if store != nil {
		ss := store.Stats()
		st.StoreHits, st.StoreMisses = ss.Hits, ss.Misses
	}
	return st
}
