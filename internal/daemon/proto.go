// Package daemon implements psspd, the long-running multi-tenant serving
// front end of the simulation stack: compile/boot/attack/loadtest/fuzz jobs
// submitted over a newline-delimited JSON-RPC connection, executed on a warm
// pool of parked fork-server machines, under per-tenant admission control
// and deterministic seed derivation.
//
// The protocol is one JSON object per line in both directions. A client
// sends Request lines; the daemon answers each with zero or more Event
// lines (streamed progress) followed by exactly one terminal Response line
// carrying the request's id. Requests on one connection run concurrently;
// lines from concurrent jobs interleave, which is why every line carries
// the id.
//
// Determinism contract: a job that names an explicit seed is byte-identical
// to the equivalent CLI invocation with that seed — the daemon builds the
// same machines from the same configuration. A job with seed 0 draws a
// derived seed rng.Mix(tenantSeed, jobID) from its tenant's stream, which
// is unique per job (and therefore not client-reproducible; name a seed
// when reproducibility matters).
package daemon

import (
	"encoding/json"

	"repro/pssp"
)

// Request is one client→daemon line.
type Request struct {
	// ID correlates the response (and streamed events) with the request.
	// Client-chosen, unique per connection.
	ID uint64 `json:"id"`
	// Method names the operation: ping, stats, cancel, compile, boot,
	// attack, loadtest, fuzz.
	Method string `json:"method"`
	// Tenant names the caller for admission control and seed derivation
	// (empty = "default").
	Tenant string `json:"tenant,omitempty"`
	// Params carries the method's parameter object.
	Params json.RawMessage `json:"params,omitempty"`
}

// Response is one daemon→client line: a streamed event when Event is
// non-empty, the request's terminal reply otherwise.
type Response struct {
	ID uint64 `json:"id"`
	// Event marks a non-terminal stream line ("progress"); the terminal
	// response leaves it empty.
	Event string `json:"event,omitempty"`
	// Result is the method's result object (terminal, success).
	Result json.RawMessage `json:"result,omitempty"`
	// Error reports failure (terminal); exactly one of Result/Error is set
	// on a terminal line.
	Error *Error `json:"error,omitempty"`
}

// Error codes, stable across releases: clients dispatch on Code, never on
// Message.
const (
	// CodeBadRequest: malformed request or parameters.
	CodeBadRequest = "bad-request"
	// CodeQuota: the tenant exhausted its resource quota.
	CodeQuota = "quota"
	// CodeBusy: admission queue full — back off and retry.
	CodeBusy = "busy"
	// CodeCanceled: the job was canceled before producing a report.
	CodeCanceled = "canceled"
	// CodeShutdown: the daemon is shutting down.
	CodeShutdown = "shutdown"
	// CodeInternal: the job failed.
	CodeInternal = "internal"
)

// Error is the wire error: a stable code plus a human-readable message.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements error.
func (e *Error) Error() string { return "daemon: " + e.Code + ": " + e.Message }

// AttackParams mirror psspattack's flags; zero values take the same
// defaults the CLI flags declare, except Seed where 0 means "derive from
// the tenant stream".
type AttackParams struct {
	Target   string `json:"target,omitempty"`
	Scheme   string `json:"scheme,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	Budget   int    `json:"budget,omitempty"`
	Repeats  int    `json:"repeats,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
}

// LoadClass is one traffic-mix class of a loadtest job (see
// pssp.RequestClass).
type LoadClass struct {
	Name    string `json:"name,omitempty"`
	Weight  int    `json:"weight,omitempty"`
	Payload []byte `json:"payload,omitempty"`
	Probe   string `json:"probe,omitempty"`
}

// LoadParams mirror psspload's flags. A non-empty Sweep runs a load sweep
// (result: pssp.LoadSweepReport) instead of a single workload (result:
// pssp.LoadReport).
type LoadParams struct {
	App            string      `json:"app,omitempty"`
	Scheme         string      `json:"scheme,omitempty"`
	Mix            []LoadClass `json:"mix,omitempty"`
	Arrivals       string      `json:"arrivals,omitempty"`
	Rate           float64     `json:"rate,omitempty"`
	Clients        int         `json:"clients,omitempty"`
	ThinkCycles    float64     `json:"think_cycles,omitempty"`
	Requests       int         `json:"requests,omitempty"`
	DurationCycles uint64      `json:"duration_cycles,omitempty"`
	Shards         int         `json:"shards,omitempty"`
	Workers        int         `json:"workers,omitempty"`
	Budget         int         `json:"budget,omitempty"`
	Sweep          []float64   `json:"sweep,omitempty"`
	Seed           uint64      `json:"seed,omitempty"`
}

// FuzzParams mirror psspfuzz's flags.
type FuzzParams struct {
	App      string   `json:"app,omitempty"`
	Scheme   string   `json:"scheme,omitempty"`
	Seeds    [][]byte `json:"seeds,omitempty"`
	Dict     [][]byte `json:"dict,omitempty"`
	Execs    int      `json:"execs,omitempty"`
	Shards   int      `json:"shards,omitempty"`
	Workers  int      `json:"workers,omitempty"`
	MaxInput int      `json:"max_input,omitempty"`
	Seed     uint64   `json:"seed,omitempty"`
}

// RegisterParams is the first line a fabric worker sends after dialing a
// coordinator (`psspd -worker -join`): it flips the connection's roles, so
// the coordinator thereafter issues shard-lease requests against the
// worker's warm pool.
type RegisterParams struct {
	// Name identifies the worker in coordinator stats (default: pid-based).
	Name string `json:"name,omitempty"`
	// Pid is the worker process id, for operator correlation.
	Pid int `json:"pid,omitempty"`
}

// RegisterResult acks a worker registration.
type RegisterResult struct {
	OK bool `json:"ok"`
	// Name echoes the name the coordinator registered the worker under.
	Name string `json:"name"`
}

// CampaignShardParams run replications [Lo, Hi) of the attack campaign the
// embedded AttackParams describe. Seed must be explicit and non-zero:
// derived seeds would differ when a lost lease is re-issued, breaking the
// fabric's bit-identical merge.
type CampaignShardParams struct {
	AttackParams
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// CampaignShardResult carries the shard range's wire partial back to the
// coordinator for ordered merging.
type CampaignShardResult struct {
	Partial *pssp.CampaignPartial `json:"partial"`
}

// LoadShardParams run workload shards [Lo, Hi) of the scenario the embedded
// LoadParams describe (Sweep must be empty — the coordinator scales and
// leases each sweep point itself). Seed must be explicit and non-zero.
type LoadShardParams struct {
	LoadParams
	// Label overrides the scenario label (sweep points re-label the base
	// scenario, e.g. "nginx x1.5").
	Label string `json:"label,omitempty"`
	Lo    int    `json:"lo"`
	Hi    int    `json:"hi"`
}

// LoadShardResult carries the shard range's wire partials back to the
// coordinator for ordered merging.
type LoadShardResult struct {
	Partials []*pssp.LoadPartial `json:"partials"`
}

// FuzzShardParams run fuzzing shards [Lo, Hi) of the campaign the embedded
// FuzzParams describe. Seed must be explicit and non-zero. BaseVirgin, when
// set, seeds every shard's coverage frontier with the coordinator's merged
// frontier (the distributed frontier-sync path). CorpusDir, when set, names
// a shared persistent corpus the worker flock-merges its findings into.
type FuzzShardParams struct {
	FuzzParams
	Label      string `json:"label,omitempty"`
	Lo         int    `json:"lo"`
	Hi         int    `json:"hi"`
	BaseVirgin []byte `json:"base_virgin,omitempty"`
	CorpusDir  string `json:"corpus_dir,omitempty"`
}

// FuzzShardResult carries the shard range's wire partials back to the
// coordinator for ordered merging.
type FuzzShardResult struct {
	Partials []*pssp.FuzzPartial `json:"partials"`
	// CorpusAdded counts inputs newly written to the shared corpus
	// (CorpusDir set only).
	CorpusAdded int `json:"corpus_added,omitempty"`
}

// CompileParams name an image to compile into the daemon's cache.
type CompileParams struct {
	App    string `json:"app,omitempty"`
	Scheme string `json:"scheme,omitempty"`
}

// CompileResult reports a compile job.
type CompileResult struct {
	App    string `json:"app"`
	Scheme string `json:"scheme"`
	// Cached is true when the image was already in the daemon's cache.
	Cached bool `json:"cached"`
}

// BootParams name a (app, scheme, seed) machine to park in the warm pool.
type BootParams struct {
	App    string `json:"app,omitempty"`
	Scheme string `json:"scheme,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
}

// BootResult reports a boot job.
type BootResult struct {
	App    string `json:"app"`
	Scheme string `json:"scheme"`
	Seed   uint64 `json:"seed"`
	// FootprintBytes is the parked parent's mapped memory (Table IV's
	// worker baseline).
	FootprintBytes int `json:"footprint_bytes"`
}

// CancelParams name the request to cancel by its id on the same
// connection.
type CancelParams struct {
	ID uint64 `json:"id"`
}

// CancelResult reports whether the named request was found still running.
type CancelResult struct {
	Canceled bool `json:"canceled"`
}

// ProgressEvent is the payload of "progress" Event lines: exactly one of
// the per-engine tallies is set, matching the job kind.
type ProgressEvent struct {
	Kind     string                 `json:"kind"` // attack | loadtest | fuzz
	Campaign *pssp.CampaignProgress `json:"campaign,omitempty"`
	Load     *pssp.LoadProgress     `json:"load,omitempty"`
	Fuzz     *pssp.FuzzProgress     `json:"fuzz,omitempty"`
}

// AttackReport is the attack job's result — the exact shape psspattack
// -json emits, shared so the local and remote paths cannot drift (the e2e
// determinism contract is byte-identical JSON for a fixed seed).
type AttackReport struct {
	Target          string  `json:"target"`
	Scheme          string  `json:"scheme"`
	Strategy        string  `json:"strategy"`
	Seed            uint64  `json:"seed"`
	Budget          int     `json:"budget"`
	Replications    int     `json:"replications"`
	Workers         int     `json:"workers"`
	Completed       int     `json:"completed"`
	Successes       int     `json:"successes"`
	Verified        int     `json:"verified_successes"`
	SuccessRate     float64 `json:"success_rate"`
	Trials          int     `json:"trials"`
	OracleCalls     int     `json:"oracle_calls"`
	OracleErrors    int     `json:"oracle_errors"`
	OracleError     string  `json:"oracle_error,omitempty"`
	Detections      int     `json:"detections"`
	DetectRate      float64 `json:"detection_rate"`
	Cycles          uint64  `json:"victim_cycles"`
	TrialsToSuccess struct {
		N      int     `json:"n"`
		Min    float64 `json:"min"`
		Median float64 `json:"median"`
		P95    float64 `json:"p95"`
		Max    float64 `json:"max"`
	} `json:"trials_to_success"`
	Outcomes []AttackOutcome `json:"outcomes"`
	// Canceled marks a partial report: the job was canceled mid-campaign
	// and the aggregate covers only the completed replications.
	Canceled bool `json:"canceled,omitempty"`
}

// AttackOutcome is one replication's slice of an AttackReport.
type AttackOutcome struct {
	Rep      int  `json:"rep"`
	Success  bool `json:"success"`
	Verified bool `json:"verified,omitempty"`
	Trials   int  `json:"trials"`
	FailedAt int  `json:"failed_at"`
	Restarts int  `json:"restarts,omitempty"`
}

// BuildAttackReport folds a campaign aggregate into the report shape. Both
// psspattack's local path and the daemon's attack job call it, which is
// what makes local and remote -json output byte-identical for a fixed
// seed.
func BuildAttackReport(target string, scheme pssp.Scheme, seed uint64, budget, repeats, workers int, res *pssp.CampaignResult) AttackReport {
	rep := AttackReport{
		Target: target, Scheme: scheme.String(), Strategy: res.Label,
		Seed: seed, Budget: budget,
		Replications: repeats, Workers: workers,
		Completed: res.Completed, Successes: res.Successes,
		Verified:    res.VerifiedSuccesses,
		SuccessRate: res.SuccessRate(),
		Trials:      res.Trials, OracleCalls: res.OracleCalls,
		OracleErrors: res.OracleErrors,
		Detections:   res.Detections, DetectRate: res.DetectionRate(),
		Cycles: res.Cycles,
	}
	if res.OracleErr != nil {
		rep.OracleError = res.OracleErr.Error()
	}
	rep.TrialsToSuccess.N = res.TrialsToSuccess.N
	rep.TrialsToSuccess.Min = res.TrialsToSuccess.Min
	rep.TrialsToSuccess.Median = res.TrialsToSuccess.Median
	rep.TrialsToSuccess.P95 = res.TrialsToSuccess.P95
	rep.TrialsToSuccess.Max = res.TrialsToSuccess.Max
	for _, out := range res.Outcomes {
		rep.Outcomes = append(rep.Outcomes, AttackOutcome{
			Rep: out.Rep, Success: out.Success, Verified: out.Verified, Trials: out.Trials,
			FailedAt: out.FailedAt, Restarts: out.Restarts,
		})
	}
	return rep
}

// FuzzResult is the fuzz job's result — psspfuzz's -json shape, shared for
// the same no-drift reason as AttackReport.
type FuzzResult struct {
	*pssp.FuzzReport
	// TimedOut marks a wall-clock-boxed partial report (psspfuzz
	// -duration).
	TimedOut bool `json:"timed_out,omitempty"`
	// Canceled marks a report truncated by job cancellation.
	Canceled bool `json:"canceled,omitempty"`
}

// LoadResult is the loadtest job's result: the report (or sweep report),
// with a cancellation marker.
type LoadResult struct {
	Report *pssp.LoadReport      `json:"report,omitempty"`
	Sweep  *pssp.LoadSweepReport `json:"sweep,omitempty"`
	// Canceled marks a report truncated by job cancellation.
	Canceled bool `json:"canceled,omitempty"`
}

// Stats is the daemon's observability snapshot.
type Stats struct {
	// UptimeSeconds since the daemon started serving.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Running and Queued are the jobs in flight and waiting for a slot;
	// Completed/Failed/Canceled count finished jobs.
	Running   int    `json:"running"`
	Queued    int    `json:"queued"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	// Pool reports warm-pool occupancy and effectiveness.
	Pool PoolStats `json:"pool"`
	// Tenants lists per-tenant usage, ordered by name.
	Tenants []TenantStats `json:"tenants"`
}

// PoolStats reports the warm machine pool.
type PoolStats struct {
	// Entries is the number of parked machines; Capacity the LRU bound.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
	// Images is the number of compiled images cached.
	Images int `json:"images"`
	// Hits/Misses count checkouts served warm vs built cold; Evictions
	// counts LRU teardowns, Respawns health-check replacements of crashed
	// or dirty entries.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Respawns  uint64 `json:"respawns"`
	// StoreHits/StoreMisses count artifact-store lookups behind the image
	// cache (zero when no store is attached). They split a cold pool miss
	// that recompiled from one the store served: a pool miss with a store
	// hit skipped the compiler entirely.
	StoreHits   uint64 `json:"store_hits"`
	StoreMisses uint64 `json:"store_misses"`
}

// TenantStats reports one tenant's usage.
type TenantStats struct {
	Name string `json:"name"`
	// Running is the tenant's jobs in flight; Jobs its total admitted.
	Running int    `json:"running"`
	Jobs    uint64 `json:"jobs"`
	// CyclesUsed is the victim-cycle cost charged so far, against
	// CyclesQuota (0 = unlimited).
	CyclesUsed  uint64 `json:"cycles_used"`
	CyclesQuota uint64 `json:"cycles_quota,omitempty"`
}
