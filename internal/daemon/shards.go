package daemon

import (
	"context"

	"repro/internal/store"
	"repro/pssp"
)

// Shard jobs are the fabric worker's side of a lease: the coordinator
// resolves a job once, partitions its shard range, and sends each lease as
// a campaignshard/loadshard/fuzzshard request over the flipped worker
// connection. The handlers below mirror the defaulting of their whole-job
// counterparts (attackJob/loadJob/fuzzJob) exactly — the scenario a lease
// executes must be the one the coordinator planned — but run only [Lo, Hi)
// and return wire partials instead of rendered reports.
//
// Shard jobs require an explicit non-zero Seed: a derived seed would be
// drawn per request, so a lost lease re-issued to another worker would run
// a different scenario and the fabric's bit-identical merge would break.

// shardSeed validates the explicit-seed requirement shared by all shard
// jobs.
func shardSeed(seed uint64) (uint64, error) {
	if seed == 0 {
		return 0, badRequest("shard jobs require an explicit non-zero seed (derived seeds are not lease-stable)")
	}
	return seed, nil
}

// shardRange validates a lease's half-open shard range; upper bounds are
// checked downstream against the resolved scenario.
func shardRange(lo, hi int) error {
	if lo < 0 || hi <= lo {
		return badRequest("bad shard range [%d,%d)", lo, hi)
	}
	return nil
}

// campaignShardJob runs replications [Lo, Hi) of an attack campaign and
// returns the range's CampaignShardResult.
func (d *Daemon) campaignShardJob(p CampaignShardParams, t *tenant) (jobRun, error) {
	p.AttackParams = NormalizeAttackParams(p.AttackParams)
	s, err := parseScheme(p.Scheme, "ssp")
	if err != nil {
		return nil, err
	}
	seed, err := shardSeed(p.Seed)
	if err != nil {
		return nil, err
	}
	if err := shardRange(p.Lo, p.Hi); err != nil {
		return nil, err
	}
	return func(ctx context.Context, ev *eventStream) (any, uint64, error) {
		e, err := d.pool.checkout(ctx, poolKey{imageKey{app: p.Target, scheme: s}, seed})
		if err != nil {
			return nil, 0, err
		}
		defer d.pool.checkin(d.ctx, e)
		part, err := e.m.CampaignShards(ctx, e.img, pssp.CampaignConfig{
			Strategy:     p.Strategy,
			Replications: p.Repeats,
			Workers:      p.Workers,
			Seed:         seed,
			Attack:       pssp.AttackConfig{MaxTrials: p.Budget},
			Progress: func(cp pssp.CampaignProgress) {
				ev.progress(ProgressEvent{Kind: "attack", Campaign: &cp})
			},
		}, p.Lo, p.Hi)
		var cost uint64
		if part != nil {
			for _, out := range part.Outcomes {
				cost += out.Cycles
			}
		}
		if err != nil {
			return nil, cost, err
		}
		return CampaignShardResult{Partial: part}, cost, nil
	}, nil
}

// loadShardJob runs workload shards [Lo, Hi) of a load scenario and returns
// the range's LoadShardResult. Sweeps are coordinator-side: each sweep point
// is scaled and leased as its own single-workload shard job.
func (d *Daemon) loadShardJob(p LoadShardParams, t *tenant) (jobRun, error) {
	if len(p.Sweep) > 0 {
		return nil, badRequest("loadshard takes a single workload; the coordinator scales sweep points itself")
	}
	p.LoadParams = NormalizeLoadParams(p.LoadParams)
	s, err := parseScheme(p.Scheme, "p-ssp")
	if err != nil {
		return nil, err
	}
	if _, err := ParseArrivals(p.Arrivals); err != nil {
		return nil, err
	}
	seed, err := shardSeed(p.Seed)
	if err != nil {
		return nil, err
	}
	if err := shardRange(p.Lo, p.Hi); err != nil {
		return nil, err
	}
	return func(ctx context.Context, ev *eventStream) (any, uint64, error) {
		e, err := d.pool.checkout(ctx, poolKey{imageKey{app: p.App, scheme: s}, seed})
		if err != nil {
			return nil, 0, err
		}
		defer d.pool.checkin(d.ctx, e)
		cfg, err := LoadWorkload(p.LoadParams, p.Label, seed)
		if err != nil {
			return nil, 0, err
		}
		cfg.Progress = func(lp pssp.LoadProgress) {
			ev.progress(ProgressEvent{Kind: "loadtest", Load: &lp})
		}
		parts, err := e.m.LoadShards(ctx, e.img, cfg, p.Lo, p.Hi)
		var cost uint64
		for _, part := range parts {
			cost += part.Makespan
		}
		if err != nil {
			return nil, cost, err
		}
		return LoadShardResult{Partials: parts}, cost, nil
	}, nil
}

// fuzzShardJob runs fuzzing shards [Lo, Hi) of a fuzzing campaign and
// returns the range's FuzzShardResult. BaseVirgin carries the coordinator's
// merged coverage frontier into every shard (the distributed frontier-sync
// path); CorpusDir, when set, flock-merges the lease's discoveries into a
// shared persistent corpus before the result ships.
func (d *Daemon) fuzzShardJob(p FuzzShardParams, t *tenant) (jobRun, error) {
	p.FuzzParams = NormalizeFuzzParams(p.FuzzParams)
	s, err := parseScheme(p.Scheme, "ssp")
	if err != nil {
		return nil, err
	}
	seed, err := shardSeed(p.Seed)
	if err != nil {
		return nil, err
	}
	if err := shardRange(p.Lo, p.Hi); err != nil {
		return nil, err
	}
	return func(ctx context.Context, ev *eventStream) (any, uint64, error) {
		e, err := d.pool.checkout(ctx, poolKey{imageKey{app: p.App, scheme: s}, seed})
		if err != nil {
			return nil, 0, err
		}
		defer d.pool.checkin(d.ctx, e)
		cfg := pssp.FuzzConfig{
			Label:      p.Label,
			Seeds:      p.Seeds,
			Dict:       p.Dict,
			Execs:      p.Execs,
			Shards:     p.Shards,
			Workers:    p.Workers,
			Seed:       seed,
			MaxInput:   p.MaxInput,
			BaseVirgin: p.BaseVirgin,
			Progress: func(fp pssp.FuzzProgress) {
				ev.progress(ProgressEvent{Kind: "fuzz", Fuzz: &fp})
			},
		}
		parts, err := e.m.FuzzShards(ctx, e.img, cfg, p.Lo, p.Hi)
		var cost uint64
		for _, part := range parts {
			cost += part.Cycles
		}
		if err != nil {
			return nil, cost, err
		}
		res := FuzzShardResult{Partials: parts}
		if p.CorpusDir != "" {
			// Fold only this lease's shards into a subset report to harvest
			// its corpus inputs and frontier; content-hash dedup makes the
			// flock'd merge idempotent across re-issued leases.
			plan, perr := e.m.FuzzPlan(e.img, cfg)
			if perr != nil {
				return nil, cost, perr
			}
			sub, perr := pssp.MergeFuzzPartials(plan, parts)
			if perr != nil {
				return nil, cost, perr
			}
			corp, perr := store.OpenCorpus(p.CorpusDir)
			if perr != nil {
				return nil, cost, perr
			}
			if res.CorpusAdded, perr = corp.Add(sub.CorpusInputs()); perr != nil {
				return nil, cost, perr
			}
			if perr = corp.SaveFrontier(sub.Frontier()); perr != nil {
				return nil, cost, perr
			}
		}
		return res, cost, nil
	}, nil
}
