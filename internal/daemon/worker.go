package daemon

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"time"
)

// SplitAddr parses a daemon address — "unix:/path/to.sock", "tcp:host:port",
// or a bare "host:port" (TCP) — into the (network, address) pair net.Dial
// and net.Listen expect. Shared by the client library and the worker's join
// dialer so every component accepts the same address syntax.
func SplitAddr(addr string) (network, target string) {
	network, target = "tcp", addr
	switch {
	case strings.HasPrefix(addr, "unix:"):
		network, target = "unix", strings.TrimPrefix(addr, "unix:")
	case strings.HasPrefix(addr, "tcp:"):
		target = strings.TrimPrefix(addr, "tcp:")
	}
	return network, target
}

// Worker join/backoff tuning. Workers may start before their coordinator
// listens (and outlive one-shot coordinators between jobs), so the dial
// loop retries forever with capped backoff instead of failing.
const (
	workerBackoffMin = 100 * time.Millisecond
	workerBackoffMax = 2 * time.Second
	joinTimeout      = 10 * time.Second
)

// Worker runs the daemon as a fabric worker — the `psspd -worker -join`
// mode. It dials the coordinator at addr, registers under name, and then
// serves the outbound connection exactly like an accepted one: the roles
// flip, and the coordinator becomes a client issuing shard-lease requests
// against the worker's warm pool. On connection loss (coordinator restart,
// lease-timeout eviction) the worker rejoins with capped backoff.
//
// Worker returns nil once the daemon shuts down, or ctx.Err() when ctx is
// canceled.
func (d *Daemon) Worker(ctx context.Context, addr, name string) error {
	backoff := workerBackoffMin
	for {
		if d.isClosed() {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		network, target := SplitAddr(addr)
		conn, err := net.Dial(network, target)
		if err == nil {
			err = d.join(conn, name)
			if err == nil {
				backoff = workerBackoffMin
				continue
			}
			conn.Close()
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > workerBackoffMax {
			backoff = workerBackoffMax
		}
	}
}

// join performs the register handshake on a fresh coordinator connection
// and, on ack, serves it until it drops. The handshake is strictly
// half-duplex — the worker sends one register line and the coordinator
// sends nothing until its one-line ack — so the buffered reader cannot
// swallow post-handshake requests; it is handed to serveStream regardless.
func (d *Daemon) join(conn net.Conn, name string) error {
	params, err := json.Marshal(RegisterParams{Name: name, Pid: os.Getpid()})
	if err != nil {
		return err
	}
	conn.SetDeadline(time.Now().Add(joinTimeout))
	if err := json.NewEncoder(conn).Encode(Request{ID: 1, Method: "register", Params: params}); err != nil {
		return fmt.Errorf("daemon: sending register: %w", err)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return fmt.Errorf("daemon: reading register ack: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return fmt.Errorf("daemon: malformed register ack: %w", err)
	}
	if resp.Error != nil {
		return errors.New("daemon: register rejected: " + resp.Error.Message)
	}
	conn.SetDeadline(time.Time{})

	d.lisMu.Lock()
	if d.isClosed() {
		d.lisMu.Unlock()
		return ErrShutdown
	}
	d.conns[conn] = struct{}{}
	d.wg.Add(1)
	d.lisMu.Unlock()
	d.serveStream(conn, br)
	return nil
}
