package fabric

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"

	"repro/internal/daemon"
	"repro/internal/obs"
	"repro/pssp"
)

// The coordinator's control plane speaks the daemon's line protocol
// (daemon.Request / daemon.Response, one JSON object per line), so the
// existing client library drives it unchanged. A listener started with
// Serve accepts two kinds of connections, told apart by the first line:
// a `register` request is a `psspd -worker -join` flipping roles (the
// coordinator becomes the client of that connection), anything else is a
// control client (psspctl -remote) issuing submit/status/cancel/aggregate/
// stats requests.

// SubmitParams asks the coordinator to start a fabric job. Kind selects
// which param set applies.
type SubmitParams struct {
	// Kind is "campaign", "loadtest", or "fuzz".
	Kind   string               `json:"kind"`
	Attack *daemon.AttackParams `json:"attack,omitempty"`
	Load   *daemon.LoadParams   `json:"load,omitempty"`
	Fuzz   *daemon.FuzzParams   `json:"fuzz,omitempty"`
	// CorpusDir names a shared persistent corpus for fuzz jobs.
	CorpusDir string `json:"corpus_dir,omitempty"`
	// UntilStall > 0 runs a fuzz job in continuous mode: rounds until the
	// frontier hash is unchanged for this many consecutive rounds.
	UntilStall int `json:"until_stall,omitempty"`
}

// SubmitResult returns the submitted job's id.
type SubmitResult struct {
	ID uint64 `json:"id"`
}

// JobStatus is one job's row in status output.
type JobStatus struct {
	ID   uint64 `json:"id"`
	Kind string `json:"kind"`
	// State is "running", "done", "failed", or "canceled".
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// StatusParams selects jobs; ID 0 lists all.
type StatusParams struct {
	ID uint64 `json:"id,omitempty"`
}

// StatusResult lists job rows, ordered by id.
type StatusResult struct {
	Jobs []JobStatus `json:"jobs"`
}

// AggregateParams name the finished job whose merged report to fetch.
type AggregateParams struct {
	ID uint64 `json:"id"`
}

// job is one submitted fabric job.
type job struct {
	id     uint64
	kind   string
	cancel context.CancelFunc

	mu     sync.Mutex
	state  string
	result json.RawMessage
	errMsg string
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{ID: j.id, Kind: j.kind, State: j.state, Error: j.errMsg}
}

// jobTable is the control plane's job registry.
type jobTable struct {
	mu     sync.Mutex
	nextID uint64
	jobs   map[uint64]*job
}

// Serve accepts worker registrations and control clients on lis until ctx
// ends or the listener is closed. Jobs submitted by control clients run
// under ctx.
func (c *Coordinator) Serve(ctx context.Context, lis net.Listener) error {
	go func() {
		<-ctx.Done()
		lis.Close()
	}()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		go c.handleConn(ctx, conn)
	}
}

// handleConn reads a connection's first line to tell a registering worker
// from a control client.
func (c *Coordinator) handleConn(ctx context.Context, conn net.Conn) {
	br := bufio.NewReaderSize(conn, 64<<10)
	line, err := br.ReadBytes('\n')
	if err != nil {
		conn.Close()
		return
	}
	var req daemon.Request
	if err := json.Unmarshal(line, &req); err != nil {
		conn.Close()
		return
	}
	if req.Method == "register" {
		var p daemon.RegisterParams
		if len(req.Params) > 0 {
			json.Unmarshal(req.Params, &p)
		}
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("worker-%d", p.Pid)
		}
		ack, _ := json.Marshal(daemon.RegisterResult{OK: true, Name: name})
		if err := json.NewEncoder(conn).Encode(daemon.Response{ID: req.ID, Result: ack}); err != nil {
			conn.Close()
			return
		}
		// The handshake is half-duplex: the worker sends nothing after its
		// register line until we issue requests, so br holds no buffered
		// post-handshake bytes and the raw conn can carry the client side.
		c.AttachConn(conn, name)
		return
	}
	c.serveControl(ctx, conn, br, req)
}

// serveControl answers control requests on one connection, starting with
// the already-read first request. Requests are answered in order; submit
// returns immediately (the job runs in the background) so a single control
// connection can multiplex submissions and polls.
func (c *Coordinator) serveControl(ctx context.Context, conn net.Conn, br *bufio.Reader, first daemon.Request) {
	defer conn.Close()
	var wmu sync.Mutex
	enc := json.NewEncoder(conn)
	reply := func(resp daemon.Response) bool {
		wmu.Lock()
		defer wmu.Unlock()
		return enc.Encode(resp) == nil
	}
	if !c.controlRequest(ctx, first, reply) {
		return
	}
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 64<<10), 8<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var req daemon.Request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			continue
		}
		if !c.controlRequest(ctx, req, reply) {
			return
		}
	}
}

// controlRequest dispatches one control request; it reports whether the
// connection is still usable.
func (c *Coordinator) controlRequest(ctx context.Context, req daemon.Request, reply func(daemon.Response) bool) bool {
	fail := func(code, format string, args ...any) bool {
		return reply(daemon.Response{ID: req.ID, Error: &daemon.Error{Code: code, Message: fmt.Sprintf(format, args...)}})
	}
	result := func(v any) bool {
		raw, err := json.Marshal(v)
		if err != nil {
			return fail(daemon.CodeInternal, "encoding result: %v", err)
		}
		return reply(daemon.Response{ID: req.ID, Result: raw})
	}
	switch req.Method {
	case "ping":
		return result(map[string]bool{"ok": true})
	case "stats":
		st := c.Stats()
		st.Jobs = c.jobStatuses(0)
		return result(st)
	case "metrics":
		snap := c.cfg.Metrics.Snapshot()
		if snap == nil {
			snap = []obs.Series{}
		}
		return result(snap)
	case "submit":
		var p SubmitParams
		if err := json.Unmarshal(req.Params, &p); err != nil {
			return fail(daemon.CodeBadRequest, "bad submit params: %v", err)
		}
		id, err := c.submit(ctx, p)
		if err != nil {
			return fail(daemon.CodeBadRequest, "%v", err)
		}
		return result(SubmitResult{ID: id})
	case "status":
		var p StatusParams
		if len(req.Params) > 0 {
			if err := json.Unmarshal(req.Params, &p); err != nil {
				return fail(daemon.CodeBadRequest, "bad status params: %v", err)
			}
		}
		return result(StatusResult{Jobs: c.jobStatuses(p.ID)})
	case "cancel":
		var p daemon.CancelParams
		if err := json.Unmarshal(req.Params, &p); err != nil {
			return fail(daemon.CodeBadRequest, "bad cancel params: %v", err)
		}
		j := c.jobByID(p.ID)
		if j == nil {
			return fail(daemon.CodeBadRequest, "no job %d", p.ID)
		}
		j.mu.Lock()
		running := j.state == "running"
		if running {
			j.state = "canceled"
		}
		j.mu.Unlock()
		if running {
			j.cancel()
		}
		return result(daemon.CancelResult{Canceled: running})
	case "aggregate":
		var p AggregateParams
		if err := json.Unmarshal(req.Params, &p); err != nil {
			return fail(daemon.CodeBadRequest, "bad aggregate params: %v", err)
		}
		j := c.jobByID(p.ID)
		if j == nil {
			return fail(daemon.CodeBadRequest, "no job %d", p.ID)
		}
		j.mu.Lock()
		defer j.mu.Unlock()
		switch {
		case j.state == "running":
			return fail(daemon.CodeBusy, "job %d still running", p.ID)
		case j.result == nil:
			return fail(daemon.CodeInternal, "job %d %s: %s", p.ID, j.state, j.errMsg)
		}
		return reply(daemon.Response{ID: req.ID, Result: j.result})
	default:
		return fail(daemon.CodeBadRequest, "unknown method %q", req.Method)
	}
}

func (c *Coordinator) table() *jobTable {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	if c.jobs == nil {
		c.jobs = &jobTable{jobs: make(map[uint64]*job)}
	}
	return c.jobs
}

func (c *Coordinator) jobByID(id uint64) *job {
	t := c.table()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.jobs[id]
}

func (c *Coordinator) jobStatuses(id uint64) []JobStatus {
	t := c.table()
	t.mu.Lock()
	var out []JobStatus
	for _, j := range t.jobs {
		if id == 0 || j.id == id {
			out = append(out, j.status())
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// submit validates p, registers a job, and starts it in the background.
func (c *Coordinator) submit(ctx context.Context, p SubmitParams) (uint64, error) {
	var run func(ctx context.Context) (any, error)
	switch p.Kind {
	case "campaign":
		if p.Attack == nil {
			return 0, fmt.Errorf("submit campaign: missing attack params")
		}
		a := *p.Attack
		run = func(ctx context.Context) (any, error) { return c.Campaign(ctx, a) }
	case "loadtest":
		if p.Load == nil {
			return 0, fmt.Errorf("submit loadtest: missing load params")
		}
		l := *p.Load
		if len(l.Sweep) > 0 {
			run = func(ctx context.Context) (any, error) { return c.LoadSweep(ctx, l) }
		} else {
			run = func(ctx context.Context) (any, error) { return c.LoadTest(ctx, l) }
		}
	case "fuzz":
		if p.Fuzz == nil {
			return 0, fmt.Errorf("submit fuzz: missing fuzz params")
		}
		f := *p.Fuzz
		if p.UntilStall > 0 {
			run = func(ctx context.Context) (any, error) {
				rep, sum, err := c.FuzzUntilStall(ctx, f, p.CorpusDir, p.UntilStall)
				if err != nil {
					return nil, err
				}
				return struct {
					*pssp.FuzzReport
					UntilStall *StallSummary `json:"until_stall,omitempty"`
				}{rep, sum}, nil
			}
		} else {
			run = func(ctx context.Context) (any, error) { return c.Fuzz(ctx, f, p.CorpusDir) }
		}
	default:
		return 0, fmt.Errorf("submit: unknown kind %q (want campaign, loadtest or fuzz)", p.Kind)
	}

	jctx, cancel := context.WithCancel(ctx)
	t := c.table()
	t.mu.Lock()
	t.nextID++
	j := &job{id: t.nextID, kind: p.Kind, cancel: cancel, state: "running"}
	t.jobs[j.id] = j
	t.mu.Unlock()

	go func() {
		defer cancel()
		res, err := run(jctx)
		j.mu.Lock()
		defer j.mu.Unlock()
		if err != nil {
			if j.state == "running" {
				j.state = "failed"
			}
			j.errMsg = err.Error()
			return
		}
		raw, merr := json.Marshal(res)
		if merr != nil {
			j.state, j.errMsg = "failed", merr.Error()
			return
		}
		if j.state == "running" {
			j.state = "done"
		}
		j.result = raw
	}()
	return j.id, nil
}
