// Package fabric is the distributed evaluation layer: a coordinator that
// partitions a job's shard range into leases, dispatches them to psspd
// workers over the newline-delimited JSON-RPC protocol, and merges the
// returned per-shard partial aggregates in shard order — so a campaign,
// load sweep, or fuzzing report produced across any number of worker
// processes is byte-identical to the single-process run at the same seed.
//
// Workers attach two ways: the coordinator dials out to ordinary psspd
// listeners (Connect, psspctl's -workers list), or workers dial in and
// register (`psspd -worker -join addr` against a Serve listener). Either
// way the coordinator ends up holding the client side of a protocol
// connection and issues campaignshard/loadshard/fuzzshard requests against
// the worker's warm machine pool.
//
// Determinism is inherited, not re-implemented: a lease [lo,hi) names
// global shard indices, the worker runs them with the exact runner the
// single-process engines use (shard i ⇒ rng.NewStream(seed, i)), and the
// coordinator folds the wire partials with the engines' own merge code.
// Lease loss is therefore harmless to the result: a re-issued lease
// recomputes bit-identical partials on another worker.
package fabric

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/daemon/client"
	"repro/internal/obs"
)

// Config tunes a Coordinator. The zero value is usable.
type Config struct {
	// Tenant names the coordinator to the workers' admission control
	// (empty = "default").
	Tenant string
	// LeaseShards is the number of shards per lease (0 = auto: the shard
	// range split four ways per live worker, so a straggler re-lease costs
	// a quarter of a worker's share, not the whole job).
	LeaseShards int
	// LeaseTimeout evicts a worker whose lease has streamed no progress
	// events for this long — the heartbeat: shard jobs stream engine
	// progress, so silence means a hung or dead worker (default 60s).
	LeaseTimeout time.Duration
	// Retries bounds how many times one lease may be re-issued after
	// worker loss before the job fails (default 3).
	Retries int
	// Backoff is the base delay before re-issuing a lost lease, doubling
	// per retry (default 50ms).
	Backoff time.Duration
	// Logf, when non-nil, receives coordinator life-cycle lines (worker
	// joins/deaths, lease reassignments).
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives the coordinator's series: lease
	// dispatch/re-issue counters, lease-latency histogram, watchdog
	// resets, and per-worker shard throughput. Pure read-side — merged
	// reports are byte-identical with or without it.
	Metrics *obs.Registry
	// Recorder, when non-nil, captures per-job lease traces (dispatch,
	// completion, re-issue, watchdog fire).
	Recorder *obs.Recorder
}

func (c Config) leaseTimeout() time.Duration {
	if c.LeaseTimeout <= 0 {
		return 60 * time.Second
	}
	return c.LeaseTimeout
}

func (c Config) retries() int {
	if c.Retries <= 0 {
		return 3
	}
	return c.Retries
}

func (c Config) backoff() time.Duration {
	if c.Backoff <= 0 {
		return 50 * time.Millisecond
	}
	return c.Backoff
}

// Coordinator owns a set of worker connections and runs fabric jobs over
// them. Jobs (Campaign, LoadTest, LoadSweep, Fuzz) may run concurrently;
// each worker executes one lease at a time.
type Coordinator struct {
	cfg Config
	met *fabricMetrics

	mu      sync.Mutex
	workers []*worker
	wake    chan struct{} // buffered; signaled when a worker joins

	statsMu          sync.Mutex
	leasesIssued     uint64
	leasesReassigned uint64
	frontierEdges    int
	jobs             *jobTable
}

// worker is one attached psspd.
type worker struct {
	name string
	c    *client.Client

	mu         sync.Mutex
	dead       bool
	busy       bool
	leases     int
	shardsDone int
	busyTime   time.Duration
}

// New builds a Coordinator with no workers attached; Connect or Serve
// attach them.
func New(cfg Config) *Coordinator {
	c := &Coordinator{cfg: cfg, wake: make(chan struct{}, 1), met: newFabricMetrics(cfg.Metrics)}
	c.registerCollectors(cfg.Metrics)
	return c
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Connect dials an ordinary psspd listener at addr and attaches it as a
// worker (with Dial's transient-refusal retry, so workers racing the
// coordinator's startup are absorbed).
func (c *Coordinator) Connect(addr string) error {
	cl, err := client.Dial(addr)
	if err != nil {
		return fmt.Errorf("fabric: worker %s: %w", addr, err)
	}
	c.add(&worker{name: addr, c: cl})
	return nil
}

// AttachConn attaches an established protocol connection as a named worker
// — the Serve register path, and the test seam for in-process workers.
func (c *Coordinator) AttachConn(conn net.Conn, name string) {
	c.add(&worker{name: name, c: client.NewConn(conn)})
}

func (c *Coordinator) add(w *worker) {
	c.mu.Lock()
	c.workers = append(c.workers, w)
	c.mu.Unlock()
	c.logf("fabric: worker %s joined", w.name)
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// live returns the number of workers that have not been declared dead.
func (c *Coordinator) live() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, w := range c.workers {
		w.mu.Lock()
		if !w.dead {
			n++
		}
		w.mu.Unlock()
	}
	return n
}

// claimIdle claims an idle live worker (marking it busy), or nil.
func (c *Coordinator) claimIdle() *worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		w.mu.Lock()
		if !w.dead && !w.busy {
			w.busy = true
			w.mu.Unlock()
			return w
		}
		w.mu.Unlock()
	}
	return nil
}

// WaitWorkers blocks until at least n live workers are attached (or ctx
// ends). psspctl's one-shot mode uses it to let `psspd -worker -join`
// processes race the coordinator's listen.
func (c *Coordinator) WaitWorkers(ctx context.Context, n int) error {
	for {
		if c.live() >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fabric: waiting for %d worker(s): %w", n, ctx.Err())
		case <-c.wake:
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// KillWorker closes the named worker's connection, as if its process died
// mid-lease — the fault-injection seam the reassignment tests and the CI
// smoke use. Returns false if no live worker has that name.
func (c *Coordinator) KillWorker(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		w.mu.Lock()
		dead := w.dead
		w.mu.Unlock()
		if w.name == name && !dead {
			w.c.Close()
			return true
		}
	}
	return false
}

// Close tears down every worker connection.
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		w.c.Close()
	}
}

// markDead declares a worker lost: its connection is closed and it will
// never be claimed again (a rejoining `psspd -worker` registers as a fresh
// worker entry).
func (c *Coordinator) markDead(w *worker) {
	w.mu.Lock()
	already := w.dead
	w.dead = true
	w.busy = false
	w.mu.Unlock()
	if !already {
		w.c.Close()
		c.met.workersLost.Inc()
		c.logf("fabric: worker %s lost", w.name)
	}
}

// release returns a worker to the idle pool after a finished lease.
func (c *Coordinator) release(w *worker, shards int, elapsed time.Duration) {
	w.mu.Lock()
	w.busy = false
	w.leases++
	w.shardsDone += shards
	w.busyTime += elapsed
	w.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// WorkerStats is one worker's row in Stats.
type WorkerStats struct {
	Name  string `json:"name"`
	Alive bool   `json:"alive"`
	Busy  bool   `json:"busy"`
	// Leases and ShardsDone count completed leases and the shards they
	// covered.
	Leases     int `json:"leases"`
	ShardsDone int `json:"shards_done"`
	// ShardsPerSec is shard throughput over the worker's busy wall-clock
	// time (observability only — wall time never enters reports).
	ShardsPerSec float64 `json:"shards_per_sec,omitempty"`
}

// Stats is the coordinator's observability snapshot.
type Stats struct {
	Workers []WorkerStats `json:"workers"`
	// LeasesIssued counts every lease dispatch; LeasesReassigned the
	// subset re-issued after worker loss or backpressure.
	LeasesIssued     uint64 `json:"leases_issued"`
	LeasesReassigned uint64 `json:"leases_reassigned"`
	// FrontierEdges is the merged coverage-frontier size of the most
	// recent fuzz job (0 before any).
	FrontierEdges int `json:"frontier_edges,omitempty"`
	// Jobs summarizes the control server's job table (serve mode only).
	Jobs []JobStatus `json:"jobs,omitempty"`
}

// Stats snapshots the coordinator.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	ws := make([]WorkerStats, len(c.workers))
	for i, w := range c.workers {
		w.mu.Lock()
		ws[i] = WorkerStats{
			Name: w.name, Alive: !w.dead, Busy: w.busy,
			Leases: w.leases, ShardsDone: w.shardsDone,
		}
		if secs := w.busyTime.Seconds(); secs > 0 {
			ws[i].ShardsPerSec = float64(w.shardsDone) / secs
		}
		w.mu.Unlock()
	}
	c.mu.Unlock()
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return Stats{
		Workers:          ws,
		LeasesIssued:     c.leasesIssued,
		LeasesReassigned: c.leasesReassigned,
		FrontierEdges:    c.frontierEdges,
	}
}

func (c *Coordinator) noteIssued() {
	c.statsMu.Lock()
	c.leasesIssued++
	c.statsMu.Unlock()
	c.met.leasesIssued.Inc()
}

func (c *Coordinator) noteReassigned() {
	c.statsMu.Lock()
	c.leasesReassigned++
	c.statsMu.Unlock()
	c.met.leasesReassigned.Inc()
}

func (c *Coordinator) noteFrontier(edges int) {
	c.statsMu.Lock()
	c.frontierEdges = edges
	c.statsMu.Unlock()
}
