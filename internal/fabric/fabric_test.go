package fabric

import (
	"context"
	"encoding/json"
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/pssp"
)

// startWorker boots a psspd on a unix socket and returns its address.
func startWorker(t *testing.T, seed uint64) string {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "w.sock")
	lis, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	d := daemon.New(daemon.Config{Seed: seed, MaxJobs: 4, MaxQueue: 16, PoolSize: 8})
	go d.Serve(lis)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	})
	return "unix:" + sock
}

// coordinator builds a Coordinator attached to n fresh workers.
func coordinator(t *testing.T, n int, cfg Config) *Coordinator {
	t.Helper()
	c := New(cfg)
	t.Cleanup(c.Close)
	for i := 0; i < n; i++ {
		if err := c.Connect(startWorker(t, 99)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func asJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// localCampaign runs the reference single-process campaign.
func localCampaign(t *testing.T, p daemon.AttackParams) daemon.AttackReport {
	t.Helper()
	s, err := pssp.ParseScheme(p.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	m := pssp.NewMachine(pssp.WithSeed(p.Seed), pssp.WithScheme(s))
	img, err := m.Pipeline().CompileApp(p.Target).Image()
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Campaign(context.Background(), img, pssp.CampaignConfig{
		Strategy:     p.Strategy,
		Replications: p.Repeats,
		Seed:         p.Seed,
		Attack:       pssp.AttackConfig{MaxTrials: p.Budget},
	})
	if err != nil {
		t.Fatal(err)
	}
	return daemon.BuildAttackReport(p.Target, s, p.Seed, p.Budget, p.Repeats, p.Workers, res)
}

func TestCampaignMatchesLocalAcrossWorkers(t *testing.T) {
	p := daemon.AttackParams{
		Target: "nginx-vuln", Scheme: "ssp", Budget: 256, Repeats: 8, Seed: 7,
	}
	want := asJSON(t, localCampaign(t, p))
	for _, workers := range []int{1, 2} {
		c := coordinator(t, workers, Config{LeaseShards: 2})
		got, err := c.Campaign(context.Background(), p)
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		if g := asJSON(t, got); g != want {
			t.Errorf("%d-worker fabric report differs from local run:\n got %s\nwant %s", workers, g, want)
		}
		st := c.Stats()
		if st.LeasesIssued == 0 {
			t.Errorf("%d workers: no leases recorded in stats", workers)
		}
	}
}

func TestCampaignSurvivesWorkerKilledMidLease(t *testing.T) {
	p := daemon.AttackParams{
		Target: "nginx-vuln", Scheme: "ssp", Budget: 2048, Repeats: 16, Seed: 7,
	}
	want := asJSON(t, localCampaign(t, p))
	c := coordinator(t, 2, Config{LeaseShards: 1})
	victim := c.workers[0].name
	// Kill one worker while the job is demonstrably in flight (first leases
	// issued, many still pending); its work must be re-issued to the
	// survivor and the merged report stay identical.
	go func() {
		for c.Stats().LeasesIssued < 2 {
			time.Sleep(time.Millisecond)
		}
		c.KillWorker(victim)
	}()
	got, err := c.Campaign(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if g := asJSON(t, got); g != want {
		t.Errorf("report after worker kill differs from local run:\n got %s\nwant %s", g, want)
	}
	st := c.Stats()
	alive := 0
	for _, w := range st.Workers {
		if w.Alive {
			alive++
		}
	}
	if alive != 1 {
		t.Errorf("want exactly 1 surviving worker, got %d (stats %+v)", alive, st.Workers)
	}
}

func TestLoadTestAndSweepMatchLocal(t *testing.T) {
	p := daemon.LoadParams{
		App: "nginx", Scheme: "p-ssp", Requests: 96, Shards: 6, Seed: 7,
	}
	// Reference run: the exact path psspload takes locally, via the shared
	// params mapping.
	m := pssp.NewMachine(pssp.WithSeed(7), pssp.WithScheme(pssp.SchemePSSP))
	img, err := m.Pipeline().CompileApp("nginx").Image()
	if err != nil {
		t.Fatal(err)
	}
	np := daemon.NormalizeLoadParams(p)
	cfg, err := daemon.LoadWorkload(np, np.App, np.Seed)
	if err != nil {
		t.Fatal(err)
	}
	wantRep, err := m.LoadTest(context.Background(), img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantSweep, err := m.LoadSweep(context.Background(), img, cfg, []float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}

	c := coordinator(t, 2, Config{})
	got, err := c.LoadTest(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := asJSON(t, got), asJSON(t, wantRep); g != w {
		t.Errorf("fabric load report differs from local run:\n got %s\nwant %s", g, w)
	}
	ps := p
	ps.Sweep = []float64{0.5, 1}
	gotSweep, err := c.LoadSweep(context.Background(), ps)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := asJSON(t, gotSweep), asJSON(t, wantSweep); g != w {
		t.Errorf("fabric sweep report differs from local run:\n got %s\nwant %s", g, w)
	}
}

func TestFuzzMatchesLocalAndSyncsCorpus(t *testing.T) {
	p := daemon.FuzzParams{
		App: "nginx-vuln", Scheme: "ssp", Execs: 192, Shards: 6, Seed: 7,
	}
	m := pssp.NewMachine(pssp.WithSeed(7), pssp.WithScheme(pssp.SchemeSSP))
	img, err := m.Pipeline().CompileApp("nginx-vuln").Image()
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Fuzz(context.Background(), img, pssp.FuzzConfig{
		Execs: 192, Shards: 6, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}

	c := coordinator(t, 2, Config{})
	corpusDir := filepath.Join(t.TempDir(), "corpus")
	got, err := c.Fuzz(context.Background(), p, corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := asJSON(t, got), asJSON(t, want); g != w {
		t.Errorf("fabric fuzz report differs from local run:\n got %s\nwant %s", g, w)
	}
	if got.CorpusSize == 0 {
		t.Fatal("fuzz run admitted no corpus entries; corpus sync untestable")
	}
	if st := c.Stats(); st.FrontierEdges != got.Edges {
		t.Errorf("stats frontier %d, report edges %d", st.FrontierEdges, got.Edges)
	}

	// The shared corpus must now hold the run's discoveries: a continuous
	// round resuming from it stalls immediately once coverage is saturated.
	rep, sum, err := c.FuzzUntilStall(context.Background(), p, corpusDir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rounds < 2 {
		t.Errorf("until-stall ran %d rounds, want >= 2", sum.Rounds)
	}
	if rep.Edges < got.Edges {
		t.Errorf("continuous frontier %d edges shrank below one-shot %d", rep.Edges, got.Edges)
	}
}

func TestFatalWorkerErrorFailsJob(t *testing.T) {
	c := coordinator(t, 1, Config{})
	// Unknown app: plan resolution happens worker-side at image compile and
	// reports internal — fatal, not a reassignment loop.
	_, err := c.Fuzz(context.Background(), daemon.FuzzParams{App: "no-such-app", Seed: 3}, "")
	if err == nil {
		t.Fatal("want fatal job error for unknown app")
	}
	if st := c.Stats(); st.LeasesReassigned != 0 {
		t.Errorf("fatal error was retried: %d reassignments", st.LeasesReassigned)
	}
}

func TestWorkerJoinViaServeRegister(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "coord.sock")
	lis, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{})
	t.Cleanup(c.Close)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Serve(ctx, lis)

	d := daemon.New(daemon.Config{Seed: 99, MaxJobs: 4, MaxQueue: 16, PoolSize: 8})
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	go d.Worker(wctx, "unix:"+sock, "joiner")
	t.Cleanup(func() {
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer scancel()
		d.Shutdown(sctx)
	})

	if err := c.WaitWorkers(ctx, 1); err != nil {
		t.Fatal(err)
	}
	p := daemon.AttackParams{Target: "nginx-vuln", Scheme: "ssp", Budget: 128, Repeats: 2, Seed: 7}
	want := asJSON(t, localCampaign(t, p))
	got, err := c.Campaign(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if g := asJSON(t, got); g != want {
		t.Errorf("dial-in worker report differs from local run:\n got %s\nwant %s", g, want)
	}
}
