package fabric

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/daemon"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/pssp"
)

// Fabric jobs take the daemon wire params — the exact objects leases ship —
// and require an explicit non-zero Seed: a lease must be re-executable
// bit-identically on any worker, which a derived per-job seed is not.
//
// The coordinator resolves each job's engine plan itself (via the facade's
// plan methods, the same resolution path workers run), leases shard ranges
// of that plan, and folds the returned partials with the engines' own merge
// code — so the reports here are byte-identical to psspattack/psspload/
// psspfuzz at the same seed.

var errSeed = errors.New("fabric: jobs require an explicit non-zero seed")

// machineFor builds the coordinator's local planning machine for a job.
func machineFor(scheme string, dflt string, seed uint64) (*pssp.Machine, pssp.Scheme, error) {
	if scheme == "" {
		scheme = dflt
	}
	s, err := pssp.ParseScheme(scheme)
	if err != nil {
		return nil, 0, err
	}
	return pssp.NewMachine(pssp.WithSeed(seed), pssp.WithScheme(s)), s, nil
}

// Campaign fans an attack campaign's replications out across the workers
// and returns the merged report — the exact shape psspattack -json emits.
func (c *Coordinator) Campaign(ctx context.Context, p daemon.AttackParams) (*daemon.AttackReport, error) {
	p = daemon.NormalizeAttackParams(p)
	if p.Seed == 0 {
		return nil, errSeed
	}
	m, s, err := machineFor(p.Scheme, "ssp", p.Seed)
	if err != nil {
		return nil, err
	}
	plan, err := m.CampaignPlan(pssp.CampaignConfig{
		Strategy:     p.Strategy,
		Replications: p.Repeats,
		Workers:      p.Workers,
		Seed:         p.Seed,
		Attack:       pssp.AttackConfig{MaxTrials: p.Budget},
	})
	if err != nil {
		return nil, err
	}

	var mu sync.Mutex
	var parts []*pssp.CampaignPartial
	ctx = obs.ContextWithTrace(ctx, c.beginTrace("campaign"))
	err = c.runLeases(ctx, plan.Replications, func(ctx context.Context, w *worker, lo, hi int) error {
		var res daemon.CampaignShardResult
		sp := daemon.CampaignShardParams{AttackParams: p, Lo: lo, Hi: hi}
		if err := c.callLease(ctx, w, "campaignshard", sp, &res); err != nil {
			return err
		}
		mu.Lock()
		parts = append(parts, res.Partial)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	agg := pssp.MergeCampaignPartials(plan, parts)
	if agg.Completed == 0 && agg.OracleErr != nil {
		return nil, agg.OracleErr
	}
	rep := daemon.BuildAttackReport(p.Target, s, p.Seed, p.Budget, p.Repeats, p.Workers, agg)
	return &rep, nil
}

// loadPlan resolves the coordinator-side workload plan for p.
func loadPlan(p daemon.LoadParams) (pssp.LoadPlan, error) {
	m, _, err := machineFor(p.Scheme, "p-ssp", p.Seed)
	if err != nil {
		return pssp.LoadPlan{}, err
	}
	img, err := m.Pipeline().CompileApp(p.App).Image()
	if err != nil {
		return pssp.LoadPlan{}, err
	}
	cfg, err := daemon.LoadWorkload(p, p.App, p.Seed)
	if err != nil {
		return pssp.LoadPlan{}, err
	}
	return m.LoadPlan(img, cfg)
}

// runLoadPoint leases one (possibly sweep-scaled) workload's shards and
// merges them. plan is the resolved-unnormalized scenario of the point;
// the shipped params carry the point's label and scaled arrival knobs.
func (c *Coordinator) runLoadPoint(ctx context.Context, p daemon.LoadParams, plan pssp.LoadPlan) (*pssp.LoadReport, error) {
	norm, err := plan.Normalize()
	if err != nil {
		return nil, err
	}
	sp := daemon.LoadShardParams{LoadParams: p, Label: plan.Label}
	sp.Sweep = nil
	sp.Rate = plan.Arrivals.RatePerMcycle
	sp.Clients = plan.Arrivals.Clients

	var mu sync.Mutex
	var parts []*pssp.LoadPartial
	ctx = obs.ContextWithTrace(ctx, c.beginTrace("loadtest"))
	err = c.runLeases(ctx, norm.Shards, func(ctx context.Context, w *worker, lo, hi int) error {
		var res daemon.LoadShardResult
		lp := sp
		lp.Lo, lp.Hi = lo, hi
		if err := c.callLease(ctx, w, "loadshard", lp, &res); err != nil {
			return err
		}
		mu.Lock()
		parts = append(parts, res.Partials...)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pssp.MergeLoadPartials(plan, parts)
}

// LoadTest fans one workload's shards out across the workers and returns
// the merged report — the exact shape psspload -json emits.
func (c *Coordinator) LoadTest(ctx context.Context, p daemon.LoadParams) (*pssp.LoadReport, error) {
	p = daemon.NormalizeLoadParams(p)
	if p.Seed == 0 {
		return nil, errSeed
	}
	if len(p.Sweep) > 0 {
		return nil, errors.New("fabric: LoadTest takes a single workload; use LoadSweep")
	}
	plan, err := loadPlan(p)
	if err != nil {
		return nil, err
	}
	return c.runLoadPoint(ctx, p, plan)
}

// LoadSweep steps the scenario through p.Sweep's offered-load multipliers
// (each point leased across the workers) and locates the saturation knee —
// the exact report psspload -sweep -json emits.
func (c *Coordinator) LoadSweep(ctx context.Context, p daemon.LoadParams) (*pssp.LoadSweepReport, error) {
	p = daemon.NormalizeLoadParams(p)
	if p.Seed == 0 {
		return nil, errSeed
	}
	if len(p.Sweep) == 0 {
		return nil, errors.New("fabric: sweep needs at least one multiplier")
	}
	base, err := loadPlan(p)
	if err != nil {
		return nil, err
	}
	sw := &pssp.LoadSweepReport{Label: base.Label}
	for _, m := range p.Sweep {
		if !(m > 0) {
			return sw, fmt.Errorf("fabric: non-positive sweep multiplier %g", m)
		}
		rep, err := c.runLoadPoint(ctx, p, loadgen.Scale(base, m))
		if err != nil {
			return sw, err
		}
		sw.Points = append(sw.Points, pssp.LoadSweepPoint{Multiplier: m, Report: rep})
		if base.Arrivals.Kind != loadgen.ClosedLoop &&
			rep.Efficiency() >= loadgen.KneeEfficiency && m > sw.KneeMultiplier {
			sw.KneeMultiplier = m
		}
	}
	return sw, nil
}

// fuzzPlan resolves the coordinator-side fuzzing plan: the normalized
// engine scenario with the final shard count and the resolved seed corpus
// the leases must ship.
func fuzzPlan(p daemon.FuzzParams, seeds [][]byte, baseVirgin []byte) (pssp.FuzzPlan, error) {
	m, _, err := machineFor(p.Scheme, "ssp", p.Seed)
	if err != nil {
		return pssp.FuzzPlan{}, err
	}
	img, err := m.Pipeline().CompileApp(p.App).Image()
	if err != nil {
		return pssp.FuzzPlan{}, err
	}
	return m.FuzzPlan(img, pssp.FuzzConfig{
		Seeds:      seeds,
		Dict:       p.Dict,
		Execs:      p.Execs,
		Shards:     p.Shards,
		Workers:    p.Workers,
		Seed:       p.Seed,
		MaxInput:   p.MaxInput,
		BaseVirgin: baseVirgin,
	})
}

// Fuzz fans a fuzzing campaign's shards out across the workers and returns
// the merged report — the exact shape psspfuzz -json emits. corpusDir,
// when non-empty, mirrors psspfuzz -corpus: saved inputs seed the run, the
// saved frontier marks their coverage charted, and every lease folds its
// discoveries back in through the flock'd corpus.
func (c *Coordinator) Fuzz(ctx context.Context, p daemon.FuzzParams, corpusDir string) (*pssp.FuzzReport, error) {
	p = daemon.NormalizeFuzzParams(p)
	if p.Seed == 0 {
		return nil, errSeed
	}
	seeds := p.Seeds
	var baseVirgin []byte
	if corpusDir != "" {
		corp, err := store.OpenCorpus(corpusDir)
		if err != nil {
			return nil, err
		}
		saved, frontier, err := corp.Load()
		if err != nil {
			return nil, err
		}
		seeds = append(append([][]byte{}, seeds...), saved...)
		baseVirgin = frontier
	}
	return c.fuzzRound(ctx, p, seeds, baseVirgin, corpusDir)
}

// fuzzRound is one lease-and-merge pass of Fuzz/FuzzUntilStall.
func (c *Coordinator) fuzzRound(ctx context.Context, p daemon.FuzzParams, seeds [][]byte, baseVirgin []byte, corpusDir string) (*pssp.FuzzReport, error) {
	plan, err := fuzzPlan(p, seeds, baseVirgin)
	if err != nil {
		return nil, err
	}
	sp := daemon.FuzzShardParams{
		FuzzParams: p,
		Label:      plan.Label,
		BaseVirgin: baseVirgin,
		CorpusDir:  corpusDir,
	}
	// Ship the resolved seed corpus, not the raw one: workers must mutate
	// from exactly the seeds the plan resolved (built-in request default,
	// corpus-loaded extras), or the scenario would drift.
	sp.Seeds = plan.Seeds

	var mu sync.Mutex
	var parts []*pssp.FuzzPartial
	ctx = obs.ContextWithTrace(ctx, c.beginTrace("fuzz"))
	err = c.runLeases(ctx, plan.Shards, func(ctx context.Context, w *worker, lo, hi int) error {
		var res daemon.FuzzShardResult
		fp := sp
		fp.Lo, fp.Hi = lo, hi
		if err := c.callLease(ctx, w, "fuzzshard", fp, &res); err != nil {
			return err
		}
		mu.Lock()
		parts = append(parts, res.Partials...)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep, err := pssp.MergeFuzzPartials(plan, parts)
	if err != nil {
		return nil, err
	}
	c.noteFrontier(rep.Edges)
	return rep, nil
}

// StallSummary reports a continuous fuzzing run's convergence; shared with
// psspfuzz -until-stall through the facade so both modes emit the same
// shape.
type StallSummary = pssp.FuzzStallSummary

// FuzzUntilStall runs distributed fuzzing rounds until the merged coverage
// frontier's hash is unchanged for stall consecutive rounds — the fabric's
// continuous mode. Round r>0 re-derives its mutation seed as
// rng.Mix(seed, r) and seeds itself with every input discovered so far
// (through the shared corpus when corpusDir is set, in memory otherwise),
// with the accumulated frontier rebroadcast as the round's base virgin
// map. The frontier is monotone and bounded, so the loop terminates. The
// returned report is the final round's (its frontier and corpus are
// cumulative by construction).
func (c *Coordinator) FuzzUntilStall(ctx context.Context, p daemon.FuzzParams, corpusDir string, stall int) (*pssp.FuzzReport, *StallSummary, error) {
	p = daemon.NormalizeFuzzParams(p)
	if p.Seed == 0 {
		return nil, nil, errSeed
	}
	if stall <= 0 {
		stall = 1
	}
	baseSeeds := p.Seeds
	seeds := baseSeeds
	var baseVirgin []byte
	sum := &StallSummary{StallRounds: stall}
	var rep *pssp.FuzzReport
	var lastHash uint64
	same, started := 0, false
	for {
		pp := p
		if sum.Rounds > 0 {
			pp.Seed = rng.Mix(p.Seed, uint64(sum.Rounds))
		}
		if corpusDir != "" {
			// Reload between rounds: other coordinators or local psspfuzz
			// runs sharing the corpus contribute seeds and frontier too.
			corp, err := store.OpenCorpus(corpusDir)
			if err != nil {
				return rep, sum, err
			}
			saved, frontier, err := corp.Load()
			if err != nil {
				return rep, sum, err
			}
			seeds = append(append([][]byte{}, baseSeeds...), saved...)
			baseVirgin = frontier
		}
		r, err := c.fuzzRound(ctx, pp, seeds, baseVirgin, corpusDir)
		if err != nil {
			return rep, sum, err
		}
		rep = r
		sum.Rounds++
		sum.TotalExecs += r.Execs
		if corpusDir == "" {
			seeds = append(append([][]byte{}, baseSeeds...), r.CorpusInputs()...)
			baseVirgin = r.Frontier()
		}
		if started && r.CoverageHash == lastHash {
			same++
		} else {
			same = 0
		}
		started = true
		lastHash = r.CoverageHash
		c.logf("fabric: fuzz round %d: %d edges, frontier %016x (%d/%d stalled)",
			sum.Rounds, r.Edges, r.CoverageHash, same, stall)
		if same >= stall {
			return rep, sum, nil
		}
	}
}
