package fabric

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/daemon"
	"repro/internal/daemon/client"
	"repro/internal/obs"
)

// lease is one half-open shard range awaiting (re-)dispatch.
type lease struct {
	lo, hi  int
	retries int
}

// leaseCall executes one lease on one worker: issue the shard RPC and fold
// the returned partial into the job's collection. Implementations must be
// safe for concurrent calls (one per busy worker).
type leaseCall func(ctx context.Context, w *worker, lo, hi int) error

// doneMsg reports one finished dispatch back to the engine loop.
type doneMsg struct {
	l       lease
	w       *worker
	err     error
	elapsed time.Duration
}

// runLeases drives shards [0, shards) to completion across the attached
// workers: partition into leases, dispatch one lease per idle worker,
// collect, and re-issue lost leases (bounded by cfg.Retries, with
// exponential backoff) until every shard has reported. It returns nil only
// when all shards completed exactly; the merge's duplicate-insensitivity
// covers re-issued leases whose first attempt had silently succeeded.
//
// Error classification is the fault model's heart:
//   - A worker-reported job error (bad-request, internal, quota) is fatal:
//     every worker would fail the same way, so the job fails now.
//   - Backpressure (busy) requeues the lease without blaming the worker.
//   - A transport error, shutdown, or lease timeout is infrastructure
//     loss: the worker is declared dead and the lease re-issued elsewhere.
//   - Coordinator cancellation propagates as ctx.Err().
func (c *Coordinator) runLeases(ctx context.Context, shards int, call leaseCall) error {
	if shards <= 0 {
		return fmt.Errorf("fabric: job has no shards")
	}
	lctx, cancel := context.WithCancel(ctx)
	defer cancel()
	tr := obs.TraceFrom(ctx)

	pending := c.partition(shards)
	done := make(chan doneMsg)
	inflight := 0

	// collect ingests one finished dispatch; it returns a fatal error to
	// surface, or nil to keep going.
	var fatal error
	collect := func(msg doneMsg) {
		inflight--
		if msg.err == nil {
			c.release(msg.w, msg.l.hi-msg.l.lo, msg.elapsed)
			c.met.leaseLatency.Record(uint64(msg.elapsed))
			tr.Event("lease done", 0, leaseRange(msg.l.lo, msg.l.hi))
			return
		}
		switch classify(msg.err, lctx) {
		case outcomeCanceled:
			if fatal == nil {
				fatal = ctx.Err()
				if fatal == nil {
					fatal = msg.err
				}
			}
		case outcomeFatal:
			if fatal == nil {
				fatal = fmt.Errorf("fabric: lease [%d,%d) on %s: %w", msg.l.lo, msg.l.hi, msg.w.name, msg.err)
			}
			cancel()
		case outcomeBusy:
			// The worker is healthy but its admission queue was full:
			// requeue without blaming it.
			c.release(msg.w, 0, 0)
			c.noteReassigned()
			pending = append(pending, msg.l)
		case outcomeInfra:
			c.markDead(msg.w)
			l := msg.l
			l.retries++
			if l.retries > c.cfg.retries() {
				if fatal == nil {
					fatal = fmt.Errorf("fabric: lease [%d,%d) failed after %d reassignments: %w",
						l.lo, l.hi, l.retries-1, msg.err)
				}
				cancel()
				return
			}
			c.noteReassigned()
			tr.Event("lease re-issue", 0, leaseRange(l.lo, l.hi))
			c.logf("fabric: re-issuing lease [%d,%d) (attempt %d) after %s: %v",
				l.lo, l.hi, l.retries+1, msg.w.name, msg.err)
			// Exponential backoff before the re-issue; bounded by Retries,
			// so the inline sleep cannot stall collection for long.
			select {
			case <-time.After(c.cfg.backoff() << (l.retries - 1)):
			case <-lctx.Done():
			}
			pending = append(pending, l)
		}
	}

	for len(pending) > 0 || inflight > 0 {
		if fatal != nil && inflight == 0 {
			break
		}
		// Dispatch as many pending leases as there are idle live workers.
		for fatal == nil && len(pending) > 0 {
			w := c.claimIdle()
			if w == nil {
				break
			}
			l := pending[0]
			pending = pending[1:]
			inflight++
			c.noteIssued()
			tr.Event("lease dispatch", 0, leaseRange(l.lo, l.hi))
			go func(l lease, w *worker) {
				start := time.Now()
				err := call(lctx, w, l.lo, l.hi)
				done <- doneMsg{l: l, w: w, err: err, elapsed: time.Since(start)}
			}(l, w)
		}
		if inflight == 0 {
			if fatal != nil {
				break
			}
			// No live worker to dispatch to: wait for a join (a rejoining
			// `psspd -worker` wakes us) or give up with the caller.
			select {
			case <-ctx.Done():
				return fmt.Errorf("fabric: %d shard(s) unassigned, no live workers: %w",
					remaining(pending), ctx.Err())
			case <-c.wake:
			}
			continue
		}
		select {
		case msg := <-done:
			collect(msg)
		case <-c.wake:
			// A worker joined mid-job; loop to dispatch onto it.
		}
	}
	return fatal
}

// remaining counts the shards still covered by pending leases.
func remaining(pending []lease) int {
	n := 0
	for _, l := range pending {
		n += l.hi - l.lo
	}
	return n
}

// partition splits [0, shards) into ascending leases of the configured (or
// auto) size.
func (c *Coordinator) partition(shards int) []lease {
	size := c.cfg.LeaseShards
	if size <= 0 {
		// Auto: four leases per live worker, so losing one costs a quarter
		// of a worker's share and stragglers rebalance.
		workers := c.live()
		if workers < 1 {
			workers = 1
		}
		size = shards / (4 * workers)
		if size < 1 {
			size = 1
		}
	}
	var out []lease
	for lo := 0; lo < shards; lo += size {
		hi := lo + size
		if hi > shards {
			hi = shards
		}
		out = append(out, lease{lo: lo, hi: hi})
	}
	return out
}

// leaseOutcome classifies a failed dispatch.
type leaseOutcome int

const (
	outcomeFatal leaseOutcome = iota
	outcomeBusy
	outcomeInfra
	outcomeCanceled
)

// classify maps a lease error onto the fault model. lctx is the job's
// lease context: cancellation-class errors only count as cancellation when
// we canceled, otherwise a worker shutting down mid-lease reports
// canceled/shutdown codes and must be treated as infrastructure loss.
func classify(err error, lctx context.Context) leaseOutcome {
	if lctx.Err() != nil {
		return outcomeCanceled
	}
	var rpc *client.RPCError
	if errors.As(err, &rpc) {
		switch rpc.Code {
		case daemon.CodeBadRequest, daemon.CodeInternal, daemon.CodeQuota:
			return outcomeFatal
		case daemon.CodeBusy:
			return outcomeBusy
		}
		// canceled/shutdown without our cancellation: the worker is going
		// away — infrastructure loss.
		return outcomeInfra
	}
	return outcomeInfra
}

// callLease issues one shard RPC with the lease watchdog armed: if the
// worker streams no progress events (the heartbeat every shard job emits)
// for LeaseTimeout, its connection is severed, which surfaces here as a
// transport error and routes through the reassignment path.
func (c *Coordinator) callLease(ctx context.Context, w *worker, method string, params, result any) error {
	timeout := c.cfg.leaseTimeout()
	tr := obs.TraceFrom(ctx)
	watchdog := time.AfterFunc(timeout, func() {
		c.met.watchdogResets.Inc()
		tr.Event("watchdog fired", 0, w.name)
		w.c.Close()
	})
	defer watchdog.Stop()
	return w.c.Call(ctx, method, params, result,
		client.WithTenant(c.cfg.Tenant),
		client.WithEvents(func(daemon.ProgressEvent) { watchdog.Reset(timeout) }))
}
