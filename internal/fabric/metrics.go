package fabric

import (
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
)

// fabricMetrics is the coordinator's registry slice. All handles are
// nil-safe, so a coordinator built without Config.Metrics records nothing
// at a nil check per site — the Stats wire shape stays authoritative
// either way.
type fabricMetrics struct {
	leasesIssued     *obs.Counter
	leasesReassigned *obs.Counter
	watchdogResets   *obs.Counter
	workersLost      *obs.Counter
	leaseLatency     *obs.Hist // ns per completed lease
	jobSeq           atomic.Uint64
}

func newFabricMetrics(reg *obs.Registry) *fabricMetrics {
	return &fabricMetrics{
		leasesIssued:     reg.Counter("fabric_leases_issued_total"),
		leasesReassigned: reg.Counter("fabric_leases_reassigned_total"),
		watchdogResets:   reg.Counter("fabric_watchdog_resets_total"),
		workersLost:      reg.Counter("fabric_workers_lost_total"),
		leaseLatency:     reg.Hist("fabric_lease_latency_ns"),
	}
}

// registerCollectors emits the per-worker view (shards/sec, liveness) and
// the frontier size at scrape time, straight from the same snapshot the
// stats RPC serves.
func (c *Coordinator) registerCollectors(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Collect(func(emit func(name string, value float64)) {
		st := c.Stats()
		alive := 0
		for _, w := range st.Workers {
			if w.Alive {
				alive++
			}
			emit(obs.Label("fabric_worker_shards_done_total", "worker", w.Name), float64(w.ShardsDone))
			emit(obs.Label("fabric_worker_shards_per_sec", "worker", w.Name), w.ShardsPerSec)
		}
		emit("fabric_workers_alive", float64(alive))
		emit("fabric_frontier_edges", float64(st.FrontierEdges))
	})
}

// beginTrace opens a flight-recorder trace for one fabric job (campaign,
// loadtest, sweep point, fuzz). Returns a nil trace when no recorder is
// configured.
func (c *Coordinator) beginTrace(kind string) *obs.Trace {
	if c.cfg.Recorder == nil {
		return nil
	}
	return c.cfg.Recorder.Begin(c.met.jobSeq.Add(1), kind)
}

// leaseRange renders a lease's shard range for trace details.
func leaseRange(lo, hi int) string { return fmt.Sprintf("[%d,%d)", lo, hi) }
