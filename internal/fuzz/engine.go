package fuzz

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/rng"
	"repro/internal/vm"
	"repro/internal/workpool"
)

// Config sizes a fuzzing run.
type Config struct {
	// Label names the run in its Report.
	Label string
	// Seeds is the initial corpus (at least one input).
	Seeds [][]byte
	// Dict is an optional dictionary of tokens the mutation engine splices
	// into inputs.
	Dict [][]byte
	// Execs is the total mutation budget, partitioned across shards
	// (default 4096). Seed executions and minimization probes run on top of
	// it and are reported separately.
	Execs int
	// Shards is the number of self-contained fuzzing shards (default 4).
	// Part of the scenario: it fixes the budget partition and the mutation
	// streams, like a campaign's replication count.
	Shards int
	// Workers bounds how many shards run concurrently (default GOMAXPROCS,
	// clamped to Shards). Wall-clock only — never results.
	Workers int
	// Seed drives all randomness: shard i mutates from
	// rng.NewStream(Seed, i).
	Seed uint64
	// MaxInput caps generated input length in bytes (default 1024).
	MaxInput int
	// MinimizeBudget bounds the extra executions triage spends minimizing
	// each unique crash (default 96).
	MinimizeBudget int
	// BaseVirgin, when exactly vm.CovMapSize bytes, seeds every shard's
	// coverage frontier — the resume path for a persistent corpus: edges a
	// previous run already charted are not "new", so the budget goes to the
	// frontier instead of rediscovery. Part of the scenario: it changes
	// corpus admission and the report. Other lengths are ignored.
	BaseVirgin []byte
	// Progress, when non-nil, receives a running tally roughly every
	// ProgressEvery executions and at every shard completion, serialized by
	// the engine. It observes wall-clock order, so the snapshot sequence
	// varies with scheduling — only the final Report is deterministic. The
	// nil path costs one pointer check per execution.
	Progress func(Progress)
	// ProgressEvery is the number of executions between Progress calls
	// (default 256).
	ProgressEvery int
}

// Progress is a fuzzing run's running tally, cumulative over the executions
// performed so far in wall-clock order.
type Progress struct {
	// ShardsDone counts shards that finished, out of Shards.
	ShardsDone, Shards int
	// Execs counts every execution so far; Crashes the crashing subset
	// (crash-minimization probes included, so it can exceed the final
	// report's main-loop tally); Findings the unique crash sites found
	// (per shard, before cross-shard dedup).
	Execs, Crashes, Findings int
	// Edges sums each shard's newly-covered edge buckets — the coverage
	// frontier's growth signal. Shards chart frontiers independently, so
	// this running figure can exceed the final report's deduplicated count.
	Edges int
	// CorpusSize counts inputs admitted across shards so far.
	CorpusSize int
}

func (c Config) withDefaults() (Config, error) {
	if len(c.Seeds) == 0 {
		return c, errors.New("fuzz: empty seed corpus")
	}
	for i, s := range c.Seeds {
		if len(s) == 0 {
			return c, fmt.Errorf("fuzz: empty seed input %d", i)
		}
	}
	if c.Execs <= 0 {
		c.Execs = 4096
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Shards > c.Execs {
		c.Shards = c.Execs
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > c.Shards {
		c.Workers = c.Shards
	}
	if c.MaxInput <= 0 {
		c.MaxInput = 1024
	}
	if c.MinimizeBudget <= 0 {
		c.MinimizeBudget = 96
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 256
	}
	return c, nil
}

// progressMeter is the wall-clock observability tap behind Config.Progress.
// A nil meter (no listener) makes every method a single pointer check,
// keeping the default hot path allocation-free.
type progressMeter struct {
	mu        sync.Mutex
	fn        func(Progress)
	every     int
	sinceTick int
	prog      Progress
}

// newProgressMeter returns nil when no callback listens — the nil receiver
// IS the disabled state.
func newProgressMeter(cfg Config) *progressMeter {
	if cfg.Progress == nil {
		return nil
	}
	return &progressMeter{fn: cfg.Progress, every: cfg.ProgressEvery, prog: Progress{Shards: cfg.Shards}}
}

// exec folds one execution into the tally and fires the callback on the
// tick boundary. Minimization probes count here too — they are real victim
// executions.
func (m *progressMeter) exec(crashed bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.prog.Execs++
	if crashed {
		m.prog.Crashes++
	}
	m.sinceTick++
	if m.sinceTick >= m.every {
		m.sinceTick = 0
		m.fn(m.prog)
	}
	m.mu.Unlock()
}

// advance accumulates frontier/corpus/finding growth without forcing a tick
// — the next exec boundary carries it out.
func (m *progressMeter) advance(newEdges, corpusAdd, findingAdd int) {
	if m == nil || (newEdges|corpusAdd|findingAdd) == 0 {
		return
	}
	m.mu.Lock()
	m.prog.Edges += newEdges
	m.prog.CorpusSize += corpusAdd
	m.prog.Findings += findingAdd
	m.mu.Unlock()
}

// shardDone marks one shard finished and fires the callback.
func (m *progressMeter) shardDone() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.prog.ShardsDone++
	m.sinceTick = 0
	m.fn(m.prog)
	m.mu.Unlock()
}

// bucket classifies a hit count into AFL's power-of-two bucket bit, so "ran
// this edge 3 times" and "ran it 30 times" count as different coverage but
// 30 and 31 do not.
func bucket(n byte) byte {
	switch {
	case n == 0:
		return 0
	case n == 1:
		return 1
	case n == 2:
		return 2
	case n == 3:
		return 4
	case n <= 7:
		return 8
	case n <= 15:
		return 16
	case n <= 31:
		return 32
	case n <= 127:
		return 64
	default:
		return 128
	}
}

// mergeCov folds one execution's edge map into the shard's bucketed frontier
// and reports how many new bucket bits it contributed — the corpus-admission
// novelty signal. The word-at-a-time skip keeps the 64 KiB scan cheap
// relative to the VM work behind each execution.
func mergeCov(virgin []byte, cov *vm.CovMap) int {
	raw := cov.Bytes()
	news := 0
	for i := 0; i < len(raw); i += 8 {
		if binary.LittleEndian.Uint64(raw[i:]) == 0 {
			continue
		}
		for j := i; j < i+8; j++ {
			if raw[j] == 0 {
				continue
			}
			if b := bucket(raw[j]); virgin[j]&b == 0 {
				virgin[j] |= b
				news++
			}
		}
	}
	return news
}

// shardResult is one shard's complete outcome.
type shardResult struct {
	execs, mutationExecs, crashes int
	cycles, insts                 uint64
	corpus                        [][]byte
	virgin                        []byte
	findings                      []Finding
}

// minFiller is the canonical byte minimization rewrites inputs toward —
// the attack layer's default buffer filler.
const minFiller = 'A'

// runShard fuzzes one shard to its budget. The returned result is valid
// even on error (partial, up to the failure).
func runShard(ctx context.Context, cfg Config, shard int, ex Executor, mt *progressMeter) (st *shardResult, err error) {
	r := rng.NewStream(cfg.Seed, uint64(shard))
	mut := &mutator{r: r, dict: cfg.Dict, max: cfg.MaxInput}
	st = &shardResult{virgin: make([]byte, vm.CovMapSize)}
	if len(cfg.BaseVirgin) == vm.CovMapSize {
		copy(st.virgin, cfg.BaseVirgin)
	}
	seen := make(map[crashKey]bool)

	budget := workpool.Share(cfg.Execs, shard, cfg.Shards)
	if budget == 0 {
		return st, nil
	}

	execute := func(input []byte) (Exec, *vm.CovMap, error) {
		out, cov, err := ex.Execute(ctx, input)
		if err != nil {
			return Exec{}, nil, err
		}
		st.execs++
		st.cycles += out.Cycles
		st.insts += out.Insts
		mt.exec(out.Crashed)
		return out, cov, nil
	}

	// crashesAs re-executes cand and reports whether it dies with the same
	// triage key — the minimization predicate.
	crashesAs := func(cand []byte, k crashKey) (bool, error) {
		out, _, err := execute(cand)
		if err != nil {
			return false, err
		}
		return out.Crashed && (Finding{CrashPC: out.CrashPC, Kind: out.Kind, Detected: out.Detected}).key() == k, nil
	}

	// minimize tail-trims input to the shortest form that still crashes
	// with key k, then normalizes bytes to the canonical filler where the
	// crash is preserved, spending at most cfg.MinimizeBudget executions.
	minimize := func(input []byte, k crashKey) ([]byte, error) {
		cur := append([]byte(nil), input...)
		left := cfg.MinimizeBudget
		for step := len(cur) / 2; step > 0 && left > 0; {
			if step >= len(cur) {
				step = len(cur) - 1
				if step == 0 {
					break
				}
			}
			cand := cur[:len(cur)-step]
			left--
			same, err := crashesAs(cand, k)
			if err != nil {
				return cur, err
			}
			if same {
				cur = cand
			} else {
				step /= 2
			}
		}
		for i := 0; i < len(cur) && left > 0; i++ {
			if cur[i] == minFiller {
				continue
			}
			old := cur[i]
			cur[i] = minFiller
			left--
			same, err := crashesAs(cur, k)
			if err != nil {
				cur[i] = old
				return cur, err
			}
			if !same {
				cur[i] = old
			}
		}
		return cur, nil
	}

	// triage records a crashing execution: dedupe by key, then minimize the
	// first input that reached each unique site.
	triage := func(input []byte, out Exec) error {
		st.crashes++
		f := Finding{
			Shard:    shard,
			Exec:     st.execs,
			Cycles:   st.cycles,
			Input:    append([]byte(nil), input...),
			CrashPC:  out.CrashPC,
			Kind:     out.Kind,
			Detected: out.Detected,
		}
		k := f.key()
		if seen[k] {
			return nil
		}
		seen[k] = true
		mt.advance(0, 0, 1)
		min, err := minimize(f.Input, k)
		f.Minimized = min
		st.findings = append(st.findings, f)
		return err
	}

	// Seed phase: every seed is executed to chart the frontier; surviving
	// seeds join the corpus unconditionally (they are the mutation bases),
	// crashing seeds go straight to triage.
	for _, s := range cfg.Seeds {
		out, cov, err := execute(s)
		if err != nil {
			return st, err
		}
		mt.advance(mergeCov(st.virgin, cov), 0, 0)
		if out.Crashed {
			if err := triage(s, out); err != nil {
				return st, err
			}
			continue
		}
		st.corpus = append(st.corpus, append([]byte(nil), s...))
		mt.advance(0, 1, 0)
	}

	// Mutation phase: pick a parent, mutate, execute; coverage novelty
	// admits survivors to the corpus, crashes go to triage.
	for ; st.mutationExecs < budget; st.mutationExecs++ {
		var parent []byte
		if len(st.corpus) > 0 {
			parent = st.corpus[r.Intn(len(st.corpus))]
		} else {
			parent = cfg.Seeds[r.Intn(len(cfg.Seeds))]
		}
		input := mut.mutate(parent, st.corpus)
		out, cov, err := execute(input)
		if err != nil {
			return st, err
		}
		news := mergeCov(st.virgin, cov)
		mt.advance(news, 0, 0)
		if out.Crashed {
			if err := triage(input, out); err != nil {
				return st, err
			}
			continue
		}
		if news > 0 {
			st.corpus = append(st.corpus, input)
			mt.advance(0, 1, 0)
		}
	}
	return st, nil
}

// Run executes the fuzzing campaign: cfg.Shards self-contained shards, each
// against its own boot'ed victim, executed by cfg.Workers goroutines and
// merged in shard order. For a fixed seed the Report is bit-identical at any
// worker count.
//
// On cancellation Run returns the partial report of the work done so far
// together with ctx.Err(). Any transport/boot error aborts the run and is
// returned with the partial report.
func Run(ctx context.Context, cfg Config, boot Boot) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}

	results := make([]*shardResult, cfg.Shards)
	mt := newProgressMeter(cfg)
	// Cancellation and fatal-error semantics live in workpool.Run; a shard
	// stores its (possibly partial) result before reporting any error, so
	// cancelled runs still merge the work done so far.
	poolErr := workpool.Run(ctx, cfg.Shards, cfg.Workers, func(ctx context.Context, shard int) error {
		ex, err := boot(ctx, shard)
		if err != nil {
			return fmt.Errorf("fuzz: boot shard %d: %w", shard, err)
		}
		st, err := runShard(ctx, cfg, shard, ex, mt)
		results[shard] = st // partial shard results still merge
		if err == nil {
			mt.shardDone()
		}
		return err
	})
	return merge(cfg, results), poolErr
}

// Normalize resolves the run's defaults and clamps (shards to execs,
// workers to shards, ...) and validates it — exactly what Run does
// internally. The distributed fabric normalizes once on the coordinator so
// every worker leases shards of the same final scenario. Idempotent.
func (c Config) Normalize() (Config, error) {
	return c.withDefaults()
}

// Partial is one shard's complete result in wire form — the unit a fabric
// worker ships back. It mirrors shardResult exactly (corpus inputs and the
// bucketed virgin map included, base64 on the wire), so MergePartials
// reassembles the very slot array Run would have merged and the distributed
// report is bit-identical to the local one.
type Partial struct {
	Shard         int       `json:"shard"`
	Execs         int       `json:"execs"`
	MutationExecs int       `json:"mutation_execs"`
	Crashes       int       `json:"crashes"`
	Cycles        uint64    `json:"cycles"`
	Insts         uint64    `json:"insts"`
	Corpus        [][]byte  `json:"corpus,omitempty"`
	Virgin        []byte    `json:"virgin,omitempty"`
	Findings      []Finding `json:"findings,omitempty"`
}

// partial converts a shard's internal result to wire form.
func (st *shardResult) partial(shard int) *Partial {
	return &Partial{
		Shard:         shard,
		Execs:         st.execs,
		MutationExecs: st.mutationExecs,
		Crashes:       st.crashes,
		Cycles:        st.cycles,
		Insts:         st.insts,
		Corpus:        st.corpus,
		Virgin:        st.virgin,
		Findings:      st.findings,
	}
}

// result converts a wire partial back to the engine's internal shard state.
func (p *Partial) result() *shardResult {
	return &shardResult{
		execs:         p.Execs,
		mutationExecs: p.MutationExecs,
		crashes:       p.Crashes,
		cycles:        p.Cycles,
		insts:         p.Insts,
		corpus:        p.Corpus,
		virgin:        p.Virgin,
		findings:      p.Findings,
	}
}

// RunShards executes only shards [lo, hi) of the fuzzing campaign and
// returns their partials in shard order. cfg must be the full (ideally
// pre-Normalized) scenario — shard indices keep their global meaning, so
// rng streams and budget shares are identical to the single-process run.
func RunShards(ctx context.Context, cfg Config, boot Boot, lo, hi int) ([]*Partial, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if lo < 0 || hi > cfg.Shards || lo >= hi {
		return nil, fmt.Errorf("fuzz: shard range [%d,%d) outside shards [0,%d)", lo, hi, cfg.Shards)
	}
	workers := cfg.Workers
	if workers > hi-lo {
		workers = hi - lo
	}
	results := make([]*shardResult, cfg.Shards)
	mt := newProgressMeter(cfg)
	poolErr := workpool.RunRange(ctx, lo, hi, workers, func(ctx context.Context, shard int) error {
		ex, err := boot(ctx, shard)
		if err != nil {
			return fmt.Errorf("fuzz: boot shard %d: %w", shard, err)
		}
		st, err := runShard(ctx, cfg, shard, ex, mt)
		results[shard] = st
		if err == nil {
			mt.shardDone()
		}
		return err
	})
	if poolErr != nil {
		return nil, poolErr
	}
	var parts []*Partial
	for shard := lo; shard < hi; shard++ {
		if st := results[shard]; st != nil {
			parts = append(parts, st.partial(shard))
		}
	}
	return parts, nil
}

// MergePartials folds wire partials into the report Run would have produced
// for the same cfg. Partials may arrive in any order and may repeat a shard
// (a reassigned lease): slots are keyed by shard index, so a duplicate
// overwrites with identical data. Missing shards merge like a cancelled
// run's.
func MergePartials(cfg Config, parts []*Partial) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	results := make([]*shardResult, cfg.Shards)
	for _, p := range parts {
		if p != nil && p.Shard >= 0 && p.Shard < cfg.Shards {
			results[p.Shard] = p.result()
		}
	}
	return merge(cfg, results), nil
}

// merge folds per-shard results (in shard order) into the final report,
// deduplicating findings across shards by triage key.
func merge(cfg Config, results []*shardResult) *Report {
	rep := &Report{Label: cfg.Label, Shards: cfg.Shards}
	union := make([]byte, vm.CovMapSize)
	seen := make(map[crashKey]bool)
	for _, st := range results {
		if st == nil {
			continue
		}
		rep.Execs += st.execs
		rep.MutationExecs += st.mutationExecs
		rep.Crashes += st.crashes
		rep.Cycles += st.cycles
		rep.Insts += st.insts
		for i, v := range st.virgin {
			union[i] |= v
		}
		for _, in := range st.corpus {
			rep.CorpusHashes = append(rep.CorpusHashes, hash64(in))
			rep.corpus = append(rep.corpus, in)
		}
		for _, f := range st.findings {
			if k := f.key(); !seen[k] {
				seen[k] = true
				rep.Findings = append(rep.Findings, f)
			}
			if rep.ExecsToFirstCrash == 0 || f.Exec < rep.ExecsToFirstCrash {
				rep.ExecsToFirstCrash = f.Exec
			}
		}
	}
	rep.CorpusSize = len(rep.CorpusHashes)
	for _, v := range union {
		if v != 0 {
			rep.Edges++
		}
	}
	rep.CoverageHash = hash64(union)
	rep.virgin = union
	return rep
}
