// Package fuzz is the coverage-guided fuzzing engine of the reproduction:
// an AFL-style mutational fuzzer that runs natively on the simulated
// machine's fork-per-request servers, using the VM's edge-coverage map
// (vm.CovMap) as its novelty signal, and hands discovered crash sites to the
// attack layer — closing the loop the paper leaves open, where the
// stack-buffer overflow's location is assumed known a priori.
//
// Determinism follows the campaign engine's discipline. The work is sharded:
// shard i draws every mutation from rng.NewStream(seed, i), boots its own
// replica victim, and evolves its own corpus and coverage frontier, so a
// shard is a self-contained work unit independent of scheduling. Workers are
// pure concurrency; shard results merge in shard order after the pool
// drains. A fixed seed therefore yields a bit-identical Report — corpus
// hashes, coverage frontier, deduplicated crash set — at any worker count.
// Shards is part of the scenario (it partitions the exec budget and the
// mutation streams), like a campaign's replication count.
//
// Triage deduplicates crashes by (fault PC, fault kind, canary-detected vs
// raw) and minimizes each unique crasher: tail-trimming to the shortest
// still-crashing input, then normalizing bytes to a canonical filler. For
// the paper's overflow victims the minimized input is exactly one byte
// longer than the vulnerable buffer, which is what Finding.OverflowLen
// feeds to the attack bridge (pssp.FindingAttack).
package fuzz

import (
	"context"

	"repro/internal/vm"
)

// Exec reports one execution's outcome from the target's point of view.
type Exec struct {
	// Crashed reports a dead worker; Detected the subset killed by a canary
	// check (the defence observing the overflow) rather than a raw fault.
	Crashed  bool
	Detected bool
	// CrashPC is the faulting RIP (valid when Crashed).
	CrashPC uint64
	// Kind classifies the faulting access ("store fault", "instruction
	// fetch fault", "abort (stack smashing detected)", ...). Triage keys on
	// it together with CrashPC and Detected.
	Kind string
	// Cycles and Insts are the worker's execution cost.
	Cycles, Insts uint64
}

// Executor runs inputs against one shard's private victim. Implementations
// serve each input to a freshly forked worker and return its outcome plus
// the request's edge-coverage map; the map is owned by the executor and only
// valid until the next Execute call. The returned error covers transport
// failures and cancellation only — a crashed worker is an Exec outcome, not
// an error — mirroring the facade's Server.Handle contract.
type Executor interface {
	Execute(ctx context.Context, input []byte) (Exec, *vm.CovMap, error)
}

// Boot builds shard's private victim executor. Like a campaign Runner it
// must derive all shard-varying state (the victim machine's entropy) from
// the shard index, so the shard's behaviour is independent of which worker
// executes it.
type Boot func(ctx context.Context, shard int) (Executor, error)

// Finding is one deduplicated crash: a unique (fault PC, kind, detected)
// site with the input that first reached it and its minimized form.
type Finding struct {
	// Shard is the shard that discovered the crash; Exec its shard-local
	// execution ordinal at discovery (1-based, seed executions included).
	Shard int `json:"shard"`
	Exec  int `json:"exec"`
	// Cycles is the shard's cumulative victim-side cost at discovery — the
	// virtual time-to-discovery companion of Exec.
	Cycles uint64 `json:"cycles"`
	// Input is the discovering input; Minimized the triaged form (shortest
	// still-crashing tail-trim, bytes normalized to the filler where the
	// crash key allows).
	Input     []byte `json:"input"`
	Minimized []byte `json:"minimized"`
	// CrashPC, Kind and Detected are the dedup key: where the worker died,
	// what access killed it, and whether a canary check (rather than a raw
	// fault) did.
	CrashPC  uint64 `json:"crash_pc"`
	Kind     string `json:"kind"`
	Detected bool   `json:"detected"`
}

// OverflowLen is the attack-bridge view of the finding: the longest input
// prefix the victim survives, i.e. len(Minimized)-1. For a stack-buffer
// overflow caught by a canary this is exactly the distance from the buffer
// start to the canary — the BufLen an attack.Config needs.
func (f Finding) OverflowLen() int {
	if len(f.Minimized) == 0 {
		return 0
	}
	return len(f.Minimized) - 1
}

// key is the triage identity of a crash.
type crashKey struct {
	pc       uint64
	kind     string
	detected bool
}

func (f Finding) key() crashKey {
	return crashKey{pc: f.CrashPC, kind: f.Kind, detected: f.Detected}
}

// Report is a fuzzing run's deterministic aggregate. Every field is a
// function of (seed, config) alone — computed from per-shard results merged
// in shard order — so for a fixed seed the report is bit-identical at any
// worker count.
type Report struct {
	// Label names the run; Shards echoes the shard count.
	Label  string `json:"label"`
	Shards int    `json:"shards"`
	// Execs counts every execution (seed runs, mutations, and minimization
	// probes); MutationExecs only the budgeted mutation phase.
	Execs         int `json:"execs"`
	MutationExecs int `json:"mutation_execs"`
	// Crashes counts crashing executions in the seed+mutation phases (not
	// minimization probes); Findings is the deduplicated crash set.
	Crashes  int       `json:"crashes"`
	Findings []Finding `json:"findings"`
	// ExecsToFirstCrash is the smallest shard-local exec ordinal at which
	// any finding was discovered (0 when none): the paper-style
	// execs-to-discovery metric under equal shard budgets.
	ExecsToFirstCrash int `json:"execs_to_first_crash"`
	// Edges counts distinct covered edge buckets across all shards;
	// CoverageHash fingerprints the merged bucketed frontier.
	Edges        int    `json:"edges"`
	CoverageHash uint64 `json:"coverage_hash"`
	// CorpusSize counts admitted corpus entries across shards; CorpusHashes
	// fingerprints each entry, in shard-merge order.
	CorpusSize   int      `json:"corpus_size"`
	CorpusHashes []uint64 `json:"corpus_hashes"`
	// Cycles and Insts total the victim-side execution cost.
	Cycles uint64 `json:"cycles"`
	Insts  uint64 `json:"insts"`

	// corpus holds the admitted inputs in shard-merge order and virgin the
	// merged bucketed frontier — the persistence payload behind
	// CorpusInputs/Frontier. Unexported so the report's JSON shape (and thus
	// the fixed-seed byte-identity contract) is independent of persistence.
	corpus [][]byte
	virgin []byte
}

// CorpusInputs returns the admitted corpus inputs in shard-merge order —
// what a persistent corpus directory stores between runs. Callers must not
// mutate the returned inputs.
func (r *Report) CorpusInputs() [][]byte { return r.corpus }

// Frontier returns the merged bucketed coverage map (vm.CovMapSize bytes,
// nil for an empty report) — feed it back as Config.BaseVirgin to resume
// from this run's coverage instead of rediscovering it.
func (r *Report) Frontier() []byte { return r.virgin }

// hash64 is FNV-1a over b — the corpus/coverage fingerprint primitive.
func hash64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
