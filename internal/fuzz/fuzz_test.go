package fuzz

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/vm"
)

// fakeTarget is a synthetic victim: inputs longer than bufLen "overflow" and
// crash (canary-detected at a fixed PC), shorter inputs survive with
// coverage that depends on the input length bucket — a controllable novelty
// signal. It is a pure function of the input, so shards stay deterministic.
type fakeTarget struct {
	bufLen int
	cov    vm.CovMap
}

func (f *fakeTarget) Execute(_ context.Context, input []byte) (Exec, *vm.CovMap, error) {
	f.cov.Reset()
	raw := f.cov.Bytes()
	// Edge footprint: a base path plus one bucket per power-of-two length.
	raw[1] = 1
	for l := len(input); l > 0; l >>= 1 {
		raw[16+l%251]++
	}
	ex := Exec{Cycles: uint64(100 + len(input)), Insts: uint64(10 + len(input))}
	if len(input) > f.bufLen {
		ex.Crashed = true
		ex.Detected = true
		ex.CrashPC = 0x4242
		ex.Kind = "abort (stack smashing detected)"
	}
	return ex, &f.cov, nil
}

func fakeBoot(bufLen int) Boot {
	return func(context.Context, int) (Executor, error) {
		return &fakeTarget{bufLen: bufLen}, nil
	}
}

func TestMutatorDeterministic(t *testing.T) {
	gen := func() [][]byte {
		m := &mutator{r: rng.NewStream(7, 0), dict: [][]byte{[]byte("tok")}, max: 64}
		parent := []byte("GET /")
		corpus := [][]byte{parent, []byte("PING")}
		var out [][]byte
		for i := 0; i < 200; i++ {
			out = append(out, m.mutate(parent, corpus))
		}
		return out
	}
	a, b := gen(), gen()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same stream produced different mutants")
	}
	grew := false
	for _, in := range a {
		if len(in) > 64 {
			t.Fatalf("mutant length %d exceeds cap 64", len(in))
		}
		if len(in) == 0 {
			t.Fatal("empty mutant")
		}
		if len(in) > 5 {
			grew = true
		}
	}
	if !grew {
		t.Fatal("no mutation ever grew the input — overflows would be unreachable")
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	ctx := context.Background()
	run := func(workers int) *Report {
		t.Helper()
		rep, err := Run(ctx, Config{
			Label:   "fake",
			Seeds:   [][]byte{[]byte("GET /")},
			Execs:   400,
			Shards:  4,
			Workers: workers,
			Seed:    2018,
		}, fakeBoot(16))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := run(1)
	if base.Execs == 0 || base.Edges == 0 {
		t.Fatalf("empty run: %+v", base)
	}
	if len(base.Findings) == 0 {
		t.Fatal("fuzzer never crashed the fake overflow target")
	}
	for _, w := range []int{4, 16} {
		if got := run(w); !reflect.DeepEqual(base, got) {
			t.Fatalf("report differs at %d workers:\n1:  %+v\n%d: %+v", w, base, w, got)
		}
	}
}

func TestTriageDedupesAndMinimizes(t *testing.T) {
	rep, err := Run(context.Background(), Config{
		Seeds:  [][]byte{[]byte("GET /")},
		Execs:  600,
		Shards: 2,
		Seed:   1,
	}, fakeBoot(16))
	if err != nil {
		t.Fatal(err)
	}
	// One crash site (pc, kind, detected) — one finding, however many of
	// the 600 mutants crashed.
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %d, want 1 (dedupe by crash site)", len(rep.Findings))
	}
	f := rep.Findings[0]
	if !f.Detected || f.CrashPC != 0x4242 {
		t.Fatalf("finding misclassified: %+v", f)
	}
	if rep.Crashes < 2 {
		t.Fatalf("crashes = %d, want several (dedupe must not hide the count)", rep.Crashes)
	}
	// Minimization: the shortest input that still crashes is bufLen+1, so
	// OverflowLen recovers bufLen exactly.
	if len(f.Minimized) != 17 {
		t.Fatalf("minimized length = %d, want 17", len(f.Minimized))
	}
	if f.OverflowLen() != 16 {
		t.Fatalf("OverflowLen = %d, want 16", f.OverflowLen())
	}
	// Normalization: minimized bytes are the canonical filler.
	if !bytes.Equal(f.Minimized[:16], bytes.Repeat([]byte{minFiller}, 16)) {
		t.Fatalf("minimized input not normalized: %q", f.Minimized)
	}
	if rep.ExecsToFirstCrash == 0 || rep.ExecsToFirstCrash > rep.Execs {
		t.Fatalf("ExecsToFirstCrash = %d out of range", rep.ExecsToFirstCrash)
	}
}

func TestCoverageNoveltyGrowsCorpus(t *testing.T) {
	rep, err := Run(context.Background(), Config{
		Seeds:  [][]byte{[]byte("GET /")},
		Execs:  300,
		Shards: 1,
		Seed:   3,
	}, fakeBoot(1<<20)) // effectively uncrashable: pure coverage search
	if err != nil {
		t.Fatal(err)
	}
	// The fake target's coverage varies with input length, so novelty
	// admission must have grown the corpus beyond the seed.
	if rep.CorpusSize <= 1 {
		t.Fatalf("corpus stayed at %d entries — novelty admission dead", rep.CorpusSize)
	}
	if rep.CorpusSize == rep.Execs {
		t.Fatal("every input admitted — novelty gating dead")
	}
	if len(rep.CorpusHashes) != rep.CorpusSize {
		t.Fatalf("corpus hashes %d != size %d", len(rep.CorpusHashes), rep.CorpusSize)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("uncrashable target produced findings: %+v", rep.Findings)
	}
}

func TestRunCancellationReturnsPartialReport(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	boot := func(context.Context, int) (Executor, error) {
		return executorFunc(func(c context.Context, input []byte) (Exec, *vm.CovMap, error) {
			calls++
			if calls > 50 {
				cancel()
			}
			if err := c.Err(); err != nil {
				return Exec{}, nil, err
			}
			ft := fakeTarget{bufLen: 1 << 20}
			return ft.Execute(c, input)
		}), nil
	}
	rep, err := Run(ctx, Config{
		Seeds:  [][]byte{[]byte("x")},
		Execs:  100000,
		Shards: 1,
		Seed:   1,
	}, boot)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil || rep.Execs == 0 || rep.Execs >= 100000 {
		t.Fatalf("partial report execs = %+v", rep)
	}
}

func TestRunBootFailureAborts(t *testing.T) {
	boom := errors.New("boom")
	rep, err := Run(context.Background(), Config{
		Seeds:  [][]byte{[]byte("x")},
		Execs:  64,
		Shards: 2,
	}, func(context.Context, int) (Executor, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boot failure", err)
	}
	if rep == nil {
		t.Fatal("no partial report on boot failure")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}, fakeBoot(4)); err == nil {
		t.Fatal("empty seed corpus accepted")
	}
	if _, err := Run(context.Background(), Config{Seeds: [][]byte{{}}}, fakeBoot(4)); err == nil {
		t.Fatal("empty seed input accepted")
	}
}

// executorFunc adapts a function to the Executor interface.
type executorFunc func(ctx context.Context, input []byte) (Exec, *vm.CovMap, error)

func (f executorFunc) Execute(ctx context.Context, input []byte) (Exec, *vm.CovMap, error) {
	return f(ctx, input)
}

func TestProgressStreamsExecsAndFindings(t *testing.T) {
	// Per-execution ticks respect ProgressEvery, shard completions always
	// fire, counters are monotone, and the callback leaves the
	// deterministic report bit-identical.
	cfg := Config{
		Label:         "fake",
		Seeds:         [][]byte{[]byte("GET /")},
		Execs:         400,
		Shards:        4,
		Workers:       4,
		Seed:          2018,
		ProgressEvery: 32,
	}
	var snaps []Progress
	cfg.Progress = func(p Progress) { snaps = append(snaps, p) }
	rep, err := Run(context.Background(), cfg, fakeBoot(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots")
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Execs < snaps[i-1].Execs || snaps[i].ShardsDone < snaps[i-1].ShardsDone {
			t.Fatalf("snapshot %d regressed: %+v after %+v", i, snaps[i], snaps[i-1])
		}
	}
	last := snaps[len(snaps)-1]
	if last.ShardsDone != cfg.Shards || last.Shards != cfg.Shards {
		t.Fatalf("final snapshot %+v: want all %d shards done", last, cfg.Shards)
	}
	// Execs agree exactly; Crashes and Findings are per-shard running
	// figures — minimization probes included, pre-dedup — so they bound
	// the report's tallies from above.
	if last.Execs != rep.Execs || last.Crashes < rep.Crashes || last.Findings < len(rep.Findings) {
		t.Fatalf("final snapshot %+v disagrees with report (%d execs, %d crashes, %d findings)",
			last, rep.Execs, rep.Crashes, len(rep.Findings))
	}
	cfg.Progress, cfg.ProgressEvery = nil, 0
	silent, err := Run(context.Background(), cfg, fakeBoot(16))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, silent) {
		t.Fatal("attaching a progress callback changed the deterministic report")
	}
}

func TestNilProgressMeterIsFree(t *testing.T) {
	// Disabled metering is the nil receiver: the per-execution hot path
	// must not allocate.
	var m *progressMeter
	if n := testing.AllocsPerRun(100, func() {
		m.exec(true)
		m.advance(1, 1, 1)
		m.shardDone()
	}); n != 0 {
		t.Fatalf("nil meter allocated %.0f times per exec", n)
	}
}
