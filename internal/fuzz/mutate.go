package fuzz

import (
	"encoding/binary"

	"repro/internal/rng"
)

// The deterministic mutation engine: AFL's classic havoc repertoire —
// bitflips, interesting values, bounded arithmetic, block deletion /
// duplication / insertion, dictionary tokens, and corpus splicing — with
// every choice drawn from the shard's rng.Source. Same source state, same
// parent, same corpus ⇒ same mutant, which is what makes the whole fuzzing
// run replayable from one seed.

// interesting8 and interesting16 are the boundary values AFL plants: min,
// max, off-by-one and size-looking constants that trip length checks.
var interesting8 = []byte{0, 1, 16, 32, 64, 100, 127, 128, 255}

var interesting16 = []uint16{0, 1, 16, 64, 128, 255, 256, 512, 1000, 1024, 4096, 32767, 65535}

// mutator owns one shard's mutation state.
type mutator struct {
	r    *rng.Source
	dict [][]byte
	max  int
}

// mutate derives one mutant from parent: a havoc pass of 1..8 stacked
// operations, length-capped at max and never empty.
func (m *mutator) mutate(parent []byte, corpus [][]byte) []byte {
	out := append(make([]byte, 0, len(parent)+16), parent...)
	for n := 1 << m.r.Intn(4); n > 0; n-- {
		out = m.op(out, corpus)
	}
	if len(out) == 0 {
		out = []byte{0}
	}
	if len(out) > m.max {
		out = out[:m.max]
	}
	return out
}

// op applies one havoc operation.
func (m *mutator) op(out []byte, corpus [][]byte) []byte {
	switch m.r.Intn(10) {
	case 0: // flip one bit
		if len(out) > 0 {
			bit := m.r.Intn(len(out) * 8)
			out[bit/8] ^= 1 << (bit % 8)
		}
	case 1: // plant an interesting byte
		if len(out) > 0 {
			out[m.r.Intn(len(out))] = interesting8[m.r.Intn(len(interesting8))]
		}
	case 2: // plant an interesting 16-bit word (little-endian)
		if len(out) >= 2 {
			binary.LittleEndian.PutUint16(out[m.r.Intn(len(out)-1):],
				interesting16[m.r.Intn(len(interesting16))])
		}
	case 3: // bounded byte arithmetic
		if len(out) > 0 {
			delta := byte(1 + m.r.Intn(35))
			if m.r.Intn(2) == 0 {
				delta = -delta
			}
			out[m.r.Intn(len(out))] += delta
		}
	case 4: // overwrite a byte with a random value
		if len(out) > 0 {
			out[m.r.Intn(len(out))] = byte(m.r.Intn(256))
		}
	case 5: // delete a block
		if len(out) > 1 {
			n := 1 + m.r.Intn(len(out)/2)
			pos := m.r.Intn(len(out) - n + 1)
			out = append(out[:pos], out[pos+n:]...)
		}
	case 6: // duplicate a block in place (grows the input)
		if len(out) > 0 {
			n := 1 + m.r.Intn(len(out))
			pos := m.r.Intn(len(out) - n + 1)
			block := append([]byte(nil), out[pos:pos+n]...)
			at := m.r.Intn(len(out) + 1)
			out = append(out[:at], append(block, out[at:]...)...)
		}
	case 7: // insert a block of random bytes (grows the input)
		n := 1 << m.r.Intn(5) // 1..16
		block := make([]byte, n)
		m.r.Bytes(block)
		at := 0
		if len(out) > 0 {
			at = m.r.Intn(len(out) + 1)
		}
		out = append(out[:at], append(block, out[at:]...)...)
	case 8: // insert a dictionary token (no dictionary: a random block)
		var tok []byte
		if len(m.dict) > 0 {
			tok = m.dict[m.r.Intn(len(m.dict))]
		} else {
			tok = make([]byte, 1<<m.r.Intn(5))
			m.r.Bytes(tok)
		}
		at := 0
		if len(out) > 0 {
			at = m.r.Intn(len(out) + 1)
		}
		out = append(out[:at], append(append([]byte(nil), tok...), out[at:]...)...)
	case 9: // splice with another corpus entry (none usable: self-splice)
		other := out
		if len(corpus) > 0 {
			if o := corpus[m.r.Intn(len(corpus))]; len(o) > 0 {
				other = o
			}
		}
		if len(out) > 0 && len(other) > 0 {
			head := out[:m.r.Intn(len(out))]
			tail := other[m.r.Intn(len(other)):]
			out = append(append([]byte(nil), head...), tail...)
		}
	}
	return out
}
