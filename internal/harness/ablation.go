package harness

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/attack"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/pssp"
)

// syntheticOracle models an n-bit canary check without the VM, so the
// entropy ablation can run tens of thousands of trials in microseconds. A
// payload survives iff its canary field matches the oracle's canary on the
// low `width` bits; in polymorphic mode every trial faces a fresh canary
// (the P-SSP effect), otherwise the canary is fixed (the SSP-over-fork
// effect).
type syntheticOracle struct {
	r      *rng.Source
	width  uint
	poly   bool
	bufLen int
	canary uint64
	trials int
}

func newSyntheticOracle(seed uint64, width uint, poly bool, bufLen int) *syntheticOracle {
	r := rng.New(seed)
	return &syntheticOracle{r: r, width: width, poly: poly, bufLen: bufLen, canary: r.Uint64()}
}

func (o *syntheticOracle) mask() uint64 {
	if o.width >= 64 {
		return ^uint64(0)
	}
	return 1<<o.width - 1
}

// Try implements attack.Oracle.
func (o *syntheticOracle) Try(payload []byte) (bool, error) {
	o.trials++
	if o.poly {
		o.canary = o.r.Uint64()
	}
	if len(payload) <= o.bufLen {
		return true, nil // did not reach the canary
	}
	// A partial overwrite replaces only the low canary bytes; the rest keep
	// their true values — the physical stack behaviour the byte-by-byte
	// attack exploits.
	var slot [8]byte
	binary.LittleEndian.PutUint64(slot[:], o.canary)
	copy(slot[:], payload[o.bufLen:])
	guess := binary.LittleEndian.Uint64(slot[:])
	return guess&o.mask() == o.canary&o.mask(), nil
}

// EntropyAblation quantifies the paper's Section V-C entropy argument: the
// instrumented P-SSP downgrades canaries to 32 bits, and the paper argues
// this is still safe because each trial faces a fresh value — the attacker
// faces a geometric process with success probability 2^-w — expected 2^w
// trials — instead of the byte-by-byte w/8 × 128.
// We measure byte-by-byte trials against a static w-bit canary and
// mean random-guess trials against a polymorphic w-bit canary for small
// widths (measurable), with the analytic expectation alongside.
func EntropyAblation(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title: "Ablation: canary width vs. attack cost (synthetic oracle)",
		Header: []string{
			"width bits", "byte-by-byte (static canary)",
			"random guess (polymorphic, measured mean)", "polymorphic analytic 2^w",
		},
		Notes: []string{
			"paper §V-C: 32-bit polymorphic canaries still cost the attacker 64x more than byte-by-byte on SSP",
			"widths above 16 bits are reported analytically (measurement would need millions of trials)",
		},
	}
	const runs = 12
	for _, width := range []uint{8, 16, 24, 32} {
		// Byte-by-byte against a static canary of that width.
		var bbbTotal int
		for i := 0; i < runs; i++ {
			o := newSyntheticOracle(cfg.Seed+uint64(i), width, false, 4)
			res, err := attack.ByteByByte(o, attack.Config{
				BufLen:    4,
				CanaryLen: int(width / 8),
				MaxTrials: 1 << 20,
			})
			if err != nil {
				return nil, err
			}
			if !res.Success {
				return nil, fmt.Errorf("ablation: byte-by-byte failed on static %d-bit canary", width)
			}
			bbbTotal += res.Trials
		}
		bbbMean := float64(bbbTotal) / runs

		// Random guessing against a polymorphic canary (measured only where
		// feasible). Each trial faces a fresh uniform canary, so trials are
		// geometric with p = 2^-w and the expectation is 2^w.
		analytic := float64(uint64(1) << width)
		measured := "-"
		if width <= 16 {
			var total int
			for i := 0; i < runs; i++ {
				o := newSyntheticOracle(cfg.Seed+100+uint64(i), width, true, 4)
				guessSrc := rng.New(cfg.Seed + 200 + uint64(i))
				res, err := attack.Exhaustive(o, attack.Config{
					BufLen:    4,
					MaxTrials: 1 << 26,
				}, guessSrc.Uint64)
				if err != nil {
					return nil, err
				}
				if !res.Success {
					return nil, fmt.Errorf("ablation: random guess never hit %d-bit canary", width)
				}
				total += res.Trials
			}
			mean := float64(total) / runs
			measured = fmt.Sprintf("%.0f", mean)
			t.set(fmt.Sprintf("%d/poly/measured", width), mean)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", width),
			fmt.Sprintf("%.0f", bbbMean),
			measured,
			fmt.Sprintf("%.0f", analytic),
		})
		t.set(fmt.Sprintf("%d/bbb", width), bbbMean)
		t.set(fmt.Sprintf("%d/poly/analytic", width), analytic)
	}
	return t, nil
}

// DetectionLatency evaluates the §V-E2 design option: P-SSP-LV checking at
// function return versus immediately after buffer writes. The victim's
// critical variable feeds its response, so epilogue-only checking detects
// the corruption but leaks a poisoned response first.
func DetectionLatency(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Ablation: P-SSP-LV detection latency — epilogue check vs. check-on-write",
		Header: []string{"mode", "detected", "poisoned bytes leaked", "code bytes", "cycles/request"},
		Notes: []string{
			"victim: critical variable flows into the response; overflow stops short of the frame canary",
		},
	}
	prog := latencyVictim()
	// Overflow across the guard into the critical variable: 16 (buffer) + 8
	// (guard) + 1 (poison byte).
	payload := append(bytes.Repeat([]byte{0x42}, 24), 9)

	ctx := context.Background()
	for _, mode := range []struct {
		name    string
		onWrite bool
	}{
		{"epilogue only", false},
		{"check on write", true},
	} {
		m := cfg.machine(pssp.WithSeed(cfg.Seed+7), pssp.WithScheme(core.SchemePSSPLV))
		compileOpts := []pssp.CompileOption{}
		if mode.onWrite {
			compileOpts = append(compileOpts, pssp.CompileCheckOnWrite())
		}
		img, err := m.Compile(prog, compileOpts...)
		if err != nil {
			return nil, err
		}
		srv, err := m.Serve(ctx, img)
		if err != nil {
			return nil, err
		}
		benign, err := srv.Handle(ctx, []byte("ok"))
		if err != nil {
			return nil, err
		}
		if benign.Crashed() {
			return nil, fmt.Errorf("latency: benign request crashed: %w", benign.Err)
		}
		out, err := srv.Handle(ctx, payload)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			mode.name,
			yesNo(out.Crashed()),
			fmt.Sprintf("%d", len(out.Body)),
			fmt.Sprintf("%d", img.CodeSize()),
			fmt.Sprintf("%d", benign.Cycles),
		})
		key := "epilogue"
		if mode.onWrite {
			key = "onwrite"
		}
		t.set(key+"/detected", boolToF(out.Crashed()))
		t.set(key+"/leaked", float64(len(out.Body)))
		t.set(key+"/cycles", float64(benign.Cycles))
	}
	return t, nil
}

// latencyVictim mirrors the write-check test victim: the critical variable
// flows into the response.
func latencyVictim() *cc.Program {
	return &cc.Program{
		Name:    "latency",
		Globals: []cc.Global{{Name: "reqlen", Size: 8}},
		Funcs: []*cc.Func{
			{Name: "main", Body: []cc.Stmt{cc.Call{Callee: "serve"}}},
			{
				Name: "serve",
				Locals: []cc.Local{
					{Name: "pad", Size: 16, IsBuffer: true},
					{Name: "n", Size: 8},
				},
				Body: []cc.Stmt{
					cc.Accept{Dst: "n"},
					cc.While{Var: "n", Body: []cc.Stmt{
						cc.StoreGlobal{Global: "reqlen", Src: "n"},
						cc.Call{Callee: "handle"},
						cc.Accept{Dst: "n"},
					}},
				},
			},
			{
				Name: "handle",
				Locals: []cc.Local{
					{Name: "secret", Size: 8, IsBuffer: true, Critical: true},
					{Name: "buf", Size: 16, IsBuffer: true},
					{Name: "len", Size: 8},
				},
				Body: []cc.Stmt{
					cc.SetConst{Dst: "secret", Value: 7},
					cc.LoadGlobal{Dst: "len", Global: "reqlen"},
					cc.ReadInput{Buf: "buf", LenVar: "len"},
					cc.WriteOutput{Src: "secret", Len: 1},
				},
			},
		},
	}
}
