package harness

import "testing"

func TestEntropyAblationShape(t *testing.T) {
	tab, err := EntropyAblation(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Byte-by-byte cost grows linearly in width (bytes), polymorphic cost
	// exponentially; at 16 bits the polymorphic cost must already dominate.
	bbb16 := tab.Values["16/bbb"]
	poly16 := tab.Values["16/poly/measured"]
	if bbb16 <= 0 || poly16 <= 0 {
		t.Fatalf("missing 16-bit measurements: %v %v", bbb16, poly16)
	}
	if poly16 < 8*bbb16 {
		t.Errorf("16-bit polymorphic cost %.0f not clearly above byte-by-byte %.0f", poly16, bbb16)
	}
	// Measured polymorphic means should be near the analytic 2^(w-1) —
	// within 3x is plenty for 12 runs of a geometric variable.
	for _, w := range []string{"8", "16"} {
		m := tab.Values[w+"/poly/measured"]
		a := tab.Values[w+"/poly/analytic"]
		if m < a/3 || m > a*3 {
			t.Errorf("width %s: measured %.0f vs analytic %.0f", w, m, a)
		}
	}
	// Byte-by-byte means: ~128 per byte.
	if b8 := tab.Values["8/bbb"]; b8 < 30 || b8 > 256 {
		t.Errorf("8-bit byte-by-byte mean %.0f, expected ~128", b8)
	}
	if b32, b8 := tab.Values["32/bbb"], tab.Values["8/bbb"]; b32 < 2*b8 {
		t.Errorf("32-bit byte-by-byte %.0f not ~4x the 8-bit cost %.0f", b32, b8)
	}
	// The paper's 64x claim: 32-bit polymorphic analytic vs 32-bit
	// byte-by-byte is far beyond 64x.
	if tab.Values["32/poly/analytic"] < 64*tab.Values["32/bbb"] {
		t.Error("32-bit polymorphic cost not >= 64x byte-by-byte (paper's V-C claim)")
	}
}

func TestDetectionLatencyShape(t *testing.T) {
	tab, err := DetectionLatency(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Values["epilogue/detected"] != 1 || tab.Values["onwrite/detected"] != 1 {
		t.Fatal("both modes must detect the corruption")
	}
	if tab.Values["epilogue/leaked"] == 0 {
		t.Error("epilogue-only mode should have leaked the poisoned response")
	}
	if tab.Values["onwrite/leaked"] != 0 {
		t.Error("check-on-write mode must not leak anything")
	}
	if tab.Values["onwrite/cycles"] <= tab.Values["epilogue/cycles"] {
		t.Error("check-on-write should cost extra cycles (it adds a check)")
	}
}
