package harness

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/apps"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/pssp"
)

// compatProgram is a server whose request handler calls into libc_echo, so
// every request crosses the app/libc module boundary with a protected frame
// on each side.
func compatProgram() *cc.Program {
	return &cc.Program{
		Name:    "compat",
		Globals: []cc.Global{{Name: "reqlen", Size: 8}},
		Funcs: []*cc.Func{
			{Name: "main", Body: []cc.Stmt{cc.Call{Callee: "serve"}}},
			{
				Name: "serve",
				Locals: []cc.Local{
					{Name: "pad", Size: 16, IsBuffer: true},
					{Name: "n", Size: 8},
				},
				Body: []cc.Stmt{
					cc.Accept{Dst: "n"},
					cc.While{Var: "n", Body: []cc.Stmt{
						cc.Call{Callee: "libc_echo"},
						cc.Accept{Dst: "n"},
					}},
				},
			},
		},
	}
}

// Compatibility reproduces the paper's §VI-C compatibility experiment: mix
// P-SSP and SSP between the application and the C library (both directions),
// run benign traffic across fork, and count false positives. The paper
// observes zero errors in both mixtures.
func Compatibility(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "§VI-C: Compatibility between P-SSP and SSP across the app/libc boundary",
		Header: []string{"app scheme", "libc scheme", "requests", "false positives", "verdict"},
		Notes: []string{
			"paper: both mixtures behave normally; no false positive when the child returns to inherited frames",
		},
	}
	prog := compatProgram()
	const requests = 8
	ctx := context.Background()
	schemes := []core.Scheme{core.SchemeSSP, core.SchemePSSP}
	for _, appS := range schemes {
		for _, libcS := range schemes {
			m := cfg.machine(pssp.WithSeed(cfg.Seed + 3))
			libc, err := m.CompileLibc(libcS)
			if err != nil {
				return nil, err
			}
			img, err := m.Compile(prog, pssp.CompileScheme(appS), pssp.CompileDynamic(libc))
			if err != nil {
				return nil, err
			}
			srv, err := m.Serve(ctx, img, pssp.LoadLibc(libc), pssp.LoadPreload(appS))
			if err != nil {
				return nil, err
			}
			falsePositives := 0
			for i := 0; i < requests; i++ {
				out, err := srv.Handle(ctx, []byte("mixmatch"))
				if err != nil {
					return nil, err
				}
				if out.Crashed() {
					falsePositives++
				} else if !bytes.Equal(out.Body, []byte("mixmatch")) {
					return nil, fmt.Errorf("compat: bad response %q", out.Body)
				}
			}
			verdict := "OK"
			if falsePositives > 0 {
				verdict = "INCOMPATIBLE"
			}
			t.Rows = append(t.Rows, []string{
				appS.String(), libcS.String(),
				fmt.Sprintf("%d", requests), fmt.Sprintf("%d", falsePositives), verdict,
			})
			t.set(appS.String()+"+"+libcS.String()+"/falsepositives", float64(falsePositives))
		}
	}
	return t, nil
}

// GlobalBuffer evaluates the discussion-section variant (Figure 6):
// P-SSP-GB keeps the SSP one-word stack canary (layout preservation) while
// storing C1 halves in a fork-cloned global buffer. The experiment checks
// layout preservation, cross-fork correctness, overflow detection, and
// brute-force resistance.
func GlobalBuffer(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Figure 6 variant: P-SSP-GB (global buffer for C1 halves)",
		Header: []string{"property", "result"},
	}
	target := apps.VulnServers()[0]

	// Layout preservation: GB frames match SSP frames byte for byte.
	sspBin, err := cfg.compileStatic(target.Prog, core.SchemeSSP)
	if err != nil {
		return nil, err
	}
	gbBin, err := cfg.compileStatic(target.Prog, core.SchemePSSPGB)
	if err != nil {
		return nil, err
	}
	layout := "preserved (one-word stack canary)"
	pass, err := cc.PassFor(core.SchemePSSPGB)
	if err != nil {
		return nil, err
	}
	if pass.CanaryBytes(target.Prog.Funcs[2]) != 8 {
		layout = "NOT preserved"
	}
	t.Rows = append(t.Rows, []string{"stack layout vs SSP", layout})
	t.Rows = append(t.Rows, []string{
		"code size vs SSP",
		fmt.Sprintf("%+d bytes (list maintenance in prologue/epilogue)", gbBin.CodeSize()-sspBin.CodeSize()),
	})

	brop, correct, err := measureSecurityProfile(context.Background(), cfg, core.SchemePSSPGB)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"correct across fork", yesNo(correct)})
	t.Rows = append(t.Rows, []string{"BROP prevented", yesNo(brop)})
	t.set("layoutPreserved", boolToF(layout[0] == 'p'))
	t.set("correct", boolToF(correct))
	t.set("brop", boolToF(brop))
	return t, nil
}
