package harness

import (
	"context"
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/pssp"
)

// Effectiveness reproduces the paper's §VI-C attack experiment: run the
// byte-by-byte attack against the Nginx and Ali server analogs compiled with
// SSP and with P-SSP. The paper reports the attack succeeds on the SSP
// builds and fails on the P-SSP builds.
func Effectiveness(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ctx := context.Background()
	t := &Table{
		Title:  "§VI-C: Byte-by-byte attack effectiveness (measured)",
		Header: []string{"server", "scheme", "attack result", "trials", "failed at byte"},
		Notes: []string{
			"paper: attacks succeed on SSP-compiled Nginx/Ali, fail on P-SSP builds",
			fmt.Sprintf("trial budget %d; SSP expectation ~1024 trials", cfg.AttackBudget),
		},
	}
	for _, app := range apps.VulnServers() {
		for _, scheme := range []core.Scheme{core.SchemeSSP, core.SchemePSSP} {
			m := cfg.machine(
				pssp.WithSeed(cfg.Seed+uint64(len(t.Rows))),
				pssp.WithScheme(scheme),
				pssp.WithAttackBudget(cfg.AttackBudget),
			)
			srv, err := m.Pipeline().Compile(app.Prog).Serve(ctx)
			if err != nil {
				return nil, err
			}
			res, err := srv.Attack(ctx, pssp.AttackConfig{BufLen: apps.VulnServerBufSize})
			if err != nil {
				return nil, err
			}
			verdict := "failed"
			if res.Success {
				// Verify the recovery is genuine, not a fluke of survival.
				real, err := srv.Canary()
				if err != nil {
					return nil, err
				}
				if res.RecoveredWord() == real {
					verdict = "canary recovered"
				} else {
					verdict = "false success"
				}
			}
			failedAt := "-"
			if res.FailedAt >= 0 {
				failedAt = fmt.Sprintf("%d", res.FailedAt)
			}
			t.Rows = append(t.Rows, []string{
				app.Name, scheme.String(), verdict, fmt.Sprintf("%d", res.Trials), failedAt,
			})
			key := app.Name + "/" + scheme.String()
			t.set(key+"/success", boolToF(res.Success))
			t.set(key+"/trials", float64(res.Trials))
		}
	}
	return t, nil
}
