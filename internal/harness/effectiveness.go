package harness

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/pssp"
)

// Effectiveness reproduces the paper's §VI-C attack experiment as a
// Monte-Carlo campaign: cfg.AttackReps independent replications of the
// byte-by-byte attack against the Nginx and Ali server analogs compiled
// with SSP and with P-SSP, each replication on a freshly derived victim
// machine, sharded across cfg.Workers concurrent oracles. The paper reports
// the attack succeeds on the SSP builds and fails on the P-SSP builds; the
// campaign turns that into measured rates with trials-to-success order
// statistics.
func Effectiveness(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ctx := context.Background()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	t := &Table{
		Title: "§VI-C: Byte-by-byte attack-campaign effectiveness (measured)",
		Header: []string{
			"server", "scheme", "success rate", "verified", "trials-to-success (med)",
			"detection rate", "replications",
		},
		Notes: []string{
			"paper: attacks succeed on SSP-compiled Nginx/Ali, fail on P-SSP builds",
			fmt.Sprintf("trial budget %d per replication; SSP expectation ~1024 trials", cfg.AttackBudget),
			fmt.Sprintf("%d replications per cell sharded over %d workers; aggregates are seed-deterministic at any worker count", cfg.AttackReps, workers),
			"verified = recovered canary matches the victim's TLS canary (rules out lucky-survival false successes)",
		},
	}
	for _, app := range apps.VulnServers() {
		for _, scheme := range []core.Scheme{core.SchemeSSP, core.SchemePSSP} {
			m := cfg.machine(
				pssp.WithSeed(cfg.Seed+uint64(len(t.Rows))),
				pssp.WithScheme(scheme),
				pssp.WithAttackBudget(cfg.AttackBudget),
			)
			img, err := m.Compile(app.Prog)
			if err != nil {
				return nil, err
			}
			res, err := m.Campaign(ctx, img, pssp.CampaignConfig{
				Replications: cfg.AttackReps,
				Workers:      cfg.Workers,
				Attack:       pssp.AttackConfig{BufLen: apps.VulnServerBufSize},
			})
			if err != nil {
				return nil, fmt.Errorf("effectiveness: %s/%v: %w", app.Name, scheme, err)
			}

			// Trials cell: median trials-to-success where the attack won,
			// mean trials spent per failed replication otherwise.
			trialsVal := float64(res.Trials) / float64(res.Completed)
			trialsCell := fmt.Sprintf("- (%.0f spent)", trialsVal)
			if res.Successes > 0 {
				trialsVal = res.TrialsToSuccess.Median
				trialsCell = fmt.Sprintf("%.0f", trialsVal)
			}
			verifiedCell := "-"
			if res.Successes > 0 {
				verifiedCell = fmt.Sprintf("%d/%d", res.VerifiedSuccesses, res.Successes)
			}
			t.Rows = append(t.Rows, []string{
				app.Name, scheme.String(),
				fmt.Sprintf("%d/%d", res.Successes, res.Completed),
				verifiedCell,
				trialsCell,
				fmt.Sprintf("%.3f", res.DetectionRate()),
				fmt.Sprintf("%d", res.Completed),
			})
			key := app.Name + "/" + scheme.String()
			t.set(key+"/success", res.SuccessRate())
			t.set(key+"/verified", float64(res.VerifiedSuccesses))
			t.set(key+"/trials", trialsVal)
			t.set(key+"/detection", res.DetectionRate())
			t.set(key+"/replications", float64(res.Completed))
		}
	}
	return t, nil
}
