package harness

import (
	"context"
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
)

// Figure5 reproduces the paper's Figure 5: per-SPEC-program runtime overhead
// of compiler-based and instrumentation-based P-SSP over native executions.
//
// "Native" is the default compilation, which ships with SSP enabled (the
// paper's baseline: -fstack-protector is a default option). The paper
// reports averages of 0.24% (compiler) and 1.01% (instrumentation).
func Figure5(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ctx := context.Background()
	native, err := specCycles(ctx, cfg, core.SchemeSSP)
	if err != nil {
		return nil, err
	}
	compiler, err := specCycles(ctx, cfg, core.SchemePSSP)
	if err != nil {
		return nil, err
	}
	instr, err := instrumentedSpecCycles(ctx, cfg)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Figure 5: Runtime overhead of P-SSP against native executions (SPEC CPU2006 analogs)",
		Header: []string{"program", "native cycles", "compiler P-SSP", "instrumented P-SSP"},
		Notes: []string{
			"paper: compiler-based avg 0.24%, instrumentation-based avg 1.01%",
			"native = default compilation (SSP enabled), as on the paper's testbed",
		},
	}

	var sumC, sumI float64
	for _, app := range apps.Spec() {
		name := app.Name
		oc := overheadVs(compiler[name], native[name])
		oi := overheadVs(instr[name], native[name])
		sumC += oc
		sumI += oi
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", native[name]), pct(oc), pct(oi),
		})
		t.set(name+"/compiler", oc)
		t.set(name+"/instrumented", oi)
	}
	n := float64(len(apps.Spec()))
	avgC, avgI := sumC/n, sumI/n
	t.Rows = append(t.Rows, []string{"average", "", pct(avgC), pct(avgI)})
	t.set("average/compiler", avgC)
	t.set("average/instrumented", avgI)
	return t, nil
}
