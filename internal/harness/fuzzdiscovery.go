package harness

import (
	"context"
	"fmt"

	"repro/internal/apps"
	"repro/pssp"
)

// FuzzDiscovery closes the loop the paper's threat model leaves open: every
// attack experiment assumes the stack-buffer overflow's location is known a
// priori. This driver *discovers* it — a coverage-guided fuzzing run against
// each vulnerable server analog compiled with SSP (so the canary classifies
// the overflow) — and then proves the handoff by driving a byte-by-byte
// campaign against the unprotected build of the same server using only the
// fuzzer's finding (pssp.FindingAttack). Reported per app: executions and
// virtual time to first crash, the deduplicated crash set, the coverage
// frontier, the recovered buffer length, and the bridged campaign's success
// rate.
func FuzzDiscovery(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ctx := context.Background()
	t := &Table{
		Title: "Fuzz discovery: coverage-guided overflow discovery + fuzz->attack handoff (extension)",
		Header: []string{
			"server", "execs", "to-discovery", "discovery µs", "unique", "edges",
			"buflen", "bridge success",
		},
		Notes: []string{
			"victims compiled with ssp so the canary classifies the overflow; findings are minimized to the shortest crashing input",
			fmt.Sprintf("budget %d mutation execs over 4 shards per app; reports are seed-deterministic at any worker count", cfg.FuzzExecs),
			"buflen = minimized length - 1, handed to a byte-by-byte campaign against the none-scheme build via pssp.FindingAttack",
			fmt.Sprintf("bridge campaigns: %d replications, trial budget %d", cfg.AttackReps, cfg.AttackBudget),
		},
	}
	for i, app := range apps.VulnServers() {
		m := cfg.machine(
			pssp.WithSeed(cfg.Seed+uint64(i)),
			pssp.WithScheme(pssp.SchemeSSP),
		)
		img, err := m.CompileApp(app.Name)
		if err != nil {
			return nil, err
		}
		rep, err := m.Fuzz(ctx, img, pssp.FuzzConfig{
			Execs:   cfg.FuzzExecs,
			Shards:  4,
			Workers: cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("fuzzdiscovery: %s: %w", app.Name, err)
		}
		var overflow *pssp.FuzzFinding
		for j := range rep.Findings {
			if rep.Findings[j].Detected {
				overflow = &rep.Findings[j]
				break
			}
		}
		if overflow == nil {
			return nil, fmt.Errorf("fuzzdiscovery: %s: no canary-detected finding in %d execs", app.Name, rep.Execs)
		}

		// The handoff: campaign the discovered frame against the build with
		// no protection at all. The tight instruction budget keeps workers
		// that wander off a corrupted frame from stalling the oracle.
		none := cfg.machine(
			pssp.WithSeed(cfg.Seed+uint64(i)),
			pssp.WithScheme(pssp.SchemeNone),
			pssp.WithAttackBudget(cfg.AttackBudget),
			pssp.WithMaxInstructions(4<<20),
		)
		noneImg, err := none.CompileApp(app.Name)
		if err != nil {
			return nil, err
		}
		camp, err := none.Campaign(ctx, noneImg, pssp.CampaignConfig{
			Replications: cfg.AttackReps,
			Workers:      cfg.Workers,
			Attack:       pssp.FindingAttack(*overflow),
		})
		if err != nil {
			return nil, fmt.Errorf("fuzzdiscovery: %s: bridged campaign: %w", app.Name, err)
		}

		discoveryUs := float64(overflow.Cycles) / CyclesPerMicrosecond
		t.Rows = append(t.Rows, []string{
			app.Name,
			fmt.Sprintf("%d", rep.Execs),
			fmt.Sprintf("%d", rep.ExecsToFirstCrash),
			fmt.Sprintf("%.1f", discoveryUs),
			fmt.Sprintf("%d", len(rep.Findings)),
			fmt.Sprintf("%d", rep.Edges),
			fmt.Sprintf("%d", overflow.OverflowLen()),
			fmt.Sprintf("%d/%d", camp.Successes, camp.Completed),
		})
		t.set(app.Name+"/execs", float64(rep.Execs))
		t.set(app.Name+"/to_discovery", float64(rep.ExecsToFirstCrash))
		t.set(app.Name+"/discovery_us", discoveryUs)
		t.set(app.Name+"/unique_crashes", float64(len(rep.Findings)))
		t.set(app.Name+"/edges", float64(rep.Edges))
		t.set(app.Name+"/buflen", float64(overflow.OverflowLen()))
		t.set(app.Name+"/bridge_success", camp.SuccessRate())
	}
	return t, nil
}
