package harness

import (
	"reflect"
	"testing"
)

func TestFuzzDiscoveryFindsEveryOverflow(t *testing.T) {
	cfg := Config{FuzzExecs: 384, AttackReps: 1, AttackBudget: 2048}
	a, err := FuzzDiscovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FuzzDiscovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("FuzzDiscovery is not deterministic for a fixed config")
	}
	if len(a.Rows) != 2 { // nginx-vuln, ali-vuln
		t.Fatalf("rows %d, want 2", len(a.Rows))
	}
	for _, app := range []string{"nginx-vuln", "ali-vuln"} {
		if got := a.Values[app+"/buflen"]; got != 16 {
			t.Errorf("%s: recovered buflen %v, want 16", app, got)
		}
		if got := a.Values[app+"/to_discovery"]; got <= 0 {
			t.Errorf("%s: execs-to-discovery %v, want > 0", app, got)
		}
		if got := a.Values[app+"/bridge_success"]; got != 1 {
			t.Errorf("%s: bridged campaign success rate %v, want 1", app, got)
		}
		if got := a.Values[app+"/edges"]; got <= 0 {
			t.Errorf("%s: edge count %v, want > 0", app, got)
		}
	}
}
