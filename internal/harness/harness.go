// Package harness drives the paper's evaluation: one driver per table and
// figure (Table I–V, Figure 5, the §VI-C effectiveness and compatibility
// experiments, and the Figure 6 global-buffer variant), each returning a
// renderable text table plus machine-readable values for assertions and
// benchmarks.
//
// Cycle counts come from the VM's calibrated cost model; where the paper
// reports wall-clock times we convert at the 3.5 GHz clock of its i7-4770K
// testbed. EXPERIMENTS.md records paper-vs-measured for every driver.
package harness

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/campaign"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/pssp"
)

// CyclesPerMicrosecond converts simulated cycles to microseconds at the
// paper's 3.5 GHz testbed clock (the facade's canonical constant).
const CyclesPerMicrosecond = pssp.CyclesPerMicrosecond

// Config scales the experiments. The zero value gives fast defaults suitable
// for `go test`; the psspbench CLI exposes flags to scale up.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// WebRequests per server for Table III (default 64).
	WebRequests int
	// DBQueries per database for Table IV (default 16).
	DBQueries int
	// AttackBudget bounds brute-force trials (default 4096).
	AttackBudget int
	// AttackReps is the number of independent attack-campaign replications
	// behind each security cell (default 2). Every replication attacks a
	// freshly derived victim machine; aggregates are seed-deterministic at
	// any worker count.
	AttackReps int
	// Workers bounds campaign concurrency (default: GOMAXPROCS). It scales
	// wall-clock time only, never results.
	Workers int
	// SpecRuns averages each SPEC measurement over this many runs
	// (default 1; measurements are deterministic per seed anyway).
	SpecRuns int
	// LoadRequests is the request budget of the under-load experiment
	// (default 96); LoadClients its closed-loop client population
	// (default 8). See UnderLoad.
	LoadRequests int
	LoadClients  int
	// FuzzExecs is the mutation budget of the fuzz-discovery experiment
	// (default 768). See FuzzDiscovery.
	FuzzExecs int
	// Engine selects the VM execution engine for every machine the drivers
	// build. The zero value is the default decode-once engine
	// (pssp.EnginePredecoded); pssp.EngineCompiled is the fast
	// block-lowered tier and pssp.EngineInterpreter the legacy reference.
	// The cross-engine golden tests run the full drivers under all three
	// and assert identical values, so the knob only changes wall-clock.
	Engine pssp.Engine
	// Store, when non-nil, routes every compile the drivers perform through
	// the content-addressed artifact store. Store hits are byte-identical to
	// cold compiles, so every table and report is store-hit-invariant — the
	// store-vs-cold golden tests assert exactly that.
	Store *pssp.Store
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 2018 // DSN'18
	}
	if c.WebRequests == 0 {
		c.WebRequests = 64
	}
	if c.DBQueries == 0 {
		c.DBQueries = 16
	}
	if c.AttackBudget == 0 {
		c.AttackBudget = 4096
	}
	if c.AttackReps == 0 {
		c.AttackReps = 2
	}
	if c.SpecRuns == 0 {
		c.SpecRuns = 1
	}
	if c.LoadRequests == 0 {
		c.LoadRequests = 96
	}
	if c.LoadClients == 0 {
		c.LoadClients = 8
	}
	if c.FuzzExecs == 0 {
		c.FuzzExecs = 768
	}
	return c
}

// Table is a renderable experiment result. The JSON tags are the CLIs'
// machine-readable shape (psspbench -json).
type Table struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
	// Values carries machine-readable results keyed by "row/column"-style
	// paths, for tests and benchmarks.
	Values map[string]float64 `json:"values,omitempty"`
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString(t.Title + "\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

func (t *Table) set(key string, v float64) {
	if t.Values == nil {
		t.Values = make(map[string]float64)
	}
	t.Values[key] = v
}

// machine builds a Machine under the config's execution engine plus the
// given options. Every driver constructs machines through it so one Config
// knob switches the whole evaluation between engines.
func (c Config) machine(opts ...pssp.Option) *pssp.Machine {
	return pssp.NewMachine(append([]pssp.Option{pssp.WithEngine(c.Engine), pssp.WithStore(c.Store)}, opts...)...)
}

// compileStatic compiles an IR program as a statically linked image.
func (c Config) compileStatic(prog *cc.Program, scheme core.Scheme) (*pssp.Image, error) {
	return pssp.NewMachine(pssp.WithScheme(scheme), pssp.WithStore(c.Store)).Compile(prog)
}

// runToExit runs the image to completion on a fresh machine, returning the
// cycle count.
func runToExit(ctx context.Context, cfg Config, img *pssp.Image) (uint64, error) {
	res, err := cfg.machine(pssp.WithSeed(cfg.Seed)).Run(ctx, img)
	if err != nil {
		return 0, fmt.Errorf("harness: %s: %w", img.Name(), err)
	}
	return res.Cycles, nil
}

// specSuiteCycles measures every SPEC analog on concurrent sessions — one
// Machine per program — with build supplying each program's image. ctx
// cancellation aborts the whole sweep.
func specSuiteCycles(ctx context.Context, cfg Config, build func(m *pssp.Machine, app apps.App) (*pssp.Image, error)) (map[string]uint64, error) {
	suite := apps.Spec()
	cycles := make([]uint64, len(suite))
	err := pssp.RunSessions(ctx, len(suite),
		func(int) []pssp.Option {
			return []pssp.Option{pssp.WithSeed(cfg.Seed), pssp.WithEngine(cfg.Engine), pssp.WithStore(cfg.Store)}
		},
		func(ctx context.Context, s *pssp.Session) error {
			app := suite[s.ID()]
			img, err := build(s.Machine(), app)
			if err != nil {
				return fmt.Errorf("harness: %s: %w", app.Name, err)
			}
			res, err := s.Machine().Run(ctx, img)
			if err != nil {
				return fmt.Errorf("harness: %s: %w", app.Name, err)
			}
			cycles[s.ID()] = res.Cycles
			return nil
		})
	if err != nil {
		return nil, err
	}
	out := make(map[string]uint64, len(suite))
	for i, app := range suite {
		out[app.Name] = cycles[i]
	}
	return out, nil
}

// specCycles measures every SPEC analog under the scheme.
func specCycles(ctx context.Context, cfg Config, scheme core.Scheme) (map[string]uint64, error) {
	return specSuiteCycles(ctx, cfg, func(m *pssp.Machine, app apps.App) (*pssp.Image, error) {
		return m.Compile(app.Prog, pssp.CompileScheme(scheme))
	})
}

// instrumentedSpecCycles measures every SPEC analog compiled with SSP and
// upgraded by the binary rewriter.
func instrumentedSpecCycles(ctx context.Context, cfg Config) (map[string]uint64, error) {
	return specSuiteCycles(ctx, cfg, func(m *pssp.Machine, app apps.App) (*pssp.Image, error) {
		return m.Pipeline().
			Compile(app.Prog, pssp.CompileScheme(core.SchemeSSP)).
			Rewrite().
			Image()
	})
}

// pct formats a ratio as a signed percentage.
func pct(v float64) string { return fmt.Sprintf("%+.2f%%", v*100) }

// overheadVs returns (got-base)/base.
func overheadVs(got, base uint64) float64 {
	if base == 0 {
		return 0
	}
	return float64(got)/float64(base) - 1
}

// serverStats measures the benign-load campaign of the paper's performance
// tables: n replications of one request against the server image on machine
// m, folded by the campaign engine into average request cycles plus the
// worker memory footprint in bytes. The server is shared state, so the
// campaign runs on a single worker — the request sequence (and therefore
// every golden cycle count) is identical to the historical sequential loop.
func serverStats(ctx context.Context, m *pssp.Machine, img *pssp.Image, request []byte, n int) (float64, int, error) {
	srv, err := m.Serve(ctx, img)
	if err != nil {
		return 0, 0, err
	}
	footprint := srv.Footprint()
	agg, err := campaign.Run(ctx, campaign.Config{
		Label:        "benign-load",
		Replications: n,
		Workers:      1, // shared fork server: replications must serialize
	}, func(ctx context.Context, rep int, _ *rng.Source) (campaign.Outcome, error) {
		resp, err := srv.Handle(ctx, request)
		if err != nil {
			return campaign.Outcome{}, err
		}
		if resp.Crashed() {
			return campaign.Outcome{}, fmt.Errorf("harness: benign request crashed: %w", resp.Err)
		}
		return campaign.Outcome{
			Success: true, FailedAt: -1,
			OracleCalls: 1,
			Cycles:      resp.Cycles, Insts: resp.Insts,
			Mem: footprint,
		}, nil
	})
	if err != nil {
		return 0, 0, err
	}
	return agg.AvgCycles(), footprint, nil
}
