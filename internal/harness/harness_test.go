package harness

import (
	"strings"
	"testing"
)

// fastCfg keeps tests quick; drivers are deterministic per seed.
var fastCfg = Config{Seed: 99, WebRequests: 12, DBQueries: 6, AttackBudget: 3000}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	tab, err := Table1(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	v := tab.Values
	// Table I's qualitative content, all measured here.
	cases := []struct {
		key  string
		want float64
	}{
		{"ssp/brop", 0}, {"ssp/correct", 1},
		{"raf-ssp/brop", 1}, {"raf-ssp/correct", 0},
		{"dynaguard/brop", 1}, {"dynaguard/correct", 1},
		{"dcr/brop", 1}, {"dcr/correct", 1},
		{"p-ssp/brop", 1}, {"p-ssp/correct", 1},
	}
	for _, c := range cases {
		if got, ok := v[c.key]; !ok || got != c.want {
			t.Errorf("%s = %v (ok=%v), want %v", c.key, got, ok, c.want)
		}
	}
	// P-SSP must be the cheapest BROP-resistant+correct scheme.
	pssp := v["p-ssp/overhead/compiler"]
	if pssp >= v["dynaguard/overhead/compiler"] {
		t.Errorf("p-ssp overhead %.4f >= dynaguard %.4f", pssp, v["dynaguard/overhead/compiler"])
	}
	if pssp >= v["dcr/overhead/compiler"] {
		t.Errorf("p-ssp overhead %.4f >= dcr %.4f", pssp, v["dcr/overhead/compiler"])
	}
	if r := tab.Render(); !strings.Contains(r, "p-ssp") || !strings.Contains(r, "Yes") {
		t.Error("render looks wrong")
	}
}

func TestFigure5ShapeMatchesPaper(t *testing.T) {
	tab, err := Figure5(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	avgC := tab.Values["average/compiler"]
	avgI := tab.Values["average/instrumented"]
	// Paper: 0.24% compiler, 1.01% instrumentation. We require the shape:
	// both small, instrumentation costlier than compilation.
	if avgC <= 0 || avgC > 0.02 {
		t.Errorf("compiler avg overhead %.4f outside (0, 2%%]", avgC)
	}
	if avgI <= avgC {
		t.Errorf("instrumented avg %.4f not above compiler avg %.4f", avgI, avgC)
	}
	if avgI > 0.05 {
		t.Errorf("instrumented avg overhead %.4f implausibly high", avgI)
	}
	// Call-heavy perlbench must pay more than loop-heavy libquantum.
	if tab.Values["400.perlbench/compiler"] <= tab.Values["462.libquantum/compiler"] {
		t.Error("call-heavy program not costlier than loop-heavy one")
	}
	if len(tab.Rows) != 29 { // 28 programs + average
		t.Errorf("%d rows", len(tab.Rows))
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	tab, err := Table2(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	comp := tab.Values["compilation"]
	dyn := tab.Values["instrumentation/dynamic"]
	static := tab.Values["instrumentation/static"]
	if comp <= 0 || comp > 0.05 {
		t.Errorf("compilation expansion %.4f outside (0, 5%%]", comp)
	}
	if dyn != 0 {
		t.Errorf("dynamic instrumentation expansion %.4f, want exactly 0", dyn)
	}
	if static <= dyn || static > 0.30 {
		t.Errorf("static expansion %.4f implausible", static)
	}
}

func TestTable3NegligibleServerOverhead(t *testing.T) {
	tab, err := Table3(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, srv := range []string{"apache2", "nginx"} {
		native := tab.Values[srv+"/native"]
		for _, setting := range []string{"compiler", "instrumented"} {
			got := tab.Values[srv+"/"+setting]
			if over := got/native - 1; over < -0.001 || over > 0.05 {
				t.Errorf("%s %s overhead %.4f outside [0, 5%%]", srv, setting, over)
			}
		}
	}
	// Apache analog heavier than nginx analog, as in the paper's table.
	if tab.Values["apache2/native"] <= tab.Values["nginx/native"] {
		t.Error("apache2 not heavier than nginx")
	}
}

func TestTable4DatabasesAndMemory(t *testing.T) {
	tab, err := Table4(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	// SQLite far heavier per query (167ms vs 3.3ms shape).
	if tab.Values["sqlite/native"] < 10*tab.Values["mysql/native"] {
		t.Error("sqlite/mysql ratio too small")
	}
	for _, db := range []string{"mysql", "sqlite"} {
		native := tab.Values[db+"/native"]
		comp := tab.Values[db+"/compiler"]
		if over := comp/native - 1; over < -0.001 || over > 0.05 {
			t.Errorf("%s compiler overhead %.4f", db, over)
		}
		// Memory essentially unchanged (paper: identical MB readings).
		memN := tab.Values[db+"/mem/native"]
		memI := tab.Values[db+"/mem/instrumented"]
		if memI < memN || memI > memN*1.01 {
			t.Errorf("%s memory native %.0f vs instrumented %.0f", db, memN, memI)
		}
	}
}

func TestTable5ShapeMatchesPaper(t *testing.T) {
	tab, err := Table5(fastCfg, false)
	if err != nil {
		t.Fatal(err)
	}
	v := tab.Values
	pssp := v["p-ssp"]
	nt := v["p-ssp-nt"]
	lv2 := v["p-ssp-lv (2 vars)"]
	lv4 := v["p-ssp-lv (4 vars)"]
	owf := v["p-ssp-owf"]

	// Paper: 6 / 343 / 343 / 986 / 278.
	if pssp == 0 || pssp > 30 {
		t.Errorf("p-ssp delta %v, want small (paper: 6)", pssp)
	}
	if nt < 300 || nt > 400 {
		t.Errorf("p-ssp-nt delta %v, want ~343", nt)
	}
	if lv2 < nt-30 || lv2 > nt+30 {
		t.Errorf("lv(2 vars) %v should be close to nt %v (one rdrand each)", lv2, nt)
	}
	if lv4 < 2.5*lv2 || lv4 > 3.5*lv2 {
		t.Errorf("lv(4 vars) %v not ~3x lv(2 vars) %v", lv4, lv2)
	}
	if owf < 200 || owf >= nt {
		t.Errorf("owf %v, want ~278 and below nt %v", owf, nt)
	}
}

func TestTable5Sweep(t *testing.T) {
	tab, err := Table5(fastCfg, true)
	if err != nil {
		t.Fatal(err)
	}
	// Monotone in the number of criticals: each extra canary costs one more
	// rdrand.
	var prev float64
	for v := 1; v <= 8; v++ {
		key := "p-ssp-lv sweep " + string(rune('0'+v)) + " criticals"
		cur, ok := tab.Values[key]
		if !ok {
			t.Fatalf("missing sweep value %q", key)
		}
		if v > 1 && cur <= prev {
			t.Errorf("sweep not monotone at %d criticals: %v <= %v", v, cur, prev)
		}
		prev = cur
	}
}

func TestEffectivenessMatchesPaper(t *testing.T) {
	tab, err := Effectiveness(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, srv := range []string{"nginx-vuln", "ali-vuln"} {
		if tab.Values[srv+"/ssp/success"] != 1 {
			t.Errorf("%s: attack on SSP did not succeed", srv)
		}
		trials := tab.Values[srv+"/ssp/trials"]
		if trials < 8 || trials > 2048 {
			t.Errorf("%s: SSP attack trials %v outside byte-by-byte range", srv, trials)
		}
		if tab.Values[srv+"/p-ssp/success"] != 0 {
			t.Errorf("%s: attack on P-SSP succeeded", srv)
		}
	}
}

func TestCompatibilityMatrixClean(t *testing.T) {
	tab, err := Compatibility(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"ssp+ssp", "ssp+p-ssp", "p-ssp+ssp", "p-ssp+p-ssp"} {
		if fp := tab.Values[k+"/falsepositives"]; fp != 0 {
			t.Errorf("%s: %v false positives", k, fp)
		}
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func TestGlobalBufferVariant(t *testing.T) {
	tab, err := GlobalBuffer(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Values["layoutPreserved"] != 1 {
		t.Error("GB variant does not preserve the SSP stack layout")
	}
	if tab.Values["correct"] != 1 {
		t.Error("GB variant incorrect across fork")
	}
	if tab.Values["brop"] != 1 {
		t.Error("GB variant does not prevent BROP")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"xxx", "y"}},
		Notes:  []string{"n1"},
	}
	r := tab.Render()
	for _, want := range []string{"T\n", "a", "bb", "xxx", "note: n1"} {
		if !strings.Contains(r, want) {
			t.Errorf("render missing %q:\n%s", want, r)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed == 0 || c.WebRequests == 0 || c.DBQueries == 0 || c.AttackBudget == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
}
