package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/pssp"
)

// TestTablesStoreHitInvariant runs every table driver cold and then twice
// against one artifact store — the second store pass serving every compile
// from cache — and asserts the rendered tables and JSON values are
// byte-identical. This is the paper-facing face of the store's bit-identity
// contract: caching compiled images must never move a single cell of
// Table I–V.
func TestTablesStoreHitInvariant(t *testing.T) {
	drivers := []struct {
		name string
		run  func(Config) (*Table, error)
	}{
		{"table1", Table1},
		{"table2", Table2},
		{"table3", Table3},
		{"table4", Table4},
		{"table5", func(c Config) (*Table, error) { return Table5(c, false) }},
	}

	st, err := pssp.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	encode := func(cfg Config, run func(Config) (*Table, error)) []byte {
		t.Helper()
		tab, err := run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		j, err := json.Marshal(tab)
		if err != nil {
			t.Fatal(err)
		}
		return append(j, tab.Render()...)
	}

	for _, d := range drivers {
		t.Run(d.name, func(t *testing.T) {
			cold := encode(fastCfg, d.run)
			withStore := fastCfg
			withStore.Store = st
			// First store pass populates, second must serve hits only; both
			// must match the cold run bit for bit.
			populate := encode(withStore, d.run)
			before := st.Stats()
			hits := encode(withStore, d.run)
			after := st.Stats()
			if !bytes.Equal(populate, cold) {
				t.Errorf("store-populate run diverged from cold run:\n%s\nvs\n%s", populate, cold)
			}
			if !bytes.Equal(hits, cold) {
				t.Errorf("store-hit run diverged from cold run:\n%s\nvs\n%s", hits, cold)
			}
			if after.Misses != before.Misses {
				t.Errorf("second store pass compiled %d time(s); every image should already be cached",
					after.Misses-before.Misses)
			}
			if after.Hits == before.Hits {
				t.Error("second store pass never hit the store")
			}
		})
	}
	t.Run("stats", func(t *testing.T) {
		s := st.Stats()
		if s.Misses == 0 || s.Hits == 0 {
			t.Fatalf("store saw no traffic: %+v", s)
		}
		t.Log(fmt.Sprintf("store traffic across tables: %+v", s))
	})
}
