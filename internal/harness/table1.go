package harness

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/kernel"
)

// Table1 reproduces the paper's Table I: the brute-force-defence comparison
// of SSP, RAF-SSP, DynaGuard, DCR and P-SSP. Unlike the paper — which cites
// the other tools' published numbers — every cell here is measured by
// running the actual scheme in the simulator:
//
//   - BROP prevention: the byte-by-byte attack is run against a vulnerable
//     fork server compiled with the scheme; "Yes" means the attack failed
//     within the trial budget.
//   - Correctness: a forked child must return through stack frames created
//     by its parent without a false positive.
//   - Runtime overhead (compiler-based): SPEC-analog average versus the SSP
//     baseline.
func Table1(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	baseline, err := specCycles(cfg, core.SchemeSSP)
	if err != nil {
		return nil, err
	}
	instr, err := instrumentedSpecCycles(cfg)
	if err != nil {
		return nil, err
	}
	var instrAvg float64
	for name, c := range instr {
		instrAvg += overheadVs(c, baseline[name])
	}
	instrAvg /= float64(len(instr))

	t := &Table{
		Title: "Table I: Comparison of brute force attack defence tools (all cells measured)",
		Header: []string{
			"defence", "BROP prevention", "correctness",
			"overhead (compiler)", "overhead (instrumentation)",
		},
		Notes: []string{
			"paper: DynaGuard 1.5% compiler / 156% PIN-based; DCR >24% static instrumentation",
			"instrumentation overhead measured only for P-SSP (this repo's rewriter); others n/a",
			fmt.Sprintf("attack budget %d trials; SSP expected to fall in ~1024", cfg.AttackBudget),
		},
	}

	schemes := []core.Scheme{
		core.SchemeSSP, core.SchemeRAFSSP, core.SchemeDynaGuard,
		core.SchemeDCR, core.SchemePSSP,
	}
	for _, s := range schemes {
		brop, correct, err := measureSecurityProfile(cfg, s)
		if err != nil {
			return nil, fmt.Errorf("table1: %v: %w", s, err)
		}
		var overhead string
		switch s {
		case core.SchemeSSP:
			overhead = "baseline"
		default:
			cycles, err := specCycles(cfg, s)
			if err != nil {
				return nil, err
			}
			var sum float64
			for name, c := range cycles {
				sum += overheadVs(c, baseline[name])
			}
			avg := sum / float64(len(cycles))
			overhead = pct(avg)
			t.set(s.String()+"/overhead/compiler", avg)
		}
		instrCell := "n/a"
		if s == core.SchemePSSP {
			instrCell = pct(instrAvg)
			t.set("p-ssp/overhead/instrumentation", instrAvg)
		}
		t.Rows = append(t.Rows, []string{
			s.String(), yesNo(brop), yesNo(correct), overhead, instrCell,
		})
		t.set(s.String()+"/brop", boolToF(brop))
		t.set(s.String()+"/correct", boolToF(correct))
	}
	return t, nil
}

// measureSecurityProfile runs the two security experiments for one scheme.
func measureSecurityProfile(cfg Config, s core.Scheme) (bropPrevented, correct bool, err error) {
	target := apps.VulnServers()[0] // nginx-vuln
	bin, err := compileStatic(target.Prog, s)
	if err != nil {
		return false, false, err
	}

	// Correctness: benign requests must survive the child's return through
	// inherited frames.
	k := kernel.New(cfg.Seed + 1)
	srv, err := kernel.NewForkServer(k, bin, kernel.SpawnOpts{})
	if err != nil {
		return false, false, err
	}
	correct = true
	for i := 0; i < 5; i++ {
		out, err := srv.Handle(target.Request)
		if err != nil {
			return false, false, err
		}
		if out.Crashed {
			correct = false
			break
		}
	}

	// BROP prevention: fresh server, full byte-by-byte attack.
	k2 := kernel.New(cfg.Seed + 2)
	srv2, err := kernel.NewForkServer(k2, bin, kernel.SpawnOpts{})
	if err != nil {
		return false, false, err
	}
	res, err := attack.ByteByByte(&attack.ServerOracle{Srv: srv2}, attack.Config{
		BufLen:    apps.VulnServerBufSize,
		MaxTrials: cfg.AttackBudget,
	})
	if err != nil {
		return false, false, err
	}
	return !res.Success, correct, nil
}

func yesNo(b bool) string {
	if b {
		return "Yes"
	}
	return "No"
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
