package harness

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/apps"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/pssp"
)

// Table1 reproduces the paper's Table I: the brute-force-defence comparison
// of SSP, RAF-SSP, DynaGuard, DCR and P-SSP. Unlike the paper — which cites
// the other tools' published numbers — every cell here is measured by
// running the actual scheme in the simulator:
//
//   - BROP prevention: the byte-by-byte attack is run against a vulnerable
//     fork server compiled with the scheme; "Yes" means the attack failed
//     within the trial budget.
//   - Correctness: a forked child must return through stack frames created
//     by its parent without a false positive.
//   - Runtime overhead (compiler-based): SPEC-analog average versus the SSP
//     baseline.
//
// The five schemes are measured concurrently. The measurement machines are
// constructed inside measureSecurityProfile and specCycles from fixed
// per-purpose seeds, so the parallel run is bit-identical to a sequential
// one.
func Table1(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ctx := context.Background()
	baseline, err := specCycles(ctx, cfg, core.SchemeSSP)
	if err != nil {
		return nil, err
	}
	instr, err := instrumentedSpecCycles(ctx, cfg)
	if err != nil {
		return nil, err
	}
	var instrAvg float64
	for name, c := range instr {
		instrAvg += overheadVs(c, baseline[name])
	}
	instrAvg /= float64(len(instr))

	t := &Table{
		Title: "Table I: Comparison of brute force attack defence tools (all cells measured)",
		Header: []string{
			"defence", "BROP prevention", "correctness",
			"overhead (compiler)", "overhead (instrumentation)",
		},
		Notes: []string{
			"paper: DynaGuard 1.5% compiler / 156% PIN-based; DCR >24% static instrumentation",
			"instrumentation overhead measured only for P-SSP (this repo's rewriter); others n/a",
			fmt.Sprintf("attack budget %d trials; SSP expected to fall in ~1024", cfg.AttackBudget),
		},
	}

	schemes := []core.Scheme{
		core.SchemeSSP, core.SchemeRAFSSP, core.SchemeDynaGuard,
		core.SchemeDCR, core.SchemePSSP,
	}
	// Plain parallel-for: the per-scheme measurements build their own
	// deterministic Machines, so no session state is needed — only a ctx
	// that cancels the siblings (and their nested SPEC sweeps) on the
	// first failure.
	type row struct {
		brop, correct bool
		overhead      float64 // compiler overhead vs SSP (unused for SSP itself)
	}
	rows := make([]row, len(schemes))
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i, s := range schemes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := func() (row, error) {
				brop, correct, err := measureSecurityProfile(gctx, cfg, s)
				if err != nil {
					return row{}, fmt.Errorf("table1: %v: %w", s, err)
				}
				r := row{brop: brop, correct: correct}
				if s != core.SchemeSSP {
					cycles, err := specCycles(gctx, cfg, s)
					if err != nil {
						return row{}, err
					}
					var sum float64
					for name, c := range cycles {
						sum += overheadVs(c, baseline[name])
					}
					r.overhead = sum / float64(len(cycles))
				}
				return r, nil
			}()
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				mu.Unlock()
				return
			}
			rows[i] = r
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	for i, s := range schemes {
		r := rows[i]
		overhead := "baseline"
		if s != core.SchemeSSP {
			overhead = pct(r.overhead)
			t.set(s.String()+"/overhead/compiler", r.overhead)
		}
		instrCell := "n/a"
		if s == core.SchemePSSP {
			instrCell = pct(instrAvg)
			t.set("p-ssp/overhead/instrumentation", instrAvg)
		}
		t.Rows = append(t.Rows, []string{
			s.String(), yesNo(r.brop), yesNo(r.correct), overhead, instrCell,
		})
		t.set(s.String()+"/brop", boolToF(r.brop))
		t.set(s.String()+"/correct", boolToF(r.correct))
	}
	return t, nil
}

// measureSecurityProfile runs the two security experiments for one scheme,
// both as campaigns: a benign-load campaign on a shared server for the
// correctness cell, and a replicated byte-by-byte attack campaign for the
// BROP cell ("prevented" means no replication recovered a canary).
func measureSecurityProfile(ctx context.Context, cfg Config, s core.Scheme) (bropPrevented, correct bool, err error) {
	target := apps.VulnServers()[0] // nginx-vuln
	img, err := cfg.compileStatic(target.Prog, s)
	if err != nil {
		return false, false, err
	}

	// Correctness: benign requests must survive the child's return through
	// inherited frames. The server is shared, so the campaign serializes.
	m := cfg.machine(pssp.WithSeed(cfg.Seed + 1))
	srv, err := m.Serve(ctx, img)
	if err != nil {
		return false, false, err
	}
	benign, err := campaign.Run(ctx, campaign.Config{
		Label:        "correctness",
		Replications: 5,
		Workers:      1,
	}, func(ctx context.Context, rep int, _ *rng.Source) (campaign.Outcome, error) {
		resp, err := srv.Handle(ctx, target.Request)
		if err != nil {
			return campaign.Outcome{}, err
		}
		return campaign.Outcome{Success: !resp.Crashed(), OracleCalls: 1, Cycles: resp.Cycles}, nil
	})
	if err != nil {
		return false, false, err
	}
	correct = benign.Successes == benign.Completed

	// BROP prevention: replicated byte-by-byte campaign against fresh
	// victims derived from the attack machine's seed.
	m2 := cfg.machine(pssp.WithSeed(cfg.Seed+2), pssp.WithAttackBudget(cfg.AttackBudget))
	res, err := m2.Campaign(ctx, img, pssp.CampaignConfig{
		Replications: cfg.AttackReps,
		Workers:      cfg.Workers,
		Attack:       pssp.AttackConfig{BufLen: apps.VulnServerBufSize},
	})
	if err != nil {
		return false, false, err
	}
	return res.Successes == 0, correct, nil
}

func yesNo(b bool) string {
	if b {
		return "Yes"
	}
	return "No"
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
