package harness

import (
	"repro/internal/apps"
	"repro/internal/core"
	"repro/pssp"
)

// Table2 reproduces the paper's Table II: code expansion of the three P-SSP
// deployment paths, averaged over the SPEC-analog suite.
//
//   - Compilation: P-SSP-compiled binaries vs SSP-compiled binaries
//     (paper: 0.27%).
//   - Instrumentation, dynamic linkage: the rewriter patches the app image
//     strictly in place; expansion must be exactly 0 (paper: 0).
//   - Instrumentation, static linkage: the rewriter appends the checker and
//     shadow-refresh functions — the analog of the two new glibc functions
//     Dyninst injects (paper: 2.78%).
func Table2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	m := cfg.machine()
	sspLibc, err := m.CompileLibc(core.SchemeSSP)
	if err != nil {
		return nil, err
	}

	var sumCompile, sumDyn, sumStatic float64
	n := 0
	for _, app := range apps.Spec() {
		sspStatic, err := m.Compile(app.Prog, pssp.CompileScheme(core.SchemeSSP))
		if err != nil {
			return nil, err
		}
		psspStatic, err := m.Compile(app.Prog, pssp.CompileScheme(core.SchemePSSP))
		if err != nil {
			return nil, err
		}
		sumCompile += float64(psspStatic.CodeSize())/float64(sspStatic.CodeSize()) - 1

		sspDyn, err := m.Compile(app.Prog,
			pssp.CompileScheme(core.SchemeSSP), pssp.CompileDynamic(sspLibc))
		if err != nil {
			return nil, err
		}
		instrDyn, _, err := pssp.Rewrite(sspDyn, sspLibc)
		if err != nil {
			return nil, err
		}
		sumDyn += float64(instrDyn.CodeSize())/float64(sspDyn.CodeSize()) - 1

		instrStatic, _, err := pssp.Rewrite(sspStatic, nil)
		if err != nil {
			return nil, err
		}
		sumStatic += float64(instrStatic.CodeSize())/float64(sspStatic.CodeSize()) - 1
		n++
	}

	avgCompile := sumCompile / float64(n)
	avgDyn := sumDyn / float64(n)
	avgStatic := sumStatic / float64(n)

	t := &Table{
		Title:  "Table II: Code expansion rate by different P-SSP implementations",
		Header: []string{"compilation", "instrumentation (dynamic link)", "instrumentation (static link)"},
		Rows: [][]string{{
			pct(avgCompile), pct(avgDyn), pct(avgStatic),
		}},
		Notes: []string{
			"paper: 0.27% / 0 / 2.78% (static growth = two new glibc functions)",
		},
	}
	t.set("compilation", avgCompile)
	t.set("instrumentation/dynamic", avgDyn)
	t.set("instrumentation/static", avgStatic)
	return t, nil
}
