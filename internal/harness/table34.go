package harness

import (
	"context"
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/pssp"
)

// threeWayServer measures one server app under the paper's three settings:
// native (SSP default), compiler-based P-SSP, and instrumentation-based
// P-SSP. It returns average request cycles and the worker memory footprint
// for each. The three settings run on concurrent sessions, one Machine
// each; the seeds match the sequential formulation so results are
// bit-identical.
func threeWayServer(cfg Config, app apps.App, requests int) (avg [3]float64, mem [3]int, err error) {
	builds := [3]func(m *pssp.Machine) (*pssp.Image, error){
		func(m *pssp.Machine) (*pssp.Image, error) {
			return m.Compile(app.Prog, pssp.CompileScheme(core.SchemeSSP))
		},
		func(m *pssp.Machine) (*pssp.Image, error) {
			return m.Compile(app.Prog, pssp.CompileScheme(core.SchemePSSP))
		},
		func(m *pssp.Machine) (*pssp.Image, error) {
			return m.Pipeline().
				Compile(app.Prog, pssp.CompileScheme(core.SchemeSSP)).
				Rewrite().
				Image()
		},
	}
	err = pssp.RunSessions(context.Background(), len(builds),
		func(i int) []pssp.Option {
			return []pssp.Option{pssp.WithSeed(cfg.Seed + uint64(i)), pssp.WithEngine(cfg.Engine), pssp.WithStore(cfg.Store)}
		},
		func(ctx context.Context, s *pssp.Session) error {
			i := s.ID()
			img, err := builds[i](s.Machine())
			if err != nil {
				return err
			}
			a, m, err := serverStats(ctx, s.Machine(), img, app.Request, requests)
			if err != nil {
				return fmt.Errorf("%s setting %d: %w", app.Name, i, err)
			}
			avg[i], mem[i] = a, m
			return nil
		})
	return avg, mem, err
}

// Table3 reproduces the paper's Table III: web-server response time under
// native, compiler-based P-SSP and instrumentation-based P-SSP. The paper
// stresses Apache2/Nginx with ApacheBench (100k requests); we measure
// per-request worker CPU time (µs at the testbed's 3.5 GHz), the component
// the canary scheme can affect.
func Table3(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Table III: P-SSP's performance impact on web servers (avg per-request CPU µs)",
		Header: []string{"server", "native", "compiler P-SSP", "instrumented P-SSP"},
		Notes: []string{
			"paper (ms incl. network): apache2 33.006/33.008/33.099, nginx 3.088/3.090/3.088",
			fmt.Sprintf("measured over %d requests/server", cfg.WebRequests),
		},
	}
	for _, app := range apps.WebServers() {
		avg, _, err := threeWayServer(cfg, app, cfg.WebRequests)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			app.Name,
			fmt.Sprintf("%.3f", avg[0]/CyclesPerMicrosecond),
			fmt.Sprintf("%.3f", avg[1]/CyclesPerMicrosecond),
			fmt.Sprintf("%.3f", avg[2]/CyclesPerMicrosecond),
		})
		t.set(app.Name+"/native", avg[0])
		t.set(app.Name+"/compiler", avg[1])
		t.set(app.Name+"/instrumented", avg[2])
	}
	return t, nil
}

// Table4 reproduces the paper's Table IV: database query time and memory
// usage under the same three settings.
func Table4(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title: "Table IV: P-SSP's performance impact on database servers",
		Header: []string{
			"db", "native µs", "native KB", "compiler µs", "compiler KB",
			"instrumented µs", "instrumented KB",
		},
		Notes: []string{
			"paper: MySQL 3.33ms/22.59MB and SQLite 167.27ms/20.58MB, unchanged across settings",
			fmt.Sprintf("measured over %d queries/db", cfg.DBQueries),
		},
	}
	for _, app := range apps.Databases() {
		avg, mem, err := threeWayServer(cfg, app, cfg.DBQueries)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			app.Name,
			fmt.Sprintf("%.2f", avg[0]/CyclesPerMicrosecond),
			fmt.Sprintf("%.1f", float64(mem[0])/1024),
			fmt.Sprintf("%.2f", avg[1]/CyclesPerMicrosecond),
			fmt.Sprintf("%.1f", float64(mem[1])/1024),
			fmt.Sprintf("%.2f", avg[2]/CyclesPerMicrosecond),
			fmt.Sprintf("%.1f", float64(mem[2])/1024),
		})
		t.set(app.Name+"/native", avg[0])
		t.set(app.Name+"/compiler", avg[1])
		t.set(app.Name+"/instrumented", avg[2])
		t.set(app.Name+"/mem/native", float64(mem[0]))
		t.set(app.Name+"/mem/instrumented", float64(mem[2]))
	}
	return t, nil
}
