package harness

import (
	"context"
	"fmt"

	"repro/internal/cc"
	"repro/internal/core"
)

// probeProgram builds a minimal program whose main calls one protected
// function once; criticals controls how many critical locals the callee
// declares (for the P-SSP-LV columns).
func probeProgram(criticals int) *cc.Program {
	locals := []cc.Local{{Name: "buf", Size: 16, IsBuffer: true}}
	for i := 0; i < criticals; i++ {
		locals = append(locals, cc.Local{Name: fmt.Sprintf("v%d", i), Size: 8, Critical: true})
	}
	return &cc.Program{
		Name: "probe",
		Funcs: []*cc.Func{
			{Name: "main", Body: []cc.Stmt{cc.Call{Callee: "probe"}}},
			{Name: "probe", Locals: locals, Body: []cc.Stmt{cc.Compute{Ops: 1}}},
		},
	}
}

// prologueEpilogueDelta measures the cycles one protected call adds over the
// unprotected build of the same program.
func prologueEpilogueDelta(cfg Config, scheme core.Scheme, criticals int) (uint64, error) {
	prog := probeProgram(criticals)
	ctx := context.Background()
	unprot, err := compileStatic(prog, core.SchemeNone)
	if err != nil {
		return 0, err
	}
	base, err := runToExit(ctx, cfg, unprot)
	if err != nil {
		return 0, err
	}
	prot, err := compileStatic(prog, scheme)
	if err != nil {
		return 0, err
	}
	got, err := runToExit(ctx, cfg, prot)
	if err != nil {
		return 0, err
	}
	if got < base {
		return 0, fmt.Errorf("harness: protected run cheaper than unprotected (%d < %d)", got, base)
	}
	return got - base, nil
}

// Table5 reproduces the paper's Table V: average CPU cycles spent by the
// function prologue and epilogue for P-SSP and its three extensions. The
// paper's columns "2 variables" and "4 variables" for P-SSP-LV correspond to
// 2 and 4 total canary words, i.e. 1 and 3 critical locals plus the frame
// canary (the paper notes LV generates |canaries|-1 random numbers: one for
// "2 variables", three for "4 variables").
//
// Sweep=true additionally sweeps P-SSP-LV over 1..8 critical variables —
// the ablation DESIGN.md calls out for the rdrand-per-canary design choice.
func Table5(cfg Config, sweep bool) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Table V: CPU cycles spent by prologue+epilogue, per scheme",
		Header: []string{"scheme", "cycles"},
		Notes: []string{
			"paper: P-SSP 6, P-SSP-NT 343, P-SSP-LV(2 vars) 343, P-SSP-LV(4 vars) 986, P-SSP-OWF 278",
			"deltas vs the unprotected build of the same single-call program",
		},
	}
	add := func(label string, scheme core.Scheme, criticals int) error {
		d, err := prologueEpilogueDelta(cfg, scheme, criticals)
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{label, fmt.Sprintf("%d", d)})
		t.set(label, float64(d))
		return nil
	}
	if err := add("p-ssp", core.SchemePSSP, 0); err != nil {
		return nil, err
	}
	if err := add("p-ssp-nt", core.SchemePSSPNT, 0); err != nil {
		return nil, err
	}
	if err := add("p-ssp-lv (2 vars)", core.SchemePSSPLV, 1); err != nil {
		return nil, err
	}
	if err := add("p-ssp-lv (4 vars)", core.SchemePSSPLV, 3); err != nil {
		return nil, err
	}
	if err := add("p-ssp-owf", core.SchemePSSPOWF, 0); err != nil {
		return nil, err
	}
	// Context rows: the baselines' per-call cost under the same probe.
	if err := add("ssp (context)", core.SchemeSSP, 0); err != nil {
		return nil, err
	}
	if err := add("dynaguard (context)", core.SchemeDynaGuard, 0); err != nil {
		return nil, err
	}
	if err := add("dcr (context)", core.SchemeDCR, 0); err != nil {
		return nil, err
	}
	if sweep {
		for v := 1; v <= 8; v++ {
			if err := add(fmt.Sprintf("p-ssp-lv sweep %d criticals", v), core.SchemePSSPLV, v); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}
