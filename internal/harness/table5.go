package harness

import (
	"context"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/rng"
)

// probeProgram builds a minimal program whose main calls one protected
// function once; criticals controls how many critical locals the callee
// declares (for the P-SSP-LV columns).
func probeProgram(criticals int) *cc.Program {
	locals := []cc.Local{{Name: "buf", Size: 16, IsBuffer: true}}
	for i := 0; i < criticals; i++ {
		locals = append(locals, cc.Local{Name: fmt.Sprintf("v%d", i), Size: 8, Critical: true})
	}
	return &cc.Program{
		Name: "probe",
		Funcs: []*cc.Func{
			{Name: "main", Body: []cc.Stmt{cc.Call{Callee: "probe"}}},
			{Name: "probe", Locals: locals, Body: []cc.Stmt{cc.Compute{Ops: 1}}},
		},
	}
}

// prologueEpilogueDelta measures the cycles one protected call adds over the
// unprotected build of the same program.
func prologueEpilogueDelta(cfg Config, scheme core.Scheme, criticals int) (uint64, error) {
	prog := probeProgram(criticals)
	ctx := context.Background()
	unprot, err := cfg.compileStatic(prog, core.SchemeNone)
	if err != nil {
		return 0, err
	}
	base, err := runToExit(ctx, cfg, unprot)
	if err != nil {
		return 0, err
	}
	prot, err := cfg.compileStatic(prog, scheme)
	if err != nil {
		return 0, err
	}
	got, err := runToExit(ctx, cfg, prot)
	if err != nil {
		return 0, err
	}
	if got < base {
		return 0, fmt.Errorf("harness: protected run cheaper than unprotected (%d < %d)", got, base)
	}
	return got - base, nil
}

// Table5 reproduces the paper's Table V: average CPU cycles spent by the
// function prologue and epilogue for P-SSP and its three extensions. The
// paper's columns "2 variables" and "4 variables" for P-SSP-LV correspond to
// 2 and 4 total canary words, i.e. 1 and 3 critical locals plus the frame
// canary (the paper notes LV generates |canaries|-1 random numbers: one for
// "2 variables", three for "4 variables").
//
// Sweep=true additionally sweeps P-SSP-LV over 1..8 critical variables —
// the ablation DESIGN.md calls out for the rdrand-per-canary design choice.
func Table5(cfg Config, sweep bool) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Table V: CPU cycles spent by prologue+epilogue, per scheme",
		Header: []string{"scheme", "cycles"},
		Notes: []string{
			"paper: P-SSP 6, P-SSP-NT 343, P-SSP-LV(2 vars) 343, P-SSP-LV(4 vars) 986, P-SSP-OWF 278",
			"deltas vs the unprotected build of the same single-call program",
		},
	}
	type probe struct {
		label     string
		scheme    core.Scheme
		criticals int
	}
	probes := []probe{
		{"p-ssp", core.SchemePSSP, 0},
		{"p-ssp-nt", core.SchemePSSPNT, 0},
		{"p-ssp-lv (2 vars)", core.SchemePSSPLV, 1},
		{"p-ssp-lv (4 vars)", core.SchemePSSPLV, 3},
		{"p-ssp-owf", core.SchemePSSPOWF, 0},
		// Context rows: the baselines' per-call cost under the same probe.
		{"ssp (context)", core.SchemeSSP, 0},
		{"dynaguard (context)", core.SchemeDynaGuard, 0},
		{"dcr (context)", core.SchemeDCR, 0},
	}
	if sweep {
		for v := 1; v <= 8; v++ {
			probes = append(probes, probe{fmt.Sprintf("p-ssp-lv sweep %d criticals", v), core.SchemePSSPLV, v})
		}
	}

	// The probes are independent measurements on private machines, so the
	// campaign engine runs them as one sharded map: replication i measures
	// probe i, and the outcomes come back in probe order at any worker
	// count.
	agg, err := campaign.Run(context.Background(), campaign.Config{
		Label:        "table5-probes",
		Replications: len(probes),
		Workers:      cfg.Workers,
		Seed:         cfg.Seed,
	}, func(ctx context.Context, rep int, _ *rng.Source) (campaign.Outcome, error) {
		d, err := prologueEpilogueDelta(cfg, probes[rep].scheme, probes[rep].criticals)
		if err != nil {
			return campaign.Outcome{}, err
		}
		return campaign.Outcome{Success: true, FailedAt: -1, Cycles: d}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, out := range agg.Outcomes {
		label := probes[out.Rep].label
		t.Rows = append(t.Rows, []string{label, fmt.Sprintf("%d", out.Cycles)})
		t.set(label, float64(out.Cycles))
	}
	return t, nil
}
