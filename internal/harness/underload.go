package harness

import (
	"context"
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/pssp"
)

// underLoadApps are the servers measured by UnderLoad: one web-server and
// one database analog, the representatives of Tables III and IV.
func underLoadApps() []apps.App {
	return []apps.App{apps.WebServers()[1], apps.Databases()[0]} // nginx, mysql
}

// underLoadWorkload is the scenario behind every UnderLoad cell: a closed
// loop of cfg.LoadClients clients issuing cfg.LoadRequests requests of the
// app's benign payload, sharded over 2 replica servers. The exponential
// think time (mean ~1 service time) makes the instantaneous queue depth
// vary, so the tail quantiles measure genuine queueing jitter instead of a
// degenerate constant backlog.
func underLoadWorkload(cfg Config, app apps.App) pssp.WorkloadConfig {
	return pssp.WorkloadConfig{
		Label:       app.Name,
		Mix:         []pssp.RequestClass{{Name: "benign", Weight: 1, Payload: app.Request}},
		Arrivals:    pssp.ArrivalsClosedLoop,
		Clients:     cfg.LoadClients,
		ThinkCycles: 6000,
		Requests:    cfg.LoadRequests,
		Shards:      2,
		Workers:     cfg.Workers,
		Seed:        cfg.Seed,
	}
}

// threeWayLoad load-tests one server app under the paper's three settings
// (native SSP, compiler P-SSP, instrumentation-based P-SSP) on concurrent
// sessions, one Machine each.
func threeWayLoad(cfg Config, app apps.App) (reports [3]*pssp.LoadReport, err error) {
	builds := [3]func(m *pssp.Machine) (*pssp.Image, error){
		func(m *pssp.Machine) (*pssp.Image, error) {
			return m.Compile(app.Prog, pssp.CompileScheme(core.SchemeSSP))
		},
		func(m *pssp.Machine) (*pssp.Image, error) {
			return m.Compile(app.Prog, pssp.CompileScheme(core.SchemePSSP))
		},
		func(m *pssp.Machine) (*pssp.Image, error) {
			return m.Pipeline().
				Compile(app.Prog, pssp.CompileScheme(core.SchemeSSP)).
				Rewrite().
				Image()
		},
	}
	err = pssp.RunSessions(context.Background(), len(builds),
		func(i int) []pssp.Option {
			return []pssp.Option{pssp.WithSeed(cfg.Seed + uint64(i)), pssp.WithEngine(cfg.Engine), pssp.WithStore(cfg.Store)}
		},
		func(ctx context.Context, s *pssp.Session) error {
			i := s.ID()
			img, err := builds[i](s.Machine())
			if err != nil {
				return err
			}
			rep, err := s.Machine().LoadTest(ctx, img, underLoadWorkload(cfg, app))
			if err != nil {
				return fmt.Errorf("%s setting %d: %w", app.Name, i, err)
			}
			reports[i] = rep
			return nil
		})
	return reports, err
}

// UnderLoad extends the paper's Table III/IV overhead story from mean
// per-request cycles to tail latency under contention: the same three
// settings, but measured by the loadgen engine under a closed-loop
// workload, so every sample includes queueing delay behind a busy
// fork-server and the table reports the p50/p99/p99.9 latency deltas and
// goodput that ApacheBench-style mean columns hide.
func UnderLoad(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title: "Overhead under load: tail latency and goodput across P-SSP settings",
		Header: []string{
			"server", "setting", "p50 µs", "p99 µs", "p99.9 µs",
			"goodput req/Mcycle", "Δp99 vs native",
		},
		Notes: []string{
			"the paper reports means over sequential requests; this drives a closed loop",
			fmt.Sprintf("closed loop: %d clients, exponential think (mean 6000 cycles), %d requests, 2 shards",
				cfg.LoadClients, cfg.LoadRequests),
			"latency = virtual arrival→completion (queueing included), µs at 3.5 GHz",
		},
	}
	settings := [3]string{"native", "compiler", "instrumented"}
	for _, app := range underLoadApps() {
		reports, err := threeWayLoad(cfg, app)
		if err != nil {
			return nil, err
		}
		nativeP99 := reports[0].Latency.P99
		for i, rep := range reports {
			us := func(v uint64) string {
				return fmt.Sprintf("%.3f", float64(v)/CyclesPerMicrosecond)
			}
			t.Rows = append(t.Rows, []string{
				app.Name, settings[i],
				us(rep.Latency.P50), us(rep.Latency.P99), us(rep.Latency.P999),
				fmt.Sprintf("%.2f", rep.GoodputPerMcycle),
				pct(overheadVs(rep.Latency.P99, nativeP99)),
			})
			key := app.Name + "/" + settings[i]
			t.set(key+"/p50", float64(rep.Latency.P50))
			t.set(key+"/p99", float64(rep.Latency.P99))
			t.set(key+"/p999", float64(rep.Latency.P999))
			t.set(key+"/goodput", rep.GoodputPerMcycle)
			if rep.Crashes != 0 {
				return nil, fmt.Errorf("harness: %s/%s: %d benign requests crashed under load",
					app.Name, settings[i], rep.Crashes)
			}
		}
	}
	return t, nil
}
