package harness

import (
	"reflect"
	"testing"
)

func TestUnderLoadDeterministicAndSane(t *testing.T) {
	cfg := Config{LoadRequests: 24, LoadClients: 4}
	a, err := UnderLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := UnderLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("UnderLoad is not deterministic for a fixed config")
	}
	if len(a.Rows) != 6 { // 2 apps x 3 settings
		t.Fatalf("rows %d, want 6", len(a.Rows))
	}
	for _, app := range []string{"nginx", "mysql"} {
		for _, setting := range []string{"native", "compiler", "instrumented"} {
			for _, metric := range []string{"p50", "p99", "p999", "goodput"} {
				key := app + "/" + setting + "/" + metric
				v, ok := a.Values[key]
				if !ok || v <= 0 {
					t.Errorf("value %q missing or non-positive (%v)", key, v)
				}
			}
		}
		// Think-time jitter varies the queue depth, so the tail must
		// strictly exceed the median — if latency ever stopped including
		// queueing delay, p99 would collapse onto p50.
		if a.Values[app+"/native/p99"] <= a.Values[app+"/native/p50"] {
			t.Errorf("%s: p99 (%v) not above p50 (%v): no queueing in the tail",
				app, a.Values[app+"/native/p99"], a.Values[app+"/native/p50"])
		}
	}
}
