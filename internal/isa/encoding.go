package isa

import (
	"encoding/binary"
	"fmt"
)

// EncodingVersion identifies the instruction byte encoding. It is part of
// the artifact store's derivation key: any change to opcode numbering,
// operand shapes or payload layout must bump it so cached image blobs built
// under the old encoding miss cleanly instead of decoding garbage.
const EncodingVersion = 1

// Encode appends the byte encoding of in to dst and returns the extended
// slice. The encoding is opcode byte followed by the shape's operand
// payload; multi-byte values are little-endian.
func Encode(dst []byte, in Inst) []byte {
	dst = append(dst, byte(in.Op))
	switch in.Op.Shape() {
	case ShapeNone:
	case ShapeR:
		dst = append(dst, byte(in.R1))
	case ShapeRR:
		dst = append(dst, byte(in.R1), byte(in.R2))
	case ShapeRI64:
		dst = append(dst, byte(in.R1))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(in.Imm))
	case ShapeRI8:
		dst = append(dst, byte(in.R1), byte(in.Imm))
	case ShapeRM:
		dst = append(dst, byte(in.R1), byte(in.Base))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(in.Disp))
	case ShapeRFS:
		dst = append(dst, byte(in.R1))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(in.Disp))
	case ShapeRel32:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(in.Disp))
	case ShapeXR:
		dst = append(dst, byte(in.X1), byte(in.R1))
	case ShapeXM:
		dst = append(dst, byte(in.X1), byte(in.Base))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(in.Disp))
	}
	return dst
}

// EncodeAll encodes a sequence of instructions into a fresh byte slice.
func EncodeAll(insts []Inst) []byte {
	n := 0
	for _, in := range insts {
		n += in.Len()
	}
	out := make([]byte, 0, n)
	for _, in := range insts {
		out = Encode(out, in)
	}
	return out
}

// Decode decodes the instruction starting at code[off]. It returns the
// instruction and the number of bytes consumed.
func Decode(code []byte, off int) (Inst, int, error) {
	if off < 0 || off >= len(code) {
		return Inst{}, 0, fmt.Errorf("isa: decode offset %d out of range [0,%d)", off, len(code))
	}
	op := Op(code[off])
	if !op.Valid() {
		return Inst{}, 0, fmt.Errorf("isa: invalid opcode 0x%02x at offset %d", code[off], off)
	}
	n := op.EncodedLen()
	if off+n > len(code) {
		return Inst{}, 0, fmt.Errorf("isa: truncated %s at offset %d: need %d bytes, have %d",
			op.Name(), off, n, len(code)-off)
	}
	p := code[off+1 : off+n]
	in := Inst{Op: op}
	switch op.Shape() {
	case ShapeNone:
	case ShapeR:
		in.R1 = Reg(p[0])
	case ShapeRR:
		in.R1, in.R2 = Reg(p[0]), Reg(p[1])
	case ShapeRI64:
		in.R1 = Reg(p[0])
		in.Imm = int64(binary.LittleEndian.Uint64(p[1:]))
	case ShapeRI8:
		in.R1 = Reg(p[0])
		in.Imm = int64(p[1])
	case ShapeRM:
		in.R1, in.Base = Reg(p[0]), Reg(p[1])
		in.Disp = int32(binary.LittleEndian.Uint32(p[2:]))
	case ShapeRFS:
		in.R1 = Reg(p[0])
		in.Disp = int32(binary.LittleEndian.Uint32(p[1:]))
	case ShapeRel32:
		in.Disp = int32(binary.LittleEndian.Uint32(p))
	case ShapeXR:
		in.X1, in.R1 = Xmm(p[0]), Reg(p[1])
	case ShapeXM:
		in.X1, in.Base = Xmm(p[0]), Reg(p[1])
		in.Disp = int32(binary.LittleEndian.Uint32(p[2:]))
	}
	if err := in.validateRegs(); err != nil {
		return Inst{}, 0, fmt.Errorf("isa: at offset %d: %w", off, err)
	}
	return in, n, nil
}

// validateRegs rejects encodings that name registers outside the file.
func (in Inst) validateRegs() error {
	check := func(r Reg) error {
		if r >= NumGPR {
			return fmt.Errorf("%s references invalid register %d", in.Op.Name(), r)
		}
		return nil
	}
	switch in.Op.Shape() {
	case ShapeR, ShapeRI64, ShapeRI8, ShapeRFS:
		return check(in.R1)
	case ShapeRR:
		if err := check(in.R1); err != nil {
			return err
		}
		return check(in.R2)
	case ShapeRM:
		if err := check(in.R1); err != nil {
			return err
		}
		return check(in.Base)
	case ShapeXR:
		if in.X1 >= NumXMM {
			return fmt.Errorf("%s references invalid xmm register %d", in.Op.Name(), in.X1)
		}
		return check(in.R1)
	case ShapeXM:
		if in.X1 >= NumXMM {
			return fmt.Errorf("%s references invalid xmm register %d", in.Op.Name(), in.X1)
		}
		return check(in.Base)
	}
	return nil
}

// DecodeAll decodes an entire code blob into a sequence of instructions. It
// fails if the blob does not decode cleanly end to end.
func DecodeAll(code []byte) ([]Inst, error) {
	var out []Inst
	for off := 0; off < len(code); {
		in, n, err := Decode(code, off)
		if err != nil {
			return nil, err
		}
		out = append(out, in)
		off += n
	}
	return out, nil
}
