// Package isa defines the instruction-set architecture of the simulated
// 64-bit machine used throughout this reproduction.
//
// The ISA is a compact x86-64 analog: sixteen 64-bit general-purpose
// registers with the x86 names, two of the sixteen 128-bit XMM registers the
// paper's P-SSP-OWF code uses, an FS segment base for thread-local storage,
// a downward-growing stack manipulated by PUSH/POP/CALL/RET/LEAVE, and the
// three hardware extensions the paper leans on: RDRAND (hardware random),
// RDTSC (time-stamp counter), and an AES-128 encrypt primitive (AES-NI).
//
// Instructions have a variable-length byte encoding (opcode byte followed by
// a shape-determined operand payload) so that the binary rewriter in
// internal/rewrite faces the same "do not change code size" constraint the
// paper's instrumentation tool faces on real x86.
package isa

import "fmt"

// Reg identifies a general-purpose register. The numbering follows the
// x86-64 instruction encoding order.
type Reg uint8

// General-purpose registers.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// NumGPR is the number of general-purpose registers.
	NumGPR
)

var regNames = [...]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

// String returns the conventional AT&T-style name, e.g. "rax".
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// Xmm identifies a 128-bit vector register (xmm0..xmm15).
type Xmm uint8

// XMM registers referenced by the paper's P-SSP-OWF prologue/epilogue.
const (
	XMM0  Xmm = 0
	XMM1  Xmm = 1
	XMM15 Xmm = 15

	// NumXMM is the number of vector registers.
	NumXMM = 16
)

// String returns the conventional name, e.g. "xmm15".
func (x Xmm) String() string { return fmt.Sprintf("xmm%d", uint8(x)) }

// Op is an instruction opcode.
type Op uint8

// Opcodes. The comments give the assembly syntax used by internal/asm.
const (
	NOP Op = iota // nop
	HLT           // hlt

	PUSH // push %reg
	POP  // pop %reg

	MOVRR // mov %src, %dst
	MOVRI // mov $imm64, %dst
	LOAD  // mov disp(%base), %dst
	STORE // mov %src, disp(%base)
	LDFS  // mov %fs:disp, %dst
	STFS  // mov %src, %fs:disp
	LEA   // lea disp(%base), %dst

	ADDRR // add %src, %dst
	ADDRI // add $imm, %dst
	SUBRR // sub %src, %dst
	SUBRI // sub $imm, %dst
	XORRR // xor %src, %dst        (sets ZF)
	XORFS // xor %fs:disp, %dst    (sets ZF)
	ORRR  // or  %src, %dst
	ANDRR // and %src, %dst
	SHLRI // shl $imm8, %dst
	SHRRI // shr $imm8, %dst

	CMPRR // cmp %src, %dst        (sets ZF on equal)
	CMPRI // cmp $imm, %dst

	JMP // jmp rel32
	JE  // je  rel32
	JNE // jne rel32

	CALL  // call rel32
	CALLR // call *%reg
	RET   // ret
	LEAVE // leave

	RDRAND // rdrand %dst           (hardware random, CF=1 on success)
	RDTSC  // rdtsc                 (edx:eax <- cycle counter)

	MOVQX   // movq %src, %xmm       (xmm low 64 <- reg; high zeroed)
	MOVHX   // movhps disp(%base), %xmm  (xmm high 64 <- mem)
	PUNPCKX // punpckhdq %src, %xmm  (xmm high 64 <- reg)
	MOVXQ   // movq %xmm, %dst       (reg <- xmm low 64)
	STX     // movdqu %xmm, disp(%base)  (16-byte store)
	LDX     // movdqu disp(%base), %xmm  (16-byte load)
	AESENC  // aesenc128             (xmm15 <- AES-128_Encrypt(key=xmm1, xmm15))
	CMPX    // comisx disp(%base), %xmm  (ZF <- 128-bit equality)

	SYSCALL // syscall               (nr in rax; args rdi,rsi,rdx; ret rax)

	RDFSBASE // rdfsbase %dst        (dst <- FS base; per-thread TLS pointer)

	// NumOps is the number of defined opcodes.
	NumOps
)

// Shape describes an opcode's operand payload, which fixes its encoded
// length. The rewriter depends on shapes: replacing an instruction with
// another of the same shape never changes code size.
type Shape uint8

// Operand shapes.
const (
	ShapeNone  Shape = iota // no operands
	ShapeR                  // one register
	ShapeRR                 // two registers
	ShapeRI64               // register + 64-bit immediate
	ShapeRI8                // register + 8-bit immediate
	ShapeRM                 // register + base register + 32-bit displacement
	ShapeRFS                // register + 32-bit FS displacement
	ShapeRel32              // 32-bit relative branch target
	ShapeXR                 // xmm register + GPR
	ShapeXM                 // xmm register + base register + 32-bit displacement
)

// payloadLen is the number of operand bytes following the opcode byte,
// indexed by Shape. An array, not a map: EncodedLen sits on the decode and
// execute hot paths.
var payloadLen = [...]int{
	ShapeNone:  0,
	ShapeR:     1,
	ShapeRR:    2,
	ShapeRI64:  9,
	ShapeRI8:   2,
	ShapeRM:    6,
	ShapeRFS:   5,
	ShapeRel32: 4,
	ShapeXR:    2,
	ShapeXM:    6,
}

// opInfo is the static description of one opcode.
type opInfo struct {
	name  string
	shape Shape
	// cycles is the simulated cost. The model is calibrated in DESIGN.md §2:
	// ordinary register/memory operations cost 1–2 cycles, RDRAND costs 337
	// (matching the ~340-cycle delta the paper measures for P-SSP-NT in
	// Table V), RDTSC 25, and the AES-128 primitive 120 (two evaluations plus
	// RDTSC land P-SSP-OWF near the paper's 278-cycle delta).
	cycles uint64
}

var opTable = [NumOps]opInfo{
	NOP: {"nop", ShapeNone, 1},
	HLT: {"hlt", ShapeNone, 1},

	PUSH: {"push", ShapeR, 1},
	POP:  {"pop", ShapeR, 1},

	MOVRR: {"mov", ShapeRR, 1},
	MOVRI: {"movi", ShapeRI64, 1},
	LOAD:  {"load", ShapeRM, 1},
	STORE: {"store", ShapeRM, 1},
	LDFS:  {"ldfs", ShapeRFS, 1},
	STFS:  {"stfs", ShapeRFS, 1},
	LEA:   {"lea", ShapeRM, 1},

	ADDRR: {"add", ShapeRR, 1},
	ADDRI: {"addi", ShapeRI64, 1},
	SUBRR: {"sub", ShapeRR, 1},
	SUBRI: {"subi", ShapeRI64, 1},
	XORRR: {"xor", ShapeRR, 1},
	XORFS: {"xorfs", ShapeRFS, 1},
	ORRR:  {"or", ShapeRR, 1},
	ANDRR: {"and", ShapeRR, 1},
	SHLRI: {"shl", ShapeRI8, 1},
	SHRRI: {"shr", ShapeRI8, 1},

	CMPRR: {"cmp", ShapeRR, 1},
	CMPRI: {"cmpi", ShapeRI64, 1},

	JMP: {"jmp", ShapeRel32, 1},
	JE:  {"je", ShapeRel32, 1},
	JNE: {"jne", ShapeRel32, 1},

	CALL:  {"call", ShapeRel32, 2},
	CALLR: {"callr", ShapeR, 2},
	RET:   {"ret", ShapeNone, 2},
	LEAVE: {"leave", ShapeNone, 2},

	RDRAND: {"rdrand", ShapeR, 337},
	RDTSC:  {"rdtsc", ShapeNone, 25},

	MOVQX:   {"movqx", ShapeXR, 1},
	MOVHX:   {"movhx", ShapeXM, 1},
	PUNPCKX: {"punpckx", ShapeXR, 1},
	MOVXQ:   {"movxq", ShapeXR, 1},
	STX:     {"stx", ShapeXM, 2},
	LDX:     {"ldx", ShapeXM, 2},
	AESENC:  {"aesenc128", ShapeNone, 120},
	CMPX:    {"cmpx", ShapeXM, 2},

	SYSCALL: {"syscall", ShapeNone, 50},

	RDFSBASE: {"rdfsbase", ShapeR, 1},
}

// Name returns the assembler mnemonic for op.
func (op Op) Name() string {
	if op < NumOps {
		return opTable[op].name
	}
	return fmt.Sprintf("op?%d", uint8(op))
}

// Shape returns the operand shape of op.
func (op Op) Shape() Shape {
	if op < NumOps {
		return opTable[op].shape
	}
	return ShapeNone
}

// Cycles returns the simulated cycle cost of op under the calibrated model.
func (op Op) Cycles() uint64 {
	if op < NumOps {
		return opTable[op].cycles
	}
	return 1
}

// MemClass classifies how an opcode addresses memory. It is the
// operand-class metadata the block-lowering execution tier keys on: the
// class decides which cached segment view a lowered instruction's memory
// operand resolves through, without re-deriving it from the shape at
// dispatch time.
type MemClass uint8

// Memory operand classes.
const (
	// MemNone: no memory operand (pure register/immediate/branch work; LEA
	// only computes an address and never dereferences it).
	MemNone MemClass = iota
	// MemStack: implicit stack access through RSP (PUSH/POP/CALL/CALLR/RET
	// and the pop half of LEAVE).
	MemStack
	// MemFS: FS-segment addressing, fs:disp (the TLS canary words).
	MemFS
	// MemBase: explicit base register + 32-bit displacement.
	MemBase
)

// memClassTab is the per-opcode operand-class table. Opcodes absent from
// the literal default to MemNone.
var memClassTab = [NumOps]MemClass{
	PUSH:  MemStack,
	POP:   MemStack,
	CALL:  MemStack,
	CALLR: MemStack,
	RET:   MemStack,
	LEAVE: MemStack,

	LDFS:  MemFS,
	STFS:  MemFS,
	XORFS: MemFS,

	LOAD:  MemBase,
	STORE: MemBase,
	MOVHX: MemBase,
	STX:   MemBase,
	LDX:   MemBase,
	CMPX:  MemBase,
}

// MemClass returns the memory operand class of op.
func (op Op) MemClass() MemClass {
	if op < NumOps {
		return memClassTab[op]
	}
	return MemNone
}

// EncodedLen returns the total encoded length of an instruction with opcode
// op, including the opcode byte.
func (op Op) EncodedLen() int { return 1 + payloadLen[op.Shape()] }

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op < NumOps }

// Inst is one decoded instruction. Which fields are meaningful depends on
// the opcode's shape:
//
//	ShapeR:     R1
//	ShapeRR:    R1 (dst), R2 (src)
//	ShapeRI64:  R1, Imm
//	ShapeRI8:   R1, Imm (low 8 bits)
//	ShapeRM:    R1, Base, Disp
//	ShapeRFS:   R1, Disp
//	ShapeRel32: Disp (branch displacement relative to next instruction)
//	ShapeXR:    X1, R1
//	ShapeXM:    X1, Base, Disp
type Inst struct {
	Op   Op
	R1   Reg
	R2   Reg
	X1   Xmm
	Base Reg
	Disp int32
	Imm  int64
}

// Len returns the instruction's encoded length in bytes.
func (in Inst) Len() int { return in.Op.EncodedLen() }

// String renders the instruction in the textual assembly accepted by
// internal/asm.
func (in Inst) String() string {
	switch in.Op.Shape() {
	case ShapeNone:
		return in.Op.Name()
	case ShapeR:
		return fmt.Sprintf("%s %%%s", in.Op.Name(), in.R1)
	case ShapeRR:
		return fmt.Sprintf("%s %%%s, %%%s", in.Op.Name(), in.R2, in.R1)
	case ShapeRI64:
		return fmt.Sprintf("%s $%d, %%%s", in.Op.Name(), in.Imm, in.R1)
	case ShapeRI8:
		return fmt.Sprintf("%s $%d, %%%s", in.Op.Name(), in.Imm&0xff, in.R1)
	case ShapeRM:
		return fmt.Sprintf("%s %d(%%%s), %%%s", in.Op.Name(), in.Disp, in.Base, in.R1)
	case ShapeRFS:
		return fmt.Sprintf("%s %%fs:%d, %%%s", in.Op.Name(), in.Disp, in.R1)
	case ShapeRel32:
		return fmt.Sprintf("%s %d", in.Op.Name(), in.Disp)
	case ShapeXR:
		return fmt.Sprintf("%s %%%s, %%%s", in.Op.Name(), in.R1, in.X1)
	case ShapeXM:
		return fmt.Sprintf("%s %d(%%%s), %%%s", in.Op.Name(), in.Disp, in.Base, in.X1)
	default:
		return fmt.Sprintf("%s <bad shape>", in.Op.Name())
	}
}
