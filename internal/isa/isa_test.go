package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpTableComplete(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		if op.Name() == "" {
			t.Errorf("opcode %d has no name", op)
		}
		if op.Cycles() == 0 {
			t.Errorf("opcode %s has zero cycle cost", op.Name())
		}
		if op.EncodedLen() < 1 {
			t.Errorf("opcode %s has encoded length %d", op.Name(), op.EncodedLen())
		}
	}
}

func TestOpNamesUnique(t *testing.T) {
	seen := make(map[string]Op, NumOps)
	for op := Op(0); op < NumOps; op++ {
		if prev, dup := seen[op.Name()]; dup {
			t.Errorf("opcodes %d and %d share name %q", prev, op, op.Name())
		}
		seen[op.Name()] = op
	}
}

func TestRegString(t *testing.T) {
	cases := map[Reg]string{RAX: "rax", RSP: "rsp", RBP: "rbp", RDI: "rdi", R12: "r12", R15: "r15"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

// sampleInsts covers every shape.
func sampleInsts() []Inst {
	return []Inst{
		{Op: NOP},
		{Op: PUSH, R1: RBP},
		{Op: MOVRR, R1: RBP, R2: RSP},
		{Op: MOVRI, R1: RAX, Imm: -0x123456789},
		{Op: SHLRI, R1: RDX, Imm: 0x20},
		{Op: LOAD, R1: RDX, Base: RBP, Disp: -8},
		{Op: LDFS, R1: RAX, Disp: 0x28},
		{Op: JE, Disp: 16},
		{Op: CALL, Disp: -100},
		{Op: MOVQX, X1: XMM15, R1: RAX},
		{Op: MOVHX, X1: XMM15, Base: RBP, Disp: 8},
		{Op: AESENC},
		{Op: STX, X1: XMM15, Base: RBP, Disp: -0x18},
		{Op: SYSCALL},
		{Op: RET},
		{Op: LEAVE},
		{Op: RDRAND, R1: RAX},
		{Op: RDTSC},
		{Op: XORFS, R1: RDX, Disp: 0x28},
		{Op: STORE, R1: RAX, Base: RBP, Disp: -16},
		{Op: SUBRI, R1: RSP, Imm: 0x10},
		{Op: CMPRI, R1: RAX, Imm: 0},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, in := range sampleInsts() {
		buf := Encode(nil, in)
		if len(buf) != in.Len() {
			t.Errorf("%s: encoded %d bytes, Len() says %d", in, len(buf), in.Len())
		}
		got, n, err := Decode(buf, 0)
		if err != nil {
			t.Fatalf("%s: decode: %v", in, err)
		}
		if n != len(buf) {
			t.Errorf("%s: decode consumed %d of %d bytes", in, n, len(buf))
		}
		if got != in {
			t.Errorf("round trip mismatch: encoded %+v, decoded %+v", in, got)
		}
	}
}

func TestEncodeAllDecodeAll(t *testing.T) {
	insts := sampleInsts()
	code := EncodeAll(insts)
	got, err := DecodeAll(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(insts) {
		t.Fatalf("decoded %d instructions, want %d", len(got), len(insts))
	}
	for i := range insts {
		if got[i] != insts[i] {
			t.Errorf("instruction %d: got %+v, want %+v", i, got[i], insts[i])
		}
	}
}

func TestDecodeInvalidOpcode(t *testing.T) {
	if _, _, err := Decode([]byte{0xff}, 0); err == nil {
		t.Fatal("decoding opcode 0xff succeeded, want error")
	}
}

func TestDecodeTruncated(t *testing.T) {
	code := Encode(nil, Inst{Op: MOVRI, R1: RAX, Imm: 42})
	for cut := 1; cut < len(code); cut++ {
		if _, _, err := Decode(code[:cut], 0); err == nil {
			t.Errorf("decoding %d/%d bytes of movi succeeded, want error", cut, len(code))
		}
	}
}

func TestDecodeBadRegister(t *testing.T) {
	code := []byte{byte(PUSH), 200}
	if _, _, err := Decode(code, 0); err == nil {
		t.Fatal("decoding push with register 200 succeeded, want error")
	}
	code = []byte{byte(MOVQX), 99, byte(RAX)}
	if _, _, err := Decode(code, 0); err == nil {
		t.Fatal("decoding movqx with xmm99 succeeded, want error")
	}
}

func TestDecodeOffsetOutOfRange(t *testing.T) {
	if _, _, err := Decode(nil, 0); err == nil {
		t.Fatal("decode of empty code succeeded")
	}
	if _, _, err := Decode([]byte{byte(NOP)}, 5); err == nil {
		t.Fatal("decode past end succeeded")
	}
}

// TestShapeLengthStability pins the encoded lengths the rewriter relies on:
// an SSP prologue LDFS and a P-SSP LDFS must be the same length so the
// rewriter's in-place replacement never shifts code.
func TestShapeLengthStability(t *testing.T) {
	ssp := Inst{Op: LDFS, R1: RAX, Disp: 0x28}
	pssp := Inst{Op: LDFS, R1: RAX, Disp: 0x2a8}
	if ssp.Len() != pssp.Len() {
		t.Fatalf("LDFS lengths differ: %d vs %d", ssp.Len(), pssp.Len())
	}
	if got := ssp.Len(); got != 6 {
		t.Fatalf("LDFS encoded length = %d, want 6", got)
	}
}

func TestRel32EncodingProperty(t *testing.T) {
	f := func(disp int32) bool {
		in := Inst{Op: JMP, Disp: disp}
		got, _, err := Decode(Encode(nil, in), 0)
		return err == nil && got.Disp == disp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestImm64EncodingProperty(t *testing.T) {
	f := func(imm int64) bool {
		in := Inst{Op: MOVRI, R1: RCX, Imm: imm}
		got, _, err := Decode(Encode(nil, in), 0)
		return err == nil && got.Imm == imm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringForms(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: PUSH, R1: RBP}, "push %rbp"},
		{Inst{Op: MOVRR, R1: RBP, R2: RSP}, "mov %rsp, %rbp"},
		{Inst{Op: LDFS, R1: RAX, Disp: 40}, "ldfs %fs:40, %rax"},
		{Inst{Op: LOAD, R1: RDX, Base: RBP, Disp: -8}, "load -8(%rbp), %rdx"},
		{Inst{Op: RET}, "ret"},
		{Inst{Op: MOVQX, X1: XMM15, R1: RAX}, "movqx %rax, %xmm15"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestRDRANDCostDominates(t *testing.T) {
	// The Table V reproduction depends on RDRAND being ~two orders of
	// magnitude costlier than plain moves and AES being cheaper than RDRAND.
	if RDRAND.Cycles() < 100*MOVRR.Cycles() {
		t.Fatal("rdrand cost model too cheap for Table V shape")
	}
	if AESENC.Cycles() >= RDRAND.Cycles() {
		t.Fatal("aes cost should be below rdrand cost (paper Table V: 278 < 343)")
	}
}

func TestInstStringNoPanicAllOps(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		s := Inst{Op: op}.String()
		if !strings.Contains(s, op.Name()) {
			t.Errorf("String() for %s = %q does not contain mnemonic", op.Name(), s)
		}
	}
}
