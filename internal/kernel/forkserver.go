package kernel

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/binfmt"
	"repro/internal/vm"
)

// ErrServerClosed is returned by Handle/HandleContext after Close.
var ErrServerClosed = errors.New("kernel: fork server is closed")

// ForkServer is the fork-per-request supervisor of the paper's threat model:
// a parent process runs to its accept(2) point and parks there; every
// incoming request is served by a freshly forked child that inherits the
// parent's address space — including its TLS canary and its live stack
// frames. When a child crashes, the parent simply forks another for the next
// request.
//
// For the attacker this is the oracle: Handle returns whether the child
// crashed (guess wrong) or responded (guess right).
type ForkServer struct {
	kernel *Kernel
	parent *Process
	closed bool

	// Requests counts Handle calls; Crashes counts children that died.
	Requests int
	Crashes  int

	// TotalCycles and TotalInsts accumulate child execution costs for the
	// response-time experiments.
	TotalCycles uint64
	TotalInsts  uint64
}

// Outcome reports one request's fate.
type Outcome struct {
	// PID is the worker process's id.
	PID int
	// Crashed is true if the worker died (canary mismatch abort, fault, ...).
	Crashed bool
	// CrashReason describes the death, empty otherwise.
	CrashReason string
	// CrashErr is the typed crash error (wraps ErrStackSmash for canary
	// aborts), nil when the worker exited cleanly.
	CrashErr error
	// Response is everything the worker wrote to fd 1 before finishing —
	// including output emitted before a crash, since on a real socket those
	// bytes have already left the process. Detection *latency* is therefore
	// observable: a check that fires only in the epilogue may leak a
	// response computed from corrupted data first.
	Response []byte
	// Cycles and Insts are the worker's execution cost for this request.
	Cycles uint64
	Insts  uint64
}

// NewForkServer spawns the server program and runs it to its accept point.
func NewForkServer(k *Kernel, app *binfmt.Binary, opts SpawnOpts) (*ForkServer, error) {
	parent, err := k.Spawn(app, opts)
	if err != nil {
		return nil, err
	}
	return ServeProcess(context.Background(), k, parent)
}

// ServeProcess boots an already-spawned parent to its accept point and wraps
// it as a ForkServer. It exists so callers can instrument the parent (tracer,
// cost model) between Spawn and boot.
func ServeProcess(ctx context.Context, k *Kernel, parent *Process) (*ForkServer, error) {
	st, err := k.RunContext(ctx, parent)
	if err != nil {
		return nil, err
	}
	switch st {
	case StateWaiting:
		return &ForkServer{kernel: k, parent: parent}, nil
	case StateCrashed:
		return nil, fmt.Errorf("kernel: server crashed before accept: %s", parent.CrashReason)
	default:
		return nil, fmt.Errorf("kernel: server reached state %s before accept", st)
	}
}

// Parent returns the parked parent process (for inspection in experiments).
func (s *ForkServer) Parent() *Process { return s.parent }

// EnableCoverage installs an edge-coverage map on the parked parent's CPU
// and returns it. Fork copies the CPU struct wholesale, so every worker
// forked afterwards records its executed edges into this one map — the
// fuzzing loop resets it before each request (Coverage().Reset()) and reads
// it after, giving a per-request edge snapshot with zero per-fork setup.
// Idempotent: a map installed earlier is returned as-is.
func (s *ForkServer) EnableCoverage() *vm.CovMap {
	if cov := s.parent.CPU.Coverage(); cov != nil {
		return cov
	}
	cov := new(vm.CovMap)
	s.parent.CPU.SetCoverage(cov)
	return cov
}

// Coverage returns the installed edge map (nil until EnableCoverage).
func (s *ForkServer) Coverage() *vm.CovMap { return s.parent.CPU.Coverage() }

// Handle serves one request with a fresh child and reports its outcome.
func (s *ForkServer) Handle(req []byte) (Outcome, error) {
	return s.HandleContext(context.Background(), req)
}

// Close retires the parked parent: its large private buffers — including
// the ones still marked copy-on-write, whose only peers are this server's
// dead single-shot workers — go back to the kernel's pool, so the next
// server booted on the same kernel forks from recycled memory instead of
// allocating. Subsequent Handle calls fail with ErrServerClosed; the
// counters stay readable. Close is idempotent.
func (s *ForkServer) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.parent.Space.ReleaseAll()
}

// Closed reports whether Close has retired the server.
func (s *ForkServer) Closed() bool { return s.closed }

// Parked reports whether the server is still serviceable: not closed, with
// the parent alive and blocked in accept. The daemon's warm pool runs this
// health check at checkout and respawns entries that fail it.
func (s *ForkServer) Parked() bool {
	return !s.closed && s.parent.State == StateWaiting
}

// HandleContext is Handle with cancellation plumbed into the worker's run.
// On cancellation the half-run child is discarded and ctx.Err() returned.
func (s *ForkServer) HandleContext(ctx context.Context, req []byte) (Outcome, error) {
	if s.closed {
		return Outcome{}, ErrServerClosed
	}
	child, err := s.kernel.Fork(s.parent)
	if err != nil {
		return Outcome{}, err
	}
	startCycles, startInsts := child.CPU.Cycles, child.CPU.Insts
	if err := child.Deliver(req); err != nil {
		return Outcome{}, err
	}
	st, err := s.kernel.RunContext(ctx, child)
	if err != nil {
		return Outcome{}, err
	}

	out := Outcome{
		PID:    child.ID,
		Cycles: child.CPU.Cycles - startCycles,
		Insts:  child.CPU.Insts - startInsts,
	}
	s.Requests++
	s.TotalCycles += out.Cycles
	s.TotalInsts += out.Insts

	out.Response = child.Stdout
	switch st {
	case StateExited:
	case StateCrashed:
		out.Crashed = true
		out.CrashReason = child.CrashReason
		out.CrashErr = child.CrashErr
		s.Crashes++
	default:
		return Outcome{}, fmt.Errorf("kernel: worker stuck in state %s", st)
	}
	if m := metrics.Load(); m != nil {
		m.requests.Inc()
		if out.Crashed {
			m.crashes.Inc()
		}
	}
	// The single-shot worker is dead and the outcome fully copied out:
	// recycle its materialized buffers so the next fork reuses them instead
	// of allocating. Segments still shared with the parent are untouched.
	child.Space.Release()
	return out, nil
}
