// Package kernel models the operating-system layer of the reproduction: a
// process abstraction over the VM, program loading with dynamic or static
// linkage, fork(2) with full address-space cloning (including the TLS block
// — the inheritance the byte-by-byte attack exploits), the LD_PRELOAD-style
// scheme hooks from the paper's shared library, and a fork-per-request
// server supervisor that serves as the attacker's crash oracle.
package kernel

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/abi"
	"repro/internal/binfmt"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/rng"
	"repro/internal/vm"
)

// State is a process's lifecycle state.
type State uint8

// Process states.
const (
	// StateRunning means the process can execute.
	StateRunning State = iota + 1
	// StateWaiting means the process is blocked in accept(2) waiting for a
	// request. The fork server forks children from this point.
	StateWaiting
	// StateExited means the process terminated normally via exit(2).
	StateExited
	// StateCrashed means the process died abnormally: a memory fault, an
	// illegal instruction, or __stack_chk_fail's abort.
	StateCrashed
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateWaiting:
		return "waiting"
	case StateExited:
		return "exited"
	case StateCrashed:
		return "crashed"
	default:
		return fmt.Sprintf("state?%d", uint8(s))
	}
}

// errAwaitAccept is the internal signal that a process blocked in accept.
var errAwaitAccept = errors.New("kernel: await accept")

// ErrStackSmash marks crashes raised by __stack_chk_fail's abort — a canary
// check detected an overwrite. It is carried as the Cause of the CrashError
// so callers can classify crashes with errors.Is instead of matching the
// CrashReason string.
var ErrStackSmash = errors.New("kernel: stack smashing detected")

// ErrBudget marks crashes caused by the instruction-budget watchdog, not by
// guest misbehaviour. It aliases vm.ErrBudget so errors.Is classifies budget
// kills identically whether they surface from the raw VM loop or through the
// kernel, under either execution engine.
var ErrBudget = vm.ErrBudget

// Process is one simulated process.
type Process struct {
	ID    int
	Space *mem.Space
	CPU   *vm.CPU
	State State

	// Scheme is the preload behaviour applied at startup and fork — the
	// paper's shared-library role. It may differ from the scheme the binary
	// was compiled with (that is the compatibility experiment).
	Scheme core.Scheme

	// ExitCode is valid in StateExited.
	ExitCode uint64
	// CrashReason is valid in StateCrashed.
	CrashReason string
	// CrashErr is the error that crashed the process (valid in StateCrashed).
	// It wraps ErrStackSmash for canary aborts and ErrBudget for watchdog
	// kills, so callers can classify with errors.Is/As.
	CrashErr error

	// Stdout accumulates SysWrite output (fd 1).
	Stdout []byte

	stdin    []byte
	stdinOff int
	pending  []byte // request delivered but not yet accepted
	isChild  bool   // children get exactly one request, then accept returns 0

	rand *rng.Source
	bin  *binfmt.Binary
	sys  sysHandler // the process's syscall handler, embedded to avoid a per-fork allocation
}

// TLS returns the thread-local-storage view at the CPU's current FS base
// (the process's main TLS block, or the thread's own for SpawnThread'ed
// threads).
func (p *Process) TLS() *core.TLS { return core.NewTLS(p.Space, p.CPU.FSBase) }

// TLSAt returns the TLS view at an explicit FS base.
func (p *Process) TLSAt(base uint64) *core.TLS { return core.NewTLS(p.Space, base) }

// Binary returns the program image the process was spawned from.
func (p *Process) Binary() *binfmt.Binary { return p.bin }

// Deliver hands a request to a process blocked in accept and unblocks it.
func (p *Process) Deliver(req []byte) error {
	if p.State != StateWaiting {
		return fmt.Errorf("kernel: deliver to process %d in state %s", p.ID, p.State)
	}
	p.pending = append([]byte(nil), req...)
	// accept(2) already trapped; complete it by writing its return value.
	p.stdin = p.pending
	p.stdinOff = 0
	p.pending = nil
	p.CPU.GPR[isa.RAX] = uint64(len(p.stdin))
	p.State = StateRunning
	return nil
}

// Kernel owns processes and the global entropy source.
type Kernel struct {
	rand    *rng.Source
	nextPID int

	// MaxInsts bounds one Run call; a process exceeding it is crashed with a
	// budget fault (the analog of a watchdog kill).
	MaxInsts uint64

	// Engine selects the VM execution engine for every process the kernel
	// spawns. The zero value is vm.EnginePredecoded; vm.EngineCompiled is
	// the fast block-lowered tier and vm.EngineInterpreter the legacy
	// decode-each-step path (differential testing). Forked children inherit
	// the parent's engine with the rest of the CPU state.
	Engine vm.Engine

	// now is global machine time in cycles, advanced by every Run. New
	// processes read the time-stamp counter relative to it, so TSC behaves
	// like hardware: monotonic across the whole machine, never reset by
	// fork.
	now uint64

	// spawned collects children created by guest-initiated SysFork calls,
	// ready to be scheduled by the host via TakeSpawned.
	spawned []*Process

	// pool recycles large copy-on-write materialization buffers between the
	// machine's short-lived fork-per-request workers.
	pool *mem.BufPool
}

// TakeSpawned returns and clears the children created by guest fork(2)
// calls since the last invocation. The host is the scheduler: run them with
// Run in whatever order the experiment needs.
func (k *Kernel) TakeSpawned() []*Process {
	out := k.spawned
	k.spawned = nil
	return out
}

// Now returns the machine's global cycle clock.
func (k *Kernel) Now() uint64 { return k.now }

// New returns a kernel seeded with seed.
func New(seed uint64) *Kernel {
	return &Kernel{rand: rng.New(seed), nextPID: 1, MaxInsts: 4 << 20, pool: &mem.BufPool{}}
}

// ReplicaSeeded returns a fresh kernel configured like k (engine,
// instruction budget) running on its own entropy stream from the given
// derived seed (callers mix (seed, stream) pairs with rng.Mix). This is
// the multi-worker oracle path: a kernel is single-threaded by design (one
// clock, one PID space, one buffer pool), so concurrent trial shards each
// get their own replica instead of locking a shared machine. ReplicaSeeded
// consumes none of k's entropy — the same seed always yields the same
// replica, no matter when, or on how many workers, the replicas are
// created.
func (k *Kernel) ReplicaSeeded(seed uint64) *Kernel {
	nk := New(seed)
	nk.MaxInsts = k.MaxInsts
	nk.Engine = k.Engine
	return nk
}

// SpawnOpts configures process creation.
type SpawnOpts struct {
	// Libc is the shared C-library image for dynamically linked apps.
	// Ignored for statically linked apps.
	Libc *binfmt.Binary
	// Preload selects the scheme hooks (startup seeding, fork refresh). Zero
	// means "derive from the app image's scheme metadata".
	Preload core.Scheme
}

// Spawn loads the app (plus libc for dynamic linkage), maps stack and TLS,
// runs the startup hooks (the paper's setup_p-ssp constructor), and returns
// the new runnable process.
func (k *Kernel) Spawn(app *binfmt.Binary, opts SpawnOpts) (*Process, error) {
	sp := mem.NewSpace()
	sp.SetPool(k.pool)
	if err := binfmt.Load(app, sp); err != nil {
		return nil, fmt.Errorf("kernel: spawn: %w", err)
	}
	if app.Meta[abi.MetaLinkage] != abi.LinkStatic {
		if opts.Libc == nil {
			return nil, errors.New("kernel: spawn: dynamically linked app needs a libc image")
		}
		if err := binfmt.Load(opts.Libc, sp); err != nil {
			return nil, fmt.Errorf("kernel: spawn libc: %w", err)
		}
	}
	if _, err := sp.Map("tls", mem.TLSBase, mem.TLSSize, mem.PermRead|mem.PermWrite); err != nil {
		return nil, err
	}
	if _, err := sp.Map("stack", mem.StackTop-mem.StackSize, mem.StackSize, mem.PermRead|mem.PermWrite); err != nil {
		return nil, err
	}

	scheme := opts.Preload
	if scheme == 0 {
		if s, err := core.ParseScheme(app.Meta[abi.MetaScheme]); err == nil {
			scheme = s
		} else {
			scheme = core.SchemeNone
		}
	}

	p := &Process{
		ID:     k.nextPID,
		Space:  sp,
		State:  StateRunning,
		Scheme: scheme,
		rand:   k.rand.Fork(),
		bin:    app,
	}
	k.nextPID++

	cpu := vm.New(sp, p.rand)
	cpu.Engine = k.Engine
	cpu.RIP = app.Entry
	cpu.TSCBase = k.now
	cpu.FSBase = mem.TLSBase
	cpu.GPR[isa.RSP] = mem.StackTop
	p.sys = sysHandler{k: k, p: p}
	cpu.Sys = &p.sys
	p.CPU = cpu

	if err := applyStartupHooks(p); err != nil {
		return nil, fmt.Errorf("kernel: spawn: startup hooks: %w", err)
	}
	return p, nil
}

// Fork clones a process: copy-on-write address-space clone (TLS included,
// as fork(2) semantics require), CPU state, and stdin. It then applies the
// scheme's fork hooks to the child only — the paper's wrapped fork() — and
// returns the runnable child.
//
// The clone is cheap by design: no segment bytes are copied until parent or
// child writes to them, and the copied CPU state carries the parent's
// decode-once code cache — including any basic blocks the compiled engine
// has already lowered — so a child costs O(segments written), not
// O(address-space size) — the fork-per-request oracle loop is the hottest
// path of the byte-by-byte attack experiments.
//
// The child is marked single-shot: its first accept consumes the delivered
// request, its second returns 0 (shutdown), matching a fork-per-connection
// worker.
func (k *Kernel) Fork(parent *Process) (*Process, error) {
	child := &Process{
		ID:     k.nextPID,
		Space:  parent.Space.Clone(),
		State:  parent.State,
		Scheme: parent.Scheme,
		// stdin contents are never mutated in place (delivery replaces the
		// slice wholesale), so the child aliases the parent's buffer and
		// tracks its own read offset — fork(2)'s shared file description.
		stdin:    parent.stdin,
		stdinOff: parent.stdinOff,
		isChild:  true,
		rand:     parent.rand.Fork(),
		bin:      parent.bin,
	}
	k.nextPID++

	cpu := new(vm.CPU)
	*cpu = *parent.CPU // shares the code cache; engine and cost model carry over
	cpu.SetMem(child.Space)
	cpu.Rand = child.rand
	// The child keeps reading machine time, not a replay of the parent's
	// cycle count: TSC is global hardware state.
	cpu.TSCBase = k.now - cpu.Cycles
	child.sys = sysHandler{k: k, p: child}
	cpu.Sys = &child.sys
	child.CPU = cpu

	if err := applyForkHooks(child); err != nil {
		return nil, fmt.Errorf("kernel: fork hooks: %w", err)
	}
	return child, nil
}

// Run executes the process until it exits, crashes, or blocks in accept.
// It returns the resulting state.
func (k *Kernel) Run(p *Process) State {
	st, _ := k.RunContext(context.Background(), p)
	return st
}

// RunContext is Run with cancellation plumbed into the step loop. When ctx
// is cancelled mid-execution the process is left in StateRunning exactly
// where it stopped — a later RunContext call resumes it — and ctx.Err() is
// returned. The error is nil whenever the process reached a terminal state
// or blocked in accept.
//
// The kernel delegates the hot loop to vm.CPU.RunContext — one dispatch
// loop for both execution engines — and classifies its outcome: halt means
// exit(2) completed, errAwaitAccept (raised by the accept syscall) parks
// the process, budget exhaustion crashes it with ErrBudget as the cause,
// and everything else is an abnormal termination.
func (k *Kernel) RunContext(ctx context.Context, p *Process) (State, error) {
	if p.State != StateRunning {
		return p.State, nil
	}
	startCycles := p.CPU.Cycles
	defer func() { k.now += p.CPU.Cycles - startCycles }()
	err := p.CPU.RunContext(ctx, k.MaxInsts)
	switch {
	case err == nil:
		p.State = StateExited
	case errors.Is(err, errAwaitAccept):
		p.State = StateWaiting
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return p.State, err
	default:
		p.State = StateCrashed
		p.CrashReason = err.Error()
		p.CrashErr = err
	}
	return p.State, nil
}

// sysHandler routes SYSCALL traps to the owning process.
type sysHandler struct {
	k *Kernel
	p *Process
}

// Syscall implements vm.Syscaller.
func (h *sysHandler) Syscall(cpu *vm.CPU, nr, a1, a2, a3 uint64) (uint64, error) {
	p := h.p
	switch nr {
	case abi.SysExit:
		p.ExitCode = a1
		cpu.Halt()
		return 0, nil

	case abi.SysAbort:
		return 0, &vm.CrashError{RIP: cpu.RIP, Reason: "abort (stack smashing detected)", Cause: ErrStackSmash}

	case abi.SysRead:
		if a1 != 0 {
			return 0, nil
		}
		n := len(p.stdin) - p.stdinOff
		if n > int(a3) {
			n = int(a3)
		}
		if n <= 0 {
			return 0, nil
		}
		// The kernel copies straight into the caller's buffer with no idea
		// of stack-frame boundaries — read(fd, buf, too_much) is the
		// overflow primitive of the threat model.
		if err := cpu.Mem.Write(a2, p.stdin[p.stdinOff:p.stdinOff+n]); err != nil {
			return 0, &vm.CrashError{RIP: cpu.RIP, Reason: "read into bad buffer", Cause: err}
		}
		p.stdinOff += n
		return uint64(n), nil

	case abi.SysWrite:
		if a1 != 1 {
			return a3, nil
		}
		b, err := cpu.Mem.Read(a2, int(a3))
		if err != nil {
			return 0, &vm.CrashError{RIP: cpu.RIP, Reason: "write from bad buffer", Cause: err}
		}
		p.Stdout = append(p.Stdout, b...)
		return a3, nil

	case abi.SysGetPID:
		return uint64(p.ID), nil

	case abi.SysFork:
		child, err := h.k.Fork(p)
		if err != nil {
			return 0, &vm.CrashError{RIP: cpu.RIP, Reason: "fork failed", Cause: err}
		}
		child.CPU.GPR[isa.RAX] = 0
		h.k.spawned = append(h.k.spawned, child)
		return uint64(child.ID), nil

	case abi.SysAccept:
		if p.pending != nil {
			p.stdin = p.pending
			p.stdinOff = 0
			p.pending = nil
			return uint64(len(p.stdin)), nil
		}
		if p.isChild {
			// Fork-per-connection worker: one request per child.
			return 0, nil
		}
		return 0, errAwaitAccept

	default:
		return 0, &vm.CrashError{RIP: cpu.RIP, Reason: fmt.Sprintf("unknown syscall %d", nr)}
	}
}
