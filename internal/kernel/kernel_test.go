package kernel

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/asm"
	"repro/internal/binfmt"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/rng"
	"repro/internal/vm"
)

// buildStatic assembles src into a statically linked binary with a data
// section and the given scheme metadata.
func buildStatic(t *testing.T, src, scheme string) *binfmt.Binary {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	b := binfmt.New()
	b.Entry = mem.TextBase
	b.AddSection(".text", mem.TextBase, mem.PermRead|mem.PermExec, p.Code)
	b.AddSection(".data", mem.DataBase, mem.PermRead|mem.PermWrite, make([]byte, abi.DataSize))
	b.Meta[abi.MetaLinkage] = abi.LinkStatic
	b.Meta[abi.MetaScheme] = scheme
	b.Meta[abi.MetaKind] = "app"
	for name, off := range p.Labels {
		b.AddSymbol(binfmt.Symbol{Name: name, Addr: mem.TextBase + uint64(off), Kind: binfmt.SymFunc})
	}
	return b
}

const exitProg = `
_start:
	movi $60, %rax
	movi $7, %rdi
	syscall
`

// serverProg is a hand-written fork server with a 16-byte stack buffer
// protected by a classic SSP canary at rbp-8. read(2) is called with the
// request length as the byte count — the paper's overflow vector.
const serverProg = `
_start:
	call serve
	movi $60, %rax
	movi $0, %rdi
	syscall
serve:
	push %rbp
	mov %rsp, %rbp
	subi $32, %rsp
	ldfs %fs:0x28, %rax
	store -8(%rbp), %rax
loop:
	movi $200, %rax
	syscall
	cmpi $0, %rax
	je check
	mov %rax, %rdx
	movi $0, %rax
	movi $0, %rdi
	lea -24(%rbp), %rsi
	syscall
	movi $1, %rax
	movi $1, %rdi
	lea -24(%rbp), %rsi
	movi $4, %rdx
	syscall
	jmp loop
check:
	load -8(%rbp), %rdx
	xorfs %fs:0x28, %rdx
	je ok
	call fail
ok:
	leave
	ret
fail:
	movi $101, %rax
	syscall
`

func TestSpawnRunExit(t *testing.T) {
	k := New(1)
	p, err := k.Spawn(buildStatic(t, exitProg, "none"), SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if st := k.Run(p); st != StateExited {
		t.Fatalf("state %s, want exited (%s)", st, p.CrashReason)
	}
	if p.ExitCode != 7 {
		t.Fatalf("exit code %d, want 7", p.ExitCode)
	}
}

func TestSpawnSeedsTLS(t *testing.T) {
	k := New(2)
	p, err := k.Spawn(buildStatic(t, exitProg, "p-ssp"), SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.TLS().Verify(); err != nil {
		t.Fatal(err)
	}
	c, err := p.TLS().Canary()
	if err != nil || c == 0 {
		t.Fatalf("canary %x err %v", c, err)
	}
}

func TestDynamicLinkageNeedsLibc(t *testing.T) {
	b := buildStatic(t, exitProg, "none")
	b.Meta[abi.MetaLinkage] = abi.LinkDynamic
	if _, err := New(1).Spawn(b, SpawnOpts{}); err == nil {
		t.Fatal("dynamic spawn without libc succeeded")
	}
}

func TestForkServerBenignRequest(t *testing.T) {
	k := New(3)
	srv, err := NewForkServer(k, buildStatic(t, serverProg, "ssp"), SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := srv.Handle([]byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Crashed {
		t.Fatalf("benign request crashed: %s", out.CrashReason)
	}
	if !bytes.Equal(out.Response, []byte("ping")) {
		t.Fatalf("response %q", out.Response)
	}
	if out.Cycles == 0 || out.Insts == 0 {
		t.Fatal("no cost accounting")
	}
}

func TestForkServerManyRequestsIndependent(t *testing.T) {
	k := New(4)
	srv, err := NewForkServer(k, buildStatic(t, serverProg, "ssp"), SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		out, err := srv.Handle([]byte("heyo"))
		if err != nil {
			t.Fatal(err)
		}
		if out.Crashed {
			t.Fatalf("request %d crashed: %s", i, out.CrashReason)
		}
	}
	if srv.Requests != 20 || srv.Crashes != 0 {
		t.Fatalf("requests=%d crashes=%d", srv.Requests, srv.Crashes)
	}
}

func TestOverflowCrashesSSPWorker(t *testing.T) {
	k := New(5)
	srv, err := NewForkServer(k, buildStatic(t, serverProg, "ssp"), SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// 17 bytes: fills the 16-byte buffer and corrupts the canary's low byte.
	// Pick a byte guaranteed to differ from the real low byte (with seed 5
	// the canary's low byte happens to be 0x41 — an accidental correct
	// guess that would make the worker survive).
	c, err := srv.Parent().TLS().Canary()
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x41}, 17)
	payload[16] = ^byte(c)
	out, err := srv.Handle(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Crashed {
		t.Fatal("overflow did not crash the worker")
	}
	if !strings.Contains(out.CrashReason, "stack smashing") {
		t.Fatalf("crash reason %q, want stack-smashing abort", out.CrashReason)
	}
}

func TestOverflowWithCorrectCanarySurvives(t *testing.T) {
	// The oracle property: a guess matching the real canary does not crash.
	k := New(6)
	srv, err := NewForkServer(k, buildStatic(t, serverProg, "ssp"), SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := srv.Parent().TLS().Canary()
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 24)
	for i := 0; i < 16; i++ {
		payload[i] = 'A'
	}
	for i := 0; i < 8; i++ {
		payload[16+i] = byte(c >> (8 * i))
	}
	out, err := srv.Handle(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Crashed {
		t.Fatalf("correct-canary overflow crashed: %s", out.CrashReason)
	}
}

func TestChildInheritsParentTLSCanary(t *testing.T) {
	// The vulnerability SSP has and the byte-by-byte attack needs.
	k := New(7)
	srv, err := NewForkServer(k, buildStatic(t, serverProg, "ssp"), SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	parentC, _ := srv.Parent().TLS().Canary()
	child, err := k.Fork(srv.Parent())
	if err != nil {
		t.Fatal(err)
	}
	childC, _ := child.TLS().Canary()
	if parentC != childC {
		t.Fatal("child TLS canary differs from parent under SSP")
	}
}

func TestPSSPForkRefreshesShadowOnly(t *testing.T) {
	k := New(8)
	srv, err := NewForkServer(k, buildStatic(t, serverProg, "ssp"), SpawnOpts{Preload: core.SchemePSSP})
	if err != nil {
		t.Fatal(err)
	}
	parentC, _ := srv.Parent().TLS().Canary()
	p0, p1, _ := srv.Parent().TLS().Shadow()

	child, err := k.Fork(srv.Parent())
	if err != nil {
		t.Fatal(err)
	}
	childC, _ := child.TLS().Canary()
	c0, c1, _ := child.TLS().Shadow()

	if childC != parentC {
		t.Fatal("P-SSP fork changed the TLS canary (must not)")
	}
	if c0 == p0 && c1 == p1 {
		t.Fatal("P-SSP fork did not refresh the shadow pair")
	}
	if !core.Check(c0, c1, childC) {
		t.Fatal("child shadow pair inconsistent")
	}
}

func TestRAFSSPBreaksInheritedFrames(t *testing.T) {
	// Table I's "Correctness: No" row: with renew-after-fork, a benign
	// request crashes the child when it returns through the frame its
	// parent created before the fork.
	k := New(9)
	srv, err := NewForkServer(k, buildStatic(t, serverProg, "ssp"), SpawnOpts{Preload: core.SchemeRAFSSP})
	if err != nil {
		t.Fatal(err)
	}
	out, err := srv.Handle([]byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Crashed {
		t.Fatal("RAF-SSP child survived returning through an inherited frame")
	}
}

func TestPSSPPreloadKeepsSSPBinaryCorrect(t *testing.T) {
	// Backward compatibility: the P-SSP preload on an SSP-compiled binary
	// must not break it (the paper's §VI-C compatibility experiment).
	k := New(10)
	srv, err := NewForkServer(k, buildStatic(t, serverProg, "ssp"), SpawnOpts{Preload: core.SchemePSSP})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		out, err := srv.Handle([]byte("benign"))
		if err != nil {
			t.Fatal(err)
		}
		if out.Crashed {
			t.Fatalf("request %d: false positive under P-SSP preload: %s", i, out.CrashReason)
		}
	}
}

func TestForkIsolatesMemory(t *testing.T) {
	k := New(11)
	srv, err := NewForkServer(k, buildStatic(t, serverProg, "ssp"), SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	child, err := k.Fork(srv.Parent())
	if err != nil {
		t.Fatal(err)
	}
	if err := child.Space.WriteU64(mem.DataBase+abi.GlobalsOff, 0xdead); err != nil {
		t.Fatal(err)
	}
	v, _ := srv.Parent().Space.ReadU64(mem.DataBase + abi.GlobalsOff)
	if v == 0xdead {
		t.Fatal("child write visible in parent")
	}
}

func TestDeliverToRunningProcessFails(t *testing.T) {
	k := New(12)
	p, err := k.Spawn(buildStatic(t, exitProg, "none"), SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Deliver([]byte("x")); err == nil {
		t.Fatal("deliver to running process succeeded")
	}
}

func TestOWFStartupParksKeyInRegisters(t *testing.T) {
	k := New(13)
	p, err := k.Spawn(buildStatic(t, exitProg, "p-ssp-owf"), SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	r12, r13 := p.CPU.GPR[12], p.CPU.GPR[13]
	if r12 == 0 && r13 == 0 {
		t.Fatal("OWF key not installed in r12/r13")
	}
}

func TestDCRStartupInitializesHead(t *testing.T) {
	k := New(14)
	p, err := k.Spawn(buildStatic(t, exitProg, "dcr"), SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	head, err := p.Space.ReadU64(mem.DataBase + abi.DCRHeadOff)
	if err != nil {
		t.Fatal(err)
	}
	if head != abi.DCRListEnd {
		t.Fatalf("DCR head 0x%x, want sentinel 0x%x", head, abi.DCRListEnd)
	}
}

func TestDynaGuardForkRewritesCAB(t *testing.T) {
	k := New(15)
	p, err := k.Spawn(buildStatic(t, exitProg, "dynaguard"), SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	oldC, _ := p.TLS().Canary()
	// Simulate two live frames whose canary slots sit in the stack segment.
	slotA := mem.StackTop - 0x100
	slotB := mem.StackTop - 0x200
	for _, s := range []uint64{slotA, slotB} {
		if err := p.Space.WriteU64(s, oldC); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Space.WriteU64(mem.DataBase+abi.DynaGuardCountOff, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.Space.WriteU64(mem.DataBase+abi.DynaGuardBufOff, slotA); err != nil {
		t.Fatal(err)
	}
	if err := p.Space.WriteU64(mem.DataBase+abi.DynaGuardBufOff+8, slotB); err != nil {
		t.Fatal(err)
	}

	child, err := k.Fork(p)
	if err != nil {
		t.Fatal(err)
	}
	newC, _ := child.TLS().Canary()
	if newC == oldC {
		t.Fatal("DynaGuard fork did not renew TLS canary")
	}
	for _, s := range []uint64{slotA, slotB} {
		v, _ := child.Space.ReadU64(s)
		if v != newC {
			t.Fatalf("CAB slot 0x%x not rewritten: %x vs %x", s, v, newC)
		}
	}
	// Parent untouched.
	v, _ := p.Space.ReadU64(slotA)
	if v != oldC {
		t.Fatal("DynaGuard fork modified the parent stack")
	}
}

func TestDCRForkWalksList(t *testing.T) {
	k := New(16)
	p, err := k.Spawn(buildStatic(t, exitProg, "dcr"), SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	oldC, _ := p.TLS().Canary()
	// Build a two-node list: slotB (newer, head) -> slotA -> sentinel.
	slotA := mem.StackTop - 0x100
	slotB := mem.StackTop - 0x200
	deltaA := (abi.DCRListEnd - slotA) >> 3
	deltaB := (slotA - slotB) >> 3
	if err := p.Space.WriteU64(slotA, oldC&abi.DCRHighMask|deltaA); err != nil {
		t.Fatal(err)
	}
	if err := p.Space.WriteU64(slotB, oldC&abi.DCRHighMask|deltaB); err != nil {
		t.Fatal(err)
	}
	if err := p.Space.WriteU64(mem.DataBase+abi.DCRHeadOff, slotB); err != nil {
		t.Fatal(err)
	}

	child, err := k.Fork(p)
	if err != nil {
		t.Fatal(err)
	}
	newC, _ := child.TLS().Canary()
	if newC&abi.DCRHighMask == oldC&abi.DCRHighMask {
		t.Fatal("DCR fork did not renew canary high bits")
	}
	for _, c := range []struct {
		slot  uint64
		delta uint64
	}{{slotA, deltaA}, {slotB, deltaB}} {
		v, _ := child.Space.ReadU64(c.slot)
		if v&abi.DCRHighMask != newC&abi.DCRHighMask {
			t.Fatalf("slot 0x%x high bits not rewritten", c.slot)
		}
		if v&abi.DCRDeltaMask != c.delta {
			t.Fatalf("slot 0x%x delta corrupted by walk", c.slot)
		}
	}
}

func TestRunBudgetCrashes(t *testing.T) {
	k := New(17)
	k.MaxInsts = 10
	srvBin := buildStatic(t, `
spin:
	jmp spin
`, "none")
	p, err := k.Spawn(srvBin, SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if st := k.Run(p); st != StateCrashed {
		t.Fatalf("state %s, want crashed on budget", st)
	}
}

func TestStateString(t *testing.T) {
	for _, s := range []State{StateRunning, StateWaiting, StateExited, StateCrashed, State(9)} {
		if s.String() == "" {
			t.Fatal("empty state name")
		}
	}
}

// --- copy-on-write fork semantics ---

// TestForkInheritsTLSByteIdentical pins the property the byte-by-byte
// attack exploits: under COW fork the child's TLS canary C is byte-for-byte
// the parent's, while the shadow pair was refreshed by the fork hook.
func TestForkInheritsTLSByteIdentical(t *testing.T) {
	k := New(21)
	srv, err := NewForkServer(k, buildStatic(t, serverProg, "p-ssp"), SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	parent := srv.Parent()
	pc, err := parent.TLS().Canary()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := parent.Space.Read(mem.TLSBase+core.TLSCanaryOff, 8)
	if err != nil {
		t.Fatal(err)
	}
	child, err := k.Fork(parent)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := child.TLS().Canary()
	if err != nil {
		t.Fatal(err)
	}
	if cc != pc {
		t.Fatalf("child canary %x, want parent's %x", cc, pc)
	}
	cb, err := child.Space.Read(mem.TLSBase+core.TLSCanaryOff, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cb, pb) {
		t.Fatalf("child canary bytes %x, want %x", cb, pb)
	}
	// The fork hook refreshed the child's shadow pair — and that refresh
	// (a write to the COW-shared TLS segment) must not leak to the parent.
	pc0, pc1, err := parent.TLS().Shadow()
	if err != nil {
		t.Fatal(err)
	}
	cc0, cc1, err := child.TLS().Shadow()
	if err != nil {
		t.Fatal(err)
	}
	if pc0 == cc0 && pc1 == cc1 {
		t.Fatal("child shadow pair not refreshed by fork hook")
	}
	if pc0^pc1 != pc || cc0^cc1 != cc {
		t.Fatal("shadow invariant broken by COW fork")
	}
	if err := parent.TLS().Verify(); err != nil {
		t.Fatalf("parent TLS corrupted by child's fork hook: %v", err)
	}
}

// TestForkParentWriteInvisibleToChild is the other COW direction: the
// parent's post-fork writes must not appear in an already-forked child.
func TestForkParentWriteInvisibleToChild(t *testing.T) {
	k := New(22)
	srv, err := NewForkServer(k, buildStatic(t, serverProg, "ssp"), SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	child, err := k.Fork(srv.Parent())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Parent().Space.WriteU64(mem.DataBase+abi.GlobalsOff, 0xbeef); err != nil {
		t.Fatal(err)
	}
	v, err := child.Space.ReadU64(mem.DataBase + abi.GlobalsOff)
	if err != nil {
		t.Fatal(err)
	}
	if v == 0xbeef {
		t.Fatal("parent's post-fork write visible in child")
	}
}

// TestForkFootprintConsistent keeps Table IV honest: a forked worker
// reports the same mapped footprint as its parent regardless of how many
// segments have been materialized.
func TestForkFootprintConsistent(t *testing.T) {
	k := New(23)
	srv, err := NewForkServer(k, buildStatic(t, serverProg, "ssp"), SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want := srv.Parent().Space.Footprint()
	child, err := k.Fork(srv.Parent())
	if err != nil {
		t.Fatal(err)
	}
	if got := child.Space.Footprint(); got != want {
		t.Fatalf("child footprint %d, want %d", got, want)
	}
	if err := child.Deliver([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if st := k.Run(child); st != StateExited {
		t.Fatalf("child state %s: %s", st, child.CrashReason)
	}
	if got := child.Space.Footprint(); got != want {
		t.Fatalf("child footprint after request %d, want %d", got, want)
	}
}

// TestForkServerManyRequestsSharedText asserts the COW payoff: across many
// requests the parent's text segment backing is never copied — every worker
// executes the same bytes the parent decoded once.
func TestForkServerManyRequestsSharedText(t *testing.T) {
	k := New(24)
	srv, err := NewForkServer(k, buildStatic(t, serverProg, "ssp"), SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	text := srv.Parent().Space.Segment(".text")
	if text == nil {
		t.Fatal("no .text segment")
	}
	base := &text.Data[0]
	for i := 0; i < 8; i++ {
		out, err := srv.Handle([]byte("ping"))
		if err != nil {
			t.Fatal(err)
		}
		if out.Crashed {
			t.Fatalf("request %d crashed: %s", i, out.CrashReason)
		}
	}
	if &text.Data[0] != base {
		t.Fatal("parent text segment was copied despite being read-only")
	}
}

// TestBudgetKillWrapsSharedSentinel pins the satellite fix: budget kills
// surface as vm.ErrBudget (aliased by kernel.ErrBudget) from the kernel
// loop, so facade classification is engine- and layer-independent.
func TestBudgetKillWrapsSharedSentinel(t *testing.T) {
	k := New(25)
	k.MaxInsts = 10
	p, err := k.Spawn(buildStatic(t, `
spin:
	jmp spin
`, "none"), SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if st := k.Run(p); st != StateCrashed {
		t.Fatalf("state %s, want crashed", st)
	}
	if !errors.Is(p.CrashErr, ErrBudget) {
		t.Fatalf("crash error %v does not wrap kernel.ErrBudget", p.CrashErr)
	}
	if !errors.Is(p.CrashErr, vm.ErrBudget) {
		t.Fatalf("crash error %v does not wrap vm.ErrBudget", p.CrashErr)
	}
}

func TestReplicaDeterministicDerivedKernels(t *testing.T) {
	k := New(77)
	k.MaxInsts = 1 << 20
	k.Engine = vm.EngineInterpreter
	// Draw from the base kernel first: ReplicaSeeded must not depend on
	// (or consume) the parent's entropy stream.
	_ = k.rand.Uint64()

	spawn := func(kk *Kernel) uint64 {
		p, err := kk.Spawn(buildStatic(t, exitProg, "ssp"), SpawnOpts{})
		if err != nil {
			t.Fatal(err)
		}
		c, err := p.TLS().Canary()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	a, b := k.ReplicaSeeded(rng.Mix(77, 3)), k.ReplicaSeeded(rng.Mix(77, 3))
	if a.MaxInsts != k.MaxInsts || a.Engine != k.Engine {
		t.Fatalf("replica dropped configuration: %+v", a)
	}
	if ca, cb := spawn(a), spawn(b); ca != cb {
		t.Fatalf("same stream produced different canaries: %x vs %x", ca, cb)
	}
	if c0, c1 := spawn(k.ReplicaSeeded(rng.Mix(77, 0))), spawn(k.ReplicaSeeded(rng.Mix(77, 1))); c0 == c1 {
		t.Fatal("distinct streams produced the same canary")
	}
}

func TestForkServerCloseRetiresParent(t *testing.T) {
	k := New(11)
	srv, err := NewForkServer(k, buildStatic(t, serverProg, "ssp"), SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Handle([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if srv.Closed() {
		t.Fatal("server reports closed before Close")
	}
	srv.Close()
	srv.Close() // idempotent
	if !srv.Closed() {
		t.Fatal("server does not report closed")
	}
	if _, err := srv.Handle([]byte("ping")); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Handle after Close: %v, want ErrServerClosed", err)
	}
	// The counters survive the teardown for post-mortem reads.
	if srv.Requests != 1 {
		t.Fatalf("requests = %d after Close, want 1", srv.Requests)
	}
}

func TestForkServerCloseRecyclesIntoNextBoot(t *testing.T) {
	// Serving, closing, and re-serving on one kernel must reach an
	// allocation steady state: each new parent's stack materializes from
	// the buffers its closed predecessor returned to the kernel pool.
	k := New(12)
	app := buildStatic(t, serverProg, "ssp")
	cycle := func() {
		srv, err := NewForkServer(k, app, SpawnOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Handle([]byte("ping")); err != nil {
			t.Fatal(err)
		}
		srv.Close()
	}
	cycle() // warm the pool
	warm := testing.AllocsPerRun(10, cycle)

	k2 := New(13)
	leaky := testing.AllocsPerRun(10, func() {
		srv, err := NewForkServer(k2, app, SpawnOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Handle([]byte("ping")); err != nil {
			t.Fatal(err)
		}
		// No Close: the parent's buffers are garbage, never recycled.
	})
	if warm >= leaky {
		t.Fatalf("close/boot cycle allocates %.0f, no-close cycle %.0f — Close is not recycling", warm, leaky)
	}
}
