package kernel

import (
	"sync/atomic"

	"repro/internal/obs"
)

// kernelMetrics is the fork-server's registry slice: one fixed handle per
// series, resolved once at install time so the request path never touches
// the registry.
type kernelMetrics struct {
	requests *obs.Counter
	crashes  *obs.Counter
	respawns *obs.Counter
}

var metrics atomic.Pointer[kernelMetrics]

// SetMetrics installs (or, with a nil registry, removes) the package-wide
// fork-server metrics. Same discipline as vm.CovMap: when disabled,
// HandleContext pays exactly one atomic load and nil check; when enabled,
// recording is three allocation-free atomic adds. Counting is pure
// read-side — it never influences scheduling or results.
func SetMetrics(reg *obs.Registry) {
	if reg == nil {
		metrics.Store(nil)
		return
	}
	metrics.Store(&kernelMetrics{
		requests: reg.Counter("kernel_forkserver_requests_total"),
		crashes:  reg.Counter("kernel_forkserver_crashes_total"),
		respawns: reg.Counter("kernel_forkserver_respawns_total"),
	})
}

// CountRespawn records one fork-server respawn (a parked parent found dead
// and rebooted — the warm pool's health check calls this).
func CountRespawn() {
	if m := metrics.Load(); m != nil {
		m.respawns.Inc()
	}
}
