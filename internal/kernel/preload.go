package kernel

import (
	"fmt"

	"repro/internal/abi"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
)

// This file models the paper's P-SSP shared library (Section V-A): a
// position-independent library preloaded into every protected program that
// (a) seeds the TLS canary state before main() runs — the setup_p-ssp
// constructor — and (b) wraps fork()/pthread_create() to refresh the child's
// TLS shadow canary.
//
// In the simulation the hooks run host-side at Spawn and Fork, which is
// semantically the same place: after the TLS is created or cloned and before
// guest code executes. The baselines' differing fork behaviours (RAF-SSP's
// canary renewal, DynaGuard's CAB walk, DCR's list walk) are modelled here
// too, so every Table I row runs under its intended semantics.

// applyStartupHooks is the constructor: seed the TLS canary C and the shadow
// pair, initialize per-scheme runtime state.
func applyStartupHooks(p *Process) error {
	if err := p.TLS().Seed(p.rand); err != nil {
		return err
	}
	switch p.Scheme {
	case core.SchemePSSPOWF:
		// The constructor generates the 128-bit AES key and parks it in the
		// reserved callee-save registers r12/r13 (the paper's global
		// register variables). It never touches overflowable memory.
		key := core.NewOWFKey(p.rand)
		p.CPU.GPR[isa.R13] = key.Lo
		p.CPU.GPR[isa.R12] = key.Hi
	case core.SchemeDCR:
		// The DCR list head starts at the above-all-frames sentinel.
		if p.Space.Segment("data") == nil && p.Space.Segment(".data") == nil {
			return fmt.Errorf("kernel: DCR preload needs a data section")
		}
		if err := p.Space.WriteU64(mem.DataBase+abi.DCRHeadOff, abi.DCRListEnd); err != nil {
			return err
		}
	}
	return nil
}

// applyForkHooks is the wrapped fork(): runs in the child only, after the
// address space (TLS included) was cloned from the parent.
func applyForkHooks(child *Process) error {
	switch child.Scheme {
	case core.SchemePSSP:
		// The paper's core move: refresh the *shadow* pair, leave the TLS
		// canary C untouched. Inherited frames still verify; new frames use
		// an independent pair.
		return child.TLS().RefreshShadow(child.rand)

	case core.SchemeRAFSSP:
		// Renew-after-fork: replace C itself. Deliberately reproduces the
		// correctness bug — frames inherited from the parent no longer pass
		// their epilogue checks.
		return child.TLS().SetCanary(child.rand.Uint64())

	case core.SchemeDynaGuard:
		return dynaGuardForkHook(child)

	case core.SchemeDCR:
		return dcrForkHook(child)

	default:
		// SSP, none, and the NT/LV/OWF/GB extensions need no fork work —
		// that is P-SSP-NT's deployment advantage.
		return nil
	}
}

// dynaGuardForkHook renews the TLS canary and rewrites every live stack
// canary recorded in the canary address buffer, keeping the child
// consistent (Petsios et al.).
func dynaGuardForkHook(child *Process) error {
	newC := child.rand.Uint64()
	count, err := child.Space.ReadU64(mem.DataBase + abi.DynaGuardCountOff)
	if err != nil {
		return fmt.Errorf("kernel: dynaguard fork: %w", err)
	}
	if count > abi.DynaGuardMaxEntries {
		return fmt.Errorf("kernel: dynaguard CAB corrupt: count %d", count)
	}
	for i := uint64(0); i < count; i++ {
		slotAddrAddr := mem.DataBase + abi.DynaGuardBufOff + 8*i
		slotAddr, err := child.Space.ReadU64(slotAddrAddr)
		if err != nil {
			return err
		}
		if err := child.Space.WriteU64(slotAddr, newC); err != nil {
			return fmt.Errorf("kernel: dynaguard rewrite slot 0x%x: %w", slotAddr, err)
		}
	}
	return child.TLS().SetCanary(newC)
}

// dcrForkHook renews the high bits of the TLS canary and walks the in-stack
// linked list of canaries, re-randomizing each while preserving the embedded
// offsets (Hawkins et al.).
func dcrForkHook(child *Process) error {
	oldC, err := child.TLS().Canary()
	if err != nil {
		return err
	}
	newC := child.rand.Uint64()&abi.DCRHighMask | oldC&abi.DCRDeltaMask
	cur, err := child.Space.ReadU64(mem.DataBase + abi.DCRHeadOff)
	if err != nil {
		return fmt.Errorf("kernel: dcr fork: %w", err)
	}
	for steps := 0; cur != abi.DCRListEnd; steps++ {
		if steps > 1<<16 {
			return fmt.Errorf("kernel: dcr list does not terminate (head chain loop)")
		}
		v, err := child.Space.ReadU64(cur)
		if err != nil {
			return fmt.Errorf("kernel: dcr walk at 0x%x: %w", cur, err)
		}
		delta := v & abi.DCRDeltaMask
		if err := child.Space.WriteU64(cur, newC&abi.DCRHighMask|delta); err != nil {
			return err
		}
		cur += delta << 3
	}
	return child.TLS().SetCanary(newC)
}
