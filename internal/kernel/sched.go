package kernel

import (
	"errors"

	"repro/internal/vm"
)

// RunInterleaved executes a set of runnable processes/threads round-robin,
// quantum instructions at a time, until all have exited or crashed (or the
// per-entity budget runs out). It returns the final states in input order.
//
// The simulator is single-threaded; interleaving at instruction granularity
// is what exposes shared-state races between threads — e.g. two threads'
// prologues/epilogues interleaving around the same TLS canary, which P-SSP's
// design must tolerate (each frame's pair is self-contained; only the
// never-changing C is shared).
func (k *Kernel) RunInterleaved(procs []*Process, quantum uint64) []State {
	if quantum == 0 {
		quantum = 64
	}
	budget := k.MaxInsts
	for spent := uint64(0); spent < budget; spent += quantum {
		live := false
		for _, p := range procs {
			if p.State != StateRunning {
				continue
			}
			live = true
			k.step(p, quantum)
		}
		if !live {
			break
		}
	}
	out := make([]State, len(procs))
	for i, p := range procs {
		out[i] = p.State
	}
	return out
}

// step runs up to n instructions of p, updating its state like Run does.
func (k *Kernel) step(p *Process, n uint64) {
	startCycles := p.CPU.Cycles
	defer func() { k.now += p.CPU.Cycles - startCycles }()
	for i := uint64(0); i < n; i++ {
		err := p.CPU.Step()
		switch {
		case err == nil:
		case errors.Is(err, errAwaitAccept):
			p.State = StateWaiting
			return
		case errors.Is(err, vm.ErrHalted):
			p.State = StateExited
			return
		default:
			p.State = StateCrashed
			p.CrashReason = err.Error()
			p.CrashErr = err
			return
		}
	}
}
