package kernel

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/vm"
)

// This file models pthread_create, the second function the paper's shared
// library wraps (Section V-A). A thread shares its process's address space
// but receives its own stack and its own TLS block; glibc copies the process
// canary C into the new thread's TCB, and the wrapped pthread_create then
// refreshes the new thread's *shadow* canary only — same recipe as fork,
// same reason: C must stay stable so frames already on any stack keep
// verifying.

// threadStride separates successive threads' TLS and stack mappings.
const threadStride uint64 = 0x0010_0000

// SpawnThread creates a new thread of proc: shared address space, fresh
// stack and TLS (with C copied from the creator), entry at the function
// symbol named entry. The scheme's thread hooks run before the thread
// executes, as the wrapped pthread_create does.
//
// The returned *Process shares Space with proc but has its own CPU; run it
// with Kernel.Run like any process. tid must be unique per live thread of
// the process (1, 2, ...).
func (k *Kernel) SpawnThread(proc *Process, entry string, tid int) (*Process, error) {
	if tid < 1 {
		return nil, fmt.Errorf("kernel: thread id %d must be >= 1", tid)
	}
	sym, ok := proc.bin.Symbol(entry)
	if !ok {
		return nil, fmt.Errorf("kernel: thread entry %q not found", entry)
	}

	tlsBase := mem.TLSBase - uint64(tid)*threadStride
	stackTop := mem.StackTop - mem.StackSize - uint64(tid)*threadStride
	if _, err := proc.Space.Map(fmt.Sprintf("tls.t%d", tid), tlsBase, mem.TLSSize, mem.PermRead|mem.PermWrite); err != nil {
		return nil, fmt.Errorf("kernel: thread tls: %w", err)
	}
	if _, err := proc.Space.Map(fmt.Sprintf("stack.t%d", tid), stackTop-mem.StackSize, mem.StackSize, mem.PermRead|mem.PermWrite); err != nil {
		return nil, fmt.Errorf("kernel: thread stack: %w", err)
	}

	t := &Process{
		ID:     k.nextPID,
		Space:  proc.Space, // shared — this is what makes it a thread
		State:  StateRunning,
		Scheme: proc.Scheme,
		rand:   proc.rand.Fork(),
		bin:    proc.bin,
	}
	k.nextPID++

	cpu := vm.New(proc.Space, t.rand)
	cpu.Engine = proc.CPU.Engine
	cpu.RIP = sym.Addr
	cpu.TSCBase = k.now
	cpu.FSBase = tlsBase
	cpu.GPR[isa.RSP] = stackTop
	// Threads inherit the process-wide OWF key registers.
	cpu.GPR[isa.R12] = proc.CPU.GPR[isa.R12]
	cpu.GPR[isa.R13] = proc.CPU.GPR[isa.R13]
	t.sys = sysHandler{k: k, p: t}
	cpu.Sys = &t.sys
	t.CPU = cpu

	// The entry function returns into the pthread_exit analog.
	exit, ok := proc.bin.Symbol("__thread_exit")
	if !ok {
		return nil, fmt.Errorf("kernel: binary lacks the __thread_exit runtime stub")
	}
	cpu.GPR[isa.RSP] -= 8
	if err := proc.Space.WriteU64(cpu.GPR[isa.RSP], exit.Addr); err != nil {
		return nil, err
	}

	// glibc behaviour: the new TCB receives the same process canary C...
	c, err := proc.TLSAt(proc.CPU.FSBase).Canary()
	if err != nil {
		return nil, fmt.Errorf("kernel: thread canary copy: %w", err)
	}
	newTLS := t.TLSAt(tlsBase)
	if err := newTLS.SetCanary(c); err != nil {
		return nil, err
	}
	// ...and the wrapped pthread_create refreshes only the shadow state.
	if err := newTLS.RefreshShadow(t.rand); err != nil {
		return nil, err
	}
	return t, nil
}
