package kernel

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/cc"
	"repro/internal/core"
)

// threadedProg has a worker function suitable as a thread entry: a protected
// frame that stamps a global and returns.
func threadedProg() *cc.Program {
	return &cc.Program{
		Name:    "threaded",
		Globals: []cc.Global{{Name: "stamp", Size: 8}},
		Funcs: []*cc.Func{
			{
				Name:   "main",
				Locals: []cc.Local{{Name: "n", Size: 8}},
				Body: []cc.Stmt{
					cc.Accept{Dst: "n"}, // park so the test can attach threads
				},
			},
			{
				Name: "worker",
				Locals: []cc.Local{
					{Name: "buf", Size: 16, IsBuffer: true},
					{Name: "x", Size: 8},
				},
				Body: []cc.Stmt{
					cc.SetConst{Dst: "x", Value: 77},
					cc.StoreGlobal{Global: "stamp", Src: "x"},
					cc.Compute{Ops: 16},
				},
			},
		},
	}
}

// spawnParked compiles the program under scheme and parks main at accept.
func spawnParked(t *testing.T, scheme core.Scheme) (*Kernel, *Process) {
	t.Helper()
	bin, err := cc.Compile(threadedProg(), cc.Options{Scheme: scheme, Linkage: abi.LinkStatic})
	if err != nil {
		t.Fatal(err)
	}
	k := New(31)
	p, err := k.Spawn(bin, SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if st := k.Run(p); st != StateWaiting {
		t.Fatalf("main did not park: %s (%s)", st, p.CrashReason)
	}
	return k, p
}

func TestThreadRunsProtectedFunctionAndExits(t *testing.T) {
	for _, scheme := range []core.Scheme{core.SchemeSSP, core.SchemePSSP, core.SchemePSSPNT, core.SchemePSSPOWF} {
		t.Run(scheme.String(), func(t *testing.T) {
			k, p := spawnParked(t, scheme)
			th, err := k.SpawnThread(p, "worker", 1)
			if err != nil {
				t.Fatal(err)
			}
			if st := k.Run(th); st != StateExited {
				t.Fatalf("thread state %s (%s)", st, th.CrashReason)
			}
			// The thread wrote to the shared address space.
			sym, ok := p.Binary().Symbol("stamp")
			if !ok {
				t.Fatal("no stamp global")
			}
			v, err := p.Space.ReadU64(sym.Addr)
			if err != nil {
				t.Fatal(err)
			}
			if v != 77 {
				t.Fatalf("stamp = %d, want 77 (shared memory broken)", v)
			}
		})
	}
}

func TestThreadSharesCanaryButNotShadow(t *testing.T) {
	// glibc copies C into every thread's TCB; the wrapped pthread_create
	// refreshes only the shadow pair — the same invariant as fork.
	k, p := spawnParked(t, core.SchemePSSP)
	th, err := k.SpawnThread(p, "worker", 1)
	if err != nil {
		t.Fatal(err)
	}
	cMain, err := p.TLS().Canary()
	if err != nil {
		t.Fatal(err)
	}
	cThread, err := th.TLS().Canary()
	if err != nil {
		t.Fatal(err)
	}
	if cMain != cThread {
		t.Fatalf("thread canary %x != process canary %x", cThread, cMain)
	}
	m0, m1, err := p.TLS().Shadow()
	if err != nil {
		t.Fatal(err)
	}
	t0, t1, err := th.TLS().Shadow()
	if err != nil {
		t.Fatal(err)
	}
	if m0 == t0 && m1 == t1 {
		t.Fatal("thread shadow pair identical to main's — not refreshed")
	}
	if !core.Check(t0, t1, cThread) {
		t.Fatal("thread shadow inconsistent")
	}
}

func TestThreadsHaveDisjointTLSAndStacks(t *testing.T) {
	k, p := spawnParked(t, core.SchemePSSP)
	t1, err := k.SpawnThread(p, "worker", 1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := k.SpawnThread(p, "worker", 2)
	if err != nil {
		t.Fatal(err)
	}
	if t1.CPU.FSBase == t2.CPU.FSBase || t1.CPU.FSBase == p.CPU.FSBase {
		t.Fatal("threads share an FS base")
	}
	if err := t1.TLS().Verify(); err != nil {
		t.Fatal(err)
	}
	if err := t2.TLS().Verify(); err != nil {
		t.Fatal(err)
	}
	if st := k.Run(t1); st != StateExited {
		t.Fatalf("t1 %s (%s)", st, t1.CrashReason)
	}
	if st := k.Run(t2); st != StateExited {
		t.Fatalf("t2 %s (%s)", st, t2.CrashReason)
	}
}

func TestThreadIDReuseRejected(t *testing.T) {
	k, p := spawnParked(t, core.SchemeSSP)
	if _, err := k.SpawnThread(p, "worker", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := k.SpawnThread(p, "worker", 1); err == nil {
		t.Fatal("duplicate tid accepted (overlapping mappings)")
	}
	if _, err := k.SpawnThread(p, "worker", 0); err == nil {
		t.Fatal("tid 0 accepted")
	}
	if _, err := k.SpawnThread(p, "ghost", 2); err == nil {
		t.Fatal("unknown entry accepted")
	}
}

func TestThreadOverflowDetected(t *testing.T) {
	// A thread's own protected frame still detects corruption: scribble over
	// the thread's canary slot mid-flight by single-stepping to the body.
	k, p := spawnParked(t, core.SchemePSSP)
	th, err := k.SpawnThread(p, "worker", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Step through the prologue (frame setup + canary install ~6 insts),
	// then trash the pair slots just below the thread's rbp.
	for i := 0; i < 8; i++ {
		if err := th.CPU.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	rbp := th.CPU.GPR[5]
	if err := th.Space.WriteU64(rbp-8, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if st := k.Run(th); st != StateCrashed {
		t.Fatalf("thread with corrupted canary exited %s", st)
	}
}

// forkProg is a hand-assembled guest that calls fork(2) itself: the child
// writes 'c' and exits 0, the parent writes 'p' and exits with the child's
// pid.
const forkProgSrc = `
_start:
	movi $57, %rax
	syscall
	cmpi $0, %rax
	je child
	mov %rax, %r15
	call emit_p
	mov %r15, %rdi
	movi $60, %rax
	syscall
child:
	call emit_c
	movi $0, %rdi
	movi $60, %rax
	syscall
emit_p:
	movi $112, %rax
	stfs %fs:0x900, %rax
	call emit
	ret
emit_c:
	movi $99, %rax
	stfs %fs:0x900, %rax
	call emit
	ret
emit:
	movi $1, %rax
	movi $1, %rdi
	movi $1, %rdx
	movi $0x7f000900, %rsi
	syscall
	ret
`

func TestGuestInitiatedFork(t *testing.T) {
	bin := buildStatic(t, forkProgSrc, "p-ssp")
	k := New(61)
	parent, err := k.Spawn(bin, SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if st := k.Run(parent); st != StateExited {
		t.Fatalf("parent state %s (%s)", st, parent.CrashReason)
	}
	if string(parent.Stdout) != "p" {
		t.Fatalf("parent stdout %q", parent.Stdout)
	}
	kids := k.TakeSpawned()
	if len(kids) != 1 {
		t.Fatalf("spawned %d children", len(kids))
	}
	child := kids[0]
	if parent.ExitCode != uint64(child.ID) {
		t.Fatalf("parent exit %d != child pid %d", parent.ExitCode, child.ID)
	}
	if st := k.Run(child); st != StateExited {
		t.Fatalf("child state %s (%s)", st, child.CrashReason)
	}
	if string(child.Stdout) != "c" {
		t.Fatalf("child stdout %q", child.Stdout)
	}
	if child.ExitCode != 0 {
		t.Fatalf("child exit %d", child.ExitCode)
	}
	// The P-SSP fork hook ran on the guest-forked child too.
	pc, _ := parent.TLS().Canary()
	cc2, _ := child.TLS().Canary()
	if pc != cc2 {
		t.Fatal("guest fork changed the TLS canary")
	}
	p0, p1, _ := parent.TLS().Shadow()
	c0, c1, _ := child.TLS().Shadow()
	if p0 == c0 && p1 == c1 {
		t.Fatal("guest fork did not refresh the child's shadow pair")
	}
	if k.TakeSpawned() != nil {
		t.Fatal("TakeSpawned did not clear the queue")
	}
}

func TestInterleavedThreadsNoFalsePositives(t *testing.T) {
	// Three threads of the same process run their protected worker frames
	// interleaved at a tight quantum. Each thread's canary state is
	// self-contained (own stack, own TLS shadow) while C is shared — no
	// interleaving may produce a canary mismatch.
	for _, scheme := range []core.Scheme{core.SchemePSSP, core.SchemePSSPNT, core.SchemePSSPOWF, core.SchemePSSPGB} {
		t.Run(scheme.String(), func(t *testing.T) {
			k, p := spawnParked(t, scheme)
			var threads []*Process
			for tid := 1; tid <= 3; tid++ {
				th, err := k.SpawnThread(p, "worker", tid)
				if err != nil {
					t.Fatal(err)
				}
				threads = append(threads, th)
			}
			states := k.RunInterleaved(threads, 3)
			for i, st := range states {
				if st != StateExited {
					t.Fatalf("thread %d state %s (%s)", i, st, threads[i].CrashReason)
				}
			}
		})
	}
}

func TestInterleavedQuantumDefault(t *testing.T) {
	k, p := spawnParked(t, core.SchemeSSP)
	th, err := k.SpawnThread(p, "worker", 1)
	if err != nil {
		t.Fatal(err)
	}
	states := k.RunInterleaved([]*Process{th}, 0) // default quantum
	if states[0] != StateExited {
		t.Fatalf("state %s", states[0])
	}
}
