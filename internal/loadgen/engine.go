package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/rng"
	"repro/internal/workpool"
)

// progressMeter is the wall-clock observability tap behind Config.Progress:
// every shard reports its served requests into it, and it invokes the
// callback every ProgressEvery requests plus at each shard completion. A nil
// meter (no listener) makes every method a single pointer check, keeping the
// default path allocation-free.
type progressMeter struct {
	mu        sync.Mutex
	fn        func(Progress)
	every     int
	sinceTick int
	prog      Progress
	lat       Hist
}

// newProgressMeter returns nil when no callback listens — the nil receiver
// IS the disabled state.
func newProgressMeter(cfg Config) *progressMeter {
	if cfg.Progress == nil {
		return nil
	}
	return &progressMeter{fn: cfg.Progress, every: cfg.ProgressEvery, prog: Progress{Shards: cfg.Shards}}
}

// request folds one served request into the tally and fires the callback on
// the tick boundary.
func (m *progressMeter) request(out Outcome) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.prog.Requests++
	if out.Crashed {
		m.prog.Crashes++
		if out.Detected {
			m.prog.Detections++
		}
	} else {
		m.prog.OK++
	}
	m.sinceTick++
	if m.sinceTick >= m.every {
		m.sinceTick = 0
		m.fn(m.prog)
	}
	m.mu.Unlock()
}

// shardDone merges a finished shard's latency histogram, refreshes the
// quantile snapshot, and fires the callback.
func (m *progressMeter) shardDone(lat *Hist) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.prog.ShardsDone++
	if lat != nil {
		m.lat.Merge(lat)
	}
	m.prog.P50Cycles = m.lat.Quantile(0.50)
	m.prog.P99Cycles = m.lat.Quantile(0.99)
	m.sinceTick = 0
	m.fn(m.prog)
	m.mu.Unlock()
}

// Outcome reports one served request from the engine's point of view.
type Outcome struct {
	// Cycles is the worker's service time in victim cycles.
	Cycles uint64
	// Crashed reports a dead worker; Detected the subset killed by a canary
	// check (the defence observing the probe).
	Crashed  bool
	Detected bool
}

// Server is one shard's request sink: a booted fork-per-request server. The
// engine calls Handle from a single goroutine per shard; the returned error
// covers transport failures only (a crashed worker is an Outcome, not an
// error), mirroring the facade's Server.Handle contract.
type Server interface {
	Handle(ctx context.Context, req []byte) (Outcome, error)
}

// Boot builds shard's private replica server. Like a campaign Runner it must
// derive all shard-varying state from the shard index so the shard's
// behaviour is independent of which worker executes it.
type Boot func(ctx context.Context, shard int) (Server, error)

// classTally accumulates one class's per-shard statistics.
type classTally struct {
	requests, crashes, detections int
	probeReps, probeSuccesses     int
	lat                           Hist
}

// shardStats is one shard's complete result.
type shardStats struct {
	requests, ok, crashes, detections int
	makespan                          uint64
	lat                               Hist
	classes                           []classTally
}

// expDraw samples an exponential with the given mean from r, as virtual
// cycles (floored; a zero draw is allowed — coincident arrivals are ordered
// by client index).
func expDraw(r *rng.Source, mean float64) uint64 {
	u := (float64(r.Uint64()>>11) + 0.5) / (1 << 53) // (0, 1)
	return uint64(-mean * math.Log(u))
}

// runShard simulates one shard's clients in virtual time against srv.
// The returned stats are valid even on error (partial, up to the failure).
func runShard(ctx context.Context, cfg Config, shard int, srv Server, mt *progressMeter) (st *shardStats, err error) {
	r := rng.NewStream(cfg.Seed, uint64(shard))
	st = &shardStats{classes: make([]classTally, len(cfg.Mix))}

	// Weighted class picker.
	totalWeight := 0
	for _, cl := range cfg.Mix {
		totalWeight += cl.Weight
	}
	pick := func() int {
		n := r.Intn(totalWeight)
		for i, cl := range cfg.Mix {
			n -= cl.Weight
			if n < 0 {
				return i
			}
		}
		return len(cfg.Mix) - 1 // unreachable
	}

	// Adversarial classes get a live strategy loop each; its probe/verdict
	// handoff is synchronous with this goroutine, so the shard stays
	// deterministic. The deferred stop also folds the replication counters
	// in on early error returns.
	probes := make([]*probeSource, len(cfg.Mix))
	for i, cl := range cfg.Mix {
		if cl.Probe != nil {
			probes[i] = newProbeSource(ctx, cl.Probe, cl.ProbeCfg,
				rng.Mix(rng.Mix(cfg.Seed, uint64(shard)), probeClassStream+uint64(i)))
		}
	}
	defer func() {
		for i, ps := range probes {
			if ps != nil {
				reps, succ := ps.stop()
				st.classes[i].probeReps += reps
				st.classes[i].probeSuccesses += succ
			}
		}
	}()

	budget := 0
	if cfg.Requests > 0 {
		budget = workpool.Share(cfg.Requests, shard, cfg.Shards)
		if budget == 0 {
			return st, nil
		}
	}

	// free is the virtual time the shard's server next idles: fork-per-
	// request workers of one simulated machine serialize, so a request
	// arriving before free queues behind the one in flight.
	var free uint64

	serve := func(arrival uint64) error {
		ci := pick()
		payload := cfg.Mix[ci].Payload
		if ps := probes[ci]; ps != nil {
			p, err := ps.next(ctx)
			if err != nil {
				return err
			}
			payload = p
		}
		out, err := srv.Handle(ctx, payload)
		if err != nil {
			return err
		}
		if ps := probes[ci]; ps != nil {
			if err := ps.observe(ctx, !out.Crashed); err != nil {
				return err
			}
		}
		start := arrival
		if free > start {
			start = free
		}
		completion := start + out.Cycles
		free = completion
		if completion > st.makespan {
			st.makespan = completion
		}
		latency := completion - arrival

		st.requests++
		cl := &st.classes[ci]
		cl.requests++
		st.lat.Record(latency)
		cl.lat.Record(latency)
		if out.Crashed {
			st.crashes++
			cl.crashes++
			if out.Detected {
				st.detections++
				cl.detections++
			}
		} else {
			st.ok++
		}
		mt.request(out)
		return nil
	}

	switch cfg.Arrivals.Kind {
	case OpenPoisson, OpenUniform:
		// Per-shard slice of the aggregate offered rate.
		mean := 1e6 * float64(cfg.Shards) / cfg.Arrivals.RatePerMcycle
		var clock uint64
		for n := 0; budget == 0 || n < budget; n++ {
			step := uint64(mean)
			if cfg.Arrivals.Kind == OpenPoisson {
				step = expDraw(r, mean)
			}
			clock += step
			if cfg.DurationCycles > 0 && clock > cfg.DurationCycles {
				break
			}
			if err := serve(clock); err != nil {
				return st, err
			}
		}

	case ClosedLoop:
		clients := workpool.Share(cfg.Arrivals.Clients, shard, cfg.Shards)
		if clients == 0 {
			return st, nil
		}
		think := func() uint64 {
			if cfg.Arrivals.ThinkCycles <= 0 {
				return 0
			}
			return expDraw(r, cfg.Arrivals.ThinkCycles)
		}
		// Pending next-arrival events, earliest (time, client) first.
		events := make(eventHeap, 0, clients)
		for c := 0; c < clients; c++ {
			events.push(clientEvent{at: think(), client: c})
		}
		for n := 0; budget == 0 || n < budget; n++ {
			ev := events.pop()
			if cfg.DurationCycles > 0 && ev.at > cfg.DurationCycles {
				break
			}
			if err := serve(ev.at); err != nil {
				return st, err
			}
			// The client thinks after its response completes (free is that
			// completion: the serve it just triggered ran last).
			events.push(clientEvent{at: free + think(), client: ev.client})
		}
	}
	return st, nil
}

// probeClassStream offsets the entropy streams of per-class probe sources
// from the shard's own arrival/mix stream.
const probeClassStream = 0x10ad

// clientEvent schedules client's next request at virtual time at.
type clientEvent struct {
	at     uint64
	client int
}

// eventHeap is a binary min-heap of client events ordered by (at, client) —
// the client-index tie-break keeps coincident arrivals deterministic.
type eventHeap []clientEvent

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].client < h[j].client
}

func (h *eventHeap) push(ev clientEvent) {
	*h = append(*h, ev)
	for i := len(*h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() clientEvent {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h).less(l, smallest) {
			smallest = l
		}
		if r < n && (*h).less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

// Run executes the workload: cfg.Shards self-contained client shards, each
// against its own boot'ed replica server, executed by cfg.Workers
// goroutines and merged in shard order. For a fixed seed the Report is
// bit-identical at any worker count.
//
// On cancellation Run returns the partial report of the work done so far
// together with ctx.Err(). Any transport/boot error aborts the run and is
// returned with the partial report.
func Run(ctx context.Context, cfg Config, boot Boot) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}

	stats := make([]*shardStats, cfg.Shards)
	mt := newProgressMeter(cfg)
	// Cancellation and fatal-error semantics live in workpool.Run; a shard
	// stores its (possibly partial) stats before reporting any error, so
	// cancelled runs still merge the work done so far.
	poolErr := workpool.Run(ctx, cfg.Shards, cfg.Workers, func(ctx context.Context, shard int) error {
		srv, err := boot(ctx, shard)
		if err != nil {
			return fmt.Errorf("loadgen: boot shard %d: %w", shard, err)
		}
		st, err := runShard(ctx, cfg, shard, srv, mt)
		stats[shard] = st // partial shard results still merge
		if err == nil {
			mt.shardDone(&st.lat)
		}
		return err
	})
	return merge(cfg, stats), poolErr
}

// ClassPartial is one class's slice of a shard partial, in mix order. The
// latency histogram travels in its lossless wire form (see Hist JSON).
type ClassPartial struct {
	Requests          int  `json:"requests"`
	Crashes           int  `json:"crashes"`
	Detections        int  `json:"detections"`
	ProbeReplications int  `json:"probe_replications"`
	ProbeSuccesses    int  `json:"probe_successes"`
	Latency           Hist `json:"latency"`
}

// Partial is one shard's complete result in wire form — the unit a fabric
// worker ships back. It mirrors the engine's internal shard state exactly
// (histograms included), so MergePartials reassembles the very slot array
// Run would have merged and the distributed report is bit-identical to the
// local one.
type Partial struct {
	Shard      int            `json:"shard"`
	Requests   int            `json:"requests"`
	OK         int            `json:"ok"`
	Crashes    int            `json:"crashes"`
	Detections int            `json:"detections"`
	Makespan   uint64         `json:"makespan"`
	Latency    Hist           `json:"latency"`
	Classes    []ClassPartial `json:"classes"`
}

// partial converts a shard's internal stats to wire form.
func (st *shardStats) partial(shard int) *Partial {
	p := &Partial{
		Shard:      shard,
		Requests:   st.requests,
		OK:         st.ok,
		Crashes:    st.crashes,
		Detections: st.detections,
		Makespan:   st.makespan,
		Latency:    st.lat,
	}
	for i := range st.classes {
		c := &st.classes[i]
		p.Classes = append(p.Classes, ClassPartial{
			Requests:          c.requests,
			Crashes:           c.crashes,
			Detections:        c.detections,
			ProbeReplications: c.probeReps,
			ProbeSuccesses:    c.probeSuccesses,
			Latency:           c.lat,
		})
	}
	return p
}

// stats converts a wire partial back to the engine's internal shard state.
func (p *Partial) stats() *shardStats {
	st := &shardStats{
		requests:   p.Requests,
		ok:         p.OK,
		crashes:    p.Crashes,
		detections: p.Detections,
		makespan:   p.Makespan,
		lat:        p.Latency,
	}
	for i := range p.Classes {
		c := &p.Classes[i]
		st.classes = append(st.classes, classTally{
			requests:       c.Requests,
			crashes:        c.Crashes,
			detections:     c.Detections,
			probeReps:      c.ProbeReplications,
			probeSuccesses: c.ProbeSuccesses,
			lat:            c.Latency,
		})
	}
	return st
}

// RunShards executes only shards [lo, hi) of the workload and returns their
// partials in shard order. cfg must be the full (ideally pre-Normalized)
// scenario — shard indices keep their global meaning, so rng streams and
// budget shares are identical to the single-process run.
func RunShards(ctx context.Context, cfg Config, boot Boot, lo, hi int) ([]*Partial, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if lo < 0 || hi > cfg.Shards || lo >= hi {
		return nil, fmt.Errorf("loadgen: shard range [%d,%d) outside shards [0,%d)", lo, hi, cfg.Shards)
	}
	workers := cfg.Workers
	if workers > hi-lo {
		workers = hi - lo
	}
	stats := make([]*shardStats, cfg.Shards)
	mt := newProgressMeter(cfg)
	poolErr := workpool.RunRange(ctx, lo, hi, workers, func(ctx context.Context, shard int) error {
		srv, err := boot(ctx, shard)
		if err != nil {
			return fmt.Errorf("loadgen: boot shard %d: %w", shard, err)
		}
		st, err := runShard(ctx, cfg, shard, srv, mt)
		stats[shard] = st
		if err == nil {
			mt.shardDone(&st.lat)
		}
		return err
	})
	if poolErr != nil {
		return nil, poolErr
	}
	var parts []*Partial
	for shard := lo; shard < hi; shard++ {
		if st := stats[shard]; st != nil {
			parts = append(parts, st.partial(shard))
		}
	}
	return parts, nil
}

// MergePartials folds wire partials into the report Run would have produced
// for the same cfg. Partials may arrive in any order and may repeat a shard
// (a reassigned lease): slots are keyed by shard index, so a duplicate
// overwrites with identical data. Missing shards merge like a cancelled
// run's.
func MergePartials(cfg Config, parts []*Partial) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	stats := make([]*shardStats, cfg.Shards)
	for _, p := range parts {
		if p != nil && p.Shard >= 0 && p.Shard < cfg.Shards {
			stats[p.Shard] = p.stats()
		}
	}
	return merge(cfg, stats), nil
}

// merge folds per-shard stats (in shard order) into the final report.
func merge(cfg Config, stats []*shardStats) *Report {
	rep := &Report{
		Label:    cfg.Label,
		Arrivals: cfg.Arrivals.String(),
		Shards:   cfg.Shards,
	}
	var all Hist
	classes := make([]classTally, len(cfg.Mix))
	for _, st := range stats {
		if st == nil {
			continue
		}
		rep.Requests += st.requests
		rep.OK += st.ok
		rep.Crashes += st.crashes
		rep.Detections += st.detections
		if st.makespan > rep.DurationCycles {
			rep.DurationCycles = st.makespan
		}
		all.Merge(&st.lat)
		for i := range classes {
			c, s := &classes[i], &st.classes[i]
			c.requests += s.requests
			c.crashes += s.crashes
			c.detections += s.detections
			c.probeReps += s.probeReps
			c.probeSuccesses += s.probeSuccesses
			c.lat.Merge(&s.lat)
		}
	}
	rep.Latency = all.Summary()
	for i, cl := range cfg.Mix {
		c := &classes[i]
		rep.ProbeReplications += c.probeReps
		rep.ProbeSuccesses += c.probeSuccesses
		rep.Classes = append(rep.Classes, ClassStats{
			Name:              cl.Name,
			Requests:          c.requests,
			Crashes:           c.crashes,
			Detections:        c.detections,
			ProbeReplications: c.probeReps,
			ProbeSuccesses:    c.probeSuccesses,
			Latency:           c.lat.Summary(),
		})
	}
	// Throughput sums per-shard rates (shards are independent replica
	// servers): this keeps an unloaded Poisson run's efficiency near 1,
	// where dividing the total count by the slowest shard's makespan would
	// systematically understate it.
	for _, st := range stats {
		if st == nil || st.makespan == 0 {
			continue
		}
		scale := 1e6 / float64(st.makespan)
		rep.AchievedPerMcycle += float64(st.requests) * scale
		rep.GoodputPerMcycle += float64(st.ok) * scale
	}
	if cfg.Arrivals.Kind == ClosedLoop {
		rep.OfferedPerMcycle = rep.AchievedPerMcycle
	} else {
		rep.OfferedPerMcycle = cfg.Arrivals.RatePerMcycle
	}
	return rep
}

// KneeEfficiency is the achieved/offered fraction below which a sweep point
// counts as past the saturation knee.
const KneeEfficiency = 0.95

// SweepPoint is one offered-load step of a sweep.
type SweepPoint struct {
	// Multiplier scales the base scenario's load (open loop: the offered
	// rate; closed loop: the client population).
	Multiplier float64 `json:"multiplier"`
	// Report is the point's full workload report.
	Report *Report `json:"report"`
}

// SweepReport is an offered-load sweep: the same scenario run at each
// multiplier, plus the located saturation knee.
type SweepReport struct {
	Label  string       `json:"label"`
	Points []SweepPoint `json:"points"`
	// KneeMultiplier is the largest multiplier whose achieved throughput
	// kept up with offered load (efficiency >= KneeEfficiency). Open-loop
	// scenarios only — a closed loop cannot overrun its servers, so there
	// it stays 0.
	KneeMultiplier float64 `json:"knee_multiplier"`
}

// Scale returns the scenario at sweep multiplier m: the offered rate (open
// loop) or client population (closed loop) scaled, with the "x%g" label
// suffix. It is the single sweep-point transform — RunSweep and the
// distributed fabric's sweep both use it, so their per-point scenarios are
// identical by construction. Scale applies to the unnormalized base
// scenario; normalize after scaling (shard clamps depend on the scaled
// population).
func Scale(cfg Config, m float64) Config {
	c := cfg
	c.Label = fmt.Sprintf("%s x%g", cfg.Label, m)
	if c.Arrivals.Kind == ClosedLoop {
		c.Arrivals.Clients = int(math.Round(float64(cfg.Arrivals.Clients) * m))
		if c.Arrivals.Clients < 1 {
			c.Arrivals.Clients = 1
		}
	} else {
		c.Arrivals.RatePerMcycle = cfg.Arrivals.RatePerMcycle * m
	}
	return c
}

// RunSweep steps the scenario's offered load through the multipliers
// (ascending; each point re-boots fresh shard servers via boot) and locates
// the saturation knee. On error the points completed so far are returned
// with it.
func RunSweep(ctx context.Context, cfg Config, multipliers []float64, boot Boot) (*SweepReport, error) {
	if len(multipliers) == 0 {
		return nil, errors.New("loadgen: sweep needs at least one multiplier")
	}
	sw := &SweepReport{Label: cfg.Label}
	for _, m := range multipliers {
		if !(m > 0) {
			return sw, fmt.Errorf("loadgen: non-positive sweep multiplier %g", m)
		}
		rep, err := Run(ctx, Scale(cfg, m), boot)
		if err != nil {
			return sw, err
		}
		sw.Points = append(sw.Points, SweepPoint{Multiplier: m, Report: rep})
		if cfg.Arrivals.Kind != ClosedLoop &&
			rep.Efficiency() >= KneeEfficiency && m > sw.KneeMultiplier {
			sw.KneeMultiplier = m
		}
	}
	return sw, nil
}
