package loadgen

import (
	"encoding/json"
	"fmt"

	"repro/internal/obs"
)

// Hist is a log-bucketed latency histogram in the HDR style: exact width-1
// buckets for small values, then every power-of-two octave split into 32
// linear sub-buckets, so any recorded value lands in a bucket whose upper
// bound overstates it by at most 1/32 (~3.1%). Buckets are a fixed-size
// array, so Record never allocates and Merge is a plain element-wise sum —
// which is what makes sharded aggregation deterministic: merging per-shard
// histograms in shard order yields bit-identical counts at any worker count.
//
// The zero value is an empty histogram ready for use. Hist is not safe for
// concurrent use; each shard owns its own and the engine merges after the
// workers drain.
type Hist struct {
	counts [histBuckets]uint64
	count  uint64
	sum    uint64
	min    uint64
	max    uint64
}

// The bucket axis (exact buckets, octave splits, index math) is owned by
// internal/obs so latency reports and the metrics registry agree on bucket
// boundaries; this package keeps only the deterministic merge/serialize
// layer on top of it.
const histBuckets = obs.NumBuckets

// bucketIdx maps a value to its bucket.
func bucketIdx(v uint64) int { return obs.BucketIdx(v) }

// bucketMax returns the bucket's inclusive upper bound — the value quantiles
// report for every sample in the bucket.
func bucketMax(i int) uint64 { return obs.BucketMax(i) }

// Record adds one sample.
func (h *Hist) Record(v uint64) {
	h.counts[bucketIdx(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	if o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.count }

// Mean returns the exact mean of the recorded samples (0 when empty).
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the value at quantile q in [0, 1]: the upper bound of the
// bucket holding the nearest-rank sample, clamped to the exact observed
// min/max. Quantile(0) is the minimum, Quantile(1) the maximum.
func (h *Hist) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q*float64(h.count) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketMax(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Bucket is one non-empty histogram bucket: Count samples with values at
// most Max (and above the previous bucket's Max).
type Bucket struct {
	Max   uint64 `json:"max"`
	Count uint64 `json:"count"`
}

// Buckets returns the non-empty buckets in ascending value order.
func (h *Hist) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.counts {
		if c != 0 {
			out = append(out, Bucket{Max: bucketMax(i), Count: c})
		}
	}
	return out
}

// histWire is Hist's JSON form: the sparse non-zero buckets by index plus
// the exact scalar tallies. It is lossless — a decoded histogram merges
// bit-identically to the original — which LatencySummary is not (its mean
// is a rounded float and its buckets carry values, not indices). The
// distributed fabric ships per-shard histograms in this form.
type histWire struct {
	Buckets [][2]uint64 `json:"buckets,omitempty"` // [bucket index, count] pairs, ascending
	Count   uint64      `json:"count"`
	Sum     uint64      `json:"sum"`
	Min     uint64      `json:"min,omitempty"`
	Max     uint64      `json:"max,omitempty"`
}

// MarshalJSON encodes the histogram losslessly (see histWire).
func (h Hist) MarshalJSON() ([]byte, error) {
	w := histWire{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, c := range h.counts {
		if c != 0 {
			w.Buckets = append(w.Buckets, [2]uint64{uint64(i), c})
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a histogram encoded by MarshalJSON.
func (h *Hist) UnmarshalJSON(b []byte) error {
	var w histWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*h = Hist{count: w.Count, sum: w.Sum, min: w.Min, max: w.Max}
	for _, bc := range w.Buckets {
		if bc[0] >= histBuckets {
			return fmt.Errorf("loadgen: histogram bucket index %d out of range", bc[0])
		}
		h.counts[bc[0]] += bc[1]
	}
	return nil
}

// LatencySummary is a histogram rendered for a report: sample count, exact
// mean/min/max, the paper-style tail quantiles, and the non-empty buckets so
// consumers can recompute any other quantile.
type LatencySummary struct {
	Count      uint64   `json:"count"`
	MeanCycles float64  `json:"mean_cycles"`
	Min        uint64   `json:"min_cycles"`
	P50        uint64   `json:"p50_cycles"`
	P90        uint64   `json:"p90_cycles"`
	P99        uint64   `json:"p99_cycles"`
	P999       uint64   `json:"p999_cycles"`
	Max        uint64   `json:"max_cycles"`
	Buckets    []Bucket `json:"buckets,omitempty"`
}

// Summary renders the histogram.
func (h *Hist) Summary() LatencySummary {
	return LatencySummary{
		Count:      h.count,
		MeanCycles: h.Mean(),
		Min:        h.min,
		P50:        h.Quantile(0.50),
		P90:        h.Quantile(0.90),
		P99:        h.Quantile(0.99),
		P999:       h.Quantile(0.999),
		Max:        h.max,
		Buckets:    h.Buckets(),
	}
}
