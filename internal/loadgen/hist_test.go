package loadgen

import (
	"math/rand"
	"testing"

	"repro/internal/obs"
)

func TestBucketRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	check := func(v uint64) {
		i := bucketIdx(v)
		hi := bucketMax(i)
		if v > hi {
			t.Fatalf("value %d above its bucket upper bound %d (bucket %d)", v, hi, i)
		}
		if i > 0 && bucketMax(i-1) >= v {
			t.Fatalf("value %d not above previous bucket bound %d (bucket %d)", v, bucketMax(i-1), i)
		}
		// Relative error of the reported bound is at most one sub-bucket.
		if v >= uint64(obs.NumExact) && float64(hi-v) > float64(v)/float64(obs.SubPerOctave)+1 {
			t.Fatalf("value %d: bound %d overstates by %d (> %d)", v, hi, hi-v, v/obs.SubPerOctave+1)
		}
	}
	for v := uint64(0); v < 4096; v++ {
		check(v)
	}
	for i := 0; i < 100000; i++ {
		check(r.Uint64() >> uint(r.Intn(64)))
	}
	check(^uint64(0))
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	for v := uint64(1); v <= 1000; v++ {
		h.Record(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d, want 1000", h.Count())
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %d, want 1", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("p100 = %d, want 1000", got)
	}
	// Log-bucketed: quantiles may overstate by at most one sub-bucket.
	for _, q := range []struct {
		q    float64
		want uint64
	}{{0.5, 500}, {0.9, 900}, {0.99, 990}, {0.999, 999}} {
		got := h.Quantile(q.q)
		if got < q.want || float64(got-q.want) > float64(q.want)/obs.SubPerOctave+1 {
			t.Errorf("p%g = %d, want within one sub-bucket above %d", q.q*100, got, q.want)
		}
	}
	if m := h.Mean(); m != 500.5 {
		t.Errorf("mean = %g, want 500.5 (sum is exact)", m)
	}
}

func TestHistMergeMatchesRecord(t *testing.T) {
	var whole, a, b Hist
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		v := uint64(r.Intn(1 << 20))
		whole.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a != whole {
		t.Fatal("merged histogram differs from direct recording")
	}
	var empty Hist
	a.Merge(&empty)
	if a != whole {
		t.Fatal("merging an empty histogram changed the result")
	}
	empty.Merge(&whole)
	if empty != whole {
		t.Fatal("merging into an empty histogram lost samples")
	}
}

func TestHistSummaryEmpty(t *testing.T) {
	var h Hist
	s := h.Summary()
	if s.Count != 0 || s.P99 != 0 || s.Buckets != nil {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}
