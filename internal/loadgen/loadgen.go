// Package loadgen is the deterministic virtual-time load-generation engine:
// it drives a traffic mix — weighted benign request classes, optionally
// interleaved with live attack-strategy probes — against fork-per-request
// servers, timestamps every request in victim cycles, and aggregates
// tail-latency histograms, offered-vs-achieved throughput, and per-class
// crash/detection counters.
//
// Time is virtual: the clock is the victim's cycle counter, not wall time.
// Arrivals are scheduled in virtual cycles by an open-loop process (Poisson
// or uniform) or a closed-loop population of think-time clients; each
// request's service time is the worker cycles its fork actually burns in the
// VM. Latency is completion minus arrival, so queueing delay behind a busy
// server is first-class — exactly the component the paper's sequential
// request loops cannot see.
//
// Determinism follows the campaign engine's discipline: the client
// population is sharded over per-shard replica servers, every shard is a
// self-contained work unit drawing from rng.NewStream(seed, shard), and
// shard results are merged in shard order after the workers drain. A fixed
// seed therefore yields a bit-identical Report at any worker count; Workers
// scales wall-clock time only. Shards is part of the scenario (it fixes how
// clients are partitioned), so changing it changes the workload, like
// changing Clients.
package loadgen

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"repro/internal/attack"
)

// Class is one request class of a traffic mix. Exactly one of Payload or
// Probe describes where its request bytes come from: a fixed benign payload,
// or a live adversary — a registered attack.Strategy run incrementally
// against the shard's server, its probes interleaved with the benign
// traffic and its oracle answers fed back from the very requests the engine
// schedules.
type Class struct {
	// Name labels the class in the report.
	Name string
	// Weight is the class's relative share of the mix (> 0).
	Weight int
	// Payload is the fixed request body of a benign class.
	Payload []byte
	// Probe, when non-nil, makes this an adversarial class: payloads are
	// drawn from successive replications of the strategy (a fresh
	// replication starts whenever one completes), each replication seeded
	// from the shard's stream.
	Probe attack.Strategy
	// ProbeCfg describes the victim frame for Probe (attack.Config
	// defaults apply).
	ProbeCfg attack.Config
}

// ArrivalKind selects the arrival model.
type ArrivalKind uint8

// Arrival models.
const (
	// OpenPoisson is an open loop with exponentially distributed
	// inter-arrival times: requests arrive at RatePerMcycle regardless of
	// how the server keeps up — the model that exposes the saturation knee.
	OpenPoisson ArrivalKind = iota
	// OpenUniform is an open loop with fixed inter-arrival spacing.
	OpenUniform
	// ClosedLoop is a population of Clients, each issuing its next request
	// one exponential think time after its previous response.
	ClosedLoop
)

// String names the model.
func (k ArrivalKind) String() string {
	switch k {
	case OpenPoisson:
		return "open-poisson"
	case OpenUniform:
		return "open-uniform"
	case ClosedLoop:
		return "closed-loop"
	default:
		return fmt.Sprintf("arrivals?%d", uint8(k))
	}
}

// Arrivals parameterizes the arrival model.
type Arrivals struct {
	Kind ArrivalKind
	// RatePerMcycle is the aggregate open-loop offered rate in requests per
	// million victim cycles, split evenly across shards.
	RatePerMcycle float64
	// Clients is the closed-loop population, partitioned across shards.
	Clients int
	// ThinkCycles is the closed-loop mean think time in cycles
	// (exponentially distributed; 0 means clients re-issue immediately).
	ThinkCycles float64
}

// String renders the model with its parameters.
func (a Arrivals) String() string {
	switch a.Kind {
	case ClosedLoop:
		return fmt.Sprintf("%s clients=%d think=%.0f", a.Kind, a.Clients, a.ThinkCycles)
	default:
		return fmt.Sprintf("%s rate=%g/Mcycle", a.Kind, a.RatePerMcycle)
	}
}

// Config is a workload scenario.
type Config struct {
	// Label names the scenario in its Report.
	Label string
	// Mix is the traffic mix (at least one class, weights > 0).
	Mix []Class
	// Arrivals is the arrival model.
	Arrivals Arrivals
	// Requests is the total request budget, partitioned across shards
	// (0 = unbounded; DurationCycles must then stop the run).
	Requests int
	// DurationCycles is the virtual-time horizon: no arrival is scheduled
	// past it (0 = unbounded; Requests must then stop the run). In-flight
	// requests still complete, so the report's virtual duration may exceed
	// it.
	DurationCycles uint64
	// Shards is the number of replica servers the clients are sharded over
	// (default 4). Part of the scenario: shard i always simulates the same
	// clients with the same randomness.
	Shards int
	// Workers bounds how many shards run concurrently (default GOMAXPROCS,
	// clamped to Shards). Wall-clock only — never results.
	Workers int
	// Seed drives all randomness: shard i draws from rng.NewStream(Seed, i).
	Seed uint64
	// Progress, when non-nil, receives a running tally roughly every
	// ProgressEvery served requests and at every shard completion,
	// serialized by the engine. It observes wall-clock order, so the
	// snapshot sequence varies with scheduling — only the final Report is
	// deterministic. The nil path costs one pointer check per request.
	Progress func(Progress)
	// ProgressEvery is the number of served requests between Progress calls
	// (default 64).
	ProgressEvery int
}

// Progress is a workload's running tally, cumulative over the requests
// served so far in wall-clock order.
type Progress struct {
	// ShardsDone counts shards that finished, out of Shards.
	ShardsDone, Shards int
	// Requests, OK, Crashes and Detections accumulate served requests and
	// their outcomes across all shards.
	Requests, OK, Crashes, Detections int
	// P50Cycles and P99Cycles are latency quantiles over the shards
	// completed so far (0 until the first shard finishes — per-request
	// quantile merges would dominate the engine's cost).
	P50Cycles, P99Cycles uint64
}

func (c Config) withDefaults() (Config, error) {
	if len(c.Mix) == 0 {
		return c, errors.New("loadgen: empty traffic mix")
	}
	for i, cl := range c.Mix {
		if cl.Weight <= 0 {
			return c, fmt.Errorf("loadgen: class %d (%s): non-positive weight %d", i, cl.Name, cl.Weight)
		}
		if (cl.Probe == nil) == (cl.Payload == nil) {
			return c, fmt.Errorf("loadgen: class %d (%s): exactly one of Payload or Probe must be set", i, cl.Name)
		}
	}
	switch c.Arrivals.Kind {
	case OpenPoisson, OpenUniform:
		if !(c.Arrivals.RatePerMcycle > 0) || math.IsInf(c.Arrivals.RatePerMcycle, 0) {
			return c, fmt.Errorf("loadgen: open-loop arrivals need RatePerMcycle > 0 (got %g)", c.Arrivals.RatePerMcycle)
		}
	case ClosedLoop:
		if c.Arrivals.Clients <= 0 {
			return c, fmt.Errorf("loadgen: closed-loop arrivals need Clients > 0 (got %d)", c.Arrivals.Clients)
		}
		if c.Arrivals.ThinkCycles < 0 {
			return c, fmt.Errorf("loadgen: negative ThinkCycles %g", c.Arrivals.ThinkCycles)
		}
	default:
		return c, fmt.Errorf("loadgen: unknown arrival kind %d", c.Arrivals.Kind)
	}
	if c.Requests < 0 {
		return c, fmt.Errorf("loadgen: negative request budget %d", c.Requests)
	}
	if c.Requests == 0 && c.DurationCycles == 0 {
		return c, errors.New("loadgen: unbounded workload: set Requests and/or DurationCycles")
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	// A shard exists to serve its slice of clients/budget; more shards than
	// either is dead weight that would only dilute the mix.
	if c.Arrivals.Kind == ClosedLoop && c.Shards > c.Arrivals.Clients {
		c.Shards = c.Arrivals.Clients
	}
	if c.Requests > 0 && c.Shards > c.Requests {
		c.Shards = c.Requests
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > c.Shards {
		c.Workers = c.Shards
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 64
	}
	// The virtual clock is integral cycles: a per-shard mean inter-arrival
	// under one cycle would floor to a zero step — a uniform open loop
	// bounded only by DurationCycles would then never advance and spin
	// forever. Any such rate is far past every server's capacity anyway,
	// so reject it instead of silently truncating.
	if k := c.Arrivals.Kind; k == OpenPoisson || k == OpenUniform {
		if max := 1e6 * float64(c.Shards); c.Arrivals.RatePerMcycle > max {
			return c, fmt.Errorf("loadgen: RatePerMcycle %g exceeds one arrival per cycle per shard (max %g for %d shards)",
				c.Arrivals.RatePerMcycle, max, c.Shards)
		}
	}
	return c, nil
}

// Normalize resolves the scenario's defaults and clamps (shards to
// clients/requests, workers to shards, ...) and validates it — exactly what
// Run does internally. The distributed fabric normalizes once on the
// coordinator so every worker leases shards of the same final scenario.
// Normalize is idempotent: normalizing a normalized config is the identity.
func (c Config) Normalize() (Config, error) {
	return c.withDefaults()
}

// ClassStats is one class's slice of the report.
type ClassStats struct {
	// Name echoes the class name.
	Name string `json:"name"`
	// Requests counts requests issued for the class; Crashes those whose
	// worker died, and Detections the subset killed by a canary check.
	Requests   int `json:"requests"`
	Crashes    int `json:"crashes"`
	Detections int `json:"detections"`
	// ProbeReplications and ProbeSuccesses count completed attack
	// replications and those that recovered the canary (probe classes only).
	ProbeReplications int `json:"probe_replications,omitempty"`
	ProbeSuccesses    int `json:"probe_successes,omitempty"`
	// Latency is the class's response-time distribution.
	Latency LatencySummary `json:"latency"`
}

// Report is a workload's deterministic aggregate. All fields are computed
// from per-shard results merged in shard order after the workers drain, so
// for a fixed seed the report is bit-identical at any worker count.
type Report struct {
	// Label echoes Config.Label; Arrivals describes the model.
	Label    string `json:"label"`
	Arrivals string `json:"arrivals"`
	// Shards is the replica-server count the clients were sharded over.
	Shards int `json:"shards"`
	// Requests counts requests served; OK those whose worker exited
	// cleanly; Crashes those whose worker died (Detections: by a canary
	// check).
	Requests   int `json:"requests"`
	OK         int `json:"ok"`
	Crashes    int `json:"crashes"`
	Detections int `json:"detections"`
	// ProbeReplications and ProbeSuccesses total the adversarial classes'
	// completed attack replications and canary recoveries.
	ProbeReplications int `json:"probe_replications,omitempty"`
	ProbeSuccesses    int `json:"probe_successes,omitempty"`
	// DurationCycles is the virtual makespan: the latest completion time
	// across shards.
	DurationCycles uint64 `json:"duration_cycles"`
	// OfferedPerMcycle is the configured open-loop offered rate (for
	// closed-loop runs it equals AchievedPerMcycle: a closed loop offers
	// only what completes). AchievedPerMcycle is requests served per million
	// cycles of makespan; GoodputPerMcycle counts only clean (OK) requests.
	OfferedPerMcycle  float64 `json:"offered_per_mcycle"`
	AchievedPerMcycle float64 `json:"achieved_per_mcycle"`
	GoodputPerMcycle  float64 `json:"goodput_per_mcycle"`
	// Latency is the all-classes response-time distribution (completion
	// minus arrival: service plus queueing delay).
	Latency LatencySummary `json:"latency"`
	// Classes breaks the traffic down per mix class, in mix order.
	Classes []ClassStats `json:"classes"`
}

// Efficiency is AchievedPerMcycle/OfferedPerMcycle — the fraction of offered
// load the servers kept up with (1 for closed loops by construction).
func (r *Report) Efficiency() float64 {
	if r.OfferedPerMcycle == 0 {
		return 0
	}
	return r.AchievedPerMcycle / r.OfferedPerMcycle
}
