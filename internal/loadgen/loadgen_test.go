package loadgen

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/attack"
)

// fakeServer is a VM-free fork-per-request analog: requests up to bufLen
// bytes are benign and cost baseCycles (+1 per payload byte, so classes are
// distinguishable); longer requests overflow onto the canary, and any
// overwritten byte that differs from the canary crashes the worker with a
// detection — the same oracle semantics the attack strategies expect.
type fakeServer struct {
	bufLen     int
	canary     [8]byte
	baseCycles uint64
	requests   atomic.Int64
}

func (f *fakeServer) Handle(_ context.Context, req []byte) (Outcome, error) {
	f.requests.Add(1)
	out := Outcome{Cycles: f.baseCycles + uint64(len(req))}
	if len(req) > f.bufLen {
		over := req[f.bufLen:]
		if len(over) > len(f.canary) {
			over = over[:len(f.canary)]
		}
		for i, b := range over {
			if b != f.canary[i] {
				out.Crashed = true
				out.Detected = true
				break
			}
		}
	}
	return out, nil
}

func fakeBoot(bufLen int, canary byte, base uint64) Boot {
	return func(_ context.Context, shard int) (Server, error) {
		s := &fakeServer{bufLen: bufLen, baseCycles: base}
		for i := range s.canary {
			// Per-shard canary, deterministic in the shard index.
			s.canary[i] = canary + byte(shard) + byte(i)*17
		}
		return s, nil
	}
}

func benignMix() []Class {
	return []Class{
		{Name: "get", Weight: 3, Payload: []byte("GET /")},
		{Name: "post", Weight: 1, Payload: []byte("POST /submit HTTP/1.1")},
	}
}

func mixedMix(t *testing.T) []Class {
	t.Helper()
	strat, err := attack.StrategyByName("adaptive")
	if err != nil {
		t.Fatal(err)
	}
	mix := benignMix()
	return append(mix, Class{
		Name:     "probe",
		Weight:   2,
		Probe:    strat,
		ProbeCfg: attack.Config{BufLen: fakeBufLen, MaxTrials: 64},
	})
}

// fakeBufLen is the fake servers' stack-buffer size; benign payloads stay
// under it, probe configs target it.
const fakeBufLen = 32

func baseConfig(mix []Class) Config {
	return Config{
		Label:    "test",
		Mix:      mix,
		Arrivals: Arrivals{Kind: OpenPoisson, RatePerMcycle: 50},
		Requests: 96,
		Shards:   4,
		Seed:     2018,
	}
}

// TestRunDeterministicAcrossWorkerCounts is the engine's core contract:
// same seed, bit-identical report at any worker count, for both a benign
// open-loop mix and a mixed benign+adaptive-probe scenario across all three
// arrival models.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	scenarios := []struct {
		name string
		cfg  func(t *testing.T) Config
	}{
		{"open-poisson/benign", func(t *testing.T) Config { return baseConfig(benignMix()) }},
		{"open-uniform/benign", func(t *testing.T) Config {
			c := baseConfig(benignMix())
			c.Arrivals.Kind = OpenUniform
			return c
		}},
		{"closed/benign", func(t *testing.T) Config {
			c := baseConfig(benignMix())
			c.Arrivals = Arrivals{Kind: ClosedLoop, Clients: 6, ThinkCycles: 500}
			return c
		}},
		{"open-poisson/mixed-probe", func(t *testing.T) Config { return baseConfig(mixedMix(t)) }},
		{"closed/mixed-probe", func(t *testing.T) Config {
			c := baseConfig(mixedMix(t))
			c.Arrivals = Arrivals{Kind: ClosedLoop, Clients: 6, ThinkCycles: 500}
			return c
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			var reports []*Report
			for _, workers := range []int{1, 4, 16} {
				cfg := sc.cfg(t)
				cfg.Workers = workers
				rep, err := Run(context.Background(), cfg, fakeBoot(fakeBufLen, 0x41, 1000))
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if rep.Requests != cfg.Requests {
					t.Fatalf("workers=%d: served %d requests, want %d", workers, rep.Requests, cfg.Requests)
				}
				reports = append(reports, rep)
			}
			for i := 1; i < len(reports); i++ {
				if !reflect.DeepEqual(reports[0], reports[i]) {
					t.Fatalf("report at workers=%d differs from workers=1:\n%+v\nvs\n%+v",
						[]int{1, 4, 16}[i], reports[i], reports[0])
				}
			}
		})
	}
}

func TestMixedScenarioCounters(t *testing.T) {
	// Probe-heavy mix against a narrow (2-byte) canary: a byte-by-byte
	// replication on the static fake canary deterministically succeeds in
	// ~150 trials, so a 500-requests-per-shard budget completes several
	// replications per shard.
	strat, err := attack.StrategyByName("byte-by-byte")
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig([]Class{
		{Name: "get", Weight: 1, Payload: []byte("GET /")},
		{Name: "probe", Weight: 3, Probe: strat,
			ProbeCfg: attack.Config{BufLen: fakeBufLen, CanaryLen: 2, MaxTrials: 600}},
	})
	cfg.Requests = 2000
	rep, err := Run(context.Background(), cfg, fakeBoot(fakeBufLen, 0x41, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != rep.OK+rep.Crashes {
		t.Fatalf("requests %d != ok %d + crashes %d", rep.Requests, rep.OK, rep.Crashes)
	}
	var probe, get *ClassStats
	for i := range rep.Classes {
		switch rep.Classes[i].Name {
		case "probe":
			probe = &rep.Classes[i]
		case "get":
			get = &rep.Classes[i]
		}
	}
	if probe == nil || get == nil {
		t.Fatalf("missing class stats: %+v", rep.Classes)
	}
	if get.Crashes != 0 {
		t.Errorf("benign class crashed %d times", get.Crashes)
	}
	if probe.Crashes == 0 || probe.Detections != probe.Crashes {
		t.Errorf("probe class: crashes %d, detections %d; want equal and > 0",
			probe.Crashes, probe.Detections)
	}
	if rep.Crashes != probe.Crashes || rep.Detections != probe.Detections {
		t.Errorf("totals (crashes %d, detections %d) don't match the probe class (%d, %d)",
			rep.Crashes, rep.Detections, probe.Crashes, probe.Detections)
	}
	// The fake canary is static per shard, so the adaptive prober must
	// eventually recover it within its 64-trial replications.
	if probe.ProbeSuccesses == 0 {
		t.Errorf("no probe replication recovered the static canary (replications: %d)",
			probe.ProbeReplications)
	}
	if probe.ProbeReplications < probe.ProbeSuccesses {
		t.Errorf("replications %d < successes %d", probe.ProbeReplications, probe.ProbeSuccesses)
	}
	if rep.ProbeSuccesses != probe.ProbeSuccesses {
		t.Errorf("report probe successes %d != class %d", rep.ProbeSuccesses, probe.ProbeSuccesses)
	}
}

func TestClosedLoopLatencyIncludesQueueing(t *testing.T) {
	// 8 clients, no think time, one shard: the server serializes them, so
	// the mean latency must far exceed the fixed service time.
	cfg := Config{
		Mix:      []Class{{Name: "q", Weight: 1, Payload: []byte("x")}},
		Arrivals: Arrivals{Kind: ClosedLoop, Clients: 8},
		Requests: 64,
		Shards:   1,
		Seed:     1,
	}
	rep, err := Run(context.Background(), cfg, fakeBoot(fakeBufLen, 0, 1000))
	if err != nil {
		t.Fatal(err)
	}
	service := float64(1000 + 1)
	if rep.Latency.MeanCycles < 4*service {
		t.Fatalf("mean latency %.0f under 8-way contention; want >> service time %.0f",
			rep.Latency.MeanCycles, service)
	}
}

func TestOpenLoopSweepFindsKnee(t *testing.T) {
	// Fixed ~1001-cycle service over 2 shards: aggregate capacity is
	// ~1997/Mcycle. The sweep from 0.25x to 4x of 1000/Mcycle must keep up
	// at <= capacity and degrade past it.
	cfg := Config{
		Label:    "knee",
		Mix:      []Class{{Name: "b", Weight: 1, Payload: []byte("x")}},
		Arrivals: Arrivals{Kind: OpenUniform, RatePerMcycle: 1000},
		Requests: 400,
		Shards:   2,
		Seed:     7,
	}
	sw, err := RunSweep(context.Background(), cfg, []float64{0.25, 0.5, 1, 4}, fakeBoot(fakeBufLen, 0, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 4 {
		t.Fatalf("points %d, want 4", len(sw.Points))
	}
	if sw.KneeMultiplier < 1 {
		t.Errorf("knee %g, want >= 1 (under capacity the servers keep up)", sw.KneeMultiplier)
	}
	over := sw.Points[3].Report
	if over.Efficiency() >= KneeEfficiency {
		t.Errorf("4x overload efficiency %.3f, want < %.2f", over.Efficiency(), KneeEfficiency)
	}
	if sw.KneeMultiplier >= 4 {
		t.Errorf("knee %g includes the overloaded point", sw.KneeMultiplier)
	}
	// Overload shows up as queueing: p99 latency at 4x must dwarf 0.25x.
	if over.Latency.P99 < 4*sw.Points[0].Report.Latency.P99 {
		t.Errorf("overload p99 %d not clearly above underload p99 %d",
			over.Latency.P99, sw.Points[0].Report.Latency.P99)
	}
}

func TestRunCancellationReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan struct{}, 1)
	boot := func(_ context.Context, shard int) (Server, error) {
		return serverFunc(func(ctx context.Context, req []byte) (Outcome, error) {
			select {
			case served <- struct{}{}:
			default:
			}
			if err := ctx.Err(); err != nil {
				return Outcome{}, err
			}
			return Outcome{Cycles: 10}, nil
		}), nil
	}
	cfg := Config{
		Mix:      []Class{{Name: "b", Weight: 1, Payload: []byte("x")}},
		Arrivals: Arrivals{Kind: OpenUniform, RatePerMcycle: 100},
		Requests: 1 << 20,
		Shards:   2,
		Workers:  1,
		Seed:     1,
	}
	go func() {
		<-served
		cancel()
	}()
	rep, err := Run(ctx, cfg, boot)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("no partial report on cancellation")
	}
	if rep.Requests >= 1<<20 {
		t.Fatal("cancellation did not stop the run")
	}
}

type serverFunc func(ctx context.Context, req []byte) (Outcome, error)

func (f serverFunc) Handle(ctx context.Context, req []byte) (Outcome, error) { return f(ctx, req) }

func TestBootErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	cfg := baseConfig(benignMix())
	_, err := Run(context.Background(), cfg, func(_ context.Context, shard int) (Server, error) {
		if shard == 2 {
			return nil, boom
		}
		s, _ := fakeBoot(fakeBufLen, 0, 100)(context.Background(), shard)
		return s, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boot failure", err)
	}
}

func TestConfigValidation(t *testing.T) {
	boot := fakeBoot(fakeBufLen, 0, 100)
	cases := []Config{
		{}, // empty mix
		{Mix: []Class{{Name: "x", Weight: 0, Payload: []byte("p")}}, Requests: 1},   // zero weight
		{Mix: []Class{{Name: "x", Weight: 1}}, Requests: 1},                         // neither payload nor probe
		{Mix: benignMix(), Arrivals: Arrivals{Kind: OpenPoisson}, Requests: 1},      // zero rate
		{Mix: benignMix(), Arrivals: Arrivals{Kind: ClosedLoop}, Requests: 1},       // zero clients
		{Mix: benignMix(), Arrivals: Arrivals{Kind: OpenUniform, RatePerMcycle: 1}}, // unbounded
		// Sub-cycle mean inter-arrival: the uniform step would floor to 0
		// and a duration-only bound would spin forever (regression guard).
		{Mix: benignMix(), Arrivals: Arrivals{Kind: OpenUniform, RatePerMcycle: 5e6}, Shards: 1, DurationCycles: 1000},
		{Mix: benignMix(), Arrivals: Arrivals{Kind: OpenPoisson, RatePerMcycle: 9e6}, Shards: 4, Requests: 8},
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), cfg, boot); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRequestBudgetSplitsAcrossShards(t *testing.T) {
	for _, total := range []int{1, 5, 7, 13} {
		cfg := Config{
			Mix:      []Class{{Name: "b", Weight: 1, Payload: []byte("x")}},
			Arrivals: Arrivals{Kind: OpenUniform, RatePerMcycle: 100},
			Requests: total,
			Shards:   4,
			Seed:     1,
		}
		rep, err := Run(context.Background(), cfg, fakeBoot(fakeBufLen, 0, 100))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Requests != total {
			t.Errorf("budget %d: served %d", total, rep.Requests)
		}
	}
}

func TestProgressTicksAndShardCompletions(t *testing.T) {
	// Every shard completion fires a snapshot (so the last one sees the
	// full run), request ticks respect ProgressEvery, counters are
	// monotone, and attaching the callback leaves the deterministic
	// report bit-identical.
	cfg := baseConfig(benignMix())
	cfg.Workers = 4
	cfg.ProgressEvery = 8
	var snaps []Progress
	cfg.Progress = func(p Progress) { snaps = append(snaps, p) }
	rep, err := Run(context.Background(), cfg, fakeBoot(fakeBufLen, 0x41, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots")
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Requests < snaps[i-1].Requests || snaps[i].ShardsDone < snaps[i-1].ShardsDone {
			t.Fatalf("snapshot %d regressed: %+v after %+v", i, snaps[i], snaps[i-1])
		}
	}
	last := snaps[len(snaps)-1]
	if last.ShardsDone != cfg.Shards || last.Shards != cfg.Shards {
		t.Fatalf("final snapshot %+v: want all %d shards done", last, cfg.Shards)
	}
	if last.Requests != rep.Requests || last.OK != rep.OK || last.Crashes != rep.Crashes {
		t.Fatalf("final snapshot %+v disagrees with report (%d req, %d ok, %d crashes)",
			last, rep.Requests, rep.OK, rep.Crashes)
	}
	if last.P50Cycles == 0 || last.P99Cycles < last.P50Cycles {
		t.Fatalf("final latency quantiles p50=%d p99=%d", last.P50Cycles, last.P99Cycles)
	}
	cfg.Progress, cfg.ProgressEvery = nil, 0
	silent, err := Run(context.Background(), cfg, fakeBoot(fakeBufLen, 0x41, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, silent) {
		t.Fatal("attaching a progress callback changed the deterministic report")
	}
}

func TestNilProgressMeterIsFree(t *testing.T) {
	// The disabled state is the nil receiver: per-request metering on the
	// hot path must not allocate or tick anything.
	var m *progressMeter
	if n := testing.AllocsPerRun(100, func() {
		m.request(Outcome{Cycles: 123})
		m.shardDone(nil)
	}); n != 0 {
		t.Fatalf("nil meter allocated %.0f times per request", n)
	}
}
