package loadgen

import (
	"context"
	"errors"

	"repro/internal/attack"
	"repro/internal/rng"
)

// probeSource turns an attack.Strategy into an incremental payload stream so
// the engine can interleave its probes with benign traffic. The strategy
// runs unmodified on its own goroutine against a channel-backed oracle:
// every Oracle.Try becomes one scheduled request — the payload crosses to
// the engine, which serves it at the workload's pace and sends the
// survived/crashed verdict back. When a replication finishes (success or
// exhausted budget), the next one starts on the next derived rng stream, so
// a probe class never runs dry.
//
// The handoff is strictly synchronous (unbuffered channels, one outstanding
// probe), which keeps the payload sequence a deterministic function of
// (seed, verdict history) — exactly what shard determinism needs.
type probeSource struct {
	payloads chan []byte
	results  chan bool
	done     chan struct{}
	cancel   context.CancelFunc

	// replications and successes are written only by the strategy
	// goroutine; stop()'s <-done is the happens-before edge that lets the
	// engine read them.
	replications int
	successes    int
}

// newProbeSource starts the strategy loop. seed derives each replication's
// guess randomness: replication r draws from rng.NewStream(seed, r).
func newProbeSource(ctx context.Context, strat attack.Strategy, cfg attack.Config, seed uint64) *probeSource {
	ctx, cancel := context.WithCancel(ctx)
	ps := &probeSource{
		payloads: make(chan []byte),
		results:  make(chan bool),
		done:     make(chan struct{}),
		cancel:   cancel,
	}
	go func() {
		defer close(ps.done)
		for rep := uint64(0); ; rep++ {
			res, err := strat.Attack(ctx, &chanOracle{ctx: ctx, ps: ps}, cfg, rng.NewStream(seed, rep))
			if err != nil {
				return // cancelled (the only error a chanOracle produces)
			}
			ps.replications++
			if res.Success {
				ps.successes++
			}
		}
	}()
	return ps
}

// chanOracle is the strategy-side half of the handoff.
type chanOracle struct {
	ctx context.Context
	ps  *probeSource
}

// Try implements attack.Oracle: publish the payload, wait for the engine's
// verdict.
func (o *chanOracle) Try(payload []byte) (bool, error) {
	select {
	case o.ps.payloads <- payload:
	case <-o.ctx.Done():
		return false, o.ctx.Err()
	}
	select {
	case ok := <-o.ps.results:
		return ok, nil
	case <-o.ctx.Done():
		return false, o.ctx.Err()
	}
}

// errProbeExhausted reports a strategy goroutine that exited while the
// engine still wanted probes — impossible for the registered strategies
// (their replication loop only exits on cancellation), so it flags a broken
// custom Strategy rather than a scenario condition.
var errProbeExhausted = errors.New("loadgen: probe strategy stopped producing payloads")

// next returns the adversary's next probe payload.
func (ps *probeSource) next(ctx context.Context) ([]byte, error) {
	select {
	case p := <-ps.payloads:
		return p, nil
	case <-ps.done:
		return nil, errProbeExhausted
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// observe reports the served probe's fate back to the strategy: survived
// means the worker answered without crashing.
func (ps *probeSource) observe(ctx context.Context, survived bool) error {
	select {
	case ps.results <- survived:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// stop cancels the strategy loop, waits for it to exit, and returns the
// completed replication and success counts.
func (ps *probeSource) stop() (replications, successes int) {
	ps.cancel()
	<-ps.done
	return ps.replications, ps.successes
}
