// Package mem implements the byte-addressed virtual memory of the simulated
// machine: a set of non-overlapping segments with permissions, little-endian
// word access, and copy-on-write whole-space cloning for the fork model.
//
// The address-space layout mirrors a conventional Linux x86-64 process
// closely enough for the paper's mechanics to carry over: code low, globals
// above it, the thread-local storage block reachable through the FS base,
// and a stack near the top of the space growing downward.
//
// A Space is not safe for concurrent use: even read paths update the
// internal segment-lookup cache. Every simulated machine owns its spaces and
// drives them from a single goroutine; distinct machines never share one.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Perm is a segment permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// String renders the permission like "rwx".
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Fault describes an invalid memory access. The VM converts faults into
// simulated process crashes (the analog of SIGSEGV), which is exactly the
// signal the byte-by-byte attacker observes.
type Fault struct {
	Addr  uint64
	Size  int
	Write bool
	Exec  bool
	Why   string
}

// Error implements error.
func (f *Fault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	if f.Exec {
		kind = "exec"
	}
	return fmt.Sprintf("mem: %s fault at 0x%x (size %d): %s", kind, f.Addr, f.Size, f.Why)
}

// cowChunk is the granularity of lazy copy-on-write materialization — the
// simulated page size. Segments larger than maxChunks pages use
// proportionally larger chunks so the bitmap stays a fixed-size inline
// array (no allocation per materialization).
const (
	cowChunk  = 4096
	maxChunks = 128
)

// cowLazyMin is the smallest segment that materializes lazily, chunk by
// chunk. Smaller segments (TLS) are copied eagerly: the bookkeeping would
// cost more than the copy.
const cowLazyMin = 2 * cowChunk

// Segment is one contiguous mapped region.
//
// Data may be shared copy-on-write with segments of forked spaces. All
// guest-visible access must go through the Space methods or CopyIn, which
// materialize private copies before writing (and, for lazily materialized
// segments, fill chunks before reading); code that touches Data[i] directly
// (test fixtures on freshly built spaces) must never do so after the space
// has been cloned.
type Segment struct {
	Name string
	Base uint64
	Perm Perm
	Data []byte

	// cow marks Data as shared with at least one other Space after a Clone;
	// the next write through prepareWrite materializes a private copy.
	cow bool
	// ext marks Data as externally backed (MapShared): the bytes belong to
	// the caller — typically a read-only mmap of an artifact-store blob
	// shared across OS processes — so they must never be written in place
	// and never be recycled into the buffer pool. ext segments are born cow,
	// which routes every write through prepareWrite's materialization; once
	// a private copy exists the flag clears.
	ext bool
	// gen counts content changes to executable segments. Decoded-instruction
	// caches record the generation they were built at and rebuild on
	// mismatch, which is how self-modifying writes to exec pages invalidate
	// stale decodes.
	gen uint64

	// shadow, when non-nil, is the shared backing a lazily materializing
	// segment copies from: Data is a private buffer whose chunks are filled
	// from shadow on first access. filled is the per-chunk bitmap (at most
	// maxChunks chunks; chunk holds the per-segment chunk size); nfilled
	// counts set bits so the shadow can be dropped once fully copied. A
	// worker that touches two pages of a 256 KiB stack copies two chunks,
	// not the mapping — fork costs O(pages written).
	shadow  []byte
	filled  [maxChunks / 64]uint64
	chunk   int
	nfilled int
}

// End returns the first address past the segment.
func (s *Segment) End() uint64 { return s.Base + uint64(len(s.Data)) }

// Gen returns the segment's content generation. It advances on every write
// to an executable segment (via the Space write paths or CopyIn), never on
// copy-on-write materialization alone.
func (s *Segment) Gen() uint64 { return s.gen }

// Shared reports whether the segment's backing bytes are copy-on-write
// shared with another space (true between a Clone and the next write).
func (s *Segment) Shared() bool { return s.cow }

// Contains reports whether [addr, addr+size) lies inside the segment.
func (s *Segment) Contains(addr uint64, size int) bool {
	return addr >= s.Base && addr+uint64(size) <= s.End() && addr+uint64(size) >= addr
}

// ensure fills the chunks covering [off, off+size) from the shadow backing.
// Callers check s.shadow != nil first; that nil test is the only cost lazy
// materialization adds to the access fast paths.
func (s *Segment) ensure(off uint64, size int) {
	if size <= 0 {
		return
	}
	first := int(off) / s.chunk
	last := int(off+uint64(size)-1) / s.chunk
	for c := first; c <= last; c++ {
		w, bit := c/64, uint64(1)<<(c%64)
		if s.filled[w]&bit != 0 {
			continue
		}
		lo := c * s.chunk
		hi := lo + s.chunk
		if hi > len(s.Data) {
			hi = len(s.Data)
		}
		copy(s.Data[lo:hi], s.shadow[lo:hi])
		s.filled[w] |= bit
		s.nfilled++
	}
	if s.nfilled == (len(s.Data)+s.chunk-1)/s.chunk {
		s.shadow = nil
	}
}

// ensureAll finishes a lazy materialization, leaving Data fully private.
func (s *Segment) ensureAll() {
	if s.shadow != nil {
		s.ensure(0, len(s.Data))
	}
}

// prepareWrite readies [off, off+size) for mutation: a copy-on-write
// backing is materialized into a private copy — eagerly for small or
// executable segments, chunk by chunk for large ones — and content changes
// to executable bytes bump the generation so decode caches resync. pool may
// be nil; when set it supplies recycled buffers (contents irrelevant: the
// eager path overwrites everything and the lazy path fills before any
// read).
func (s *Segment) prepareWrite(pool *BufPool, off uint64, size int) {
	if s.cow {
		if len(s.Data) >= cowLazyMin && s.Perm&PermExec == 0 {
			// Large non-executable segment: take a private buffer but copy
			// chunks only as they are touched. Unfilled chunks are never
			// read (every access path fills first), so the buffer's initial
			// contents are never observable.
			s.shadow = s.Data
			s.Data = pool.get(len(s.Data))
			s.chunk = cowChunk
			if len(s.Data) > maxChunks*cowChunk {
				s.chunk = (len(s.Data) + maxChunks - 1) / maxChunks
			}
			s.filled = [maxChunks / 64]uint64{}
			s.nfilled = 0
		} else {
			// Small or executable segment: the copy is cheaper than the
			// bookkeeping, and exec segments must stay contiguous-valid for
			// the decode caches (which read Data wholesale).
			d := make([]byte, len(s.Data))
			copy(d, s.Data)
			s.Data = d
		}
		s.cow = false
		s.ext = false // Data (and, on the lazy path, its chunks) is private now
	}
	if s.shadow != nil {
		s.ensure(off, size)
	}
	if s.Perm&PermExec != 0 {
		s.gen++
	}
}

// CopyIn copies p into the segment starting at byte offset off, bypassing
// permissions. The loader uses it to install code into read-only/executable
// segments.
func (s *Segment) CopyIn(off int, p []byte) error {
	if off < 0 || off+len(p) > len(s.Data) {
		return fmt.Errorf("mem: CopyIn to %q at offset %d (%d bytes) out of range (segment size %d)",
			s.Name, off, len(p), len(s.Data))
	}
	s.prepareWrite(nil, uint64(off), len(p))
	copy(s.Data[off:], p)
	return nil
}

// BufPool recycles large materialization buffers between short-lived forked
// children of one simulated machine. It is deliberately not thread-safe:
// a machine drives all of its spaces from one goroutine, and distinct
// machines get distinct pools.
type BufPool struct {
	bufs [][]byte
}

// poolMax bounds the buffers a pool retains.
const poolMax = 16

// get returns a pooled buffer of length n, or a fresh one. Pooled buffers
// come back dirty; callers must overwrite (eager copy) or fill-before-read
// (lazy chunks) every byte they expose.
func (p *BufPool) get(n int) []byte {
	if p != nil {
		for i, b := range p.bufs {
			if cap(b) >= n {
				p.bufs[i] = p.bufs[len(p.bufs)-1]
				p.bufs = p.bufs[:len(p.bufs)-1]
				return b[:n]
			}
		}
	}
	return make([]byte, n)
}

// put returns a buffer to the pool.
func (p *BufPool) put(b []byte) {
	if p == nil || len(p.bufs) >= poolMax {
		return
	}
	p.bufs = append(p.bufs, b)
}

// Len reports how many buffers the pool currently retains — an
// observability hook for teardown tests and the daemon's stats.
func (p *BufPool) Len() int {
	if p == nil {
		return 0
	}
	return len(p.bufs)
}

// Space is a full address space. The zero value is an empty space.
type Space struct {
	segs []*Segment // sorted by Base
	// last caches the most recently accessed segment. Accesses cluster
	// heavily (stack, then text, then data), so this single entry removes
	// the binary search from almost every load/store/fetch.
	last *Segment
	// pool, when non-nil, supplies and reclaims large materialization
	// buffers (see SetPool/Release). Clones inherit it.
	pool *BufPool
	// epoch counts sharing-topology changes: Clone (segments become
	// copy-on-write), Map, Release and ReleaseAll. Execution tiers that
	// cache direct segment views (View) key them to the epoch and drop
	// them when it moves. Ordinary content writes never bump it — views
	// alias the live backing array, so they observe those directly.
	epoch uint64
}

// Epoch returns the space's sharing-topology generation. Any View acquired
// at an earlier epoch must be discarded.
func (sp *Space) Epoch() uint64 { return sp.epoch }

// SetPool attaches a materialization buffer pool to the space. The kernel
// gives every process space its machine-wide pool so fork-per-request
// workers recycle their stack buffers instead of allocating fresh ones.
func (sp *Space) SetPool(p *BufPool) { sp.pool = p }

// NewSpace returns an empty address space.
func NewSpace() *Space { return &Space{} }

// Map creates a segment of the given size. It fails if the region overlaps
// an existing segment or wraps the address space.
func (sp *Space) Map(name string, base uint64, size int, perm Perm) (*Segment, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mem: map %q: non-positive size %d", name, size)
	}
	if base+uint64(size) < base {
		return nil, fmt.Errorf("mem: map %q: region wraps address space", name)
	}
	for _, s := range sp.segs {
		if base < s.End() && s.Base < base+uint64(size) {
			return nil, fmt.Errorf("mem: map %q at 0x%x overlaps segment %q [0x%x,0x%x)",
				name, base, s.Name, s.Base, s.End())
		}
	}
	// Large non-executable segments draw on the pool — this is how a closed
	// server's stack reaches the next boot on the same machine. Pooled
	// buffers come back dirty, and Map guarantees zeroed memory (program
	// behaviour must never depend on pool history), so recycled buffers are
	// cleared: an O(size) clear against a saved allocation, the same trade
	// make itself pays.
	var data []byte
	if size >= cowLazyMin && perm&PermExec == 0 {
		data = sp.pool.get(size)
		clear(data)
	} else {
		data = make([]byte, size)
	}
	seg := &Segment{Name: name, Base: base, Perm: perm, Data: data}
	sp.epoch++
	sp.segs = append(sp.segs, seg)
	sort.Slice(sp.segs, func(i, j int) bool { return sp.segs[i].Base < sp.segs[j].Base })
	return seg, nil
}

// MapShared maps data as a segment whose backing aliases the caller's bytes
// instead of copying them — the loader's zero-copy path for artifact-store
// blobs, where the same read-only mmap backs every process booted from one
// image. The segment is born copy-on-write with an external-backing mark, so
// the first guest write materializes a private buffer (lazily, chunk by
// chunk, for large non-executable segments) and the shared bytes themselves
// are never written and never recycled into the pool. data must stay valid
// and unmodified for the life of every space (and clone) that aliases it.
func (sp *Space) MapShared(name string, base uint64, data []byte, perm Perm) (*Segment, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("mem: map shared %q: empty backing", name)
	}
	if base+uint64(len(data)) < base {
		return nil, fmt.Errorf("mem: map shared %q: region wraps address space", name)
	}
	for _, s := range sp.segs {
		if base < s.End() && s.Base < base+uint64(len(data)) {
			return nil, fmt.Errorf("mem: map shared %q at 0x%x overlaps segment %q [0x%x,0x%x)",
				name, base, s.Name, s.Base, s.End())
		}
	}
	seg := &Segment{Name: name, Base: base, Perm: perm, Data: data, cow: true, ext: true}
	sp.epoch++
	sp.segs = append(sp.segs, seg)
	sort.Slice(sp.segs, func(i, j int) bool { return sp.segs[i].Base < sp.segs[j].Base })
	return seg, nil
}

// Segment returns the segment named name, or nil.
func (sp *Space) Segment(name string) *Segment {
	for _, s := range sp.segs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Segments returns the mapped segments in address order. The returned slice
// is the caller's to keep: appending to or reordering it never corrupts the
// space (the pointed-to segments are still the live ones).
func (sp *Space) Segments() []*Segment {
	return append([]*Segment(nil), sp.segs...)
}

// find locates the segment containing [addr, addr+size).
func (sp *Space) find(addr uint64, size int) *Segment {
	if l := sp.last; l != nil && l.Contains(addr, size) {
		return l
	}
	// Binary search on Base.
	i := sort.Search(len(sp.segs), func(i int) bool { return sp.segs[i].End() > addr })
	if i < len(sp.segs) && sp.segs[i].Contains(addr, size) {
		sp.last = sp.segs[i]
		return sp.segs[i]
	}
	return nil
}

// readable locates the readable segment covering [addr, addr+size), or
// returns a fault describing why there is none.
func (sp *Space) readable(addr uint64, size int) (*Segment, error) {
	seg := sp.find(addr, size)
	if seg == nil {
		return nil, &Fault{Addr: addr, Size: size, Why: "unmapped"}
	}
	if seg.Perm&PermRead == 0 {
		return nil, &Fault{Addr: addr, Size: size, Why: "segment " + seg.Name + " not readable"}
	}
	if seg.shadow != nil {
		seg.ensure(addr-seg.Base, size)
	}
	return seg, nil
}

// writable locates the writable segment covering [addr, addr+size) and
// readies it for mutation (copy-on-write materialization, generation bump
// for executable bytes).
func (sp *Space) writable(addr uint64, size int) (*Segment, error) {
	seg := sp.find(addr, size)
	if seg == nil {
		return nil, &Fault{Addr: addr, Size: size, Write: true, Why: "unmapped"}
	}
	if seg.Perm&PermWrite == 0 {
		return nil, &Fault{Addr: addr, Size: size, Write: true, Why: "segment " + seg.Name + " not writable"}
	}
	seg.prepareWrite(sp.pool, addr-seg.Base, size)
	return seg, nil
}

// Read copies size bytes at addr into a fresh slice. Word-sized accesses
// should prefer ReadU64/ReadU32, and bulk accesses ReadInto: they do not
// allocate.
func (sp *Space) Read(addr uint64, size int) ([]byte, error) {
	seg, err := sp.readable(addr, size)
	if err != nil {
		return nil, err
	}
	off := addr - seg.Base
	out := make([]byte, size)
	copy(out, seg.Data[off:off+uint64(size)])
	return out, nil
}

// ReadInto copies len(dst) bytes at addr into dst without allocating.
func (sp *Space) ReadInto(addr uint64, dst []byte) error {
	seg, err := sp.readable(addr, len(dst))
	if err != nil {
		return err
	}
	off := addr - seg.Base
	copy(dst, seg.Data[off:off+uint64(len(dst))])
	return nil
}

// Write copies p into memory at addr.
func (sp *Space) Write(addr uint64, p []byte) error {
	seg, err := sp.writable(addr, len(p))
	if err != nil {
		return err
	}
	copy(seg.Data[addr-seg.Base:], p)
	return nil
}

// ReadU64 reads a little-endian 64-bit word. It indexes the segment
// directly — no allocation — as this is the VM's load path.
func (sp *Space) ReadU64(addr uint64) (uint64, error) {
	seg, err := sp.readable(addr, 8)
	if err != nil {
		return 0, err
	}
	off := addr - seg.Base
	return binary.LittleEndian.Uint64(seg.Data[off : off+8]), nil
}

// WriteU64 writes a little-endian 64-bit word.
func (sp *Space) WriteU64(addr, v uint64) error {
	seg, err := sp.writable(addr, 8)
	if err != nil {
		return err
	}
	off := addr - seg.Base
	binary.LittleEndian.PutUint64(seg.Data[off:off+8], v)
	return nil
}

// ReadU32 reads a little-endian 32-bit word without allocating.
func (sp *Space) ReadU32(addr uint64) (uint32, error) {
	seg, err := sp.readable(addr, 4)
	if err != nil {
		return 0, err
	}
	off := addr - seg.Base
	return binary.LittleEndian.Uint32(seg.Data[off : off+4]), nil
}

// WriteU32 writes a little-endian 32-bit word.
func (sp *Space) WriteU32(addr uint64, v uint32) error {
	seg, err := sp.writable(addr, 4)
	if err != nil {
		return err
	}
	off := addr - seg.Base
	binary.LittleEndian.PutUint32(seg.Data[off:off+4], v)
	return nil
}

// ExecSegment returns the executable segment containing addr, for
// instruction fetch and predecoding.
func (sp *Space) ExecSegment(addr uint64) (*Segment, error) {
	seg := sp.find(addr, 1)
	if seg == nil {
		return nil, &Fault{Addr: addr, Size: 1, Exec: true, Why: "unmapped"}
	}
	if seg.Perm&PermExec == 0 {
		return nil, &Fault{Addr: addr, Size: 1, Exec: true, Why: "segment " + seg.Name + " not executable"}
	}
	return seg, nil
}

// Fetch returns up to size bytes of executable memory at addr for
// instruction decoding. Unlike Read it tolerates a short result at the end
// of the segment, since the decoder knows how many bytes it needs.
func (sp *Space) Fetch(addr uint64, size int) ([]byte, error) {
	seg, err := sp.ExecSegment(addr)
	if err != nil {
		f := err.(*Fault)
		f.Size = size
		return nil, err
	}
	off := addr - seg.Base
	end := off + uint64(size)
	if end > uint64(len(seg.Data)) {
		end = uint64(len(seg.Data))
	}
	return seg.Data[off:end], nil
}

// View returns a direct window over the private backing bytes containing
// addr: the byte slice plus the guest address of its first byte. Views are
// the compiled engine's memory fast path — reads and writes through the
// returned slice are equivalent to ReadU64/WriteU64 on addresses inside the
// window, with every slow-path responsibility proven away at acquisition:
//
//   - only readable+writable, non-executable segments qualify, so there are
//     no permission checks and no decode-generation bumps to perform;
//   - copy-on-write segments are refused, so no materialization can swap
//     the backing array out from under a live view (Clone, which re-marks
//     segments shared, bumps the epoch and thereby retires issued views);
//   - on a lazily materializing segment the window is the single filled
//     chunk containing addr, so unfilled shadow bytes stay unreachable.
//
// ok=false means addr has no qualifying window right now; callers fall back
// to the ordinary access paths (which also produce the faults).
func (sp *Space) View(addr uint64) (data []byte, base uint64, ok bool) {
	seg := sp.find(addr, 1)
	if seg == nil || seg.cow || seg.Perm&PermExec != 0 ||
		seg.Perm&(PermRead|PermWrite) != PermRead|PermWrite {
		return nil, 0, false
	}
	if seg.shadow != nil {
		off := addr - seg.Base
		seg.ensure(off, 1)
		lo := (int(off) / seg.chunk) * seg.chunk
		hi := lo + seg.chunk
		if hi > len(seg.Data) {
			hi = len(seg.Data)
		}
		return seg.Data[lo:hi:hi], seg.Base + uint64(lo), true
	}
	return seg.Data, seg.Base, true
}

// Clone returns a copy-on-write copy of the space — the memory half of the
// fork(2) model. The child gets an identical address space, including the
// TLS segment (precisely the inheritance the byte-by-byte attack exploits),
// but no bytes are copied up front: parent and child share each segment's
// backing array until one of them writes to it, at which point the writer
// materializes a private copy. A fork therefore costs O(segments written),
// not O(address-space size).
func (sp *Space) Clone() *Space {
	out := &Space{segs: make([]*Segment, len(sp.segs)), pool: sp.pool}
	// Every parent segment flips to copy-on-write below, so any direct view
	// of this space is now writable shared memory: retire them all.
	sp.epoch++
	// One backing array for all the child's segment headers: forks are the
	// hot allocation site of the attack oracle loop.
	headers := make([]Segment, len(sp.segs))
	for i, s := range sp.segs {
		// A half-materialized segment finishes its lazy fill first: the new
		// sharing generation must start from one coherent backing array.
		s.ensureAll()
		s.cow = true
		headers[i] = *s // shares Data, inherits cow=true and the generation
		out.segs[i] = &headers[i]
	}
	return out
}

// CloneDeep returns an eager deep copy of the space — the pre-COW fork
// behaviour. It exists for differential tests and benchmarks of the
// copy-on-write path; the kernel forks with Clone.
func (sp *Space) CloneDeep() *Space {
	out := &Space{segs: make([]*Segment, len(sp.segs))}
	for i, s := range sp.segs {
		s.ensureAll()
		d := make([]byte, len(s.Data))
		copy(d, s.Data)
		out.segs[i] = &Segment{Name: s.Name, Base: s.Base, Perm: s.Perm, Data: d, gen: s.gen}
	}
	return out
}

// Release returns the space's large private buffers to its pool and
// renders the space unusable (subsequent accesses fault as unmapped). It is
// only safe on a dead space: no process may reference it again, and
// segments still copy-on-write shared with a live space are skipped, as are
// executable segments (decode caches key on their backing identity). The
// fork server releases each single-shot worker after its request, which
// makes the steady-state oracle loop allocation-free for stack-sized
// buffers.
func (sp *Space) Release() {
	sp.epoch++
	for _, s := range sp.segs {
		if s.cow || s.Perm&PermExec != 0 || len(s.Data) < cowLazyMin {
			continue
		}
		sp.pool.put(s.Data)
		s.Data = nil
		s.shadow = nil
	}
	sp.segs = nil
	sp.last = nil
}

// ReleaseAll is Release for a space whose copy-on-write peers are all dead:
// segments still marked shared are reclaimed too. The caller asserts that no
// live space aliases this one's buffers — true for a parked fork-server
// parent whose single-shot children have all been released, which is how a
// closed server hands its stack and data buffers to the next boot on the
// same machine. Executable segments are still skipped (decode caches key on
// their backing identity), as are small segments the pool would not retain.
func (sp *Space) ReleaseAll() {
	sp.epoch++
	for _, s := range sp.segs {
		s.shadow = nil
		// Externally backed bytes (MapShared) belong to the artifact store's
		// mapping, not to this space: recycling them would hand read-only
		// mmap pages to the pool's clear().
		if s.ext || s.Perm&PermExec != 0 || len(s.Data) < cowLazyMin {
			continue
		}
		sp.pool.put(s.Data)
		s.Data = nil
	}
	sp.segs = nil
	sp.last = nil
}

// Footprint returns the total mapped bytes — used by the Table IV memory
// usage column. Copy-on-write sharing does not change the figure: a forked
// worker's footprint models its reserved address space, exactly as the
// paper measures it, so Table IV stays comparable across fork models.
func (sp *Space) Footprint() int {
	total := 0
	for _, s := range sp.segs {
		total += len(s.Data)
	}
	return total
}

// Canonical address-space layout constants shared by the loader and kernel.
const (
	// TextBase is where program code is mapped.
	TextBase uint64 = 0x0040_0000
	// DataBase is where initialized globals are mapped.
	DataBase uint64 = 0x0060_0000
	// HeapBase is where the bump-allocated heap is mapped.
	HeapBase uint64 = 0x0080_0000
	// TLSBase is the FS-segment base: thread-local storage. fs:0x28 holds
	// the classic SSP canary; fs:0x2a8.. holds the P-SSP shadow canary.
	TLSBase uint64 = 0x7f00_0000
	// TLSSize is the size of the TLS block.
	TLSSize = 0x1000
	// StackTop is the initial stack pointer; the stack grows down from here.
	StackTop uint64 = 0x7fff_0000
	// StackSize is the size of the stack mapping, ending at StackTop.
	StackSize = 0x40000
)
