// Package mem implements the byte-addressed virtual memory of the simulated
// machine: a set of non-overlapping segments with permissions, little-endian
// word access, and cheap whole-space cloning for the fork model.
//
// The address-space layout mirrors a conventional Linux x86-64 process
// closely enough for the paper's mechanics to carry over: code low, globals
// above it, the thread-local storage block reachable through the FS base,
// and a stack near the top of the space growing downward.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Perm is a segment permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// String renders the permission like "rwx".
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Fault describes an invalid memory access. The VM converts faults into
// simulated process crashes (the analog of SIGSEGV), which is exactly the
// signal the byte-by-byte attacker observes.
type Fault struct {
	Addr  uint64
	Size  int
	Write bool
	Exec  bool
	Why   string
}

// Error implements error.
func (f *Fault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	if f.Exec {
		kind = "exec"
	}
	return fmt.Sprintf("mem: %s fault at 0x%x (size %d): %s", kind, f.Addr, f.Size, f.Why)
}

// Segment is one contiguous mapped region.
type Segment struct {
	Name string
	Base uint64
	Perm Perm
	Data []byte
}

// End returns the first address past the segment.
func (s *Segment) End() uint64 { return s.Base + uint64(len(s.Data)) }

// Contains reports whether [addr, addr+size) lies inside the segment.
func (s *Segment) Contains(addr uint64, size int) bool {
	return addr >= s.Base && addr+uint64(size) <= s.End() && addr+uint64(size) >= addr
}

// CopyIn copies p into the segment starting at byte offset off, bypassing
// permissions. The loader uses it to install code into read-only/executable
// segments.
func (s *Segment) CopyIn(off int, p []byte) error {
	if off < 0 || off+len(p) > len(s.Data) {
		return fmt.Errorf("mem: CopyIn to %q at offset %d (%d bytes) out of range (segment size %d)",
			s.Name, off, len(p), len(s.Data))
	}
	copy(s.Data[off:], p)
	return nil
}

// Space is a full address space. The zero value is an empty space.
type Space struct {
	segs []*Segment // sorted by Base
}

// NewSpace returns an empty address space.
func NewSpace() *Space { return &Space{} }

// Map creates a segment of the given size. It fails if the region overlaps
// an existing segment or wraps the address space.
func (sp *Space) Map(name string, base uint64, size int, perm Perm) (*Segment, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mem: map %q: non-positive size %d", name, size)
	}
	if base+uint64(size) < base {
		return nil, fmt.Errorf("mem: map %q: region wraps address space", name)
	}
	for _, s := range sp.segs {
		if base < s.End() && s.Base < base+uint64(size) {
			return nil, fmt.Errorf("mem: map %q at 0x%x overlaps segment %q [0x%x,0x%x)",
				name, base, s.Name, s.Base, s.End())
		}
	}
	seg := &Segment{Name: name, Base: base, Perm: perm, Data: make([]byte, size)}
	sp.segs = append(sp.segs, seg)
	sort.Slice(sp.segs, func(i, j int) bool { return sp.segs[i].Base < sp.segs[j].Base })
	return seg, nil
}

// Segment returns the segment named name, or nil.
func (sp *Space) Segment(name string) *Segment {
	for _, s := range sp.segs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Segments returns the mapped segments in address order. The slice is owned
// by the Space; callers must not mutate it.
func (sp *Space) Segments() []*Segment { return sp.segs }

// find locates the segment containing [addr, addr+size).
func (sp *Space) find(addr uint64, size int) *Segment {
	// Binary search on Base.
	i := sort.Search(len(sp.segs), func(i int) bool { return sp.segs[i].End() > addr })
	if i < len(sp.segs) && sp.segs[i].Contains(addr, size) {
		return sp.segs[i]
	}
	return nil
}

// Read copies size bytes at addr into a fresh slice.
func (sp *Space) Read(addr uint64, size int) ([]byte, error) {
	seg := sp.find(addr, size)
	if seg == nil {
		return nil, &Fault{Addr: addr, Size: size, Why: "unmapped"}
	}
	if seg.Perm&PermRead == 0 {
		return nil, &Fault{Addr: addr, Size: size, Why: "segment " + seg.Name + " not readable"}
	}
	off := addr - seg.Base
	out := make([]byte, size)
	copy(out, seg.Data[off:off+uint64(size)])
	return out, nil
}

// Write copies p into memory at addr.
func (sp *Space) Write(addr uint64, p []byte) error {
	seg := sp.find(addr, len(p))
	if seg == nil {
		return &Fault{Addr: addr, Size: len(p), Write: true, Why: "unmapped"}
	}
	if seg.Perm&PermWrite == 0 {
		return &Fault{Addr: addr, Size: len(p), Write: true, Why: "segment " + seg.Name + " not writable"}
	}
	copy(seg.Data[addr-seg.Base:], p)
	return nil
}

// ReadU64 reads a little-endian 64-bit word.
func (sp *Space) ReadU64(addr uint64) (uint64, error) {
	b, err := sp.Read(addr, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// WriteU64 writes a little-endian 64-bit word.
func (sp *Space) WriteU64(addr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return sp.Write(addr, b[:])
}

// ReadU32 reads a little-endian 32-bit word.
func (sp *Space) ReadU32(addr uint64) (uint32, error) {
	b, err := sp.Read(addr, 4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// WriteU32 writes a little-endian 32-bit word.
func (sp *Space) WriteU32(addr uint64, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return sp.Write(addr, b[:])
}

// Fetch returns up to size bytes of executable memory at addr for
// instruction decoding. Unlike Read it tolerates a short result at the end
// of the segment, since the decoder knows how many bytes it needs.
func (sp *Space) Fetch(addr uint64, size int) ([]byte, error) {
	seg := sp.find(addr, 1)
	if seg == nil {
		return nil, &Fault{Addr: addr, Size: size, Exec: true, Why: "unmapped"}
	}
	if seg.Perm&PermExec == 0 {
		return nil, &Fault{Addr: addr, Size: size, Exec: true, Why: "segment " + seg.Name + " not executable"}
	}
	off := addr - seg.Base
	end := off + uint64(size)
	if end > uint64(len(seg.Data)) {
		end = uint64(len(seg.Data))
	}
	return seg.Data[off:end], nil
}

// Clone returns a deep copy of the space. This is the memory half of the
// fork(2) model: the child gets an identical address space, including the
// TLS segment — which is precisely the inheritance the byte-by-byte attack
// exploits.
func (sp *Space) Clone() *Space {
	out := &Space{segs: make([]*Segment, len(sp.segs))}
	for i, s := range sp.segs {
		d := make([]byte, len(s.Data))
		copy(d, s.Data)
		out.segs[i] = &Segment{Name: s.Name, Base: s.Base, Perm: s.Perm, Data: d}
	}
	return out
}

// Footprint returns the total mapped bytes — used by the Table IV memory
// usage column.
func (sp *Space) Footprint() int {
	total := 0
	for _, s := range sp.segs {
		total += len(s.Data)
	}
	return total
}

// Canonical address-space layout constants shared by the loader and kernel.
const (
	// TextBase is where program code is mapped.
	TextBase uint64 = 0x0040_0000
	// DataBase is where initialized globals are mapped.
	DataBase uint64 = 0x0060_0000
	// HeapBase is where the bump-allocated heap is mapped.
	HeapBase uint64 = 0x0080_0000
	// TLSBase is the FS-segment base: thread-local storage. fs:0x28 holds
	// the classic SSP canary; fs:0x2a8.. holds the P-SSP shadow canary.
	TLSBase uint64 = 0x7f00_0000
	// TLSSize is the size of the TLS block.
	TLSSize = 0x1000
	// StackTop is the initial stack pointer; the stack grows down from here.
	StackTop uint64 = 0x7fff_0000
	// StackSize is the size of the stack mapping, ending at StackTop.
	StackSize = 0x40000
)
