package mem

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

func newTestSpace(t *testing.T) *Space {
	t.Helper()
	sp := NewSpace()
	if _, err := sp.Map("text", 0x1000, 0x1000, PermRead|PermExec); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Map("data", 0x4000, 0x1000, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestMapOverlapRejected(t *testing.T) {
	sp := newTestSpace(t)
	cases := []struct {
		base uint64
		size int
	}{
		{0x1000, 16},     // exact start
		{0x1800, 0x1000}, // straddles end of text
		{0x0f00, 0x200},  // straddles start of text
		{0x3fff, 2},      // straddles start of data
	}
	for _, c := range cases {
		if _, err := sp.Map("x", c.base, c.size, PermRead); err == nil {
			t.Errorf("Map(0x%x, %d) succeeded, want overlap error", c.base, c.size)
		}
	}
}

func TestMapAdjacentAllowed(t *testing.T) {
	sp := newTestSpace(t)
	if _, err := sp.Map("x", 0x2000, 0x1000, PermRead); err != nil {
		t.Fatalf("adjacent map failed: %v", err)
	}
}

func TestMapRejectsBadSizes(t *testing.T) {
	sp := NewSpace()
	if _, err := sp.Map("z", 0, 0, PermRead); err == nil {
		t.Error("zero-size map succeeded")
	}
	if _, err := sp.Map("w", ^uint64(0)-4, 16, PermRead); err == nil {
		t.Error("wrapping map succeeded")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	sp := newTestSpace(t)
	payload := []byte("polymorphic canary")
	if err := sp.Write(0x4010, payload); err != nil {
		t.Fatal(err)
	}
	got, err := sp.Read(0x4010, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read back %q, want %q", got, payload)
	}
}

func TestU64RoundTripProperty(t *testing.T) {
	sp := newTestSpace(t)
	f := func(v uint64, off uint16) bool {
		addr := 0x4000 + uint64(off)%(0x1000-8)
		if err := sp.WriteU64(addr, v); err != nil {
			return false
		}
		got, err := sp.ReadU64(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestU32RoundTrip(t *testing.T) {
	sp := newTestSpace(t)
	if err := sp.WriteU32(0x4000, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v, err := sp.ReadU32(0x4000)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeef {
		t.Fatalf("got 0x%x", v)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	sp := newTestSpace(t)
	if err := sp.WriteU64(0x4000, 0x0102030405060708); err != nil {
		t.Fatal(err)
	}
	b, err := sp.Read(0x4000, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{8, 7, 6, 5, 4, 3, 2, 1}
	if !bytes.Equal(b, want) {
		t.Fatalf("byte order %v, want %v", b, want)
	}
}

func TestPermissionFaults(t *testing.T) {
	sp := newTestSpace(t)
	if err := sp.Write(0x1000, []byte{1}); err == nil {
		t.Error("write to text succeeded")
	}
	if _, err := sp.Fetch(0x4000, 1); err == nil {
		t.Error("fetch from data succeeded")
	}
	var f *Fault
	err := sp.Write(0x1000, []byte{1})
	if !errors.As(err, &f) {
		t.Fatalf("error %v is not a *Fault", err)
	}
	if !f.Write {
		t.Error("fault not marked as write")
	}
}

func TestUnmappedFaults(t *testing.T) {
	sp := newTestSpace(t)
	if _, err := sp.Read(0x9000, 1); err == nil {
		t.Error("read of unmapped address succeeded")
	}
	if err := sp.Write(0x9000, []byte{1}); err == nil {
		t.Error("write to unmapped address succeeded")
	}
	// Access straddling the end of a segment must fault, not partially apply.
	if _, err := sp.Read(0x4ffc, 8); err == nil {
		t.Error("read straddling segment end succeeded")
	}
}

func TestFetchShortAtEnd(t *testing.T) {
	sp := newTestSpace(t)
	b, err := sp.Fetch(0x1ffe, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 2 {
		t.Fatalf("fetch at segment end returned %d bytes, want 2", len(b))
	}
}

func TestCloneIsolation(t *testing.T) {
	sp := newTestSpace(t)
	if err := sp.WriteU64(0x4000, 0x1111); err != nil {
		t.Fatal(err)
	}
	cl := sp.Clone()
	if err := cl.WriteU64(0x4000, 0x2222); err != nil {
		t.Fatal(err)
	}
	orig, _ := sp.ReadU64(0x4000)
	if orig != 0x1111 {
		t.Fatalf("parent memory changed by child write: 0x%x", orig)
	}
	got, _ := cl.ReadU64(0x4000)
	if got != 0x2222 {
		t.Fatalf("child memory lost its write: 0x%x", got)
	}
}

func TestClonePreservesContents(t *testing.T) {
	sp := newTestSpace(t)
	payload := []byte{0xca, 0xfe, 0xba, 0xbe}
	if err := sp.Write(0x4100, payload); err != nil {
		t.Fatal(err)
	}
	got, err := sp.Clone().Read(0x4100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("clone lost contents: %v", got)
	}
}

func TestSegmentLookupByName(t *testing.T) {
	sp := newTestSpace(t)
	if sp.Segment("text") == nil {
		t.Error("Segment(text) = nil")
	}
	if sp.Segment("nope") != nil {
		t.Error("Segment(nope) != nil")
	}
}

func TestFootprint(t *testing.T) {
	sp := newTestSpace(t)
	if got := sp.Footprint(); got != 0x2000 {
		t.Fatalf("Footprint() = %d, want %d", got, 0x2000)
	}
}

func TestPermString(t *testing.T) {
	if got := (PermRead | PermWrite).String(); got != "rw-" {
		t.Fatalf("perm string %q", got)
	}
	if got := (PermRead | PermExec).String(); got != "r-x" {
		t.Fatalf("perm string %q", got)
	}
}

func TestFaultErrorMessage(t *testing.T) {
	f := &Fault{Addr: 0x1234, Size: 8, Write: true, Why: "unmapped"}
	msg := f.Error()
	if msg == "" || !bytes.Contains([]byte(msg), []byte("0x1234")) {
		t.Fatalf("unhelpful fault message %q", msg)
	}
}

func TestSegmentsSorted(t *testing.T) {
	sp := NewSpace()
	for _, base := range []uint64{0x9000, 0x1000, 0x5000} {
		if _, err := sp.Map("s", base, 0x100, PermRead); err != nil {
			t.Fatal(err)
		}
	}
	segs := sp.Segments()
	for i := 1; i < len(segs); i++ {
		if segs[i-1].Base >= segs[i].Base {
			t.Fatal("segments not sorted by base")
		}
	}
}

// --- copy-on-write fork semantics ---

func TestCloneSharesBackingUntilWrite(t *testing.T) {
	sp := newTestSpace(t)
	if err := sp.WriteU64(0x4000, 0xabcd); err != nil {
		t.Fatal(err)
	}
	cl := sp.Clone()
	if !sp.Segment("data").Shared() || !cl.Segment("data").Shared() {
		t.Fatal("segments not marked shared after Clone")
	}
	if &sp.Segment("data").Data[0] != &cl.Segment("data").Data[0] {
		t.Fatal("Clone copied segment bytes eagerly")
	}
	// First child write materializes the child's copy only.
	if err := cl.WriteU64(0x4000, 0x9999); err != nil {
		t.Fatal(err)
	}
	if cl.Segment("data").Shared() {
		t.Error("child segment still marked shared after write")
	}
	if !sp.Segment("data").Shared() {
		t.Error("parent segment lost its shared mark without writing")
	}
	if &sp.Segment("data").Data[0] == &cl.Segment("data").Data[0] {
		t.Fatal("child write did not materialize a private copy")
	}
}

func TestCloneParentWriteDoesNotLeakToChild(t *testing.T) {
	sp := newTestSpace(t)
	if err := sp.WriteU64(0x4000, 0x1111); err != nil {
		t.Fatal(err)
	}
	cl := sp.Clone()
	if err := sp.WriteU64(0x4000, 0x2222); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadU64(0x4000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x1111 {
		t.Fatalf("child sees parent's post-fork write: 0x%x", got)
	}
}

func TestCloneOfCloneIsolation(t *testing.T) {
	sp := newTestSpace(t)
	if err := sp.WriteU64(0x4000, 1); err != nil {
		t.Fatal(err)
	}
	c1 := sp.Clone()
	c2 := c1.Clone()
	if err := c2.WriteU64(0x4000, 3); err != nil {
		t.Fatal(err)
	}
	if err := c1.WriteU64(0x4000, 2); err != nil {
		t.Fatal(err)
	}
	for i, want := range map[*Space]uint64{sp: 1, c1: 2, c2: 3} {
		got, err := i.ReadU64(0x4000)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("space sees 0x%x, want 0x%x", got, want)
		}
	}
}

func TestCopyInMaterializesSharedSegment(t *testing.T) {
	sp := newTestSpace(t)
	cl := sp.Clone()
	if err := sp.Segment("text").CopyIn(0, []byte{0x42}); err != nil {
		t.Fatal(err)
	}
	if b := cl.Segment("text").Data[0]; b != 0 {
		t.Fatalf("CopyIn to parent leaked into child: 0x%x", b)
	}
}

func TestCloneDeepMatchesClone(t *testing.T) {
	sp := newTestSpace(t)
	if err := sp.Write(0x4000, []byte("deep-vs-cow")); err != nil {
		t.Fatal(err)
	}
	cow, deep := sp.Clone(), sp.CloneDeep()
	for _, addr := range []uint64{0x4000, 0x4004} {
		a, err := cow.ReadU64(addr)
		if err != nil {
			t.Fatal(err)
		}
		b, err := deep.ReadU64(addr)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("CloneDeep and Clone disagree at 0x%x: 0x%x vs 0x%x", addr, b, a)
		}
	}
	if deep.Segment("data").Shared() {
		t.Error("CloneDeep produced a shared segment")
	}
}

func TestFootprintStableAcrossCloneAndWrite(t *testing.T) {
	sp := newTestSpace(t)
	want := sp.Footprint()
	cl := sp.Clone()
	if got := cl.Footprint(); got != want {
		t.Fatalf("clone footprint %d, want %d", got, want)
	}
	if err := cl.WriteU64(0x4000, 1); err != nil {
		t.Fatal(err)
	}
	if got := cl.Footprint(); got != want {
		t.Fatalf("footprint changed by COW materialization: %d, want %d", got, want)
	}
	if got := sp.Footprint(); got != want {
		t.Fatalf("parent footprint changed: %d, want %d", got, want)
	}
}

// --- generation counters ---

func TestGenerationBumpsOnExecWrite(t *testing.T) {
	sp := NewSpace()
	seg, err := sp.Map("jit", 0x1000, 0x100, PermRead|PermWrite|PermExec)
	if err != nil {
		t.Fatal(err)
	}
	g0 := seg.Gen()
	if err := sp.WriteU64(0x1000, 0x1); err != nil {
		t.Fatal(err)
	}
	if seg.Gen() == g0 {
		t.Fatal("write to exec segment did not bump generation")
	}
	if err := seg.CopyIn(0, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if seg.Gen() == g0+1 {
		t.Fatal("CopyIn to exec segment did not bump generation")
	}
}

func TestGenerationStableOnDataWrite(t *testing.T) {
	sp := newTestSpace(t)
	seg := sp.Segment("data")
	g0 := seg.Gen()
	if err := sp.WriteU64(0x4000, 7); err != nil {
		t.Fatal(err)
	}
	if seg.Gen() != g0 {
		t.Fatal("write to non-exec segment bumped generation")
	}
}

// --- API contracts and fast paths ---

func TestSegmentsReturnsDefensiveCopy(t *testing.T) {
	sp := newTestSpace(t)
	segs := sp.Segments()
	segs[0] = nil
	segs = segs[:0]
	_ = segs
	if sp.Segment("text") == nil || sp.Segment("data") == nil {
		t.Fatal("mutating the Segments() result corrupted the space")
	}
	if got := len(sp.Segments()); got != 2 {
		t.Fatalf("space has %d segments after caller mutation, want 2", got)
	}
}

func TestReadInto(t *testing.T) {
	sp := newTestSpace(t)
	payload := []byte("0123456789abcdef")
	if err := sp.Write(0x4020, payload); err != nil {
		t.Fatal(err)
	}
	var buf [16]byte
	if err := sp.ReadInto(0x4020, buf[:]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:], payload) {
		t.Fatalf("ReadInto got %q, want %q", buf, payload)
	}
	if err := sp.ReadInto(0x4ffc, buf[:]); err == nil {
		t.Fatal("ReadInto straddling segment end succeeded")
	}
	if err := sp.ReadInto(0x9000, buf[:1]); err == nil {
		t.Fatal("ReadInto of unmapped address succeeded")
	}
}

func TestWordAccessDoesNotAllocate(t *testing.T) {
	sp := newTestSpace(t)
	var buf [16]byte
	allocs := testing.AllocsPerRun(200, func() {
		if err := sp.WriteU64(0x4000, 0xfeed); err != nil {
			t.Fatal(err)
		}
		if _, err := sp.ReadU64(0x4000); err != nil {
			t.Fatal(err)
		}
		if _, err := sp.ReadU32(0x4004); err != nil {
			t.Fatal(err)
		}
		if err := sp.ReadInto(0x4000, buf[:]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("word access fast paths allocate %.1f times per op, want 0", allocs)
	}
}

func TestLookupCacheSurvivesUnmappedProbe(t *testing.T) {
	sp := newTestSpace(t)
	if _, err := sp.Read(0x9000, 1); err == nil {
		t.Fatal("unmapped read succeeded")
	}
	v, err := sp.ReadU64(0x4000)
	if err != nil {
		t.Fatal(err)
	}
	_ = v
	if _, err := sp.ReadU64(0x1000); err != nil { // different segment than cached
		t.Fatal(err)
	}
}

// largeCOWSpace maps a lazily-materializing RW segment (4 chunks) filled
// with a position-dependent pattern — the shape of the fork-server stacks
// the loadgen path hammers.
func largeCOWSpace(t *testing.T, pool *BufPool) (*Space, uint64, int) {
	t.Helper()
	sp := NewSpace()
	if pool != nil {
		sp.SetPool(pool)
	}
	const base, size = 0x100000, 4 * cowChunk
	if _, err := sp.Map("stack", base, size, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	pattern := make([]byte, size)
	for i := range pattern {
		pattern[i] = byte(i * 31)
	}
	if err := sp.Write(base, pattern); err != nil {
		t.Fatal(err)
	}
	return sp, base, size
}

func patternByte(i int) byte { return byte(i * 31) }

// TestCOWWriteStraddlesChunkBoundary exercises the lazy-materialization
// write path across a 4 KiB chunk boundary: the write must fill both
// touched chunks from the shadow before mutating, leave every other chunk
// lazily intact, and never leak into the parent.
func TestCOWWriteStraddlesChunkBoundary(t *testing.T) {
	sp, base, size := largeCOWSpace(t, nil)
	child := sp.Clone()

	// An 8-byte word straddling the chunk 0 / chunk 1 boundary.
	straddle := base + cowChunk - 4
	if err := child.WriteU64(straddle, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	got, err := child.ReadU64(straddle)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x1122334455667788 {
		t.Fatalf("straddling word read back %#x", got)
	}
	// A bulk write straddling the chunk 2 / chunk 3 boundary.
	blob := []byte("straddling-bulk-write")
	blobAddr := base + 3*cowChunk - 7
	if err := child.Write(blobAddr, blob); err != nil {
		t.Fatal(err)
	}

	// Every byte of the child outside the two writes must still match the
	// parent pattern — including chunks never touched by a write, which
	// materialize on this read.
	for _, off := range []int{
		0, 1, cowChunk - 5, cowChunk + 4, cowChunk + 100, // around the word
		2*cowChunk - 1, 2 * cowChunk, // untouched middle chunk
		3*cowChunk - 8, 3*cowChunk + len(blob) - 7, size - 1, // around the blob
	} {
		b, err := child.Read(base+uint64(off), 1)
		if err != nil {
			t.Fatal(err)
		}
		if b[0] != patternByte(off) {
			t.Fatalf("child byte %d = %#x, want pattern %#x", off, b[0], patternByte(off))
		}
	}
	// The parent never sees either write.
	pw, err := sp.ReadU64(straddle)
	if err != nil {
		t.Fatal(err)
	}
	var want [8]byte
	for i := range want {
		want[i] = patternByte(int(straddle-base) + i)
	}
	if pw != binary.LittleEndian.Uint64(want[:]) {
		t.Fatalf("parent word at straddle = %#x, want pattern %#x", pw, binary.LittleEndian.Uint64(want[:]))
	}
	pb, err := sp.Read(blobAddr, len(blob))
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range pb {
		if b != patternByte(int(blobAddr-base)+i) {
			t.Fatalf("parent byte %d corrupted by child bulk write", int(blobAddr-base)+i)
		}
	}
}

// TestChunkBoundaryWriteInParentDoesNotLeakToChild is the mirror image:
// after a clone, a parent-side straddling write must not become visible
// through the child's lazily-filled chunks.
func TestChunkBoundaryWriteInParentDoesNotLeakToChild(t *testing.T) {
	sp, base, _ := largeCOWSpace(t, nil)
	child := sp.Clone()
	straddle := base + 2*cowChunk - 4
	if err := sp.WriteU64(straddle, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	got, err := child.ReadU64(straddle)
	if err != nil {
		t.Fatal(err)
	}
	var want [8]byte
	for i := range want {
		want[i] = patternByte(int(straddle-base) + i)
	}
	if got != binary.LittleEndian.Uint64(want[:]) {
		t.Fatalf("parent write leaked into child: %#x", got)
	}
}

// TestReleaseRecyclesBuffersWithoutLeak is the fork-server worker loop in
// miniature: worker 1 materializes its stack via the pool, scribbles over
// all of it, and dies (Release); worker 2 then forks from the same parent
// and must see the parent's bytes — never worker 1's — even though its
// materialization buffer is worker 1's recycled, dirty one.
func TestReleaseRecyclesBuffersWithoutLeak(t *testing.T) {
	pool := &BufPool{}
	sp, base, size := largeCOWSpace(t, pool)

	w1 := sp.Clone()
	junk := make([]byte, size)
	for i := range junk {
		junk[i] = 0xEE
	}
	if err := w1.Write(base, junk); err != nil {
		t.Fatal(err)
	}
	w1.Release()
	if len(pool.bufs) != 1 {
		t.Fatalf("pool holds %d buffers after Release, want 1", len(pool.bufs))
	}

	w2 := sp.Clone()
	// One-byte write forces materialization — taking worker 1's dirty
	// buffer from the pool — and fills only that chunk.
	if err := w2.Write(base+10, []byte{0x5A}); err != nil {
		t.Fatal(err)
	}
	if len(pool.bufs) != 0 {
		t.Fatalf("pool holds %d buffers after reuse, want 0", len(pool.bufs))
	}
	// Every byte of worker 2 — written chunk and lazily-filled ones alike —
	// must be the parent pattern (or the fresh write), never 0xEE.
	got, err := w2.Read(base, size)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		want := patternByte(i)
		if i == 10 {
			want = 0x5A
		}
		if b != want {
			t.Fatalf("worker 2 byte %d = %#x, want %#x (dirty pooled buffer leaked)", i, b, want)
		}
	}
	// The parent still has its pattern at the probed offsets.
	pb, err := sp.Read(base+10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pb[0] != patternByte(10) {
		t.Fatalf("parent corrupted: byte 10 = %#x", pb[0])
	}
}

// TestReleaseSkipsSharedSegments: a worker that dies without writing still
// shares every backing with its parent; Release must neither pool those
// shared buffers nor disturb the parent.
func TestReleaseSkipsSharedSegments(t *testing.T) {
	pool := &BufPool{}
	sp, base, _ := largeCOWSpace(t, pool)
	w := sp.Clone()
	w.Release()
	if len(pool.bufs) != 0 {
		t.Fatalf("pool holds %d buffers from a write-free worker, want 0", len(pool.bufs))
	}
	b, err := sp.Read(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != patternByte(0) {
		t.Fatalf("parent byte 0 = %#x after releasing a shared child", b[0])
	}
	if _, err := w.Read(base, 1); err == nil {
		t.Fatal("released space still readable")
	}
}

// TestReleaseAllReclaimsSharedSegments: closing a fork-server parent whose
// workers are all dead must reclaim even the still-cow-marked buffers —
// that is ReleaseAll's contract — and the next materialization must take
// the recycled array instead of allocating.
func TestReleaseAllReclaimsSharedSegments(t *testing.T) {
	pool := &BufPool{}
	sp, base, _ := largeCOWSpace(t, pool)
	// A write-free worker comes and goes: the parent's segment stays marked
	// shared, which plain Release would skip forever.
	w := sp.Clone()
	w.Release()
	if len(pool.bufs) != 0 {
		t.Fatalf("pool holds %d buffers from a write-free worker, want 0", len(pool.bufs))
	}
	var parentBuf []byte
	for _, s := range sp.segs {
		if s.Name == "stack" {
			parentBuf = s.Data
		}
	}
	sp.ReleaseAll()
	if len(pool.bufs) != 1 {
		t.Fatalf("pool holds %d buffers after ReleaseAll, want 1", len(pool.bufs))
	}
	if _, err := sp.Read(base, 1); err == nil {
		t.Fatal("released space still readable")
	}
	// The recycled buffer is the parent's old backing array.
	got := pool.get(len(parentBuf))
	if &got[0] != &parentBuf[0] {
		t.Fatal("pool.get returned a different buffer than ReleaseAll reclaimed")
	}
}

// TestReleaseAllSkipsExecAndSmall: executable segments (decode caches key on
// their backing identity) and sub-threshold segments stay out of the pool.
func TestReleaseAllSkipsExecAndSmall(t *testing.T) {
	pool := &BufPool{}
	sp := NewSpace()
	sp.SetPool(pool)
	if _, err := sp.Map("text", 0x1000, 4*cowChunk, PermRead|PermExec); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Map("tiny", 0x100000, cowLazyMin-1, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	sp.ReleaseAll()
	if len(pool.bufs) != 0 {
		t.Fatalf("pool holds %d buffers, want 0 (exec and small segments are not poolable)", len(pool.bufs))
	}
}
