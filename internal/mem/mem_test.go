package mem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func newTestSpace(t *testing.T) *Space {
	t.Helper()
	sp := NewSpace()
	if _, err := sp.Map("text", 0x1000, 0x1000, PermRead|PermExec); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Map("data", 0x4000, 0x1000, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestMapOverlapRejected(t *testing.T) {
	sp := newTestSpace(t)
	cases := []struct {
		base uint64
		size int
	}{
		{0x1000, 16},     // exact start
		{0x1800, 0x1000}, // straddles end of text
		{0x0f00, 0x200},  // straddles start of text
		{0x3fff, 2},      // straddles start of data
	}
	for _, c := range cases {
		if _, err := sp.Map("x", c.base, c.size, PermRead); err == nil {
			t.Errorf("Map(0x%x, %d) succeeded, want overlap error", c.base, c.size)
		}
	}
}

func TestMapAdjacentAllowed(t *testing.T) {
	sp := newTestSpace(t)
	if _, err := sp.Map("x", 0x2000, 0x1000, PermRead); err != nil {
		t.Fatalf("adjacent map failed: %v", err)
	}
}

func TestMapRejectsBadSizes(t *testing.T) {
	sp := NewSpace()
	if _, err := sp.Map("z", 0, 0, PermRead); err == nil {
		t.Error("zero-size map succeeded")
	}
	if _, err := sp.Map("w", ^uint64(0)-4, 16, PermRead); err == nil {
		t.Error("wrapping map succeeded")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	sp := newTestSpace(t)
	payload := []byte("polymorphic canary")
	if err := sp.Write(0x4010, payload); err != nil {
		t.Fatal(err)
	}
	got, err := sp.Read(0x4010, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read back %q, want %q", got, payload)
	}
}

func TestU64RoundTripProperty(t *testing.T) {
	sp := newTestSpace(t)
	f := func(v uint64, off uint16) bool {
		addr := 0x4000 + uint64(off)%(0x1000-8)
		if err := sp.WriteU64(addr, v); err != nil {
			return false
		}
		got, err := sp.ReadU64(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestU32RoundTrip(t *testing.T) {
	sp := newTestSpace(t)
	if err := sp.WriteU32(0x4000, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v, err := sp.ReadU32(0x4000)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeef {
		t.Fatalf("got 0x%x", v)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	sp := newTestSpace(t)
	if err := sp.WriteU64(0x4000, 0x0102030405060708); err != nil {
		t.Fatal(err)
	}
	b, err := sp.Read(0x4000, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{8, 7, 6, 5, 4, 3, 2, 1}
	if !bytes.Equal(b, want) {
		t.Fatalf("byte order %v, want %v", b, want)
	}
}

func TestPermissionFaults(t *testing.T) {
	sp := newTestSpace(t)
	if err := sp.Write(0x1000, []byte{1}); err == nil {
		t.Error("write to text succeeded")
	}
	if _, err := sp.Fetch(0x4000, 1); err == nil {
		t.Error("fetch from data succeeded")
	}
	var f *Fault
	err := sp.Write(0x1000, []byte{1})
	if !errors.As(err, &f) {
		t.Fatalf("error %v is not a *Fault", err)
	}
	if !f.Write {
		t.Error("fault not marked as write")
	}
}

func TestUnmappedFaults(t *testing.T) {
	sp := newTestSpace(t)
	if _, err := sp.Read(0x9000, 1); err == nil {
		t.Error("read of unmapped address succeeded")
	}
	if err := sp.Write(0x9000, []byte{1}); err == nil {
		t.Error("write to unmapped address succeeded")
	}
	// Access straddling the end of a segment must fault, not partially apply.
	if _, err := sp.Read(0x4ffc, 8); err == nil {
		t.Error("read straddling segment end succeeded")
	}
}

func TestFetchShortAtEnd(t *testing.T) {
	sp := newTestSpace(t)
	b, err := sp.Fetch(0x1ffe, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 2 {
		t.Fatalf("fetch at segment end returned %d bytes, want 2", len(b))
	}
}

func TestCloneIsolation(t *testing.T) {
	sp := newTestSpace(t)
	if err := sp.WriteU64(0x4000, 0x1111); err != nil {
		t.Fatal(err)
	}
	cl := sp.Clone()
	if err := cl.WriteU64(0x4000, 0x2222); err != nil {
		t.Fatal(err)
	}
	orig, _ := sp.ReadU64(0x4000)
	if orig != 0x1111 {
		t.Fatalf("parent memory changed by child write: 0x%x", orig)
	}
	got, _ := cl.ReadU64(0x4000)
	if got != 0x2222 {
		t.Fatalf("child memory lost its write: 0x%x", got)
	}
}

func TestClonePreservesContents(t *testing.T) {
	sp := newTestSpace(t)
	payload := []byte{0xca, 0xfe, 0xba, 0xbe}
	if err := sp.Write(0x4100, payload); err != nil {
		t.Fatal(err)
	}
	got, err := sp.Clone().Read(0x4100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("clone lost contents: %v", got)
	}
}

func TestSegmentLookupByName(t *testing.T) {
	sp := newTestSpace(t)
	if sp.Segment("text") == nil {
		t.Error("Segment(text) = nil")
	}
	if sp.Segment("nope") != nil {
		t.Error("Segment(nope) != nil")
	}
}

func TestFootprint(t *testing.T) {
	sp := newTestSpace(t)
	if got := sp.Footprint(); got != 0x2000 {
		t.Fatalf("Footprint() = %d, want %d", got, 0x2000)
	}
}

func TestPermString(t *testing.T) {
	if got := (PermRead | PermWrite).String(); got != "rw-" {
		t.Fatalf("perm string %q", got)
	}
	if got := (PermRead | PermExec).String(); got != "r-x" {
		t.Fatalf("perm string %q", got)
	}
}

func TestFaultErrorMessage(t *testing.T) {
	f := &Fault{Addr: 0x1234, Size: 8, Write: true, Why: "unmapped"}
	msg := f.Error()
	if msg == "" || !bytes.Contains([]byte(msg), []byte("0x1234")) {
		t.Fatalf("unhelpful fault message %q", msg)
	}
}

func TestSegmentsSorted(t *testing.T) {
	sp := NewSpace()
	for _, base := range []uint64{0x9000, 0x1000, 0x5000} {
		if _, err := sp.Map("s", base, 0x100, PermRead); err != nil {
			t.Fatal(err)
		}
	}
	segs := sp.Segments()
	for i := 1; i < len(segs); i++ {
		if segs[i-1].Base >= segs[i].Base {
			t.Fatal("segments not sorted by base")
		}
	}
}
