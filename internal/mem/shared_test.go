package mem

import (
	"bytes"
	"testing"
)

// sharedBacking builds a backing slice big enough to take the lazy-COW path
// (>= cowLazyMin) with a recognizable fill.
func sharedBacking(fill byte) []byte {
	b := make([]byte, cowLazyMin)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestMapSharedAliasesBacking(t *testing.T) {
	backing := sharedBacking(0xab)
	sp := NewSpace()
	if _, err := sp.MapShared("blob", 0x1000, backing, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	got, err := sp.Read(0x1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, backing[:8]) {
		t.Fatalf("read through shared segment = % x, want % x", got, backing[:8])
	}

	// A guest write must materialize a private copy, never touch the backing.
	if err := sp.Write(0x1000, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if backing[0] != 0xab {
		t.Fatalf("guest write reached the shared backing: backing[0] = %#x", backing[0])
	}
	got, err = sp.Read(0x1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("read after write = % x, want 01 02 03 04", got)
	}
}

func TestMapSharedClonePropagatesSharing(t *testing.T) {
	backing := sharedBacking(0x5a)
	sp := NewSpace()
	if _, err := sp.MapShared("blob", 0x1000, backing, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	child := sp.Clone()
	if err := child.Write(0x1000, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if backing[0] != 0x5a {
		t.Fatalf("clone write reached the shared backing: backing[0] = %#x", backing[0])
	}
	got, err := sp.Read(0x1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x5a {
		t.Fatalf("clone write leaked into parent: parent[0] = %#x", got[0])
	}
}

// TestMapSharedReleaseAllKeepsBacking is the regression test for the store's
// safety contract: ReleaseAll must never recycle externally backed bytes into
// the buffer pool (the pool clears buffers on reuse, which would scribble on
// a read-only mmap).
func TestMapSharedReleaseAllKeepsBacking(t *testing.T) {
	backing := sharedBacking(0xcd)
	sp := NewSpace()
	pool := &BufPool{}
	sp.SetPool(pool)
	if _, err := sp.MapShared("blob", 0x1000, backing, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	// Map a same-sized private segment alongside: it SHOULD be pooled, which
	// proves ReleaseAll visited segments of this size class.
	if _, err := sp.Map("private", 0x100000, cowLazyMin, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	sp.ReleaseAll()
	for i, b := range backing {
		if b != 0xcd {
			t.Fatalf("ReleaseAll disturbed shared backing at %d: %#x", i, b)
		}
	}
	// Drain the pool: every buffer it hands back must be the private one, not
	// the shared backing.
	for i := 0; i < 4; i++ {
		if buf := pool.get(cowLazyMin); buf != nil && &buf[0] == &backing[0] {
			t.Fatal("shared backing was recycled into the pool")
		}
	}
}
