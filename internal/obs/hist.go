package obs

import (
	"math/bits"
	"sync/atomic"
)

// HDR-style log-bucketed value axis, shared with internal/loadgen's latency
// histograms: exact width-1 buckets below bucketExactMax, then bucketSub
// linear sub-buckets per power-of-two octave. Relative error above the
// exact range is bounded by 1/bucketSub ≈ 3%.
const (
	bucketExactMax = 64 // values below this get exact buckets
	bucketSubBits  = 5
	bucketSub      = 1 << bucketSubBits // linear sub-buckets per octave

	// NumBuckets is the fixed length of the bucket axis.
	NumBuckets = bucketExactMax + (64-6)*bucketSub

	// NumExact and SubPerOctave re-export the axis shape for consumers
	// (internal/loadgen) that reason about bucketing error bounds.
	NumExact     = bucketExactMax
	SubPerOctave = bucketSub
)

// BucketIdx maps a value to its bucket index.
func BucketIdx(v uint64) int {
	if v < bucketExactMax {
		return int(v)
	}
	k := bits.Len64(v) // v in [2^(k-1), 2^k)
	return bucketExactMax + (k-7)*bucketSub + int((v-1<<(k-1))>>(k-1-bucketSubBits))
}

// BucketMax returns the largest value mapping to bucket i — the value
// reported for any sample that landed in that bucket.
func BucketMax(i int) uint64 {
	if i < bucketExactMax {
		return uint64(i)
	}
	i -= bucketExactMax
	k := i/bucketSub + 7
	sub := uint64(i % bucketSub)
	return 1<<(k-1) + (sub+1)<<(k-1-bucketSubBits) - 1
}

// Hist is a lock-free log-bucketed histogram. Record is allocation-free
// and nil-safe — the disabled path is a single nil check.
type Hist struct {
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
	counts [NumBuckets]atomic.Uint64
}

func newHist() *Hist { return new(Hist) }

// Record adds one sample.
func (h *Hist) Record(v uint64) {
	if h == nil {
		return
	}
	h.counts[BucketIdx(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot copies the histogram into an immutable view. The copy is not a
// consistent cut under concurrent writers (buckets are read one by one),
// which is fine for monitoring.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Hist.
type HistSnapshot struct {
	Count  uint64
	Sum    uint64
	Max    uint64
	Counts [NumBuckets]uint64
}

// Quantile returns the value at quantile q in [0, 1].
func (s *HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for i, c := range s.Counts {
		seen += c
		if seen > rank {
			return BucketMax(i)
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of recorded samples.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// HistSummary is the compact JSON form of a histogram.
type HistSummary struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	P999  uint64  `json:"p999"`
	Max   uint64  `json:"max"`
}

// Summary reduces the snapshot to its headline statistics.
func (s *HistSnapshot) Summary() HistSummary {
	return HistSummary{
		Count: s.Count,
		Sum:   s.Sum,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
		Max:   s.Max,
	}
}
