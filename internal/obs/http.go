package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler builds the exposition mux: Prometheus text on /metrics, the
// standard pprof set under /debug/pprof/, and JSON flight-recorder dumps
// on /traces (all jobs) and /traces?job=N (one job). reg and rec may be
// nil; the endpoints then serve empty documents.
func Handler(reg *Registry, rec *Recorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(reg.Text()))
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if q := req.URL.Query().Get("job"); q != "" {
			job, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				http.Error(w, "bad job id", http.StatusBadRequest)
				return
			}
			d, ok := rec.Dump(job)
			if !ok {
				http.Error(w, "unknown job", http.StatusNotFound)
				return
			}
			_ = enc.Encode(d)
			return
		}
		dumps := rec.Dumps()
		if dumps == nil {
			dumps = []TraceDump{}
		}
		_ = enc.Encode(dumps)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ListenAndServe binds addr and serves Handler(reg, rec) in a background
// goroutine. It returns the bound address (useful with ":0") and a closer.
func ListenAndServe(addr string, reg *Registry, rec *Recorder) (string, func() error, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(reg, rec)}
	go func() { _ = srv.Serve(lis) }()
	return lis.Addr().String(), srv.Close, nil
}
