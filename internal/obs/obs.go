// Package obs is the dependency-free observability core of the serving
// stack: an allocation-free metrics registry (atomic counters, gauges and
// log-bucketed histograms), a bounded per-job flight recorder of structured
// span events, and an HTTP exposition endpoint (Prometheus text format,
// net/http/pprof, JSON trace dumps).
//
// The discipline mirrors vm.CovMap: an instrumented hot path pays exactly
// one nil (or atomic-pointer) check when observability is off, and
// recording never allocates — metric handles are fixed-size atomics and
// trace events land in preallocated ring slots. Observability is a pure
// read side: nothing in this package feeds back into any engine, so every
// campaign/loadtest/fuzz report stays byte-identical with metrics on or
// off (enforced by TestReportsByteIdenticalWithMetrics in internal/daemon).
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods are
// nil-safe: a component holding a nil *Counter pays one nil check and
// records nothing — the disabled hot path.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load returns the current count (0 on nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. All methods are nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named-metric table. Lookups are get-or-create and
// idempotent, so independent components may claim the same series; the
// returned handles are the shared atomics. A nil *Registry hands out nil
// handles, which record nothing — callers never need their own guard.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Hist
	collectors []func(emit func(name string, value float64))
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Hist),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Hist returns the named histogram, creating it on first use.
func (r *Registry) Hist(name string) *Hist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHist()
		r.hists[name] = h
	}
	return h
}

// Collect registers a scrape-time collector: fn runs at every exposition
// and emits point-in-time series from external state (a store's counters, a
// pool's occupancy) without threading handles into that state's hot path.
func (r *Registry) Collect(fn func(emit func(name string, value float64))) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Label renders a labeled series name in canonical Prometheus form:
// Label("x_total", "tenant", "a") == `x_total{tenant="a"}`. kvs alternates
// key, value; values are quote-escaped. Labeled lookups allocate (they
// build a string), so cache the handle outside hot paths.
func Label(name string, kvs ...string) string {
	if len(kvs) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kvs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kvs[i])
		b.WriteString(`="`)
		v := kvs[i+1]
		if strings.ContainsAny(v, `"\`+"\n") {
			v = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(v)
		}
		b.WriteString(v)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// Series is one metric in a Snapshot: a scalar value for counters, gauges
// and collected series, a summary for histograms.
type Series struct {
	Name  string       `json:"name"`
	Kind  string       `json:"kind"` // counter | gauge | hist | collected
	Value float64      `json:"value,omitempty"`
	Hist  *HistSummary `json:"hist,omitempty"`
}

// Snapshot renders every registered series (and collector output), sorted
// by name — the dashboard and control-API form of the registry.
func (r *Registry) Snapshot() []Series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Series, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Series{Name: name, Kind: "counter", Value: float64(c.Load())})
	}
	for name, g := range r.gauges {
		out = append(out, Series{Name: name, Kind: "gauge", Value: float64(g.Load())})
	}
	for name, h := range r.hists {
		snap := h.Snapshot()
		s := snap.Summary()
		out = append(out, Series{Name: name, Kind: "hist", Hist: &s})
	}
	collectors := r.collectors
	r.mu.Unlock()
	for _, fn := range collectors {
		fn(func(name string, value float64) {
			out = append(out, Series{Name: name, Kind: "collected", Value: value})
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// baseName strips a label set from a series name for TYPE grouping.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// writeText renders the registry in Prometheus text exposition format:
// counters and gauges as typed scalar series, histograms as summaries
// (quantile series plus _sum and _count).
func (r *Registry) writeText(w *strings.Builder) {
	typed := make(map[string]bool)
	emitType := func(name, kind string) {
		base := baseName(name)
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		}
	}
	for _, s := range r.Snapshot() {
		switch s.Kind {
		case "counter":
			emitType(s.Name, "counter")
			fmt.Fprintf(w, "%s %v\n", s.Name, uint64(s.Value))
		case "gauge", "collected":
			emitType(s.Name, "gauge")
			fmt.Fprintf(w, "%s %v\n", s.Name, s.Value)
		case "hist":
			emitType(s.Name, "summary")
			h := s.Hist
			for _, q := range []struct {
				q string
				v uint64
			}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}, {"0.999", h.P999}} {
				fmt.Fprintf(w, "%s %d\n", Label(s.Name, "quantile", q.q), q.v)
			}
			fmt.Fprintf(w, "%s_sum %d\n", s.Name, h.Sum)
			fmt.Fprintf(w, "%s_count %d\n", s.Name, h.Count)
		}
	}
}

// Text renders the registry in Prometheus text exposition format.
func (r *Registry) Text() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	r.writeText(&b)
	return b.String()
}
