package obs

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("jobs_total") != c {
		t.Fatal("counter lookup not idempotent")
	}
	g := r.Gauge("queue_depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Hist("x")
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Record(9)
	if c.Load() != 0 || g.Load() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if r.Text() != "" || r.Snapshot() != nil {
		t.Fatal("nil registry must render empty")
	}
	var rec *Recorder
	tr := rec.Begin(1, "x")
	tr.Event("e", 0, "")
	if _, ok := rec.Dump(1); ok {
		t.Fatal("nil recorder must not dump")
	}
	if TraceFrom(t.Context()) != nil {
		t.Fatal("TraceFrom on bare context must be nil")
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// Every bucket's reported max must map back into that bucket, and
	// indices must be monotone in the value.
	for i := 0; i < NumBuckets; i++ {
		if got := BucketIdx(BucketMax(i)); got != i {
			t.Fatalf("BucketIdx(BucketMax(%d)) = %d", i, got)
		}
	}
	rng := rand.New(rand.NewSource(1))
	prev := 0
	for v := uint64(0); v < 4096; v++ {
		idx := BucketIdx(v)
		if idx < prev {
			t.Fatalf("BucketIdx not monotone at %d", v)
		}
		prev = idx
		if BucketMax(idx) < v {
			t.Fatalf("BucketMax(%d) = %d below value %d", idx, BucketMax(idx), v)
		}
	}
	for i := 0; i < 10000; i++ {
		v := rng.Uint64()
		idx := BucketIdx(v)
		if idx < 0 || idx >= NumBuckets {
			t.Fatalf("BucketIdx(%d) = %d out of range", v, idx)
		}
		if BucketMax(idx) < v {
			t.Fatalf("BucketMax(BucketIdx(%d)) = %d too small", v, BucketMax(idx))
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Hist("lat")
	for v := uint64(1); v <= 1000; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Max != 1000 {
		t.Fatalf("count=%d max=%d", s.Count, s.Max)
	}
	p50 := s.Quantile(0.5)
	if p50 < 450 || p50 > 550 {
		t.Fatalf("p50 = %d, want ~500", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 950 || p99 > 1024 {
		t.Fatalf("p99 = %d, want ~990", p99)
	}
	sum := s.Summary()
	if sum.Count != 1000 || sum.Mean < 500 || sum.Mean > 501 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestHistConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Hist("lat")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); i < 1000; i++ {
				h.Record(i)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestLabel(t *testing.T) {
	if got := Label("x_total"); got != "x_total" {
		t.Fatalf("got %q", got)
	}
	if got := Label("x_total", "tenant", "a", "kind", "fuzz"); got != `x_total{tenant="a",kind="fuzz"}` {
		t.Fatalf("got %q", got)
	}
	if got := Label("x", "k", `a"b`); got != `x{k="a\"b"}` {
		t.Fatalf("got %q", got)
	}
}

func TestSnapshotAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("daemon_jobs_total").Add(3)
	r.Counter(Label("daemon_jobs_total", "tenant", "a")).Add(2)
	r.Gauge("daemon_queue_depth").Set(1)
	r.Hist("pool_wait_cycles").Record(100)
	r.Collect(func(emit func(string, float64)) {
		emit("store_hits_total", 9)
	})
	snap := r.Snapshot()
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].Name < snap[j].Name }) {
		t.Fatal("snapshot not sorted")
	}
	names := make(map[string]string)
	for _, s := range snap {
		names[s.Name] = s.Kind
	}
	for name, kind := range map[string]string{
		"daemon_jobs_total":             "counter",
		`daemon_jobs_total{tenant="a"}`: "counter",
		"daemon_queue_depth":            "gauge",
		"pool_wait_cycles":              "hist",
		"store_hits_total":              "collected",
	} {
		if names[name] != kind {
			t.Fatalf("series %q kind = %q, want %q (have %v)", name, names[name], kind, names)
		}
	}
	text := r.Text()
	for _, want := range []string{
		"# TYPE daemon_jobs_total counter\n",
		"daemon_jobs_total 3\n",
		`daemon_jobs_total{tenant="a"} 2` + "\n",
		"# TYPE daemon_queue_depth gauge\ndaemon_queue_depth 1\n",
		"# TYPE pool_wait_cycles summary\n",
		`pool_wait_cycles{quantile="0.99"}`,
		"pool_wait_cycles_count 1\n",
		"store_hits_total 9\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// TYPE emitted once per base name even with labeled variants.
	if strings.Count(text, "# TYPE daemon_jobs_total ") != 1 {
		t.Fatalf("duplicate TYPE lines:\n%s", text)
	}
}

func TestRecorderRingAndEviction(t *testing.T) {
	rec := NewRecorder(2, 4)
	tr := rec.Begin(1, "campaign")
	if rec.Begin(1, "campaign") != tr {
		t.Fatal("Begin not idempotent per job")
	}
	for i := 0; i < 6; i++ {
		tr.Event("step", uint64(i*100), "")
	}
	d, ok := rec.Dump(1)
	if !ok {
		t.Fatal("trace missing")
	}
	if d.Dropped != 2 || len(d.Events) != 4 {
		t.Fatalf("dropped=%d events=%d, want 2/4", d.Dropped, len(d.Events))
	}
	for i, e := range d.Events {
		if e.Seq != uint64(i+2) {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, i+2)
		}
	}
	if d.Events[0].VCycles != 200 {
		t.Fatalf("vcycles = %d, want 200", d.Events[0].VCycles)
	}
	// Third job evicts the oldest trace.
	rec.Begin(2, "fuzz")
	rec.Begin(3, "loadtest")
	if _, ok := rec.Dump(1); ok {
		t.Fatal("job 1 should be evicted")
	}
	dumps := rec.Dumps()
	if len(dumps) != 2 || dumps[0].Job != 2 || dumps[1].Job != 3 {
		t.Fatalf("dumps = %+v", dumps)
	}
}

func TestContextTrace(t *testing.T) {
	rec := NewRecorder(4, 8)
	tr := rec.Begin(7, "attack")
	ctx := ContextWithTrace(t.Context(), tr)
	TraceFrom(ctx).Event("boot", 42, "403.gcc")
	d, _ := rec.Dump(7)
	if len(d.Events) != 1 || d.Events[0].Name != "boot" || d.Events[0].VCycles != 42 {
		t.Fatalf("dump = %+v", d)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("daemon_jobs_total").Inc()
	rec := NewRecorder(4, 8)
	rec.Begin(3, "fuzz").Event("round", 10, "")
	srv := httptest.NewServer(Handler(r, rec))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "daemon_jobs_total 1") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	code, body := get("/traces?job=3")
	if code != 200 {
		t.Fatalf("/traces?job=3: %d", code)
	}
	var d TraceDump
	if err := json.Unmarshal([]byte(body), &d); err != nil || d.Job != 3 || len(d.Events) != 1 {
		t.Fatalf("trace dump %q: %v", body, err)
	}
	if code, _ := get("/traces?job=99"); code != 404 {
		t.Fatalf("unknown job: %d, want 404", code)
	}
	code, body = get("/traces")
	var all []TraceDump
	if code != 200 || json.Unmarshal([]byte(body), &all) != nil || len(all) != 1 {
		t.Fatalf("/traces: %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof cmdline: %d", code)
	}
}

// TestHotPathsAllocationFree is the registry half of the PR's zero-alloc
// contract: enabled or disabled, the record operations must not allocate.
func TestHotPathsAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Hist("h")
	rec := NewRecorder(2, 8)
	tr := rec.Begin(1, "bench")
	var nilC *Counter
	var nilH *Hist
	var nilT *Trace
	cases := []struct {
		name string
		fn   func()
	}{
		{"counter", func() { c.Inc() }},
		{"gauge", func() { g.Add(1) }},
		{"hist", func() { h.Record(12345) }},
		{"trace", func() { tr.Event("ev", 1, "") }},
		{"nil-counter", func() { nilC.Inc() }},
		{"nil-hist", func() { nilH.Record(1) }},
		{"nil-trace", func() { nilT.Event("ev", 1, "") }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(100, tc.fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, n)
		}
	}
}
