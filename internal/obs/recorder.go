package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Recorder is a bounded flight recorder: one Trace per job, each a fixed
// ring of the most recent span events. When the trace table is full the
// oldest job's trace is evicted, so memory is bounded regardless of job
// churn. A nil *Recorder hands out nil Traces, whose Event method is a
// single nil check.
type Recorder struct {
	mu       sync.Mutex
	perTrace int
	maxJobs  int
	traces   map[uint64]*Trace
	order    []uint64 // insertion order, for eviction
}

// NewRecorder builds a recorder keeping at most maxJobs traces of up to
// eventsPerTrace events each (defaults 64 and 256 for values <= 0).
func NewRecorder(maxJobs, eventsPerTrace int) *Recorder {
	if maxJobs <= 0 {
		maxJobs = 64
	}
	if eventsPerTrace <= 0 {
		eventsPerTrace = 256
	}
	return &Recorder{
		perTrace: eventsPerTrace,
		maxJobs:  maxJobs,
		traces:   make(map[uint64]*Trace),
	}
}

// Begin opens (or reopens) the trace for a job id, evicting the oldest
// trace if the table is full.
func (r *Recorder) Begin(job uint64, kind string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.traces[job]; ok {
		return t
	}
	for len(r.traces) >= r.maxJobs && len(r.order) > 0 {
		delete(r.traces, r.order[0])
		r.order = r.order[1:]
	}
	t := &Trace{
		job:       job,
		kind:      kind,
		startWall: time.Now(),
		ring:      make([]Event, r.perTrace),
	}
	r.traces[job] = t
	r.order = append(r.order, job)
	return t
}

// Dump renders one job's trace (false if the job is unknown or evicted).
func (r *Recorder) Dump(job uint64) (TraceDump, bool) {
	if r == nil {
		return TraceDump{}, false
	}
	r.mu.Lock()
	t, ok := r.traces[job]
	r.mu.Unlock()
	if !ok {
		return TraceDump{}, false
	}
	return t.dump(), true
}

// Dumps renders every retained trace, ascending by job id.
func (r *Recorder) Dumps() []TraceDump {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ts := make([]*Trace, 0, len(r.traces))
	for _, t := range r.traces {
		ts = append(ts, t)
	}
	r.mu.Unlock()
	out := make([]TraceDump, len(ts))
	for i, t := range ts {
		out[i] = t.dump()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Job < out[j].Job })
	return out
}

// Trace is one job's span-event ring. Event is allocation-free: slots are
// preallocated and overwritten in order, keeping the most recent events.
type Trace struct {
	mu        sync.Mutex
	job       uint64
	kind      string
	startWall time.Time
	ring      []Event
	total     uint64
}

// Event is one recorded span event, stamped with both wall time and the
// victim's virtual cycle counter: wall time orders events for humans,
// virtual cycles stay deterministic at explicit seeds so traces from two
// runs of the same job line up exactly.
type Event struct {
	Seq       uint64 `json:"seq"`
	WallNanos int64  `json:"wall_ns"`
	VCycles   uint64 `json:"vcycles"`
	Name      string `json:"name"`
	Detail    string `json:"detail,omitempty"`
}

// Event appends a span event. vcycles is the victim's virtual cycle count
// at the event (0 where no machine is in scope). Nil-safe and
// allocation-free when name and detail are preexisting strings.
func (t *Trace) Event(name string, vcycles uint64, detail string) {
	if t == nil {
		return
	}
	now := time.Now().UnixNano()
	t.mu.Lock()
	seq := t.total
	t.total++
	t.ring[seq%uint64(len(t.ring))] = Event{
		Seq:       seq,
		WallNanos: now,
		VCycles:   vcycles,
		Name:      name,
		Detail:    detail,
	}
	t.mu.Unlock()
}

// TraceDump is the JSON form of a trace: events in seq order, with the
// count of older events the ring dropped.
type TraceDump struct {
	Job       uint64  `json:"job"`
	Kind      string  `json:"kind"`
	StartWall int64   `json:"start_wall_ns"`
	Dropped   uint64  `json:"dropped,omitempty"`
	Events    []Event `json:"events"`
}

func (t *Trace) dump() TraceDump {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := TraceDump{
		Job:       t.job,
		Kind:      t.kind,
		StartWall: t.startWall.UnixNano(),
	}
	n := t.total
	ring := uint64(len(t.ring))
	first := uint64(0)
	if n > ring {
		first = n - ring
		d.Dropped = first
	}
	d.Events = make([]Event, 0, n-first)
	for seq := first; seq < n; seq++ {
		d.Events = append(d.Events, t.ring[seq%ring])
	}
	return d
}

type traceKey struct{}

// ContextWithTrace attaches a trace to a context, carrying it through job
// execution (pool checkout, store lookups, engine runs) without threading
// an argument through every layer.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom extracts the trace from a context, or nil. The nil result is
// directly usable: Trace methods are nil-safe.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
