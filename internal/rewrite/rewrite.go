// Package rewrite implements the paper's binary instrumentation tool
// (Section V-C): it upgrades SSP-compiled binaries to P-SSP without
// recompilation, under the two constraints the paper identifies:
//
//  1. The stack layout must not change — code addresses locals by fixed
//     rbp offsets, so the canary cannot grow from one word to two. The
//     rewriter therefore downgrades to two 32-bit canaries packed into one
//     word (core.SplitPacked), trading entropy for layout compatibility,
//     exactly as the paper does.
//  2. The code layout must not change — section offsets and function
//     entries must stay put. Every in-place replacement is byte-for-byte
//     the same length: the prologue's TLS displacement is patched in situ,
//     and the epilogue's load+xor pair (13 bytes) becomes load+call+nop
//     (13 bytes), moving the split-XOR check into a function reached
//     through the rewritten __stack_chk_fail, as in the paper's Figure 3.
//
// New code (the packed-canary checker and a shadow-refresh helper, the
// analog of the two new glibc functions) is appended: to the libc image for
// dynamically linked programs (app size unchanged — Table II's 0%), or to a
// new executable section of the app itself for statically linked programs
// (the paper's Dyninst step, Table II's ~2.78% growth).
package rewrite

import (
	"fmt"

	"repro/internal/abi"
	"repro/internal/binfmt"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Symbol names introduced by the rewriter.
const (
	// CheckerSym verifies the packed canary in rdi against the TLS canary:
	// returns with ZF set on match, aborts on mismatch.
	CheckerSym = "__pssp_check"
	// RefreshSym re-randomizes the TLS shadow state (the guest-visible body
	// of the wrapped fork()).
	RefreshSym = "__pssp_refresh_shadow"
)

// Rewrite instruments an SSP-compiled app for P-SSP.
//
// For dynamically linked apps, libc must be the SSP libc image the app was
// linked against; the returned pair is (rewritten app, rewritten libc) and
// the app's code size is unchanged. For statically linked apps, libc must be
// nil and the new code is appended to the app; the returned libc is nil.
func Rewrite(app, libc *binfmt.Binary) (*binfmt.Binary, *binfmt.Binary, error) {
	if got := app.Meta[abi.MetaScheme]; got != core.SchemeSSP.String() {
		return nil, nil, fmt.Errorf("rewrite: app is %q, need an SSP-compiled binary", got)
	}
	static := app.Meta[abi.MetaLinkage] == abi.LinkStatic
	if static && libc != nil {
		return nil, nil, fmt.Errorf("rewrite: statically linked app takes no libc image")
	}
	if !static && libc == nil {
		return nil, nil, fmt.Errorf("rewrite: dynamically linked app needs its libc image")
	}

	newApp := app.Clone()
	var newLibc *binfmt.Binary

	var checkerAddr uint64
	if static {
		// Append the new functions as a fresh executable section placed
		// after .text — the Dyninst-added code section.
		text := newApp.Text()
		if text == nil {
			return nil, nil, fmt.Errorf("rewrite: app has no .text")
		}
		base := text.Addr + uint64(len(text.Data))
		blob, syms := newCodeSection(base)
		newApp.AddSection(".pssp.text", base, mem.PermRead|mem.PermExec, blob)
		for _, s := range syms {
			newApp.AddSymbol(s)
		}
		checkerAddr = syms[0].Addr
		if err := hookStackChkFail(newApp, newApp.Text(), checkerAddr); err != nil {
			return nil, nil, err
		}
		if err := rewriteFunctions(newApp, newApp.Text(), checkerAddr); err != nil {
			return nil, nil, err
		}
	} else {
		newLibc = libc.Clone()
		sec := newLibc.Section(".text.libc")
		if sec == nil {
			return nil, nil, fmt.Errorf("rewrite: libc image has no .text.libc")
		}
		base := sec.Addr + uint64(len(sec.Data))
		blob, syms := newCodeSection(base)
		newLibc.AddSection(".pssp.text", base, mem.PermRead|mem.PermExec, blob)
		for _, s := range syms {
			newLibc.AddSymbol(s)
		}
		checkerAddr = syms[0].Addr
		if err := hookStackChkFail(newLibc, sec, checkerAddr); err != nil {
			return nil, nil, err
		}
		// libc's own protected functions (e.g. libc_echo) are rewritten too.
		if err := rewriteFunctions(newLibc, sec, checkerAddr); err != nil {
			return nil, nil, err
		}
		if err := rewriteFunctions(newApp, newApp.Text(), checkerAddr); err != nil {
			return nil, nil, err
		}
		newLibc.Meta[abi.MetaScheme] = core.SchemePSSP.String()
	}

	newApp.Meta[abi.MetaScheme] = core.SchemePSSP.String()
	newApp.Meta["instrumented"] = "p-ssp"
	return newApp, newLibc, nil
}

// rewriteFunctions walks every function symbol inside sec and applies the
// two same-length replacements.
func rewriteFunctions(bin *binfmt.Binary, sec *binfmt.Section, checkerAddr uint64) error {
	for _, fn := range bin.Funcs() {
		if fn.Addr < sec.Addr || fn.Addr+fn.Size > sec.Addr+uint64(len(sec.Data)) {
			continue // symbol lives in another section
		}
		if fn.Name == cc_StackChkFail || fn.Name == CheckerSym || fn.Name == RefreshSym {
			continue
		}
		if err := rewriteFunction(sec, fn, checkerAddr); err != nil {
			return fmt.Errorf("rewrite: %s: %w", fn.Name, err)
		}
	}
	return nil
}

// cc_StackChkFail mirrors cc.StackChkFail without importing the compiler.
const cc_StackChkFail = "__stack_chk_fail"

// rewriteFunction scans one function and patches its SSP prologue and
// epilogue in place.
func rewriteFunction(sec *binfmt.Section, fn binfmt.Symbol, checkerAddr uint64) error {
	start := int(fn.Addr - sec.Addr)
	end := start + int(fn.Size)
	code := sec.Data

	for off := start; off < end; {
		in, n, err := isa.Decode(code, off)
		if err != nil {
			return fmt.Errorf("decode at +%d: %w", off-start, err)
		}

		// Prologue: mov %fs:0x28, %rax  ->  mov %fs:packed, %rax.
		// Identical encoding length; only the displacement field changes
		// (the paper's single-instruction prologue patch, Code 5).
		if in.Op == isa.LDFS && in.R1 == isa.RAX && in.Disp == core.TLSCanaryOff {
			patched := isa.Encode(nil, isa.Inst{Op: isa.LDFS, R1: isa.RAX, Disp: core.TLSPackedOff})
			copy(code[off:], patched)
			off += n
			continue
		}

		// Epilogue: [load -d(%rbp), %rdx ; xor %fs:0x28, %rdx] (13 bytes)
		// -> [load -d(%rbp), %rdi ; call __pssp_check ; nop] (13 bytes).
		// The following je/call-fail pair is left untouched; the checker
		// returns with ZF reflecting the packed-pair comparison.
		if in.Op == isa.LOAD && in.R1 == isa.RDX && in.Base == isa.RBP {
			nxt, n2, err2 := isa.Decode(code, off+n)
			if err2 == nil && nxt.Op == isa.XORFS && nxt.R1 == isa.RDX && nxt.Disp == core.TLSCanaryOff {
				repl := isa.Encode(nil, isa.Inst{Op: isa.LOAD, R1: isa.RDI, Base: isa.RBP, Disp: in.Disp})
				callAt := uint64(len(repl))
				call := isa.Inst{Op: isa.CALL}
				next := sec.Addr + uint64(off) + callAt + uint64(call.Len())
				call.Disp = int32(int64(checkerAddr) - int64(next))
				repl = isa.Encode(repl, call)
				repl = isa.Encode(repl, isa.Inst{Op: isa.NOP})
				if len(repl) != n+n2 {
					return fmt.Errorf("replacement is %d bytes, slot is %d — would shift code", len(repl), n+n2)
				}
				copy(code[off:], repl)
				off += n + n2
				continue
			}
		}
		off += n
	}
	return nil
}

// hookStackChkFail overwrites the entry of the stock __stack_chk_fail with a
// jmp to the checker (the paper's Figure 3: the canary check is spliced in
// front of the failure handling). SSP-compiled callers that reach it with a
// non-packed rdi fail the check with overwhelming probability and abort, so
// SSP compatibility is preserved.
func hookStackChkFail(bin *binfmt.Binary, sec *binfmt.Section, checkerAddr uint64) error {
	sym, ok := bin.Symbol(cc_StackChkFail)
	if !ok {
		return fmt.Errorf("rewrite: no %s symbol", cc_StackChkFail)
	}
	jmp := isa.Inst{Op: isa.JMP}
	next := sym.Addr + uint64(jmp.Len())
	jmp.Disp = int32(int64(checkerAddr) - int64(next))
	enc := isa.Encode(nil, jmp)
	if uint64(len(enc)) > sym.Size {
		return fmt.Errorf("rewrite: %s too small to hook (%d bytes)", cc_StackChkFail, sym.Size)
	}
	return copyInto(sec, sym.Addr, enc)
}

func copyInto(sec *binfmt.Section, addr uint64, p []byte) error {
	off := int(addr - sec.Addr)
	if off < 0 || off+len(p) > len(sec.Data) {
		return fmt.Errorf("rewrite: patch at 0x%x outside section %s", addr, sec.Name)
	}
	copy(sec.Data[off:], p)
	return nil
}

// newCodeSection emits the appended code: the packed-canary checker and the
// shadow-refresh helper. It returns the encoded blob and its symbols (the
// checker first).
func newCodeSection(base uint64) ([]byte, []binfmt.Symbol) {
	checker := checkerCode()
	refresh := refreshCode()
	blob := append(append([]byte{}, checker...), refresh...)
	return blob, []binfmt.Symbol{
		{Name: CheckerSym, Addr: base, Size: uint64(len(checker)), Kind: binfmt.SymFunc},
		{Name: RefreshSym, Addr: base + uint64(len(checker)), Size: uint64(len(refresh)), Kind: binfmt.SymFunc},
	}
}

// checkerCode implements the paper's Figure 4 check on the packed canary in
// rdi: split into C0 (low 32) and C1 (high 32), XOR them, compare with the
// low 32 bits of the TLS canary. Match: return with ZF set. Mismatch: abort
// (the spliced __GI__fortify_fail path).
func checkerCode() []byte {
	abortSeq := []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RAX, Imm: abi.SysAbort},
		{Op: isa.SYSCALL},
	}
	abortLen := 0
	for _, in := range abortSeq {
		abortLen += in.Len()
	}
	seq := []isa.Inst{
		{Op: isa.MOVRR, R1: isa.RDX, R2: isa.RDI},
		{Op: isa.SHRRI, R1: isa.RDX, Imm: 32},         // rdx = C1
		{Op: isa.MOVRI, R1: isa.R10, Imm: 0xffffffff}, //
		{Op: isa.ANDRR, R1: isa.RDI, R2: isa.R10},     // rdi = C0
		{Op: isa.XORRR, R1: isa.RDI, R2: isa.RDX},     // rdi = C0^C1
		{Op: isa.LDFS, R1: isa.R11, Disp: core.TLSCanaryOff},
		{Op: isa.ANDRR, R1: isa.R11, R2: isa.R10}, // r11 = C & 0xffffffff
		{Op: isa.CMPRR, R1: isa.R11, R2: isa.RDI}, // ZF = match
		{Op: isa.JE, Disp: int32(abortLen)},       // skip abort on match
	}
	seq = append(seq, abortSeq...)
	seq = append(seq, isa.Inst{Op: isa.RET})
	return isa.EncodeAll(seq)
}

// refreshCode re-randomizes the TLS shadow state from guest code: a fresh
// 64-bit pair at fs:0x2a8/0x2b0 and a fresh packed 32-bit pair at the packed
// slot. It is the guest-visible body of the paper's wrapped fork()/
// pthread_create().
func refreshCode() []byte {
	return isa.EncodeAll([]isa.Inst{
		// 64-bit pair: C0 = rdrand; C1 = C0 ^ C.
		{Op: isa.RDRAND, R1: isa.RAX},
		{Op: isa.STFS, R1: isa.RAX, Disp: core.TLSShadow0Off},
		{Op: isa.LDFS, R1: isa.RCX, Disp: core.TLSCanaryOff},
		{Op: isa.XORRR, R1: isa.RCX, R2: isa.RAX},
		{Op: isa.STFS, R1: isa.RCX, Disp: core.TLSShadow1Off},
		// Packed pair: c0 = rand32; c1 = c0 ^ (C & 0xffffffff); pack.
		{Op: isa.RDRAND, R1: isa.R10},
		{Op: isa.MOVRI, R1: isa.R11, Imm: 0xffffffff},
		{Op: isa.ANDRR, R1: isa.R10, R2: isa.R11},
		{Op: isa.LDFS, R1: isa.RCX, Disp: core.TLSCanaryOff},
		{Op: isa.ANDRR, R1: isa.RCX, R2: isa.R11},
		{Op: isa.XORRR, R1: isa.RCX, R2: isa.R10},
		{Op: isa.SHLRI, R1: isa.RCX, Imm: 32},
		{Op: isa.ORRR, R1: isa.RCX, R2: isa.R10},
		{Op: isa.STFS, R1: isa.RCX, Disp: core.TLSPackedOff},
		{Op: isa.RET},
	})
}
