package rewrite

import (
	"bytes"
	"testing"

	"repro/internal/abi"
	"repro/internal/binfmt"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/kernel"
)

// vulnServer mirrors the canonical test server from internal/cc.
func vulnServer() *cc.Program {
	return &cc.Program{
		Name: "vulnserver",
		Funcs: []*cc.Func{
			{
				Name:   "main",
				Locals: []cc.Local{{Name: "r", Size: 8}},
				Body:   []cc.Stmt{cc.Call{Callee: "serve"}, cc.Return{}},
			},
			{
				Name: "serve",
				Locals: []cc.Local{
					{Name: "buf", Size: 16, IsBuffer: true},
					{Name: "n", Size: 8},
				},
				Body: []cc.Stmt{
					cc.Accept{Dst: "n"},
					cc.While{Var: "n", Body: []cc.Stmt{
						cc.ReadInput{Buf: "buf", LenVar: "n"},
						cc.WriteOutput{Src: "buf", Len: 4},
						cc.Accept{Dst: "n"},
					}},
				},
			},
		},
	}
}

func buildSSP(t *testing.T, linkage string, libc *binfmt.Binary) *binfmt.Binary {
	t.Helper()
	bin, err := cc.Compile(vulnServer(), cc.Options{Scheme: core.SchemeSSP, Linkage: linkage, Libc: libc})
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func TestRewriteRejectsNonSSP(t *testing.T) {
	bin, err := cc.Compile(vulnServer(), cc.Options{Scheme: core.SchemePSSP, Linkage: abi.LinkStatic})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Rewrite(bin, nil); err == nil {
		t.Fatal("rewriting a P-SSP binary succeeded")
	}
}

func TestRewriteLinkageArgumentValidation(t *testing.T) {
	st := buildSSP(t, abi.LinkStatic, nil)
	libc, err := cc.BuildLibc(core.SchemeSSP)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Rewrite(st, libc); err == nil {
		t.Fatal("static app with libc accepted")
	}
	dyn := buildSSP(t, abi.LinkDynamic, libc)
	if _, _, err := Rewrite(dyn, nil); err == nil {
		t.Fatal("dynamic app without libc accepted")
	}
}

func TestStaticRewritePreservesTextAndEntries(t *testing.T) {
	orig := buildSSP(t, abi.LinkStatic, nil)
	instr, _, err := Rewrite(orig, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's constraint: the original .text must not change size, and
	// every function entry stays put.
	if len(instr.Text().Data) != len(orig.Text().Data) {
		t.Fatalf(".text grew from %d to %d", len(orig.Text().Data), len(instr.Text().Data))
	}
	for _, fn := range orig.Funcs() {
		got, ok := instr.Symbol(fn.Name)
		if !ok || got.Addr != fn.Addr {
			t.Fatalf("function %s moved: 0x%x -> 0x%x", fn.Name, fn.Addr, got.Addr)
		}
	}
	// New code appended as a separate section.
	if instr.Section(".pssp.text") == nil {
		t.Fatal("no .pssp.text section appended")
	}
	if _, ok := instr.Symbol(CheckerSym); !ok {
		t.Fatal("checker symbol missing")
	}
	// Original binary untouched.
	if bytes.Contains(orig.Text().Data, []byte{}) && orig.Section(".pssp.text") != nil {
		t.Fatal("input binary mutated")
	}
	// Growth exists but is modest (Table II shape for static linking).
	growth := float64(instr.CodeSize()-orig.CodeSize()) / float64(orig.CodeSize())
	if growth <= 0 || growth > 0.5 {
		t.Fatalf("static growth %.2f%% implausible", growth*100)
	}
}

func TestDynamicRewriteAppSizeUnchanged(t *testing.T) {
	libc, err := cc.BuildLibc(core.SchemeSSP)
	if err != nil {
		t.Fatal(err)
	}
	orig := buildSSP(t, abi.LinkDynamic, libc)
	instrApp, instrLibc, err := Rewrite(orig, libc)
	if err != nil {
		t.Fatal(err)
	}
	// Table II: dynamic instrumentation has zero app code expansion.
	if instrApp.CodeSize() != orig.CodeSize() {
		t.Fatalf("dynamic app code size changed: %d -> %d", orig.CodeSize(), instrApp.CodeSize())
	}
	if instrLibc == nil || instrLibc.Section(".pssp.text") == nil {
		t.Fatal("rewritten libc missing appended section")
	}
}

// runServer spins up a fork server on the given images.
func runServer(t *testing.T, seed uint64, app, libc *binfmt.Binary) *kernel.ForkServer {
	t.Helper()
	k := kernel.New(seed)
	srv, err := kernel.NewForkServer(k, app, kernel.SpawnOpts{Libc: libc})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestInstrumentedStaticBinaryWorks(t *testing.T) {
	instr, _, err := Rewrite(buildSSP(t, abi.LinkStatic, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := runServer(t, 21, instr, nil)
	for i := 0; i < 5; i++ {
		out, err := srv.Handle([]byte("ping"))
		if err != nil {
			t.Fatal(err)
		}
		if out.Crashed {
			t.Fatalf("benign request %d crashed: %s", i, out.CrashReason)
		}
		if !bytes.Equal(out.Response, []byte("ping")) {
			t.Fatalf("response %q", out.Response)
		}
	}
}

func TestInstrumentedStaticBinaryDetectsOverflow(t *testing.T) {
	instr, _, err := Rewrite(buildSSP(t, abi.LinkStatic, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := runServer(t, 22, instr, nil)
	crashed := false
	for _, fill := range []byte{0x00, 0xff} {
		out, err := srv.Handle(bytes.Repeat([]byte{fill}, 24))
		if err != nil {
			t.Fatal(err)
		}
		crashed = crashed || out.Crashed
	}
	if !crashed {
		t.Fatal("instrumented binary did not detect overflow")
	}
}

func TestInstrumentedDynamicBinaryWorks(t *testing.T) {
	libc, err := cc.BuildLibc(core.SchemeSSP)
	if err != nil {
		t.Fatal(err)
	}
	app := buildSSP(t, abi.LinkDynamic, libc)
	instrApp, instrLibc, err := Rewrite(app, libc)
	if err != nil {
		t.Fatal(err)
	}
	srv := runServer(t, 23, instrApp, instrLibc)
	out, err := srv.Handle([]byte("pong"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Crashed {
		t.Fatalf("benign request crashed: %s", out.CrashReason)
	}
	if !bytes.Equal(out.Response, []byte("pong")) {
		t.Fatalf("response %q", out.Response)
	}

	crashed := false
	for _, fill := range []byte{0x00, 0xff} {
		out, err := srv.Handle(bytes.Repeat([]byte{fill}, 24))
		if err != nil {
			t.Fatal(err)
		}
		crashed = crashed || out.Crashed
	}
	if !crashed {
		t.Fatal("instrumented dynamic binary did not detect overflow")
	}
}

func TestInstrumentedPackedPairRefreshesPerFork(t *testing.T) {
	// The instrumented binary reads the packed pair from the TLS; two
	// children must observe different pairs that both verify against C.
	instr, _, err := Rewrite(buildSSP(t, abi.LinkStatic, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(24)
	srv, err := kernel.NewForkServer(k, instr, kernel.SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := k.Fork(srv.Parent())
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.Fork(srv.Parent())
	if err != nil {
		t.Fatal(err)
	}
	c, _ := a.TLS().Canary()
	pa, errA := a.Space.ReadU64(a.TLS().Base() + core.TLSPackedOff)
	pb, errB := b.Space.ReadU64(b.TLS().Base() + core.TLSPackedOff)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if pa == pb {
		t.Fatal("packed pair identical across forks")
	}
	if !core.CheckPacked(pa, c) || !core.CheckPacked(pb, c) {
		t.Fatal("packed pair inconsistent with TLS canary")
	}
}

func TestSSPCallersStillAbortThroughHookedChkFail(t *testing.T) {
	// Compatibility (paper Section V-C): an SSP-compiled function that
	// detects a mismatch calls __stack_chk_fail with a non-packed rdi; the
	// hooked checker must still abort. We simulate by mixing: libc stays
	// SSP-compiled but is hooked; libc_echo's canary gets corrupted.
	libc, err := cc.BuildLibc(core.SchemeSSP)
	if err != nil {
		t.Fatal(err)
	}
	prog := vulnServer()
	prog.Funcs[1].Body = []cc.Stmt{
		cc.Accept{Dst: "n"},
		cc.While{Var: "n", Body: []cc.Stmt{
			cc.ReadInput{Buf: "buf", LenVar: "n"}, // still vulnerable
			cc.Call{Callee: "libc_echo"},
			cc.Accept{Dst: "n"},
		}},
	}
	app, err := cc.Compile(prog, cc.Options{Scheme: core.SchemeSSP, Libc: libc})
	if err != nil {
		t.Fatal(err)
	}
	instrApp, instrLibc, err := Rewrite(app, libc)
	if err != nil {
		t.Fatal(err)
	}
	srv := runServer(t, 25, instrApp, instrLibc)
	// Benign request flows through both modules.
	out, err := srv.Handle([]byte("abcd"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Crashed {
		t.Fatalf("benign mixed request crashed: %s", out.CrashReason)
	}
	// Overflow in the instrumented app function must abort via the hook.
	crashed := false
	for _, fill := range []byte{0x00, 0xff} {
		out, err := srv.Handle(bytes.Repeat([]byte{fill}, 24))
		if err != nil {
			t.Fatal(err)
		}
		crashed = crashed || out.Crashed
	}
	if !crashed {
		t.Fatal("overflow undetected in mixed instrumented binary")
	}
}

func TestRefreshShadowGuestFunction(t *testing.T) {
	// The appended refresh helper must maintain the TLS invariants when
	// called from guest code.
	prog := &cc.Program{
		Name: "refresher",
		Funcs: []*cc.Func{{
			Name:   "main",
			Locals: []cc.Local{{Name: "b", Size: 16, IsBuffer: true}},
			Body:   []cc.Stmt{cc.ReadInput{Buf: "b", MaxLen: 8}},
		}},
	}
	app, err := cc.Compile(prog, cc.Options{Scheme: core.SchemeSSP, Linkage: abi.LinkStatic})
	if err != nil {
		t.Fatal(err)
	}
	instr, _, err := Rewrite(app, nil)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(26)
	p, err := k.Spawn(instr, kernel.SpawnOpts{})
	if err != nil {
		t.Fatal(err)
	}
	before, err := p.Space.ReadU64(p.TLS().Base() + core.TLSPackedOff)
	if err != nil {
		t.Fatal(err)
	}
	// Point the CPU at the refresh helper and run it to its RET (which will
	// fault popping an empty call stack into _start's frame; run Step-wise).
	sym, ok := instr.Symbol(RefreshSym)
	if !ok {
		t.Fatal("no refresh symbol")
	}
	p.CPU.RIP = sym.Addr
	for i := 0; i < 64; i++ {
		if err := p.CPU.Step(); err != nil {
			break
		}
		if _, done := instr.FuncAt(p.CPU.RIP); !done {
			break
		}
	}
	after, err := p.Space.ReadU64(p.TLS().Base() + core.TLSPackedOff)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := p.TLS().Canary()
	if after == before {
		t.Fatal("refresh did not change packed pair")
	}
	if !core.CheckPacked(after, c) {
		t.Fatal("refreshed packed pair inconsistent")
	}
	if err := p.TLS().Verify(); err != nil {
		t.Fatal(err)
	}
}
