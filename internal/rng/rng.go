// Package rng provides the deterministic random-number sources used across
// the simulation: a splitmix64 PRNG that models the hardware entropy source
// behind the rdrand instruction, and helpers for drawing canary-sized values.
//
// Everything in this repository that needs randomness draws from a Source so
// that experiments are reproducible from a single seed.
package rng

import "sync"

// Source is a deterministic 64-bit pseudo-random source. It is safe for
// concurrent use.
type Source struct {
	mu    sync.Mutex
	state uint64
}

// New returns a Source seeded with seed. Two Sources with the same seed
// produce identical streams.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Mix collapses a (seed, stream) pair into a single derived seed. It is a
// pure function — no Source state is consumed — so any party that knows the
// pair can re-derive the same seed, which is what makes sharded experiments
// reproducible at any worker count: work unit i always draws from
// NewStream(seed, i) no matter which worker runs it.
func Mix(seed, stream uint64) uint64 {
	// Two finalization rounds of splitmix64 over the pair; the golden-ratio
	// multiplier separates stream indices that differ in low bits only.
	z := seed ^ (stream+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewStream returns the stream'th derived Source of seed: a deterministic
// function of the pair, statistically independent across stream indices.
func NewStream(seed, stream uint64) *Source {
	return New(Mix(seed, stream))
}

// Uint64 returns the next value in the splitmix64 stream.
//
// splitmix64 is the generator recommended for seeding xoshiro-family PRNGs;
// it is statistically strong for simulation purposes and requires no
// allocation, which matters because the VM calls it on every simulated
// rdrand instruction.
func (s *Source) Uint64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next()
}

func (s *Source) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32-bit value.
func (s *Source) Uint32() uint32 {
	return uint32(s.Uint64() >> 32)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	s.mu.Lock()
	defer s.mu.Unlock()
	bound := uint64(n)
	for {
		v := s.next()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Bytes fills p with pseudo-random bytes.
func (s *Source) Bytes(p []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var v uint64
	for i := range p {
		if i%8 == 0 {
			v = s.next()
		}
		p[i] = byte(v)
		v >>= 8
	}
}

// Fork derives a new, statistically independent Source from this one. It is
// used when a simulated process is forked so that parent and child draw from
// unrelated streams, mirroring per-core hardware entropy.
func (s *Source) Fork() *Source {
	return New(s.Uint64() ^ 0xa5a5a5a5a5a5a5a5)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo = a * b
	hi = a1*b1 + t>>32 + (t&mask32+a0*b1)>>32
	return hi, lo
}
