package rng

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %x vs %x", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d times in 1000 draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 100; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square test over 16 buckets; with 160k draws the statistic should
	// be far below the 0.001 critical value (~37.7 for 15 dof).
	s := New(99)
	const buckets, draws = 16, 160000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[s.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 37.7 {
		t.Fatalf("chi-square %f exceeds 0.001 critical value; counts %v", chi2, counts)
	}
}

func TestBytesFillsEveryLength(t *testing.T) {
	s := New(5)
	for n := 0; n <= 33; n++ {
		p := make([]byte, n)
		s.Bytes(p)
		if n >= 8 {
			allZero := true
			for _, b := range p {
				if b != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				t.Fatalf("Bytes(%d) returned all zeros", n)
			}
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(11)
	child := parent.Fork()
	// The child's stream must not replay the parent's.
	p0 := parent.Uint64()
	c0 := child.Uint64()
	if p0 == c0 {
		t.Fatal("forked child replays parent stream")
	}
}

func TestBitBalance(t *testing.T) {
	// Each of the 64 bit positions should be set close to half the time.
	s := New(123)
	const draws = 64000
	var ones [64]int
	for i := 0; i < draws; i++ {
		v := s.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		frac := float64(c) / draws
		if frac < 0.48 || frac > 0.52 {
			t.Fatalf("bit %d set fraction %f outside [0.48, 0.52]", b, frac)
		}
	}
}

func TestMul64MatchesBits(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		wantHi, wantLo := bits.Mul64(a, b)
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint32NotConstant(t *testing.T) {
	s := New(3)
	first := s.Uint32()
	for i := 0; i < 100; i++ {
		if s.Uint32() != first {
			return
		}
	}
	t.Fatal("Uint32 returned the same value 100 times")
}

func TestMixPureAndSeparating(t *testing.T) {
	if Mix(1, 2) != Mix(1, 2) {
		t.Fatal("Mix is not a pure function")
	}
	seen := make(map[uint64]bool)
	for stream := uint64(0); stream < 4096; stream++ {
		v := Mix(42, stream)
		if seen[v] {
			t.Fatalf("Mix collided at stream %d", stream)
		}
		seen[v] = true
	}
	// Neighbouring streams of neighbouring seeds must not collide either.
	if Mix(1, 0) == Mix(0, 1) || Mix(7, 7) == Mix(7, 8) {
		t.Fatal("Mix conflates adjacent (seed, stream) pairs")
	}
}

func TestNewStreamIndependence(t *testing.T) {
	a, b := NewStream(9, 0), NewStream(9, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams 0 and 1 collided %d times in 1000 draws", same)
	}
	// Re-derivation replays the identical stream.
	c, d := NewStream(9, 3), NewStream(9, 3)
	for i := 0; i < 100; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("re-derived stream diverged")
		}
	}
}
