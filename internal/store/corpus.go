package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Corpus is a persistent, content-hash-deduplicated fuzz corpus directory:
//
//	<dir>/inputs/<sha256 of input>   one file per distinct input
//	<dir>/frontier                   merged bucketed coverage map
//	<dir>/corpus.lock                writer lock for frontier merges
//
// Inputs are addressed by their own content hash, so re-adding an input a
// previous run already discovered is a no-op and concurrent runs converge
// on one copy. The frontier file carries the OR-merge of every run's virgin
// coverage map; seeding the next run's shards with it turns "rediscover all
// known edges" into "resume from the recorded frontier".
type Corpus struct {
	dir string
}

// OpenCorpus opens (creating if needed) the corpus rooted at dir.
func OpenCorpus(dir string) (*Corpus, error) {
	if err := os.MkdirAll(filepath.Join(dir, "inputs"), 0o755); err != nil {
		return nil, fmt.Errorf("store: open corpus %s: %w", dir, err)
	}
	return &Corpus{dir: dir}, nil
}

// Dir returns the corpus root directory.
func (c *Corpus) Dir() string { return c.dir }

func (c *Corpus) inputsDir() string    { return filepath.Join(c.dir, "inputs") }
func (c *Corpus) frontierPath() string { return filepath.Join(c.dir, "frontier") }
func (c *Corpus) lockPath() string     { return filepath.Join(c.dir, "corpus.lock") }

// Load returns every saved input (sorted by content hash, so the order is a
// function of the set alone) and the saved coverage frontier, nil when no
// frontier has been recorded. Files whose name does not match their content
// hash — a torn write or manual edit — are skipped.
func (c *Corpus) Load() (inputs [][]byte, frontier []byte, err error) {
	ents, err := os.ReadDir(c.inputsDir())
	if err != nil {
		return nil, nil, fmt.Errorf("store: load corpus %s: %w", c.dir, err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(c.inputsDir(), name))
		if err != nil {
			return nil, nil, fmt.Errorf("store: load corpus %s: %w", c.dir, err)
		}
		if sum := sha256.Sum256(data); hex.EncodeToString(sum[:]) != name || len(data) == 0 {
			continue
		}
		inputs = append(inputs, data)
	}
	frontier, err = os.ReadFile(c.frontierPath())
	if os.IsNotExist(err) {
		return inputs, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("store: load corpus %s: %w", c.dir, err)
	}
	return inputs, frontier, nil
}

// Add stores every input not already present, addressing each by its
// content hash, and returns how many were new. Empty inputs are ignored.
func (c *Corpus) Add(inputs [][]byte) (added int, err error) {
	for _, in := range inputs {
		if len(in) == 0 {
			continue
		}
		sum := sha256.Sum256(in)
		path := filepath.Join(c.inputsDir(), hex.EncodeToString(sum[:]))
		if _, err := os.Stat(path); err == nil {
			continue
		}
		tmp, err := os.CreateTemp(c.inputsDir(), ".tmp-*")
		if err != nil {
			return added, fmt.Errorf("store: corpus add: %w", err)
		}
		_, werr := tmp.Write(in)
		cerr := tmp.Close()
		if werr == nil {
			werr = cerr
		}
		if werr == nil {
			werr = os.Rename(tmp.Name(), path)
		}
		if werr != nil {
			os.Remove(tmp.Name())
			return added, fmt.Errorf("store: corpus add: %w", werr)
		}
		added++
	}
	return added, nil
}

// SaveFrontier merges frontier into the saved coverage frontier under the
// corpus writer lock: coverage bits only accumulate (bitwise OR), so
// concurrent runs cannot regress each other's discoveries. A saved frontier
// of a different length (coverage map geometry changed) is replaced.
func (c *Corpus) SaveFrontier(frontier []byte) error {
	if len(frontier) == 0 {
		return nil
	}
	unlock, _, err := lockFile(c.lockPath())
	if err != nil {
		return fmt.Errorf("store: corpus frontier: %w", err)
	}
	defer unlock()
	merged := append([]byte(nil), frontier...)
	if old, err := os.ReadFile(c.frontierPath()); err == nil && len(old) == len(merged) {
		for i, v := range old {
			merged[i] |= v
		}
	}
	tmp, err := os.CreateTemp(c.dir, ".tmp-frontier-*")
	if err != nil {
		return fmt.Errorf("store: corpus frontier: %w", err)
	}
	_, werr := tmp.Write(merged)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), c.frontierPath())
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: corpus frontier: %w", werr)
	}
	return nil
}
