//go:build !unix

package store

import (
	"os"
	"time"
)

// mapping is one read-only view of a blob file. Without mmap support the
// contents are simply read into the heap; correctness is identical, only
// the cross-process page sharing is lost.
type mapping struct {
	data []byte
}

func mapFile(path string) (*mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &mapping{data: data}, nil
}

func (m *mapping) close() error {
	m.data = nil
	return nil
}

// lockFile emulates an exclusive lock by spinning on O_EXCL creation of
// path. Coarser than flock (a crashed holder leaves the file behind until
// it goes stale), but preserves the at-most-one-builder property on
// platforms without advisory locks. waited reports whether another holder
// made the acquisition block.
func lockFile(path string) (unlock func(), waited bool, err error) {
	const stale = 30 * time.Second
	for {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			f.Close()
			return func() { os.Remove(path) }, waited, nil
		}
		if !os.IsExist(err) {
			return nil, waited, err
		}
		waited = true
		if fi, serr := os.Stat(path); serr == nil && time.Since(fi.ModTime()) > stale {
			os.Remove(path)
			continue
		}
		time.Sleep(5 * time.Millisecond)
	}
}
