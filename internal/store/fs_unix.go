//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mapping is one read-only view of a blob file. On unix it is a shared
// PROT_READ mmap, so every process mapping the same blob shares one
// physical copy of its pages.
type mapping struct {
	data   []byte
	mapped bool
}

// mapFile opens path read-only and maps its full contents. The file
// descriptor is closed before returning; the mapping keeps the pages.
func mapFile(path string) (*mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		// mmap of length 0 fails; an empty blob is malformed anyway — hand
		// decodeBlob an empty slice so it reports corruption.
		return &mapping{data: nil}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("blob too large to map (%d bytes)", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmap: %w", err)
	}
	return &mapping{data: data, mapped: true}, nil
}

func (m *mapping) close() error {
	if !m.mapped {
		return nil
	}
	m.mapped = false
	data := m.data
	m.data = nil
	return syscall.Munmap(data)
}

// lockFile takes an exclusive advisory flock on path. Each call opens its
// own descriptor, so it also excludes other goroutines in this process, not
// just other processes. The returned func releases the lock; the lock file
// itself is left in place for reuse. waited reports whether another holder
// made the acquisition block (a non-blocking attempt failed first) — the
// store surfaces this as its lock-wait metric.
func lockFile(path string) (unlock func(), waited bool, err error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, false, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		waited = true
		if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
			f.Close()
			return nil, waited, fmt.Errorf("flock: %w", err)
		}
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, waited, nil
}
