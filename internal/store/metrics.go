package store

import "repro/internal/obs"

// RegisterMetrics exposes the store's traffic counters on reg as
// scrape-time collected series. The store's hot path is untouched — its
// counters already exist under s.mu — so exposition costs one Stats()
// snapshot per scrape and nothing per lookup.
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	if s == nil || reg == nil {
		return
	}
	reg.Collect(func(emit func(name string, value float64)) {
		st := s.Stats()
		emit("store_hits_total", float64(st.Hits))
		emit("store_misses_total", float64(st.Misses))
		emit("store_mem_hits_total", float64(st.MemHits))
		emit("store_disk_hits_total", float64(st.DiskHits))
		emit("store_corrupt_total", float64(st.Corrupt))
		emit("store_evictions_total", float64(st.Evictions))
		emit("store_lock_waits_total", float64(st.LockWaits))
	})
}
