// Package store is a content-addressed artifact store for compiled images.
//
// Artifacts are keyed by a derivation hash — SHA-256 over (source bytes,
// scheme, compiler pass config, toolchain version), the zbstore idiom — so
// a compiled image is built exactly once per distinct input and any input
// change misses cleanly. On disk each artifact is one blob file under
// <dir>/blobs/<hash> written via atomic rename, guarded by a per-key file
// lock so concurrent writers (goroutines or separate processes) race to at
// most one build. On the read side blobs are mmap'd and parsed zero-copy
// (binfmt.UnmarshalShared), so N fuzz shards or daemon workers booting the
// same image in separate processes share one physical copy of its read-only
// segments.
//
// An in-process LRU sits in front of the disk tier. Evicted entries keep
// their mappings alive on a retained list — images handed out earlier may
// still alias the mapped bytes — and everything is unmapped only at Close,
// which must not be called while any machine booted from the store is live.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/binfmt"
)

// Key is a derivation hash naming one artifact.
type Key [32]byte

// String returns the key as lowercase hex — the blob's on-disk name.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Derivation captures every input to a compilation. Its hash is the
// artifact's key: flipping any field — one source byte, the protection
// scheme, a pass option, a toolchain component version — changes the key,
// so stale artifacts can never be served for changed inputs.
type Derivation struct {
	// Source is the canonical encoding of the program being compiled.
	Source []byte
	// Scheme names the protection scheme applied (e.g. "pssp").
	Scheme string
	// Config is the canonical encoding of the compiler pass options.
	Config []byte
	// Version identifies the toolchain (compiler pass / ISA encoding /
	// container format versions).
	Version string
}

// Key hashes the derivation. Fields are length-prefixed so no two distinct
// derivations can serialize to the same byte stream.
func (d Derivation) Key() Key {
	h := sha256.New()
	var n [8]byte
	field := func(p []byte) {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	field(d.Source)
	field([]byte(d.Scheme))
	field(d.Config)
	field([]byte(d.Version))
	var k Key
	h.Sum(k[:0])
	return k
}

// Blob format:
//
//	magic "PSAR" | u16 version | 32B sha256(payload) | u64 payload len | payload
//
// where payload is the binfmt serialization of the image. The embedded
// checksum lets open detect corrupt or truncated blobs and fall back to a
// rebuild instead of booting garbage.
var blobMagic = [4]byte{'P', 'S', 'A', 'R'}

const (
	blobVersion    = 1
	blobHeaderSize = 4 + 2 + 32 + 8
)

// Stats is a snapshot of store traffic.
type Stats struct {
	// Hits counts lookups served without a build (memory or disk tier).
	Hits uint64 `json:"hits"`
	// Misses counts lookups that ran the build function.
	Misses uint64 `json:"misses"`
	// MemHits and DiskHits split Hits by serving tier.
	MemHits  uint64 `json:"mem_hits"`
	DiskHits uint64 `json:"disk_hits"`
	// Corrupt counts blobs rejected by checksum/format verification (each
	// one was deleted and rebuilt).
	Corrupt uint64 `json:"corrupt"`
	// Evictions counts LRU evictions from the in-process tier.
	Evictions uint64 `json:"evictions"`
	// LockWaits counts builder-lock acquisitions that blocked on another
	// holder (goroutine or process) — contention on concurrent cold builds.
	LockWaits uint64 `json:"lock_waits"`
}

// entry is one resident artifact in the in-process tier.
type entry struct {
	key Key
	bin *binfmt.Binary
	// mapping is the blob mmap backing bin's sections, nil for entries
	// cached straight from a local build (heap-backed).
	mapping *mapping
	// LRU list links.
	prev, next *entry
}

// Store is one handle on an artifact directory. Multiple Stores — in one
// process or many — may share a directory; on-disk consistency comes from
// per-key locks and atomic renames, not from coordination between handles.
type Store struct {
	dir string

	mu       sync.Mutex
	cache    map[Key]*entry
	head     *entry // most recently used
	tail     *entry // least recently used
	capacity int
	// retained holds mappings of evicted entries: images handed out while
	// the entry was resident may still alias the mapped bytes, so they stay
	// mapped until Close.
	retained []*mapping
	stats    Stats
	closed   bool
}

// DefaultCapacity is the in-process LRU size used by Open.
const DefaultCapacity = 64

// Open opens (creating if needed) the artifact store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{blobsDir(dir), locksDir(dir)} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	return &Store{dir: dir, cache: make(map[Key]*entry), capacity: DefaultCapacity}, nil
}

func blobsDir(dir string) string  { return filepath.Join(dir, "blobs") }
func locksDir(dir string) string  { return filepath.Join(dir, "locks") }
func indexPath(dir string) string { return filepath.Join(dir, "index") }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) blobPath(k Key) string { return filepath.Join(blobsDir(s.dir), k.String()) }

// lockKey takes the per-key builder lock under dir.
func lockKey(dir string, k Key) (func(), bool, error) {
	return lockFile(filepath.Join(dir, k.String()+".lock"))
}

// GetOrBuild returns the artifact for k, building and storing it with build
// on a miss. hit reports whether the build was avoided — served from the
// in-process tier, from an mmap'd on-disk blob, or from a blob a racing
// writer finished first. name and scheme are recorded in the store index
// for humans; they do not affect addressing.
func (s *Store) GetOrBuild(k Key, name, scheme string, build func() (*binfmt.Binary, error)) (*binfmt.Binary, bool, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, fmt.Errorf("store: %s: use after Close", s.dir)
	}
	if e, ok := s.cache[k]; ok {
		s.touch(e)
		s.stats.Hits++
		s.stats.MemHits++
		bin := e.bin
		s.mu.Unlock()
		return bin, true, nil
	}
	s.mu.Unlock()

	// Disk tier, optimistic (no lock): the common warm-start path.
	if bin, err := s.tryLoad(k); err != nil {
		return nil, false, err
	} else if bin != nil {
		return bin, true, nil
	}

	// Miss: serialize builders of this key across goroutines and processes.
	unlock, waited, err := lockKey(locksDir(s.dir), k)
	if waited {
		s.mu.Lock()
		s.stats.LockWaits++
		s.mu.Unlock()
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: lock %s: %w", k, err)
	}
	defer unlock()

	// A racing writer may have finished while we waited for the lock.
	if bin, err := s.tryLoad(k); err != nil {
		return nil, false, err
	} else if bin != nil {
		return bin, true, nil
	}

	bin, err := build()
	if err != nil {
		return nil, false, err
	}
	if err := s.writeBlob(k, name, scheme, binfmt.Marshal(bin)); err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	s.stats.Misses++
	s.insert(&entry{key: k, bin: bin})
	s.mu.Unlock()
	return bin, false, nil
}

// Get returns the artifact for k if present (memory or disk), or (nil,
// false) on a miss. It never builds.
func (s *Store) Get(k Key) (*binfmt.Binary, bool, error) {
	s.mu.Lock()
	if e, ok := s.cache[k]; ok {
		s.touch(e)
		s.stats.Hits++
		s.stats.MemHits++
		bin := e.bin
		s.mu.Unlock()
		return bin, true, nil
	}
	s.mu.Unlock()
	bin, err := s.tryLoad(k)
	if err != nil || bin == nil {
		return nil, false, err
	}
	return bin, true, nil
}

// tryLoad maps and verifies the on-disk blob for k. It returns (nil, nil)
// when the blob does not exist, and treats a corrupt or truncated blob as
// absent after deleting it (counted in Stats.Corrupt).
func (s *Store) tryLoad(k Key) (*binfmt.Binary, error) {
	m, err := mapFile(s.blobPath(k))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: open blob %s: %w", k, err)
	}
	bin, err := decodeBlob(m.data)
	if err != nil {
		// Corrupt: drop the blob so the next lookup rebuilds it.
		m.close()
		os.Remove(s.blobPath(k))
		s.mu.Lock()
		s.stats.Corrupt++
		s.mu.Unlock()
		return nil, nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		m.close()
		return nil, fmt.Errorf("store: %s: use after Close", s.dir)
	}
	if e, ok := s.cache[k]; ok {
		// Raced with another goroutine loading the same key: serve the
		// resident copy, retire our duplicate mapping immediately.
		s.touch(e)
		s.stats.Hits++
		s.stats.MemHits++
		bin = e.bin
		s.mu.Unlock()
		m.close()
		return bin, nil
	}
	s.stats.Hits++
	s.stats.DiskHits++
	s.insert(&entry{key: k, bin: bin, mapping: m})
	s.mu.Unlock()
	return bin, nil
}

// decodeBlob verifies the blob envelope and checksum and parses the payload
// zero-copy: the returned binary's sections alias p.
func decodeBlob(p []byte) (*binfmt.Binary, error) {
	if len(p) < blobHeaderSize || !bytes.Equal(p[:4], blobMagic[:]) {
		return nil, fmt.Errorf("store: bad blob header")
	}
	if v := binary.LittleEndian.Uint16(p[4:6]); v != blobVersion {
		return nil, fmt.Errorf("store: unsupported blob version %d", v)
	}
	var want [32]byte
	copy(want[:], p[6:38])
	n := binary.LittleEndian.Uint64(p[38:46])
	payload := p[blobHeaderSize:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("store: truncated blob: header says %d payload bytes, have %d", n, len(payload))
	}
	if sha256.Sum256(payload) != want {
		return nil, fmt.Errorf("store: blob checksum mismatch")
	}
	return binfmt.UnmarshalShared(payload)
}

// writeBlob writes the blob for k atomically: temp file in the blobs
// directory, fsync-free write, rename over the final name. Caller holds the
// key lock.
func (s *Store) writeBlob(k Key, name, scheme string, payload []byte) error {
	hdr := make([]byte, 0, blobHeaderSize)
	hdr = append(hdr, blobMagic[:]...)
	hdr = binary.LittleEndian.AppendUint16(hdr, blobVersion)
	sum := sha256.Sum256(payload)
	hdr = append(hdr, sum[:]...)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(payload)))

	dir := blobsDir(s.dir)
	tmp, err := os.CreateTemp(dir, ".tmp-"+k.String()+"-*")
	if err != nil {
		return fmt.Errorf("store: write blob %s: %w", k, err)
	}
	_, werr := tmp.Write(hdr)
	if werr == nil {
		_, werr = tmp.Write(payload)
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write blob %s: %w", k, werr)
	}
	if err := os.Rename(tmp.Name(), s.blobPath(k)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write blob %s: %w", k, err)
	}
	// Append a human-readable index line; best-effort, the blob itself is
	// the source of truth.
	if f, err := os.OpenFile(indexPath(s.dir), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644); err == nil {
		fmt.Fprintf(f, "%s %s %s %d\n", k, name, scheme, len(payload))
		f.Close()
	}
	return nil
}

// touch moves e to the LRU front. Caller holds s.mu.
func (s *Store) touch(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *Store) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if s.head == e {
		s.head = e.next
	}
	if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// insert adds e at the LRU front, evicting from the tail past capacity.
// Caller holds s.mu.
func (s *Store) insert(e *entry) {
	s.cache[e.key] = e
	s.touch(e)
	for len(s.cache) > s.capacity && s.tail != nil && s.tail != e {
		victim := s.tail
		s.unlink(victim)
		delete(s.cache, victim.key)
		s.stats.Evictions++
		if victim.mapping != nil {
			// Images already handed out may alias the mapped bytes; keep
			// the mapping alive until Close.
			s.retained = append(s.retained, victim.mapping)
		}
	}
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close releases every mapping the store holds. It must only be called once
// no machine booted from a store-served image is still live: their address
// spaces alias the mapped bytes.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, e := range s.cache {
		if e.mapping != nil {
			if err := e.mapping.close(); err != nil && first == nil {
				first = err
			}
		}
	}
	for _, m := range s.retained {
		if err := m.close(); err != nil && first == nil {
			first = err
		}
	}
	s.cache = make(map[Key]*entry)
	s.head, s.tail, s.retained = nil, nil, nil
	return first
}
