package store_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/abi"
	"repro/internal/binfmt"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/store"
)

// testProg is a minimal compilable program; name varies the derivation key.
func testProg(name string) *cc.Program {
	return &cc.Program{
		Name: name,
		Funcs: []*cc.Func{{
			Name:   "main",
			Locals: []cc.Local{{Name: "x", Size: 8}},
			Body: []cc.Stmt{
				cc.SetConst{Dst: "x", Value: 5},
				cc.Return{},
			},
		}},
	}
}

func testOpts() cc.Options {
	return cc.Options{Scheme: core.SchemeSSP, Linkage: abi.LinkStatic}
}

func testKey(name string) store.Key {
	return cc.Derivation(testProg(name), testOpts()).Key()
}

func compileProg(t *testing.T, name string) *binfmt.Binary {
	t.Helper()
	bin, err := cc.Compile(testProg(name), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestDerivationKeyInjective exercises the length-prefixed field encoding:
// moving a byte across a field boundary must change the key, or two distinct
// derivations could alias one artifact.
func TestDerivationKeyInjective(t *testing.T) {
	a := store.Derivation{Source: []byte("ab"), Scheme: "c"}
	b := store.Derivation{Source: []byte("a"), Scheme: "bc"}
	if a.Key() == b.Key() {
		t.Fatal("field-boundary shift produced the same key")
	}
	base := store.Derivation{Source: []byte("src"), Scheme: "ssp", Config: []byte("cfg"), Version: "v1"}
	flips := []store.Derivation{
		{Source: []byte("srC"), Scheme: "ssp", Config: []byte("cfg"), Version: "v1"},
		{Source: []byte("src"), Scheme: "sspx", Config: []byte("cfg"), Version: "v1"},
		{Source: []byte("src"), Scheme: "ssp", Config: []byte("cfG"), Version: "v1"},
		{Source: []byte("src"), Scheme: "ssp", Config: []byte("cfg"), Version: "v2"},
	}
	for i, d := range flips {
		if d.Key() == base.Key() {
			t.Errorf("flip %d did not change the key", i)
		}
	}
	if base.Key() != base.Key() {
		t.Error("Key is not deterministic")
	}
}

// TestGetOrBuildTiers walks one artifact through all three tiers: cold build,
// in-process memory hit, and (through a second handle on the same directory)
// an mmap'd disk hit — asserting byte identity throughout.
func TestGetOrBuildTiers(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	k := testKey("tiers")
	builds := 0
	build := func() (*binfmt.Binary, error) {
		builds++
		return compileProg(t, "tiers"), nil
	}

	cold, hit, err := s.GetOrBuild(k, "tiers", "ssp", build)
	if err != nil {
		t.Fatal(err)
	}
	if hit || builds != 1 {
		t.Fatalf("cold lookup: hit=%v builds=%d, want miss and one build", hit, builds)
	}
	want := binfmt.Marshal(cold)

	warm, hit, err := s.GetOrBuild(k, "tiers", "ssp", build)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || builds != 1 {
		t.Fatalf("memory lookup: hit=%v builds=%d, want hit and no new build", hit, builds)
	}
	if !bytes.Equal(binfmt.Marshal(warm), want) {
		t.Fatal("memory hit is not byte-identical to the cold build")
	}

	// Fresh handle on the same directory: must come off disk, zero-copy.
	s2 := openStore(t, dir)
	disk, hit, err := s2.GetOrBuild(k, "tiers", "ssp", func() (*binfmt.Binary, error) {
		t.Fatal("disk hit ran the build function")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second handle missed an on-disk blob")
	}
	if !bytes.Equal(binfmt.Marshal(disk), want) {
		t.Fatal("disk hit is not byte-identical to the cold build")
	}
	if !disk.SharedBacking() {
		t.Error("disk hit is not backed by the shared mapping")
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.Misses != 0 {
		t.Errorf("second handle stats = %+v, want exactly one disk hit", st)
	}
}

// TestCorruptBlobRebuilds flips and truncates on-disk blob bytes and asserts
// the store detects both, deletes the blob, and transparently rebuilds.
func TestCorruptBlobRebuilds(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(p []byte) []byte
	}{
		{"bitflip", func(p []byte) []byte { p[len(p)-1] ^= 0x01; return p }},
		{"truncated", func(p []byte) []byte { return p[:len(p)/2] }},
		{"empty", func(p []byte) []byte { return nil }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			k := testKey("corrupt")
			s := openStore(t, dir)
			if _, _, err := s.GetOrBuild(k, "corrupt", "ssp", func() (*binfmt.Binary, error) {
				return compileProg(t, "corrupt"), nil
			}); err != nil {
				t.Fatal(err)
			}

			blob := filepath.Join(dir, "blobs", k.String())
			raw, err := os.ReadFile(blob)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(blob, tc.corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			// A fresh handle (no memory tier) must reject the blob and rebuild.
			s2 := openStore(t, dir)
			builds := 0
			bin, hit, err := s2.GetOrBuild(k, "corrupt", "ssp", func() (*binfmt.Binary, error) {
				builds++
				return compileProg(t, "corrupt"), nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if hit || builds != 1 || bin == nil {
				t.Fatalf("corrupt blob: hit=%v builds=%d, want rebuild", hit, builds)
			}
			if st := s2.Stats(); st.Corrupt != 1 {
				t.Errorf("Corrupt stat = %d, want 1", st.Corrupt)
			}
			// The rebuild replaced the blob: a third handle hits clean.
			s3 := openStore(t, dir)
			if _, hit, err := s3.Get(k); err != nil || !hit {
				t.Fatalf("post-rebuild lookup: hit=%v err=%v", hit, err)
			}
		})
	}
}

// TestConcurrentWritersBuildOnce races many goroutines, each with its own
// Store handle on one directory, at the same key: the per-key lock must
// collapse them to exactly one build, and every caller must get a
// byte-identical artifact.
func TestConcurrentWritersBuildOnce(t *testing.T) {
	dir := t.TempDir()
	k := testKey("race")
	const writers = 8
	var builds atomic.Int64
	outs := make([][]byte, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := store.Open(dir)
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			bin, _, err := s.GetOrBuild(k, "race", "ssp", func() (*binfmt.Binary, error) {
				builds.Add(1)
				return cc.Compile(testProg("race"), testOpts())
			})
			if err != nil {
				t.Error(err)
				return
			}
			outs[i] = binfmt.Marshal(bin)
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("%d builds ran, want exactly 1", n)
	}
	for i := 1; i < writers; i++ {
		if !bytes.Equal(outs[i], outs[0]) {
			t.Fatalf("writer %d got a different artifact", i)
		}
	}
}

func TestUseAfterClose(t *testing.T) {
	s := openStore(t, t.TempDir())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, _, err := s.GetOrBuild(testKey("x"), "x", "ssp", func() (*binfmt.Binary, error) {
		return compileProg(t, "x"), nil
	}); err == nil {
		t.Fatal("GetOrBuild after Close succeeded")
	}
}

func TestCorpusDedupAndLoad(t *testing.T) {
	dir := t.TempDir()
	c, err := store.OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	in := [][]byte{[]byte("alpha"), []byte("beta"), []byte("alpha"), nil}
	added, err := c.Add(in)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 {
		t.Fatalf("Add added %d, want 2 (dedup + empty skip)", added)
	}
	// Re-adding is a no-op; a second handle sees the same set.
	if added, err = c.Add(in); err != nil || added != 0 {
		t.Fatalf("re-Add: added=%d err=%v, want 0", added, err)
	}

	// A file whose name is not its content hash must be skipped on load.
	if err := os.WriteFile(filepath.Join(dir, "inputs", hex.EncodeToString(bytes.Repeat([]byte{0xaa}, 32))), []byte("forged"), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := store.OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	inputs, frontier, err := c2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if frontier != nil {
		t.Errorf("frontier = %d bytes, want none recorded", len(frontier))
	}
	if len(inputs) != 2 {
		t.Fatalf("Load returned %d inputs, want 2", len(inputs))
	}
	// Hash-sorted order is a function of the set alone.
	ha := sha256.Sum256([]byte("alpha"))
	hb := sha256.Sum256([]byte("beta"))
	want := [][]byte{[]byte("alpha"), []byte("beta")}
	if hex.EncodeToString(hb[:]) < hex.EncodeToString(ha[:]) {
		want = [][]byte{[]byte("beta"), []byte("alpha")}
	}
	for i := range want {
		if !bytes.Equal(inputs[i], want[i]) {
			t.Fatalf("input %d = %q, want %q (hash order)", i, inputs[i], want[i])
		}
	}
}

func TestCorpusFrontierMerge(t *testing.T) {
	c, err := store.OpenCorpus(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SaveFrontier([]byte{0x01, 0x00, 0x10, 0x00}); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveFrontier([]byte{0x00, 0x02, 0x10, 0x80}); err != nil {
		t.Fatal(err)
	}
	_, frontier, err := c.Load()
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte{0x01, 0x02, 0x10, 0x80}; !bytes.Equal(frontier, want) {
		t.Fatalf("merged frontier = % x, want % x (bitwise OR)", frontier, want)
	}
	// A geometry change (different length) replaces rather than merges.
	if err := c.SaveFrontier([]byte{0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	if _, frontier, err = c.Load(); err != nil {
		t.Fatal(err)
	}
	if want := []byte{0xff, 0xff}; !bytes.Equal(frontier, want) {
		t.Fatalf("resized frontier = % x, want % x (replace)", frontier, want)
	}
	// Saving an empty frontier is a no-op, never a wipe.
	if err := c.SaveFrontier(nil); err != nil {
		t.Fatal(err)
	}
	if _, frontier, _ = c.Load(); len(frontier) != 2 {
		t.Fatal("empty SaveFrontier wiped the recorded frontier")
	}
}
