package vm

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/isa"
)

// This file implements EngineCompiled: a block-lowering tier over the
// predecoded segCode stream. Each executed entry point is lazily lowered
// into a basic block of flat micro-ops (cop) — operands pre-masked to
// direct register indices, memory operands classified so they resolve
// through one of three cached segment views, the paper's canary
// prologue/epilogue sequences fused into single superinstructions — and
// the dispatcher (runCompiled) performs budget, cancellation, halt and
// segment checks once per block instead of once per step.
//
// The bit-identity contract with the other engines is absolute: Insts,
// Cycles, coverage edges, crash errors (reason strings and unwrapped
// mem.Fault values), RDTSC reads and RDRAND draws must be indistinguishable
// from the per-step loop. The tier earns that two ways: anything it cannot
// prove safe (SYSCALL/HLT, cold offsets, fetch faults, a remaining budget
// smaller than the next block, self-modified segments) is executed by the
// ordinary Step path; and when a block exits early — a fault mid-block, or
// a store that rewrites the executing segment — the upfront block charge is
// unwound to the exact per-step state before the error is reported.

// Micro-op kinds. cBad (the zero value) marks opcodes the block tier does
// not lower; a cBad head ends lowering so the Step path executes the
// instruction with reference semantics.
const (
	cBad uint8 = iota
	cNop
	cPush
	cPop
	cMovRR
	cMovRI
	cLoad
	cStore
	cLdFS
	cStFS
	cLea
	cAddRR
	cAddRI
	cSubRR
	cSubRI
	cXorRR
	cXorFS
	cOrRR
	cAndRR
	cShlRI
	cShrRI
	cCmpRR
	cCmpRI
	cJmp
	cJe
	cJne
	cCall
	cCallR
	cRet
	cLeave
	cRdrand
	cRdfsbase
	cRdtsc
	cMovQX
	cMovHX
	cPunpckX
	cMovXQ
	cStX
	cLdX
	cAesenc
	cCmpX

	// Fused superinstructions for the canary sequences internal/cc emits
	// (the patterns Table V measures). Constituent boundaries are preserved
	// for coverage edges and fault unwinding.
	cFuseInstall  // ldfs r1, disp ; store r1, disp2(r2)
	cFuseCheck    // load r1, disp(r2) ; xorfs r1, disp2 ; je target
	cFuseXorCheck // xor r2, r1 ; xorfs r1, disp2 ; je target
)

// lowerKind maps an opcode to its micro-op kind. SYSCALL and HLT are
// deliberately absent (cBad): traps belong to the Step path, which is also
// what keeps fork-at-syscall and halt bookkeeping engine-identical.
var lowerKind = [isa.NumOps]uint8{
	isa.NOP:      cNop,
	isa.PUSH:     cPush,
	isa.POP:      cPop,
	isa.MOVRR:    cMovRR,
	isa.MOVRI:    cMovRI,
	isa.LOAD:     cLoad,
	isa.STORE:    cStore,
	isa.LDFS:     cLdFS,
	isa.STFS:     cStFS,
	isa.LEA:      cLea,
	isa.ADDRR:    cAddRR,
	isa.ADDRI:    cAddRI,
	isa.SUBRR:    cSubRR,
	isa.SUBRI:    cSubRI,
	isa.XORRR:    cXorRR,
	isa.XORFS:    cXorFS,
	isa.ORRR:     cOrRR,
	isa.ANDRR:    cAndRR,
	isa.SHLRI:    cShlRI,
	isa.SHRRI:    cShrRI,
	isa.CMPRR:    cCmpRR,
	isa.CMPRI:    cCmpRI,
	isa.JMP:      cJmp,
	isa.JE:       cJe,
	isa.JNE:      cJne,
	isa.CALL:     cCall,
	isa.CALLR:    cCallR,
	isa.RET:      cRet,
	isa.LEAVE:    cLeave,
	isa.RDRAND:   cRdrand,
	isa.RDFSBASE: cRdfsbase,
	isa.RDTSC:    cRdtsc,
	isa.MOVQX:    cMovQX,
	isa.MOVHX:    cMovHX,
	isa.PUNPCKX:  cPunpckX,
	isa.MOVXQ:    cMovXQ,
	isa.STX:      cStX,
	isa.LDX:      cLdX,
	isa.AESENC:   cAesenc,
	isa.CMPX:     cCmpX,
}

// Encoded lengths of the fused constituents, for reconstructing interior
// instruction addresses (coverage edges, fault RIPs) without storing them.
var (
	lenLDFS  = uint64(isa.LDFS.EncodedLen())
	lenLOAD  = uint64(isa.LOAD.EncodedLen())
	lenXORRR = uint64(isa.XORRR.EncodedLen())
	lenXORFS = uint64(isa.XORFS.EncodedLen())
)

// View-class slots: one cached direct memory window per operand class, so
// a canary epilogue's stack load and FS load do not evict each other.
const (
	vStack   = 0 // implicit RSP accesses and RBP/RSP-based frames
	vFS      = 1 // FS-segment (TLS canary words)
	vData    = 2 // everything else (globals, heap)
	numViews = 4 // one spare slot so masked indexing stays in range
)

// memView is one cached window over a segment's private backing bytes,
// acquired via mem.Space.View and retired when the space's sharing epoch
// moves. A miss (bounds or empty view) falls back to the Space accessors,
// which also produce the faults.
type memView struct {
	data []byte
	base uint64
}

func (v *memView) ru64(addr uint64) (uint64, bool) {
	off := addr - v.base
	if off >= uint64(len(v.data)) || off+8 > uint64(len(v.data)) {
		return 0, false
	}
	return binary.LittleEndian.Uint64(v.data[off:]), true
}

func (v *memView) wu64(addr, val uint64) bool {
	off := addr - v.base
	if off >= uint64(len(v.data)) || off+8 > uint64(len(v.data)) {
		return false
	}
	binary.LittleEndian.PutUint64(v.data[off:], val)
	return true
}

func (v *memView) r128(addr uint64) (lo, hi uint64, ok bool) {
	off := addr - v.base
	if off >= uint64(len(v.data)) || off+16 > uint64(len(v.data)) {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint64(v.data[off:]), binary.LittleEndian.Uint64(v.data[off+8:]), true
}

func (v *memView) w128(addr, lo, hi uint64) bool {
	off := addr - v.base
	if off >= uint64(len(v.data)) || off+16 > uint64(len(v.data)) {
		return false
	}
	binary.LittleEndian.PutUint64(v.data[off:], lo)
	binary.LittleEndian.PutUint64(v.data[off+8:], hi)
	return true
}

// acquireView refreshes the class slot with the window covering addr (or
// empties it when addr has no qualifying window).
func (c *CPU) acquireView(cls uint8, addr uint64) {
	data, base, ok := c.Mem.View(addr)
	if !ok {
		c.views[cls&3] = memView{}
		return
	}
	c.views[cls&3] = memView{data: data, base: base}
}

// viewClass assigns an instruction's memory operand to a view slot.
func viewClass(in isa.Inst) uint8 {
	switch in.Op.MemClass() {
	case isa.MemStack:
		return vStack
	case isa.MemFS:
		return vFS
	case isa.MemBase:
		if in.Base == isa.RBP || in.Base == isa.RSP {
			return vStack
		}
	}
	return vData
}

// cop is one lowered micro-op. sumN/sumCyc are running totals through this
// op from the block start; the early-exit paths use them to unwind the
// block-level charge to exact per-step counters.
type cop struct {
	kind uint8
	r1   uint8 // destination/source register, pre-masked
	r2   uint8 // source register or memory base register, pre-masked
	x1   uint8 // xmm register, pre-masked
	cls  uint8 // view-class slot of the memory operand
	n    uint8 // guest instructions this op retires (>1 for fused ops)

	disp  int32  // memory displacement of the (first) constituent
	disp2 int32  // second constituent's displacement (fused ops)
	cyc   uint32 // cycle cost of this op (sum over constituents)
	sumN  uint32 // guest insts retired through this op from block start

	imm    int64
	sumCyc uint64 // cycles charged through this op from block start
	pc     uint64 // guest address of the op's first instruction
	next   uint64 // fall-through address past the op's last instruction
	target uint64 // resolved branch target (branch kinds only)
}

// block is one lowered basic block. ninsts/cycles are the totals the
// dispatcher charges on entry; end is the resume RIP when the block falls
// off its last op (terminator ops set RIP themselves).
type block struct {
	ops    []cop
	ninsts uint64
	cycles uint64
	end    uint64
}

// segCompiled is the block tier over one segCode: lazily lowered blocks
// plus a per-offset index. It shares the segCode's lifetime, so generation
// bumps (self-modifying code) and fork cache sharing need no extra
// bookkeeping here.
type segCompiled struct {
	blocks []*block
	// blockIdx maps a byte offset to the block entered there: blockNone
	// (never attempted), blockCold (lowering declined — the Step path
	// executes from this offset), or an index into blocks.
	blockIdx []int32
}

const (
	blockNone int32 = -1
	blockCold int32 = -2
)

func newSegCompiled(size int) *segCompiled {
	comp := &segCompiled{blockIdx: make([]int32, size)}
	for i := range comp.blockIdx {
		comp.blockIdx[i] = blockNone
	}
	return comp
}

// peek returns the instruction the linear predecode scan placed at off, if
// any. Fusion candidates must be scan-contiguous: a fused successor is only
// accepted when it starts exactly where the previous constituent ends.
func peek(sc *segCode, off uint64) (isa.Inst, bool) {
	if off >= uint64(len(sc.idx)) || sc.idx[off] < 0 {
		return isa.Inst{}, false
	}
	return sc.insts[sc.idx[off]], true
}

// lower builds the basic block entered at byte offset entry, reading
// decoded instructions from sc (segBase is the owning segment's base
// address). It records the result in blockIdx and returns it: a block
// index, or blockCold when the entry cannot head a block (cold offset —
// including a jump into the interior of an instruction, fused or not — or
// a trap instruction).
func (comp *segCompiled) lower(sc *segCode, segBase, entry uint64) int32 {
	var (
		ops    []cop
		sumN   uint32
		sumCyc uint64
	)
	pos := entry
	done := false
	for !done {
		var ii int32 = -1
		if pos < uint64(len(sc.idx)) {
			ii = sc.idx[pos]
		}
		if ii < 0 {
			break // cold offset or segment end: the Step path takes over
		}
		in := sc.insts[ii]
		kind := lowerKind[in.Op]
		if kind == cBad {
			break // SYSCALL/HLT (or future unlowered op): Step executes it
		}
		pc := segBase + pos
		ln := uint64(in.Len())
		op := cop{
			kind: kind,
			r1:   uint8(in.R1) & 15,
			r2:   uint8(in.R2) & 15,
			x1:   uint8(in.X1) & 15,
			cls:  viewClass(in),
			n:    1,
			disp: in.Disp,
			cyc:  uint32(in.Op.Cycles()),
			imm:  in.Imm,
			pc:   pc,
			next: pc + ln,
		}
		switch in.Op.Shape() {
		case isa.ShapeRM, isa.ShapeXM:
			op.r2 = uint8(in.Base) & 15
		}
		switch in.Op {
		case isa.JMP, isa.JE, isa.JNE, isa.CALL:
			op.target = op.next + uint64(int64(in.Disp))
			done = true
		case isa.CALLR, isa.RET:
			done = true
		case isa.LDFS:
			// Canary install (every scheme's prologue): ldfs ; store.
			if nx, ok := peek(sc, pos+ln); ok && nx.Op == isa.STORE && nx.R1 == in.R1 {
				op.kind = cFuseInstall
				op.r2 = uint8(nx.Base) & 15
				op.cls = viewClass(nx)
				op.disp2 = nx.Disp
				op.n = 2
				op.cyc = uint32(in.Op.Cycles() + nx.Op.Cycles())
				op.next = pc + ln + uint64(nx.Len())
			}
		case isa.LOAD:
			// SSP/DynaGuard epilogue check: load ; xorfs ; je.
			if x, ok := peek(sc, pos+ln); ok && x.Op == isa.XORFS && x.R1 == in.R1 {
				if j, ok := peek(sc, pos+ln+uint64(x.Len())); ok && j.Op == isa.JE {
					op.kind = cFuseCheck
					op.r2 = uint8(in.Base) & 15
					op.disp2 = x.Disp
					op.n = 3
					op.cyc = uint32(in.Op.Cycles() + x.Op.Cycles() + j.Op.Cycles())
					op.next = pc + ln + uint64(x.Len()) + uint64(j.Len())
					op.target = op.next + uint64(int64(j.Disp))
					done = true
				}
			}
		case isa.XORRR:
			// P-SSP epilogue tail: xor ; xorfs ; je.
			if x, ok := peek(sc, pos+ln); ok && x.Op == isa.XORFS && x.R1 == in.R1 {
				if j, ok := peek(sc, pos+ln+uint64(x.Len())); ok && j.Op == isa.JE {
					op.kind = cFuseXorCheck
					op.disp2 = x.Disp
					op.n = 3
					op.cyc = uint32(in.Op.Cycles() + x.Op.Cycles() + j.Op.Cycles())
					op.next = pc + ln + uint64(x.Len()) + uint64(j.Len())
					op.target = op.next + uint64(int64(j.Disp))
					done = true
				}
			}
		}
		sumN += uint32(op.n)
		sumCyc += uint64(op.cyc)
		op.sumN = sumN
		op.sumCyc = sumCyc
		ops = append(ops, op)
		pos = op.next - segBase
	}
	if len(ops) == 0 {
		comp.blockIdx[entry] = blockCold
		return blockCold
	}
	blk := &block{ops: ops, ninsts: uint64(sumN), cycles: sumCyc, end: segBase + pos}
	idx := int32(len(comp.blocks))
	comp.blocks = append(comp.blocks, blk)
	comp.blockIdx[entry] = idx
	return idx
}

// blockAt resolves the block entered at the current RIP, lowering it on
// first execution. nil means the Step path must execute here: fetch fault,
// cold offset, or a trap-headed block. As a side effect it maintains the
// curSeg/curGen/curCode fast-path state (shared with fetchPredecoded) and
// retires stale memory views when the space's sharing epoch moved.
func (c *CPU) blockAt() *block {
	seg := c.curSeg
	if seg == nil || c.RIP < seg.Base || c.RIP >= seg.End() || seg.Gen() != c.curGen {
		s, err := c.Mem.ExecSegment(c.RIP)
		if err != nil {
			return nil // Step raises the engine-identical fetch fault
		}
		if c.code == nil {
			c.code = NewCodeCache()
		}
		c.curSeg = s
		c.curGen = s.Gen()
		c.curCode = c.code.forSegment(s)
		seg = s
	}
	if ep := c.Mem.Epoch(); ep != c.viewEpoch {
		c.viewEpoch = ep
		c.views = [numViews]memView{}
	}
	sc := c.curCode
	if sc.comp == nil {
		sc.comp = newSegCompiled(len(sc.idx))
	}
	off := c.RIP - seg.Base
	bi := sc.comp.blockIdx[off]
	if bi == blockNone {
		bi = sc.comp.lower(sc, seg.Base, off)
	}
	if bi < 0 {
		return nil
	}
	return sc.comp.blocks[bi]
}

// runCompiled is RunContext's dispatch loop for EngineCompiled. The
// ordering of the budget check, the cancellation poll and the halt check
// mirrors the per-step loop exactly (budget at the loop head, poll before
// the first instruction and then at the cancelCheckMask stride, halt
// inside the step), so classification of budget kills, cancellations and
// orderly halts is engine-independent.
func (c *CPU) runCompiled(ctx context.Context, maxInsts uint64) error {
	done := ctx.Done()
	var executed, nextPoll uint64
	for {
		if executed >= maxInsts {
			return c.crash(fmt.Sprintf("instruction budget %d exhausted", maxInsts), ErrBudget)
		}
		if done != nil && executed >= nextPoll {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			nextPoll = executed + cancelCheckMask + 1
		}
		if c.halted {
			return nil
		}
		blk := c.blockAt()
		if blk == nil || maxInsts-executed < blk.ninsts {
			// Trap head, cold offset, fetch fault, or a remaining budget
			// smaller than the block: one exact per-step instruction.
			switch err := c.Step(); {
			case err == nil:
				executed++
			case errors.Is(err, ErrHalted):
				return nil
			default:
				return err
			}
			continue
		}
		// The whole block fits in the remaining budget: charge it upfront.
		// Early exits inside execBlock unwind to exact per-step counters.
		c.Insts += blk.ninsts
		c.Cycles += blk.cycles
		n, err := c.execBlock(blk)
		executed += n
		if err != nil {
			return err
		}
	}
}

// blockFault unwinds the block-level charge to the exact per-step state at
// a fault inside op — k is the 1-based faulting constituent, pc its guest
// address — and reports the crash. Per-step semantics charge the faulting
// instruction before executing it, so constituent k stays counted.
func (c *CPU) blockFault(blk *block, op *cop, k uint8, pc uint64, reason string, cause error) (uint64, error) {
	consumed := uint64(op.sumN) - uint64(op.n) + uint64(k)
	cyc := op.sumCyc
	if op.n > 1 {
		// Fused constituents cost one cycle each, so the partial charge is
		// exactly k of the op's op.cyc cycles.
		cyc = op.sumCyc - uint64(op.cyc) + uint64(k)
	}
	c.Insts -= blk.ninsts - consumed
	c.Cycles -= blk.cycles - cyc
	c.RIP = pc
	return consumed, c.crash(reason, cause)
}

// blockExit leaves the block cleanly after op retired — used when a store
// rewrote the executing segment, which invalidates the remaining lowered
// ops. Counters are trimmed to the retired prefix; the dispatcher resumes
// at the fall-through address against the bumped generation.
func (c *CPU) blockExit(blk *block, op *cop) uint64 {
	c.Insts -= blk.ninsts - uint64(op.sumN)
	c.Cycles -= blk.cycles - op.sumCyc
	c.RIP = op.next
	return uint64(op.sumN)
}

// execBlock runs one lowered block whose full cost is already charged. It
// returns the guest instructions actually retired (== blk.ninsts unless the
// block exited early) and the terminal error, if any. RIP is only written
// at block exits: terminators, fall-off-the-end, faults, and self-modify
// bails — never between interior ops.
func (c *CPU) execBlock(blk *block) (uint64, error) {
	ops := blk.ops
	for i := range ops {
		op := &ops[i]
		if c.cov != nil {
			c.cov.record(c.covPrev, op.pc)
			c.covPrev = op.pc >> 1
		}
		switch op.kind {
		case cNop:

		case cPush:
			// Per-step semantics decrement RSP before the write; a fault
			// leaves it decremented.
			c.GPR[isa.RSP] -= 8
			addr := c.GPR[isa.RSP]
			if !c.views[vStack].wu64(addr, c.GPR[op.r1&15]) {
				if err := c.Mem.WriteU64(addr, c.GPR[op.r1&15]); err != nil {
					return c.blockFault(blk, op, 1, op.pc, "push fault", err)
				}
				c.acquireView(vStack, addr)
				if c.curSeg.Gen() != c.curGen {
					return c.blockExit(blk, op), nil
				}
			}
		case cPop:
			addr := c.GPR[isa.RSP]
			v, ok := c.views[vStack].ru64(addr)
			if !ok {
				var err error
				if v, err = c.Mem.ReadU64(addr); err != nil {
					return c.blockFault(blk, op, 1, op.pc, "pop fault", err)
				}
				c.acquireView(vStack, addr)
			}
			c.GPR[op.r1&15] = v
			c.GPR[isa.RSP] += 8

		case cMovRR:
			c.GPR[op.r1&15] = c.GPR[op.r2&15]
		case cMovRI:
			c.GPR[op.r1&15] = uint64(op.imm)
		case cLoad:
			addr := c.GPR[op.r2&15] + uint64(int64(op.disp))
			v, ok := c.views[op.cls&3].ru64(addr)
			if !ok {
				var err error
				if v, err = c.Mem.ReadU64(addr); err != nil {
					return c.blockFault(blk, op, 1, op.pc, "load fault", err)
				}
				c.acquireView(op.cls, addr)
			}
			c.GPR[op.r1&15] = v
		case cStore:
			addr := c.GPR[op.r2&15] + uint64(int64(op.disp))
			if !c.views[op.cls&3].wu64(addr, c.GPR[op.r1&15]) {
				if err := c.Mem.WriteU64(addr, c.GPR[op.r1&15]); err != nil {
					return c.blockFault(blk, op, 1, op.pc, "store fault", err)
				}
				c.acquireView(op.cls, addr)
				if c.curSeg.Gen() != c.curGen {
					return c.blockExit(blk, op), nil
				}
			}
		case cLdFS:
			addr := c.FSBase + uint64(int64(op.disp))
			v, ok := c.views[vFS].ru64(addr)
			if !ok {
				var err error
				if v, err = c.Mem.ReadU64(addr); err != nil {
					return c.blockFault(blk, op, 1, op.pc, "fs load fault", err)
				}
				c.acquireView(vFS, addr)
			}
			c.GPR[op.r1&15] = v
		case cStFS:
			addr := c.FSBase + uint64(int64(op.disp))
			if !c.views[vFS].wu64(addr, c.GPR[op.r1&15]) {
				if err := c.Mem.WriteU64(addr, c.GPR[op.r1&15]); err != nil {
					return c.blockFault(blk, op, 1, op.pc, "fs store fault", err)
				}
				c.acquireView(vFS, addr)
				if c.curSeg.Gen() != c.curGen {
					return c.blockExit(blk, op), nil
				}
			}
		case cLea:
			c.GPR[op.r1&15] = c.GPR[op.r2&15] + uint64(int64(op.disp))

		case cAddRR:
			c.GPR[op.r1&15] += c.GPR[op.r2&15]
		case cAddRI:
			c.GPR[op.r1&15] += uint64(op.imm)
		case cSubRR:
			c.GPR[op.r1&15] -= c.GPR[op.r2&15]
		case cSubRI:
			c.GPR[op.r1&15] -= uint64(op.imm)
		case cXorRR:
			c.GPR[op.r1&15] ^= c.GPR[op.r2&15]
			c.ZF = c.GPR[op.r1&15] == 0
		case cXorFS:
			addr := c.FSBase + uint64(int64(op.disp))
			v, ok := c.views[vFS].ru64(addr)
			if !ok {
				var err error
				if v, err = c.Mem.ReadU64(addr); err != nil {
					return c.blockFault(blk, op, 1, op.pc, "fs xor fault", err)
				}
				c.acquireView(vFS, addr)
			}
			c.GPR[op.r1&15] ^= v
			c.ZF = c.GPR[op.r1&15] == 0
		case cOrRR:
			c.GPR[op.r1&15] |= c.GPR[op.r2&15]
		case cAndRR:
			c.GPR[op.r1&15] &= c.GPR[op.r2&15]
		case cShlRI:
			c.GPR[op.r1&15] <<= uint(op.imm) & 63
		case cShrRI:
			c.GPR[op.r1&15] >>= uint(op.imm) & 63

		case cCmpRR:
			c.ZF = c.GPR[op.r1&15] == c.GPR[op.r2&15]
		case cCmpRI:
			c.ZF = c.GPR[op.r1&15] == uint64(op.imm)

		case cJmp:
			c.RIP = op.target
			return blk.ninsts, nil
		case cJe:
			if c.ZF {
				c.RIP = op.target
			} else {
				c.RIP = op.next
			}
			return blk.ninsts, nil
		case cJne:
			if !c.ZF {
				c.RIP = op.target
			} else {
				c.RIP = op.next
			}
			return blk.ninsts, nil

		case cCall, cCallR:
			c.GPR[isa.RSP] -= 8
			addr := c.GPR[isa.RSP]
			if !c.views[vStack].wu64(addr, op.next) {
				if err := c.Mem.WriteU64(addr, op.next); err != nil {
					return c.blockFault(blk, op, 1, op.pc, "call push fault", err)
				}
				c.acquireView(vStack, addr)
				// Terminator: no self-modify bail needed, the block ends here
				// and the dispatcher re-checks the generation on re-entry.
			}
			if op.kind == cCall {
				c.RIP = op.target
			} else {
				c.RIP = c.GPR[op.r1&15]
			}
			return blk.ninsts, nil
		case cRet:
			addr := c.GPR[isa.RSP]
			v, ok := c.views[vStack].ru64(addr)
			if !ok {
				var err error
				if v, err = c.Mem.ReadU64(addr); err != nil {
					return c.blockFault(blk, op, 1, op.pc, "ret pop fault", err)
				}
				c.acquireView(vStack, addr)
			}
			c.GPR[isa.RSP] += 8
			c.RIP = v
			return blk.ninsts, nil
		case cLeave:
			// Per-step semantics set RSP=RBP before the pop; a fault leaves
			// RSP moved.
			c.GPR[isa.RSP] = c.GPR[isa.RBP]
			addr := c.GPR[isa.RSP]
			v, ok := c.views[vStack].ru64(addr)
			if !ok {
				var err error
				if v, err = c.Mem.ReadU64(addr); err != nil {
					return c.blockFault(blk, op, 1, op.pc, "leave pop fault", err)
				}
				c.acquireView(vStack, addr)
			}
			c.GPR[isa.RBP] = v
			c.GPR[isa.RSP] += 8

		case cRdrand:
			c.GPR[op.r1&15] = c.Rand.Uint64()
			c.CF = true
		case cRdfsbase:
			c.GPR[op.r1&15] = c.FSBase
		case cRdtsc:
			// The block's full cycle cost is charged upfront; per-step
			// semantics read the counter with only the prefix through this
			// op (its own 25 cycles included) applied.
			tsc := c.TSCBase + c.Cycles - (blk.cycles - op.sumCyc)
			c.GPR[isa.RAX] = tsc & 0xffffffff
			c.GPR[isa.RDX] = tsc >> 32

		case cMovQX:
			c.X[op.x1&15][0] = c.GPR[op.r1&15]
			c.X[op.x1&15][1] = 0
		case cMovHX:
			addr := c.GPR[op.r2&15] + uint64(int64(op.disp))
			v, ok := c.views[op.cls&3].ru64(addr)
			if !ok {
				var err error
				if v, err = c.Mem.ReadU64(addr); err != nil {
					return c.blockFault(blk, op, 1, op.pc, "movhps fault", err)
				}
				c.acquireView(op.cls, addr)
			}
			c.X[op.x1&15][1] = v
		case cPunpckX:
			c.X[op.x1&15][1] = c.GPR[op.r1&15]
		case cMovXQ:
			c.GPR[op.r1&15] = c.X[op.x1&15][0]
		case cStX:
			addr := c.GPR[op.r2&15] + uint64(int64(op.disp))
			lo, hi := c.X[op.x1&15][0], c.X[op.x1&15][1]
			if !c.views[op.cls&3].w128(addr, lo, hi) {
				var b [16]byte
				binary.LittleEndian.PutUint64(b[:8], lo)
				binary.LittleEndian.PutUint64(b[8:], hi)
				if err := c.Mem.Write(addr, b[:]); err != nil {
					return c.blockFault(blk, op, 1, op.pc, "movdqu store fault", err)
				}
				c.acquireView(op.cls, addr)
				if c.curSeg.Gen() != c.curGen {
					return c.blockExit(blk, op), nil
				}
			}
		case cLdX:
			addr := c.GPR[op.r2&15] + uint64(int64(op.disp))
			lo, hi, ok := c.views[op.cls&3].r128(addr)
			if !ok {
				var b [16]byte
				if err := c.Mem.ReadInto(addr, b[:]); err != nil {
					return c.blockFault(blk, op, 1, op.pc, "movdqu load fault", err)
				}
				lo = binary.LittleEndian.Uint64(b[:8])
				hi = binary.LittleEndian.Uint64(b[8:])
				c.acquireView(op.cls, addr)
			}
			c.X[op.x1&15][0] = lo
			c.X[op.x1&15][1] = hi
		case cAesenc:
			if err := c.aesEncrypt(); err != nil {
				return c.blockFault(blk, op, 1, op.pc, "aes fault", err)
			}
		case cCmpX:
			addr := c.GPR[op.r2&15] + uint64(int64(op.disp))
			lo, hi, ok := c.views[op.cls&3].r128(addr)
			if !ok {
				var b [16]byte
				if err := c.Mem.ReadInto(addr, b[:]); err != nil {
					return c.blockFault(blk, op, 1, op.pc, "cmpx fault", err)
				}
				lo = binary.LittleEndian.Uint64(b[:8])
				hi = binary.LittleEndian.Uint64(b[8:])
				c.acquireView(op.cls, addr)
			}
			c.ZF = lo == c.X[op.x1&15][0] && hi == c.X[op.x1&15][1]

		case cFuseInstall:
			// Constituent 1: ldfs r1, disp (edge recorded at the loop head).
			addr := c.FSBase + uint64(int64(op.disp))
			v, ok := c.views[vFS].ru64(addr)
			if !ok {
				var err error
				if v, err = c.Mem.ReadU64(addr); err != nil {
					return c.blockFault(blk, op, 1, op.pc, "fs load fault", err)
				}
				c.acquireView(vFS, addr)
			}
			c.GPR[op.r1&15] = v
			// Constituent 2: store r1, disp2(r2).
			pc2 := op.pc + lenLDFS
			if c.cov != nil {
				c.cov.record(c.covPrev, pc2)
				c.covPrev = pc2 >> 1
			}
			addr = c.GPR[op.r2&15] + uint64(int64(op.disp2))
			if !c.views[op.cls&3].wu64(addr, v) {
				if err := c.Mem.WriteU64(addr, v); err != nil {
					return c.blockFault(blk, op, 2, pc2, "store fault", err)
				}
				c.acquireView(op.cls, addr)
				if c.curSeg.Gen() != c.curGen {
					return c.blockExit(blk, op), nil
				}
			}

		case cFuseCheck:
			// Constituent 1: load r1, disp(r2).
			addr := c.GPR[op.r2&15] + uint64(int64(op.disp))
			acc, ok := c.views[op.cls&3].ru64(addr)
			if !ok {
				var err error
				if acc, err = c.Mem.ReadU64(addr); err != nil {
					return c.blockFault(blk, op, 1, op.pc, "load fault", err)
				}
				c.acquireView(op.cls, addr)
			}
			// Constituent 2: xorfs r1, disp2.
			pc2 := op.pc + lenLOAD
			if c.cov != nil {
				c.cov.record(c.covPrev, pc2)
				c.covPrev = pc2 >> 1
			}
			addr = c.FSBase + uint64(int64(op.disp2))
			v, ok := c.views[vFS].ru64(addr)
			if !ok {
				var err error
				if v, err = c.Mem.ReadU64(addr); err != nil {
					// The load retired before the xor faulted: r1 holds it,
					// ZF is untouched — exactly the per-step state.
					c.GPR[op.r1&15] = acc
					return c.blockFault(blk, op, 2, pc2, "fs xor fault", err)
				}
				c.acquireView(vFS, addr)
			}
			acc ^= v
			c.GPR[op.r1&15] = acc
			c.ZF = acc == 0
			// Constituent 3: je target (cannot fault).
			pc3 := pc2 + lenXORFS
			if c.cov != nil {
				c.cov.record(c.covPrev, pc3)
				c.covPrev = pc3 >> 1
			}
			if c.ZF {
				c.RIP = op.target
			} else {
				c.RIP = op.next
			}
			return blk.ninsts, nil

		case cFuseXorCheck:
			// Constituent 1: xor r2, r1 (architecturally sets ZF; the xorfs
			// below overwrites it — unless the xorfs faults, so set it now).
			acc := c.GPR[op.r1&15] ^ c.GPR[op.r2&15]
			c.GPR[op.r1&15] = acc
			c.ZF = acc == 0
			// Constituent 2: xorfs r1, disp2.
			pc2 := op.pc + lenXORRR
			if c.cov != nil {
				c.cov.record(c.covPrev, pc2)
				c.covPrev = pc2 >> 1
			}
			addr := c.FSBase + uint64(int64(op.disp2))
			v, ok := c.views[vFS].ru64(addr)
			if !ok {
				var err error
				if v, err = c.Mem.ReadU64(addr); err != nil {
					return c.blockFault(blk, op, 2, pc2, "fs xor fault", err)
				}
				c.acquireView(vFS, addr)
			}
			acc ^= v
			c.GPR[op.r1&15] = acc
			c.ZF = acc == 0
			// Constituent 3: je target (cannot fault).
			pc3 := pc2 + lenXORFS
			if c.cov != nil {
				c.cov.record(c.covPrev, pc3)
				c.covPrev = pc3 >> 1
			}
			if c.ZF {
				c.RIP = op.target
			} else {
				c.RIP = op.next
			}
			return blk.ninsts, nil

		default:
			// Unreachable: lowering never emits cBad blocks. Treated as an
			// engine defect, not a guest crash.
			c.RIP = op.pc
			return uint64(op.sumN) - uint64(op.n), c.crash("compiled dispatch: bad micro-op", nil)
		}
	}
	c.RIP = blk.end
	return blk.ninsts, nil
}
